// End-to-end semantic segmentation with the integer-only Segformer-B0-like
// model: train the head on synthetic scenes, quantize, and compare the
// exact-non-linearity baseline against GQA-LUT w/ RM kernels. Inference
// runs through the scene-batched InferenceEngine — the serving path: a
// persistent process pool (GQA_NUM_THREADS lanes), one serial forward per
// image, per-task workspace reuse, provider pre-warmed.
//
// Runs a reduced workload by default; set GQA_TRAIN_SCENES for more.
#include <cstdio>

#include "eval/engine.h"
#include "eval/segtask.h"
#include "util/env.h"
#include "util/timer.h"

int main() {
  using namespace gqa;

  SegTaskOptions options;
  options.train_scenes = static_cast<int>(env_int("GQA_TRAIN_SCENES", 96));
  options.eval_scenes = 8;
  options.num_threads = static_cast<int>(env_int("GQA_NUM_THREADS", 0));

  Timer timer;
  std::printf("Preparing Segformer-B0-like on synthetic scenes "
              "(%d training scenes)...\n", options.train_scenes);
  const SegformerTask task = make_segformer_task(options);
  std::printf("ready in %.1fs\n\n", timer.seconds());

  std::printf("FP32 teacher mIoU      : %.2f%%\n", 100.0 * task.miou_fp());
  const double base = task.miou_int(tfm::NonlinearProvider::exact());
  std::printf("INT8 + exact non-linear: %.2f%%\n", 100.0 * base);

  const auto nl = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kExp, Op::kGelu, Op::kDiv, Op::kRsqrt});
  const double gqa = task.miou_int(nl);
  std::printf("INT8 + GQA-LUT w/ RM   : %.2f%%  (delta %+0.2f)\n",
              100.0 * gqa, 100.0 * (gqa - base));

  // Batched label maps through the engine: a small "scene stream" of four
  // images dispatched at once, per-image label maps back.
  const InferenceEngine engine;
  std::vector<tfm::Tensor> stream;
  for (std::uint64_t seed : {99, 100, 101, 102}) {
    stream.push_back(make_scene(options.scene, seed).image);
  }
  Timer serve_timer;
  const std::vector<std::vector<int>> label_maps =
      engine.labels_int(task.model(), stream, nl);
  std::printf("\nserved %zu scenes in %.1fms on %d lane(s) "
              "(engine: image-level parallelism + workspace reuse)\n",
              stream.size(), serve_timer.milliseconds(), engine.threads());

  std::printf("predicted 16x16 label map (scene 99):\n");
  const std::vector<int>& pred = label_maps.front();
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      std::printf("%2d", pred[static_cast<std::size_t>(y) * 16 + x]);
    }
    std::printf("\n");
  }
  return 0;
}
