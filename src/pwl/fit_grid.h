// Sampled fitting grid with O(1) per-segment least squares.
//
// Algorithm 1 evaluates each candidate breakpoint set by building the
// optimal pwl and accumulating squared error over a fixed grid
// (step 0.01 across [Rn, Rp]). Doing that naively costs O(grid) per
// individual. We precompute prefix sums of {1, x, x^2, y, x*y, y^2} once;
// the optimal slope/intercept of any segment and its exact sum of squared
// errors then follow from the normal equations in O(1), making the full
// fitness O(N log G) per individual with identical results.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "pwl/pwl_table.h"

namespace gqa {

/// How slopes/intercepts are derived from breakpoints.
enum class FitStrategy {
  kLeastSquares,  ///< per-segment least squares on the grid (default)
  kInterpolate,   ///< line through the segment's endpoint function values
};

/// Least-squares result for one segment.
struct SegmentFit {
  double k = 0.0;    ///< slope
  double b = 0.0;    ///< intercept
  double sse = 0.0;  ///< sum of squared residuals on the grid
  std::size_t n = 0; ///< grid points covered
};

/// Immutable sampled view of a target function on [lo, hi] with prefix sums.
class FitGrid {
 public:
  /// Samples `f` on {lo, lo+step, ..., <= hi}. Throws on invalid ranges.
  static FitGrid make(const std::function<double(double)>& f, double lo,
                      double hi, double step = 0.01);

  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double step() const { return step_; }
  [[nodiscard]] double x(std::size_t i) const { return xs_[i]; }
  [[nodiscard]] double y(std::size_t i) const { return ys_[i]; }
  [[nodiscard]] std::span<const double> xs() const { return xs_; }
  [[nodiscard]] std::span<const double> ys() const { return ys_; }

  /// Index of the first grid point with x >= value (== size() if none).
  [[nodiscard]] std::size_t lower_index(double value) const;

  /// The sampled target function (exact, not interpolated).
  [[nodiscard]] const std::function<double(double)>& target() const {
    return f_;
  }

  /// Optimal least-squares line over grid rows [lo_idx, hi_idx).
  [[nodiscard]] SegmentFit fit_segment(std::size_t lo_idx,
                                       std::size_t hi_idx) const;

  /// SSE of a *given* line over grid rows [lo_idx, hi_idx).
  [[nodiscard]] double segment_sse(std::size_t lo_idx, std::size_t hi_idx,
                                   double k, double b) const;

  /// MSE of the optimal pwl with the given sorted breakpoints — the GA
  /// fitness (lower is better). Equivalent to fit_table + mse_of but O(N).
  [[nodiscard]] double fitness(std::span<const double> breakpoints) const;

  /// Quantization-aware fitness: per segment the least-squares (k, b) are
  /// rounded onto the 2^-lambda fixed-point grid *before* scoring, so the
  /// search favours breakpoints whose derived parameters survive the FXP
  /// conversion of Alg. 1 line 22. Still O(N) per call via the closed-form
  /// SSE of an arbitrary line.
  [[nodiscard]] double fitness_fxp(std::span<const double> breakpoints,
                                   int lambda) const;

  /// Fully quantization-aware fitness (the objective GQA-LUT optimizes):
  /// slopes/intercepts are λ-rounded as in fitness_fxp, and — per Eq. 3 —
  /// the MSE is averaged over deployment grids: for each scale exponent s
  /// in `scale_exps`, breakpoints are snapped to round(p·2^s)/2^s (the
  /// breakpoint-deviation effect of Fig. 2(b)) while the (k, b) derived
  /// from the un-quantized segments stay fixed. Gaussian mutation sees this
  /// landscape as a staircase; Rounding Mutation moves exactly between its
  /// steps.
  [[nodiscard]] double fitness_quant_aware(std::span<const double> breakpoints,
                                           int lambda,
                                           std::span<const int> scale_exps) const;

  /// Builds the full pwl table for the given sorted breakpoints.
  [[nodiscard]] PwlTable fit_table(std::span<const double> breakpoints,
                                   FitStrategy strategy = FitStrategy::kLeastSquares) const;

  /// Grid MSE of an arbitrary table (used to score quantized tables too).
  [[nodiscard]] double mse_of(const PwlTable& table) const;

 private:
  FitGrid() = default;

  double lo_ = 0.0, hi_ = 0.0, step_ = 0.0;
  std::vector<double> xs_, ys_;
  // Prefix sums, length size()+1; index i holds the sum over rows [0, i).
  std::vector<double> sum_x_, sum_xx_, sum_y_, sum_xy_, sum_yy_;
  std::function<double(double)> f_;

  friend class FitGridTestPeer;
};

}  // namespace gqa
