# Empty compiler generated dependencies file for nnlut_test.
# This may be replaced when dependencies are built.
