#include "util/env.h"

#include <cstdlib>

#include "util/strings.h"

namespace gqa {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::string v = to_lower(raw);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace gqa
