// Activation-range calibration. The paper fine-tunes scales with LSQ; this
// reproduction replaces gradient training by observing ranges over a
// calibration set and snapping the resulting scale to a power of two, which
// preserves the paper's constraint that non-linear-op inputs carry
// power-of-two scales (§3.1, §4.2).
#pragma once

#include <span>

#include "quant/quant_params.h"

namespace gqa {

/// Streaming range observer (min-max with optional percentile clipping).
class RangeObserver {
 public:
  void observe(double value);
  void observe(std::span<const float> values);
  void observe(std::span<const double> values);

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Largest absolute observed value.
  [[nodiscard]] double amax() const;
  [[nodiscard]] std::size_t count() const { return count_; }

  /// Symmetric quantization parameters from the observed range.
  [[nodiscard]] QuantParams make_params(int bits, bool is_signed = true) const;

  /// Same, with the scale snapped to the nearest power of two.
  [[nodiscard]] QuantParams make_po2(int bits, bool is_signed = true) const;

 private:
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace gqa
