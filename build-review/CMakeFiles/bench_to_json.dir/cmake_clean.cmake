file(REMOVE_RECURSE
  "CMakeFiles/bench_to_json.dir/tools/bench_to_json.cpp.o"
  "CMakeFiles/bench_to_json.dir/tools/bench_to_json.cpp.o.d"
  "tools/bench_to_json"
  "tools/bench_to_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_to_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
