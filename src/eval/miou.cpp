#include "eval/miou.h"

#include "util/contracts.h"

namespace gqa {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  GQA_EXPECTS(num_classes >= 2);
}

void ConfusionMatrix::add(int truth, int prediction) {
  GQA_EXPECTS(truth >= 0 && truth < classes_);
  GQA_EXPECTS(prediction >= 0 && prediction < classes_);
  ++counts_[static_cast<std::size_t>(truth) * classes_ + prediction];
  ++total_;
}

void ConfusionMatrix::add(std::span<const int> truth,
                          std::span<const int> prediction) {
  GQA_EXPECTS_MSG(truth.size() == prediction.size(),
                  "label maps must be aligned");
  for (std::size_t i = 0; i < truth.size(); ++i) add(truth[i], prediction[i]);
}

double ConfusionMatrix::iou(int cls) const {
  GQA_EXPECTS(cls >= 0 && cls < classes_);
  std::int64_t tp = counts_[static_cast<std::size_t>(cls) * classes_ + cls];
  std::int64_t fp = 0;
  std::int64_t fn = 0;
  for (int other = 0; other < classes_; ++other) {
    if (other == cls) continue;
    fp += counts_[static_cast<std::size_t>(other) * classes_ + cls];
    fn += counts_[static_cast<std::size_t>(cls) * classes_ + other];
  }
  const std::int64_t uni = tp + fp + fn;
  if (uni == 0) return -1.0;
  return static_cast<double>(tp) / static_cast<double>(uni);
}

double ConfusionMatrix::mean_iou() const {
  GQA_EXPECTS_MSG(total_ > 0, "empty confusion matrix");
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < classes_; ++c) {
    const double value = iou(c);
    if (value >= 0.0) {
      sum += value;
      ++present;
    }
  }
  return present > 0 ? sum / present : 0.0;
}

double ConfusionMatrix::pixel_accuracy() const {
  GQA_EXPECTS_MSG(total_ > 0, "empty confusion matrix");
  std::int64_t correct = 0;
  for (int c = 0; c < classes_; ++c) {
    correct += counts_[static_cast<std::size_t>(c) * classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

}  // namespace gqa
