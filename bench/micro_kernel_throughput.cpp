// Microbenchmark (google-benchmark): software throughput of the
// bit-accurate INT8 pwl kernel against libm reference evaluation and the
// FP pwl table — the CPU-side cost of the simulation itself. The *_Batched
// variants stream whole code spans through the new batch APIs (dense
// segment table, hoisted intercept shift, one unit-cache lookup); compare
// per-item times against the per-code baselines.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/approximator.h"
#include "kernel/multirange_unit.h"
#include "tfm/nonlinear_provider.h"

namespace {

using namespace gqa;

constexpr std::size_t kBatch = 4096;

const Approximator& gelu_approx() {
  static const Approximator approx =
      Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  return approx;
}

std::vector<std::int64_t> full_int8_sweep(std::size_t count) {
  std::vector<std::int64_t> codes(count);
  std::int64_t q = -128;
  for (std::size_t i = 0; i < count; ++i) {
    codes[i] = q;
    q = q >= 127 ? -128 : q + 1;
  }
  return codes;
}

void BM_IntPwlUnit_Gelu(benchmark::State& state) {
  const IntPwlUnit unit = gelu_approx().make_unit(-4);
  std::int64_t q = -128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.eval_real_from_code(q));
    q = q >= 127 ? -128 : q + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntPwlUnit_Gelu);

void BM_IntPwlUnit_Gelu_Batched(benchmark::State& state) {
  const IntPwlUnit unit = gelu_approx().make_unit(-4);
  const std::vector<std::int64_t> codes = full_int8_sweep(kBatch);
  std::vector<double> out(kBatch);
  for (auto _ : state) {
    unit.eval_reals_from_codes(codes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_IntPwlUnit_Gelu_Batched);

// Provider-level comparison: the scalar path pays the unit-cache map
// lookup per code (what modules.cpp used to do per element); the batched
// path is what Softmax/GELU/LayerNorm now call.
void BM_Provider_Gelu_PerCode(benchmark::State& state) {
  static const auto provider =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  const std::vector<std::int64_t> codes = full_int8_sweep(kBatch);
  std::vector<double> out(kBatch);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      out[i] = provider.gelu_code(codes[i], -4);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_Provider_Gelu_PerCode);

void BM_Provider_Gelu_Batched(benchmark::State& state) {
  static const auto provider =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  const std::vector<std::int64_t> codes = full_int8_sweep(kBatch);
  std::vector<double> out(kBatch);
  for (auto _ : state) {
    provider.gelu_codes(codes, -4, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_Provider_Gelu_Batched);

void BM_FpPwlTable_Gelu(benchmark::State& state) {
  const PwlTable& table = gelu_approx().fxp_table();
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.eval(x));
    x = x >= 4.0 ? -4.0 : x + 0.01;
  }
}
BENCHMARK(BM_FpPwlTable_Gelu);

void BM_LibmReference_Gelu(benchmark::State& state) {
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0))));
    x = x >= 4.0 ? -4.0 : x + 0.01;
  }
}
BENCHMARK(BM_LibmReference_Gelu);

void BM_MultiRangeUnit_Div(benchmark::State& state) {
  static const Approximator approx =
      Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  const MultiRangeUnit unit = approx.make_multirange_unit();
  std::int64_t code = 1 << 14;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.eval_fxp(code, 16));
    code = code >= (1 << 23) ? (1 << 14) : code + 4097;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiRangeUnit_Div);

void BM_MultiRangeUnit_Div_Batched(benchmark::State& state) {
  static const Approximator approx =
      Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  const MultiRangeUnit unit = approx.make_multirange_unit();
  std::vector<std::int64_t> codes(kBatch);
  std::int64_t code = 1 << 14;
  for (std::size_t i = 0; i < kBatch; ++i) {
    codes[i] = code;
    code = code >= (1 << 23) ? (1 << 14) : code + 4097;
  }
  std::vector<double> out(kBatch);
  for (auto _ : state) {
    unit.eval_fxp_batch(codes, 16, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_MultiRangeUnit_Div_Batched);

}  // namespace

BENCHMARK_MAIN();
