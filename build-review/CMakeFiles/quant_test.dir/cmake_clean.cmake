file(REMOVE_RECURSE
  "CMakeFiles/quant_test.dir/tests/quant_test.cpp.o"
  "CMakeFiles/quant_test.dir/tests/quant_test.cpp.o.d"
  "quant_test"
  "quant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
