// Clang thread-safety annotations and the annotated locking primitives
// the whole concurrency layer is built on.
//
// The serving stack's locking discipline (docs/ARCHITECTURE.md "Static
// gates") is machine-checked: every mutex-guarded field carries
// GQA_GUARDED_BY, every function with a locking precondition carries
// GQA_REQUIRES, and a Clang build with -DGQA_STATIC_ANALYSIS=ON compiles
// the tree under -Werror=thread-safety — an unguarded access is a build
// break, not a TSan roll of the dice. Under GCC (or any compiler without
// the capability attributes) every macro expands to nothing and the
// primitives behave exactly like std::mutex + std::lock_guard, so the
// annotations cost nothing where they cannot be checked.
//
// Why our own Mutex/MutexLock instead of std::mutex directly: the
// analysis only tracks types annotated as capabilities, and libstdc++'s
// std::mutex/std::lock_guard carry no annotations (libc++'s do, behind a
// config macro we cannot rely on). gqa::Mutex is a zero-overhead
// std::mutex wrapper annotated as a capability; gqa::MutexLock is the one
// scoped lock shape used everywhere (lock_guard semantics, plus a
// native() handle so std::condition_variable can wait on it).
//
// Annotation conventions used across the tree:
//   - GQA_GUARDED_BY(mu) on every field a mutex protects, including
//     fields only the owning thread writes but other threads read.
//   - GQA_REQUIRES(mu) on *_locked helper methods (caller holds mu).
//   - GQA_EXCLUDES(mu) on public entry points that acquire mu, so a
//     re-entrant call that would self-deadlock is a compile error at the
//     call site that already holds it.
//   - std::atomic fields are NOT guarded: each carries a one-line
//     memory-ordering justification comment at its operations instead
//     (the relaxed/acquire/release audit trail).
//   - Condition-variable predicates are written as explicit while loops
//     in the locking scope (never as lambdas), so the guarded reads stay
//     inside the scope the analysis can see.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GQA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GQA_THREAD_ANNOTATION
#define GQA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (names it in diagnostics).
#define GQA_CAPABILITY(x) GQA_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define GQA_SCOPED_CAPABILITY GQA_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding `x`.
#define GQA_GUARDED_BY(x) GQA_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding `x`.
#define GQA_PT_GUARDED_BY(x) GQA_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release).
#define GQA_REQUIRES(...) \
  GQA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (must not be held on entry).
#define GQA_ACQUIRE(...) \
  GQA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function may acquire the capability; returns `value` iff it did.
#define GQA_TRY_ACQUIRE(...) \
  GQA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define GQA_RELEASE(...) \
  GQA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define GQA_EXCLUDES(...) GQA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Asserts (at runtime, by contract) that the capability is held.
#define GQA_ASSERT_CAPABILITY(x) \
  GQA_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the capability guarding its result.
#define GQA_RETURN_CAPABILITY(x) GQA_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — use only with a comment justifying why the analysis
/// cannot see the synchronization (e.g. external serialization contracts).
#define GQA_NO_THREAD_SAFETY_ANALYSIS \
  GQA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gqa {

/// std::mutex annotated as a capability. Same size, same cost — lock and
/// unlock forward directly; the annotations exist only for the analysis.
class GQA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GQA_ACQUIRE() { mu_.lock(); }
  void unlock() GQA_RELEASE() { mu_.unlock(); }
  bool try_lock() GQA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable interop only —
  /// never lock it directly (that would bypass the analysis).
  [[nodiscard]] std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// The one scoped lock used across the tree: lock_guard semantics over a
/// gqa::Mutex, holding from construction to scope exit on every path
/// (including exceptions). native() exposes the underlying
/// std::unique_lock so std::condition_variable can wait on it; a wait
/// releases and reacquires the mutex internally, which the analysis
/// models as continuously held — sound, because every observable guarded
/// access around the wait happens with the lock held.
class GQA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GQA_ACQUIRE(mu) : native_(mu.native_handle()) {}
  ~MutexLock() GQA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable::wait only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return native_; }

 private:
  std::unique_lock<std::mutex> native_;
};

}  // namespace gqa
