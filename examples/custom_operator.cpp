// Extending GQA-LUT to a user-defined non-linearity. The fitting pipeline
// is generic over any 1-D function: here we approximate Mish
// (x * tanh(softplus(x))) — an operator the paper never saw — with the
// same genetic quantization-aware search, then deploy it as an INT8 unit.
#include <cmath>
#include <cstdio>

#include "gqa/gqa_lut.h"
#include "kernel/int_pwl_unit.h"
#include "pwl/fit_grid.h"
#include "pwl/quantized_table.h"

int main() {
  using namespace gqa;

  const auto mish = [](double x) {
    const double sp = x > 30.0 ? x : std::log1p(std::exp(x));
    return x * std::tanh(sp);
  };

  // Configure the search manually (no preset exists for custom ops).
  GqaConfig config;
  config.op = Op::kGelu;  // reference metadata only; the grid drives the fit
  config.range_lo = -4.0;
  config.range_hi = 4.0;
  config.entries = 8;
  config.lambda = 5;
  config.mutation = MutationKind::kRoundingMutation;
  config.rm = RmParams{0.05, 0, 6};
  config.ga.seed = 0x4143;

  // Fit directly against the custom grid.
  const FitGrid grid = FitGrid::make(mish, config.range_lo, config.range_hi,
                                     config.grid_step);
  // Reuse the generic GA through fit_gqa_lut by overriding the op's
  // reference function via the grid-based API:
  GeneticOptimizer ga(config.ga);
  const auto init = [&config](Rng& rng) {
    Genome g(static_cast<std::size_t>(config.breakpoint_count()));
    for (double& p : g) p = rng.uniform(config.range_lo, config.range_hi);
    std::sort(g.begin(), g.end());
    return g;
  };
  const auto fitness = [&grid, &config](const Genome& g) {
    return grid.fitness_fxp(g, config.lambda);
  };
  const auto repair = [&config](Genome& g) {
    repair_breakpoints(g, config.range_lo, config.range_hi,
                       config.min_separation);
  };
  const GaResult result =
      ga.run(init, fitness, make_rounding_mutation(config.rm), repair);

  const PwlTable table =
      grid.fit_table(result.best).rounded_to_fxp(config.lambda);
  std::printf("Fitted MISH, 8 entries, grid MSE %.3e\n%s\n",
              grid.mse_of(table), table.to_string().c_str());

  // Deploy as an INT8 unit at S = 2^-4.
  const QuantParams input{std::ldexp(1.0, -4), 8, true};
  const IntPwlUnit unit(quantize_table(table, input, config.lambda, 8));
  std::printf("INT8 deployment check:\n");
  for (double x : {-3.0, -1.0, -0.2, 0.4, 1.5, 3.5}) {
    std::printf("  mish(%+.2f) ~ %+.5f  (exact %+.5f)\n", x,
                unit.eval_real(x), mish(x));
  }
  return 0;
}
