file(REMOVE_RECURSE
  "CMakeFiles/nnlut_test.dir/tests/nnlut_test.cpp.o"
  "CMakeFiles/nnlut_test.dir/tests/nnlut_test.cpp.o.d"
  "nnlut_test"
  "nnlut_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nnlut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
