// Negative-compile fixture for the Clang thread-safety gate
// (tools/lint/negative_compile_test.sh). NOT built by CMake and NOT a
// gtest: the lint test compiles it twice with -fsyntax-only —
//
//   clean                      must compile under -Werror=thread-safety
//   -DGQA_LINT_SEED_VIOLATION  must FAIL: the seeded block reads a
//                              GQA_GUARDED_BY field without its mutex
//
// If the violating variant ever compiles, the annotations have stopped
// expanding (or the analysis was silently disabled) and the whole static
// gate is dead — which is exactly what the test exists to catch.
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void increment() GQA_EXCLUDES(mutex_) {
    gqa::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] long value() const GQA_EXCLUDES(mutex_) {
    gqa::MutexLock lock(mutex_);
    return value_;
  }

#ifdef GQA_LINT_SEED_VIOLATION
  // Seeded bug: reads the guarded field with no lock held. Clang must
  // reject this translation unit with -Werror=thread-safety.
  [[nodiscard]] long racy_value() const { return value_; }
#endif

 private:
  mutable gqa::Mutex mutex_;
  long value_ GQA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
