#include "util/thread_pool.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/env.h"

namespace gqa {

ThreadPool::ThreadPool(int num_threads) {
  GQA_EXPECTS_MSG(num_threads >= 1, "thread pool needs at least one lane");
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::drain(const std::function<void(std::size_t)>& fn,
                       std::size_t count) {
  for (;;) {
    // memory_order_relaxed: the counter only distributes indices — no data
    // is published through it. The work fn(i) writes is made visible to
    // the caller by the mutex handshake that ends the job (active_workers_
    // reaching 0 under mutex_), not by this counter.
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      fn(i);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Keep draining indices so the job still terminates promptly; the
      // remaining iterations are skipped by stealing them without running.
      // memory_order_relaxed: a best-effort early-exit hint — lanes that
      // miss it merely drain one more empty index.
      next_index_.store(count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && epoch_ == seen_epoch) start_cv_.wait(lock.native());
      if (stopping_) return;
      seen_epoch = epoch_;
      job = job_;
      count = job_count_;
    }
    drain(*job, count);
    {
      MutexLock lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  GQA_EXPECTS_MSG(fn != nullptr, "parallel_for needs a body");
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Concurrent callers (the async server's dispatcher plus any engine
  // thread sharing the process pool) serialize here: one job owns the
  // workers at a time. Held across the whole dispatch, which is also why
  // parallel_for must never be re-entered from a worker lane.
  MutexLock dispatch(dispatch_mutex_);

  {
    MutexLock lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    // memory_order_relaxed: the reset is published to workers by the
    // epoch_ bump under mutex_ (they read the new epoch only after
    // acquiring it), so the counter needs no ordering of its own.
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();

  drain(fn, count);  // the caller is a lane too

  MutexLock lock(mutex_);
  while (active_workers_ != 0) done_cv_.wait(lock.native());
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::run_lanes(const std::function<void(std::size_t)>& body) {
  // One index per lane; the dynamic handout degenerates to lane identity
  // because every body is long-running (it loops until its work source is
  // dry), so all lanes participate whenever there is sustained work.
  parallel_for(static_cast<std::size_t>(size()), body);
}

void pooled_for(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t)>& fn,
                std::size_t min_per_lane) {
  const std::size_t lanes =
      pool == nullptr ? 1 : static_cast<std::size_t>(pool->size());
  if (lanes <= 1 || count <= 1 ||
      (min_per_lane > 1 && count / lanes < min_per_lane)) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->parallel_for(count, fn);
}

void pooled_for_chunks(
    ThreadPool* pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_per_lane) {
  if (count == 0) return;
  std::size_t lanes =
      pool == nullptr ? 1 : static_cast<std::size_t>(pool->size());
  // Below the granularity floor the whole range is one inline chunk: the
  // per-task work would be too small to amortize pool dispatch.
  if (min_per_lane > 1 && count / lanes < min_per_lane) lanes = 1;
  // A few chunks per lane keeps the dynamic index handout balanced without
  // paying per-index overhead.
  const std::size_t target = std::min(count, lanes <= 1 ? 1 : 4 * lanes);
  const std::size_t per = (count + target - 1) / target;
  // Recompute the chunk count from the rounded-up size: ceil(count/target)
  // sized chunks can cover count in fewer than `target` pieces, and a
  // trailing empty chunk must never reach fn with lo > count.
  const std::size_t chunks = (count + per - 1) / per;
  pooled_for(lanes <= 1 ? nullptr : pool, chunks, [&](std::size_t c) {
    const std::size_t lo = c * per;
    fn(lo, std::min(count, lo + per));
  });
}

int global_pool_threads() {
  const std::int64_t requested = env_int("GQA_NUM_THREADS", 0);
  if (requested >= 1) return static_cast<int>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& global_pool() {
  // Function-local static: created thread-safely on first use, joined at
  // process exit. The env var is read once — resizing a live pool is not
  // supported (engine callers wanting a specific lane count own a pool).
  static ThreadPool pool(global_pool_threads());
  return pool;
}

}  // namespace gqa
