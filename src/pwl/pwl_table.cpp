#include "pwl/pwl_table.h"

#include <algorithm>
#include <cmath>

#include "numerics/rounding.h"
#include "util/contracts.h"
#include "util/strings.h"

namespace gqa {

int PwlTable::segment_index(double x) const {
  // Number of breakpoints <= x; p_i == x belongs to segment i+1 because
  // Eq. 1 uses half-open intervals [p_{i-1}, p_i).
  const auto it = std::upper_bound(breakpoints.begin(), breakpoints.end(), x);
  return static_cast<int>(it - breakpoints.begin());
}

double PwlTable::eval(double x) const {
  const int i = segment_index(x);
  return slopes[static_cast<std::size_t>(i)] * x +
         intercepts[static_cast<std::size_t>(i)];
}

std::vector<double> PwlTable::eval(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(eval(x));
  return out;
}

void PwlTable::validate() const {
  GQA_EXPECTS_MSG(!slopes.empty(), "pwl table has no entries");
  GQA_EXPECTS_MSG(slopes.size() == intercepts.size(),
                  "slope/intercept count mismatch");
  GQA_EXPECTS_MSG(breakpoints.size() + 1 == slopes.size(),
                  "breakpoint count must be entries-1");
  for (std::size_t i = 1; i < breakpoints.size(); ++i) {
    GQA_EXPECTS_MSG(breakpoints[i - 1] < breakpoints[i],
                    "breakpoints must be strictly ascending");
  }
  for (double p : breakpoints) GQA_EXPECTS(std::isfinite(p));
  for (double k : slopes) GQA_EXPECTS(std::isfinite(k));
  for (double b : intercepts) GQA_EXPECTS(std::isfinite(b));
}

PwlTable PwlTable::rounded_to_fxp(int lambda) const {
  GQA_EXPECTS_MSG(lambda >= 0 && lambda <= 30, "lambda out of range");
  PwlTable out = *this;
  for (double& k : out.slopes) k = round_to_grid(k, lambda);
  for (double& b : out.intercepts) b = round_to_grid(b, lambda);
  return out;
}

std::string PwlTable::to_string() const {
  std::string out = format("PwlTable[%d entries]\n", entries());
  for (int i = 0; i < entries(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    std::string span;
    if (i == 0) {
      span = breakpoints.empty() ? "(-inf, +inf)"
                                 : format("(-inf, %.4f)", breakpoints[0]);
    } else if (i == entries() - 1) {
      span = format("[%.4f, +inf)", breakpoints[u - 1]);
    } else {
      span = format("[%.4f, %.4f)", breakpoints[u - 1], breakpoints[u]);
    }
    out += format("  seg %2d %-22s k=%+.6f b=%+.6f\n", i, span.c_str(),
                  slopes[u], intercepts[u]);
  }
  return out;
}

}  // namespace gqa
