# Empty compiler generated dependencies file for micro_kernel_throughput.
# This may be replaced when dependencies are built.
