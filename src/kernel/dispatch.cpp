#include "kernel/dispatch.h"

#include <atomic>
#include <string>

#include "util/contracts.h"
#include "util/env.h"

namespace gqa::kernel {

namespace {

/// The oracle backend: probe always passes, every op is null, so call
/// sites run the scalar loops that predate the dispatch layer.
constexpr KernelBackend kScalarBackend{
    .name = "scalar",
    .probe = [] { return true; },
    .ops = KernelOps{},
};

/// Active-backend pointer. Null until first resolution; the pointees are
/// constant-initialized statics, so publication needs no fence beyond the
/// release store (readers acquire-load a pointer to immutable data).
std::atomic<const KernelBackend*> g_active{nullptr};

}  // namespace

const std::vector<const KernelBackend*>& registry() {
  static const std::vector<const KernelBackend*> backends = [] {
    std::vector<const KernelBackend*> v;
#if defined(__x86_64__) || defined(_M_X64)
    v.push_back(&kAvx2Backend);
#endif
#if defined(__ARM_NEON)
    v.push_back(&kNeonBackend);
#endif
    v.push_back(&kScalarBackend);  // always registered, always last
    return v;
  }();
  return backends;
}

const KernelBackend& scalar_backend() { return kScalarBackend; }

bool backend_available(const KernelBackend& backend) {
  return backend.probe();
}

const KernelBackend& resolve_backend(const std::string& name) {
  if (name == "auto") {
    for (const KernelBackend* b : registry()) {
      if (backend_available(*b)) return *b;
    }
    return kScalarBackend;  // unreachable: scalar's probe always passes
  }
  for (const KernelBackend* b : registry()) {
    if (name == b->name) {
      GQA_EXPECTS_MSG(backend_available(*b),
                      "GQA_KERNEL_BACKEND names backend '" + name +
                          "', but its capability probe fails on this host");
      return *b;
    }
  }
  GQA_EXPECTS_MSG(false, "GQA_KERNEL_BACKEND names unknown backend '" + name +
                             "' (registered: scalar|avx2|neon, or auto)");
  return kScalarBackend;  // unreachable
}

const KernelBackend& active() {
  const KernelBackend* current = g_active.load(std::memory_order_acquire);
  if (current == nullptr) {
    const KernelBackend& resolved =
        resolve_backend(env_string("GQA_KERNEL_BACKEND", "auto"));
    const KernelBackend* expected = nullptr;
    // Concurrent first calls resolve identically (env + registry are
    // stable); whichever store wins, the value is the same.
    g_active.compare_exchange_strong(expected, &resolved,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire);
    current = g_active.load(std::memory_order_acquire);
  }
  return *current;
}

BackendScope::BackendScope(const std::string& name) : previous_(&active()) {
  g_active.store(&resolve_backend(name), std::memory_order_release);
}

BackendScope::~BackendScope() {
  g_active.store(previous_, std::memory_order_release);
}

}  // namespace gqa::kernel
