#include "util/json.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fault_injection.h"
#include "util/strings.h"

namespace gqa {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("Json: " + what);
}

}  // namespace

Json Json::array_of(const std::vector<double>& values) {
  Json j = Json::array();
  for (double v : values) j.push_back(Json(v));
  return j;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) fail("operator[] on non-object");
  return object_[key];
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) fail("at(key) on non-object");
  const auto it = object_.find(key);
  if (it == object_.end()) fail("missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) fail("push_back on non-array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  fail("size() on scalar");
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) fail("at(index) on non-array");
  if (index >= array_.size()) fail("array index out of range");
  return array_[index];
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) fail("as_bool on non-bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) fail("as_number on non-number");
  return number_;
}

std::int64_t Json::as_int() const {
  const double n = as_number();
  return static_cast<std::int64_t>(std::llround(n));
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) fail("as_string on non-string");
  return string_;
}

std::vector<double> Json::as_double_array() const {
  if (type_ != Type::kArray) fail("as_double_array on non-array");
  std::vector<double> out;
  out.reserve(array_.size());
  for (const Json& v : array_) out.push_back(v.as_number());
  return out;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

std::string number_repr(double n) {
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    return format("%lld", static_cast<long long>(n));
  }
  return format("%.17g", n);
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string pad_close =
      indent < 0 ? "" : std::string(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent < 0 ? "" : "\n";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += number_repr(number_); break;
    case Type::kString: escape_into(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        out += pad;
        escape_into(out, key);
        out += indent < 0 ? ":" : ": ";
        value.dump_to(out, indent, depth + 1);
        if (++i < object_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(format("Json parse error at %zu: %s", pos_,
                                    what.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json();
      default: return parse_number();
    }
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      return Json(std::stod(token));
    } catch (const std::exception&) {
      fail("invalid number '" + token + "'");
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return out;
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out << content;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  // The temp name must be unique per (process, call) so concurrent writers
  // of the same path never stomp each other's temp file, and must live in
  // the same directory as `path` so the rename stays within one filesystem
  // (cross-device rename is not atomic — it is not even a rename).
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) +
      "." + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    throw std::runtime_error("cannot open temp file for writing: " + tmp);
  }
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), out);
  // Flush through the stdio buffer and the page cache before the rename:
  // publishing a name that points at un-flushed data would reopen the torn
  // window the temp+rename dance exists to close.
  const bool flushed = written == content.size() && std::fflush(out) == 0 &&
                       ::fsync(::fileno(out)) == 0;
  if (std::fclose(out) != 0 || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("failed writing temp file: " + tmp);
  }

  // The torn-write chaos point: a fault here models a crash after the data
  // hit the temp file but before it was published. The contract the chaos
  // suite asserts — no visible artifact, no leaked temp — is exactly what
  // this branch does.
  if (fault::triggered(fault::Point::kCacheWrite)) {
    std::remove(tmp.c_str());
    fault::throw_injected(fault::Point::kCacheWrite);
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot publish file (rename failed): " + path);
  }
}

}  // namespace gqa
