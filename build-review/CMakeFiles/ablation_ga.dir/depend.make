# Empty dependencies file for ablation_ga.
# This may be replaced when dependencies are built.
