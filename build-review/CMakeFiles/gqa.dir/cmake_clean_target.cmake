file(REMOVE_RECURSE
  "libgqa.a"
)
