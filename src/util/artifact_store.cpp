#include "util/artifact_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "util/contracts.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/serving_error.h"
#include "util/strings.h"
#include "util/thread_annotations.h"

namespace gqa {

std::uint64_t fnv1a(std::string_view bytes) {
  // FNV-1a 64-bit: offset basis / prime per the reference parameters.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

/// Version of the footer grammar itself (not of any payload schema — that
/// is ArtifactKey::format_version, carried inside the key).
constexpr int kContainerVersion = 1;

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

std::string footer_line(const ArtifactKey& key, const std::string& payload) {
  return "GQA-ARTIFACT v" + std::to_string(kContainerVersion) +
         " fnv1a=" + hex16(fnv1a(payload)) +
         " bytes=" + std::to_string(payload.size()) +
         " key=" + key.canonical();
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error(what);
}

/// Splits an artifact file into payload and verified footer. Throws
/// std::runtime_error naming the failure mode on any mismatch; on success
/// fills `payload` (exact published bytes) and `key_out` (the canonical
/// key string the footer claims), either of which may be null.
void verify_text(const std::string& text, std::string* payload,
                 std::string* key_out) {
  if (text.empty() || text.back() != '\n') {
    corrupt("truncated artifact: missing footer line");
  }
  const std::string body = text.substr(0, text.size() - 1);
  const std::size_t split_at = body.rfind('\n');
  if (split_at == std::string::npos) {
    corrupt("truncated artifact: no payload/footer separator");
  }
  const std::string footer = body.substr(split_at + 1);
  // The canonical key is space-free by contract, so the footer splits
  // cleanly into exactly five space-separated fields.
  const std::vector<std::string> fields = split(footer, ' ');
  if (fields.size() != 5 || fields[0] != "GQA-ARTIFACT" ||
      !fields[1].starts_with("v") || !fields[2].starts_with("fnv1a=") ||
      !fields[3].starts_with("bytes=") || !fields[4].starts_with("key=")) {
    corrupt("malformed artifact footer: '" + footer + "'");
  }
  char* end = nullptr;
  const long version = std::strtol(fields[1].c_str() + 1, &end, 10);
  if (*end != '\0' || version < 1 || version > kContainerVersion) {
    corrupt("unsupported artifact container version '" + fields[1] + "'");
  }
  end = nullptr;
  const std::uint64_t checksum =
      std::strtoull(fields[2].c_str() + 6, &end, 16);
  if (*end != '\0') corrupt("malformed artifact checksum field");
  end = nullptr;
  const unsigned long long bytes =
      std::strtoull(fields[3].c_str() + 6, &end, 10);
  if (*end != '\0') corrupt("malformed artifact length field");

  const std::string_view stored(body.data(), split_at);
  if (bytes != stored.size()) {
    corrupt("artifact truncated: footer claims " + std::to_string(bytes) +
            " payload bytes, file holds " + std::to_string(stored.size()));
  }
  if (fnv1a(stored) != checksum) {
    corrupt("artifact checksum mismatch: payload does not hash to " +
            fields[2].substr(6));
  }
  if (payload != nullptr) payload->assign(stored.data(), stored.size());
  if (key_out != nullptr) *key_out = fields[4].substr(4);
}

void verify_file(const std::string& path, std::string* payload,
                 std::string* key_out) {
  verify_text(read_file(path), payload, key_out);
}

/// Renames `path` aside to a unique, never-deleted `*.corrupt` name.
/// Best-effort: a concurrent quarantine of the same file wins the rename
/// race and this call becomes a no-op.
void quarantine(const std::string& path) {
  std::error_code ec;
  for (int n = 0; n < 1000; ++n) {
    const std::string target =
        n == 0 ? path + ".corrupt" : path + ".corrupt." + std::to_string(n);
    if (std::filesystem::exists(target, ec)) continue;
    std::filesystem::rename(path, target, ec);
    if (!ec) return;
  }
}

Mutex& process_mutex() {
  static Mutex mu;
  return mu;
}

struct ProcessState {
  bool initialized = false;
  std::shared_ptr<const ArtifactStore> store;
};

ProcessState& process_state() {
  static ProcessState state;
  return state;
}

}  // namespace

std::string ArtifactKey::canonical() const {
  return kind + "|" + identity + "|v=" + std::to_string(format_version);
}

std::string ArtifactKey::filename() const {
  return kind + "-" + hex16(fnv1a(canonical())) + ".gqa";
}

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {
  GQA_EXPECTS_MSG(!root_.empty(), "ArtifactStore root must be non-empty");
}

std::string ArtifactStore::path_for(const ArtifactKey& key) const {
  return root_ + "/" + key.filename();
}

void ArtifactStore::publish(const ArtifactKey& key,
                            const std::string& payload) const {
  GQA_EXPECTS_MSG(key.canonical().find_first_of(" \n") == std::string::npos,
                  "ArtifactKey must be space- and newline-free");
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  write_file_atomic(path_for(key),
                    payload + "\n" + footer_line(key, payload) + "\n");
}

std::optional<std::string> ArtifactStore::load(const ArtifactKey& key) const {
  const std::string path = path_for(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  // The `cache_read` chaos point models an unreadable cache (stale NFS
  // handle, permission flip). The artifact itself is healthy, so it is NOT
  // quarantined — the caller simply degrades to an in-process fit.
  if (fault::triggered(fault::Point::kCacheRead)) return std::nullopt;
  try {
    std::string payload;
    std::string stored_key;
    verify_file(path, &payload, &stored_key);
    if (stored_key != key.canonical()) {
      corrupt("artifact key mismatch: file was published under '" +
              stored_key + "'");
    }
    return payload;
  } catch (const std::exception&) {
    // Quarantine preserves the evidence and vacates the name, so the
    // caller's refit-and-publish self-heals the cache.
    quarantine(path);
    return std::nullopt;
  }
}

std::string ArtifactStore::read_verified(const std::string& filename) const {
  if (fault::triggered(fault::Point::kCacheRead)) {
    fault::throw_injected(fault::Point::kCacheRead);
  }
  const std::string path = root_ + "/" + filename;
  try {
    std::string payload;
    verify_file(path, &payload, nullptr);
    return payload;
  } catch (const std::exception& e) {
    throw ServingError(ServingErrorCode::kArtifactCorrupt,
                       "read_verified(" + path + "): " + e.what());
  }
}

std::vector<ArtifactStatus> ArtifactStore::verify_all(bool do_quarantine) const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());

  std::vector<ArtifactStatus> out;
  for (const std::string& name : names) {
    ArtifactStatus status;
    status.filename = name;
    if (name.find(".corrupt") != std::string::npos) {
      status.state = ArtifactStatus::State::kQuarantined;
      status.detail = "quarantined (preserved for inspection)";
      out.push_back(std::move(status));
      continue;
    }
    // Anything else that is not a published artifact (e.g. an in-flight
    // *.tmp.* of a concurrent publisher) is not this store's to judge.
    if (!name.ends_with(".gqa")) continue;
    try {
      verify_file(root_ + "/" + name, nullptr, nullptr);
      status.state = ArtifactStatus::State::kValid;
      status.detail = "ok";
    } catch (const std::exception& e) {
      status.state = ArtifactStatus::State::kCorrupt;
      status.detail = e.what();
      if (do_quarantine) {
        quarantine(root_ + "/" + name);
        status.detail += " (quarantined)";
      }
    }
    out.push_back(std::move(status));
  }
  return out;
}

std::shared_ptr<const ArtifactStore> ArtifactStore::process() {
  MutexLock lock(process_mutex());
  ProcessState& state = process_state();
  if (!state.initialized) {
    state.initialized = true;
    const std::string dir = env_string("GQA_CACHE_DIR", "");
    if (!dir.empty()) {
      state.store = std::make_shared<const ArtifactStore>(dir);
    }
  }
  return state.store;
}

std::shared_ptr<const ArtifactStore> ArtifactStore::exchange_process(
    std::shared_ptr<const ArtifactStore> next) {
  MutexLock lock(process_mutex());
  ProcessState& state = process_state();
  state.initialized = true;
  std::shared_ptr<const ArtifactStore> previous = std::move(state.store);
  state.store = std::move(next);
  return previous;
}

CacheScope::CacheScope(const std::string& dir) {
  // Force the env-derived store to exist first, so restoring `previous_`
  // restores the real configuration even when this scope is the process's
  // first cache touch.
  (void)ArtifactStore::process();
  previous_ = ArtifactStore::exchange_process(
      dir.empty() ? nullptr : std::make_shared<const ArtifactStore>(dir));
}

CacheScope::~CacheScope() {
  (void)ArtifactStore::exchange_process(std::move(previous_));
}

}  // namespace gqa
