file(REMOVE_RECURSE
  "CMakeFiles/table5_efficientvit.dir/bench/table5_efficientvit.cpp.o"
  "CMakeFiles/table5_efficientvit.dir/bench/table5_efficientvit.cpp.o.d"
  "bench/table5_efficientvit"
  "bench/table5_efficientvit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_efficientvit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
