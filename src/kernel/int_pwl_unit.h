// Bit-accurate software model of the Figure 1(b) hardware unit:
//
//   q (INT8/16) ──┬─> comparator chain over p̃_i ──> entry index i
//                 └─> multiplier k_i · q ──┐
//        LUT b_i ──> shifter b_i << s ─────┴─> adder ──> acc (λ frac bits)
//
// All internal buses have explicit widths and saturate. The dequantized
// output is S · acc · 2^-λ, which equals k_i·x̃ + b_i for x̃ = S·q — i.e.
// pwl(S·q) = S·pwl_q(q), the separability property of §3.1.
#pragma once

#include <cstdint>

#include "pwl/quantized_table.h"

namespace gqa {

/// Bus widths of the datapath. Defaults cover INT8/INT16 inputs with the
/// paper's shift range (multi-range scaling uses shifts up to 12).
struct IntPwlUnitConfig {
  int acc_bits = 32;   ///< accumulator width (saturating adder output)
  int max_shift = 16;  ///< barrel shifter capability for b << s
};

class IntPwlUnit {
 public:
  /// The table's input scale must be a power of two (validated).
  explicit IntPwlUnit(QuantizedPwlTable table,
                      IntPwlUnitConfig config = IntPwlUnitConfig{});

  /// Integer path: input code -> accumulator code with λ frac bits.
  /// The input code must fit the table's input width (hardware bus).
  [[nodiscard]] std::int64_t eval_code(std::int64_t q) const;

  /// Dequantized output value S · acc · 2^-λ.
  [[nodiscard]] double eval_real_from_code(std::int64_t q) const;

  /// Quantizes a real input and evaluates (round-trips through the bus).
  [[nodiscard]] double eval_real(double x) const;

  [[nodiscard]] const QuantizedPwlTable& table() const { return table_; }
  [[nodiscard]] const IntPwlUnitConfig& config() const { return config_; }

  /// Scale of the accumulator codes: S · 2^-λ.
  [[nodiscard]] double acc_scale() const { return acc_scale_; }

 private:
  QuantizedPwlTable table_;
  IntPwlUnitConfig config_;
  int shift_s_;       ///< b << s where S = 2^-s; negative s shifts right
  double acc_scale_;
};

}  // namespace gqa
