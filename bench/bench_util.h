// Shared helpers for the reproduction benches: seed-averaged fitting,
// environment knobs, and result dumping. Each bench binary regenerates one
// table or figure of the paper (see DESIGN.md §4 for the index).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/approximator.h"
#include "eval/protocol.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace gqa::bench {

/// Number of independent fit seeds to average (GA/NN-LUT runs are
/// stochastic; the paper reports single runs, we stabilize with the mean).
inline int fit_seeds() {
  return static_cast<int>(env_int("GQA_FIT_SEEDS", 3));
}

/// Fits `seeds` approximators with distinct seeds.
inline std::vector<Approximator> fit_many(Op op, Method method, int entries,
                                          int seeds) {
  std::vector<Approximator> out;
  out.reserve(static_cast<std::size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    FitOptions options;
    options.entries = entries;
    options.seed = 0xB0B0 + static_cast<std::uint64_t>(s) * 7919 +
                   static_cast<std::uint64_t>(op) * 131 +
                   static_cast<std::uint64_t>(method) * 17;
    out.push_back(Approximator::fit(op, method, options));
  }
  return out;
}

/// Seed-averaged operator-level MSE (§4.1 protocol).
inline double avg_operator_mse(Op op, Method method, int entries,
                               const SweepOptions& opts = {}) {
  const std::vector<Approximator> fits =
      fit_many(op, method, entries, fit_seeds());
  double sum = 0.0;
  for (const Approximator& a : fits) sum += operator_level_mse(a, opts);
  return sum / static_cast<double>(fits.size());
}

/// Seed-averaged per-scale MSE series, ordered S = 2^0 .. 2^exp_lo.
inline std::vector<double> avg_scale_series(Op op, Method method, int entries,
                                            const SweepOptions& opts = {}) {
  const std::vector<Approximator> fits =
      fit_many(op, method, entries, fit_seeds());
  std::vector<double> sums;
  for (const Approximator& a : fits) {
    const ScaleSweepResult sweep = sweep_scale_mse(a, opts);
    if (sums.empty()) sums.assign(sweep.points.size(), 0.0);
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      sums[i] += sweep.points[i].mse / static_cast<double>(fits.size());
    }
  }
  return sums;
}

/// Writes a table both to stdout and, as markdown, into bench_results/.
inline void emit(const TablePrinter& table, const std::string& name) {
  table.print(std::cout);
  try {
    (void)std::system("mkdir -p bench_results");
    write_file("bench_results/" + name + ".md", table.to_markdown());
  } catch (const std::exception&) {
    // Result files are a convenience; never fail the bench over them.
  }
}

}  // namespace gqa::bench
