#include "kernel/multirange_unit.h"

#include <cmath>

#include "numerics/rounding.h"
#include "numerics/saturate.h"
#include "util/contracts.h"

namespace gqa {

MultiRangeUnit::MultiRangeUnit(QuantizedPwlTable table,
                               MultiRangeConfig range_config,
                               IntPwlUnitConfig unit_config)
    : unit_(std::move(table), unit_config), range_(std::move(range_config)) {
  range_.validate();
  const QuantizedPwlTable& t = unit_.table();
  GQA_EXPECTS_MSG(t.input.scale == std::ldexp(1.0, -t.lambda()),
                  "multi-range pwl input must be λ-frac fixed point");
}

double MultiRangeUnit::eval_fxp(std::int64_t code, int in_frac) const {
  GQA_EXPECTS(in_frac >= 0 && in_frac <= 48);
  const double value = std::ldexp(static_cast<double>(code), -in_frac);
  // Range detection compares against constants; expressing it on the real
  // value is exact because thresholds are representable in the bus format.
  const int e = range_.select_exponent(value);

  // Shift into IR: x' = x * 2^e (e <= 0 compresses, a right shift).
  const std::int64_t scaled = e <= 0 ? shift_round(code, -e)
                                     : sat_shl(code, e, 62);

  // Align to the pwl input bus: λ fractional bits, 8/16-bit saturating
  // (clamped through the shared bus_bounds helper, the same edge the pwl
  // unit's saturated eval uses).
  const QuantizedPwlTable& t = unit_.table();
  const int lambda = t.lambda();
  const BusBounds in = bus_bounds(t.input.bits, t.input.is_signed);
  const std::int64_t bus =
      in_frac >= lambda
          ? clamp_to_bus(shift_round(scaled, in_frac - lambda), in)
          : clamp_to_bus(sat_shl(scaled, lambda - in_frac, 62), in);

  const double pwl_value = unit_.eval_real_from_code(bus);
  return std::ldexp(pwl_value, range_.output_exponent(e));
}

void MultiRangeUnit::eval_fxp_batch(std::span<const std::int64_t> codes,
                                    int in_frac,
                                    std::span<double> out) const {
  GQA_EXPECTS(codes.size() == out.size());
  GQA_EXPECTS(in_frac >= 0 && in_frac <= 48);
  const QuantizedPwlTable& t = unit_.table();
  const int lambda = t.lambda();
  const BusBounds in = bus_bounds(t.input.bits, t.input.is_signed);
  const int frac_shift = in_frac - lambda;
  for (std::size_t n = 0; n < codes.size(); ++n) {
    const std::int64_t code = codes[n];
    const double value = std::ldexp(static_cast<double>(code), -in_frac);
    const int e = range_.select_exponent(value);
    const std::int64_t scaled =
        e <= 0 ? shift_round(code, -e) : sat_shl(code, e, 62);
    const std::int64_t bus =
        frac_shift >= 0
            ? clamp_to_bus(shift_round(scaled, frac_shift), in)
            : clamp_to_bus(sat_shl(scaled, -frac_shift, 62), in);
    out[n] = std::ldexp(unit_.eval_real_from_code(bus),
                        range_.output_exponent(e));
  }
}

double MultiRangeUnit::eval_real(double x) const {
  GQA_EXPECTS_MSG(std::isfinite(x), "multi-range input must be finite");
  constexpr int kBusFrac = 16;
  const std::int64_t code = round_to_int(std::ldexp(x, kBusFrac));
  return eval_fxp(code, kBusFrac);
}

}  // namespace gqa
