#include "genetic/genetic.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/contracts.h"
#include "util/thread_pool.h"

namespace gqa {

std::string genome_key(const Genome& genome) {
  std::string key(genome.size() * sizeof(double), '\0');
  if (!genome.empty()) std::memcpy(key.data(), genome.data(), key.size());
  return key;
}

GeneticOptimizer::GeneticOptimizer(GaConfig config) : config_(config) {
  GQA_EXPECTS(config_.population_size >= 2);
  GQA_EXPECTS(config_.generations >= 1);
  GQA_EXPECTS(config_.crossover_prob >= 0.0 && config_.crossover_prob <= 1.0);
  GQA_EXPECTS(config_.mutation_prob >= 0.0 && config_.mutation_prob <= 1.0);
  GQA_EXPECTS(config_.tournament_size >= 1 &&
              config_.tournament_size <= config_.population_size);
  GQA_EXPECTS(config_.elite_count >= 0 &&
              config_.elite_count < config_.population_size);
  GQA_EXPECTS(config_.num_threads >= 1);
}

void GeneticOptimizer::segment_swap_crossover(Genome& a, Genome& b, Rng& rng) {
  GQA_EXPECTS(a.size() == b.size());
  if (a.empty()) return;
  const std::size_t n = a.size();
  std::size_t lo = rng.index(n);
  std::size_t hi = rng.index(n);
  if (lo > hi) std::swap(lo, hi);
  for (std::size_t i = lo; i <= hi; ++i) std::swap(a[i], b[i]);
}

GaResult GeneticOptimizer::run(const InitFn& init, const FitnessFn& fitness,
                               const MutateFn& mutate, const RepairFn& repair,
                               const PopulationHook& hook) const {
  GQA_EXPECTS_MSG(init != nullptr, "GA needs an initializer");
  GQA_EXPECTS_MSG(fitness != nullptr, "GA needs a fitness function");
  GQA_EXPECTS_MSG(mutate != nullptr, "GA needs a mutation operator");

  Rng rng(config_.seed);
  const auto pop_size = static_cast<std::size_t>(config_.population_size);

  std::vector<Genome> population;
  population.reserve(pop_size);
  for (std::size_t i = 0; i < pop_size; ++i) {
    Genome g = init(rng);
    if (repair) repair(g);
    population.push_back(std::move(g));
  }

  GaResult result;
  result.best_fitness = std::numeric_limits<double>::infinity();
  result.history.reserve(static_cast<std::size_t>(config_.generations));

  std::vector<double> scores(pop_size);

  ThreadPool pool(config_.num_threads);
  // Memo cache across generations: elites are re-injected verbatim and
  // tournament winners duplicate, so identical byte patterns recur often.
  std::unordered_map<std::string, double> memo;
  std::vector<std::string> keys(pop_size);
  std::vector<std::size_t> pending;  // population indices that need scoring
  pending.reserve(pop_size);

  // Scores the population into `scores`. Cache lookups and insertions stay
  // on the caller thread; only the pure fitness calls fan out, each writing
  // its own slot — bit-identical to the serial path at any thread count.
  const auto evaluate_population =
      [&](const std::vector<Genome>& population) {
        pending.clear();
        if (config_.memoize_fitness) {
          for (std::size_t i = 0; i < pop_size; ++i) {
            keys[i] = genome_key(population[i]);
            const auto it = memo.find(keys[i]);
            if (it != memo.end()) {
              scores[i] = it->second;
              ++result.cache_hits;
            } else {
              // Reserve the slot so duplicates within this generation are
              // computed once; the real score lands after the fan-out.
              memo.emplace(keys[i], 0.0);
              pending.push_back(i);
            }
          }
        } else {
          for (std::size_t i = 0; i < pop_size; ++i) pending.push_back(i);
        }
        pool.parallel_for(pending.size(), [&](std::size_t j) {
          scores[pending[j]] = fitness(population[pending[j]]);
        });
        if (config_.memoize_fitness) {
          for (std::size_t idx : pending) memo[keys[idx]] = scores[idx];
          // Duplicates that hit the reserved placeholder read the real score.
          for (std::size_t i = 0; i < pop_size; ++i) {
            scores[i] = memo[keys[i]];
          }
        }
        result.evaluations += static_cast<std::int64_t>(pop_size);
      };

  for (int gen = 0; gen < config_.generations; ++gen) {
    // Genetic operators (Alg. 1 lines 9-16): each individual may cross with
    // a random partner and may mutate.
    for (std::size_t i = 0; i < pop_size; ++i) {
      if (rng.canonical() < config_.crossover_prob) {
        std::size_t j = rng.index(pop_size - 1);
        if (j >= i) ++j;  // uniform over population \ {i}
        segment_swap_crossover(population[i], population[j], rng);
        if (repair) {
          repair(population[i]);
          repair(population[j]);
        }
      }
      if (rng.canonical() < config_.mutation_prob) {
        mutate(population[i], rng);
        if (repair) repair(population[i]);
      }
    }

    // Evaluation. Track the generation's best index and copy the genome at
    // most once per generation instead of on every improvement.
    evaluate_population(population);
    std::size_t gen_best = 0;
    for (std::size_t i = 1; i < pop_size; ++i) {
      if (scores[i] < scores[gen_best]) gen_best = i;
    }
    if (scores[gen_best] < result.best_fitness) {
      result.best_fitness = scores[gen_best];
      result.best = population[gen_best];
    }
    result.history.push_back(result.best_fitness);
    if (hook) hook(gen, population, scores);

    // Tournament selection (Alg. 1 line 18) into the next generation, with
    // the global elite re-injected so progress is never lost.
    std::vector<Genome> next;
    next.reserve(pop_size);
    for (int e = 0; e < config_.elite_count; ++e) next.push_back(result.best);
    while (next.size() < pop_size) {
      std::size_t winner = rng.index(pop_size);
      for (int t = 1; t < config_.tournament_size; ++t) {
        const std::size_t challenger = rng.index(pop_size);
        if (scores[challenger] < scores[winner]) winner = challenger;
      }
      next.push_back(population[winner]);
    }
    population = std::move(next);
  }

  GQA_ENSURES(!result.best.empty() || config_.generations == 0);
  return result;
}

}  // namespace gqa
