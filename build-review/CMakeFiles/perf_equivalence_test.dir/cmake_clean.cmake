file(REMOVE_RECURSE
  "CMakeFiles/perf_equivalence_test.dir/tests/perf_equivalence_test.cpp.o"
  "CMakeFiles/perf_equivalence_test.dir/tests/perf_equivalence_test.cpp.o.d"
  "perf_equivalence_test"
  "perf_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
