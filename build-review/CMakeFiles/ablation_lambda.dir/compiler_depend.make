# Empty compiler generated dependencies file for ablation_lambda.
# This may be replaced when dependencies are built.
