// Figure 3: normalized MSE for GELU, HSWISH, and EXP across INT8 scaling
// factors S = 2^0..2^-6 (plus the average), comparing NN-LUT against
// GQA-LUT w/ RM at 8 and 16 entries, with the per-scale improvement ratios
// the paper annotates.
#include "bench_util.h"

using namespace gqa;

int main() {
  std::printf("== Figure 3: per-scale MSE, NN-LUT vs GQA-LUT w/ RM ==\n");
  for (Op op : {Op::kGelu, Op::kHswish, Op::kExp}) {
    std::map<std::string, std::vector<double>> series;
    for (int entries : {8, 16}) {
      series[format("NN-LUT %d", entries)] =
          bench::avg_scale_series(op, Method::kNnLut, entries);
      series[format("GQA w/RM %d", entries)] =
          bench::avg_scale_series(op, Method::kGqaRm, entries);
    }

    TablePrinter table({"S", "NN-LUT 8", "NN-LUT 16", "GQA w/RM 8",
                        "GQA w/RM 16", "ratio 8", "ratio 16"});
    table.set_title(format("Fig. 3 — %s (MSE; ratio = NN-LUT / GQA w/RM)",
                           op_info(op).name.c_str()));
    std::vector<double> avg(4, 0.0);
    for (int i = 0; i <= 6; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const double nn8 = series[format("NN-LUT %d", 8)][u];
      const double nn16 = series[format("NN-LUT %d", 16)][u];
      const double rm8 = series[format("GQA w/RM %d", 8)][u];
      const double rm16 = series[format("GQA w/RM %d", 16)][u];
      avg[0] += nn8 / 7.0;
      avg[1] += nn16 / 7.0;
      avg[2] += rm8 / 7.0;
      avg[3] += rm16 / 7.0;
      table.add_row({pow2_label(-i), sci(nn8), sci(nn16), sci(rm8), sci(rm16),
                     fixed(nn8 / rm8, 2) + "x", fixed(nn16 / rm16, 2) + "x"});
    }
    table.add_separator();
    table.add_row({"avg", sci(avg[0]), sci(avg[1]), sci(avg[2]), sci(avg[3]),
                   fixed(avg[0] / avg[2], 2) + "x",
                   fixed(avg[1] / avg[3], 2) + "x"});
    bench::emit(table, format("fig3_%s", op_info(op).name.c_str()));
    std::printf("\n");
  }
  return 0;
}
