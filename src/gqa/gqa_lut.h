// GQA-LUT (Algorithm 1): genetic search over breakpoint sets with
// quantization-aware fixed-point conversion. This is the paper's primary
// contribution; see rounding_mutation.h for the RM extension (Algorithm 2).
#pragma once

#include <string>

#include "genetic/genetic.h"
#include "gqa/rounding_mutation.h"
#include "numerics/nonlinear.h"
#include "pwl/fit_grid.h"
#include "pwl/pwl_table.h"

namespace gqa {

/// Which mutation operator drives the search.
enum class MutationKind {
  kGaussian,          ///< GQA-LUT w/o RM (normal noise, §3.2)
  kRoundingMutation,  ///< GQA-LUT w/ RM (Algorithm 2)
};

[[nodiscard]] std::string mutation_kind_name(MutationKind kind);

/// Full configuration of one GQA-LUT fit. Defaults follow Table 1's common
/// row (Nb = 7 ⇒ 8 entries, Np = 50, θc = 0.7, θm = 0.2, T = 500, λ = 5).
struct GqaConfig {
  Op op = Op::kGelu;
  double range_lo = -4.0;  ///< Rn
  double range_hi = 4.0;   ///< Rp
  int entries = 8;         ///< N (breakpoint count Nb = N-1)
  int lambda = 5;          ///< decimal bits of slopes/intercepts
  double grid_step = 0.01; ///< fitness grid step (Table 1 "data size")
  MutationKind mutation = MutationKind::kRoundingMutation;
  RmParams rm;             ///< used when mutation == kRoundingMutation
  double gaussian_sigma_frac = 0.05;  ///< sigma = frac * (Rp - Rn) for w/o RM
  /// GA loop settings; every GQA fitness variant is pure, so score
  /// memoization is safe and on by default here.
  GaConfig ga = {.memoize_fitness = true};
  FitStrategy fit_strategy = FitStrategy::kLeastSquares;
  double min_separation = 0.01;  ///< repair: minimum breakpoint spacing
  /// GA fitness variants (see DESIGN.md §5 for the interpretation note):
  ///  * kFxpAware (default): MSE of the candidate pwl after the λ-bit FXP
  ///    conversion of slopes/intercepts (Alg. 1 line 22) — quantization-
  ///    aware in (k, b), blind to the deployment scale.
  ///  * kFp32: plain FP32 MSE (Algorithm 1 read literally; ablation).
  ///  * kDeployedMean: mean Eq.-3-deployed MSE across all deployment
  ///    scales (oracle ablation).
  enum class Fitness { kFxpAware, kFp32, kDeployedMean };
  Fitness fitness = Fitness::kFxpAware;
  /// Input code width for the deployed-MSE objective (Eq. 3 clipping);
  /// 16 matches the paper's W16A16 hardware row.
  int input_bits = 8;
  /// Benchmark/ablation knob: score deployed MSE with the seed's O(codes)
  /// per-code scan instead of the prefix-sum closed form. Same results up
  /// to double rounding, dramatically slower on fine deployment grids.
  bool use_naive_objective = false;
  /// Deployment breakpoint grids 2^-s for which evolution archives its best
  /// candidate (the per-scale champions used at deployment). Presets use
  /// s = 0..6 (the paper's scale sweep S = 2^0..2^-6) for scale-dependent
  /// ops and s = λ for the fixed-point-input ops DIV/RSQRT (Table 2).
  std::vector<int> deployment_scale_exps = {0, 1, 2, 3, 4, 5, 6};
  /// Whether deployment uses the per-scale champion archive. Preset: true
  /// for Rounding Mutation (whose grid-snapped candidates make the
  /// population a multi-precision pool — "born to handle data with
  /// changeful precision"), false for the Gaussian variant, which deploys
  /// the single fitness-best table (the "straightforward" flow whose
  /// breakpoint deviation Fig. 2 analyses). Flip for ablations.
  bool per_scale_champions = true;

  [[nodiscard]] int breakpoint_count() const { return entries - 1; }

  /// Table 1 preset for (op, entries, mutation kind). `entries` must be 8 or
  /// 16 for the RM mutate-range presets; other sizes inherit the 8-entry RM
  /// range.
  [[nodiscard]] static GqaConfig preset(Op op, int entries,
                                        MutationKind mutation);

  void validate() const;
};

/// Deployment-ready champion archived for one breakpoint grid 2^-s. The
/// Rounding-Mutation population keeps injecting grid-snapped candidates, so
/// for every deployment scale the archive holds an individual whose
/// quantized breakpoints deviate little — the mechanism behind the paper's
/// "RM is born to handle data with changeful precision".
struct ScaleCandidate {
  int scale_exp = 0;          ///< s, deployment scale S = 2^-s
  Genome breakpoints;         ///< unquantized champion breakpoints
  double deployed_mse = 0.0;  ///< Eq.-3-deployed MSE at this scale
  PwlTable fxp_table;         ///< λ-rounded table built from the champion
};

/// Outcome of a fit: the FP-domain table, the λ-rounded FXP table
/// (Alg. 1 line 22), their grid MSEs, the GA trace, and the per-scale
/// champion archive.
struct GqaFitResult {
  GqaConfig config;
  PwlTable fp_table;
  PwlTable fxp_table;
  double fp_mse = 0.0;
  double fxp_mse = 0.0;
  GaResult ga;
  std::vector<ScaleCandidate> per_scale;

  /// Champion for a deployment scale, or nullptr when s was not archived.
  [[nodiscard]] const ScaleCandidate* candidate_for(int scale_exp) const;
  /// Champion table for s, falling back to the fitness-best fxp_table.
  [[nodiscard]] const PwlTable& table_for_scale(int scale_exp) const;
};

/// Runs Algorithm 1 end to end.
[[nodiscard]] GqaFitResult fit_gqa_lut(const GqaConfig& config);

/// Repair operator shared with tests: clip into (Rn, Rp), sort, and enforce
/// minimum separation.
void repair_breakpoints(Genome& genome, double lo, double hi,
                        double min_separation);

}  // namespace gqa
