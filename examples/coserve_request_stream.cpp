// Request-stream co-serving demo: both reproduction models registered on
// one async gqa::Server (eval/server.h), sharing the process-wide pool and
// a single pre-warmed NonlinearProvider whose replaced-op set is the union
// of the two model inventories. A mixed stream of requests is submitted
// asynchronously; the client polls tickets while "doing other work", then
// collects results in ticket order and cross-checks them against serial
// per-image forwards (they are bit-identical by contract).
//
// Env knobs: GQA_NUM_THREADS service lanes (default: hardware
//            concurrency), GQA_SERVE_SCENES images per model (default 4),
//            GQA_SERVER_QUEUE admission-queue capacity (default 8).
#include <cstdio>
#include <thread>
#include <vector>

#include "eval/scene.h"
#include "eval/server.h"
#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"
#include "util/env.h"
#include "util/timer.h"

int main() {
  using namespace gqa;

  const int scenes = static_cast<int>(env_int("GQA_SERVE_SCENES", 4));
  SceneOptions scene_options;
  scene_options.size = 64;
  std::vector<tfm::Tensor> images;
  for (const LabeledScene& s : make_scene_set(scene_options, scenes, 0xC0)) {
    images.push_back(s.image);
  }

  std::printf("Freezing both deployment models...\n");
  Timer prep;
  tfm::SegformerB0Like segformer;
  segformer.calibrate(images.front());
  segformer.freeze();
  tfm::EfficientViTB0Like efficientvit;
  efficientvit.calibrate(images.front());
  efficientvit.freeze();
  // One provider backs both models: EXP/GELU/DIV/RSQRT for SegFormer,
  // HSWISH/DIV for EfficientViT — the union is warmed once, shared by all.
  const auto nl = tfm::NonlinearProvider::with_method(
      Method::kGqaRm,
      {Op::kExp, Op::kGelu, Op::kHswish, Op::kDiv, Op::kRsqrt});
  std::printf("ready in %.1fs\n\n", prep.seconds());

  ServerOptions options;  // num_threads=0: the process-wide pool
  options.queue_capacity =
      static_cast<std::size_t>(env_int("GQA_SERVER_QUEUE", 8));
  Server server(nl, options);
  const int seg_id = server.register_model(segformer, "segformer");
  const int evit_id = server.register_model(efficientvit, "efficientvit");
  std::printf("server up: %d lane(s), queue capacity %zu, %zu models\n",
              server.lanes(), options.queue_capacity, server.model_count());

  // Submit the mixed stream asynchronously; submit() blocks only if the
  // bounded admission queue fills (backpressure), try_submit() would shed
  // load instead.
  Timer serve_timer;
  std::vector<Server::Ticket> tickets;
  std::vector<const char*> kinds;
  for (const tfm::Tensor& img : images) {
    tickets.push_back(server.submit(seg_id, img));
    kinds.push_back("segformer  ");
    tickets.push_back(server.submit(evit_id, img));
    kinds.push_back("efficientvit");
  }
  std::printf("submitted %zu requests; polling while they serve...\n",
              tickets.size());

  // The async client's loop: check readiness without blocking.
  std::size_t ready = 0;
  while (ready < tickets.size()) {
    ready = 0;
    for (const Server::Ticket t : tickets) {
      if (server.poll(t) == TicketStatus::kReady) ++ready;
    }
    std::this_thread::yield();  // "other work" would go here
  }

  // Ticket-order collection delivers results in submission order no matter
  // which lane finished which request first.
  bool all_identical = true;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const tfm::QTensor logits = server.wait(tickets[i]);
    const tfm::Tensor& img = images[i / 2];
    const tfm::QTensor serial =
        i % 2 == 0 ? segformer.forward_int(img, nl)
                   : efficientvit.forward_int(img, nl);
    const bool identical = logits.data() == serial.data();
    all_identical = all_identical && identical;
    std::int64_t sum = 0;
    for (std::int32_t v : logits.data()) sum += v;
    std::printf("  ticket %2llu  %s  logit-checksum %10lld  %s\n",
                static_cast<unsigned long long>(tickets[i]), kinds[i],
                static_cast<long long>(sum),
                identical ? "== serial" : "DIVERGED");
  }

  const Server::Stats stats = server.stats();
  std::printf("\nserved %llu requests in %.1fms across %llu batch(es) "
              "on %d lane(s)\n",
              static_cast<unsigned long long>(stats.completed),
              serve_timer.milliseconds(),
              static_cast<unsigned long long>(stats.batches), server.lanes());
  server.shutdown();
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: served results diverged from the serial forwards\n");
    return 1;
  }
  return 0;
}
