// Command-line front end to the fitting pipeline.
//
//   gqa_lut_cli fit     <op> [--method rm|norm|nnlut] [--entries N]
//                       [--lambda L] [--out file.json]
//   gqa_lut_cli eval    <file.json> [--scale-exp E]
//   gqa_lut_cli verilog <file.json> --scale-exp E [--out unit.v]
//   gqa_lut_cli ops
//   gqa_lut_cli cache warm   <op> [fit flags] [--dir D]
//   gqa_lut_cli cache verify [dir] [--quarantine]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/approximator.h"
#include "eval/protocol.h"
#include "hw/verilog_emitter.h"
#include "tfm/nonlinear_provider.h"
#include "util/artifact_store.h"
#include "util/env.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace gqa;

int usage() {
  std::printf(
      "usage:\n"
      "  gqa_lut_cli fit <op> [--method rm|norm|nnlut] [--entries N]\n"
      "                       [--lambda L] [--out file.json]\n"
      "  gqa_lut_cli eval <file.json> [--scale-exp E]\n"
      "  gqa_lut_cli verilog <file.json> --scale-exp E [--out unit.v]\n"
      "  gqa_lut_cli ops\n"
      "  gqa_lut_cli cache warm <op> [--method rm|norm|nnlut] [--entries N]\n"
      "                         [--lambda L] [--generations G] [--restarts R]\n"
      "                         [--dir D]   (default: $GQA_CACHE_DIR)\n"
      "  gqa_lut_cli cache verify [dir] [--quarantine]\n"
      "                         exit 0: all artifacts valid; exit 1: corrupt\n");
  return 2;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

Method method_from(const std::string& name) {
  if (name == "rm") return Method::kGqaRm;
  if (name == "norm") return Method::kGqaNoRm;
  if (name == "nnlut") return Method::kNnLut;
  throw ContractViolation("unknown method '" + name + "'");
}

int cmd_fit(int argc, char** argv) {
  if (argc < 3) return usage();
  const Op op = op_from_name(argv[2]);
  const auto flags = parse_flags(argc, argv, 3);
  FitOptions options;
  Method method = Method::kGqaRm;
  if (flags.count("method")) method = method_from(flags.at("method"));
  if (flags.count("entries")) options.entries = std::stoi(flags.at("entries"));
  if (flags.count("lambda")) options.lambda = std::stoi(flags.at("lambda"));
  const Approximator approx = Approximator::fit(op, method, options);
  std::printf("%s\n", approx.fxp_table().to_string().c_str());
  std::printf("operator-level MSE: %.3e\n",
              operator_level_mse(approx, SweepOptions{}));
  const std::string out =
      flags.count("out") ? flags.at("out")
                         : to_lower(op_info(op).name) + "_lut.json";
  approx.save(out);
  std::printf("saved to %s\n", out.c_str());
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 3) return usage();
  const Approximator approx = Approximator::load(argv[2]);
  const auto flags = parse_flags(argc, argv, 3);
  std::printf("op=%s method=%s entries=%d lambda=%d\n",
              op_info(approx.op()).name.c_str(),
              method_name(approx.method()).c_str(),
              approx.fxp_table().entries(), approx.lambda());
  if (op_info(approx.op()).scale_dependent) {
    const ScaleSweepResult sweep = sweep_scale_mse(approx);
    for (const ScalePoint& p : sweep.points) {
      std::printf("  S=2^%-3d MSE %.3e\n", p.exponent, p.mse);
    }
    std::printf("  avg %.3e\n", sweep.avg_mse());
  } else {
    std::printf("  IR fixed-point MSE %.3e\n",
                operator_level_mse(approx, SweepOptions{}));
  }
  if (flags.count("scale-exp")) {
    const int e = std::stoi(flags.at("scale-exp"));
    std::printf("  at S=2^%d: %.3e\n", e,
                scale_mse(approx.table_for_scale(-e), approx.op(), e,
                          SweepOptions{}).mse);
  }
  return 0;
}

int cmd_verilog(int argc, char** argv) {
  if (argc < 3) return usage();
  const Approximator approx = Approximator::load(argv[2]);
  const auto flags = parse_flags(argc, argv, 3);
  if (!flags.count("scale-exp")) return usage();
  const int e = std::stoi(flags.at("scale-exp"));
  const QuantizedPwlTable table =
      approx.quantized(QuantParams{std::ldexp(1.0, e), 8, true});
  const std::string out = flags.count("out") ? flags.at("out") : "gqa_unit.v";
  hw::VerilogOptions options;
  write_file(out, hw::emit_pwl_unit(table, options));
  write_file(out + ".tb.v", hw::emit_testbench(table, options));
  std::printf("wrote %s and %s.tb.v\n", out.c_str(), out.c_str());
  return 0;
}

/// `cache warm` pre-fits one op into an artifact store (the offline
/// equivalent of NonlinearProvider::warm_up_deployment's publish path);
/// `cache verify` scans a store, reports per-artifact checksum/version
/// status, and optionally quarantines corrupt files. verify exits 0 when
/// every published artifact is valid and 1 when any is corrupt, so scripts
/// can gate on cache health.
int cmd_cache(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  const std::vector<int> grid = tfm::NonlinearProvider::deployment_scale_exps();

  if (sub == "warm") {
    if (argc < 4) return usage();
    const Op op = op_from_name(argv[3]);
    const auto flags = parse_flags(argc, argv, 4);
    FitOptions options;
    Method method = Method::kGqaRm;
    if (flags.count("method")) method = method_from(flags.at("method"));
    if (flags.count("entries")) options.entries = std::stoi(flags.at("entries"));
    if (flags.count("lambda")) options.lambda = std::stoi(flags.at("lambda"));
    if (flags.count("generations")) {
      options.ga_generations = std::stoi(flags.at("generations"));
    }
    if (flags.count("restarts")) {
      options.ga_restarts = std::stoi(flags.at("restarts"));
    }
    const std::string dir = flags.count("dir") ? flags.at("dir")
                                               : env_string("GQA_CACHE_DIR", "");
    if (dir.empty()) {
      std::fprintf(stderr,
                   "cache warm: no cache dir (pass --dir or set "
                   "GQA_CACHE_DIR)\n");
      return 2;
    }
    const ArtifactStore store(dir);
    const ArtifactKey key =
        Approximator::cache_key(op, method, options, 8, grid);
    const bool hit = store.load(key).has_value();
    (void)Approximator::fit_cached(op, method, options, &store, 8, grid);
    std::printf("%s: %s -> %s\n", hit ? "cache hit" : "fitted and published",
                op_info(op).name.c_str(), store.path_for(key).c_str());
    return 0;
  }

  if (sub == "verify") {
    std::string dir;
    bool quarantine = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quarantine") == 0) {
        quarantine = true;
      } else {
        dir = argv[i];
      }
    }
    if (dir.empty()) dir = env_string("GQA_CACHE_DIR", "");
    if (dir.empty()) {
      std::fprintf(stderr,
                   "cache verify: no cache dir (pass one or set "
                   "GQA_CACHE_DIR)\n");
      return 2;
    }
    const ArtifactStore store(dir);
    int valid = 0;
    int corrupt = 0;
    int quarantined = 0;
    for (const ArtifactStatus& status : store.verify_all(quarantine)) {
      const char* label = "ok";
      switch (status.state) {
        case ArtifactStatus::State::kValid:
          ++valid;
          break;
        case ArtifactStatus::State::kCorrupt:
          label = "CORRUPT";
          ++corrupt;
          break;
        case ArtifactStatus::State::kQuarantined:
          label = "quarantined";
          ++quarantined;
          break;
      }
      std::printf("%-11s %s  %s\n", label, status.filename.c_str(),
                  status.detail.c_str());
    }
    std::printf("cache verify: %d valid, %d corrupt, %d quarantined in %s\n",
                valid, corrupt, quarantined, dir.c_str());
    return corrupt > 0 ? 1 : 0;
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "fit") return cmd_fit(argc, argv);
    if (cmd == "eval") return cmd_eval(argc, argv);
    if (cmd == "verilog") return cmd_verilog(argc, argv);
    if (cmd == "cache") return cmd_cache(argc, argv);
    if (cmd == "ops") {
      for (Op op : all_ops()) {
        const OpInfo& info = op_info(op);
        std::printf("%-10s range (%g, %g)%s\n", info.name.c_str(),
                    info.range_lo, info.range_hi,
                    info.scale_dependent ? "" : "  [fixed-point input]");
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
