#include "gqa/rounding_mutation.h"

#include <algorithm>
#include <cmath>

#include "numerics/rounding.h"
#include "util/contracts.h"

namespace gqa {

void rounding_mutation(Genome& genome, const RmParams& params, Rng& rng) {
  GQA_EXPECTS(params.theta_r >= 0.0 && params.theta_r <= 1.0);
  GQA_EXPECTS(params.ma >= 0 && params.ma <= params.mb);
  GQA_EXPECTS_MSG((params.mb + 1) * params.theta_r <= 1.0 + 1e-12,
                  "mutate range and theta_r must keep probabilities <= 1");

  for (double& p : genome) {
    const double rand_p = rng.canonical();
    for (int i = params.ma; i <= params.mb; ++i) {
      const double lo = static_cast<double>(i) * params.theta_r;
      const double hi = static_cast<double>(i + 1) * params.theta_r;
      if (rand_p >= lo && rand_p < hi) {
        p = round_to_grid(p, i);  // ⌊p·2^i⌉ / 2^i
        break;                    // mutate only once (Alg. 2 line 8)
      }
    }
  }
  std::sort(genome.begin(), genome.end());  // Alg. 2 line 12
}

MutateFn make_rounding_mutation(const RmParams& params) {
  return [params](Genome& genome, Rng& rng) {
    rounding_mutation(genome, params, rng);
  };
}

MutateFn make_gaussian_mutation(double sigma, double per_element_prob) {
  GQA_EXPECTS(sigma >= 0.0);
  GQA_EXPECTS(per_element_prob >= 0.0 && per_element_prob <= 1.0);
  return [sigma, per_element_prob](Genome& genome, Rng& rng) {
    for (double& p : genome) {
      if (rng.bernoulli(per_element_prob)) p += rng.normal(0.0, sigma);
    }
    std::sort(genome.begin(), genome.end());
  };
}

bool on_grid(double value, int exponent) {
  const double scaled = std::ldexp(value, exponent);
  return scaled == std::nearbyint(scaled);
}

}  // namespace gqa
