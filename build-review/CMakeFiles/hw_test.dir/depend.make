# Empty dependencies file for hw_test.
# This may be replaced when dependencies are built.
