// Dyadic rational arithmetic per Jacob et al. (CVPR'18): a real multiplier
// M is approximated as mult * 2^-shift with an integer `mult`, so that
// requantization between integer domains needs only one integer multiply
// and one rounding shift. This is the integer-only pipeline the paper's
// Transformer evaluation follows (§4.2).
#pragma once

#include <cstdint>
#include <string>

#include "numerics/rounding.h"

namespace gqa {

/// Fixed multiplier of the form mult * 2^-shift.
struct Dyadic {
  std::int32_t mult = 0;  ///< integer multiplier, |mult| < 2^bits
  int shift = 0;          ///< right-shift amount, >= 0

  /// Builds the closest dyadic approximation to `real` with a multiplier of
  /// at most `bits` significant bits. `real` must be finite; real == 0 maps
  /// to mult = 0.
  [[nodiscard]] static Dyadic from_real(double real, int bits = 15);

  /// Applies the multiplier to an integer with round-to-nearest.
  [[nodiscard]] std::int64_t apply(std::int64_t value) const {
    return shift_round(value * mult, shift);
  }

  [[nodiscard]] double real() const {
    return std::ldexp(static_cast<double>(mult), -shift);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Dyadic&, const Dyadic&) = default;
};

/// True when `value` is an exact power of two (value = 2^k for integer k).
[[nodiscard]] bool is_power_of_two(double value);

/// Returns round(log2(value)) for positive `value`; the paper's learnable
/// power-of-two scale derivation S = 2^round(log2 alpha).
[[nodiscard]] int nearest_po2_exponent(double value);

}  // namespace gqa
