// Fixed-size worker pool with a blocking parallel_for, plus the bounded
// MPMC queue the serving front-end drains through it.
//
// ThreadPool is built for the GA fitness fan-out and the scene-batched
// serving dispatches: the caller thread participates in the work, indices
// are handed out dynamically through an atomic counter (so uneven per-item
// costs balance), and the first exception thrown by any worker is rethrown
// on the caller. Determinism is the caller's job: parallel_for only says
// *who* computes fn(i), never reorders observable writes, so pure
// functions writing to disjoint slots give bit-identical results at any
// thread count.
//
// Thread-safety contract (statically checked — every guarded field below
// carries GQA_GUARDED_BY and a Clang -Werror=thread-safety build enforces
// it; see util/thread_annotations.h):
//   - parallel_for may be called from several threads concurrently on one
//     pool; jobs are serialized (one dispatch at a time, FIFO by mutex
//     acquisition). This is what lets an async Server and batch
//     InferenceEngines co-serve on the single process-wide global_pool().
//   - parallel_for is NOT reentrant: calling it from inside a running
//     fn(i) on the same pool self-deadlocks. Nested fan-outs must pass a
//     null pool (run inline) — the tfm modules already do.
//   - BoundedQueue is fully thread-safe (any number of producers and
//     consumers); close() releases every blocked producer and consumer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace gqa {

/// RAII-owned thread: joins on destruction (or on an explicit join()), so
/// a thread can never be leaked or detached by accident. This is the only
/// way code outside util/ may own a thread — the repo-invariant linter
/// (tools/lint/check_invariants.sh) rejects naked std::thread
/// construction and detach() everywhere else.
class ScopedThread {
 public:
  ScopedThread() = default;
  template <typename Fn>
  explicit ScopedThread(Fn&& fn) : thread_(std::forward<Fn>(fn)) {}
  ~ScopedThread() {
    if (thread_.joinable()) thread_.join();
  }

  ScopedThread(ScopedThread&&) = default;
  ScopedThread& operator=(ScopedThread&& other) {
    if (thread_.joinable()) thread_.join();
    thread_ = std::move(other.thread_);
    return *this;
  }
  ScopedThread(const ScopedThread&) = delete;
  ScopedThread& operator=(const ScopedThread&) = delete;

  [[nodiscard]] bool joinable() const { return thread_.joinable(); }
  void join() { thread_.join(); }

 private:
  std::thread thread_;
};

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is the last lane).
  /// `num_threads <= 1` creates no workers; parallel_for then runs inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, count), blocking until all complete.
  /// Rethrows the first exception raised by any invocation. Safe to call
  /// from several threads at once (jobs serialize); never call it from
  /// inside a running fn on the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn)
      GQA_EXCLUDES(dispatch_mutex_, mutex_);

  /// Runs body(lane) once per lane (the caller participates as the last
  /// lane), blocking until every body returns. This is the continuous-
  /// service primitive: unlike parallel_for there is no fixed work list —
  /// each body is expected to LOOP, pulling tasks from a shared source, so
  /// work admitted while the job is live is picked up by whichever lane
  /// frees first instead of waiting behind a batch barrier. A body with no
  /// work may park on the caller's own condition variable while sibling
  /// bodies still run (the job occupies the pool's dispatch slot either
  /// way), but every body must be woken and return once the shared source
  /// is exhausted — the job ends only when all bodies have returned,
  /// releasing the pool to co-resident callers. Same contract as
  /// parallel_for otherwise: safe from several threads (jobs serialize),
  /// never reentrant, first exception rethrown on the caller.
  void run_lanes(const std::function<void(std::size_t)>& body)
      GQA_EXCLUDES(dispatch_mutex_, mutex_);

  /// Total lanes including the caller (>= 1).
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size()) + 1;
  }

 private:
  void worker_loop() GQA_EXCLUDES(mutex_);
  /// Runs the shared index handout for one job. `count` is the job's
  /// element count, captured under mutex_ by the caller — passing it in
  /// keeps the hot loop off the guarded field.
  void drain(const std::function<void(std::size_t)>& fn, std::size_t count)
      GQA_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< written in ctor/dtor only

  Mutex dispatch_mutex_;  ///< serializes concurrent parallel_for callers
  Mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ GQA_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t job_count_ GQA_GUARDED_BY(mutex_) = 0;
  /// Not guarded: the dynamic work handout. Relaxed ordering suffices —
  /// see the justification at its operations in thread_pool.cpp.
  std::atomic<std::size_t> next_index_{0};
  std::size_t active_workers_ GQA_GUARDED_BY(mutex_) = 0;
  std::uint64_t epoch_ GQA_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ GQA_GUARDED_BY(mutex_);
  bool stopping_ GQA_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for every i in [0, count): serially when `pool` is null or
/// single-lane, through the pool otherwise. Callers guarantee each index
/// writes disjoint output slots, so both paths are bit-identical.
///
/// `min_per_lane` is the granularity floor: fan-out is skipped (the loop
/// runs inline on the caller) when count / lanes < min_per_lane, so cheap
/// per-index bodies can never be slower than serial just from dispatch
/// overhead. The default of 1 keeps the historical always-fan-out
/// behaviour for heavy bodies (GA fitness, per-scale sweeps).
void pooled_for(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t)>& fn,
                std::size_t min_per_lane = 1);

/// Splits [0, count) into contiguous chunks (a few per lane; one chunk when
/// serial) and runs fn(lo, hi) per chunk. For elementwise work this lets
/// per-chunk scratch buffers be allocated once per chunk instead of once
/// per index; chunk boundaries depend only on (count, lane count), never on
/// scheduling, so results stay deterministic. `min_per_lane` is the same
/// granularity floor as pooled_for, counted in elements: below it the whole
/// range runs as one inline chunk.
void pooled_for_chunks(
    ThreadPool* pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_per_lane = 1);

/// Lazily-created process-wide pool for scene-batched serving, sized by the
/// GQA_NUM_THREADS environment variable (default: hardware concurrency).
/// Created on first use and reused for the lifetime of the process, so
/// repeated engine dispatches never pay thread spawn/join costs.
[[nodiscard]] ThreadPool& global_pool();

/// The lane count global_pool() has (or will have): GQA_NUM_THREADS when
/// set and >= 1, otherwise std::thread::hardware_concurrency().
[[nodiscard]] int global_pool_threads();

/// Bounded multi-producer/multi-consumer FIFO — the admission queue of the
/// async serving front-end (eval/server.h), generic over the item type.
///
/// Capacity bounds the items *queued* (pushed, not yet popped); that is the
/// backpressure surface: push() blocks while full, try_push() rejects, and
/// the caller picks which. close() transitions the queue to a draining
/// state: every blocked producer wakes and fails, consumers keep receiving
/// the remaining items and then get an empty result, so a drain loop
/// `while (!(batch = pop_all()).empty())` terminates cleanly.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item dropped) iff the
  /// queue was closed before space became available.
  bool push(T item) GQA_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) {
        space_cv_.wait(lock.native());
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking admit: false when the queue is full or closed.
  bool try_push(T item) GQA_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and empty,
  /// returning nullopt).
  std::optional<T> pop() GQA_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) item_cv_.wait(lock.native());
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    space_cv_.notify_one();
    return item;
  }

  /// Non-blocking drain: takes everything queued right now (possibly
  /// nothing) without waiting, releasing any producers blocked on a full
  /// queue. Items queued before close() remain takeable after it. This is
  /// how continuous-service lanes refill mid-job — a blocking pop would
  /// park the lane and hold the pool.
  std::vector<T> try_pop_all() GQA_EXCLUDES(mutex_) {
    std::vector<T> out;
    {
      MutexLock lock(mutex_);
      if (items_.empty()) return out;
      out.assign(std::make_move_iterator(items_.begin()),
                 std::make_move_iterator(items_.end()));
      items_.clear();
    }
    space_cv_.notify_all();
    return out;
  }

  /// Blocks until at least one item is available, then takes everything
  /// queued. An empty result means closed-and-drained — the consumer's
  /// termination signal.
  std::vector<T> pop_all() GQA_EXCLUDES(mutex_) {
    std::vector<T> out;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) item_cv_.wait(lock.native());
      out.assign(std::make_move_iterator(items_.begin()),
                 std::make_move_iterator(items_.end()));
      items_.clear();
    }
    space_cv_.notify_all();
    return out;
  }

  /// Stops admission and wakes every blocked producer/consumer. Items
  /// already queued stay poppable. Idempotent.
  void close() GQA_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    space_cv_.notify_all();
    item_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mutex_;
  std::condition_variable space_cv_;  ///< producers wait here while full
  std::condition_variable item_cv_;   ///< consumers wait here while empty
  std::deque<T> items_ GQA_GUARDED_BY(mutex_);
  const std::size_t capacity_;
  bool closed_ GQA_GUARDED_BY(mutex_) = false;
};

}  // namespace gqa
