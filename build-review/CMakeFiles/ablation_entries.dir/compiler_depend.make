# Empty compiler generated dependencies file for ablation_entries.
# This may be replaced when dependencies are built.
