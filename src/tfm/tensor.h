// Minimal dense tensors for the Transformer substrate. Two storage kinds:
//   Tensor  — float32 values (reference path, weights)
//   QTensor — int32 codes with per-tensor QuantParams (integer-only path;
//             activations are INT8-range codes, accumulators INT32-range)
// Shapes are row-major; feature maps use {C, H, W}, token matrices {N, D}.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "quant/quant_params.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace gqa::tfm {

struct Shape {
  std::vector<int> dims;

  Shape() = default;
  Shape(std::initializer_list<int> d) : dims(d) {}

  [[nodiscard]] int rank() const { return static_cast<int>(dims.size()); }
  [[nodiscard]] std::int64_t numel() const {
    std::int64_t n = 1;
    for (int d : dims) n *= d;
    return n;
  }
  [[nodiscard]] int operator[](int i) const {
    return dims[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Shape&, const Shape&) = default;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0F) {}
  /// Adopts pre-sized storage (workspace reuse); `storage` must already
  /// hold exactly numel() elements.
  Tensor(Shape shape, std::vector<float>&& storage)
      : shape_(std::move(shape)), data_(std::move(storage)) {
    GQA_EXPECTS(static_cast<std::int64_t>(data_.size()) == shape_.numel());
  }

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  /// He/Xavier-style normal init with the given stddev.
  [[nodiscard]] static Tensor randn(Shape shape, Rng& rng, double stddev);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return shape_.numel(); }
  [[nodiscard]] std::vector<float>& data() { return data_; }
  [[nodiscard]] const std::vector<float>& data() const { return data_; }

  // Rank-specific accessors (contract-checked in debug paths).
  [[nodiscard]] float& at(int i) { return data_[idx1(i)]; }
  [[nodiscard]] float at(int i) const { return data_[idx1(i)]; }
  [[nodiscard]] float& at(int i, int j) { return data_[idx2(i, j)]; }
  [[nodiscard]] float at(int i, int j) const { return data_[idx2(i, j)]; }
  [[nodiscard]] float& at(int i, int j, int k) { return data_[idx3(i, j, k)]; }
  [[nodiscard]] float at(int i, int j, int k) const { return data_[idx3(i, j, k)]; }
  [[nodiscard]] float& at(int i, int j, int k, int l) { return data_[idx4(i, j, k, l)]; }
  [[nodiscard]] float at(int i, int j, int k, int l) const { return data_[idx4(i, j, k, l)]; }

  /// Largest absolute value (calibration helper).
  [[nodiscard]] double amax() const;

  /// Moves the storage out for workspace recycling; the tensor is left
  /// empty (rank-0, no data).
  [[nodiscard]] std::vector<float> take_storage() && {
    shape_ = Shape{};
    return std::move(data_);
  }

 private:
  [[nodiscard]] std::size_t idx1(int i) const {
    GQA_ASSERT(shape_.rank() == 1);
    return static_cast<std::size_t>(i);
  }
  [[nodiscard]] std::size_t idx2(int i, int j) const {
    GQA_ASSERT(shape_.rank() == 2);
    return static_cast<std::size_t>(i) * shape_[1] + j;
  }
  [[nodiscard]] std::size_t idx3(int i, int j, int k) const {
    GQA_ASSERT(shape_.rank() == 3);
    return (static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k;
  }
  [[nodiscard]] std::size_t idx4(int i, int j, int k, int l) const {
    GQA_ASSERT(shape_.rank() == 4);
    return ((static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k) *
               shape_[3] + l;
  }

  Shape shape_;
  std::vector<float> data_;
};

/// Integer-code tensor with per-tensor quantization parameters.
class QTensor {
 public:
  QTensor() = default;
  QTensor(Shape shape, QuantParams qp)
      : shape_(std::move(shape)),
        qp_(qp),
        data_(static_cast<std::size_t>(shape_.numel()), 0) {}
  /// Adopts pre-sized storage (workspace reuse); `storage` must already
  /// hold exactly numel() elements.
  QTensor(Shape shape, QuantParams qp, std::vector<std::int32_t>&& storage)
      : shape_(std::move(shape)), qp_(qp), data_(std::move(storage)) {
    GQA_EXPECTS(static_cast<std::int64_t>(data_.size()) == shape_.numel());
  }

  /// Quantizes a float tensor (Eq. 2).
  [[nodiscard]] static QTensor quantize(const Tensor& values,
                                        const QuantParams& qp);

  /// Dequantizes to float.
  [[nodiscard]] Tensor dequantize() const;

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] const QuantParams& params() const { return qp_; }
  [[nodiscard]] std::vector<std::int32_t>& data() { return data_; }
  [[nodiscard]] const std::vector<std::int32_t>& data() const { return data_; }

  [[nodiscard]] std::int32_t& at(int i, int j) {
    GQA_ASSERT(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }
  [[nodiscard]] std::int32_t at(int i, int j) const {
    GQA_ASSERT(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }
  [[nodiscard]] std::int32_t& at(int i, int j, int k) {
    GQA_ASSERT(shape_.rank() == 3);
    return data_[(static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k];
  }
  [[nodiscard]] std::int32_t at(int i, int j, int k) const {
    GQA_ASSERT(shape_.rank() == 3);
    return data_[(static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k];
  }

  /// Moves the storage out for workspace recycling; the tensor is left
  /// empty (rank-0, no data).
  [[nodiscard]] std::vector<std::int32_t> take_storage() && {
    shape_ = Shape{};
    return std::move(data_);
  }

 private:
  Shape shape_;
  QuantParams qp_;
  std::vector<std::int32_t> data_;
};

class Workspace;

/// Per-pixel argmax labels of a logits map {C, h, w} (ties keep the lowest
/// class id). Shared by the model-specific `ModelT::argmax_labels` statics.
[[nodiscard]] std::vector<int> argmax_label_map(const Tensor& logits);
[[nodiscard]] std::vector<int> argmax_label_map(const QTensor& logits);

/// {C,H,W} feature map <-> {H*W, C} token matrix. A non-null Workspace
/// backs the result with pooled storage (results are bit-identical).
[[nodiscard]] Tensor to_tokens(const Tensor& chw, Workspace* ws = nullptr);
[[nodiscard]] Tensor from_tokens(const Tensor& tokens, int h, int w,
                                 Workspace* ws = nullptr);
[[nodiscard]] QTensor to_tokens(const QTensor& chw, Workspace* ws = nullptr);
[[nodiscard]] QTensor from_tokens(const QTensor& tokens, int h, int w,
                                  Workspace* ws = nullptr);

}  // namespace gqa::tfm
