// Softmax linear-probe training for the segmentation classifiers.
//
// The paper fine-tunes whole models on Cityscapes; this reproduction
// trains each model's final classifier on the synthetic labeled scenes
// (frozen random backbone), which gives the decision margins needed for
// the mIoU study while keeping the build self-contained (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tfm/tensor.h"

namespace gqa::tfm {

/// Trains a `classes x dim (+bias)` softmax classifier with mini-batch SGD
/// and cross-entropy on per-pixel features.
///
/// `features[i]` is a {N, dim} token matrix; `labels[i]` holds N class ids.
/// `weights` is the row-major {classes, dim} parameter span; `bias` has
/// `classes` entries. Returns the final average cross-entropy.
double train_softmax_probe(const std::vector<Tensor>& features,
                           const std::vector<std::vector<int>>& labels,
                           int classes, std::span<float> weights,
                           std::span<float> bias, int epochs,
                           double learning_rate, std::uint64_t seed);

}  // namespace gqa::tfm
