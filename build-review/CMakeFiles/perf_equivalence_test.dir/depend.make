# Empty dependencies file for perf_equivalence_test.
# This may be replaced when dependencies are built.
