# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table3_avg_mse.
