#include "core/approximator.h"

#include <limits>

#include "pwl/serialize.h"
#include "util/contracts.h"
#include "util/json.h"

namespace gqa {

std::string method_name(Method method) {
  switch (method) {
    case Method::kNnLut: return "NN-LUT";
    case Method::kGqaNoRm: return "GQA-LUT w/o RM";
    case Method::kGqaRm: return "GQA-LUT w/ RM";
  }
  return "?";
}

const std::vector<Method>& all_methods() {
  static const std::vector<Method> methods = {Method::kNnLut, Method::kGqaNoRm,
                                              Method::kGqaRm};
  return methods;
}

namespace {

std::uint64_t derive_seed(Op op, Method method, const FitOptions& options) {
  if (options.seed != 0) return options.seed;
  // Stable seed so every bench reproduces the same tables.
  return 0x9E3779B97F4A7C15ULL ^
         (static_cast<std::uint64_t>(op) << 16) ^
         (static_cast<std::uint64_t>(method) << 8) ^
         static_cast<std::uint64_t>(options.entries);
}

}  // namespace

Approximator Approximator::fit(Op op, Method method,
                               const FitOptions& options) {
  GQA_EXPECTS(options.entries >= 2);
  GQA_EXPECTS(options.ga_restarts >= 1);

  Approximator approx;
  approx.op_ = op;
  approx.method_ = method;
  approx.lambda_ = options.lambda;
  const std::uint64_t seed = derive_seed(op, method, options);

  if (method == Method::kNnLut) {
    NnLutConfig cfg = NnLutConfig::preset(op, options.entries);
    cfg.lambda = options.lambda;
    cfg.seed = seed;
    if (options.nn_epochs) cfg.epochs = *options.nn_epochs;
    if (options.range_lo) cfg.range_lo = *options.range_lo;
    if (options.range_hi) cfg.range_hi = *options.range_hi;
    const NnLutFitResult result = fit_nn_lut(cfg);
    approx.fp_table_ = result.fp_table;
    approx.fxp_table_ = result.fxp_table;
    return approx;
  }

  const MutationKind kind = method == Method::kGqaRm
                                ? MutationKind::kRoundingMutation
                                : MutationKind::kGaussian;
  GqaConfig cfg = GqaConfig::preset(op, options.entries, kind);
  cfg.lambda = options.lambda;
  cfg.fit_strategy = options.fit_strategy;
  if (options.ga_generations) cfg.ga.generations = *options.ga_generations;
  if (options.range_lo) cfg.range_lo = *options.range_lo;
  if (options.range_hi) cfg.range_hi = *options.range_hi;

  double best_fitness = std::numeric_limits<double>::infinity();
  std::map<int, double> best_deployed;
  for (int r = 0; r < options.ga_restarts; ++r) {
    cfg.ga.seed = seed + static_cast<std::uint64_t>(r) * 0x51D;
    const GqaFitResult result = fit_gqa_lut(cfg);
    if (result.ga.best_fitness < best_fitness) {
      best_fitness = result.ga.best_fitness;
      approx.fp_table_ = result.fp_table;
      approx.fxp_table_ = result.fxp_table;
    }
    // Merge per-scale champion archives across restarts.
    for (const ScaleCandidate& cand : result.per_scale) {
      const auto it = best_deployed.find(cand.scale_exp);
      if (it == best_deployed.end() || cand.deployed_mse < it->second) {
        best_deployed[cand.scale_exp] = cand.deployed_mse;
        approx.scale_tables_[cand.scale_exp] = cand.fxp_table;
      }
    }
  }
  return approx;
}

const PwlTable& Approximator::table_for_scale(int scale_exp) const {
  const auto it = scale_tables_.find(scale_exp);
  return it != scale_tables_.end() ? it->second : fxp_table_;
}

Approximator Approximator::from_table(Op op, Method method, PwlTable fxp_table,
                                      int lambda) {
  fxp_table.validate();
  Approximator approx;
  approx.op_ = op;
  approx.method_ = method;
  approx.lambda_ = lambda;
  approx.fp_table_ = fxp_table;
  approx.fxp_table_ = std::move(fxp_table);
  return approx;
}

QuantizedPwlTable Approximator::quantized(const QuantParams& input,
                                          int param_bits) const {
  // Deployment grid exponent s from S = 2^-s.
  const int s = -input.po2_exponent();
  return quantize_table(table_for_scale(s), input, lambda_, param_bits);
}

IntPwlUnit Approximator::make_unit(int scale_exp, int input_bits,
                                   int param_bits) const {
  const QuantParams input{std::ldexp(1.0, scale_exp), input_bits, true};
  return IntPwlUnit(quantized(input, param_bits));
}

MultiRangeUnit Approximator::make_multirange_unit(
    int input_bits, int param_bits,
    std::optional<MultiRangeConfig> config) const {
  const MultiRangeConfig range =
      config ? *config : MultiRangeConfig::preset_for(op_);
  const QuantParams input{std::ldexp(1.0, -lambda_), input_bits, true};
  return MultiRangeUnit(quantized(input, param_bits), range);
}

void Approximator::save(const std::string& path) const {
  Json j = Json::object();
  j["op"] = Json(op_info(op_).name);
  j["method"] = Json(static_cast<int>(method_));
  j["lambda"] = Json(lambda_);
  j["fp_table"] = pwl_to_json(fp_table_);
  j["fxp_table"] = pwl_to_json(fxp_table_);
  Json scales = Json::array();
  for (const auto& [exp, table] : scale_tables_) {
    Json entry = Json::object();
    entry["scale_exp"] = Json(exp);
    entry["table"] = pwl_to_json(table);
    scales.push_back(std::move(entry));
  }
  j["scale_tables"] = std::move(scales);
  write_file(path, j.dump());
}

Approximator Approximator::load(const std::string& path) {
  const Json j = Json::parse(read_file(path));
  Approximator approx;
  approx.op_ = op_from_name(j.at("op").as_string());
  approx.method_ = static_cast<Method>(j.at("method").as_int());
  approx.lambda_ = static_cast<int>(j.at("lambda").as_int());
  approx.fp_table_ = pwl_from_json(j.at("fp_table"));
  approx.fxp_table_ = pwl_from_json(j.at("fxp_table"));
  if (j.contains("scale_tables")) {
    const Json& scales = j.at("scale_tables");
    for (std::size_t i = 0; i < scales.size(); ++i) {
      const Json& entry = scales.at(i);
      approx.scale_tables_[static_cast<int>(entry.at("scale_exp").as_int())] =
          pwl_from_json(entry.at("table"));
    }
  }
  return approx;
}

}  // namespace gqa
