#!/usr/bin/env bash
# Docs-freshness gate, registered as the `docs_freshness` ctest (label:
# lint) and run in CI. Two checks:
#
#  1. Every repo path referenced in README.md and docs/ARCHITECTURE.md
#     (src/..., tests/..., bench/..., examples/..., tools/..., docs/...)
#     must exist — documentation naming a moved or deleted header fails
#     the build instead of rotting.
#  2. Every non-empty line of every ```cpp block in README.md must appear
#     verbatim in examples/readme_snippets.cpp, which compiles against the
#     library — so the README's code snippets stay compilable. Edit the
#     README and examples/readme_snippets.cpp together.
#
# The env-knob documentation check that used to live here is now rule R1
# of tools/lint/check_invariants.sh (the repo-invariant linter).
#
# GQA_LINT_ROOT overrides the repo root (used by lint_selftest.sh to point
# the gate at fixture trees).
set -u
cd "${GQA_LINT_ROOT:-$(dirname "$0")/../..}"
status=0

for doc in README.md docs/ARCHITECTURE.md; do
  if [ ! -f "$doc" ]; then
    echo "docs-freshness: missing $doc" >&2
    status=1
    continue
  fi
  refs=$(grep -oE '(src|tests|bench|examples|tools|docs)/[A-Za-z0-9_./-]+\.[A-Za-z0-9]+' "$doc" | sort -u)
  for ref in $refs; do
    if [ ! -e "$ref" ]; then
      echo "docs-freshness: $doc references missing file: $ref" >&2
      status=1
    fi
  done
done

snippet_file=examples/readme_snippets.cpp
if [ ! -f "$snippet_file" ]; then
  echo "docs-freshness: missing $snippet_file" >&2
  exit 1
fi
while IFS= read -r line; do
  trimmed=$(printf '%s' "$line" | sed -e 's/^[[:space:]]*//' -e 's/[[:space:]]*$//')
  [ -z "$trimmed" ] && continue
  if ! grep -qF -- "$trimmed" "$snippet_file"; then
    echo "docs-freshness: README cpp snippet line missing from $snippet_file: $trimmed" >&2
    status=1
  fi
done < <(awk '/^```cpp$/{f=1;next} /^```/{f=0} f' README.md)

if [ "$status" -eq 0 ]; then
  echo "docs-freshness: OK"
fi
exit $status
