// Property suite for the paper's central separability identity (§2.3):
//   pwl(S·q) = S·pwl_q(q)
// The bit-accurate IntPwlUnit must agree with real-arithmetic evaluation
// of the *dequantized* table at every input code, for every operator,
// fitting method, and deployment scale — i.e. integer deployment is
// exactly the real pwl with Eq.-3-quantized parameters, nothing more.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/approximator.h"
#include "pwl/quantized_table.h"

namespace gqa {
namespace {

using Case = std::tuple<Op, Method, int>;  // op, method, scale exponent

class Separability : public ::testing::TestWithParam<Case> {};

TEST_P(Separability, IntUnitEqualsDequantizedTable) {
  const auto [op, method, exp] = GetParam();
  const Approximator approx = Approximator::fit(op, method, {});
  const QuantParams input{std::ldexp(1.0, exp), 8, true};
  const QuantizedPwlTable qt = approx.quantized(input);
  const IntPwlUnit unit(qt);

  for (std::int64_t q = input.qmin(); q <= input.qmax(); ++q) {
    const double x = input.dequantize(q);
    // S·pwl_q(q) computed by the integer datapath ...
    const double integer_path = unit.eval_real_from_code(q);
    // ... must equal k_i·x + b_i in real arithmetic, with the segment
    // chosen by the same code-domain comparator (quantization can tie
    // adjacent breakpoints; the comparator semantics resolve ties).
    const int seg = qt.segment_index(q);
    const double real_path =
        qt.slope_value(seg) * x + qt.intercept_value(seg);
    ASSERT_NEAR(integer_path, real_path, 1e-9)
        << op_info(op).name << " " << method_name(method) << " q=" << q
        << " S=2^" << exp;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Separability,
    ::testing::Combine(::testing::Values(Op::kGelu, Op::kHswish, Op::kExp),
                       ::testing::Values(Method::kNnLut, Method::kGqaNoRm,
                                         Method::kGqaRm),
                       ::testing::Values(0, -2, -4, -6)),
    [](const ::testing::TestParamInfo<Case>& info) {
      // Note: no structured bindings here — the preprocessor does not
      // group square brackets, so their commas would split macro args.
      const Op op = std::get<0>(info.param);
      const Method method = std::get<1>(info.param);
      const int exp = std::get<2>(info.param);
      std::string name = op_info(op).name + "_";
      name += method == Method::kNnLut     ? "nnlut"
              : method == Method::kGqaNoRm ? "norm"
                                           : "rm";
      name += "_s" + std::to_string(-exp);
      return name;
    });

class EntrySweep : public ::testing::TestWithParam<int> {};

TEST_P(EntrySweep, MoreEntriesNeverHurtMuch) {
  // pwl approximation quality is monotone-ish in entry count; allow a
  // small stochastic margin since each fit is an independent GA run.
  const int entries = GetParam();
  FitOptions small, large;
  small.entries = entries;
  large.entries = entries * 2;
  const Approximator a = Approximator::fit(Op::kGelu, Method::kGqaRm, small);
  const Approximator b = Approximator::fit(Op::kGelu, Method::kGqaRm, large);
  const OpInfo& info = op_info(Op::kGelu);
  auto grid_mse = [&info](const Approximator& approx) {
    double sse = 0.0;
    int n = 0;
    for (double x = info.range_lo; x <= info.range_hi; x += 0.01) {
      const double err = approx.eval(x) - info.f(x);
      sse += err * err;
      ++n;
    }
    return sse / n;
  };
  EXPECT_LT(grid_mse(b), grid_mse(a) * 1.5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EntrySweep, ::testing::Values(4, 8, 16));

TEST(Separability, ShiftIdentityForPo2Inputs) {
  // b << s in the kernel equals b / S exactly for every power-of-two S.
  const Approximator approx = Approximator::fit(Op::kExp, Method::kGqaRm, {});
  for (int exp : {0, -1, -3, -6}) {
    const QuantizedPwlTable qt =
        approx.quantized(QuantParams{std::ldexp(1.0, exp), 8, true});
    EXPECT_EQ(qt.intercept_shift(), -exp);
    const IntPwlUnit unit(qt);
    // acc(0) = k_0·0 + (b_0 << s): dequantized it must equal b_0 exactly.
    const int seg = qt.segment_index(0);
    EXPECT_NEAR(unit.eval_real_from_code(0), qt.intercept_value(seg), 1e-12);
  }
}

}  // namespace
}  // namespace gqa
