// Tests for the evaluation harness: the §4.1 quantization-aware MSE
// protocol, mIoU / confusion matrix, and the synthetic scene generator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/approximator.h"
#include "eval/miou.h"
#include "eval/protocol.h"
#include "eval/scene.h"
#include "util/contracts.h"

namespace gqa {
namespace {

// ---------------------------------------------------------------- protocol

TEST(Protocol, ScaleMseSamplesDequantizedGrid) {
  const Approximator approx = Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  const ScalePoint p0 = scale_mse(approx.fxp_table(), Op::kGelu, 0, {});
  // At S = 2^0, the integer codes inside [-4, 4] are {-4..4}: 9 samples.
  EXPECT_EQ(p0.samples, 9);
  const ScalePoint p6 = scale_mse(approx.fxp_table(), Op::kGelu, -6, {});
  // At S = 2^-6, INT8 covers [-2, 1.98]: all 256 codes fall inside.
  EXPECT_EQ(p6.samples, 256);
}

TEST(Protocol, SweepOrderedLargestScaleFirst) {
  const Approximator approx = Approximator::fit(Op::kExp, Method::kGqaRm, {});
  const ScaleSweepResult sweep = sweep_scale_mse(approx);
  ASSERT_EQ(sweep.points.size(), 7u);
  EXPECT_EQ(sweep.points.front().exponent, 0);
  EXPECT_EQ(sweep.points.back().exponent, -6);
  EXPECT_GT(sweep.avg_mse(), 0.0);
  EXPECT_GE(sweep.max_mse(), sweep.avg_mse());
  EXPECT_GE(sweep.large_scale_share(), 0.0);
  EXPECT_LE(sweep.large_scale_share(), 1.0);
}

TEST(Protocol, BreakpointDeviationGrowsWithScale) {
  // For a single-table deployment (no per-scale champions), the MSE at the
  // coarsest grid must dominate the finest one — the Fig. 2 phenomenon.
  const Approximator approx =
      Approximator::fit(Op::kGelu, Method::kGqaNoRm, {});
  const ScaleSweepResult sweep = sweep_scale_mse(approx);
  EXPECT_GT(sweep.points.front().mse, sweep.points.back().mse);
}

TEST(Protocol, FxpDomainMseForDivRsqrt) {
  const Approximator div = Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  const double mse = fxp_domain_mse(div.table_for_scale(5), Op::kDiv, {});
  EXPECT_GT(mse, 0.0);
  EXPECT_LT(mse, 5e-3);  // paper band: 7.8e-4 (ours is comparable)
  EXPECT_DOUBLE_EQ(operator_level_mse(div, {}), mse);
}

TEST(Protocol, MultirangeWideMseBounded) {
  const Approximator div = Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  const double rel_mse = multirange_wide_mse(
      div.table_for_scale(5), MultiRangeConfig::div_preset(), {});
  EXPECT_LT(rel_mse, 0.02);  // < ~14% relative RMS across decades
}

TEST(Protocol, NormalizeSeries) {
  const std::vector<double> norm = normalize_series({2.0, 1.0, 4.0});
  EXPECT_DOUBLE_EQ(norm[2], 1.0);
  EXPECT_DOUBLE_EQ(norm[0], 0.5);
  EXPECT_THROW(normalize_series({}), ContractViolation);
}

// -------------------------------------------------------------------- miou

TEST(ConfusionMatrix, PerfectPrediction) {
  ConfusionMatrix cm(3);
  const std::vector<int> labels = {0, 1, 2, 1, 0};
  cm.add(labels, labels);
  EXPECT_DOUBLE_EQ(cm.mean_iou(), 1.0);
  EXPECT_DOUBLE_EQ(cm.pixel_accuracy(), 1.0);
}

TEST(ConfusionMatrix, HandComputedCase) {
  ConfusionMatrix cm(3);
  // truth:      0 0 1 1 2
  // prediction: 0 1 1 1 0
  cm.add(std::vector<int>{0, 0, 1, 1, 2}, std::vector<int>{0, 1, 1, 1, 0});
  // class 0: tp=1 fp=1 fn=1 -> 1/3; class 1: tp=2 fp=1 fn=0 -> 2/3;
  // class 2: tp=0 fp=0 fn=1 -> 0.
  EXPECT_NEAR(cm.iou(0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.iou(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.iou(2), 0.0, 1e-12);
  EXPECT_NEAR(cm.mean_iou(), (1.0 / 3 + 2.0 / 3 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(cm.pixel_accuracy(), 3.0 / 5.0, 1e-12);
}

TEST(ConfusionMatrix, AbsentClassesIgnored) {
  ConfusionMatrix cm(5);
  cm.add(std::vector<int>{0, 0, 1}, std::vector<int>{0, 0, 1});
  EXPECT_DOUBLE_EQ(cm.iou(4), -1.0);  // never appears
  EXPECT_DOUBLE_EQ(cm.mean_iou(), 1.0);  // averaged over present classes
}

TEST(ConfusionMatrix, Validation) {
  ConfusionMatrix cm(3);
  EXPECT_THROW(cm.add(3, 0), ContractViolation);
  EXPECT_THROW(cm.add(0, -1), ContractViolation);
  EXPECT_THROW(cm.mean_iou(), ContractViolation);  // empty
  const std::vector<int> a = {0};
  const std::vector<int> b = {0, 1};
  EXPECT_THROW(cm.add(a, b), ContractViolation);
  EXPECT_THROW(ConfusionMatrix(1), ContractViolation);
}

// ------------------------------------------------------------------- scene

TEST(Scene, DeterministicPerSeed) {
  const SceneOptions options;
  const LabeledScene a = make_scene(options, 42);
  const LabeledScene b = make_scene(options, 42);
  EXPECT_EQ(a.image.data(), b.image.data());
  EXPECT_EQ(a.labels, b.labels);
  const LabeledScene c = make_scene(options, 43);
  EXPECT_NE(a.image.data(), c.image.data());
}

TEST(Scene, ShapesAndValueRange) {
  const SceneOptions options;
  const LabeledScene s = make_scene(options, 7);
  EXPECT_EQ(s.image.shape(), (tfm::Shape{3, 64, 64}));
  EXPECT_EQ(s.labels.size(), 64u * 64u);
  for (float v : s.image.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  for (int label : s.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, options.num_classes);
  }
}

TEST(Scene, ContainsLayoutAndObjectClasses) {
  const SceneOptions options;
  const LabeledScene s = make_scene(options, 123);
  std::vector<int> hist(static_cast<std::size_t>(options.num_classes), 0);
  for (int label : s.labels) ++hist[static_cast<std::size_t>(label)];
  EXPECT_GT(hist[0], 0);  // sky
  EXPECT_GT(hist[1], 0);  // ground
  EXPECT_GT(hist[2], 0);  // road
  int object_pixels = 0;
  for (int c = 3; c < options.num_classes; ++c) object_pixels += hist[static_cast<std::size_t>(c)];
  EXPECT_GT(object_pixels, 0);
}

TEST(Scene, ObjectClassesStayInConfiguredBand) {
  SceneOptions options;
  options.object_classes = 4;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const LabeledScene s = make_scene(options, seed);
    for (int label : s.labels) EXPECT_LT(label, 3 + options.object_classes);
  }
}

TEST(Scene, ClassColorsAreDistinct) {
  double a[3], b[3];
  for (int c1 = 0; c1 < 9; ++c1) {
    for (int c2 = c1 + 1; c2 < 9; ++c2) {
      class_color(c1, a);
      class_color(c2, b);
      const double d = std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]) +
                       std::abs(a[2] - b[2]);
      EXPECT_GT(d, 0.3) << "classes " << c1 << " vs " << c2;
    }
  }
}

TEST(Scene, DownsampleLabels) {
  std::vector<int> labels(16 * 16, 0);
  // Bottom-right quadrant is class 2.
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) labels[static_cast<std::size_t>(y) * 16 + x] = 2;
  }
  const std::vector<int> down = downsample_labels(labels, 16, 4, 4);
  ASSERT_EQ(down.size(), 16u);
  EXPECT_EQ(down[0], 0);
  EXPECT_EQ(down[15], 2);
  EXPECT_THROW(downsample_labels(labels, 15, 4, 4), ContractViolation);
}

TEST(Scene, SetGeneration) {
  const auto set = make_scene_set(SceneOptions{}, 3, 99);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_NE(set[0].image.data(), set[1].image.data());
  EXPECT_THROW(make_scene_set(SceneOptions{}, 0), ContractViolation);
}

}  // namespace
}  // namespace gqa
