// The quantization-aware objective GQA-LUT optimizes.
//
// For a candidate breakpoint set the deployed table is simulated exactly:
//   * per-segment least-squares (k, b) from the unquantized segments,
//     rounded to λ decimal bits (Alg. 1 line 22);
//   * per deployment scale S = 2^-s: breakpoints quantized with clipping to
//     the input width (Eq. 3), inputs drawn from the dequantized integer
//     grid x = S·q restricted to [Rn, Rp] (the §4.1 protocol);
//   * fitness = mean MSE across the deployment scale set.
//
// Plain-FP fitness plus post-hoc rounding (Algorithm 1 read literally)
// does NOT reproduce the paper's behaviour: the λ-rounding of (k, b) and
// the breakpoint deviation of Fig. 2(b) dominate the error, and Rounding
// Mutation then has nothing to exploit. With the deployed metric in the
// loop, Gaussian mutation faces a staircase landscape (deviation changes
// only when a breakpoint crosses a grid cell) while RM proposes exactly
// the grid moves that matter — reproducing the paper's w/RM > w/o RM
// ordering. See DESIGN.md §5 for the full interpretation note.
#pragma once

#include <cstdint>
#include <vector>

#include "genetic/genetic.h"
#include "numerics/nonlinear.h"
#include "pwl/fit_grid.h"
#include "pwl/pwl_table.h"

namespace gqa {

class QuantAwareObjective {
 public:
  /// `scale_exps` are the deployment exponents s (S = 2^-s). `input_bits`
  /// bounds the quantized breakpoint codes (Eq. 3 clipping).
  QuantAwareObjective(const FitGrid& grid, int lambda,
                      std::vector<int> scale_exps, int input_bits = 8);

  /// Mean deployed MSE across scales (lower is better).
  [[nodiscard]] double operator()(const Genome& breakpoints) const;

  /// Deployed MSE per scale exponent, in scale_exps() order. The per-
  /// segment (k, b) derivation is shared across scales, so this costs the
  /// same as operator().
  [[nodiscard]] std::vector<double> per_scale_mse(
      const Genome& breakpoints) const;

  /// Reference implementation of per_scale_mse that scans every integer
  /// code (the pre-prefix-sum path). Kept for equivalence tests and the
  /// fit-cost benchmarks; agrees with the fast path to double rounding.
  [[nodiscard]] std::vector<double> per_scale_mse_naive(
      const Genome& breakpoints) const;

  /// Deployed MSE at a single scale for a *fitted table* (analysis hook).
  [[nodiscard]] double deployed_mse(const PwlTable& fxp_table,
                                    int scale_exp) const;

  [[nodiscard]] const std::vector<int>& scale_exps() const {
    return scale_exps_;
  }

 private:
  struct ScaleGrid {
    int exponent = 0;          ///< s
    double scale = 1.0;        ///< S = 2^-s
    std::int64_t q_lo = 0;     ///< first integer code on the lattice
    std::vector<double> xs;    ///< dequantized integer grid within [lo, hi]
    std::vector<double> fs;    ///< reference values f(x)
    // Prefix sums over the code lattice (length xs.size()+1, index i holds
    // the sum over codes [0, i)): the SSE of any line over any code span
    // follows in O(1) from the expansion of sum((f - kx - b)^2).
    std::vector<double> sum_x, sum_xx, sum_f, sum_xf, sum_ff;
  };

  /// O(segments) deployed SSE/size via prefix sums. Segment boundaries are
  /// the quantized breakpoint *codes* (Eq. 3), mapped to lattice indices
  /// with integer arithmetic — no per-code scan, no float compares.
  [[nodiscard]] double mse_on(const ScaleGrid& sg,
                              const std::vector<std::int64_t>& bound_codes,
                              const std::vector<double>& ks,
                              const std::vector<double>& bs) const;

  /// O(codes) reference scan used by per_scale_mse_naive.
  [[nodiscard]] double mse_on_naive(const ScaleGrid& sg,
                                    const std::vector<std::int64_t>& bound_codes,
                                    const std::vector<double>& ks,
                                    const std::vector<double>& bs) const;

  /// Shared (k, b) derivation (Alg. 1 line 22) and breakpoint code
  /// quantization; feeds both the fast and the reference scorer.
  void derive_lines(const Genome& breakpoints, std::vector<double>& ks,
                    std::vector<double>& bs) const;

  const FitGrid* grid_;
  int lambda_;
  int input_bits_;
  std::vector<int> scale_exps_;
  std::vector<ScaleGrid> scale_grids_;
};

}  // namespace gqa
