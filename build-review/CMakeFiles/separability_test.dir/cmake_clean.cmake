file(REMOVE_RECURSE
  "CMakeFiles/separability_test.dir/tests/separability_test.cpp.o"
  "CMakeFiles/separability_test.dir/tests/separability_test.cpp.o.d"
  "separability_test"
  "separability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
