// Microbenchmark (google-benchmark): software throughput of the
// bit-accurate INT8 pwl kernel against libm reference evaluation and the
// FP pwl table — the CPU-side cost of the simulation itself.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/approximator.h"
#include "kernel/multirange_unit.h"

namespace {

using namespace gqa;

const Approximator& gelu_approx() {
  static const Approximator approx =
      Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  return approx;
}

void BM_IntPwlUnit_Gelu(benchmark::State& state) {
  const IntPwlUnit unit = gelu_approx().make_unit(-4);
  std::int64_t q = -128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.eval_real_from_code(q));
    q = q >= 127 ? -128 : q + 1;
  }
}
BENCHMARK(BM_IntPwlUnit_Gelu);

void BM_FpPwlTable_Gelu(benchmark::State& state) {
  const PwlTable& table = gelu_approx().fxp_table();
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.eval(x));
    x = x >= 4.0 ? -4.0 : x + 0.01;
  }
}
BENCHMARK(BM_FpPwlTable_Gelu);

void BM_LibmReference_Gelu(benchmark::State& state) {
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0))));
    x = x >= 4.0 ? -4.0 : x + 0.01;
  }
}
BENCHMARK(BM_LibmReference_Gelu);

void BM_MultiRangeUnit_Div(benchmark::State& state) {
  static const Approximator approx =
      Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  const MultiRangeUnit unit = approx.make_multirange_unit();
  std::int64_t code = 1 << 14;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unit.eval_fxp(code, 16));
    code = code >= (1 << 23) ? (1 << 14) : code + 4097;
  }
}
BENCHMARK(BM_MultiRangeUnit_Div);

}  // namespace

BENCHMARK_MAIN();
