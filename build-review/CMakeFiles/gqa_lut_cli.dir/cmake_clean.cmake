file(REMOVE_RECURSE
  "CMakeFiles/gqa_lut_cli.dir/tools/gqa_lut_cli.cpp.o"
  "CMakeFiles/gqa_lut_cli.dir/tools/gqa_lut_cli.cpp.o.d"
  "tools/gqa_lut_cli"
  "tools/gqa_lut_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqa_lut_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
