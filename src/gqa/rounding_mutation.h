// Rounding Mutation (Algorithm 2 of the paper). Instead of Gaussian noise,
// each breakpoint is stochastically snapped onto a fixed-point grid
// 2^-i for i ∈ [ma, mb]: with rand ∈ [0,1), exponent i is chosen when
// i·θr <= rand < (i+1)·θr. This "images" the deployment-time fixed-point
// conversion as mutation pressure, so surviving breakpoints are inherently
// robust to quantization (no breakpoint deviation at large scales).
#pragma once

#include "genetic/genetic.h"

namespace gqa {

/// RM hyperparameters (Table 1). θr = 0 disables mutation entirely — the
/// configuration the paper uses for DIV/RSQRT.
struct RmParams {
  double theta_r = 0.05;  ///< per-exponent selection probability
  int ma = 0;             ///< smallest grid exponent (coarsest grid 2^-ma)
  int mb = 6;             ///< largest grid exponent (finest grid 2^-mb)
};

/// Mutates `genome` in place per Algorithm 2 (sorting included).
void rounding_mutation(Genome& genome, const RmParams& params, Rng& rng);

/// Adapts rounding_mutation to the GA's MutateFn interface.
[[nodiscard]] MutateFn make_rounding_mutation(const RmParams& params);

/// Conventional Gaussian mutation used by GQA-LUT w/o RM: each element is
/// perturbed with probability `per_element_prob` by N(0, sigma), then the
/// genome is re-sorted.
[[nodiscard]] MutateFn make_gaussian_mutation(double sigma,
                                              double per_element_prob = 0.3);

/// True when `value` lies exactly on the 2^-exponent grid.
[[nodiscard]] bool on_grid(double value, int exponent);

}  // namespace gqa
