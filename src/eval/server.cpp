#include "eval/server.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/contracts.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace gqa {

namespace {

/// GQA_QOS_WEIGHTS fallback for SchedulerConfig::qos_weights: a comma-
/// separated per-model_id weight list ("3,1"). Unset or empty -> no
/// weights (every model weighs 1).
std::vector<int> qos_weights_from_env() {
  const std::string raw = env_string("GQA_QOS_WEIGHTS", "");
  std::vector<int> weights;
  if (trim(raw).empty()) return weights;
  for (const std::string& token : split(raw, ',')) {
    const std::string t = trim(token);
    char* end = nullptr;
    const long value = std::strtol(t.c_str(), &end, 10);
    GQA_EXPECTS_MSG(end != t.c_str() && *end == '\0' && value >= 1,
                    "GQA_QOS_WEIGHTS must be comma-separated integers >= 1");
    weights.push_back(static_cast<int>(value));
  }
  return weights;
}

std::exception_ptr cancellation_error() {
  return std::make_exception_ptr(ServingError(
      ServingErrorCode::kCancelled,
      "request cancelled: server shut down before it started "
      "(DrainPolicy::kCancelPending)"));
}

std::exception_ptr deadline_error() {
  return std::make_exception_ptr(
      ServingError(ServingErrorCode::kDeadlineExpired,
                   "request deadline expired before service"));
}

std::exception_ptr unavailable_error(const std::string& model_name) {
  return std::make_exception_ptr(
      ServingError(ServingErrorCode::kModelUnavailable,
                   "circuit breaker open for model '" + model_name +
                       "': failing fast until the cooldown probe succeeds"));
}

}  // namespace

Server::Server(const tfm::NonlinearProvider& provider, ServerOptions options)
    : provider_(provider),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {
  GQA_EXPECTS(options_.num_threads >= 0);
  GQA_EXPECTS_MSG(options_.queue_capacity >= 1,
                  "admission queue needs capacity >= 1");
  GQA_EXPECTS_MSG(options_.scheduler.max_inflight >= 0,
                  "max_inflight must be >= 0 (0 = lane count)");
  if (options_.scheduler.qos_weights.empty()) {
    options_.scheduler.qos_weights = qos_weights_from_env();
  }
  for (const int w : options_.scheduler.qos_weights) {
    GQA_EXPECTS_MSG(w >= 1, "QoS weights must be >= 1");
  }
  if (options_.scheduler.breaker_threshold < 0) {
    options_.scheduler.breaker_threshold = env_int("GQA_BREAKER_THRESHOLD", 0);
  }
  GQA_EXPECTS_MSG(options_.scheduler.breaker_threshold >= 0,
                  "GQA_BREAKER_THRESHOLD must be >= 0 (0 disables)");
  if (options_.scheduler.breaker_cooldown.count() < 0) {
    options_.scheduler.breaker_cooldown =
        std::chrono::milliseconds(env_int("GQA_BREAKER_COOLDOWN_MS", 100));
  }
  GQA_EXPECTS_MSG(options_.scheduler.breaker_cooldown.count() >= 0,
                  "GQA_BREAKER_COOLDOWN_MS must be >= 0");
  if (options_.num_threads >= 1) {
    owned_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_.get();
  } else {
    pool_ = &global_pool();
  }
  dispatcher_ = ScopedThread([this] { dispatch_loop(); });
}

Server::~Server() { shutdown(); }

std::uint64_t Server::weight_of(std::size_t model_id) const {
  const std::vector<int>& weights = options_.scheduler.qos_weights;
  if (model_id < weights.size()) {
    return static_cast<std::uint64_t>(weights[model_id]);
  }
  return 1;
}

int Server::register_forward(std::string name, ForwardFn forward) {
  GQA_EXPECTS_MSG(forward != nullptr, "register_forward needs a callable");
  int id = 0;
  {
    MutexLock lock(mutex_);
    GQA_EXPECTS_MSG(!stopping_, "register on a shut-down server");
    id = static_cast<int>(models_.size());
    if (name.empty()) name = format("model-%d", id);
    models_.push_back({std::move(name), std::move(forward)});
    backlog_.emplace_back();
    credits_.push_back(weight_of(static_cast<std::size_t>(id)));
    breakers_.emplace_back();
    stats_.started_per_model.push_back(0);
  }
  // One shared warm-up covers the union of every co-served model's op-set:
  // the provider warms everything it replaces, and repeats on a warm
  // provider are copy-free no-ops.
  if (options_.warm_provider) {
    try {
      provider_.warm_up_deployment();
    } catch (const ServingError&) {
      // A classified warm-up failure (the `warmup` chaos point) degrades
      // this server to cold lazy unit builds — results are identical.
    }
  }
  return id;
}

void Server::count_injected_fault() {
  MutexLock lock(mutex_);
  ++stats_.faults_injected;
}

std::optional<Server::Ticket> Server::admit(int model_id, tfm::Tensor image,
                                            bool blocking,
                                            SubmitOptions submit_options,
                                            Callback callback) {
  GQA_EXPECTS_MSG(submit_options.max_attempts >= 1,
                  "SubmitOptions::max_attempts must be >= 1");
  GQA_EXPECTS_MSG(submit_options.deadline.count() >= 0,
                  "SubmitOptions::deadline must be >= 0 (0 = none)");
  GQA_EXPECTS_MSG(submit_options.backoff.count() >= 0,
                  "SubmitOptions::backoff must be >= 0");
  Ticket ticket = 0;
  {
    MutexLock lock(mutex_);
    GQA_EXPECTS_MSG(!stopping_, "submit on a shut-down server");
    GQA_EXPECTS_MSG(
        model_id >= 0 && model_id < static_cast<int>(models_.size()),
        "submit for an unregistered model_id");
    if (fault::triggered(fault::Point::kAdmission)) {
      // The admission chaos point models an overloaded front door: the
      // request is refused before a ticket exists, so the submitter's
      // catch is the only delivery — nothing to retract or resolve.
      ++stats_.faults_injected;
      throw ServingError(ServingErrorCode::kAdmissionRejected,
                         "injected admission fault: request refused before "
                         "ticket issue");
    }
    ticket = next_ticket_++;
    Slot slot;
    slot.callback = std::move(callback);
    slots_.emplace(ticket, std::move(slot));
    ++stats_.submitted;
  }
  Request request{ticket, model_id, std::move(image)};
  if (submit_options.deadline.count() > 0) {
    request.expires_at = Clock::now() + submit_options.deadline;
  }
  request.max_attempts = submit_options.max_attempts;
  request.backoff = submit_options.backoff;
  const bool pushed = blocking ? queue_.push(std::move(request))
                               : queue_.try_push(std::move(request));
  if (pushed) {
    // Wake one lane parked mid-span — each admission adds exactly one
    // runnable request, and a woken lane that loses the race re-checks
    // and re-parks safely (completions/shutdown broadcast instead, since
    // every lane must observe span-over). The empty lock pairs this
    // notify with the lanes' empty-backlog check: a lane holding mutex_
    // through that check either sees the pushed item on its refill or
    // starts waiting before this notify can fire — never in between.
    { MutexLock lock(mutex_); }
    sched_cv_.notify_one();
    return ticket;
  }

  // The request never reached the queue: retract the ticket. push() only
  // fails when the queue closed (shutdown raced the submit); try_push()
  // also fails on a full queue — the load-shedding path.
  const bool closed = queue_.closed();
  {
    MutexLock lock(mutex_);
    slots_.erase(ticket);
    --stats_.submitted;
    if (!blocking && !closed) ++stats_.rejected;
  }
  result_cv_.notify_all();  // a drain() may be waiting on this last ticket
  GQA_EXPECTS_MSG(!closed, "server shut down while submitting");
  return std::nullopt;
}

Server::Ticket Server::submit(int model_id, tfm::Tensor image) {
  return submit(model_id, std::move(image), SubmitOptions{}, nullptr);
}

Server::Ticket Server::submit(int model_id, tfm::Tensor image,
                              Callback callback) {
  return submit(model_id, std::move(image), SubmitOptions{},
                std::move(callback));
}

Server::Ticket Server::submit(int model_id, tfm::Tensor image,
                              SubmitOptions options) {
  return submit(model_id, std::move(image), options, nullptr);
}

Server::Ticket Server::submit(int model_id, tfm::Tensor image,
                              SubmitOptions options, Callback callback) {
  const std::optional<Ticket> ticket =
      admit(model_id, std::move(image), /*blocking=*/true, options,
            std::move(callback));
  GQA_ASSERT(ticket.has_value());  // blocking admit throws instead of refusing
  return *ticket;
}

std::optional<Server::Ticket> Server::try_submit(int model_id,
                                                 tfm::Tensor image) {
  return try_submit(model_id, std::move(image), SubmitOptions{}, nullptr);
}

std::optional<Server::Ticket> Server::try_submit(int model_id,
                                                 tfm::Tensor image,
                                                 Callback callback) {
  return try_submit(model_id, std::move(image), SubmitOptions{},
                    std::move(callback));
}

std::optional<Server::Ticket> Server::try_submit(int model_id,
                                                 tfm::Tensor image,
                                                 SubmitOptions options) {
  return try_submit(model_id, std::move(image), options, nullptr);
}

std::optional<Server::Ticket> Server::try_submit(int model_id,
                                                 tfm::Tensor image,
                                                 SubmitOptions options,
                                                 Callback callback) {
  return admit(model_id, std::move(image), /*blocking=*/false, options,
               std::move(callback));
}

TicketStatus Server::poll(Ticket ticket) const {
  MutexLock lock(mutex_);
  GQA_EXPECTS_MSG(ticket < next_ticket_, "poll on a never-issued ticket");
  const auto it = slots_.find(ticket);
  if (it == slots_.end()) return TicketStatus::kConsumed;
  if (!it->second.ready()) return TicketStatus::kPending;
  if (it->second.error != nullptr &&
      it->second.code == ServingErrorCode::kDeadlineExpired) {
    return TicketStatus::kDeadlineExpired;
  }
  return TicketStatus::kReady;
}

tfm::QTensor Server::wait(Ticket ticket) {
  MutexLock lock(mutex_);
  const auto it = slots_.find(ticket);
  GQA_EXPECTS_MSG(it != slots_.end(),
                  "wait on a consumed or never-issued ticket");
  // Element references survive rehashing (other submits may insert while we
  // wait), so the slot reference stays valid until this wait erases it.
  // Claiming makes a concurrent second wait on the same ticket fail fast
  // instead of racing this one's erase.
  Slot& slot = it->second;
  GQA_EXPECTS_MSG(slot.callback == nullptr,
                  "wait on a callback ticket (its result is delivered to "
                  "the submit-time callback)");
  GQA_EXPECTS_MSG(!slot.claimed, "second wait on a ticket already waited on");
  slot.claimed = true;
  while (!slot.ready()) result_cv_.wait(lock.native());
  if (slot.error != nullptr) {
    const std::exception_ptr error = slot.error;
    slots_.erase(ticket);
    std::rethrow_exception(error);
  }
  tfm::QTensor result = std::move(*slot.result);
  slots_.erase(ticket);
  return result;
}

void Server::drain() {
  MutexLock lock(mutex_);
  while (stats_.completed != stats_.submitted) result_cv_.wait(lock.native());
}

void Server::shutdown() {
  // Concurrent shutdown() callers (including the destructor racing an
  // explicit call) serialize here; the loser sees a joined dispatcher and
  // returns — the call is idempotent (tests/server_test.cpp hammers this).
  MutexLock serialize(shutdown_mutex_);
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  queue_.close();  // wakes blocked submitters (they fail) and the dispatcher
  sched_cv_.notify_all();  // parked lanes re-check stop + drain policy
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::size_t Server::model_count() const {
  MutexLock lock(mutex_);
  return models_.size();
}

Server::Stats Server::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void Server::dispatch_loop() {
  for (;;) {
    // Parks only while the server is idle: any admitted request opens the
    // next continuous service span. nullopt is the closed-and-drained
    // signal, so shutdown() always sees every admitted request resolved
    // before join() returns.
    std::optional<Request> first = queue_.pop();
    if (!first.has_value()) return;
    {
      MutexLock lock(mutex_);
      backlog_[static_cast<std::size_t>(first->model_id)].push_back(
          std::move(*first));
      ++backlog_total_;
      ++stats_.spans;
    }
    run_service();
  }
}

void Server::run_service() {
  // One continuous span: every lane loops in service_lane() until the
  // backlog runs momentarily dry, then the pool is released (so engines
  // sharing global_pool() interleave at idle gaps). The dispatcher is the
  // caller lane, so a 1-lane server serves inline with zero dispatch cost.
  pool_->run_lanes([this](std::size_t) { service_lane(); });
}

void Server::service_lane() {
  // The lane's scratch is leased once per span, not per request, and its
  // buffers persist across spans through the workspace pool; lanes that
  // never get a request never touch it. (tfm::WorkspaceLease is what the
  // eval layer names LaneLease in engine.h.)
  std::optional<tfm::WorkspaceLease> lease;
  for (;;) {
    std::optional<Request> request;
    const ForwardFn* forward = nullptr;
    std::vector<Resolution> resolved;
    bool span_over = false;
    {
      MutexLock lock(mutex_);
      for (;;) {
        request = next_request_locked(resolved);
        if (request.has_value() || !resolved.empty()) break;
        if (inflight_ == 0) {
          // Nothing queued and nothing running anywhere: the span is over
          // for every lane (each observes this same state before leaving).
          span_over = true;
          break;
        }
        // Peers still hold in-flight requests, so the span — and the
        // pool's dispatch slot — stays occupied regardless of what this
        // lane does. Parking here instead of returning keeps the lane
        // available: a request admitted while a peer is mid-forward starts
        // on this lane immediately rather than waiting for the busy one.
        // Woken by admissions, completions, and shutdown. (A backlog held
        // back only by half-open breaker probes parks here too, woken by
        // the probe's completion.)
        sched_cv_.wait(lock.native());
      }
      if (request.has_value()) {
        forward =
            &models_[static_cast<std::size_t>(request->model_id)].forward;
      }
    }
    if (!resolved.empty()) {
      result_cv_.notify_all();  // waiter slots were resolved under the lock
      std::uint64_t delivered = 0;
      for (Resolution& r : resolved) {
        if (r.callback == nullptr) continue;
        deliver_callback(std::move(r.callback), r.ticket, tfm::QTensor{},
                         r.error);
        ++delivered;
      }
      if (delivered > 0) {
        {
          MutexLock lock(mutex_);
          stats_.completed += delivered;
        }
        result_cv_.notify_all();
      }
      if (!request.has_value()) continue;  // re-evaluate the span state
    }
    if (span_over) return;
    if (!request.has_value()) continue;
    if (!lease.has_value()) lease.emplace(workspaces_);
    Slot filled = serve_request(*request, *forward, lease->workspace());
    complete(*request, std::move(filled));
  }
}

Server::Slot Server::serve_request(const Request& request,
                                   const ForwardFn& forward,
                                   tfm::Workspace* workspace) {
  Slot filled;
  for (int attempt = 1;; ++attempt) {
    if (attempt > 1) {
      // Between attempts the deadline is live again: an expired request
      // never re-runs. The backoff sleep doubles per retry and is clipped
      // to the remaining budget, so a retrying lane never oversleeps its
      // own deadline.
      Clock::time_point now = Clock::now();
      if (now >= request.expires_at) {
        filled.result.reset();
        filled.error = deadline_error();
        filled.code = ServingErrorCode::kDeadlineExpired;
        MutexLock lock(mutex_);
        ++stats_.deadline_expired;
        return filled;
      }
      // Shift clamp: past 2^20 doublings the deadline clip below is what
      // bounds the sleep anyway, and the shift must not overflow.
      std::chrono::nanoseconds delay =
          request.backoff * (std::int64_t{1} << std::min(attempt - 2, 20));
      if (request.expires_at != Clock::time_point::max()) {
        delay = std::min<std::chrono::nanoseconds>(delay,
                                                   request.expires_at - now);
      }
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      if (Clock::now() >= request.expires_at) {
        filled.result.reset();
        filled.error = deadline_error();
        filled.code = ServingErrorCode::kDeadlineExpired;
        MutexLock lock(mutex_);
        ++stats_.deadline_expired;
        return filled;
      }
      MutexLock lock(mutex_);
      ++stats_.retries;
    }
    try {
      // The scheduler-lane and backend-forward chaos points fire before
      // and inside the service attempt; both throw kBackendTransient, so
      // a request with retry budget rides through them.
      if (fault::triggered(fault::Point::kScheduler)) {
        count_injected_fault();
        fault::throw_injected(fault::Point::kScheduler);
      }
      if (fault::triggered(fault::Point::kBackend)) {
        count_injected_fault();
        fault::throw_injected(fault::Point::kBackend);
      }
      // The serial deployment forward: no intra-forward pool, zero-filled
      // workspace acquires — bit-identical to a serial per-image loop (and
      // to itself across retries).
      filled.result = forward(request.image, workspace);
      filled.error = nullptr;
      return filled;
    } catch (...) {
      filled.result.reset();
      filled.error = std::current_exception();
      filled.code = serving_error_code(filled.error);
    }
    if (filled.code != ServingErrorCode::kBackendTransient ||
        attempt >= request.max_attempts) {
      return filled;  // non-retryable class or retry budget exhausted
    }
  }
}

std::optional<Server::Request> Server::next_request_locked(
    std::vector<Resolution>& resolved) {
  // Refill first: pulling straight from the admission queue on every pick
  // is what makes the batching continuous — a request admitted while lanes
  // are busy starts on the first lane that frees, and draining here is
  // what releases submitters blocked on a full queue.
  for (Request& r : queue_.try_pop_all()) {
    backlog_[static_cast<std::size_t>(r.model_id)].push_back(std::move(r));
    ++backlog_total_;
  }
  if (stopping_ &&
      options_.scheduler.drain_policy == DrainPolicy::kCancelPending) {
    cancel_backlog_locked(resolved);
  }
  const std::size_t model_count = models_.size();
  const Clock::time_point now = Clock::now();
  if (backlog_total_ > 0) {
    // Robustness sweep before the pick: deadline expiry and breaker
    // shedding are prompt (checked on every pull), not gated on the WRR
    // position reaching the model. Removal from the backlog IS the
    // exactly-once expiry — an entry either leaves here (resolved, never
    // started) or leaves through a dispatch, never both.
    for (std::size_t m = 0; m < model_count; ++m) {
      std::deque<Request>& per_model = backlog_[m];
      for (auto it = per_model.begin(); it != per_model.end();) {
        if (it->expires_at <= now) {
          resolve_unstarted_locked(*it, ServingErrorCode::kDeadlineExpired,
                                   deadline_error(), resolved);
          ++stats_.deadline_expired;
          it = per_model.erase(it);
          --backlog_total_;
        } else {
          ++it;
        }
      }
      (void)breaker_admits_locked(m, now, resolved);  // shed / go half-open
    }
  }
  if (backlog_total_ == 0) return std::nullopt;
  const std::size_t cap =
      options_.scheduler.max_inflight > 0
          ? static_cast<std::size_t>(options_.scheduler.max_inflight)
          : static_cast<std::size_t>(pool_->size());
  if (inflight_ >= cap) return std::nullopt;

  // Weighted round-robin: the cursor model keeps the dispatch position
  // while it has backlog and cycle credit (so weight w yields bursts of up
  // to w consecutive starts), then the position moves to the next eligible
  // model. When every backlogged model has exhausted its credit the cycle
  // resets and the cursor rotates, so no model is always first. Models
  // with no backlog are skipped (work-conserving) — their unused credit
  // never stalls the cycle.
  GQA_ASSERT(model_count > 0);  // requests only exist for registered models
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t k = 0; k < model_count; ++k) {
      const std::size_t m =
          (static_cast<std::size_t>(wrr_cursor_) + k) % model_count;
      if (backlog_[m].empty() || credits_[m] == 0) continue;
      if (!breaker_admits_locked(m, now, resolved)) continue;
      --credits_[m];
      wrr_cursor_ = static_cast<int>(m);
      ++inflight_;
      ++stats_.started_per_model[m];
      Request request = std::move(backlog_[m].front());
      backlog_[m].pop_front();
      --backlog_total_;
      Breaker& breaker = breakers_[m];
      if (breaker.state == Breaker::State::kHalfOpen) {
        breaker.probe_inflight = true;
        request.probe = true;
      }
      return request;
    }
    // Every backlogged model exhausted its cycle credit: start a new cycle.
    for (std::size_t m = 0; m < model_count; ++m) credits_[m] = weight_of(m);
    wrr_cursor_ = (wrr_cursor_ + 1) % static_cast<int>(model_count);
  }
  // Backlogged but nothing dispatchable: every backlogged model is holding
  // for its half-open probe. The lane parks; the probe's completion wakes
  // it (and either the closed breaker dispatches or the re-opened one
  // sheds on the next pull).
  return std::nullopt;
}

bool Server::breaker_admits_locked(std::size_t m, Clock::time_point now,
                                   std::vector<Resolution>& resolved) {
  if (breaker_threshold() <= 0) return true;  // breaker disabled
  Breaker& breaker = breakers_[m];
  switch (breaker.state) {
    case Breaker::State::kClosed:
      return true;
    case Breaker::State::kHalfOpen:
      // Exactly one probe at a time; the rest of the backlog holds (it is
      // not shed — the probe's success would serve it).
      return !breaker.probe_inflight;
    case Breaker::State::kOpen:
      if (now - breaker.opened_at >= options_.scheduler.breaker_cooldown) {
        breaker.state = Breaker::State::kHalfOpen;
        breaker.probe_inflight = false;
        return true;
      }
      // Fail fast: shed the whole backlog so one poisoned model degrades
      // alone instead of parking requests (and starving co-served models'
      // admission queue share) for the cooldown.
      for (const Request& request : backlog_[m]) {
        resolve_unstarted_locked(request, ServingErrorCode::kModelUnavailable,
                                 unavailable_error(models_[m].name), resolved);
      }
      backlog_total_ -= backlog_[m].size();
      backlog_[m].clear();
      return false;
  }
  GQA_ASSERT(false);  // unreachable: all states handled above
  return false;
}

void Server::cancel_backlog_locked(std::vector<Resolution>& resolved) {
  for (std::deque<Request>& per_model : backlog_) {
    for (const Request& request : per_model) {
      resolve_unstarted_locked(request, ServingErrorCode::kCancelled,
                               cancellation_error(), resolved);
    }
    per_model.clear();
  }
  backlog_total_ = 0;
}

void Server::resolve_unstarted_locked(const Request& request,
                                      ServingErrorCode code,
                                      std::exception_ptr error,
                                      std::vector<Resolution>& resolved) {
  const auto it = slots_.find(request.ticket);
  GQA_ASSERT(it != slots_.end());  // only delivery erases slots
  if (it->second.callback != nullptr) {
    // Counted as resolved by the caller only after the error callback has
    // run (outside the lock), so drain() covers the delivery.
    resolved.push_back({request.ticket, std::move(it->second.callback), error});
    slots_.erase(it);
  } else {
    it->second.error = error;
    it->second.code = code;
    ++stats_.completed;
    resolved.push_back({request.ticket, nullptr, nullptr});
  }
}

void Server::record_outcome_locked(const Request& request,
                                   const Slot& filled) {
  if (breaker_threshold() <= 0) return;
  Breaker& breaker = breakers_[static_cast<std::size_t>(request.model_id)];
  if (request.probe) breaker.probe_inflight = false;
  if (filled.error == nullptr) {
    breaker.consecutive_failures = 0;
    if (request.probe && breaker.state == Breaker::State::kHalfOpen) {
      breaker.state = Breaker::State::kClosed;  // the probe recovered it
    }
    return;
  }
  // Only backend failures speak for the model's health: expiries and
  // cancellations say nothing about the backend, so they neither extend
  // nor reset the streak.
  if (filled.code != ServingErrorCode::kBackendTransient &&
      filled.code != ServingErrorCode::kBackendFailed) {
    return;
  }
  if (request.probe && breaker.state == Breaker::State::kHalfOpen) {
    // Failed probe: re-open for another cooldown (a fresh trip).
    breaker.state = Breaker::State::kOpen;
    breaker.opened_at = Clock::now();
    ++stats_.breaker_trips;
    return;
  }
  if (breaker.state != Breaker::State::kClosed) return;  // late straggler
  if (++breaker.consecutive_failures >= breaker_threshold()) {
    breaker.state = Breaker::State::kOpen;
    breaker.opened_at = Clock::now();
    ++stats_.breaker_trips;
  }
}

void Server::complete(const Request& request, Slot&& filled) {
  Callback callback;
  tfm::QTensor result;
  const std::exception_ptr error = filled.error;
  {
    MutexLock lock(mutex_);
    record_outcome_locked(request, filled);
    const auto it = slots_.find(request.ticket);
    GQA_ASSERT(it != slots_.end());  // only delivery erases slots
    if (it->second.callback != nullptr) {
      // Callback delivery consumes the ticket; the result never parks in
      // the slot table. Resolution is counted AFTER the callback runs
      // (below, outside this lock), so the accounting splits in two.
      callback = std::move(it->second.callback);
      if (filled.result.has_value()) result = std::move(*filled.result);
      slots_.erase(it);
    } else {
      // Fill in place (a waiter may already have claimed the slot) and
      // resolve in the same critical section — the common path takes the
      // lock once per completion.
      it->second.result = std::move(filled.result);
      it->second.error = error;
      it->second.code = filled.code;
      --inflight_;
      ++stats_.completed;
    }
  }
  if (callback != nullptr) {
    // The callback runs BEFORE the request counts as resolved (and while
    // it still occupies the lane's inflight slot), so drain()/shutdown()
    // returning guarantees every callback has finished — a client may
    // free the callback's captures right after drain().
    deliver_callback(std::move(callback), request.ticket, std::move(result),
                     error);
    MutexLock lock(mutex_);
    --inflight_;
    ++stats_.completed;
  }
  result_cv_.notify_all();
  sched_cv_.notify_all();  // parked lanes re-check the cap and span state
}

void Server::deliver_callback(Callback callback, Ticket ticket,
                              tfm::QTensor result, std::exception_ptr error) {
  if (callback == nullptr) return;
  try {
    callback(ticket, std::move(result), error);
  } catch (...) {
    // The contract says callbacks must not throw; there is nowhere left to
    // deliver an escaping exception (the ticket is consumed), so count it
    // instead of killing the service lane.
    MutexLock lock(mutex_);
    ++stats_.callback_errors;
  }
}

}  // namespace gqa
