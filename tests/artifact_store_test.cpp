// Conformance suite for the crash-safe persistent LUT artifact store
// (util/artifact_store.h) and its cache-first integration with the fitting
// pipeline (Approximator::fit_cached) and the serving provider
// (NonlinearProvider::warm_up_deployment).
//
// The contracts pinned here are the tentpole's acceptance criteria:
//   - atomic publish: an injected fault between the temp write and the
//     rename (the torn-write simulation) leaves NO visible artifact and no
//     leaked temp file;
//   - corrupt-on-disk recovery: checksum/truncation/key mismatches
//     quarantine the file (*.corrupt, preserved — never deleted) and
//     degrade to a refit whose result is bit-identical to a cold fit;
//   - concurrent readers/writers: every load observes a complete payload,
//     never a torn intermediate (runs under the TSan `concurrency` label);
//   - cache-hit == cold-fit bit-identity at every supported bus width.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/approximator.h"
#include "tfm/nonlinear_provider.h"
#include "util/artifact_store.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/serving_error.h"

namespace gqa {
namespace {

namespace fs = std::filesystem;

/// Fresh empty store root per test; removed on destruction. Artifact-store
/// tests never share a directory, so parallel ctest runs cannot collide.
struct TempStoreDir {
  explicit TempStoreDir(const std::string& tag)
      : path("/tmp/gqa_astore_" + tag + "_" +
             std::to_string(static_cast<long long>(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempStoreDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<std::string> files_in(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

int count_matching(const std::string& dir, const std::string& needle) {
  int n = 0;
  for (const std::string& name : files_in(dir)) {
    if (name.find(needle) != std::string::npos) ++n;
  }
  return n;
}

/// Published artifacts only — quarantined files are `*.gqa.corrupt[.N]`,
/// so a substring match on ".gqa" would double-count them.
int count_artifacts(const std::string& dir) {
  int n = 0;
  for (const std::string& name : files_in(dir)) {
    if (name.ends_with(".gqa")) ++n;
  }
  return n;
}

ArtifactKey test_key(const std::string& tag = "t") {
  return ArtifactKey{"testkind", "tag=" + tag, 1};
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(c == 'X' ? 'Y' : 'X');
}

/// Cheap-but-real GA fit config so bit-identity tests stay fast.
FitOptions cheap_fit() {
  FitOptions options;
  options.entries = 4;
  options.ga_restarts = 1;
  options.ga_generations = 2;
  return options;
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(ArtifactKey, CanonicalFormAndDistinctFilenames) {
  const ArtifactKey key = Approximator::cache_key(
      Op::kGelu, Method::kGqaRm, cheap_fit(), 8, {-14, 4});
  EXPECT_EQ(key.kind, "approximator");
  EXPECT_TRUE(key.canonical().find("op=GELU") != std::string::npos);
  EXPECT_TRUE(key.canonical().find("bus=8") != std::string::npos);
  EXPECT_TRUE(key.canonical().find(' ') == std::string::npos)
      << key.canonical();
  EXPECT_TRUE(key.filename().ends_with(".gqa"));

  // Any knob change must change the address: op, method, a fit option,
  // the bus width, the grid, and the format version all re-key.
  std::vector<std::string> names = {key.filename()};
  names.push_back(Approximator::cache_key(Op::kExp, Method::kGqaRm,
                                          cheap_fit(), 8, {-14, 4})
                      .filename());
  names.push_back(Approximator::cache_key(Op::kGelu, Method::kNnLut,
                                          cheap_fit(), 8, {-14, 4})
                      .filename());
  FitOptions tweaked = cheap_fit();
  tweaked.lambda = 6;
  names.push_back(
      Approximator::cache_key(Op::kGelu, Method::kGqaRm, tweaked, 8, {-14, 4})
          .filename());
  names.push_back(Approximator::cache_key(Op::kGelu, Method::kGqaRm,
                                          cheap_fit(), 16, {-14, 4})
                      .filename());
  names.push_back(Approximator::cache_key(Op::kGelu, Method::kGqaRm,
                                          cheap_fit(), 8, {-14, 3})
                      .filename());
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]) << i << " vs " << j;
    }
  }
}

TEST(ArtifactStore, PublishLoadRoundTripAndLastWriterWins) {
  TempStoreDir dir("roundtrip");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();

  EXPECT_FALSE(store.load(key).has_value());  // miss on empty store

  const std::string payload = "{\"x\": 1}\nwith\nnewlines";
  store.publish(key, payload);
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);  // exact bytes, footer stripped

  // Republishing the same key is last-writer-wins, never a torn mix.
  const std::string payload2 = "{\"x\": 2}";
  store.publish(key, payload2);
  EXPECT_EQ(store.load(key).value(), payload2);
  EXPECT_EQ(count_artifacts(dir.path), 1);
}

TEST(ArtifactStore, InjectedWriteFaultLeavesNoArtifactAndNoTemp) {
  TempStoreDir dir("tornwrite");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();
  {
    fault::FaultScope chaos{"cache_write:1.0:11"};
    try {
      store.publish(key, "payload");
      FAIL() << "publish under an armed cache_write fault must throw";
    } catch (const ServingError& e) {
      EXPECT_EQ(e.code(), ServingErrorCode::kBackendTransient);
    }
  }
  // The torn-write contract: nothing visible, nothing leaked.
  EXPECT_TRUE(files_in(dir.path).empty()) << files_in(dir.path).front();
  EXPECT_FALSE(store.load(key).has_value());

  // The same publish succeeds once the fault clears.
  store.publish(key, "payload");
  EXPECT_EQ(store.load(key).value(), "payload");
}

TEST(ArtifactStore, InjectedWriteFaultPreservesPreviousArtifact) {
  TempStoreDir dir("tornover");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();
  store.publish(key, "old");
  {
    fault::FaultScope chaos{"cache_write:1.0:12"};
    EXPECT_THROW(store.publish(key, "new"), ServingError);
  }
  // Readers keep seeing the previous complete artifact.
  EXPECT_EQ(store.load(key).value(), "old");
}

TEST(ArtifactStore, CorruptArtifactQuarantinedPreservedAndSelfHealed) {
  TempStoreDir dir("quarantine");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();
  store.publish(key, "payload-one");
  flip_byte(store.path_for(key), 3);

  EXPECT_FALSE(store.load(key).has_value());  // corrupt => miss
  // ...and the evidence is preserved under *.corrupt, with the published
  // name vacated for the self-healing republish.
  EXPECT_FALSE(fs::exists(store.path_for(key)));
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 1);

  store.publish(key, "payload-two");
  EXPECT_EQ(store.load(key).value(), "payload-two");
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 1);  // never deleted

  // A second corruption quarantines under a uniquified name.
  flip_byte(store.path_for(key), 3);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 2);
}

TEST(ArtifactStore, TruncationDetectedEvenWhenFooterSurvives) {
  TempStoreDir dir("truncate");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();
  store.publish(key, "0123456789");

  // Drop payload bytes but keep the (still well-formed) footer line: the
  // length field must catch what the line parser alone would miss.
  const std::string text = read_file(store.path_for(key));
  const std::size_t cut = text.find('\n');
  ASSERT_NE(cut, std::string::npos);
  write_file(store.path_for(key), text.substr(4));
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 1);
}

TEST(ArtifactStore, KeyMismatchIsCorruptNotDecoded) {
  TempStoreDir dir("keymismatch");
  const ArtifactStore store(dir.path);
  const ArtifactKey key_a = test_key("a");
  const ArtifactKey key_b = test_key("b");
  store.publish(key_a, "payload-for-a");
  // A checksum-valid file parked under the wrong name (operator mv, hash
  // collision) must not be served as key_b's artifact.
  fs::copy_file(store.path_for(key_a), store.path_for(key_b));
  EXPECT_FALSE(store.load(key_b).has_value());
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 1);
  EXPECT_EQ(store.load(key_a).value(), "payload-for-a");  // a is untouched
}

TEST(ArtifactStore, InjectedReadFaultDegradesToMissWithoutQuarantine) {
  TempStoreDir dir("readfault");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();
  store.publish(key, "healthy");
  {
    fault::FaultScope chaos{"cache_read:1.0:13"};
    EXPECT_FALSE(store.load(key).has_value());
  }
  // The artifact was healthy — an unreadable cache must not destroy it.
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 0);
  EXPECT_EQ(store.load(key).value(), "healthy");
}

TEST(ArtifactStore, ReadVerifiedThrowsTypedArtifactCorrupt) {
  TempStoreDir dir("strict");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();
  store.publish(key, "payload");
  EXPECT_EQ(store.read_verified(key.filename()), "payload");

  flip_byte(store.path_for(key), 2);
  try {
    (void)store.read_verified(key.filename());
    FAIL() << "read_verified on a corrupt artifact must throw";
  } catch (const ServingError& e) {
    EXPECT_EQ(e.code(), ServingErrorCode::kArtifactCorrupt);
  }
  // Strict reads never quarantine — `cache verify` without --quarantine
  // must be a pure report.
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 0);

  // The injected read fault surfaces as the same typed error.
  fault::FaultScope chaos{"cache_read:1.0:14"};
  try {
    (void)store.read_verified(key.filename());
    FAIL() << "read_verified under an armed cache_read fault must throw";
  } catch (const ServingError& e) {
    EXPECT_EQ(e.code(), ServingErrorCode::kArtifactCorrupt);
  }
}

TEST(ArtifactStore, VerifyAllReportsAndOptionallyQuarantines) {
  TempStoreDir dir("verifyall");
  const ArtifactStore store(dir.path);
  store.publish(test_key("good"), "good-payload");
  store.publish(test_key("bad"), "bad-payload");
  flip_byte(store.path_for(test_key("bad")), 1);

  std::vector<ArtifactStatus> report = store.verify_all(false);
  ASSERT_EQ(report.size(), 2U);
  int valid = 0;
  int corrupt = 0;
  for (const ArtifactStatus& status : report) {
    if (status.state == ArtifactStatus::State::kValid) ++valid;
    if (status.state == ArtifactStatus::State::kCorrupt) ++corrupt;
  }
  EXPECT_EQ(valid, 1);
  EXPECT_EQ(corrupt, 1);
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 0);  // report-only

  report = store.verify_all(true);
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 1);

  // After quarantining, the scan shows the preserved file as quarantined
  // and no remaining corruption.
  report = store.verify_all(false);
  int quarantined = 0;
  corrupt = 0;
  for (const ArtifactStatus& status : report) {
    if (status.state == ArtifactStatus::State::kQuarantined) ++quarantined;
    if (status.state == ArtifactStatus::State::kCorrupt) ++corrupt;
  }
  EXPECT_EQ(quarantined, 1);
  EXPECT_EQ(corrupt, 0);
}

TEST(ArtifactStore, ConcurrentReadersAndWritersNeverObserveTornArtifacts) {
  TempStoreDir dir("concurrent");
  const ArtifactStore store(dir.path);
  const ArtifactKey key = test_key();
  // Two well-known payloads (different lengths, so a torn mix of the two
  // files cannot accidentally verify).
  const std::string payload_a(512, 'a');
  const std::string payload_b(1031, 'b');
  store.publish(key, payload_a);

  const int threads =
      std::max(2, static_cast<int>(env_int("GQA_TEST_THREADS", 4)));
  const int kIters = 60;
  std::vector<std::thread> workers;
  std::atomic<int> torn{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          store.publish(key, (i % 2 == 0) ? payload_a : payload_b);
        } else if (const auto got = store.load(key)) {
          if (*got != payload_a && *got != payload_b) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(torn.load(), 0);
  // Nothing was ever quarantined: every observed file was complete.
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 0);
  const auto last = store.load(key);
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(*last == payload_a || *last == payload_b);
}

TEST(FitCached, CacheHitIsBitIdenticalToColdFitAtEveryBusWidth) {
  TempStoreDir dir("fitcache");
  const ArtifactStore store(dir.path);
  const std::vector<int> grid = tfm::NonlinearProvider::deployment_scale_exps();
  const FitOptions options = cheap_fit();

  for (const int bus : {8, 16}) {
    const Approximator cold = Approximator::fit(Op::kGelu, Method::kGqaRm,
                                                options);
    // First call fits and publishes; second call must be served from disk.
    (void)Approximator::fit_cached(Op::kGelu, Method::kGqaRm, options, &store,
                                   bus, grid);
    const ArtifactKey key =
        Approximator::cache_key(Op::kGelu, Method::kGqaRm, options, bus, grid);
    ASSERT_TRUE(store.load(key).has_value());
    const Approximator warm = Approximator::fit_cached(
        Op::kGelu, Method::kGqaRm, options, &store, bus, grid);

    // Full fitted state survives the round trip...
    EXPECT_EQ(warm.fxp_table().breakpoints, cold.fxp_table().breakpoints);
    EXPECT_EQ(warm.fxp_table().slopes, cold.fxp_table().slopes);
    EXPECT_EQ(warm.fxp_table().intercepts, cold.fxp_table().intercepts);
    EXPECT_EQ(warm.fp_table().breakpoints, cold.fp_table().breakpoints);
    EXPECT_EQ(warm.lambda(), cold.lambda());

    // ...and the deployed unit is bit-identical across the whole bus, at
    // this width, for every deployment scale (per-scale champion archive
    // included).
    for (const int e : {-8, -3, 0}) {
      const IntPwlUnit cold_unit = cold.make_unit(e, bus);
      const IntPwlUnit warm_unit = warm.make_unit(e, bus);
      const std::int64_t lo = cold_unit.table().input.qmin();
      const std::int64_t hi = cold_unit.table().input.qmax();
      const std::int64_t stride = bus > 8 ? 257 : 1;
      for (std::int64_t q = lo; q <= hi; q += stride) {
        ASSERT_EQ(cold_unit.eval_code(q), warm_unit.eval_code(q))
            << "bus=" << bus << " e=" << e << " q=" << q;
      }
    }
  }
}

TEST(FitCached, MultirangeOpsRoundTripBitIdentically) {
  TempStoreDir dir("fitmr");
  const ArtifactStore store(dir.path);
  const FitOptions options = cheap_fit();
  const Approximator cold = Approximator::fit(Op::kRsqrt, Method::kGqaRm,
                                              options);
  (void)Approximator::fit_cached(Op::kRsqrt, Method::kGqaRm, options, &store,
                                 8, {});
  const Approximator warm =
      Approximator::fit_cached(Op::kRsqrt, Method::kGqaRm, options, &store,
                               8, {});
  const MultiRangeUnit cold_unit = cold.make_multirange_unit();
  const MultiRangeUnit warm_unit = warm.make_multirange_unit();
  for (std::int64_t code = 1; code <= 4096; code += 7) {
    ASSERT_EQ(cold_unit.eval_fxp(code, 10), warm_unit.eval_fxp(code, 10))
        << "code=" << code;
  }
}

TEST(Provider, WarmUpDeploymentIsCacheFirstAndSelfHealing) {
  TempStoreDir dir("provider");
  CacheScope cache(dir.path);

  // Cold reference: the same deterministic fit, computed without a store.
  const Approximator cold =
      Approximator::fit(Op::kGelu, Method::kGqaRm, FitOptions{});

  // First provider fits in-process and publishes.
  const tfm::NonlinearProvider first =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  first.warm_up_deployment();
  ASSERT_EQ(count_artifacts(dir.path), 1);
  const std::string artifact =
      dir.path + "/" + files_in(dir.path).front();

  // Second provider must serve from the cache, bit-identical to both the
  // publisher and the storeless cold fit.
  const tfm::NonlinearProvider second =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  second.warm_up_deployment();
  const IntPwlUnit cold_unit = cold.make_unit(-3);
  for (std::int64_t q = -128; q <= 127; ++q) {
    ASSERT_EQ(first.gelu_code(q, -3), second.gelu_code(q, -3)) << q;
    ASSERT_EQ(second.gelu_code(q, -3), cold_unit.eval_real_from_code(q)) << q;
  }

  // Corrupt the artifact on disk: the next warm-up must quarantine it,
  // refit bit-identically, and republish — no serving-visible error.
  flip_byte(artifact, 5);
  const tfm::NonlinearProvider healed =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  healed.warm_up_deployment();
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 1);  // evidence preserved
  EXPECT_EQ(count_artifacts(dir.path), 1);      // fresh republish
  for (std::int64_t q = -128; q <= 127; ++q) {
    ASSERT_EQ(healed.gelu_code(q, -3), cold_unit.eval_real_from_code(q)) << q;
  }
  // And the republished artifact is valid again for the next consumer.
  const tfm::NonlinearProvider fourth =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  fourth.warm_up_deployment();
  EXPECT_EQ(count_matching(dir.path, ".corrupt"), 1);
}

TEST(Provider, LazyEvaluationWithoutWarmupAlsoResolvesCacheFirst) {
  TempStoreDir dir("lazy");
  CacheScope cache(dir.path);
  // No warm_up at all: the first eval faults in the fit (publishing it),
  // and a second provider's first eval loads it — identical results.
  const tfm::NonlinearProvider first =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kExp});
  const double y = first.exp_code(-17, -4);
  EXPECT_EQ(count_artifacts(dir.path), 1);
  const tfm::NonlinearProvider second =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kExp});
  EXPECT_EQ(second.exp_code(-17, -4), y);
}

TEST(Provider, CopiesCarryLazilyFittedState) {
  TempStoreDir dir("copy");
  CacheScope cache(dir.path);
  const tfm::NonlinearProvider source =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  source.warm_up_deployment();
  const tfm::NonlinearProvider copy(source);  // copy after lazy fill
  tfm::NonlinearProvider assigned = tfm::NonlinearProvider::exact();
  assigned = source;
  for (std::int64_t q = -128; q <= 127; q += 5) {
    ASSERT_EQ(copy.gelu_code(q, -3), source.gelu_code(q, -3));
    ASSERT_EQ(assigned.gelu_code(q, -3), source.gelu_code(q, -3));
  }
}

}  // namespace
}  // namespace gqa
