# Empty compiler generated dependencies file for fig3_mse_sweep.
# This may be replaced when dependencies are built.
