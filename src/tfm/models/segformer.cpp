#include "tfm/models/segformer.h"

#include <cmath>

#include "tfm/probe.h"
#include "util/contracts.h"

namespace gqa::tfm {

namespace {

/// Nearest-neighbour upsample of a {C,h,w} map to {C,H,W} (integer-exact:
/// codes are replicated, scales unchanged).
template <typename T>
T upsample_nearest(const T& x, int out_h, int out_w,
                   Workspace* ws = nullptr) {
  const int c = x.shape()[0];
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  T y = [&] {
    if constexpr (std::is_same_v<T, QTensor>) {
      return ws_qtensor(ws, Shape{c, out_h, out_w}, x.params());
    } else {
      return ws_tensor(ws, Shape{c, out_h, out_w});
    }
  }();
  for (int ch = 0; ch < c; ++ch) {
    for (int oy = 0; oy < out_h; ++oy) {
      const int iy = oy * h / out_h;
      for (int ox = 0; ox < out_w; ++ox) {
        const int ix = ox * w / out_w;
        y.at(ch, oy, ox) = x.at(ch, iy, ix);
      }
    }
  }
  return y;
}

}  // namespace

SegformerB0Like::SegformerB0Like(const SegformerConfig& config)
    : config_(config) {
  GQA_EXPECTS(config.dims.size() == 4 && config.heads.size() == 4 &&
              config.sr_ratios.size() == 4 && config.depths.size() == 4);
  GQA_EXPECTS(config.image_size % 32 == 0 || config.image_size % 16 == 0);
  Rng rng(config.seed);

  int in_ch = config.in_channels;
  for (int s = 0; s < 4; ++s) {
    Stage stage;
    const int dim = config.dims[static_cast<std::size_t>(s)];
    // Overlapped patch embedding: 7x7 stride 4 for stage 0, 3x3 stride 2
    // afterwards (Segformer design).
    if (s == 0) {
      stage.patch_embed = std::make_unique<Conv2d>(in_ch, dim, 7, 4, 3, rng);
    } else {
      stage.patch_embed = std::make_unique<Conv2d>(in_ch, dim, 3, 2, 1, rng);
    }
    stage.embed_norm = std::make_unique<LayerNorm>(dim, rng);
    for (int b = 0; b < config.depths[static_cast<std::size_t>(s)]; ++b) {
      Block block;
      block.ln1 = std::make_unique<LayerNorm>(dim, rng);
      block.attn = std::make_unique<AttentionSR>(
          dim, config.heads[static_cast<std::size_t>(s)],
          config.sr_ratios[static_cast<std::size_t>(s)], rng);
      block.ln2 = std::make_unique<LayerNorm>(dim, rng);
      block.ffn = std::make_unique<MixFfn>(dim, dim * config.mlp_ratio, rng);
      stage.blocks.push_back(std::move(block));
    }
    stage.out_norm = std::make_unique<LayerNorm>(dim, rng);
    stages_.push_back(std::move(stage));
    in_ch = dim;
  }

  for (int s = 0; s < 4; ++s) {
    head_linears_.push_back(std::make_unique<Linear>(
        config.dims[static_cast<std::size_t>(s)], config.decoder_dim, rng));
  }
  head_fuse_ = std::make_unique<Linear>(4 * config.decoder_dim,
                                        config.decoder_dim, rng);
  head_classifier_ =
      std::make_unique<Linear>(config.decoder_dim, config.num_classes, rng);
  head_rq_.resize(4);
}

Tensor SegformerB0Like::penultimate_fp(const Tensor& image,
                                       ThreadPool* pool, Workspace* ws) const {
  GQA_EXPECTS(image.shape().rank() == 3 &&
              image.shape()[0] == config_.in_channels);
  Tensor x = image;
  std::vector<Tensor> features;
  for (const Stage& stage : stages_) {
    Tensor map = stage.patch_embed->forward_fp(x, pool, ws);
    if (&stage != &stages_.front()) ws_release(ws, std::move(x));
    const int h = map.shape()[1];
    const int w = map.shape()[2];
    Tensor map_tokens = to_tokens(map, ws);
    ws_release(ws, std::move(map));
    Tensor tokens = stage.embed_norm->forward_fp(map_tokens, pool, ws);
    ws_release(ws, std::move(map_tokens));
    for (const Block& block : stage.blocks) {
      Tensor n1 = block.ln1->forward_fp(tokens, pool, ws);
      Tensor a = block.attn->forward_fp(n1, h, w, pool, ws);
      ws_release(ws, std::move(n1));
      Tensor sum1 = block.add1.forward_fp(tokens, a, pool, ws);
      ws_release(ws, std::move(a));
      ws_release(ws, std::move(tokens));
      tokens = std::move(sum1);
      Tensor n2 = block.ln2->forward_fp(tokens, pool, ws);
      Tensor f = block.ffn->forward_fp(n2, h, w, pool, ws);
      ws_release(ws, std::move(n2));
      Tensor sum2 = block.add2.forward_fp(tokens, f, pool, ws);
      ws_release(ws, std::move(f));
      ws_release(ws, std::move(tokens));
      tokens = std::move(sum2);
    }
    Tensor normed = stage.out_norm->forward_fp(tokens, pool, ws);
    ws_release(ws, std::move(tokens));
    x = from_tokens(normed, h, w, ws);
    ws_release(ws, std::move(normed));
    features.push_back(x);
  }

  // Decode head at 1/4 resolution.
  const int oh = features[0].shape()[1];
  const int ow = features[0].shape()[2];
  Tensor fused = ws_tensor(ws, Shape{oh * ow, 4 * config_.decoder_dim});
  for (int s = 0; s < 4; ++s) {
    Tensor& feat = features[static_cast<std::size_t>(s)];
    Tensor feat_tokens = to_tokens(feat, ws);
    Tensor proj = head_linears_[static_cast<std::size_t>(s)]->forward_fp(
        feat_tokens, pool, ws);
    ws_release(ws, std::move(feat_tokens));
    Tensor proj_map = from_tokens(proj, feat.shape()[1], feat.shape()[2], ws);
    ws_release(ws, std::move(proj));
    Tensor up = upsample_nearest(proj_map, oh, ow, ws);
    ws_release(ws, std::move(proj_map));
    Tensor up_tokens = to_tokens(up, ws);
    ws_release(ws, std::move(up));
    for (int i = 0; i < oh * ow; ++i) {
      for (int d = 0; d < config_.decoder_dim; ++d) {
        fused.at(i, s * config_.decoder_dim + d) = up_tokens.at(i, d);
      }
    }
    ws_release(ws, std::move(up_tokens));
    ws_release(ws, std::move(feat));
  }
  Tensor y = head_fuse_->forward_fp(fused, pool, ws);
  ws_release(ws, std::move(fused));
  for (float& v : y.data()) v = std::max(v, 0.0F);  // head ReLU
  return y;
}

Tensor SegformerB0Like::forward_fp(const Tensor& image,
                                   ThreadPool* pool, Workspace* ws) const {
  Tensor y = penultimate_fp(image, pool, ws);
  const int side = config_.image_size / 4;
  Tensor logits = head_classifier_->forward_fp(y, pool, ws);
  ws_release(ws, std::move(y));
  Tensor out = from_tokens(logits, side, side);
  ws_release(ws, std::move(logits));
  return out;
}

void SegformerB0Like::train_classifier(
    const std::vector<Tensor>& images,
    const std::vector<std::vector<int>>& quarter_labels, int epochs,
    double learning_rate) {
  GQA_EXPECTS(images.size() == quarter_labels.size() && !images.empty());
  std::vector<Tensor> features;
  features.reserve(images.size());
  for (const Tensor& image : images) features.push_back(penultimate_fp(image));
  (void)train_softmax_probe(
      features, quarter_labels, config_.num_classes,
      std::span<float>(head_classifier_->weights().data()),
      std::span<float>(head_classifier_->bias().data()), epochs, learning_rate,
      config_.seed ^ 0x7EA1);
}

void SegformerB0Like::calibrate(const Tensor& image) {
  input_obs_.observe(std::span<const float>(image.data()));
  Tensor x = image;
  std::vector<Tensor> features;
  for (Stage& stage : stages_) {
    Tensor map = stage.patch_embed->calibrate(x);
    const int h = map.shape()[1];
    const int w = map.shape()[2];
    Tensor tokens = stage.embed_norm->calibrate(to_tokens(map));
    for (Block& block : stage.blocks) {
      Tensor a = block.attn->calibrate(block.ln1->calibrate(tokens), h, w);
      tokens = block.add1.calibrate(tokens, a);
      Tensor f = block.ffn->calibrate(block.ln2->calibrate(tokens), h, w);
      tokens = block.add2.calibrate(tokens, f);
    }
    tokens = stage.out_norm->calibrate(tokens);
    x = from_tokens(tokens, h, w);
    features.push_back(x);
  }

  const int oh = features[0].shape()[1];
  const int ow = features[0].shape()[2];
  Tensor fused(Shape{oh * ow, 4 * config_.decoder_dim});
  for (int s = 0; s < 4; ++s) {
    Tensor proj = head_linears_[static_cast<std::size_t>(s)]->calibrate(
        to_tokens(features[static_cast<std::size_t>(s)]));
    head_obs_.observe(std::span<const float>(proj.data()));
    Tensor up = upsample_nearest(
        from_tokens(proj, features[static_cast<std::size_t>(s)].shape()[1],
                    features[static_cast<std::size_t>(s)].shape()[2]),
        oh, ow);
    const Tensor up_tokens = to_tokens(up);
    for (int i = 0; i < oh * ow; ++i) {
      for (int d = 0; d < config_.decoder_dim; ++d) {
        fused.at(i, s * config_.decoder_dim + d) = up_tokens.at(i, d);
      }
    }
  }
  Tensor y = head_fuse_->calibrate(fused);
  for (float& v : y.data()) v = std::max(v, 0.0F);
  (void)head_classifier_->calibrate(y);
}

void SegformerB0Like::freeze() {
  GQA_EXPECTS_MSG(!input_obs_.empty(), "freeze() requires prior calibration");
  const QuantPolicy policy;
  input_qp_ = input_obs_.make_po2(policy.act_bits);
  QuantParams qp = input_qp_;
  std::vector<QuantParams> feature_qps;
  for (Stage& stage : stages_) {
    qp = stage.patch_embed->freeze(qp, policy);
    qp = stage.embed_norm->freeze(qp, policy);
    stage.token_qp = qp;
    for (Block& block : stage.blocks) {
      const QuantParams ln1_qp = block.ln1->freeze(qp, policy);
      const QuantParams attn_qp = block.attn->freeze(ln1_qp, policy);
      qp = block.add1.freeze(qp, attn_qp, policy);
      const QuantParams ln2_qp = block.ln2->freeze(qp, policy);
      const QuantParams ffn_qp = block.ffn->freeze(ln2_qp, policy);
      qp = block.add2.freeze(qp, ffn_qp, policy);
    }
    qp = stage.out_norm->freeze(qp, policy);
    feature_qps.push_back(qp);
  }

  const QuantPolicy policy_head;
  head_qp_ = head_obs_.make_po2(policy_head.act_bits);
  QuantParams fused_qp = head_qp_;
  for (int s = 0; s < 4; ++s) {
    const QuantParams proj_qp = head_linears_[static_cast<std::size_t>(s)]
                                    ->freeze(feature_qps[static_cast<std::size_t>(s)],
                                             policy_head);
    head_rq_[static_cast<std::size_t>(s)] =
        Requantizer(proj_qp.scale, head_qp_);
  }
  QuantParams y_qp = head_fuse_->freeze(fused_qp, policy_head);
  (void)head_classifier_->freeze(y_qp, policy_head);
  frozen_ = true;
}

QTensor SegformerB0Like::forward_int(const Tensor& image,
                                     const NonlinearProvider& nl,
                                     ThreadPool* pool, Workspace* ws) const {
  GQA_EXPECTS_MSG(frozen_, "forward_int() requires freeze()");
  QTensor x = QTensor::quantize(image, input_qp_);
  std::vector<QTensor> features;
  for (const Stage& stage : stages_) {
    QTensor map = stage.patch_embed->forward_int(x, pool, ws);
    ws_release(ws, std::move(x));
    const int h = map.shape()[1];
    const int w = map.shape()[2];
    QTensor map_tokens = to_tokens(map, ws);
    ws_release(ws, std::move(map));
    QTensor tokens = stage.embed_norm->forward_int(map_tokens, nl, pool, ws);
    ws_release(ws, std::move(map_tokens));
    for (const Block& block : stage.blocks) {
      QTensor n1 = block.ln1->forward_int(tokens, nl, pool, ws);
      QTensor a = block.attn->forward_int(n1, h, w, nl, pool, ws);
      ws_release(ws, std::move(n1));
      QTensor sum1 = block.add1.forward_int(tokens, a, pool, ws);
      ws_release(ws, std::move(a));
      ws_release(ws, std::move(tokens));
      tokens = std::move(sum1);
      QTensor n2 = block.ln2->forward_int(tokens, nl, pool, ws);
      QTensor f = block.ffn->forward_int(n2, h, w, nl, pool, ws);
      ws_release(ws, std::move(n2));
      QTensor sum2 = block.add2.forward_int(tokens, f, pool, ws);
      ws_release(ws, std::move(f));
      ws_release(ws, std::move(tokens));
      tokens = std::move(sum2);
    }
    QTensor normed = stage.out_norm->forward_int(tokens, nl, pool, ws);
    ws_release(ws, std::move(tokens));
    x = from_tokens(normed, h, w, ws);
    ws_release(ws, std::move(normed));
    features.push_back(x);
  }

  const int oh = features[0].shape()[1];
  const int ow = features[0].shape()[2];
  QTensor fused = ws_qtensor(ws, Shape{oh * ow, 4 * config_.decoder_dim},
                             head_qp_);
  for (int s = 0; s < 4; ++s) {
    QTensor& feat = features[static_cast<std::size_t>(s)];
    QTensor feat_tokens = to_tokens(feat, ws);
    QTensor proj = head_linears_[static_cast<std::size_t>(s)]->forward_int(
        feat_tokens, pool, ws);
    ws_release(ws, std::move(feat_tokens));
    // Requantize onto the common head scale, then upsample codes.
    QTensor aligned = ws_qtensor(ws, proj.shape(), head_qp_);
    for (std::size_t i = 0; i < proj.data().size(); ++i) {
      aligned.data()[i] = static_cast<std::int32_t>(
          head_rq_[static_cast<std::size_t>(s)].apply(proj.data()[i]));
    }
    ws_release(ws, std::move(proj));
    QTensor aligned_map =
        from_tokens(aligned, feat.shape()[1], feat.shape()[2], ws);
    ws_release(ws, std::move(aligned));
    QTensor up = upsample_nearest(aligned_map, oh, ow, ws);
    ws_release(ws, std::move(aligned_map));
    QTensor up_tokens = to_tokens(up, ws);
    ws_release(ws, std::move(up));
    for (int i = 0; i < oh * ow; ++i) {
      for (int d = 0; d < config_.decoder_dim; ++d) {
        fused.at(i, s * config_.decoder_dim + d) = up_tokens.at(i, d);
      }
    }
    ws_release(ws, std::move(up_tokens));
    ws_release(ws, std::move(feat));
  }
  QTensor y = head_fuse_->forward_int(fused, pool, ws);
  ws_release(ws, std::move(fused));
  for (std::int32_t& v : y.data()) v = std::max(v, 0);  // integer ReLU
  QTensor logits = head_classifier_->forward_int(y, pool, ws);
  ws_release(ws, std::move(y));
  QTensor out = from_tokens(logits, oh, ow);
  ws_release(ws, std::move(logits));
  return out;
}

std::vector<Tensor> SegformerB0Like::forward_fp_batch(
    std::span<const Tensor> images, ThreadPool* pool,
    WorkspacePool* workspaces) const {
  return ws_batch<Tensor>(images.size(), pool, workspaces,
                          [&](std::size_t i, Workspace* ws) {
                            return forward_fp(images[i], nullptr, ws);
                          });
}

std::vector<QTensor> SegformerB0Like::forward_int_batch(
    std::span<const Tensor> images, const NonlinearProvider& nl,
    ThreadPool* pool, WorkspacePool* workspaces) const {
  return ws_batch<QTensor>(images.size(), pool, workspaces,
                           [&](std::size_t i, Workspace* ws) {
                             return forward_int(images[i], nl, nullptr, ws);
                           });
}

std::vector<int> SegformerB0Like::argmax_labels(const Tensor& logits) {
  return argmax_label_map(logits);
}

std::vector<int> SegformerB0Like::argmax_labels(const QTensor& logits) {
  return argmax_label_map(logits);
}

}  // namespace gqa::tfm
