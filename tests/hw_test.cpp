// Tests for the hardware cost model (component library, unit composition,
// Table 6 calibration) and the Verilog emitter.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/approximator.h"
#include "hw/components.h"
#include "hw/pwl_unit_design.h"
#include "hw/verilog_emitter.h"
#include "util/contracts.h"

namespace gqa::hw {
namespace {

TEST(Components, MonotoneInWidth) {
  EXPECT_LT(ge_adder(8), ge_adder(16));
  EXPECT_LT(ge_multiplier(8, 8), ge_multiplier(16, 16));
  EXPECT_LT(ge_multiplier(16, 16), ge_multiplier(32, 32));
  EXPECT_LT(ge_comparator(8), ge_comparator(32));
  EXPECT_LT(ge_storage(100), ge_storage(200));
  EXPECT_LT(ge_barrel_shifter(16, 4), ge_barrel_shifter(16, 16));
  EXPECT_EQ(ge_barrel_shifter(16, 0), 0.0);
}

TEST(Components, Fp32UnitsCostMoreThanInt8) {
  EXPECT_GT(ge_fp32_multiplier(), ge_multiplier(8, 8));
  EXPECT_GT(ge_fp32_adder(), ge_adder(17));
  EXPECT_GT(ge_fp32_comparator(), ge_comparator(8));
}

TEST(Components, InvalidWidthsThrow) {
  EXPECT_THROW(ge_adder(0), ContractViolation);
  EXPECT_THROW(ge_multiplier(0, 8), ContractViolation);
  EXPECT_THROW(ge_storage(-1), ContractViolation);
}

TEST(Synthesize, AnchorCalibrationMatchesPaper) {
  const SynthReport anchor = synthesize(PwlUnitSpec{Precision::kInt8, 8, 8});
  EXPECT_NEAR(anchor.area_um2, 961.0, 0.5);
  EXPECT_NEAR(anchor.power_mw, 0.40, 0.005);
}

TEST(Synthesize, MonotoneInPrecisionAndEntries) {
  double prev_area = 0.0;
  for (Precision p : {Precision::kInt8, Precision::kInt16, Precision::kInt32}) {
    const SynthReport r = synthesize(PwlUnitSpec{p, 8, 8});
    EXPECT_GT(r.area_um2, prev_area);
    prev_area = r.area_um2;
  }
  for (Precision p : all_precisions()) {
    const SynthReport r8 = synthesize(PwlUnitSpec{p, 8, 8});
    const SynthReport r16 = synthesize(PwlUnitSpec{p, 16, 8});
    EXPECT_GT(r16.area_um2, r8.area_um2);
    EXPECT_GT(r16.power_mw, r8.power_mw);
  }
}

TEST(Synthesize, PaperHeadlineRatiosHold) {
  const SynthReport int8 = synthesize(PwlUnitSpec{Precision::kInt8, 8, 8});
  const SynthReport int32 = synthesize(PwlUnitSpec{Precision::kInt32, 8, 8});
  const SynthReport fp32 = synthesize(PwlUnitSpec{Precision::kFp32, 8, 8});
  // Paper: ~81% area and ~80% power savings; accept the 72-90% band.
  const double area_vs_fp32 = 1.0 - int8.area_um2 / fp32.area_um2;
  const double area_vs_int32 = 1.0 - int8.area_um2 / int32.area_um2;
  const double power_vs_fp32 = 1.0 - int8.power_mw / fp32.power_mw;
  EXPECT_GT(area_vs_fp32, 0.72);
  EXPECT_LT(area_vs_fp32, 0.90);
  EXPECT_GT(area_vs_int32, 0.72);
  EXPECT_GT(power_vs_fp32, 0.70);
  // Entry scaling: paper reports 1.71x area, 1.95x power for 16 vs 8.
  const SynthReport int8_16 = synthesize(PwlUnitSpec{Precision::kInt8, 16, 8});
  EXPECT_NEAR(int8_16.area_um2 / int8.area_um2, 1.71, 0.25);
  EXPECT_NEAR(int8_16.power_mw / int8.power_mw, 1.95, 0.40);
}

TEST(Synthesize, BreakdownSumsToTotal) {
  const SynthReport r = synthesize(PwlUnitSpec{Precision::kInt16, 8, 8});
  double sum = 0.0;
  for (const auto& [name, ge] : r.breakdown) sum += ge;
  EXPECT_NEAR(sum, r.gate_equivalents, 1e-9);
  EXPECT_TRUE(r.breakdown.count("multiplier"));
  EXPECT_TRUE(r.breakdown.count("lut_storage"));
  EXPECT_TRUE(r.breakdown.count("shifter"));  // INT units have the b<<s stage
  const SynthReport fp = synthesize(PwlUnitSpec{Precision::kFp32, 8, 8});
  EXPECT_FALSE(fp.breakdown.count("shifter"));  // FP path skips it
}

TEST(Synthesize, InvalidSpecsThrow) {
  EXPECT_THROW(synthesize(PwlUnitSpec{Precision::kInt8, 1, 8}),
               ContractViolation);
  EXPECT_THROW(synthesize(PwlUnitSpec{Precision::kInt8, 8, 64}),
               ContractViolation);
}

TEST(FormatReport, ContainsSavingsColumn) {
  std::vector<SynthReport> rows = {
      synthesize(PwlUnitSpec{Precision::kInt8, 8, 8}),
      synthesize(PwlUnitSpec{Precision::kFp32, 8, 8})};
  const std::string text = format_report(rows);
  EXPECT_NE(text.find("INT8"), std::string::npos);
  EXPECT_NE(text.find("FP32"), std::string::npos);
  EXPECT_NE(text.find('%'), std::string::npos);
}

// --------------------------------------------------------------- verilog --

QuantizedPwlTable sample_table() {
  const Approximator approx = Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  return approx.quantized(QuantParams{0.0625, 8, true});
}

TEST(VerilogEmitter, StructurallySaneModule) {
  const QuantizedPwlTable table = sample_table();
  const std::string v = emit_pwl_unit(table);
  EXPECT_NE(v.find("module gqa_pwl_unit"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("q_in"), std::string::npos);
  EXPECT_NE(v.find("acc_out"), std::string::npos);
  // One comparator line per breakpoint.
  std::size_t comparisons = 0;
  for (std::size_t pos = v.find("q_in <"); pos != std::string::npos;
       pos = v.find("q_in <", pos + 1)) {
    ++comparisons;
  }
  EXPECT_EQ(comparisons, table.p_code.size());
  // One LUT case entry per segment plus a default.
  std::size_t cases = 0;
  for (std::size_t pos = v.find("k_lut ="); pos != std::string::npos;
       pos = v.find("k_lut =", pos + 1)) {
    ++cases;
  }
  EXPECT_EQ(cases, static_cast<std::size_t>(table.entries()) + 1);
}

TEST(VerilogEmitter, CombinationalVariant) {
  VerilogOptions options;
  options.registered_output = false;
  const std::string v = emit_pwl_unit(sample_table(), options);
  EXPECT_NE(v.find("assign acc_out"), std::string::npos);
  EXPECT_EQ(v.find("posedge"), std::string::npos);
}

TEST(VerilogEmitter, TestbenchCoversAllCodesAndSelfChecks) {
  const QuantizedPwlTable table = sample_table();
  const std::string tb = emit_testbench(table);
  EXPECT_NE(tb.find("module gqa_pwl_unit_tb"), std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
  std::size_t checks = 0;
  for (std::size_t pos = tb.find("check("); pos != std::string::npos;
       pos = tb.find("check(", pos + 1)) {
    ++checks;
  }
  // Task definition + 256 invocations.
  EXPECT_EQ(checks, 257u);
}

TEST(VerilogEmitter, BalancedModuleEndmodule) {
  for (const std::string& text :
       {emit_pwl_unit(sample_table()), emit_testbench(sample_table())}) {
    std::size_t modules = 0, ends = 0;
    for (std::size_t pos = text.find("module "); pos != std::string::npos;
         pos = text.find("module ", pos + 1)) {
      if (pos == 0 || text[pos - 1] != 'd') ++modules;  // skip "endmodule"
    }
    for (std::size_t pos = text.find("endmodule"); pos != std::string::npos;
         pos = text.find("endmodule", pos + 1)) {
      ++ends;
    }
    EXPECT_EQ(modules, ends);
    EXPECT_GE(modules, 1u);
  }
}

}  // namespace
}  // namespace gqa::hw
