#include "tfm/probe.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.h"
#include "util/rng.h"

namespace gqa::tfm {

double train_softmax_probe(const std::vector<Tensor>& features,
                           const std::vector<std::vector<int>>& labels,
                           int classes, std::span<float> weights,
                           std::span<float> bias, int epochs,
                           double learning_rate, std::uint64_t seed) {
  GQA_EXPECTS(!features.empty());
  GQA_EXPECTS(features.size() == labels.size());
  GQA_EXPECTS(classes >= 2 && epochs >= 1 && learning_rate > 0.0);
  const int dim = features.front().shape()[1];
  GQA_EXPECTS(static_cast<int>(weights.size()) == classes * dim);
  GQA_EXPECTS(static_cast<int>(bias.size()) == classes);

  // Flatten (feature row, label) pairs.
  struct Sample {
    const Tensor* f;
    int row;
    int label;
  };
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < features.size(); ++i) {
    GQA_EXPECTS(features[i].shape().rank() == 2 &&
                features[i].shape()[1] == dim);
    GQA_EXPECTS(labels[i].size() ==
                static_cast<std::size_t>(features[i].shape()[0]));
    for (int r = 0; r < features[i].shape()[0]; ++r) {
      const int cls = labels[i][static_cast<std::size_t>(r)];
      GQA_EXPECTS(cls >= 0 && cls < classes);
      samples.push_back({&features[i], r, cls});
    }
  }

  Rng rng(seed);
  std::vector<double> logits(static_cast<std::size_t>(classes));
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    const double lr = learning_rate * (1.0 - 0.9 * epoch / epochs);
    epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const Sample& s = samples[idx];
      // Forward.
      double peak = -1e300;
      for (int c = 0; c < classes; ++c) {
        double z = bias[static_cast<std::size_t>(c)];
        const std::size_t wrow = static_cast<std::size_t>(c) * dim;
        for (int d = 0; d < dim; ++d) {
          z += static_cast<double>(weights[wrow + d]) * s.f->at(s.row, d);
        }
        logits[static_cast<std::size_t>(c)] = z;
        peak = std::max(peak, z);
      }
      double denom = 0.0;
      for (int c = 0; c < classes; ++c) {
        logits[static_cast<std::size_t>(c)] =
            std::exp(logits[static_cast<std::size_t>(c)] - peak);
        denom += logits[static_cast<std::size_t>(c)];
      }
      epoch_loss -= std::log(
          std::max(1e-12, logits[static_cast<std::size_t>(s.label)] / denom));
      // SGD step: dL/dz_c = p_c - 1[c == y].
      for (int c = 0; c < classes; ++c) {
        const double p = logits[static_cast<std::size_t>(c)] / denom;
        const double g = p - (c == s.label ? 1.0 : 0.0);
        if (std::abs(g) < 1e-9) continue;
        float* wrow = weights.data() + static_cast<std::size_t>(c) * dim;
        for (int d = 0; d < dim; ++d) {
          wrow[d] -= static_cast<float>(lr * g * s.f->at(s.row, d));
        }
        bias[static_cast<std::size_t>(c)] -= static_cast<float>(lr * g);
      }
    }
    epoch_loss /= static_cast<double>(samples.size());
  }
  return epoch_loss;
}

}  // namespace gqa::tfm
