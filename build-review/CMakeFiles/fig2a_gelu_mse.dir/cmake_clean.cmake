file(REMOVE_RECURSE
  "CMakeFiles/fig2a_gelu_mse.dir/bench/fig2a_gelu_mse.cpp.o"
  "CMakeFiles/fig2a_gelu_mse.dir/bench/fig2a_gelu_mse.cpp.o.d"
  "bench/fig2a_gelu_mse"
  "bench/fig2a_gelu_mse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_gelu_mse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
