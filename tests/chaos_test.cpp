// Chaos-conformance harness for the fault-tolerant serving layer
// (src/eval/server.h + src/util/fault_injection.h). The randomized trials
// arm the admission/scheduler/backend chaos points with seeded
// probabilities and check the invariants that must hold for EVERY draw:
// exactly-once delivery of a result OR a classified ServingError, bit-
// identity with the serial reference for every request that reports
// success, clean drain with consistent stats, and agreement between the
// server's fault counter and the injector's own per-point tallies.
// Deterministic companions pin down the circuit-breaker state machine
// (open -> fail-fast shed -> half-open probe -> close/re-open), the
// exactly-once deadline expiry of stale backlog entries, transient-retry
// bookkeeping, warm-up fault degradation, and the fail-loud spec grammar.
// The ChaosCache suite arms the cache_read/cache_write points against the
// persistent artifact store (util/artifact_store.h): injected faults at
// either point — and corruption on disk — must never yield a torn or
// silently-wrong artifact, only a bit-identical in-process refit.
// The ChaosStream suite arms the stream_admission point (plus backend
// faults) against streaming sessions: every pushed frame must still hit
// the stream's callback ledger exactly once, in frame order, and
// close_stream() racing pushers under faults must drain cleanly.
// The suite runs in the TSan CI job (label: concurrency) at two
// GQA_TEST_THREADS widths, and once more in the ASan job with an armed
// GQA_FAULT_SPEC (every deterministic test shields itself with
// FaultScope, so an env-armed injector only feeds the randomized trials).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/approximator.h"
#include "eval/server.h"
#include "tfm/nonlinear_provider.h"
#include "util/artifact_store.h"
#include "util/contracts.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/serving_error.h"

namespace gqa {
namespace {

using std::chrono::milliseconds;

/// Cheap deterministic backend (same construction as scheduler_test): a
/// salted checksum of the image, so serial references are trivial and a
/// chaos trial can afford hundreds of requests.
tfm::QTensor toy_forward(const tfm::Tensor& image, int salt) {
  tfm::QTensor out(tfm::Shape{1, 4}, QuantParams{1.0, 16, true});
  double sum = 0.0;
  for (const float v : image.data()) sum += static_cast<double>(v);
  const auto base = static_cast<std::int32_t>(
      static_cast<std::int64_t>(sum * 1024.0) & 0x7FFF);
  for (int i = 0; i < 4; ++i) {
    out.data()[static_cast<std::size_t>(i)] = base + salt * (i + 1);
  }
  return out;
}

/// A distinct image per request id, so each request has its own reference.
tfm::Tensor id_image(int id) {
  tfm::Tensor image(tfm::Shape{1, 4, 4});
  for (std::size_t i = 0; i < image.data().size(); ++i) {
    image.data()[i] = static_cast<float>(id % 17) * 0.25F +
                      static_cast<float>(i) * 0.0625F;
  }
  return image;
}

ServingErrorCode code_of(const std::exception_ptr& error) {
  return serving_error_code(error);
}

/// Exactly-once ledger for callback deliveries under chaos: success
/// payloads and classified errors both count as the one delivery.
struct ChaosLedger {
  std::mutex mutex;
  std::map<Server::Ticket, int> deliveries;
  std::map<Server::Ticket, std::vector<std::int32_t>> results;
  std::map<Server::Ticket, ServingErrorCode> errors;

  void record(Server::Ticket ticket, const tfm::QTensor& result,
              const std::exception_ptr& error) {
    std::lock_guard<std::mutex> lock(mutex);
    ++deliveries[ticket];
    if (error == nullptr) {
      results[ticket] = result.data();
    } else {
      errors[ticket] = code_of(error);
    }
  }
};

TEST(ChaosConformance, RandomizedFaultsExactlyOnceBitIdenticalSuccesses) {
  const int submitters =
      std::max(1, static_cast<int>(env_int("GQA_TEST_THREADS", 4)));
  const int kLaneChoices[] = {1, 2, 4, 8};
  const std::uint64_t kSeeds[] = {0xC4A05, 0xC4A06, 0xC4A07, 0xC4A08};

  int trial = 0;
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    // Seeded chaos: every trial arms all three server points with its own
    // probabilities and seeds, replacing whatever GQA_FAULT_SPEC armed.
    const double p_admit = 0.02 + 0.04 * rng.canonical();
    const double p_sched = 0.05 + 0.10 * rng.canonical();
    const double p_backend = 0.05 + 0.15 * rng.canonical();
    char spec[160];
    std::snprintf(spec, sizeof(spec),
                  "admission:%.3f:%llu,scheduler:%.3f:%llu,backend:%.3f:%llu",
                  p_admit, static_cast<unsigned long long>(seed), p_sched,
                  static_cast<unsigned long long>(seed + 1), p_backend,
                  static_cast<unsigned long long>(seed + 2));
    fault::FaultScope chaos{std::string(spec)};

    const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
    ServerOptions options;
    options.num_threads = kLaneChoices[trial % 4];
    options.warm_provider = false;
    options.queue_capacity = 64;
    options.scheduler.breaker_threshold = 0;  // breaker has its own tests
    Server server(nl, options);
    for (int m = 0; m < 3; ++m) {
      server.register_forward(
          "toy", [m](const tfm::Tensor& image, tfm::Workspace*) {
            return toy_forward(image, /*salt=*/m + 3);
          });
    }

    struct Issued {
      Server::Ticket ticket = 0;
      int model = 0;
      int id = 0;
      bool use_callback = false;
    };
    const int total = 40 + static_cast<int>(rng.uniform_int(0, 40));
    ChaosLedger ledger;
    std::vector<std::vector<Issued>> issued(
        static_cast<std::size_t>(submitters));
    std::vector<std::uint64_t> admission_faults(
        static_cast<std::size_t>(submitters), 0);
    std::vector<std::thread> clients;
    for (int t = 0; t < submitters; ++t) {
      // Per-thread request streams forked off the trial seed, so the mix
      // is deterministic per (seed, submitters) while the interleaving is
      // free to vary.
      Rng fork = rng.fork(static_cast<std::uint64_t>(t));
      clients.emplace_back([&, t, fork]() mutable {
        for (int i = t; i < total; i += submitters) {
          Issued entry;
          entry.model = static_cast<int>(fork.uniform_int(0, 2));
          entry.id = i;
          entry.use_callback = fork.bernoulli(0.5);
          SubmitOptions submit_options;
          submit_options.max_attempts =
              static_cast<int>(fork.uniform_int(1, 3));
          try {
            if (entry.use_callback) {
              entry.ticket = server.submit(
                  entry.model, id_image(entry.id), submit_options,
                  [&ledger](Server::Ticket done, tfm::QTensor result,
                            std::exception_ptr error) {
                    ledger.record(done, result, error);
                  });
            } else {
              entry.ticket = server.submit(entry.model, id_image(entry.id),
                                           submit_options);
            }
          } catch (const ServingError& e) {
            // An injected admission fault refuses the request before a
            // ticket exists — the only delivery is this throw.
            ASSERT_EQ(e.code(), ServingErrorCode::kAdmissionRejected);
            ++admission_faults[static_cast<std::size_t>(t)];
            continue;
          }
          issued[static_cast<std::size_t>(t)].push_back(entry);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    server.drain();

    // Every admitted request resolved exactly once: a bit-identical result
    // or a transient-class ServingError (the only failures these chaos
    // points can produce once admission succeeded).
    std::size_t admitted = 0;
    std::size_t callback_count = 0;
    for (const auto& per_client : issued) {
      for (const Issued& entry : per_client) {
        ++admitted;
        const std::vector<std::int32_t> want =
            toy_forward(id_image(entry.id), entry.model + 3).data();
        if (entry.use_callback) {
          ++callback_count;
          EXPECT_EQ(server.poll(entry.ticket), TicketStatus::kConsumed);
          std::lock_guard<std::mutex> lock(ledger.mutex);
          ASSERT_EQ(ledger.deliveries[entry.ticket], 1)
              << "seed=" << seed << " ticket=" << entry.ticket;
          if (ledger.results.count(entry.ticket) > 0) {
            EXPECT_EQ(ledger.results[entry.ticket], want)
                << "seed=" << seed << " ticket=" << entry.ticket;
          } else {
            EXPECT_EQ(ledger.errors[entry.ticket],
                      ServingErrorCode::kBackendTransient);
          }
        } else {
          EXPECT_EQ(server.poll(entry.ticket), TicketStatus::kReady);
          try {
            EXPECT_EQ(server.wait(entry.ticket).data(), want)
                << "seed=" << seed << " ticket=" << entry.ticket;
          } catch (const ServingError& e) {
            EXPECT_EQ(e.code(), ServingErrorCode::kBackendTransient);
          }
          EXPECT_EQ(server.poll(entry.ticket), TicketStatus::kConsumed);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(ledger.mutex);
      EXPECT_EQ(ledger.deliveries.size(), callback_count);
    }

    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.submitted, admitted);
    EXPECT_EQ(stats.completed, admitted);
    EXPECT_EQ(stats.callback_errors, 0U);
    std::uint64_t admission_fault_total = 0;
    for (const std::uint64_t f : admission_faults) admission_fault_total += f;
    EXPECT_EQ(admitted + admission_fault_total,
              static_cast<std::size_t>(total));
    // The server's fault counter and the injector's own tallies agree:
    // every fire at a server point was counted exactly once.
    const fault::FaultInjector& injector = fault::FaultInjector::instance();
    EXPECT_EQ(stats.faults_injected,
              injector.injected(fault::Point::kAdmission) +
                  injector.injected(fault::Point::kScheduler) +
                  injector.injected(fault::Point::kBackend))
        << "seed=" << seed;
    EXPECT_EQ(injector.injected(fault::Point::kAdmission),
              admission_fault_total);
    ++trial;
  }
}

TEST(ChaosShutdown, DrainAndShutdownUnderFaultsResolveEverything) {
  fault::FaultScope chaos{"backend:0.3:91,scheduler:0.2:92"};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 4;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 0;
  options.scheduler.drain_policy = DrainPolicy::kCancelPending;
  Server server(nl, options);
  server.register_forward("toy",
                          [](const tfm::Tensor& image, tfm::Workspace*) {
                            return toy_forward(image, /*salt=*/5);
                          });
  ChaosLedger ledger;
  std::size_t admitted = 0;
  for (int i = 0; i < 120; ++i) {
    try {
      server.submit(0, id_image(i), SubmitOptions{milliseconds{0}, 2},
                    [&ledger](Server::Ticket done, tfm::QTensor result,
                              std::exception_ptr error) {
                      ledger.record(done, result, error);
                    });
      ++admitted;
    } catch (const ServingError&) {
      // injected admission fault
    }
  }
  // Shutdown races the in-flight chaos: every admitted request must still
  // resolve exactly once (served, failed, or cancelled) with no deadlock.
  server.shutdown();
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, admitted);
  EXPECT_EQ(stats.completed, admitted);
  std::lock_guard<std::mutex> lock(ledger.mutex);
  EXPECT_EQ(ledger.deliveries.size(), admitted);
  for (const auto& [ticket, count] : ledger.deliveries) {
    EXPECT_EQ(count, 1) << "ticket=" << ticket;
  }
  for (const auto& [ticket, code] : ledger.errors) {
    EXPECT_TRUE(code == ServingErrorCode::kBackendTransient ||
                code == ServingErrorCode::kCancelled)
        << "ticket=" << ticket << " code=" << serving_error_name(code);
  }
}

TEST(ChaosBreaker, OpensAfterThresholdAndShedsBacklogFailFast) {
  fault::FaultScope quiet{""};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 2;
  options.scheduler.breaker_cooldown = milliseconds{600000};  // never probes
  Server server(nl, options);
  std::atomic<bool> failing{true};
  server.register_forward("flaky",
                          [&](const tfm::Tensor& image, tfm::Workspace*) {
                            if (failing.load()) {
                              throw ServingError(
                                  ServingErrorCode::kBackendFailed,
                                  "backend poisoned");
                            }
                            return toy_forward(image, /*salt=*/2);
                          });
  // Two consecutive final failures open the breaker...
  for (int i = 0; i < 2; ++i) {
    const Server::Ticket t = server.submit(0, id_image(i));
    EXPECT_THROW((void)server.wait(t), ServingError);
  }
  // ... and everything after that sheds fail-fast without starting.
  std::vector<Server::Ticket> shed;
  for (int i = 0; i < 4; ++i) shed.push_back(server.submit(0, id_image(i)));
  server.drain();
  for (const Server::Ticket t : shed) {
    try {
      (void)server.wait(t);
      FAIL() << "shed ticket " << t << " produced a result";
    } catch (const ServingError& e) {
      EXPECT_EQ(e.code(), ServingErrorCode::kModelUnavailable);
    }
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.breaker_trips, 1U);
  EXPECT_EQ(stats.started_per_model.at(0), 2U);  // only the two failures ran
  EXPECT_EQ(stats.completed, 6U);
}

TEST(ChaosBreaker, HalfOpenProbeClosesOnSuccessAndReopensOnFailure) {
  fault::FaultScope quiet{""};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 1;
  options.scheduler.breaker_cooldown = milliseconds{5};
  Server server(nl, options);
  std::atomic<bool> failing{true};
  server.register_forward("flaky",
                          [&](const tfm::Tensor& image, tfm::Workspace*) {
                            if (failing.load()) {
                              throw ServingError(
                                  ServingErrorCode::kBackendFailed,
                                  "backend poisoned");
                            }
                            return toy_forward(image, /*salt=*/2);
                          });
  // Trip 1: the first failure opens the breaker (threshold 1).
  EXPECT_THROW((void)server.wait(server.submit(0, id_image(0))), ServingError);
  // After the cooldown the next request is the half-open probe; it still
  // fails, so the breaker re-opens (trip 2).
  std::this_thread::sleep_for(milliseconds{20});
  EXPECT_THROW((void)server.wait(server.submit(0, id_image(1))), ServingError);
  EXPECT_EQ(server.stats().breaker_trips, 2U);
  // Heal the backend: the next post-cooldown probe succeeds, the breaker
  // closes, and service is back to normal — bit-identically.
  failing.store(false);
  std::this_thread::sleep_for(milliseconds{20});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.wait(server.submit(0, id_image(7))).data(),
              toy_forward(id_image(7), 2).data());
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.breaker_trips, 2U);  // recovery added no trip
  EXPECT_EQ(stats.completed, 5U);
}

TEST(ChaosDeadline, BacklogExpiryIsExactlyOnceAndVisibleThroughPoll) {
  fault::FaultScope quiet{""};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 0;
  Server server(nl, options);
  std::atomic<int> gate_started{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> doomed_started{0};
  const int gated = server.register_forward(
      "gate", [&](const tfm::Tensor&, tfm::Workspace*) {
        ++gate_started;
        gate.wait();
        return tfm::QTensor{};
      });
  const int doomed = server.register_forward(
      "doomed", [&](const tfm::Tensor& image, tfm::Workspace*) {
        ++doomed_started;
        return toy_forward(image, /*salt=*/4);
      });

  // Park the single lane inside the gate, pile up deadlined requests
  // behind it, and let them all go stale before the lane frees.
  const Server::Ticket gate_ticket = server.submit(gated, id_image(0));
  while (gate_started.load() < 1) std::this_thread::yield();
  ChaosLedger ledger;
  std::vector<Server::Ticket> stale;
  SubmitOptions short_deadline;
  short_deadline.deadline = milliseconds{30};
  for (int i = 0; i < 3; ++i) {
    stale.push_back(server.submit(doomed, id_image(i), short_deadline));
  }
  const Server::Ticket stale_callback = server.submit(
      doomed, id_image(9), short_deadline,
      [&ledger](Server::Ticket done, tfm::QTensor result,
                std::exception_ptr error) {
        ledger.record(done, result, error);
      });
  std::this_thread::sleep_for(milliseconds{80});
  release.set_value();
  server.drain();

  // Expired entries never started; poll() reports the expiry until wait()
  // consumes it, and the callback one was delivered its error exactly once.
  EXPECT_EQ(doomed_started.load(), 0);
  for (const Server::Ticket t : stale) {
    EXPECT_EQ(server.poll(t), TicketStatus::kDeadlineExpired);
    try {
      (void)server.wait(t);
      FAIL() << "expired ticket " << t << " produced a result";
    } catch (const ServingError& e) {
      EXPECT_EQ(e.code(), ServingErrorCode::kDeadlineExpired);
    }
    EXPECT_EQ(server.poll(t), TicketStatus::kConsumed);
  }
  {
    std::lock_guard<std::mutex> lock(ledger.mutex);
    ASSERT_EQ(ledger.deliveries[stale_callback], 1);
    EXPECT_EQ(ledger.errors[stale_callback],
              ServingErrorCode::kDeadlineExpired);
  }
  (void)server.wait(gate_ticket);
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.deadline_expired, 4U);
  EXPECT_EQ(stats.started_per_model.at(1), 0U);
  EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(ChaosRetry, TransientFailuresRetryUntilSuccessBitIdentically) {
  fault::FaultScope quiet{""};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 2;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 0;
  Server server(nl, options);
  // Each request fails transiently exactly twice before succeeding; the
  // per-request attempt counters are keyed by the id its image encodes.
  std::mutex attempts_mutex;
  std::map<int, int> attempts;
  server.register_forward(
      "flaky2", [&](const tfm::Tensor& image, tfm::Workspace*) {
        const int id = static_cast<int>(image.data()[0] / 0.25F + 0.5F);
        int attempt = 0;
        {
          std::lock_guard<std::mutex> lock(attempts_mutex);
          attempt = ++attempts[id];
        }
        if (attempt <= 2) {
          throw ServingError(ServingErrorCode::kBackendTransient,
                             "transient glitch");
        }
        return toy_forward(image, /*salt=*/6);
      });
  SubmitOptions retrying;
  retrying.max_attempts = 4;
  retrying.backoff = milliseconds{1};
  const int kRequests = 6;
  std::vector<Server::Ticket> tickets;
  for (int i = 0; i < kRequests; ++i) {
    tickets.push_back(server.submit(0, id_image(i), retrying));
  }
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(server.wait(tickets[static_cast<std::size_t>(i)]).data(),
              toy_forward(id_image(i), 6).data());
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.retries, static_cast<std::uint64_t>(2 * kRequests));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
}

TEST(ChaosRetry, ExhaustedRetryBudgetDeliversTheTransientError) {
  fault::FaultScope quiet{""};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 0;
  Server server(nl, options);
  server.register_forward("always-transient",
                          [](const tfm::Tensor&, tfm::Workspace*) -> tfm::QTensor {
                            throw ServingError(
                                ServingErrorCode::kBackendTransient,
                                "still glitching");
                          });
  SubmitOptions two_attempts;
  two_attempts.max_attempts = 2;
  const Server::Ticket t = server.submit(0, id_image(0), two_attempts);
  try {
    (void)server.wait(t);
    FAIL() << "exhausted retries still produced a result";
  } catch (const ServingError& e) {
    EXPECT_EQ(e.code(), ServingErrorCode::kBackendTransient);
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.retries, 1U);  // attempt 2 was the one retry
  EXPECT_EQ(stats.completed, 1U);
}

TEST(ChaosWarmup, InjectedWarmupFaultDegradesRegistrationToColdServing) {
  fault::FaultScope warmup_down{"warmup:1.0:17"};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = true;  // the warm-up call is the injection site
  options.scheduler.breaker_threshold = 0;
  Server server(nl, options);
  server.register_forward("toy",
                          [](const tfm::Tensor& image, tfm::Workspace*) {
                            return toy_forward(image, /*salt=*/8);
                          });
  EXPECT_GE(fault::FaultInjector::instance().injected(fault::Point::kWarmup),
            1U);
  // Registration survived the failed warm-up and serving is unaffected.
  EXPECT_EQ(server.wait(server.submit(0, id_image(3))).data(),
            toy_forward(id_image(3), 8).data());
}

/// Fresh cache root per ChaosCache test, removed on destruction.
struct ChaosCacheDir {
  explicit ChaosCacheDir(const std::string& tag)
      : path("/tmp/gqa_chaos_cache_" + tag + "_" +
             std::to_string(static_cast<long long>(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ChaosCacheDir() { std::filesystem::remove_all(path); }

  [[nodiscard]] int count_suffix(const std::string& suffix) const {
    int n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (entry.path().filename().string().ends_with(suffix)) ++n;
    }
    return n;
  }

  std::string path;
};

void corrupt_one_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(offset));
  f.put('#');
}

TEST(ChaosCache, WriteFaultDuringWarmupIsInvisibleBeyondTheMissingArtifact) {
  fault::FaultScope chaos{"cache_write:1.0:61"};
  ChaosCacheDir dir("write");
  CacheScope cache(dir.path);
  // Cold reference, fitted with no store in play.
  const Approximator cold =
      Approximator::fit(Op::kGelu, Method::kGqaRm, FitOptions{});

  const tfm::NonlinearProvider provider =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  provider.warm_up_deployment();  // publish fails; warm-up must not

  // The failed publish left nothing behind — no artifact, no torn temp —
  // and the injector actually fired at the cache_write point.
  EXPECT_EQ(dir.count_suffix(".gqa"), 0);
  EXPECT_TRUE(std::filesystem::is_empty(dir.path));
  EXPECT_GE(
      fault::FaultInjector::instance().injected(fault::Point::kCacheWrite),
      1U);
  // Serving is bit-identical to the storeless cold fit.
  const IntPwlUnit unit = cold.make_unit(-3);
  for (std::int64_t q = -128; q <= 127; ++q) {
    ASSERT_EQ(provider.gelu_code(q, -3), unit.eval_real_from_code(q)) << q;
  }
}

TEST(ChaosCache, ReadFaultDegradesToRefitWithoutQuarantine) {
  fault::FaultScope quiet{""};
  ChaosCacheDir dir("read");
  CacheScope cache(dir.path);
  // Publish a healthy artifact first.
  const tfm::NonlinearProvider publisher =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  publisher.warm_up_deployment();
  ASSERT_EQ(dir.count_suffix(".gqa"), 1);

  std::uint64_t fired = 0;
  {
    // An unreadable cache (I/O fault on load) degrades to an in-process
    // refit; the healthy on-disk artifact must NOT be quarantined.
    fault::FaultScope chaos{"cache_read:1.0:62"};
    const tfm::NonlinearProvider degraded =
        tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
    degraded.warm_up_deployment();
    fired =
        fault::FaultInjector::instance().injected(fault::Point::kCacheRead);
    for (std::int64_t q = -128; q <= 127; ++q) {
      ASSERT_EQ(degraded.gelu_code(q, -3), publisher.gelu_code(q, -3)) << q;
    }
  }
  EXPECT_GE(fired, 1U);
  EXPECT_EQ(dir.count_suffix(".corrupt"), 0);
  EXPECT_EQ(dir.count_suffix(".gqa"), 1);
}

TEST(ChaosCache, ServerWarmWithCorruptedCacheQuarantinesRepublishesServes) {
  fault::FaultScope quiet{""};
  ChaosCacheDir dir("server");
  CacheScope cache(dir.path);
  // Publish, then corrupt the artifact on disk behind the store's back.
  {
    const tfm::NonlinearProvider publisher =
        tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
    publisher.warm_up_deployment();
  }
  ASSERT_EQ(dir.count_suffix(".gqa"), 1);
  std::string artifact;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    artifact = entry.path().string();
  }
  corrupt_one_byte(artifact, 7);

  // A fresh provider behind a warm_provider server: registration warms the
  // shared provider, which must quarantine the corrupt artifact, refit
  // bit-identically, republish, and serve with no visible error.
  const tfm::NonlinearProvider provider =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  ServerOptions options;
  options.num_threads = 2;
  options.warm_provider = true;
  options.scheduler.breaker_threshold = 0;
  Server server(provider, options);
  server.register_forward("gelu-sum", [&provider](const tfm::Tensor& image,
                                                  tfm::Workspace*) {
    tfm::QTensor out(tfm::Shape{1, 4}, QuantParams{1.0, 16, true});
    for (int i = 0; i < 4; ++i) {
      const auto q = static_cast<std::int64_t>(i * 16 - 32);
      out.data()[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
          provider.gelu_code(q, -3) * 1024.0 +
          static_cast<double>(image.data()[0]));
    }
    return out;
  });

  EXPECT_EQ(dir.count_suffix(".corrupt"), 1);  // evidence preserved
  EXPECT_EQ(dir.count_suffix(".gqa"), 1);      // republished
  const Approximator cold =
      Approximator::fit(Op::kGelu, Method::kGqaRm, FitOptions{});
  const IntPwlUnit unit = cold.make_unit(-3);
  const tfm::QTensor got = server.wait(server.submit(0, id_image(1)));
  for (int i = 0; i < 4; ++i) {
    const auto q = static_cast<std::int64_t>(i * 16 - 32);
    const auto want = static_cast<std::int32_t>(
        unit.eval_real_from_code(q) * 1024.0 +
        static_cast<double>(id_image(1).data()[0]));
    EXPECT_EQ(got.data()[static_cast<std::size_t>(i)], want) << i;
  }
  // And the republished artifact is valid: the next consumer loads it.
  const tfm::NonlinearProvider next =
      tfm::NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  next.warm_up_deployment();
  EXPECT_EQ(dir.count_suffix(".corrupt"), 1);  // no new quarantine
  for (std::int64_t q = -128; q <= 127; ++q) {
    ASSERT_EQ(next.gelu_code(q, -3), unit.eval_real_from_code(q)) << q;
  }
}

TEST(ChaosStream, AdmissionAndBackendFaultsHitTheStreamLedgerExactlyOnce) {
  // stream_admission fires AFTER the ticket is issued, so a faulted frame
  // still resolves — kAdmissionRejected through the in-order delivery path
  // — and backend faults ride the per-frame retry budget. Whatever mix of
  // faults, retries, and ring displacement a seed produces, every pushed
  // frame reaches the callback exactly once and in frame order.
  fault::FaultScope chaos{"stream_admission:0.3:77,backend:0.2:78"};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 2;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 0;
  Server server(nl, options);
  server.register_forward("toy",
                          [](const tfm::Tensor& image, tfm::Workspace*) {
                            return toy_forward(image, /*salt=*/5);
                          });

  ChaosLedger ledger;
  std::vector<Server::Ticket> delivered_order;
  std::mutex order_mutex;
  StreamOptions so;
  so.ring_capacity = 8;
  so.max_attempts = 2;
  so.backoff = milliseconds{1};
  Server::StreamSession stream = server.open_stream(
      0, so,
      [&](Server::Ticket ticket, tfm::QTensor result,
          std::exception_ptr error) {
        {
          std::lock_guard<std::mutex> lock(order_mutex);
          delivered_order.push_back(ticket);
        }
        ledger.record(ticket, result, error);
      });

  const int kFrames = 80;
  std::vector<Server::Ticket> pushed;
  std::map<Server::Ticket, int> frame_of;
  for (int i = 0; i < kFrames; ++i) {
    const std::optional<Server::Ticket> t = stream.push_frame(id_image(i));
    ASSERT_TRUE(t.has_value());  // a faulted push still issues its ticket
    pushed.push_back(*t);
    frame_of[*t] = i;
  }
  stream.close();

  std::lock_guard<std::mutex> lock(ledger.mutex);
  {
    std::lock_guard<std::mutex> order_lock(order_mutex);
    EXPECT_EQ(delivered_order, pushed);  // exactly once, in frame order
  }
  for (const auto& [ticket, count] : ledger.deliveries) {
    EXPECT_EQ(count, 1) << "ticket=" << ticket;
  }
  for (const auto& [ticket, data] : ledger.results) {
    EXPECT_EQ(data, toy_forward(id_image(frame_of.at(ticket)), 5).data())
        << "ticket=" << ticket;
  }
  std::uint64_t admission_rejected = 0;
  std::uint64_t superseded = 0;
  for (const auto& [ticket, code] : ledger.errors) {
    EXPECT_TRUE(code == ServingErrorCode::kAdmissionRejected ||
                code == ServingErrorCode::kBackendTransient ||
                code == ServingErrorCode::kFrameSuperseded)
        << "ticket=" << ticket << " code=" << serving_error_name(code);
    admission_rejected += (code == ServingErrorCode::kAdmissionRejected);
    superseded += (code == ServingErrorCode::kFrameSuperseded);
  }
  const fault::FaultInjector& injector = fault::FaultInjector::instance();
  EXPECT_EQ(admission_rejected,
            injector.injected(fault::Point::kStreamAdmission));
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kFrames));
  // Dropped = ring displacements + injected admission rejections, and the
  // stream-drop ledger agrees with the server's counter.
  EXPECT_EQ(stats.frames_dropped, superseded + admission_rejected);
  EXPECT_EQ(stats.faults_injected,
            injector.injected(fault::Point::kStreamAdmission) +
                injector.injected(fault::Point::kBackend));
  EXPECT_EQ(stats.streams_open, 0U);
  EXPECT_EQ(stats.callback_errors, 0U);
}

TEST(ChaosStream, CloseRacingConcurrentPushersUnderFaultsDrainsCleanly) {
  // Several pusher threads hammer one kCancelPending stream while the main
  // thread closes it mid-stream, with admission and backend faults armed.
  // Admission atomically stops at the close; every frame that WAS admitted
  // resolves exactly once (served, faulted, displaced, or cancelled) in
  // ticket order, and close() returns only after the last delivery.
  fault::FaultScope chaos{"stream_admission:0.2:81,backend:0.3:82"};
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 4;
  options.warm_provider = false;
  options.scheduler.breaker_threshold = 0;
  Server server(nl, options);
  server.register_forward("toy",
                          [](const tfm::Tensor& image, tfm::Workspace*) {
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(100));
                            return toy_forward(image, /*salt=*/5);
                          });

  ChaosLedger ledger;
  std::vector<Server::Ticket> delivered_order;
  std::mutex shared_mutex;  // guards delivered_order and accepted
  std::vector<Server::Ticket> accepted;
  StreamOptions so;
  so.ring_capacity = 4;
  so.drain_policy = DrainPolicy::kCancelPending;
  Server::StreamSession stream = server.open_stream(
      0, so,
      [&](Server::Ticket ticket, tfm::QTensor result,
          std::exception_ptr error) {
        {
          std::lock_guard<std::mutex> lock(shared_mutex);
          delivered_order.push_back(ticket);
        }
        ledger.record(ticket, result, error);
      });

  std::vector<std::thread> pushers;
  for (int p = 0; p < 3; ++p) {
    pushers.emplace_back([&, p] {
      for (int i = 0; i < 40; ++i) {
        const std::optional<Server::Ticket> t =
            stream.push_frame(id_image(p * 40 + i));
        if (!t.has_value()) return;  // the stream is closing: stop pushing
        std::lock_guard<std::mutex> lock(shared_mutex);
        accepted.push_back(*t);
      }
    });
  }
  std::this_thread::sleep_for(milliseconds{5});
  stream.close();  // races the pushers; blocks until the last delivery
  for (std::thread& p : pushers) p.join();
  stream.close();  // idempotent

  std::lock_guard<std::mutex> lock(ledger.mutex);
  std::lock_guard<std::mutex> shared_lock(shared_mutex);
  // Multi-threaded pushers have no global push order, but tickets are
  // issued under the server lock, so in-frame-order delivery means the
  // delivered sequence is exactly the sorted accepted set.
  std::vector<Server::Ticket> expected = accepted;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(delivered_order, expected);
  for (const auto& [ticket, count] : ledger.deliveries) {
    EXPECT_EQ(count, 1) << "ticket=" << ticket;
  }
  for (const auto& [ticket, code] : ledger.errors) {
    EXPECT_TRUE(code == ServingErrorCode::kAdmissionRejected ||
                code == ServingErrorCode::kBackendTransient ||
                code == ServingErrorCode::kFrameSuperseded ||
                code == ServingErrorCode::kCancelled)
        << "ticket=" << ticket << " code=" << serving_error_name(code);
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.completed, accepted.size());
  EXPECT_EQ(stats.streams_open, 0U);
  EXPECT_EQ(stats.callback_errors, 0U);
}

TEST(ChaosSpec, MalformedSpecsFailLoudly) {
  fault::FaultScope quiet{""};
  fault::FaultInjector& injector = fault::FaultInjector::instance();
  EXPECT_THROW(injector.configure("bogus:0.5:1"), ContractViolation);
  EXPECT_THROW(injector.configure("backend:1.5:1"), ContractViolation);
  EXPECT_THROW(injector.configure("backend:0:1"), ContractViolation);
  EXPECT_THROW(injector.configure("backend:0.5:-1"), ContractViolation);
  EXPECT_THROW(injector.configure("backend:0.5"), ContractViolation);
  EXPECT_THROW(injector.configure("backend:0.5:1:9"), ContractViolation);
  // A throwing configure leaves the injector disarmed, never half-armed.
  EXPECT_FALSE(injector.enabled());
  injector.configure("");  // leave clean; `quiet` restores the entry spec
}

TEST(ChaosSpec, SeededDecisionStreamsAreReproducible) {
  fault::FaultScope quiet{""};
  fault::FaultInjector& injector = fault::FaultInjector::instance();
  const std::string spec = "backend:0.25:42";
  std::vector<bool> first;
  injector.configure(spec);
  for (int i = 0; i < 1000; ++i) {
    first.push_back(injector.should_inject(fault::Point::kBackend));
  }
  const std::uint64_t fired = injector.injected(fault::Point::kBackend);
  // The fire rate tracks the armed probability (binomial, wide margin)...
  EXPECT_GT(fired, 150U);
  EXPECT_LT(fired, 350U);
  // ... and re-arming the same spec replays the identical decision stream.
  injector.configure(spec);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(injector.should_inject(fault::Point::kBackend),
              first[static_cast<std::size_t>(i)])
        << "draw " << i;
  }
  EXPECT_EQ(injector.injected(fault::Point::kBackend), fired);
  // Unarmed points never fire and never count draws.
  EXPECT_FALSE(injector.should_inject(fault::Point::kLoad));
  EXPECT_EQ(injector.injected(fault::Point::kLoad), 0U);
  injector.configure("");
}

}  // namespace
}  // namespace gqa
