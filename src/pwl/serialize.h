// JSON (de)serialization of fitted tables so deployments can ship LUT
// parameter files produced by the fitting pipeline.
//
// Failure semantics: the file load paths (load_pwl / load_quantized) never
// crash on malformed input and never return a bogus table. Every failure —
// unreadable file, truncated/malformed JSON, missing or mistyped fields, a
// `kind` that names the other table type, an unsupported format version,
// or a decoded table that fails validation — is rethrown as
// gqa::ServingError with code kArtifactCorrupt, so the serving stack can
// classify artifact damage without string matching (see
// src/util/serving_error.h). The in-memory converters (pwl_from_json /
// quantized_from_json) keep their original exception types for embedding
// callers; only the artifact file boundary applies the taxonomy. The load
// paths also carry the `load` fault-injection point
// (src/util/fault_injection.h) so chaos runs can exercise artifact-load
// failures deterministically.
//
// Write semantics: the save paths publish crash-safely through
// write_file_atomic (write to temp → flush → atomic rename), so a crash —
// or an injected `cache_write` fault — mid-save never leaves a truncated
// artifact behind: readers see the previous file content or the new one,
// never a torn intermediate.
#pragma once

#include <string>

#include "pwl/pwl_table.h"
#include "pwl/quantized_table.h"

namespace gqa {

class Json;

[[nodiscard]] Json pwl_to_json(const PwlTable& table);
[[nodiscard]] PwlTable pwl_from_json(const Json& j);

[[nodiscard]] Json quantized_to_json(const QuantizedPwlTable& table);
[[nodiscard]] QuantizedPwlTable quantized_from_json(const Json& j);

/// Saves/loads a table to/from a file. Loads throw gqa::ServingError
/// (code kArtifactCorrupt) on any malformed, truncated, mislabeled, or
/// invalid artifact.
void save_pwl(const PwlTable& table, const std::string& path);
[[nodiscard]] PwlTable load_pwl(const std::string& path);

void save_quantized(const QuantizedPwlTable& table, const std::string& path);
[[nodiscard]] QuantizedPwlTable load_quantized(const std::string& path);

}  // namespace gqa
