file(REMOVE_RECURSE
  "CMakeFiles/approximator_test.dir/tests/approximator_test.cpp.o"
  "CMakeFiles/approximator_test.dir/tests/approximator_test.cpp.o.d"
  "approximator_test"
  "approximator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
