# Empty dependencies file for segformer_semseg.
# This may be replaced when dependencies are built.
