#include "pwl/quantized_table.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/strings.h"

namespace gqa {

int QuantizedPwlTable::segment_index(std::int64_t q) const {
  const auto it = std::upper_bound(p_code.begin(), p_code.end(), q);
  return static_cast<int>(it - p_code.begin());
}

double QuantizedPwlTable::slope_value(int i) const {
  return fxp_decode(k_code[static_cast<std::size_t>(i)], param_fmt);
}

double QuantizedPwlTable::intercept_value(int i) const {
  return fxp_decode(b_code[static_cast<std::size_t>(i)], param_fmt);
}

void QuantizedPwlTable::validate() const {
  GQA_EXPECTS_MSG(!k_code.empty(), "quantized table has no entries");
  GQA_EXPECTS(k_code.size() == b_code.size());
  GQA_EXPECTS(p_code.size() + 1 == k_code.size());
  GQA_EXPECTS_MSG(input.scale_is_po2(), "input scale must be a power of two");
  GQA_EXPECTS_MSG(std::is_sorted(p_code.begin(), p_code.end()),
                  "quantized breakpoints must be sorted");
  for (std::int64_t k : k_code)
    GQA_EXPECTS(fits(k, param_fmt.width, param_fmt.is_signed));
  for (std::int64_t b : b_code)
    GQA_EXPECTS(fits(b, param_fmt.width, param_fmt.is_signed));
  for (std::int64_t p : p_code)
    GQA_EXPECTS(fits(p, input.bits, input.is_signed));
}

std::string QuantizedPwlTable::to_string() const {
  std::string out = format("QuantizedPwlTable[%d entries, %s params, input %s]\n",
                           entries(), param_fmt.to_string().c_str(),
                           input.to_string().c_str());
  for (int i = 0; i < entries(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    out += format("  seg %2d k=%lld b=%lld", i,
                  static_cast<long long>(k_code[u]),
                  static_cast<long long>(b_code[u]));
    if (u < p_code.size())
      out += format("  p=%lld", static_cast<long long>(p_code[u]));
    out += '\n';
  }
  return out;
}

QuantizedPwlTable quantize_table(const PwlTable& table,
                                 const QuantParams& input, int lambda,
                                 int param_bits) {
  table.validate();
  GQA_EXPECTS_MSG(input.scale_is_po2(),
                  "quantization-aware pwl needs a power-of-two input scale");
  GQA_EXPECTS(lambda >= 0 && lambda < param_bits + 16);
  GQA_EXPECTS(param_bits >= 4 && param_bits <= 32);

  QuantizedPwlTable qt;
  qt.param_fmt = FxpFormat{param_bits, lambda, true};
  qt.input = input;
  qt.k_code.reserve(table.slopes.size());
  qt.b_code.reserve(table.intercepts.size());
  qt.p_code.reserve(table.breakpoints.size());
  for (double k : table.slopes) qt.k_code.push_back(fxp_encode(k, qt.param_fmt));
  for (double b : table.intercepts)
    qt.b_code.push_back(fxp_encode(b, qt.param_fmt));
  for (double p : table.breakpoints) qt.p_code.push_back(input.quantize(p));
  // Quantization can collapse adjacent breakpoints onto the same code; the
  // comparator chain still works (empty segments are simply never selected),
  // but the codes must stay sorted.
  std::sort(qt.p_code.begin(), qt.p_code.end());
  qt.validate();
  return qt;
}

PwlTable dequantize_table(const QuantizedPwlTable& qt) {
  qt.validate();
  PwlTable t;
  t.slopes.reserve(qt.k_code.size());
  t.intercepts.reserve(qt.b_code.size());
  t.breakpoints.reserve(qt.p_code.size());
  for (std::size_t i = 0; i < qt.k_code.size(); ++i) {
    t.slopes.push_back(fxp_decode(qt.k_code[i], qt.param_fmt));
    t.intercepts.push_back(fxp_decode(qt.b_code[i], qt.param_fmt));
  }
  // Dequantized breakpoints can tie after clipping; nudge ties apart by a
  // quarter step so PwlTable's strict ordering holds. Evaluation is
  // unaffected because no integer input falls strictly between the nudged
  // pair.
  double prev = -1e300;
  for (std::size_t i = 0; i < qt.p_code.size(); ++i) {
    double p = qt.input.dequantize(qt.p_code[i]);
    if (p <= prev) p = prev + qt.input.scale * 0.25;
    t.breakpoints.push_back(p);
    prev = p;
  }
  t.validate();
  return t;
}

}  // namespace gqa
