// Multi-range wrapper around IntPwlUnit for the wide-range operators DIV
// and RSQRT (§3.1, Table 2). The incoming value is a wide fixed-point
// intermediate (e.g. a Softmax denominator or a LayerNorm variance), not a
// quantized activation:
//
//   range detect (comparators) -> shift x by log2(S'_i) into IR
//   -> saturate to the 8-bit λ-frac pwl input bus -> IntPwlUnit
//   -> rescale the result by S'_i (DIV) or sqrt(S'_i) (RSQRT).
#pragma once

#include <cstdint>
#include <span>

#include "gqa/multirange.h"
#include "kernel/int_pwl_unit.h"

namespace gqa {

class MultiRangeUnit {
 public:
  /// `table` must use the 8-bit λ-frac fixed-point input domain
  /// (scale = 2^-λ) that Table 2 prescribes for DIV/RSQRT breakpoints.
  MultiRangeUnit(QuantizedPwlTable table, MultiRangeConfig range_config,
                 IntPwlUnitConfig unit_config = IntPwlUnitConfig{});

  /// Bit-accurate path: `code` is a fixed-point input with `in_frac`
  /// fractional bits (value = code · 2^-in_frac). Returns the dequantized
  /// approximation of f(value).
  [[nodiscard]] double eval_fxp(std::int64_t code, int in_frac) const;

  /// Encodes a real input into a 16.16 fixed-point bus and evaluates.
  [[nodiscard]] double eval_real(double x) const;

  /// Batched bit-accurate path over a shared `in_frac`, bit-identical to
  /// per-element eval_fxp; range selection and bus-alignment invariants
  /// are hoisted out of the element loop.
  void eval_fxp_batch(std::span<const std::int64_t> codes, int in_frac,
                      std::span<double> out) const;

  [[nodiscard]] const MultiRangeConfig& range_config() const { return range_; }
  [[nodiscard]] const IntPwlUnit& unit() const { return unit_; }

 private:
  IntPwlUnit unit_;
  MultiRangeConfig range_;
};

}  // namespace gqa
