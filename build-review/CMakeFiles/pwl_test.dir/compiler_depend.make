# Empty compiler generated dependencies file for pwl_test.
# This may be replaced when dependencies are built.
