// Operator-level accuracy protocol of §4.1.
//
// Scale-dependent operators (GELU, HSWISH, EXP): for each power-of-two
// scale S = 2^e the input is sampled *from the dequantized integer grid*
// x = S·q restricted to the approximation range [Rn, Rp]; the candidate
// table is quantized per Eq. 3 and evaluated through the bit-accurate
// IntPwlUnit; MSE is taken against the double-precision reference. Large S
// therefore sees both a coarse input grid and breakpoint deviation, which
// is exactly the regime the paper analyses in Fig. 2.
//
// Wide-range operators (DIV, RSQRT): input is every λ-frac fixed-point
// code inside the breakpoint interval IR (they "receive merely quantized
// input", §4.1); multirange_wide_mse additionally scores the Table 2
// multi-range path across the full sub-range union.
#pragma once

#include <vector>

#include "gqa/multirange.h"
#include "numerics/nonlinear.h"
#include "pwl/pwl_table.h"
#include "util/thread_pool.h"

namespace gqa {

struct SweepOptions {
  int lambda = 5;
  int param_bits = 8;
  int input_bits = 8;
  int exp_hi = 0;    ///< largest scale exponent (S = 2^0)
  int exp_lo = -6;   ///< smallest scale exponent (S = 2^-6)
  double range_lo = 0.0;  ///< Rn (set from the op when 0-width)
  double range_hi = 0.0;  ///< Rp
  /// Threading for sweep_scale_mse: the per-scale evaluations are
  /// independent and fan out over a pool, bit-identical to serial. A
  /// caller-owned `pool` takes precedence; otherwise `num_threads == 0`
  /// routes through the persistent process-wide pool (global_pool(), sized
  /// by GQA_NUM_THREADS; no per-sweep thread spawn when sweeping in a
  /// loop) and `num_threads > 1` keeps an explicit lane cap with a pool
  /// created for the one sweep. Defaults are serial.
  ThreadPool* pool = nullptr;
  int num_threads = 1;
};

struct ScalePoint {
  int exponent = 0;  ///< S = 2^exponent
  double mse = 0.0;
  int samples = 0;
};

struct ScaleSweepResult {
  std::vector<ScalePoint> points;
  [[nodiscard]] double avg_mse() const;
  [[nodiscard]] double max_mse() const;
  /// Fraction of total MSE mass contributed by the `n_large` largest scales
  /// (the Fig. 2(a) breakdown).
  [[nodiscard]] double large_scale_share(int n_large = 3) const;
};

/// Quantization-aware MSE at one scale S = 2^exponent.
[[nodiscard]] ScalePoint scale_mse(const PwlTable& fxp_table, Op op,
                                   int exponent, const SweepOptions& opts);

/// Sweep across S = 2^exp_hi .. 2^exp_lo (Fig. 3 protocol).
[[nodiscard]] ScaleSweepResult sweep_scale_mse(const PwlTable& fxp_table,
                                               Op op, SweepOptions opts);

/// Fixed-point-domain MSE for DIV/RSQRT over the IR interval: every λ-frac
/// code in [Rn, Rp] is evaluated bit-accurately.
[[nodiscard]] double fxp_domain_mse(const PwlTable& fxp_table, Op op,
                                    const SweepOptions& opts);

/// Wide-range MSE through the MultiRangeUnit across IR plus all finite
/// sub-ranges of `config` (relative squared error, since |f| spans decades).
[[nodiscard]] double multirange_wide_mse(const PwlTable& fxp_table,
                                         const MultiRangeConfig& config,
                                         const SweepOptions& opts);

/// Table-3-style summary for any op: scale sweep average for
/// scale-dependent ops, IR fixed-point MSE for DIV/RSQRT.
[[nodiscard]] double operator_level_mse(const PwlTable& fxp_table, Op op,
                                        const SweepOptions& opts);

/// Normalizes a series to [0, 1] by its maximum (figure rendering).
[[nodiscard]] std::vector<double> normalize_series(
    const std::vector<double>& values);

class Approximator;

/// Approximator-aware variants: at each scale the method's deployment table
/// for that grid is used (GQA-LUT w/ RM deploys per-scale champions; other
/// methods always use their single table).
[[nodiscard]] ScaleSweepResult sweep_scale_mse(const Approximator& approx,
                                               SweepOptions opts = {});
[[nodiscard]] double operator_level_mse(const Approximator& approx,
                                        SweepOptions opts = {});

}  // namespace gqa
