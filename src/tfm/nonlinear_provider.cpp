#include "tfm/nonlinear_provider.h"

#include <cmath>

#include "util/artifact_store.h"
#include "util/contracts.h"
#include "util/fault_injection.h"

namespace gqa::tfm {

NonlinearProvider NonlinearProvider::exact() { return NonlinearProvider{}; }

NonlinearProvider::NonlinearProvider(const NonlinearProvider& other)
    : method_(other.method_),
      replaced_(other.replaced_),
      fit_options_(other.fit_options_) {
  // The target is still under construction (unshared), so taking both
  // locks cannot form a cycle; the source's lock is required because its
  // approx_ map fills lazily under concurrent evaluation.
  MutexLock self(cache_mutex_);
  MutexLock source(other.cache_mutex_);
  approx_ = other.approx_;
}

// Like any assignment, replaces the target's logical state: callers must
// externally ensure no thread is evaluating on *this (references served
// from the old caches die here). Reading `other` concurrently stays safe —
// its lazily fitted tables are copied under its cache lock.
NonlinearProvider& NonlinearProvider::operator=(
    const NonlinearProvider& other) {
  if (this == &other) return *this;
  method_ = other.method_;
  replaced_ = other.replaced_;
  fit_options_ = other.fit_options_;
  std::map<Op, Approximator> fitted;
  {
    MutexLock source(other.cache_mutex_);
    fitted = other.approx_;
  }
  // memory_order_relaxed: per the contract above, no thread evaluates on
  // *this during assignment, so nothing is published here — the store only
  // has to be visible to whoever later synchronizes with this thread. The
  // cache lock below is held for the same reason the analysis wants it:
  // the overflow tier is a guarded resource even when the guard is
  // momentarily uncontended.
  warm_.store(nullptr, std::memory_order_relaxed);
  MutexLock lock(cache_mutex_);
  approx_ = std::move(fitted);
  warm_snapshots_.clear();
  unit_cache_.clear();
  multirange_cache_.clear();
  return *this;
}

NonlinearProvider NonlinearProvider::with_method(Method method,
                                                 std::set<Op> replaced,
                                                 int entries) {
  // No eager fitting: each op resolves on first use through approx_for's
  // cache-first fit-or-load, so constructing a provider is cheap and
  // warm_up_deployment() is the one place deployment pays fit latency.
  NonlinearProvider p;
  p.method_ = method;
  p.replaced_ = std::move(replaced);
  p.fit_options_.entries = entries;
  return p;
}

const Approximator& NonlinearProvider::approx_for(Op op) const {
  const auto it = approx_.find(op);
  if (it != approx_.end()) return it->second;
  GQA_EXPECTS_MSG(method_.has_value(),
                  "approx_for on the exact backend (op not replaced)");
  // Cache-first fit-or-load against the process artifact store
  // (GQA_CACHE_DIR): a hit skips the fit entirely; a miss or quarantined
  // artifact falls back to an in-process fit whose result is published
  // back, self-healing the cache. Bit-identical either way — the only
  // serving-visible difference is latency.
  const std::shared_ptr<const ArtifactStore> store = ArtifactStore::process();
  Approximator approx = Approximator::fit_cached(
      op, *method_, fit_options_, store.get(), /*input_bits=*/8,
      deployment_scale_exps());
  return approx_.emplace(op, std::move(approx)).first->second;
}

std::vector<int> NonlinearProvider::deployment_scale_exps() {
  std::vector<int> exps;
  for (int e = -14; e <= 4; ++e) exps.push_back(e);
  return exps;
}

void NonlinearProvider::warm_up_deployment() const {
  warm_up(replaced_, deployment_scale_exps());
}

void NonlinearProvider::warm_up(const std::set<Op>& ops,
                                const std::vector<int>& scale_exps) const {
  // The `warmup` chaos point models a failed pre-warm (e.g. an artifact
  // fetch timing out). Warm-up is an optimization, never a requirement, so
  // the serving layers catch this and degrade to cold (lazy) unit builds;
  // results are identical either way.
  if (fault::triggered(fault::Point::kWarmup)) {
    fault::throw_injected(fault::Point::kWarmup);
  }
  MutexLock lock(cache_mutex_);  // serializes warm-ups
  // memory_order_acquire: pairs with the release store below (and in
  // earlier warm-ups) so the snapshot's map contents are visible before
  // the pointer is dereferenced.
  const WarmTier* current = warm_.load(std::memory_order_acquire);
  // Fast path for repeated warm-ups (the engine warms per dispatch): when
  // every requested unit is already in the published tier, skip the
  // snapshot copy entirely.
  const auto missing_from = [&](const WarmTier& tier) {
    for (Op op : ops) {
      if (!replaces(op)) continue;
      if (!op_info(op).scale_dependent) {
        if (tier.multirange.find(static_cast<int>(op)) ==
            tier.multirange.end()) {
          return true;
        }
        continue;
      }
      for (int e : scale_exps) {
        if (tier.units.find(std::make_pair(static_cast<int>(op), e)) ==
            tier.units.end()) {
          return true;
        }
      }
    }
    return false;
  };
  if (current != nullptr && !missing_from(*current)) return;

  auto next = std::make_unique<WarmTier>(current ? *current : WarmTier{});
  bool grew = false;
  for (Op op : ops) {
    if (!replaces(op)) continue;
    const Approximator& approx = approx_for(op);  // cache-first fit-or-load
    if (!op_info(op).scale_dependent) {
      const int key = static_cast<int>(op);
      if (next->multirange.find(key) == next->multirange.end()) {
        next->multirange.emplace(key, approx.make_multirange_unit());
        grew = true;
      }
      continue;
    }
    for (int e : scale_exps) {
      const auto key = std::make_pair(static_cast<int>(op), e);
      if (next->units.find(key) == next->units.end()) {
        next->units.emplace(key, approx.make_unit(e));
        grew = true;
      }
    }
  }
  if (!grew) return;
  // Publish the superset snapshot; the superseded one is retired, not
  // freed, so references served from it remain valid.
  // memory_order_release: THE publishing store — it is what makes the
  // freshly built maps inside *next visible to lock-free readers that
  // acquire-load the pointer. Must never be weakened to relaxed.
  warm_.store(next.get(), std::memory_order_release);
  warm_snapshots_.push_back(std::move(next));
}

const IntPwlUnit& NonlinearProvider::unit_for(Op op, int scale_exp) const {
  const auto key = std::make_pair(static_cast<int>(op), scale_exp);
  // Lock-free tier: one acquire load resolves the newest warmed snapshot.
  if (const WarmTier* tier = warm_.load(std::memory_order_acquire)) {
    const auto warm = tier->units.find(key);
    if (warm != tier->units.end()) return warm->second;
  }
  MutexLock lock(cache_mutex_);
  const auto it = unit_cache_.find(key);
  if (it != unit_cache_.end()) return it->second;
  const Approximator& approx = approx_for(op);
  return unit_cache_.emplace(key, approx.make_unit(scale_exp)).first->second;
}

const MultiRangeUnit& NonlinearProvider::multirange_for(Op op) const {
  if (const WarmTier* tier = warm_.load(std::memory_order_acquire)) {
    const auto warm = tier->multirange.find(static_cast<int>(op));
    if (warm != tier->multirange.end()) return warm->second;
  }
  MutexLock lock(cache_mutex_);
  const auto it = multirange_cache_.find(static_cast<int>(op));
  if (it != multirange_cache_.end()) return it->second;
  const Approximator& approx = approx_for(op);
  return multirange_cache_
      .emplace(static_cast<int>(op), approx.make_multirange_unit())
      .first->second;
}

double NonlinearProvider::act_code(Op op, std::int64_t q, int scale_exp) const {
  if (!replaces(op)) {
    return eval_op(op, std::ldexp(static_cast<double>(q), scale_exp));
  }
  const IntPwlUnit& unit = unit_for(op, scale_exp);
  // Activation codes are INT8 by construction; saturate defensively to the
  // unit's input bus (hardware behaviour for e.g. max-subtracted Softmax
  // inputs that exceed the bus).
  const std::int64_t bus = saturate(q, unit.table().input.bits,
                                    unit.table().input.is_signed);
  return unit.eval_real_from_code(bus);
}

void NonlinearProvider::act_codes(Op op, std::span<const std::int64_t> q,
                                  int scale_exp,
                                  std::span<double> out) const {
  GQA_EXPECTS(q.size() == out.size());
  if (!replaces(op)) {
    const OpInfo& info = op_info(op);
    for (std::size_t i = 0; i < q.size(); ++i) {
      out[i] = info.f(std::ldexp(static_cast<double>(q[i]), scale_exp));
    }
    return;
  }
  const IntPwlUnit& unit = unit_for(op, scale_exp);  // one cache lookup
  // Defensive bus saturation, as in act_code, fused into the kernel loop.
  unit.eval_reals_from_codes_saturated(q, out);
}

void NonlinearProvider::wide_fxp_batch(Op op,
                                       std::span<const std::int64_t> codes,
                                       int frac,
                                       std::span<double> out) const {
  GQA_EXPECTS(codes.size() == out.size());
  const bool recip = op == Op::kDiv;
  for (const std::int64_t code : codes) {
    GQA_EXPECTS_MSG(code > 0, recip ? "reciprocal input must be positive"
                                    : "rsqrt input must be positive");
  }
  if (!replaces(op)) {
    for (std::size_t i = 0; i < codes.size(); ++i) {
      const double x = std::ldexp(static_cast<double>(codes[i]), -frac);
      out[i] = recip ? 1.0 / x : 1.0 / std::sqrt(x);
    }
    return;
  }
  multirange_for(op).eval_fxp_batch(codes, frac, out);
}

void NonlinearProvider::exp_codes(std::span<const std::int64_t> q,
                                  int scale_exp,
                                  std::span<double> out) const {
  act_codes(Op::kExp, q, scale_exp, out);
}

void NonlinearProvider::gelu_codes(std::span<const std::int64_t> q,
                                   int scale_exp,
                                   std::span<double> out) const {
  act_codes(Op::kGelu, q, scale_exp, out);
}

void NonlinearProvider::hswish_codes(std::span<const std::int64_t> q,
                                     int scale_exp,
                                     std::span<double> out) const {
  act_codes(Op::kHswish, q, scale_exp, out);
}

void NonlinearProvider::recip_fxp_batch(std::span<const std::int64_t> codes,
                                        int frac,
                                        std::span<double> out) const {
  wide_fxp_batch(Op::kDiv, codes, frac, out);
}

void NonlinearProvider::rsqrt_fxp_batch(std::span<const std::int64_t> codes,
                                        int frac,
                                        std::span<double> out) const {
  wide_fxp_batch(Op::kRsqrt, codes, frac, out);
}

double NonlinearProvider::exp_code(std::int64_t q, int scale_exp) const {
  return act_code(Op::kExp, q, scale_exp);
}

double NonlinearProvider::gelu_code(std::int64_t q, int scale_exp) const {
  return act_code(Op::kGelu, q, scale_exp);
}

double NonlinearProvider::hswish_code(std::int64_t q, int scale_exp) const {
  return act_code(Op::kHswish, q, scale_exp);
}

double NonlinearProvider::recip_fxp(std::int64_t code, int frac) const {
  GQA_EXPECTS_MSG(code > 0, "reciprocal input must be positive");
  if (!replaces(Op::kDiv)) {
    return 1.0 / std::ldexp(static_cast<double>(code), -frac);
  }
  return multirange_for(Op::kDiv).eval_fxp(code, frac);
}

double NonlinearProvider::rsqrt_fxp(std::int64_t code, int frac) const {
  GQA_EXPECTS_MSG(code > 0, "rsqrt input must be positive");
  if (!replaces(Op::kRsqrt)) {
    return 1.0 / std::sqrt(std::ldexp(static_cast<double>(code), -frac));
  }
  return multirange_for(Op::kRsqrt).eval_fxp(code, frac);
}

}  // namespace gqa::tfm
