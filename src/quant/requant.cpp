#include "quant/requant.h"

#include "util/contracts.h"

namespace gqa {

Requantizer::Requantizer(double in_scale, const QuantParams& out) : out_(out) {
  GQA_EXPECTS_MSG(in_scale > 0.0 && std::isfinite(in_scale),
                  "input scale must be positive finite");
  GQA_EXPECTS_MSG(out.scale > 0.0, "output scale must be positive");
  exact_ratio_ = in_scale / out.scale;
  multiplier_ = Dyadic::from_real(exact_ratio_);
}

}  // namespace gqa
