file(REMOVE_RECURSE
  "CMakeFiles/numerics_test.dir/tests/numerics_test.cpp.o"
  "CMakeFiles/numerics_test.dir/tests/numerics_test.cpp.o.d"
  "numerics_test"
  "numerics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numerics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
