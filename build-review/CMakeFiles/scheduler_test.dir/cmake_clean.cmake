file(REMOVE_RECURSE
  "CMakeFiles/scheduler_test.dir/tests/scheduler_test.cpp.o"
  "CMakeFiles/scheduler_test.dir/tests/scheduler_test.cpp.o.d"
  "scheduler_test"
  "scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
