#include "util/table_printer.h"

#include <algorithm>
#include <ostream>

#include "util/contracts.h"

namespace gqa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GQA_EXPECTS(!headers_.empty());
}

void TablePrinter::set_title(std::string title) { title_ = std::move(title); }

void TablePrinter::set_footnote(std::string footnote) {
  footnote_ = std::move(footnote);
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  GQA_EXPECTS_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
  separator_before_.push_back(false);
}

void TablePrinter::add_separator() {
  // Marks that the *next* row should be preceded by a rule.
  separator_before_.push_back(true);
  rows_.emplace_back();  // placeholder; skipped while printing
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  return widths;
}

void print_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void print_cells(std::ostream& os, const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string{};
    os << ' ' << cell;
    for (std::size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
    os << '|';
  }
  os << '\n';
}

}  // namespace

void TablePrinter::print(std::ostream& os) const {
  const auto widths = column_widths(headers_, rows_);
  if (!title_.empty()) os << title_ << '\n';
  print_rule(os, widths);
  print_cells(os, headers_, widths);
  print_rule(os, widths);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (separator_before_[r] && rows_[r].empty()) {
      print_rule(os, widths);
      continue;
    }
    print_cells(os, rows_[r], widths);
  }
  print_rule(os, widths);
  if (!footnote_.empty()) os << footnote_ << '\n';
}

std::string TablePrinter::to_markdown() const {
  std::string out;
  if (!title_.empty()) out += "### " + title_ + "\n\n";
  auto emit_row = [&out](const std::vector<std::string>& cells) {
    out += '|';
    for (const auto& c : cells) {
      out += ' ';
      out += c;
      out += " |";
    }
    out += '\n';
  };
  emit_row(headers_);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].empty()) continue;
    emit_row(rows_[r]);
  }
  if (!footnote_.empty()) out += "\n" + footnote_ + "\n";
  return out;
}

}  // namespace gqa
