file(REMOVE_RECURSE
  "CMakeFiles/pwl_test.dir/tests/pwl_test.cpp.o"
  "CMakeFiles/pwl_test.dir/tests/pwl_test.cpp.o.d"
  "pwl_test"
  "pwl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pwl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
