// Ablation: Rounding-Mutation mutate range [ma, mb] and theta_r vs the
// deployed MSE at large scales — the regime RM exists to fix (Table 1
// chooses [0,6] / [2,6] per operator and entry count).
#include "bench_util.h"
#include "gqa/gqa_lut.h"

using namespace gqa;

namespace {

/// Deployed MSE at the largest scales (S = 2^0, 2^-1) and the full average.
std::pair<double, double> deployed_profile(const GqaConfig& base,
                                           std::uint64_t seed) {
  GqaConfig config = base;
  config.ga.seed = seed;
  const GqaFitResult result = fit_gqa_lut(config);
  SweepOptions opts;
  double large = 0.0;
  double avg = 0.0;
  for (int s = 0; s <= 6; ++s) {
    const double mse =
        scale_mse(result.table_for_scale(s), config.op, -s, opts).mse;
    if (s <= 1) large += mse / 2.0;
    avg += mse / 7.0;
  }
  return {large, avg};
}

}  // namespace

int main() {
  std::printf("== Ablation: RM mutate range and theta_r (GELU, 8-entry) ==\n");
  TablePrinter table({"[ma, mb]", "theta_r", "large-S MSE", "avg MSE"});
  table.set_title("Rounding-Mutation range ablation");
  const GqaConfig base =
      GqaConfig::preset(Op::kGelu, 8, MutationKind::kRoundingMutation);
  for (auto [ma, mb] : std::vector<std::pair<int, int>>{
           {0, 2}, {0, 6}, {2, 6}, {4, 6}, {0, 10}}) {
    GqaConfig c = base;
    c.rm.ma = ma;
    c.rm.mb = mb;
    double large = 0.0, avg = 0.0;
    for (int s = 0; s < 3; ++s) {
      auto [l, a] = deployed_profile(c, 0x3A + static_cast<std::uint64_t>(s) * 97);
      large += l / 3.0;
      avg += a / 3.0;
    }
    table.add_row({format("[%d, %d]", ma, mb), format("%.2f", c.rm.theta_r),
                   sci(large), sci(avg)});
  }
  for (double theta : {0.02, 0.05, 0.10}) {
    GqaConfig c = base;
    c.rm.theta_r = theta;
    double large = 0.0, avg = 0.0;
    for (int s = 0; s < 3; ++s) {
      auto [l, a] = deployed_profile(c, 0x3A + static_cast<std::uint64_t>(s) * 97);
      large += l / 3.0;
      avg += a / 3.0;
    }
    table.add_row({format("[%d, %d]", c.rm.ma, c.rm.mb),
                   format("%.2f", theta), sci(large), sci(avg)});
  }
  bench::emit(table, "ablation_rm_range");
  return 0;
}
