# Empty dependencies file for fig2b_breakpoint_deviation.
# This may be replaced when dependencies are built.
