#include "eval/segtask.h"

#include <type_traits>
#include <utility>

#include "util/contracts.h"

namespace gqa {

namespace {

template <typename ModelT>
std::vector<int> labels_at(const LabeledScene& scene, int stride) {
  return downsample_labels(scene.labels, scene.size, scene.size / stride,
                           scene.size / stride);
}

}  // namespace

template <typename ModelT>
SegTask<ModelT>::SegTask(ModelT model, int label_stride,
                         const SegTaskOptions& options)
    : model_(std::move(model)), options_(options), label_stride_(label_stride) {
  GQA_EXPECTS(options.train_scenes >= 1 && options.eval_scenes >= 1);
  GQA_EXPECTS(options.calib_scenes >= 1 &&
              options.calib_scenes <= options.train_scenes);
  GQA_EXPECTS(options.num_threads >= 0);
  if (options.scene_parallel) {
    EngineOptions engine_options;
    engine_options.num_threads = options.num_threads;
    engine_ = std::make_unique<InferenceEngine>(engine_options);
  } else if (options.num_threads == 0) {
    pool_ = &global_pool();  // persistent: no per-task spawn/join
  } else if (options.num_threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(options.num_threads);
    pool_ = owned_pool_.get();
  }

  const std::vector<LabeledScene> train =
      make_scene_set(options.scene, options.train_scenes, options.train_seed);
  std::vector<tfm::Tensor> images;
  std::vector<std::vector<int>> labels;
  images.reserve(train.size());
  for (const LabeledScene& s : train) {
    images.push_back(s.image);
    labels.push_back(labels_at<ModelT>(s, label_stride_));
  }
  model_.train_classifier(images, labels, options.probe_epochs,
                          options.probe_lr);
  for (int i = 0; i < options.calib_scenes; ++i) {
    model_.calibrate(train[static_cast<std::size_t>(i)].image);
  }
  model_.freeze();

  for (LabeledScene& s : make_scene_set(options.scene, options.eval_scenes,
                                        options.eval_seed)) {
    eval_labels_.push_back(labels_at<ModelT>(s, label_stride_));
    eval_images_.push_back(std::move(s.image));
  }
}

// The harness calls ModelT::argmax_labels, so every served model must
// expose its own statics — a regression once had the EfficientViT task
// silently borrowing SegformerB0Like's.
template <typename ModelT>
constexpr bool kHasOwnArgmax =
    std::is_same_v<decltype(ModelT::argmax_labels(
                       std::declval<const tfm::QTensor&>())),
                   std::vector<int>> &&
    std::is_same_v<decltype(ModelT::argmax_labels(
                       std::declval<const tfm::Tensor&>())),
                   std::vector<int>>;
static_assert(kHasOwnArgmax<tfm::SegformerB0Like> &&
                  kHasOwnArgmax<tfm::EfficientViTB0Like>,
              "every SegTask model must expose its own argmax_labels statics");

template <typename ModelT>
double SegTask<ModelT>::miou_fp() const {
  ConfusionMatrix cm(options_.scene.num_classes);
  if (engine_) {
    const std::vector<std::vector<int>> predicted =
        engine_->labels_fp(model_, eval_images_);
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      cm.add(eval_labels_[i], predicted[i]);
    }
    return cm.mean_iou();
  }
  for (std::size_t i = 0; i < eval_images_.size(); ++i) {
    cm.add(eval_labels_[i],
           ModelT::argmax_labels(model_.forward_fp(eval_images_[i], pool_)));
  }
  return cm.mean_iou();
}

template <typename ModelT>
double SegTask<ModelT>::miou_int(const tfm::NonlinearProvider& nl) const {
  ConfusionMatrix cm(options_.scene.num_classes);
  if (engine_) {
    // The engine pre-warms the provider before dispatch.
    const std::vector<std::vector<int>> predicted =
        engine_->labels_int(model_, eval_images_, nl);
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      cm.add(eval_labels_[i], predicted[i]);
    }
    return cm.mean_iou();
  }
  // Pre-build the pwl units before the threaded forwards so the hot paths
  // hit the lock-free warmed tier (misses stay correct, just slower).
  nl.warm_up({Op::kExp, Op::kGelu, Op::kHswish, Op::kDiv, Op::kRsqrt},
             tfm::NonlinearProvider::deployment_scale_exps());
  for (std::size_t i = 0; i < eval_images_.size(); ++i) {
    cm.add(eval_labels_[i],
           ModelT::argmax_labels(
               model_.forward_int(eval_images_[i], nl, pool_)));
  }
  return cm.mean_iou();
}

template class SegTask<tfm::SegformerB0Like>;
template class SegTask<tfm::EfficientViTB0Like>;

SegformerTask make_segformer_task(const SegTaskOptions& options) {
  tfm::SegformerConfig config;
  config.image_size = options.scene.size;
  config.num_classes = options.scene.num_classes;
  return SegformerTask(tfm::SegformerB0Like(config), 4, options);
}

EfficientViTTask make_efficientvit_task(const SegTaskOptions& options) {
  tfm::EfficientViTConfig config;
  config.image_size = options.scene.size;
  config.num_classes = options.scene.num_classes;
  return EfficientViTTask(tfm::EfficientViTB0Like(config), 8, options);
}

std::vector<ReplacementRow> segformer_rows() {
  return {
      {"EXP only", {Op::kExp}},
      {"GELU only", {Op::kGelu}},
      {"DIV only", {Op::kDiv}},
      {"RSQRT only", {Op::kRsqrt}},
      {"Altogether", {Op::kExp, Op::kGelu, Op::kDiv, Op::kRsqrt}},
  };
}

std::vector<ReplacementRow> efficientvit_rows() {
  return {
      {"HSWISH only", {Op::kHswish}},
      {"DIV only", {Op::kDiv}},
      {"Altogether", {Op::kHswish, Op::kDiv}},
  };
}

}  // namespace gqa
