# Empty compiler generated dependencies file for server_test.
# This may be replaced when dependencies are built.
