file(REMOVE_RECURSE
  "CMakeFiles/fig2b_breakpoint_deviation.dir/bench/fig2b_breakpoint_deviation.cpp.o"
  "CMakeFiles/fig2b_breakpoint_deviation.dir/bench/fig2b_breakpoint_deviation.cpp.o.d"
  "bench/fig2b_breakpoint_deviation"
  "bench/fig2b_breakpoint_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_breakpoint_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
