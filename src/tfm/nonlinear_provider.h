// Pluggable non-linearity backend for the quantized Transformer modules.
//
// The "None" baseline of Tables 4/5 computes every non-linear op exactly on
// dequantized values; each replacement row swaps one (or all) op(s) for the
// bit-accurate pwl kernels produced by a fitting method. The provider owns
// the fitted approximators and a cache of per-scale hardware units.
//
// Concurrency: all evaluation methods — and warm_up() itself — are safe to
// call from many threads on one provider (the threaded tfm forward passes
// do exactly that). Lazy unit construction is mutex-guarded; warm_up()
// publishes immutable snapshot tiers read lock-free, so warmed hot paths
// never touch the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "core/approximator.h"
#include "util/thread_annotations.h"

namespace gqa::tfm {

class NonlinearProvider {
 public:
  /// Exact reference backend (the fine-tuning baseline "None").
  [[nodiscard]] static NonlinearProvider exact();

  /// pwl backend: `replaced` ops go through `method`-fitted kernels, all
  /// other ops stay exact — reproducing the per-row replacements of
  /// Tables 4/5. `entries` matches the paper's 8-entry deployment.
  ///
  /// Construction is cheap: fitting is deferred to first use (warm_up or a
  /// lazy cache fill), where it resolves cache-first against the process
  /// artifact store (GQA_CACHE_DIR, util/artifact_store.h) and falls back
  /// to an in-process fit — bit-identical either way.
  [[nodiscard]] static NonlinearProvider with_method(Method method,
                                                    std::set<Op> replaced,
                                                    int entries = 8);

  [[nodiscard]] bool replaces(Op op) const { return replaced_.count(op) > 0; }

  /// Every op this provider serves through fitted kernels — the union the
  /// serving layer warms when one provider backs several co-served models.
  [[nodiscard]] const std::set<Op>& replaced_ops() const { return replaced_; }

  /// Pre-builds the hardware units for `ops` (activation ops at every scale
  /// in `scale_exps`; DIV/RSQRT ignore the exponents) into an immutable
  /// warmed tier that concurrent evaluation reads without locking. Misses
  /// outside the warmed set stay correct through a mutex-guarded overflow
  /// cache, so warm_up is an optimization, never a requirement. Safe to
  /// call at any time, including while other threads evaluate (the new
  /// tier is published atomically). Ops the provider does not replace are
  /// skipped. Carries the `warmup` fault-injection point
  /// (util/fault_injection.h): under an armed chaos spec this may throw a
  /// transient ServingError, which the serving layers catch to degrade to
  /// cold lazy unit builds — results are identical either way.
  void warm_up(const std::set<Op>& ops,
               const std::vector<int>& scale_exps) const
      GQA_EXCLUDES(cache_mutex_);

  /// The deployment scale-exponent window the frozen tfm models produce
  /// (po2 activation scales all land in it) — the canonical `scale_exps`
  /// argument for warm_up before an end-to-end forward.
  [[nodiscard]] static std::vector<int> deployment_scale_exps();

  /// warm_up(replaced_ops(), deployment_scale_exps()): one call warms every
  /// unit any co-served model can request, so the engine and the async
  /// server share a single pre-warmed tier per provider regardless of which
  /// model op-sets it backs. Copy-free no-op when already fully warm.
  ///
  /// Cache-first: fitted params for ops not yet resolved are loaded from
  /// the process artifact store when GQA_CACHE_DIR is set; on a miss or a
  /// quarantined artifact the op is fitted in-process and the fresh params
  /// are published back (self-healing cache). The only serving-visible
  /// difference between a hit, a miss, and a corrupted cache is latency.
  void warm_up_deployment() const;

  /// exp(S·q) for an integer code with S = 2^scale_exp (Softmax numerator).
  [[nodiscard]] double exp_code(std::int64_t q, int scale_exp) const;

  /// GELU(S·q) / HSWISH(S·q) for integer activation codes.
  [[nodiscard]] double gelu_code(std::int64_t q, int scale_exp) const;
  [[nodiscard]] double hswish_code(std::int64_t q, int scale_exp) const;

  /// 1/x for a fixed-point value code·2^-frac (Softmax denominator,
  /// linear-attention normalizer). Uses the Table 2 multi-range unit.
  [[nodiscard]] double recip_fxp(std::int64_t code, int frac) const;

  /// 1/sqrt(x) for a fixed-point value code·2^-frac (LayerNorm).
  [[nodiscard]] double rsqrt_fxp(std::int64_t code, int frac) const;

  /// Batched activation paths, bit-identical to the per-element calls:
  /// the unit-cache lookup happens once per span instead of once per code,
  /// and the element loop runs through IntPwlUnit's dense segment table.
  void exp_codes(std::span<const std::int64_t> q, int scale_exp,
                 std::span<double> out) const;
  void gelu_codes(std::span<const std::int64_t> q, int scale_exp,
                  std::span<double> out) const;
  void hswish_codes(std::span<const std::int64_t> q, int scale_exp,
                    std::span<double> out) const;

  /// Batched wide-range paths (shared `frac`), bit-identical to the
  /// per-element recip_fxp / rsqrt_fxp.
  void recip_fxp_batch(std::span<const std::int64_t> codes, int frac,
                       std::span<double> out) const;
  void rsqrt_fxp_batch(std::span<const std::int64_t> codes, int frac,
                       std::span<double> out) const;

  /// Copies take the source's fitted tables (under the source's cache
  /// lock — fits fill in lazily, so approx_ is guarded state) but start
  /// with cold unit caches: caches are deployment artifacts, and not
  /// copying them keeps copying safe even while other threads evaluate on
  /// the source.
  NonlinearProvider(const NonlinearProvider& other);
  NonlinearProvider& operator=(const NonlinearProvider& other);

 private:
  NonlinearProvider() = default;

  [[nodiscard]] const IntPwlUnit& unit_for(Op op, int scale_exp) const
      GQA_EXCLUDES(cache_mutex_);
  [[nodiscard]] const MultiRangeUnit& multirange_for(Op op) const
      GQA_EXCLUDES(cache_mutex_);
  /// Fit-or-load for one op (cache-first, see warm_up_deployment), filling
  /// approx_ on first request. Caller holds cache_mutex_, which serializes
  /// the fit and makes the returned reference stable for the provider's
  /// lifetime (map entries are never erased while locked-in).
  [[nodiscard]] const Approximator& approx_for(Op op) const
      GQA_REQUIRES(cache_mutex_);
  [[nodiscard]] double act_code(Op op, std::int64_t q, int scale_exp) const;
  void act_codes(Op op, std::span<const std::int64_t> q, int scale_exp,
                 std::span<double> out) const;
  void wide_fxp_batch(Op op, std::span<const std::int64_t> codes, int frac,
                      std::span<double> out) const;

  /// One immutable warmed-cache snapshot: readers resolve it with a single
  /// acquire load and never lock. warm_up() builds the next snapshot as a
  /// superset copy and publishes it atomically; superseded snapshots are
  /// retired (kept alive) so references handed out earlier stay valid.
  struct WarmTier {
    std::map<std::pair<int, int>, IntPwlUnit> units;
    std::map<int, MultiRangeUnit> multirange;
  };

  std::optional<Method> method_;  ///< nullopt = exact backend
  std::set<Op> replaced_;
  FitOptions fit_options_;  ///< full fit config — part of the cache key
  // Unit caches are deployment artifacts, not logical state. Two tiers:
  // the warmed tier (atomically published immutable snapshots, lock-free
  // reads) and the overflow tier for lazy fills on misses, guarded by
  // cache_mutex_. Entries are never erased and snapshots never freed
  // before the provider, so returned references stay valid for the
  // provider's lifetime.
  mutable Mutex cache_mutex_;
  /// Not guarded: the lock-free read tier. Readers resolve the newest
  /// snapshot with one acquire load; warm_up() publishes a superset copy
  /// with a release store while holding cache_mutex_ (writers serialize,
  /// readers never lock). The pointee is immutable once published.
  mutable std::atomic<const WarmTier*> warm_{nullptr};
  mutable std::vector<std::unique_ptr<const WarmTier>> warm_snapshots_
      GQA_GUARDED_BY(cache_mutex_);
  mutable std::map<std::pair<int, int>, IntPwlUnit> unit_cache_
      GQA_GUARDED_BY(cache_mutex_);
  mutable std::map<int, MultiRangeUnit> multirange_cache_
      GQA_GUARDED_BY(cache_mutex_);
  /// Fitted approximators, resolved lazily by approx_for (cache-first
  /// fit-or-load). Guarded because any evaluating thread may be the one
  /// that faults in the fit; entries are never erased, so references
  /// handed out under the lock stay valid for the provider's lifetime.
  mutable std::map<Op, Approximator> approx_ GQA_GUARDED_BY(cache_mutex_);
};

}  // namespace gqa::tfm
