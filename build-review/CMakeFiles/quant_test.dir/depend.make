# Empty dependencies file for quant_test.
# This may be replaced when dependencies are built.
