// Conformance harness for streaming sessions (src/eval/server.h
// StreamSession). The randomized trials draw stream count, drop policies,
// ring capacities, frame deadlines, and push cadence from seeded Rng
// streams across lane counts {1, 2, 4, 8} and check the invariants that
// must hold for EVERY draw: each pushed frame resolves exactly once
// (served OR dropped with its policy's classified ServingError), frames
// are delivered in frame order per stream regardless of internal
// completion order, served frames are bit-identical to a serial forward
// of that frame, and Stats agrees with the ledger. Deterministic
// companions pin down each drop policy's state machine with a gated
// backend, the in-order delivery of a drop parked behind an in-flight
// frame, kCancelPending close semantics, and stream/submit coexistence on
// one model. The suite runs in the TSan CI job (label: concurrency) at
// two GQA_TEST_THREADS widths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "eval/server.h"
#include "tfm/nonlinear_provider.h"
#include "util/contracts.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/serving_error.h"

namespace gqa {
namespace {

/// Cheap deterministic stand-in backend (the scheduler_test idiom): a
/// salted checksum of the frame, so per-frame serial references are
/// trivial to recompute. The sleep makes service slower than a tight push
/// loop, so small rings genuinely fill and the drop policies really fire.
tfm::QTensor toy_forward(const tfm::Tensor& image, int salt) {
  tfm::QTensor out(tfm::Shape{1, 4}, QuantParams{1.0, 16, true});
  double sum = 0.0;
  for (const float v : image.data()) sum += static_cast<double>(v);
  const auto base = static_cast<std::int32_t>(
      static_cast<std::int64_t>(sum * 1024.0) & 0x7FFF);
  for (int i = 0; i < 4; ++i) {
    out.data()[static_cast<std::size_t>(i)] = base + salt * (i + 1);
  }
  return out;
}

/// Distinct deterministic frames: every frame id hashes to its own pixel
/// pattern, so bit-identity checks distinguish "served the right frame"
/// from "served any frame".
tfm::Tensor frame_image(std::uint64_t id) {
  tfm::Tensor image(tfm::Shape{1, 4, 4});
  Rng rng(0xF4A3E | (id << 8));
  for (float& v : image.data()) {
    v = static_cast<float>(rng.uniform_int(-64, 64)) / 16.0F;
  }
  return image;
}

/// Mutex-guarded per-stream delivery ledger. The callback records every
/// delivery in invocation order; the pusher records every issued ticket in
/// push order. Exactly-once + in-order then reduces to: the two sequences
/// are equal, and no ticket is recorded twice.
struct StreamLedger {
  std::mutex mutex;
  std::vector<Server::Ticket> pushed;     ///< by the one pusher, push order
  std::vector<Server::Ticket> delivered;  ///< by callbacks, delivery order
  std::map<Server::Ticket, int> deliveries;
  std::map<Server::Ticket, std::vector<std::int32_t>> results;
  std::map<Server::Ticket, ServingErrorCode> drops;

  void record(Server::Ticket ticket, const tfm::QTensor& result,
              const std::exception_ptr& error) {
    std::lock_guard<std::mutex> lock(mutex);
    delivered.push_back(ticket);
    ++deliveries[ticket];
    if (error == nullptr) {
      results[ticket] = result.data();
    } else {
      drops[ticket] = serving_error_code(error);
    }
  }

  [[nodiscard]] std::uint64_t drop_count(ServingErrorCode code) {
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t n = 0;
    for (const auto& [ticket, c] : drops) n += (c == code) ? 1 : 0;
    return n;
  }
};

struct PlannedStream {
  int model = 0;
  DropPolicy policy = DropPolicy::kDropOldest;
  std::size_t ring_capacity = 1;
  std::chrono::milliseconds deadline{0};
  int frames = 0;
  std::uint64_t push_seed = 0;
};

TEST(StreamConformance, RandomizedStreamsExactlyOnceInOrderBitIdentical) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  const int kSalts[] = {7, 11};
  const DropPolicy kPolicies[] = {DropPolicy::kDropOldest,
                                  DropPolicy::kDropLate, DropPolicy::kCoalesce};
  const int kLaneChoices[] = {1, 2, 4, 8};
  const std::uint64_t kSeeds[] = {0x57AE40, 0x57AE41, 0x57AE42, 0x57AE43};
  const int stream_threads =
      std::max(2, static_cast<int>(env_int("GQA_TEST_THREADS", 4)));

  int trial = 0;
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    ServerOptions options;
    options.num_threads = kLaneChoices[trial % 4];
    options.warm_provider = false;
    Server server(nl, options);
    for (const int salt : kSalts) {
      (void)server.register_forward(
          "toy" + std::to_string(salt),
          [salt](const tfm::Tensor& image, tfm::Workspace*) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            return toy_forward(image, salt);
          });
    }

    // One stream per client thread, each with its own policy/capacity/
    // deadline draw and its own seeded push cadence.
    std::vector<PlannedStream> plan;
    for (int s = 0; s < stream_threads; ++s) {
      PlannedStream p;
      p.model = static_cast<int>(rng.index(2));
      p.policy = kPolicies[rng.index(3)];
      p.ring_capacity = static_cast<std::size_t>(rng.uniform_int(1, 4));
      // Half the streams carry a tight deadline so kDropLate expiry and
      // late-start misses actually occur; the ledger does not care which
      // frames they hit.
      p.deadline = std::chrono::milliseconds(
          rng.bernoulli(0.5) ? rng.uniform_int(1, 4) : 0);
      p.frames = static_cast<int>(rng.uniform_int(12, 20));
      p.push_seed = rng.fork(static_cast<std::uint64_t>(s)).seed();
      plan.push_back(p);
    }

    std::vector<std::unique_ptr<StreamLedger>> ledgers;
    std::vector<Server::StreamSession> sessions;
    std::vector<std::map<Server::Ticket, std::uint64_t>> frame_of(
        plan.size());  // ticket -> frame id, filled by the one pusher
    for (std::size_t s = 0; s < plan.size(); ++s) {
      ledgers.push_back(std::make_unique<StreamLedger>());
      StreamLedger* ledger = ledgers.back().get();
      StreamOptions so;
      so.drop_policy = plan[s].policy;
      so.ring_capacity = plan[s].ring_capacity;
      so.deadline = plan[s].deadline;
      sessions.push_back(server.open_stream(
          plan[s].model, so,
          [ledger](Server::Ticket ticket, tfm::QTensor result,
                   std::exception_ptr error) {
            ledger->record(ticket, result, error);
          }));
    }
    EXPECT_EQ(server.stats().streams_open, plan.size());

    std::vector<std::thread> pushers;
    for (std::size_t s = 0; s < plan.size(); ++s) {
      pushers.emplace_back([&, s] {
        Rng push_rng(plan[s].push_seed);
        for (int f = 0; f < plan[s].frames; ++f) {
          const std::uint64_t id = (s << 16) | static_cast<std::uint64_t>(f);
          const std::optional<Server::Ticket> ticket =
              sessions[s].push_frame(frame_image(id));
          ASSERT_TRUE(ticket.has_value());  // nobody is closing yet
          {
            std::lock_guard<std::mutex> lock(ledgers[s]->mutex);
            ledgers[s]->pushed.push_back(*ticket);
          }
          frame_of[s][*ticket] = id;
          if (push_rng.bernoulli(0.5)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(push_rng.uniform_int(0, 400)));
          }
        }
        sessions[s].close();  // blocks until the last delivery returned
      });
    }
    for (std::thread& p : pushers) p.join();

    // Per stream: delivered == pushed (same tickets, same order — that IS
    // exactly-once + in-frame-order), served frames bit-identical to the
    // serial forward of exactly their frame, drop codes legal for the
    // policy.
    std::uint64_t total_frames = 0;
    std::uint64_t superseded_noncoalesce = 0;
    std::uint64_t superseded_coalesce = 0;
    std::uint64_t expired = 0;
    for (std::size_t s = 0; s < plan.size(); ++s) {
      StreamLedger& ledger = *ledgers[s];
      std::lock_guard<std::mutex> lock(ledger.mutex);
      ASSERT_EQ(ledger.delivered, ledger.pushed)
          << "seed=" << seed << " stream=" << s;
      total_frames += ledger.pushed.size();
      for (const auto& [ticket, count] : ledger.deliveries) {
        EXPECT_EQ(count, 1) << "seed=" << seed << " ticket=" << ticket;
        EXPECT_EQ(server.poll(ticket), TicketStatus::kConsumed);
      }
      for (const auto& [ticket, data] : ledger.results) {
        EXPECT_EQ(data,
                  toy_forward(frame_image(frame_of[s].at(ticket)),
                              kSalts[static_cast<std::size_t>(plan[s].model)])
                      .data())
            << "seed=" << seed << " ticket=" << ticket;
      }
      for (const auto& [ticket, code] : ledger.drops) {
        if (code == ServingErrorCode::kFrameSuperseded) {
          (plan[s].policy == DropPolicy::kCoalesce ? superseded_coalesce
                                                   : superseded_noncoalesce) +=
              1;
        } else if (code == ServingErrorCode::kDeadlineExpired) {
          // Only kDropLate expires frames, and only deadlined streams can.
          EXPECT_EQ(plan[s].policy, DropPolicy::kDropLate);
          EXPECT_GT(plan[s].deadline.count(), 0);
          ++expired;
        } else {
          ADD_FAILURE() << "seed=" << seed << " stream=" << s
                        << " unexpected drop code "
                        << serving_error_name(code);
        }
      }
    }

    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.submitted, total_frames);
    EXPECT_EQ(stats.completed, total_frames);  // drops count as resolved
    EXPECT_EQ(stats.frames_dropped, superseded_noncoalesce);
    EXPECT_EQ(stats.frames_coalesced, superseded_coalesce);
    EXPECT_EQ(stats.deadline_expired, expired);
    // Misses = expiries + frames that started late (served anyway, never
    // killed) — the latter is timing-dependent, so only a lower bound is
    // deterministic.
    EXPECT_GE(stats.deadline_misses, expired);
    EXPECT_EQ(stats.streams_open, 0U);
    EXPECT_EQ(stats.callback_errors, 0U);
    ++trial;
  }
}

/// Deterministic drop-policy fixture: one lane, the stream's first frame
/// gated inside the backend so pushes pile into the ring while exactly one
/// frame is in flight. Releasing the gate lets the single lane apply the
/// policy at its next pick, making the resolution order fully observable.
struct GatedStreamRun {
  std::vector<Server::Ticket> tickets;  ///< push order
  StreamLedger ledger;
  Server::Stats stats;
};

void run_gated_stream(GatedStreamRun& run, DropPolicy policy,
                      std::size_t ring_capacity,
                      std::chrono::milliseconds deadline, int pending_frames,
                      std::chrono::milliseconds stall) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  std::atomic<int> entered{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());

  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  Server server(nl, options);
  const int model = server.register_forward(
      "gated", [&](const tfm::Tensor& image, tfm::Workspace*) {
        if (++entered == 1) gate.wait();  // only the first frame stalls
        return toy_forward(image, 5);
      });

  StreamOptions so;
  so.drop_policy = policy;
  so.ring_capacity = ring_capacity;
  so.deadline = deadline;
  Server::StreamSession stream = server.open_stream(
      model, so,
      [&run](Server::Ticket ticket, tfm::QTensor result,
             std::exception_ptr error) {
        run.ledger.record(ticket, result, error);
      });

  run.tickets.push_back(*stream.push_frame(frame_image(0)));
  while (entered.load() == 0) std::this_thread::yield();
  for (int f = 1; f <= pending_frames; ++f) {
    run.tickets.push_back(
        *stream.push_frame(frame_image(static_cast<std::uint64_t>(f))));
  }
  if (stall.count() > 0) std::this_thread::sleep_for(stall);
  release.set_value();
  stream.close();  // kFinishAdmitted: serves what the policy kept
  run.stats = server.stats();
}

TEST(StreamDropPolicy, DropOldestDisplacesTheOldestPendingFrame) {
  // Ring capacity 2 with 3 pending pushes: frame 1 is displaced by frame
  // 3's push; frames 2 and 3 are served. The displacement resolves at push
  // time but must still deliver in frame order, parked behind in-flight
  // frame 0.
  GatedStreamRun run;
  run_gated_stream(run, DropPolicy::kDropOldest, /*ring_capacity=*/2,
                   std::chrono::milliseconds(0), /*pending_frames=*/3,
                   std::chrono::milliseconds(0));
  std::lock_guard<std::mutex> lock(run.ledger.mutex);
  ASSERT_EQ(run.ledger.delivered, run.tickets);
  EXPECT_EQ(run.ledger.drops.size(), 1U);
  EXPECT_EQ(run.ledger.drops.at(run.tickets[1]),
            ServingErrorCode::kFrameSuperseded);
  for (const std::size_t served : {std::size_t{0}, std::size_t{2},
                                   std::size_t{3}}) {
    EXPECT_EQ(run.ledger.results.at(run.tickets[served]),
              toy_forward(frame_image(served), 5).data());
  }
  EXPECT_EQ(run.stats.frames_dropped, 1U);
  EXPECT_EQ(run.stats.frames_coalesced, 0U);
  EXPECT_EQ(run.stats.deadline_misses, 0U);
  EXPECT_EQ(run.stats.streams_open, 0U);
}

TEST(StreamDropPolicy, DropLateExpiresPendingFramesThatMissTheirDeadline) {
  // Frames 1 and 2 sit in the ring past their deadline while frame 0 is
  // gated; on release the lane expires both before starting anything — an
  // expired frame NEVER runs — and each resolves kDeadlineExpired in frame
  // order. The deadline is generous relative to the push->pick latency of
  // frame 0 (which must start, or the gate never opens) and small relative
  // to the stall.
  GatedStreamRun run;
  run_gated_stream(run, DropPolicy::kDropLate,
                   /*ring_capacity=*/8, std::chrono::milliseconds(100),
                   /*pending_frames=*/2,
                   /*stall=*/std::chrono::milliseconds(250));
  std::lock_guard<std::mutex> lock(run.ledger.mutex);
  ASSERT_EQ(run.ledger.delivered, run.tickets);
  EXPECT_EQ(run.ledger.results.size(), 1U);  // only frame 0 ran
  EXPECT_EQ(run.ledger.results.at(run.tickets[0]),
            toy_forward(frame_image(0), 5).data());
  EXPECT_EQ(run.ledger.drops.at(run.tickets[1]),
            ServingErrorCode::kDeadlineExpired);
  EXPECT_EQ(run.ledger.drops.at(run.tickets[2]),
            ServingErrorCode::kDeadlineExpired);
  EXPECT_EQ(run.stats.deadline_expired, 2U);
  EXPECT_EQ(run.stats.deadline_misses, 2U);
  EXPECT_EQ(run.stats.frames_dropped, 0U);
  EXPECT_EQ(run.stats.streams_open, 0U);
}

TEST(StreamDropPolicy, CoalesceServesOnlyTheNewestPendingFrame) {
  // Three pending frames under kCoalesce: when the lane comes back for the
  // stream, frames 1 and 2 are superseded and only frame 3 (the newest)
  // runs — minimum staleness, and the supersessions still deliver in
  // frame order.
  GatedStreamRun run;
  run_gated_stream(run, DropPolicy::kCoalesce, /*ring_capacity=*/8,
                   std::chrono::milliseconds(0), /*pending_frames=*/3,
                   std::chrono::milliseconds(0));
  std::lock_guard<std::mutex> lock(run.ledger.mutex);
  ASSERT_EQ(run.ledger.delivered, run.tickets);
  EXPECT_EQ(run.ledger.drops.at(run.tickets[1]),
            ServingErrorCode::kFrameSuperseded);
  EXPECT_EQ(run.ledger.drops.at(run.tickets[2]),
            ServingErrorCode::kFrameSuperseded);
  EXPECT_EQ(run.ledger.results.at(run.tickets[3]),
            toy_forward(frame_image(3), 5).data());
  EXPECT_EQ(run.stats.frames_coalesced, 2U);
  EXPECT_EQ(run.stats.frames_dropped, 0U);
  EXPECT_EQ(run.stats.streams_open, 0U);
}

TEST(StreamClose, CancelPendingFailsUndeliveredFramesButFinishesStarted) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  std::atomic<int> entered{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());

  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  Server server(nl, options);
  const int model = server.register_forward(
      "gated", [&](const tfm::Tensor& image, tfm::Workspace*) {
        if (++entered == 1) gate.wait();
        return toy_forward(image, 5);
      });

  StreamLedger ledger;
  StreamOptions so;
  so.ring_capacity = 8;
  so.drain_policy = DrainPolicy::kCancelPending;
  Server::StreamSession stream = server.open_stream(
      model, so,
      [&ledger](Server::Ticket ticket, tfm::QTensor result,
                std::exception_ptr error) {
        ledger.record(ticket, result, error);
      });

  std::vector<Server::Ticket> tickets;
  tickets.push_back(*stream.push_frame(frame_image(0)));
  while (entered.load() == 0) std::this_thread::yield();
  tickets.push_back(*stream.push_frame(frame_image(1)));
  tickets.push_back(*stream.push_frame(frame_image(2)));

  // close() blocks until the last delivery, which needs the gated lane —
  // so it must run on its own thread. Admission is refused the moment the
  // stream is closing; probe until we observe that so the cancel sweep has
  // provably happened (any probe admitted before it just joins the ledger).
  std::thread closer([&] { stream.close(); });
  std::uint64_t probe_id = 100;
  for (;;) {
    const std::optional<Server::Ticket> t =
        stream.push_frame(frame_image(probe_id));
    if (!t.has_value()) break;
    tickets.push_back(*t);
    ++probe_id;
    std::this_thread::yield();
  }
  release.set_value();
  closer.join();
  stream.close();  // idempotent after the fact

  std::lock_guard<std::mutex> lock(ledger.mutex);
  // In-order exactly-once still holds across the cancellation: frame 0
  // (already on the lane) finished normally; every other admitted frame
  // was cancelled, never served.
  ASSERT_EQ(ledger.delivered, tickets);
  EXPECT_EQ(ledger.results.size(), 1U);
  EXPECT_EQ(ledger.results.at(tickets[0]),
            toy_forward(frame_image(0), 5).data());
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_EQ(ledger.drops.at(tickets[i]), ServingErrorCode::kCancelled);
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.streams_open, 0U);
}

TEST(StreamCoexistence, StreamsAndPlainSubmitsShareAModel) {
  // The WRR treats a stream as one more source of its model: plain
  // submits and stream frames on the same model all resolve bit-identically
  // with nobody starved, and submit tickets stay waitable.
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 2;
  options.warm_provider = false;
  Server server(nl, options);
  const int model = server.register_forward(
      "toy", [](const tfm::Tensor& image, tfm::Workspace*) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return toy_forward(image, 9);
      });

  StreamLedger ledger;
  StreamOptions so;
  so.ring_capacity = 16;  // roomy: this test is about fairness, not drops
  Server::StreamSession stream = server.open_stream(
      model, so,
      [&ledger](Server::Ticket ticket, tfm::QTensor result,
                std::exception_ptr error) {
        ledger.record(ticket, result, error);
      });
  std::vector<Server::Ticket> frames;
  std::vector<Server::Ticket> submits;
  for (std::uint64_t i = 0; i < 12; ++i) {
    frames.push_back(*stream.push_frame(frame_image(i)));
    submits.push_back(server.submit(model, frame_image(100 + i)));
  }
  for (std::size_t i = 0; i < submits.size(); ++i) {
    EXPECT_EQ(server.wait(submits[i]).data(),
              toy_forward(frame_image(100 + i), 9).data());
  }
  stream.close();
  std::lock_guard<std::mutex> lock(ledger.mutex);
  ASSERT_EQ(ledger.delivered, frames);
  EXPECT_TRUE(ledger.drops.empty());  // the ring never overflowed
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(ledger.results.at(frames[i]),
              toy_forward(frame_image(i), 9).data());
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 24U);
  EXPECT_EQ(stats.completed, 24U);
  EXPECT_EQ(stats.streams_open, 0U);
}

}  // namespace
}  // namespace gqa
