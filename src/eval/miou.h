// Mean Intersection-over-Union — the standard semantic-segmentation metric
// used by Tables 4/5 (§4.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gqa {

/// Streaming confusion matrix over `num_classes` labels.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Adds one (ground truth, prediction) pair.
  void add(int truth, int prediction);
  /// Adds aligned label maps.
  void add(std::span<const int> truth, std::span<const int> prediction);

  [[nodiscard]] int num_classes() const { return classes_; }
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// IoU of one class; returns -1 when the class never appears (ignored by
  /// mean_iou, matching standard practice).
  [[nodiscard]] double iou(int cls) const;

  /// Mean IoU over classes with non-empty union, in [0, 1].
  [[nodiscard]] double mean_iou() const;

  /// Overall pixel accuracy.
  [[nodiscard]] double pixel_accuracy() const;

 private:
  int classes_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> counts_;  ///< counts_[truth * classes + pred]
};

}  // namespace gqa
