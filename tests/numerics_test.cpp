// Tests for the numerics substrate: rounding, saturation, fixed-point
// formats, dyadic multipliers, and the reference non-linear functions.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/dyadic.h"
#include "numerics/fxp.h"
#include "numerics/nonlinear.h"
#include "numerics/rounding.h"
#include "numerics/saturate.h"
#include "util/contracts.h"

namespace gqa {
namespace {

// -------------------------------------------------------------- rounding --

TEST(Rounding, NearestAwayTies) {
  EXPECT_EQ(round_to_int(2.5), 3);
  EXPECT_EQ(round_to_int(-2.5), -3);
  EXPECT_EQ(round_to_int(2.4), 2);
  EXPECT_EQ(round_to_int(-2.4), -2);
}

TEST(Rounding, OtherModes) {
  EXPECT_EQ(round_to_int(2.5, RoundMode::kFloor), 2);
  EXPECT_EQ(round_to_int(-2.5, RoundMode::kFloor), -3);
  EXPECT_EQ(round_to_int(2.1, RoundMode::kCeil), 3);
  EXPECT_EQ(round_to_int(-2.9, RoundMode::kTowardZero), -2);
}

TEST(Rounding, NonFiniteThrows) {
  EXPECT_THROW(round_to_int(std::nan("")), ContractViolation);
  EXPECT_THROW(round_to_int(INFINITY), ContractViolation);
}

TEST(Rounding, GridRounding) {
  EXPECT_DOUBLE_EQ(round_to_grid(0.8155, 5), std::round(0.8155 * 32) / 32);
  EXPECT_DOUBLE_EQ(round_to_grid(-0.815, 0), -1.0);
  EXPECT_DOUBLE_EQ(round_to_grid(0.49, 1), 0.5);
}

class ShiftRoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShiftRoundProperty, MatchesRealDivision) {
  const int shift = GetParam();
  for (std::int64_t v : {-1000001LL, -37LL, -1LL, 0LL, 1LL, 5LL, 999999LL}) {
    const double exact = static_cast<double>(v) / std::ldexp(1.0, shift);
    EXPECT_EQ(shift_round(v, shift), round_to_int(exact))
        << "v=" << v << " shift=" << shift;
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, ShiftRoundProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 20));

// -------------------------------------------------------------- saturate --

TEST(Saturate, BoundsAndClamping) {
  EXPECT_EQ(int_min(8, true), -128);
  EXPECT_EQ(int_max(8, true), 127);
  EXPECT_EQ(int_min(8, false), 0);
  EXPECT_EQ(int_max(8, false), 255);
  EXPECT_EQ(saturate(300, 8), 127);
  EXPECT_EQ(saturate(-300, 8), -128);
  EXPECT_EQ(saturate(42, 8), 42);
  EXPECT_EQ(saturate(-5, 8, false), 0);
}

TEST(Saturate, FitsPredicate) {
  EXPECT_TRUE(fits(127, 8));
  EXPECT_FALSE(fits(128, 8));
  EXPECT_TRUE(fits(255, 8, false));
  EXPECT_FALSE(fits(-1, 8, false));
}

TEST(Saturate, SatShlDetectsOverflowWithoutUb) {
  EXPECT_EQ(sat_shl(1, 3, 8), 8);
  EXPECT_EQ(sat_shl(100, 4, 8), 127);
  EXPECT_EQ(sat_shl(-100, 4, 8), -128);
  EXPECT_EQ(sat_shl(1, 40, 62), std::int64_t{1} << 40);
}

TEST(Saturate, SatAdd) {
  EXPECT_EQ(sat_add(100, 100, 8), 127);
  EXPECT_EQ(sat_add(-100, -100, 8), -128);
  EXPECT_EQ(sat_add(50, 20, 8), 70);
}

// ------------------------------------------------------------------- fxp --

TEST(Fxp, FormatProperties) {
  const FxpFormat fmt{8, 5, true};
  EXPECT_EQ(fmt.integer_bits(), 2);
  EXPECT_DOUBLE_EQ(fmt.resolution(), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(fmt.min_value(), -4.0);
  EXPECT_DOUBLE_EQ(fmt.max_value(), 127.0 / 32.0);
  EXPECT_EQ(fmt.to_string(), "sQ2.5");
}

class FxpRoundTrip : public ::testing::TestWithParam<FxpFormat> {};

TEST_P(FxpRoundTrip, ErrorBoundedByHalfUlp) {
  const FxpFormat fmt = GetParam();
  for (double x = fmt.min_value(); x <= fmt.max_value(); x += 0.0371) {
    const double back = fxp_round(x, fmt);
    EXPECT_LE(std::abs(back - x), fmt.resolution() / 2 + 1e-12)
        << "x=" << x << " fmt=" << fmt.to_string();
  }
}

TEST_P(FxpRoundTrip, SaturatesOutOfRange) {
  const FxpFormat fmt = GetParam();
  EXPECT_EQ(fxp_encode(fmt.max_value() + 100.0, fmt),
            int_max(fmt.width, fmt.is_signed));
  EXPECT_EQ(fxp_encode(fmt.min_value() - 100.0, fmt),
            int_min(fmt.width, fmt.is_signed));
}

INSTANTIATE_TEST_SUITE_P(Formats, FxpRoundTrip,
                         ::testing::Values(FxpFormat{8, 5, true},
                                           FxpFormat{8, 7, true},
                                           FxpFormat{16, 5, true},
                                           FxpFormat{16, 12, true},
                                           FxpFormat{8, 4, false}));

TEST(Fxp, DecodeRejectsOutOfRangeCodes) {
  const FxpFormat fmt{8, 5, true};
  EXPECT_THROW(fxp_decode(128, fmt), ContractViolation);
  EXPECT_DOUBLE_EQ(fxp_decode(-128, fmt), -4.0);
}

TEST(Fxp, EncodeRejectsNonFinite) {
  EXPECT_THROW(fxp_encode(std::nan(""), FxpFormat{8, 5, true}),
               ContractViolation);
}

// ---------------------------------------------------------------- dyadic --

class DyadicAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(DyadicAccuracy, ApproximatesWithinHalfUlp) {
  const double real = GetParam();
  const Dyadic d = Dyadic::from_real(real, 15);
  // Relative error bounded by 2^-15 of the normalized mantissa.
  EXPECT_NEAR(d.real(), real, std::abs(real) * std::ldexp(1.0, -15));
}

INSTANTIATE_TEST_SUITE_P(Values, DyadicAccuracy,
                         ::testing::Values(0.5, 1.0, 0.0001, 123.456, -0.75,
                                           -3.14159, 0.333333, 1e-6, 2048.0));

TEST(Dyadic, ApplyMatchesRealMultiplication) {
  const Dyadic d = Dyadic::from_real(0.37);
  for (std::int64_t v : {-100000LL, -31LL, 0LL, 7LL, 12345LL}) {
    EXPECT_NEAR(static_cast<double>(d.apply(v)),
                static_cast<double>(v) * 0.37,
                std::abs(v * 0.37) * 1e-4 + 0.51);
  }
}

TEST(Dyadic, ZeroAndErrors) {
  EXPECT_EQ(Dyadic::from_real(0.0).mult, 0);
  EXPECT_THROW(Dyadic::from_real(std::nan("")), ContractViolation);
}

TEST(Dyadic, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(0.25));
  EXPECT_TRUE(is_power_of_two(64.0));
  EXPECT_FALSE(is_power_of_two(0.3));
  EXPECT_FALSE(is_power_of_two(-2.0));
  EXPECT_EQ(nearest_po2_exponent(0.25), -2);
  EXPECT_EQ(nearest_po2_exponent(0.3), -2);  // round(log2 0.3) = -2
  EXPECT_EQ(nearest_po2_exponent(3.0), 2);   // round(1.585) = 2
  EXPECT_THROW(nearest_po2_exponent(0.0), ContractViolation);
}

// ------------------------------------------------------------- nonlinear --

TEST(Nonlinear, ReferenceValues) {
  EXPECT_NEAR(eval_op(Op::kGelu, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(eval_op(Op::kGelu, 10.0), 10.0, 1e-6);
  EXPECT_NEAR(eval_op(Op::kHswish, -3.0), 0.0, 1e-12);
  EXPECT_NEAR(eval_op(Op::kHswish, 3.0), 3.0, 1e-12);
  EXPECT_NEAR(eval_op(Op::kHswish, 1.0), 1.0 * 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(eval_op(Op::kExp, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(eval_op(Op::kDiv, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(eval_op(Op::kRsqrt, 4.0), 0.5, 1e-12);
  EXPECT_NEAR(eval_op(Op::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(eval_op(Op::kSilu, 0.0), 0.0, 1e-12);
}

TEST(Nonlinear, DomainViolationsThrow) {
  EXPECT_THROW(eval_op(Op::kDiv, 0.0), ContractViolation);
  EXPECT_THROW(eval_op(Op::kRsqrt, -1.0), ContractViolation);
}

TEST(Nonlinear, RegistryLookups) {
  EXPECT_EQ(op_info(Op::kGelu).name, "GELU");
  EXPECT_EQ(op_from_name("gelu"), Op::kGelu);
  EXPECT_EQ(op_from_name("RSQRT"), Op::kRsqrt);
  EXPECT_THROW(op_from_name("nosuch"), ContractViolation);
  EXPECT_EQ(paper_ops().size(), 5u);
  EXPECT_GE(all_ops().size(), 10u);
}

TEST(Nonlinear, Table1Ranges) {
  EXPECT_DOUBLE_EQ(op_info(Op::kGelu).range_lo, -4.0);
  EXPECT_DOUBLE_EQ(op_info(Op::kExp).range_lo, -8.0);
  EXPECT_DOUBLE_EQ(op_info(Op::kExp).range_hi, 0.0);
  EXPECT_DOUBLE_EQ(op_info(Op::kDiv).range_lo, 0.5);
  EXPECT_DOUBLE_EQ(op_info(Op::kRsqrt).range_lo, 0.25);
  EXPECT_TRUE(op_info(Op::kGelu).scale_dependent);
  EXPECT_FALSE(op_info(Op::kDiv).scale_dependent);
}

}  // namespace
}  // namespace gqa
