# Empty compiler generated dependencies file for engine_test.
# This may be replaced when dependencies are built.
