// Ablation: multi-range input scaling (Table 2) on/off for the wide-range
// operators DIV and RSQRT. Without it the pwl saturates immediately beyond
// the breakpoint interval; with it the relative error stays bounded across
// decades of input magnitude.
#include <cmath>

#include "bench_util.h"
#include "gqa/multirange.h"
#include "kernel/multirange_unit.h"

using namespace gqa;

int main() {
  std::printf("== Ablation: multi-range input scaling for DIV/RSQRT ==\n");
  TablePrinter table({"Op", "Input span", "w/ multi-range", "w/o (saturating)"});
  table.set_title("Relative RMS error across the wide input range");
  for (Op op : {Op::kDiv, Op::kRsqrt}) {
    const Approximator approx = Approximator::fit(op, Method::kGqaNoRm, {});
    const MultiRangeConfig config = MultiRangeConfig::preset_for(op);
    MultiRangeConfig no_ranges = config;
    no_ranges.subranges.clear();  // inputs beyond IR saturate the pwl bus

    const MultiRangeUnit with_mr(
        approx.quantized(QuantParams{std::ldexp(1.0, -approx.lambda()), 8, true}),
        config);
    const MultiRangeUnit without_mr(
        approx.quantized(QuantParams{std::ldexp(1.0, -approx.lambda()), 8, true}),
        no_ranges);

    double hi = config.ir_hi;
    for (const SubRange& sr : config.subranges) {
      if (std::isfinite(sr.hi)) hi = std::max(hi, sr.hi);
    }
    auto rel_rms = [&](const MultiRangeUnit& unit) {
      constexpr int kSamples = 2000;
      double sse = 0.0;
      for (int i = 0; i < kSamples; ++i) {
        const double t = static_cast<double>(i) / (kSamples - 1);
        const double x = config.ir_lo * std::pow(hi / config.ir_lo, t);
        const double ref = eval_op(op, x);
        const double err = (unit.eval_real(x) - ref) / ref;
        sse += err * err;
      }
      return std::sqrt(sse / kSamples);
    };
    table.add_row({op_info(op).name,
                   format("[%.3g, %.3g]", config.ir_lo, hi),
                   sci(rel_rms(with_mr)), sci(rel_rms(without_mr))});
  }
  bench::emit(table, "ablation_multirange");
  return 0;
}
