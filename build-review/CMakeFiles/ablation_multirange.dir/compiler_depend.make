# Empty compiler generated dependencies file for ablation_multirange.
# This may be replaced when dependencies are built.
