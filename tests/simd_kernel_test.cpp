// Differential conformance suite for the runtime-dispatched SIMD kernel
// backends (kernel/dispatch.h): every registered non-scalar backend is run
// against the scalar oracle and must match code-for-code and bit-for-bit —
// across bus widths 4..16, span lengths covering every vector-tail residue,
// unaligned span offsets, saturation boundary codes, and extreme (shifter-
// limit) scale exponents. Hosts whose probe rejects a backend SKIP loudly;
// a host with no SIMD backend at all skips the differential tests rather
// than letting them pass silently against nothing.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/dispatch.h"
#include "kernel/int_pwl_unit.h"
#include "pwl/quantized_table.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqa {
namespace {

using kernel::BackendScope;
using kernel::KernelBackend;

PwlTable gelu_like_table() {
  PwlTable t;
  t.breakpoints = {-2.75, -1.5, -0.75, -0.25, 0.25, 1.0, 2.0};
  t.slopes = {0.0, -0.0625, 0.03125, 0.34375, 0.65625, 0.96875, 1.03125, 1.0};
  t.intercepts = {0.0, -0.15625, 0.0, 0.21875, 0.0, -0.09375, -0.15625, 0.0};
  return t;
}

IntPwlUnit make_unit(int bits, int scale_exp) {
  const QuantParams input{std::ldexp(1.0, scale_exp), bits, true};
  return IntPwlUnit(quantize_table(gelu_like_table(), input, 5, 8));
}

/// Non-scalar backends whose capability probe passes on this host.
std::vector<const KernelBackend*> available_simd_backends() {
  std::vector<const KernelBackend*> out;
  for (const KernelBackend* b : kernel::registry()) {
    if (std::string(b->name) != "scalar" && kernel::backend_available(*b)) {
      out.push_back(b);
    }
  }
  return out;
}

/// Registered backends the host cannot run must be reported, never silently
/// skipped inside loops — tests use this to emit one visible SKIP.
std::vector<std::string> unavailable_backend_names() {
  std::vector<std::string> out;
  for (const KernelBackend* b : kernel::registry()) {
    if (!kernel::backend_available(*b)) out.emplace_back(b->name);
  }
  return out;
}

#define GQA_SKIP_WITHOUT_SIMD_BACKEND(backends)                            \
  do {                                                                     \
    if ((backends).empty()) {                                              \
      GTEST_SKIP() << "no runnable SIMD backend on this host (scalar "     \
                      "oracle only); nothing to differentiate";            \
    }                                                                      \
  } while (false)

/// Codes covering the interesting structure of a `bits`-wide bus: both
/// saturation boundaries, the breakpoint span, and seeded uniform fill.
std::vector<std::int64_t> make_codes(Rng& rng, int bits, std::size_t len) {
  const std::int64_t lo = int_min(bits, true);
  const std::int64_t hi = int_max(bits, true);
  std::vector<std::int64_t> codes(len);
  for (std::size_t i = 0; i < len; ++i) codes[i] = rng.uniform_int(lo, hi);
  if (len >= 1) codes[0] = lo;
  if (len >= 2) codes[1] = hi;
  if (len >= 3) codes[len - 1] = hi;  // boundary in a vector-tail position
  return codes;
}

/// Runs `fn(q_span, out_span)` with the spans placed at `offset` inside
/// oversized buffers, so the vector loops see unaligned bases.
template <typename Out, typename Fn>
std::vector<Out> eval_at_offset(const std::vector<std::int64_t>& codes,
                                std::size_t offset, const Fn& fn) {
  std::vector<std::int64_t> in(codes.size() + offset + 4, 0);
  std::vector<Out> out(codes.size() + offset + 4, Out{});
  std::copy(codes.begin(), codes.end(), in.begin() + offset);
  fn(std::span<const std::int64_t>(in.data() + offset, codes.size()),
     std::span<Out>(out.data() + offset, codes.size()));
  return {out.begin() + static_cast<std::ptrdiff_t>(offset),
          out.begin() + static_cast<std::ptrdiff_t>(offset + codes.size())};
}

TEST(SimdBackendRegistry, ScalarAlwaysRegisteredAndLast) {
  const auto& backends = kernel::registry();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(std::string(backends.back()->name), "scalar");
  EXPECT_TRUE(kernel::backend_available(*backends.back()));
  // `auto` resolves to something runnable on every host.
  EXPECT_TRUE(kernel::backend_available(kernel::resolve_backend("auto")));
}

TEST(SimdBackendRegistry, UnknownOrUnavailableNamesFailLoudly) {
  EXPECT_THROW((void)kernel::resolve_backend("avx1999"), ContractViolation);
  for (const std::string& name : unavailable_backend_names()) {
    EXPECT_THROW((void)kernel::resolve_backend(name), ContractViolation)
        << "naming unavailable backend '" << name
        << "' must fail, not silently fall back to scalar";
  }
}

TEST(SimdBackendRegistry, BackendScopeRestoresPreviousBackend) {
  const std::string before = kernel::active().name;
  {
    BackendScope scalar("scalar");
    EXPECT_EQ(std::string(kernel::active().name), "scalar");
  }
  EXPECT_EQ(std::string(kernel::active().name), before);
}

// Every registered-but-unrunnable backend shows up as a SKIP here (one test
// per host state), so CI output never silently passes a backend it never
// executed.
TEST(SimdBackendRegistry, ReportsBackendsThisHostCannotRun) {
  const std::vector<std::string> missing = unavailable_backend_names();
  if (!missing.empty()) {
    std::string joined;
    for (const std::string& name : missing) joined += name + " ";
    GTEST_SKIP() << "backends compiled in but not runnable here: " << joined;
  }
  SUCCEED();
}

TEST(SimdPwlDifferential, EvalCodesBitIdenticalAcrossWidthsAndResidues) {
  const auto backends = available_simd_backends();
  GQA_SKIP_WITHOUT_SIMD_BACKEND(backends);
  Rng rng(0x51D0);
  for (const KernelBackend* backend : backends) {
    for (int bits = 4; bits <= 16; ++bits) {
      // Scale exponents at both shifter extremes: -16 is the barrel-shift
      // limit (b << 16 saturates hard), 0 exercises the negative-shift
      // rounding path, -6 is a paper-typical activation scale.
      for (const int scale_exp : {0, -6, -16}) {
        const IntPwlUnit unit = make_unit(bits, scale_exp);
        // Lengths 0..9 hit every tail residue of 4- and 8-wide lanes (and
        // the empty span); 67 adds a long span with a 3-residue tail.
        for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{4}, std::size_t{5},
                                std::size_t{6}, std::size_t{7}, std::size_t{8},
                                std::size_t{9}, std::size_t{67}}) {
          const std::vector<std::int64_t> codes = make_codes(rng, bits, len);
          const std::size_t offset = len % 4;
          std::vector<std::int64_t> expected, actual;
          {
            BackendScope scope("scalar");
            expected = eval_at_offset<std::int64_t>(
                codes, offset, [&](auto in, auto out) { unit.eval_codes(in, out); });
          }
          {
            BackendScope scope(backend->name);
            actual = eval_at_offset<std::int64_t>(
                codes, offset, [&](auto in, auto out) { unit.eval_codes(in, out); });
          }
          ASSERT_EQ(expected, actual)
              << backend->name << " bits=" << bits << " S=2^" << scale_exp
              << " len=" << len << " offset=" << offset;
        }
      }
    }
  }
}

TEST(SimdPwlDifferential, RealEvalsBitIdenticalIncludingSaturation) {
  const auto backends = available_simd_backends();
  GQA_SKIP_WITHOUT_SIMD_BACKEND(backends);
  Rng rng(0xB17C0DE);
  for (const KernelBackend* backend : backends) {
    for (int bits = 4; bits <= 16; bits += 3) {
      for (const int scale_exp : {-1, -6, -16}) {
        const IntPwlUnit unit = make_unit(bits, scale_exp);
        for (std::size_t len = 1; len <= 13; ++len) {
          std::vector<std::int64_t> codes = make_codes(rng, bits, len);
          const std::size_t offset = (len + 1) % 4;
          auto check = [&](const char* what, const auto& eval) {
            std::vector<double> expected, actual;
            {
              BackendScope scope("scalar");
              expected = eval_at_offset<double>(codes, offset, eval);
            }
            {
              BackendScope scope(backend->name);
              actual = eval_at_offset<double>(codes, offset, eval);
            }
            ASSERT_EQ(expected.size(), actual.size());
            for (std::size_t i = 0; i < expected.size(); ++i) {
              // Bit-for-bit, not just value-equal.
              ASSERT_EQ(std::bit_cast<std::uint64_t>(expected[i]),
                        std::bit_cast<std::uint64_t>(actual[i]))
                  << what << " " << backend->name << " bits=" << bits
                  << " S=2^" << scale_exp << " len=" << len << " i=" << i
                  << " q=" << codes[i];
            }
          };
          check("eval_reals_from_codes", [&](auto in, auto out) {
            unit.eval_reals_from_codes(in, out);
          });
          // Over-range codes (the saturated entry point's whole reason to
          // exist): both immediate neighbours of the bus edge and far
          // out-of-range magnitudes.
          codes[0] = int_max(bits, true) + 1;
          if (len >= 2) codes[1] = int_min(bits, true) - 1;
          if (len >= 3) codes[2] = std::int64_t{1} << 40;
          if (len >= 4) codes[3] = -(std::int64_t{1} << 40);
          check("eval_reals_from_codes_saturated", [&](auto in, auto out) {
            unit.eval_reals_from_codes_saturated(in, out);
          });
        }
      }
    }
  }
}

TEST(SimdPwlDifferential, OverRangeCodeThrowsUnderEveryBackend) {
  for (const KernelBackend* backend : kernel::registry()) {
    if (!kernel::backend_available(*backend)) continue;
    BackendScope scope(backend->name);
    const IntPwlUnit unit = make_unit(8, -2);
    // A violating code in a vector body position and in a tail position.
    const std::vector<std::int64_t> body = {1, 2, 3, 128, 4, 5, 6, 7};
    const std::vector<std::int64_t> tail = {1, 2, 3, 4, -129};
    std::vector<std::int64_t> out(body.size());
    std::vector<std::int64_t> out_tail(tail.size());
    EXPECT_THROW(unit.eval_codes(body, out), ContractViolation)
        << backend->name;
    EXPECT_THROW(unit.eval_codes(tail, out_tail), ContractViolation)
        << backend->name;
  }
}

TEST(SimdPwlDifferential, WideBusFallbackIsBackendInvariant) {
  // >16-bit buses have no dense table and must stay on the scalar
  // binary-search fallback under every backend — identical results, no
  // dispatch.
  const auto backends = available_simd_backends();
  GQA_SKIP_WITHOUT_SIMD_BACKEND(backends);
  const QuantParams input{std::ldexp(1.0, -12), 18, true};
  const IntPwlUnit unit(quantize_table(gelu_like_table(), input, 5, 8));
  std::vector<std::int64_t> codes;
  for (std::int64_t q = -131072; q <= 131071; q += 4099) codes.push_back(q);
  std::vector<std::int64_t> expected(codes.size());
  {
    BackendScope scope("scalar");
    unit.eval_codes(codes, expected);
  }
  for (const KernelBackend* backend : backends) {
    BackendScope scope(backend->name);
    std::vector<std::int64_t> actual(codes.size());
    unit.eval_codes(codes, actual);
    EXPECT_EQ(expected, actual) << backend->name;
  }
}

// ------------------------------------------------------- row kernel ops ---

TEST(SimdRowKernelDifferential, DotProductMatchesScalarReference) {
  const auto backends = available_simd_backends();
  GQA_SKIP_WITHOUT_SIMD_BACKEND(backends);
  Rng rng(0xD07);
  for (const KernelBackend* backend : backends) {
    if (backend->ops.dot_i32_i8 == nullptr) continue;
    for (std::size_t len = 0; len <= 33; ++len) {
      for (std::size_t offset = 0; offset <= 3; ++offset) {
        std::vector<std::int32_t> a(len + offset + 8, 0);
        std::vector<std::int8_t> w(len + offset + 8, 0);
        for (std::size_t i = 0; i < a.size(); ++i) {
          a[i] = static_cast<std::int32_t>(rng.uniform_int(-32768, 32767));
          w[i] = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
        }
        if (len >= 2) {  // activation/weight extremes in-lane
          a[offset] = 32767;
          w[offset] = -128;
          a[offset + len - 1] = -32768;
          w[offset + len - 1] = 127;
        }
        std::int64_t expected = 0;
        for (std::size_t i = 0; i < len; ++i) {
          expected += static_cast<std::int64_t>(a[offset + i]) * w[offset + i];
        }
        EXPECT_EQ(expected,
                  backend->ops.dot_i32_i8(a.data() + offset, w.data() + offset,
                                          len))
            << backend->name << " len=" << len << " offset=" << offset;
      }
    }
  }
}

TEST(SimdRowKernelDifferential, AxpySumSsqMatchScalarReference) {
  const auto backends = available_simd_backends();
  GQA_SKIP_WITHOUT_SIMD_BACKEND(backends);
  Rng rng(0xA6B);
  for (const KernelBackend* backend : backends) {
    for (std::size_t len = 0; len <= 21; ++len) {
      for (std::size_t offset = 0; offset <= 3; ++offset) {
        std::vector<std::int32_t> x(len + offset + 4, 0);
        for (std::size_t i = 0; i < x.size(); ++i) {
          x[i] = static_cast<std::int32_t>(rng.uniform_int(-2048, 2047));
        }
        const std::int32_t* xs = x.data() + offset;
        if (backend->ops.axpy_i64_i32 != nullptr) {
          const std::int32_t wgt =
              static_cast<std::int32_t>(rng.uniform_int(-128, 127));
          std::vector<std::int64_t> acc(len, 7);
          std::vector<std::int64_t> expected = acc;
          for (std::size_t i = 0; i < len; ++i) {
            expected[i] += static_cast<std::int64_t>(wgt) * xs[i];
          }
          backend->ops.axpy_i64_i32(acc.data(), xs, wgt, len);
          EXPECT_EQ(expected, acc)
              << backend->name << " len=" << len << " offset=" << offset;
        }
        if (backend->ops.sum_i32 != nullptr) {
          std::int64_t expected = 0;
          for (std::size_t i = 0; i < len; ++i) expected += xs[i];
          EXPECT_EQ(expected, backend->ops.sum_i32(xs, len))
              << backend->name << " len=" << len << " offset=" << offset;
        }
        if (backend->ops.ssq_centered_i32 != nullptr && len > 0) {
          const std::int64_t dim = static_cast<std::int64_t>(len);
          std::int64_t sum = 0;
          for (std::size_t i = 0; i < len; ++i) sum += xs[i];
          std::int64_t expected = 0;
          for (std::size_t i = 0; i < len; ++i) {
            const std::int64_t c = dim * xs[i] - sum;
            expected += c * c;
          }
          EXPECT_EQ(expected, backend->ops.ssq_centered_i32(xs, dim, sum, len))
              << backend->name << " len=" << len << " offset=" << offset;
        }
      }
    }
  }
}

TEST(SimdRowKernelDifferential, MaxAndSubWidenMatchScalarReference) {
  const auto backends = available_simd_backends();
  GQA_SKIP_WITHOUT_SIMD_BACKEND(backends);
  Rng rng(0x3A1);
  for (const KernelBackend* backend : backends) {
    for (std::size_t len = 1; len <= 37; ++len) {
      for (std::size_t offset = 0; offset <= 3; ++offset) {
        std::vector<std::int32_t> x(len + offset + 8, 0);
        for (std::size_t i = 0; i < x.size(); ++i) {
          x[i] = static_cast<std::int32_t>(
              rng.uniform_int(std::numeric_limits<std::int32_t>::min(),
                              std::numeric_limits<std::int32_t>::max()));
        }
        const std::int32_t* xs = x.data() + offset;
        std::int32_t peak = xs[0];
        for (std::size_t i = 1; i < len; ++i) peak = std::max(peak, xs[i]);
        if (backend->ops.max_i32 != nullptr) {
          EXPECT_EQ(peak, backend->ops.max_i32(xs, len))
              << backend->name << " len=" << len << " offset=" << offset;
        }
        if (backend->ops.sub_scalar_widen_i32 != nullptr) {
          std::vector<std::int64_t> out(len, 0);
          backend->ops.sub_scalar_widen_i32(xs, peak, out.data(), len);
          for (std::size_t i = 0; i < len; ++i) {
            ASSERT_EQ(static_cast<std::int64_t>(xs[i]) - peak, out[i])
                << backend->name << " len=" << len << " offset=" << offset
                << " i=" << i;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------ threading ---

TEST(SimdKernelConcurrency, ConcurrentSpansMatchScalarUnderDispatch) {
  // Read-only dispatch under a thread-pool fan-out: many lanes stream
  // disjoint spans through one unit while the active backend is the
  // dispatched one. TSan sees the atomic backend load racing nothing; the
  // results must equal the scalar oracle's.
  const auto backends = available_simd_backends();
  GQA_SKIP_WITHOUT_SIMD_BACKEND(backends);
  const IntPwlUnit unit = make_unit(8, -4);
  constexpr std::size_t kRows = 64;
  constexpr std::size_t kCols = 97;  // odd: every lane ends in a vector tail
  Rng rng(0xC0C0);
  std::vector<std::int64_t> codes(kRows * kCols);
  for (auto& c : codes) c = rng.uniform_int(-128, 127);
  std::vector<std::int64_t> expected(codes.size());
  {
    BackendScope scope("scalar");
    unit.eval_codes(codes, expected);
  }
  ThreadPool pool(4);
  for (const KernelBackend* backend : backends) {
    BackendScope scope(backend->name);
    std::vector<std::int64_t> actual(codes.size());
    pool.parallel_for(kRows, [&](std::size_t row) {
      const std::span<const std::int64_t> in(codes.data() + row * kCols,
                                             kCols);
      const std::span<std::int64_t> out(actual.data() + row * kCols, kCols);
      unit.eval_codes(in, out);
    });
    EXPECT_EQ(expected, actual) << backend->name;
  }
}

}  // namespace
}  // namespace gqa
