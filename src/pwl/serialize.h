// JSON (de)serialization of fitted tables so deployments can ship LUT
// parameter files produced by the fitting pipeline.
#pragma once

#include <string>

#include "pwl/pwl_table.h"
#include "pwl/quantized_table.h"

namespace gqa {

class Json;

[[nodiscard]] Json pwl_to_json(const PwlTable& table);
[[nodiscard]] PwlTable pwl_from_json(const Json& j);

[[nodiscard]] Json quantized_to_json(const QuantizedPwlTable& table);
[[nodiscard]] QuantizedPwlTable quantized_from_json(const Json& j);

/// Saves/loads a table to/from a file.
void save_pwl(const PwlTable& table, const std::string& path);
[[nodiscard]] PwlTable load_pwl(const std::string& path);

void save_quantized(const QuantizedPwlTable& table, const std::string& path);
[[nodiscard]] QuantizedPwlTable load_quantized(const std::string& path);

}  // namespace gqa
