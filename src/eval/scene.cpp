#include "eval/scene.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace gqa {

using tfm::Shape;
using tfm::Tensor;

void class_color(int cls, double rgb[3]) {
  // Hand-picked anchors for the layout classes, hashed hues for objects.
  switch (cls) {
    case 0: rgb[0] = -0.25; rgb[1] = 0.35; rgb[2] = 0.85; return;  // sky
    case 1: rgb[0] = 0.15; rgb[1] = -0.15; rgb[2] = -0.55; return; // ground
    case 2: rgb[0] = -0.45; rgb[1] = -0.45; rgb[2] = -0.40; return;// road
    default: break;
  }
  // Object categories get maximally separated colours: the corners of the
  // RGB cube first, then hashed hues for any further classes.
  static constexpr double kCorners[8][3] = {
      {0.9, 0.9, 0.9},   {0.9, -0.9, -0.9}, {-0.9, 0.9, -0.9},
      {-0.9, -0.9, 0.9}, {0.9, 0.9, -0.9},  {-0.9, 0.9, 0.9},
      {0.9, -0.9, 0.9},  {-0.9, -0.9, -0.9}};
  if (cls - 3 < 8) {
    for (int c = 0; c < 3; ++c) rgb[c] = kCorners[cls - 3][c];
    return;
  }
  std::uint64_t h = static_cast<std::uint64_t>(cls) * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  for (int c = 0; c < 3; ++c) {
    rgb[c] = -0.9 + 1.8 * static_cast<double>((h >> (c * 16)) & 0xFFFF) / 65535.0;
  }
}

LabeledScene make_scene(const SceneOptions& options, std::uint64_t seed) {
  GQA_EXPECTS(options.size >= 8);
  GQA_EXPECTS(options.num_classes >= 4);
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x1CEB00DA);
  const int n = options.size;
  LabeledScene scene;
  scene.size = n;
  scene.image = Tensor(Shape{3, n, n});
  scene.labels.assign(static_cast<std::size_t>(n) * n, 0);

  auto paint = [&scene, n](int x, int y, int cls, const double rgb[3],
                           double alpha) {
    for (int c = 0; c < 3; ++c) {
      float& v = scene.image.at(c, y, x);
      v = static_cast<float>((1.0 - alpha) * v + alpha * rgb[c]);
    }
    if (alpha >= 0.5) {
      scene.labels[static_cast<std::size_t>(y) * n + x] = cls;
    }
  };

  // Sky above a random horizon, ground below.
  const double horizon = rng.uniform(0.3, 0.7);
  double sky[3], ground[3];
  class_color(0, sky);
  class_color(1, ground);
  for (int c = 0; c < 3; ++c) {
    sky[c] += rng.uniform(-options.color_jitter, options.color_jitter);
    ground[c] += rng.uniform(-options.color_jitter, options.color_jitter);
  }
  for (int y = 0; y < n; ++y) {
    const double t = static_cast<double>(y) / n;
    for (int x = 0; x < n; ++x) {
      if (t < horizon) {
        double shade[3] = {sky[0] * (1.0 - 0.3 * t / horizon),
                           sky[1] * (1.0 - 0.3 * t / horizon), sky[2]};
        paint(x, y, 0, shade, 1.0);
      } else {
        double tex[3];
        for (int c = 0; c < 3; ++c) {
          tex[c] = ground[c] + 0.08 * std::sin(0.55 * x + 2.0 * c + 0.3 * y);
        }
        paint(x, y, 1, tex, 1.0);
      }
    }
  }

  // Road band below the horizon.
  double road[3];
  class_color(2, road);
  const int road_y = static_cast<int>(horizon * n) +
                     static_cast<int>(rng.uniform(1.0, 6.0));
  const int road_h = std::max(3, n / 8);
  for (int y = road_y; y < std::min(n, road_y + road_h); ++y) {
    for (int x = 0; x < n; ++x) {
      double tex[3];
      const bool lane_mark = (x % (n / 8)) < 2 && ((y - road_y) == road_h / 2);
      for (int c = 0; c < 3; ++c) tex[c] = lane_mark ? 0.8 : road[c];
      paint(x, y, 2, tex, 1.0);
    }
  }

  // Object blobs with class-conditioned colours.
  for (int b = 0; b < options.blobs; ++b) {
    const int cls = 3 + static_cast<int>(rng.uniform_int(
        0, std::min(options.object_classes, options.num_classes - 3) - 1));
    double base[3];
    class_color(cls, base);
    for (int c = 0; c < 3; ++c) {
      base[c] = std::clamp(
          base[c] + rng.uniform(-options.color_jitter, options.color_jitter),
          -1.0, 1.0);
    }
    const double cx = rng.uniform(0.1, 0.9) * n;
    const double cy = rng.uniform(0.15, 0.95) * n;
    const double rx = rng.uniform(0.12, 0.28) * n;
    const double ry = rng.uniform(0.12, 0.28) * n;
    const double angle = rng.uniform(0.0, M_PI);
    const double ca = std::cos(angle);
    const double sa = std::sin(angle);
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const double dx = (x - cx) * ca + (y - cy) * sa;
        const double dy = -(x - cx) * sa + (y - cy) * ca;
        const double d = (dx * dx) / (rx * rx) + (dy * dy) / (ry * ry);
        if (d < 1.0) {
          const double alpha = std::min(1.0, 2.5 * (1.0 - d));
          paint(x, y, cls, base, alpha);
        }
      }
    }
  }

  // Sensor noise + clamp (labels unaffected).
  for (float& v : scene.image.data()) {
    v = static_cast<float>(std::clamp(
        static_cast<double>(v) + rng.normal(0.0, options.noise), -1.0, 1.0));
  }
  return scene;
}

std::vector<LabeledScene> make_scene_set(const SceneOptions& options, int count,
                                         std::uint64_t base_seed) {
  GQA_EXPECTS(count >= 1);
  std::vector<LabeledScene> scenes;
  scenes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    scenes.push_back(
        make_scene(options, base_seed + static_cast<std::uint64_t>(i)));
  }
  return scenes;
}

std::vector<int> downsample_labels(const std::vector<int>& labels, int size,
                                   int h, int w) {
  GQA_EXPECTS(static_cast<int>(labels.size()) == size * size);
  GQA_EXPECTS(h >= 1 && w >= 1 && h <= size && w <= size);
  std::vector<int> out(static_cast<std::size_t>(h) * w);
  for (int y = 0; y < h; ++y) {
    // Sample the cell centre (nearest-neighbour downsampling).
    const int sy = std::min(size - 1, y * size / h + size / (2 * h));
    for (int x = 0; x < w; ++x) {
      const int sx = std::min(size - 1, x * size / w + size / (2 * w));
      out[static_cast<std::size_t>(y) * w + x] =
          labels[static_cast<std::size_t>(sy) * size + sx];
    }
  }
  return out;
}

}  // namespace gqa
