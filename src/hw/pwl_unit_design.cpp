#include "hw/pwl_unit_design.h"

#include <sstream>

#include "util/contracts.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace gqa::hw {

std::string precision_name(Precision p) {
  switch (p) {
    case Precision::kInt8: return "INT8";
    case Precision::kInt16: return "INT16";
    case Precision::kInt32: return "INT32";
    case Precision::kFp32: return "FP32";
  }
  return "?";
}

int precision_bits(Precision p) {
  switch (p) {
    case Precision::kInt8: return 8;
    case Precision::kInt16: return 16;
    case Precision::kInt32: return 32;
    case Precision::kFp32: return 32;
  }
  return 0;
}

bool precision_is_float(Precision p) { return p == Precision::kFp32; }

const std::vector<Precision>& all_precisions() {
  static const std::vector<Precision> ps = {
      Precision::kInt8, Precision::kInt16, Precision::kInt32,
      Precision::kFp32};
  return ps;
}

namespace {

GeBreakdown compose_int_unit(const PwlUnitSpec& spec) {
  const int w = precision_bits(spec.precision);
  const int n = spec.entries;
  GeBreakdown ge;
  // LUT storage: n entries of (k, b) plus n-1 breakpoints (Figure 1(b)).
  ge["lut_storage"] = ge_storage(n * 2 * w + (n - 1) * w);
  // Comparator chain over the breakpoints plus index encode.
  ge["comparators"] = (n - 1) * ge_comparator(w) + ge_priority_encoder(n);
  // k * q multiplier.
  ge["multiplier"] = ge_multiplier(w, w);
  // Intercept barrel shifter b << s (runtime scale alignment, Eq. 3).
  ge["shifter"] = ge_barrel_shifter(w + spec.max_shift, spec.max_shift);
  // Accumulating adder at product width.
  ge["adder"] = ge_adder(2 * w + 1);
  // Output register + control.
  ge["output_reg"] = ge_storage(2 * w);
  ge["control"] = 40.0 + 2.0 * n;
  return ge;
}

GeBreakdown compose_fp_unit(const PwlUnitSpec& spec) {
  const int n = spec.entries;
  GeBreakdown ge;
  // FP32 parameters: k, b per entry plus breakpoints, all 32-bit.
  ge["lut_storage"] = ge_storage(n * 2 * 32 + (n - 1) * 32);
  ge["comparators"] = (n - 1) * ge_fp32_comparator() + ge_priority_encoder(n);
  ge["multiplier"] = ge_fp32_multiplier();
  ge["adder"] = ge_fp32_adder();
  ge["output_reg"] = ge_storage(32);
  ge["control"] = 40.0 + 2.0 * n;
  return ge;
}

double total_ge(const GeBreakdown& ge) {
  double sum = 0.0;
  for (const auto& [name, value] : ge) sum += value;
  return sum;
}

// Switching-activity weights per component group. Flop-based LUT storage is
// clock-dominated (the clock tree toggles every cycle regardless of data),
// which is why Table 6 power grows faster with entry count than area does.
double activity(const std::string& component) {
  if (component == "lut_storage") return 0.80;
  if (component == "comparators") return 0.50;
  if (component == "multiplier") return 0.60;
  if (component == "shifter") return 0.45;
  if (component == "adder") return 0.55;
  if (component == "output_reg") return 0.80;
  return 0.40;  // control and everything else
}

}  // namespace

SynthReport synthesize(const PwlUnitSpec& spec, const TechLib& tech) {
  GQA_EXPECTS(spec.entries >= 2 && spec.entries <= 256);
  GQA_EXPECTS(spec.max_shift >= 0 && spec.max_shift <= 32);

  SynthReport report;
  report.spec = spec;
  report.breakdown = precision_is_float(spec.precision)
                         ? compose_fp_unit(spec)
                         : compose_int_unit(spec);
  report.gate_equivalents = total_ge(report.breakdown);
  report.area_um2 =
      report.gate_equivalents * tech.um2_per_ge * tech.area_calibration;

  double weighted_ge = 0.0;
  for (const auto& [name, ge] : report.breakdown)
    weighted_ge += ge * activity(name);
  report.power_mw = weighted_ge * tech.uw_per_ge_mhz * tech.clock_mhz *
                    tech.power_calibration / 1000.0;
  return report;
}

const TechLib& calibrated_tech() {
  static const TechLib tech = [] {
    TechLib t;
    // Calibrate the global factors on the paper's INT8/8-entry anchor
    // (961 um², 0.40 mW). One scalar each; all ratios stay structural.
    TechLib raw;
    raw.area_calibration = 1.0;
    raw.power_calibration = 1.0;
    const SynthReport anchor =
        synthesize(PwlUnitSpec{Precision::kInt8, 8, 8}, raw);
    t.area_calibration = 961.0 / anchor.area_um2;
    t.power_calibration = 0.40 / anchor.power_mw;
    return t;
  }();
  return tech;
}

std::string format_report(const std::vector<SynthReport>& rows) {
  TablePrinter table({"Precision", "Entry", "Area (um2)", "Power (mW)",
                      "GE", "Area vs FP32"});
  // Find the FP32 unit with the same entry count for the savings column.
  auto fp32_area = [&rows](int entries) -> double {
    for (const SynthReport& r : rows) {
      if (r.spec.precision == Precision::kFp32 && r.spec.entries == entries)
        return r.area_um2;
    }
    return 0.0;
  };
  std::ostringstream os;
  for (const SynthReport& r : rows) {
    const double ref = fp32_area(r.spec.entries);
    std::string saving = "-";
    if (ref > 0.0 && r.spec.precision != Precision::kFp32) {
      saving = gqa::format("-%.1f%%", 100.0 * (1.0 - r.area_um2 / ref));
    }
    table.add_row({precision_name(r.spec.precision),
                   gqa::format("%d", r.spec.entries),
                   gqa::format("%.0f", r.area_um2),
                   gqa::format("%.2f", r.power_mw),
                   gqa::format("%.0f", r.gate_equivalents), saving});
  }
  table.print(os);
  return os.str();
}

}  // namespace gqa::hw
