// CSV emission for experiment results. Bench binaries dump their raw series
// next to the console tables so downstream plotting does not need to
// re-parse pretty-printed output.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gqa {

/// Writes rows of cells to a CSV file; fields containing commas or quotes
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience overload for numeric series.
  void write_row(const std::vector<double>& cells);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::string path_;
};

}  // namespace gqa
