#include "nnlut/nn_lut.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "pwl/fit_grid.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace gqa {

NnLutConfig NnLutConfig::preset(Op op, int entries) {
  NnLutConfig cfg;
  cfg.op = op;
  const OpInfo& info = op_info(op);
  cfg.range_lo = info.range_lo;
  cfg.range_hi = info.range_hi;
  cfg.entries = entries;
  return cfg;
}

void NnLutConfig::validate() const {
  GQA_EXPECTS(range_lo < range_hi);
  GQA_EXPECTS(entries >= 2);
  GQA_EXPECTS(lambda >= 0 && lambda <= 16);
  GQA_EXPECTS(samples >= 16);
  GQA_EXPECTS(epochs >= 1);
  GQA_EXPECTS(batch_size >= 1);
  GQA_EXPECTS(learning_rate > 0.0);
}

double NnLutNetwork::forward(double x) const {
  double y = d;
  for (std::size_t j = 0; j < w.size(); ++j) {
    const double z = w[j] * x + c[j];
    if (z > 0.0) y += v[j] * z;
  }
  return y;
}

namespace {

/// Adam state for one parameter vector.
struct AdamState {
  std::vector<double> m, s;
  explicit AdamState(std::size_t n) : m(n, 0.0), s(n, 0.0) {}
};

void adam_step(std::vector<double>& params, const std::vector<double>& grads,
               AdamState& state, double lr, int t) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  const double bc1 = 1.0 - std::pow(kBeta1, t);
  const double bc2 = 1.0 - std::pow(kBeta2, t);
  for (std::size_t i = 0; i < params.size(); ++i) {
    state.m[i] = kBeta1 * state.m[i] + (1.0 - kBeta1) * grads[i];
    state.s[i] = kBeta2 * state.s[i] + (1.0 - kBeta2) * grads[i] * grads[i];
    const double mhat = state.m[i] / bc1;
    const double shat = state.s[i] / bc2;
    params[i] -= lr * mhat / (std::sqrt(shat) + kEps);
  }
}

}  // namespace

PwlTable extract_pwl(const NnLutNetwork& net, double lo, double hi,
                     int entries) {
  GQA_EXPECTS(lo < hi);
  GQA_EXPECTS(entries >= 2);
  const std::size_t h = net.w.size();
  GQA_EXPECTS(net.c.size() == h && net.v.size() == h);

  // Leftmost segment: ReLUs with w < 0 are active as x -> -inf.
  double k = 0.0;
  double b = net.d;
  struct Knot {
    double t;
    double dk;  ///< slope change when crossing left -> right
  };
  std::vector<Knot> knots;
  knots.reserve(h);
  constexpr double kDeadUnit = 1e-9;
  for (std::size_t j = 0; j < h; ++j) {
    if (std::abs(net.w[j]) < kDeadUnit) {
      // Degenerate unit: constant contribution v*relu(c).
      if (net.c[j] > 0.0) b += net.v[j] * net.c[j];
      continue;
    }
    if (net.w[j] < 0.0) {
      k += net.v[j] * net.w[j];
      b += net.v[j] * net.c[j];
    }
    // Crossing the knot toggles the unit; slope change is v*|w| either way.
    knots.push_back({-net.c[j] / net.w[j], net.v[j] * std::abs(net.w[j])});
  }
  std::sort(knots.begin(), knots.end(),
            [](const Knot& a, const Knot& c) { return a.t < c.t; });

  // Walk knots building the full continuous pwl, keeping only the part
  // intersecting [lo, hi].
  PwlTable table;
  for (const Knot& knot : knots) {
    const double k_next = k + knot.dk;
    const double b_next = b + (k - k_next) * knot.t;  // continuity at t
    if (knot.t <= lo) {
      // Segment left of the range is invisible; adopt the right side.
      k = k_next;
      b = b_next;
      continue;
    }
    if (knot.t >= hi) break;  // everything further right is invisible
    // Coincident knots create a zero-width segment; skip the push and let
    // the running (k, b) absorb both slope changes.
    if (!table.breakpoints.empty() &&
        knot.t <= table.breakpoints.back() + 1e-12) {
      k = k_next;
      b = b_next;
      continue;
    }
    table.slopes.push_back(k);
    table.intercepts.push_back(b);
    table.breakpoints.push_back(knot.t);
    k = k_next;
    b = b_next;
  }
  table.slopes.push_back(k);
  table.intercepts.push_back(b);

  // Normalize to exactly `entries` segments: pad by splitting the widest
  // segments with redundant breakpoints (identical line on both sides keeps
  // the function unchanged).
  while (table.entries() < entries) {
    double widest = -1.0;
    std::size_t at = 0;
    for (std::size_t i = 0; i < table.slopes.size(); ++i) {
      const double a = i == 0 ? lo : table.breakpoints[i - 1];
      const double c = i < table.breakpoints.size() ? table.breakpoints[i] : hi;
      if (c - a > widest) {
        widest = c - a;
        at = i;
      }
    }
    const double a = at == 0 ? lo : table.breakpoints[at - 1];
    const double c =
        at < table.breakpoints.size() ? table.breakpoints[at] : hi;
    const double mid = 0.5 * (a + c);
    table.breakpoints.insert(table.breakpoints.begin() + static_cast<std::ptrdiff_t>(at), mid);
    table.slopes.insert(table.slopes.begin() + static_cast<std::ptrdiff_t>(at), table.slopes[at]);
    table.intercepts.insert(table.intercepts.begin() + static_cast<std::ptrdiff_t>(at),
                            table.intercepts[at]);
  }
  // Too many knots inside the range (can happen when entries < hidden+1 by
  // user request): merge the narrowest segments.
  while (table.entries() > entries) {
    double narrowest = 1e300;
    std::size_t at = 0;  // breakpoint index to remove
    for (std::size_t i = 0; i < table.breakpoints.size(); ++i) {
      const double a = i == 0 ? lo : table.breakpoints[i - 1];
      const double width = table.breakpoints[i] - a;
      if (width < narrowest) {
        narrowest = width;
        at = i;
      }
    }
    table.breakpoints.erase(table.breakpoints.begin() + static_cast<std::ptrdiff_t>(at));
    table.slopes.erase(table.slopes.begin() + static_cast<std::ptrdiff_t>(at));
    table.intercepts.erase(table.intercepts.begin() + static_cast<std::ptrdiff_t>(at));
  }
  table.validate();
  return table;
}

NnLutFitResult fit_nn_lut(const NnLutConfig& config) {
  config.validate();
  const OpInfo& info = op_info(config.op);
  Rng rng(config.seed);

  const int h = config.entries - 1;
  NnLutNetwork net;
  net.w.assign(static_cast<std::size_t>(h), 1.0);
  net.c.resize(static_cast<std::size_t>(h));
  net.v.resize(static_cast<std::size_t>(h));
  // Knots spread uniformly across the range; small random output weights.
  const double span = config.range_hi - config.range_lo;
  for (int j = 0; j < h; ++j) {
    const double t = config.range_lo +
                     span * (static_cast<double>(j) + 1.0) /
                         (static_cast<double>(h) + 1.0);
    net.c[static_cast<std::size_t>(j)] = -t;
    net.v[static_cast<std::size_t>(j)] = rng.normal(0.0, 0.1);
  }
  net.d = info.f(config.range_lo);

  // Training data: uniform samples over [Rn, Rp] as in [11].
  std::vector<double> xs(static_cast<std::size_t>(config.samples));
  std::vector<double> ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(config.range_lo, config.range_hi);
    ys[i] = info.f(xs[i]);
  }

  AdamState aw(net.w.size()), ac(net.c.size()), av(net.v.size()), ad(1);
  std::vector<double> gw(net.w.size()), gc(net.c.size()), gv(net.v.size());
  std::vector<double> gd(1);
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  int step = 0;
  double epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    // Cosine learning-rate decay stabilizes the final knot positions.
    const double lr = config.learning_rate *
                      0.5 * (1.0 + std::cos(M_PI * epoch / config.epochs));
    epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config.batch_size));
      const double inv_n = 1.0 / static_cast<double>(end - start);
      std::fill(gw.begin(), gw.end(), 0.0);
      std::fill(gc.begin(), gc.end(), 0.0);
      std::fill(gv.begin(), gv.end(), 0.0);
      gd[0] = 0.0;
      for (std::size_t idx = start; idx < end; ++idx) {
        const double x = xs[order[idx]];
        const double y = ys[order[idx]];
        const double pred = net.forward(x);
        const double err = pred - y;
        epoch_loss += err * err * inv_n;
        const double g = 2.0 * err * inv_n;
        gd[0] += g;
        for (std::size_t j = 0; j < net.w.size(); ++j) {
          const double z = net.w[j] * x + net.c[j];
          if (z > 0.0) {
            gv[j] += g * z;
            gw[j] += g * net.v[j] * x;
            gc[j] += g * net.v[j];
          }
        }
      }
      ++step;
      adam_step(net.w, gw, aw, lr, step);
      adam_step(net.c, gc, ac, lr, step);
      adam_step(net.v, gv, av, lr, step);
      std::vector<double> dvec{net.d};
      adam_step(dvec, gd, ad, lr, step);
      net.d = dvec[0];
    }
  }

  NnLutFitResult result;
  result.config = config;
  result.network = net;
  result.final_train_loss =
      epoch_loss / std::ceil(static_cast<double>(config.samples) /
                             static_cast<double>(config.batch_size));
  result.fp_table =
      extract_pwl(net, config.range_lo, config.range_hi, config.entries);
  result.fxp_table = result.fp_table.rounded_to_fxp(config.lambda);

  const FitGrid grid = FitGrid::make(info.f, config.range_lo, config.range_hi,
                                     config.grid_step);
  result.fp_mse = grid.mse_of(result.fp_table);
  result.fxp_mse = grid.mse_of(result.fxp_table);
  return result;
}

}  // namespace gqa
