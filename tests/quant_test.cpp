// Tests for the quantization substrate: Eq. 2 quantizer, power-of-two
// scales, range calibration, and dyadic requantization.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/calibration.h"
#include "quant/quant_params.h"
#include "quant/requant.h"
#include "util/contracts.h"

namespace gqa {
namespace {

class QuantRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfScale) {
  const QuantParams qp{GetParam(), 8, true};
  for (double x = -3.9; x <= 3.9; x += 0.0173) {
    const double back = qp.fake_quantize(x);
    if (std::abs(x / qp.scale) < 126.0) {  // away from clipping
      EXPECT_LE(std::abs(back - x), qp.scale / 2 + 1e-12) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, QuantRoundTrip,
                         ::testing::Values(1.0, 0.5, 0.125, 0.03125, 0.031));

TEST(QuantParams, ClipsToCodeRange) {
  const QuantParams qp{0.5, 8, true};
  EXPECT_EQ(qp.quantize(1000.0), 127);
  EXPECT_EQ(qp.quantize(-1000.0), -128);
  const QuantParams uq{0.5, 8, false};
  EXPECT_EQ(uq.quantize(-3.0), 0);
  EXPECT_EQ(uq.quantize(1000.0), 255);
}

TEST(QuantParams, RoundsToNearest) {
  const QuantParams qp{1.0, 8, true};
  EXPECT_EQ(qp.quantize(2.4), 2);
  EXPECT_EQ(qp.quantize(2.5), 3);   // ties away from zero
  EXPECT_EQ(qp.quantize(-2.5), -3);
}

TEST(QuantParams, Po2Detection) {
  EXPECT_TRUE((QuantParams{0.25, 8, true}).scale_is_po2());
  EXPECT_EQ((QuantParams{0.25, 8, true}).po2_exponent(), -2);
  EXPECT_FALSE((QuantParams{0.3, 8, true}).scale_is_po2());
  EXPECT_THROW((QuantParams{0.3, 8, true}).po2_exponent(), ContractViolation);
}

TEST(QuantParams, BatchHelpers) {
  const QuantParams qp{0.5, 8, true};
  const std::vector<double> xs = {0.6, -1.2, 3.9};
  const auto qs = qp.quantize(xs);
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_EQ(qs[0], 1);
  EXPECT_EQ(qs[1], -2);
  const auto back = qp.dequantize(qs);
  EXPECT_DOUBLE_EQ(back[2], 4.0);
}

TEST(MakePo2Params, SnapsToNearestPowerOfTwo) {
  EXPECT_DOUBLE_EQ(make_po2_params(0.3, 8).scale, 0.25);
  EXPECT_DOUBLE_EQ(make_po2_params(0.2, 8).scale, 0.25);
  EXPECT_DOUBLE_EQ(make_po2_params(0.1, 8).scale, 0.125);
  EXPECT_THROW(make_po2_params(0.0, 8), ContractViolation);
  EXPECT_THROW(make_po2_params(-1.0, 8), ContractViolation);
}

TEST(SymmetricScale, MapsAmaxToQmax) {
  EXPECT_DOUBLE_EQ(symmetric_scale(12.7, 8), 0.1);
  EXPECT_THROW(symmetric_scale(0.0, 8), ContractViolation);
}

// ----------------------------------------------------------- calibration --

TEST(RangeObserver, TracksMinMax) {
  RangeObserver obs;
  EXPECT_TRUE(obs.empty());
  EXPECT_THROW(obs.min(), ContractViolation);
  obs.observe(1.5);
  obs.observe(-2.25);
  obs.observe(0.5);
  EXPECT_DOUBLE_EQ(obs.min(), -2.25);
  EXPECT_DOUBLE_EQ(obs.max(), 1.5);
  EXPECT_DOUBLE_EQ(obs.amax(), 2.25);
  EXPECT_EQ(obs.count(), 3u);
}

TEST(RangeObserver, SpanOverloads) {
  RangeObserver obs;
  const std::vector<float> values = {0.25f, -3.5f, 1.0f};
  obs.observe(std::span<const float>(values));
  EXPECT_DOUBLE_EQ(obs.amax(), 3.5);
}

TEST(RangeObserver, RejectsNonFinite) {
  RangeObserver obs;
  EXPECT_THROW(obs.observe(std::nan("")), ContractViolation);
}

TEST(RangeObserver, MakeParamsCoversRange) {
  RangeObserver obs;
  obs.observe(-3.0);
  obs.observe(2.0);
  const QuantParams qp = obs.make_params(8);
  EXPECT_DOUBLE_EQ(qp.scale, 3.0 / 127.0);
  const QuantParams po2 = obs.make_po2(8);
  EXPECT_TRUE(po2.scale_is_po2());
  // The snapped scale never clips the observed range.
  EXPECT_GE(po2.scale * 127.0, 3.0);
  EXPECT_LE(po2.scale, 2.0 * qp.scale + 1e-12);
}

// --------------------------------------------------------------- requant --

TEST(Requantizer, MatchesExactRatio) {
  const QuantParams out{0.1, 8, true};
  const Requantizer rq(0.004, out);
  EXPECT_NEAR(rq.exact_ratio(), 0.04, 1e-12);
  for (std::int64_t acc : {-2500LL, -100LL, 0LL, 99LL, 3000LL}) {
    const double exact = static_cast<double>(acc) * 0.04;
    const double got = static_cast<double>(rq.apply(acc));
    EXPECT_NEAR(got, std::clamp(exact, -128.0, 127.0), 0.51 + std::abs(exact) * 1e-4);
  }
}

TEST(Requantizer, SaturatesAtOutputWidth) {
  const Requantizer rq(1.0, QuantParams{0.01, 8, true});
  EXPECT_EQ(rq.apply(1000), 127);
  EXPECT_EQ(rq.apply(-1000), -128);
}

TEST(Requantizer, RejectsInvalidScales) {
  EXPECT_THROW(Requantizer(0.0, QuantParams{1.0, 8, true}), ContractViolation);
  EXPECT_THROW(Requantizer(-1.0, QuantParams{1.0, 8, true}), ContractViolation);
}

}  // namespace
}  // namespace gqa
