// Deterministic random number generation. Every stochastic component in the
// library (genetic search, NN-LUT training, weight init, scene synthesis)
// takes an explicit seed so that experiment tables are bit-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/contracts.h"

namespace gqa {

/// Seeded pseudo-random source wrapping std::mt19937_64.
///
/// The class is cheap to copy; independent streams are derived with fork().
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    GQA_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double canonical() { return uniform(0.0, 1.0); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    GQA_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    GQA_EXPECTS(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Normal sample N(mean, stddev).
  double normal(double mean, double stddev) {
    GQA_EXPECTS(stddev >= 0.0);
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    GQA_EXPECTS(p >= 0.0 && p <= 1.0);
    return canonical() < p;
  }

  template <typename T>
  void shuffle(std::span<T> values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// Derives an independent child stream; deterministic in (seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    // SplitMix64 finalizer decorrelates parent seed and salt.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace gqa
