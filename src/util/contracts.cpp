#include "util/contracts.h"

#include <sstream>

namespace gqa::detail {

void contract_fail(const char* kind, const char* condition, const char* file,
                   int line, const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << condition << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw ContractViolation(os.str());
}

}  // namespace gqa::detail
