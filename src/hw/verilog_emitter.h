// Synthesizable Verilog generation for the Figure 1(b) integer pwl unit —
// the RTL artifact the paper synthesizes with Design Compiler. The emitted
// module is purely structural-behavioural (comparator chain, LUT case
// statements, multiply/shift/add) with a single registered output stage.
#pragma once

#include <string>

#include "hw/pwl_unit_design.h"
#include "pwl/quantized_table.h"

namespace gqa::hw {

struct VerilogOptions {
  std::string module_name = "gqa_pwl_unit";
  bool registered_output = true;
  /// Emit the LUT parameter ROM contents from a fitted table; when false
  /// the parameters become input ports (a programmable unit).
  bool hardwired_parameters = true;
};

/// Emits a module for a quantized table (hardwired parameters) or a
/// programmable unit with the table's geometry.
[[nodiscard]] std::string emit_pwl_unit(const QuantizedPwlTable& table,
                                        const VerilogOptions& options = {});

/// Emits a testbench driving every input code through the unit and
/// checking against precomputed outputs (self-checking).
[[nodiscard]] std::string emit_testbench(const QuantizedPwlTable& table,
                                         const VerilogOptions& options = {});

}  // namespace gqa::hw
