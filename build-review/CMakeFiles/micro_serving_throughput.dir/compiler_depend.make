# Empty compiler generated dependencies file for micro_serving_throughput.
# This may be replaced when dependencies are built.
