#include "tfm/workspace.h"

#include <array>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

namespace gqa::tfm {

namespace {

constexpr std::size_t kSizeClasses = 48;

/// Power-of-two size class: the bit-width of n-1 (ceil log2), so every n
/// in (2^(k-1), 2^k] maps to class k. Class 0 holds n <= 1.
std::size_t size_class(std::size_t n) {
  const std::size_t cls = n <= 1 ? 0 : std::bit_width(n - 1);
  return cls < kSizeClasses ? cls : kSizeClasses - 1;
}

constexpr std::size_t kMaxPerClass = 8;
// Buffers below this element count skip the pool entirely: the allocator's
// thread-cache serves them in tens of nanoseconds, so pooling them buys
// nothing and the bucket bookkeeping would be pure overhead. The pool's
// win lives in the large activation buffers (mmap-threshold regime).
constexpr std::size_t kMinPooledElems = 2048;

/// Pops a buffer from the request's size class (or starts fresh) and
/// zero-fills it to `n` elements. A class's buffers converge to the
/// capacity of its largest request, so steady-state acquires reuse
/// capacity and never touch the allocator.
template <typename T, typename Stats>
std::vector<T> refill(
    std::array<std::vector<std::vector<T>>, kSizeClasses>& pool,
    std::size_t n, Stats& stats) {
  if (n < kMinPooledElems) return std::vector<T>(n, T{});
  ++stats.acquires;
  auto& bucket = pool[size_class(n)];
  std::vector<T> storage;
  if (!bucket.empty()) {
    storage = std::move(bucket.back());
    bucket.pop_back();
    if (storage.capacity() < n) ++stats.grows;
  } else {
    ++stats.fresh;
  }
  storage.assign(n, T{});
  return storage;
}

template <typename T>
void park(std::array<std::vector<std::vector<T>>, kSizeClasses>& pool,
          std::vector<T>&& v) {
  if (v.capacity() < kMinPooledElems) return;  // tcache territory
  // Park by capacity so the class advertises what the buffer can serve
  // without reallocating. Full classes drop the buffer (footprint bound).
  auto& bucket = pool[size_class(v.capacity())];
  if (bucket.size() >= kMaxPerClass) return;
  bucket.push_back(std::move(v));
}

template <typename T>
std::size_t bucket_count(
    const std::array<std::vector<std::vector<T>>, kSizeClasses>& pool) {
  std::size_t count = 0;
  for (const auto& bucket : pool) count += bucket.size();
  return count;
}

}  // namespace

Tensor Workspace::tensor(Shape shape) {
  const auto n = static_cast<std::size_t>(shape.numel());
  return Tensor(std::move(shape), refill(fp_, n, stats_));
}

QTensor Workspace::qtensor(Shape shape, const QuantParams& qp) {
  const auto n = static_cast<std::size_t>(shape.numel());
  return QTensor(std::move(shape), qp, refill(i32_, n, stats_));
}

std::vector<std::int64_t> Workspace::i64(std::size_t n) {
  return refill(i64_, n, stats_);
}

std::vector<double> Workspace::f64(std::size_t n) {
  return refill(f64_, n, stats_);
}

void Workspace::release(Tensor&& t) { park(fp_, std::move(t).take_storage()); }

void Workspace::release(QTensor&& t) {
  park(i32_, std::move(t).take_storage());
}

void Workspace::release(std::vector<std::int64_t>&& v) {
  park(i64_, std::move(v));
}

void Workspace::release(std::vector<double>&& v) { park(f64_, std::move(v)); }

std::size_t Workspace::parked() const {
  return bucket_count(fp_) + bucket_count(i32_) + bucket_count(i64_) +
         bucket_count(f64_);
}

Workspace WorkspacePool::acquire() {
  MutexLock lock(mutex_);
  if (pool_.empty()) return Workspace{};
  Workspace ws = std::move(pool_.back());
  pool_.pop_back();
  return ws;
}

void WorkspacePool::release(Workspace&& ws) {
  MutexLock lock(mutex_);
  pool_.push_back(std::move(ws));
}

}  // namespace gqa::tfm
