// Figure 2(b): breakpoint-deviation analysis for EXP. A fitted breakpoint
// quantized per Eq. 3 shifts by up to S/2; the induced local error is far
// larger at S = 2^-1 than at S = 2^-3 (paper: 3.71e-3 vs 3.90e-4).
#include <cmath>

#include "bench_util.h"
#include "gqa/gqa_lut.h"
#include "pwl/fit_grid.h"

using namespace gqa;

int main() {
  std::printf("== Figure 2(b): breakpoint quantization analysis (EXP) ==\n");
  // GQA-LUT w/o RM fit, as in the paper's illustration.
  GqaConfig config = GqaConfig::preset(Op::kExp, 8, MutationKind::kGaussian);
  config.ga.seed = 0xF16B;
  const GqaFitResult fit = fit_gqa_lut(config);
  const OpInfo& info = op_info(Op::kExp);
  const FitGrid grid =
      FitGrid::make(info.f, info.range_lo, info.range_hi, 0.01);

  TablePrinter table({"Breakpoint", "S", "Quantized p~", "Deviation",
                      "Deployed MSE"});
  table.set_title("Fig. 2(b): Eq.-3 deviation of each breakpoint, EXP 8-entry");

  for (int s : {1, 3}) {
    const double scale = std::ldexp(1.0, -s);
    // Quantize all breakpoints at this scale; report the per-table MSE.
    PwlTable deployed = fit.fxp_table;
    for (std::size_t i = 0; i < deployed.breakpoints.size(); ++i) {
      deployed.breakpoints[i] =
          scale * std::round(deployed.breakpoints[i] / scale);
    }
    // Nudge ties apart (coincident quantized breakpoints).
    for (std::size_t i = 1; i < deployed.breakpoints.size(); ++i) {
      if (deployed.breakpoints[i] <= deployed.breakpoints[i - 1]) {
        deployed.breakpoints[i] = deployed.breakpoints[i - 1] + 1e-9;
      }
    }
    const double mse = grid.mse_of(deployed);
    for (std::size_t i = 0; i < fit.fxp_table.breakpoints.size(); ++i) {
      const double p = fit.fxp_table.breakpoints[i];
      const double pq = scale * std::round(p / scale);
      table.add_row({format("p%zu = %+.4f", i, p), pow2_label(-s),
                     format("%+.4f", pq), format("%+.4f", pq - p),
                     i == 0 ? sci(mse) : ""});
    }
    table.add_separator();
  }
  bench::emit(table, "fig2b");

  std::printf("\nShape check: continuum MSE with quantized breakpoints\n");
  for (int s : {1, 2, 3, 4}) {
    const double scale = std::ldexp(1.0, -s);
    PwlTable deployed = fit.fxp_table;
    for (double& p : deployed.breakpoints) p = scale * std::round(p / scale);
    for (std::size_t i = 1; i < deployed.breakpoints.size(); ++i) {
      if (deployed.breakpoints[i] <= deployed.breakpoints[i - 1]) {
        deployed.breakpoints[i] = deployed.breakpoints[i - 1] + 1e-9;
      }
    }
    std::printf("  S = %-5s -> MSE %.3e %s\n", pow2_label(-s).c_str(),
                grid.mse_of(deployed),
                s == 1 ? "(paper: 3.71e-3)" : s == 3 ? "(paper: 3.90e-4)" : "");
  }
  return 0;
}
