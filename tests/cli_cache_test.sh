#!/usr/bin/env bash
# End-to-end test for the `gqa_lut_cli cache` subcommands, registered as
# the `cli_cache` ctest. Drives the full artifact lifecycle through the
# CLI: warm (fit + publish) -> hit -> verify-ok -> corrupt-on-disk ->
# verify-reports-corrupt (file preserved) -> --quarantine (renamed aside,
# never deleted) -> re-warm self-heals.
#
# $1 = path to the gqa_lut_cli binary.
set -u
cli="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fails=0

check() {
  local name="$1" want_code="$2" got_code="$3" pattern="$4" out="$5"
  if [ "$got_code" -ne "$want_code" ]; then
    echo "cli-cache: FAIL [$name] exit $got_code, wanted $want_code" >&2
    echo "$out" >&2
    fails=1
  elif [ -n "$pattern" ] && ! printf '%s\n' "$out" | grep -qE -- "$pattern"; then
    echo "cli-cache: FAIL [$name] output missing /$pattern/:" >&2
    echo "$out" >&2
    fails=1
  fi
}

# Cheap fit config so the test stays fast; the flags flow into the cache
# key, so both warms below address the same artifact.
warm="cache warm gelu --generations 2 --restarts 1 --entries 4 --dir $tmp"

out=$($cli $warm 2>&1); check cold-warm 0 $? 'fitted and published' "$out"
out=$($cli $warm 2>&1); check warm-hit 0 $? 'cache hit' "$out"

count=$(ls "$tmp"/*.gqa 2>/dev/null | wc -l)
if [ "$count" -ne 1 ]; then
  echo "cli-cache: FAIL expected exactly 1 artifact, found $count" >&2
  fails=1
fi
artifact=$(ls "$tmp"/*.gqa)

out=$($cli cache verify "$tmp" 2>&1)
check verify-ok 0 $? '1 valid, 0 corrupt, 0 quarantined' "$out"

# Flip one payload byte: the checksum must catch it.
printf 'X' | dd of="$artifact" bs=1 seek=40 conv=notrunc status=none

out=$($cli cache verify "$tmp" 2>&1)
check verify-corrupt 1 $? '0 valid, 1 corrupt, 0 quarantined' "$out"
if [ ! -f "$artifact" ]; then
  echo "cli-cache: FAIL verify without --quarantine moved the artifact" >&2
  fails=1
fi

out=$($cli cache verify "$tmp" --quarantine 2>&1)
check quarantine 1 $? '0 valid, 1 corrupt' "$out"
if [ -f "$artifact" ] || [ ! -f "$artifact.corrupt" ]; then
  echo "cli-cache: FAIL --quarantine did not rename the corrupt artifact" \
       "aside" >&2
  fails=1
fi

# Quarantined files are reported but do not fail the scan...
out=$($cli cache verify "$tmp" 2>&1)
check verify-after-quarantine 0 $? '0 valid, 0 corrupt, 1 quarantined' "$out"

# ...and a re-warm self-heals the vacated name, preserving the evidence.
out=$($cli $warm 2>&1); check reheal 0 $? 'fitted and published' "$out"
out=$($cli cache verify "$tmp" 2>&1)
check verify-healed 0 $? '1 valid, 0 corrupt, 1 quarantined' "$out"

if [ "$fails" -eq 0 ]; then
  echo "cli-cache: OK (warm, hit, verify, quarantine, self-heal)"
fi
exit $fails
