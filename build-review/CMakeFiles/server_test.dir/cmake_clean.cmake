file(REMOVE_RECURSE
  "CMakeFiles/server_test.dir/tests/server_test.cpp.o"
  "CMakeFiles/server_test.dir/tests/server_test.cpp.o.d"
  "server_test"
  "server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
