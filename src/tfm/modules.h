// Transformer building blocks with dual execution paths:
//   forward_fp  — float reference (also the calibration path)
//   forward_int — integer-only inference following the dyadic pipeline
//                 (INT8 activation codes, INT32/64 accumulators, dyadic
//                 requantization), with non-linear ops served by a
//                 NonlinearProvider (exact or bit-accurate pwl kernels).
//
// Lifecycle: construct (random weights) -> calibrate(...) on sample inputs
// (runs the fp path, recording activation ranges) -> freeze(in_qp) (builds
// integer weights/requantizers, returns the output QuantParams) ->
// forward_int(...).
//
// Every forward takes an optional ThreadPool*: nullptr (the default) runs
// serially, a pool fans the work out over rows / output channels / heads.
// Each parallel index writes disjoint output slots with the serial
// reduction order preserved inside it, so threaded results are
// bit-identical to serial at any thread count. Calibration stays serial
// (range observers are order-sensitive state).
//
// Every forward also takes an optional Workspace*: layer outputs and
// staging buffers then come from (and return to) reusable pooled storage,
// so a serving loop stops re-mallocing every intermediate per image.
// Results are bit-identical with or without a workspace. The workspace is
// only ever touched by the calling thread (one workspace per thread, never
// shared — see workspace.h); fan-out lambdas that run on pool workers use
// it only when the fan-out is inline (null/single-lane pool).
//
// Row/channel fan-outs carry a granularity floor (pooled_for min_per_lane):
// when a tensor is too small for the per-task work to amortize dispatch,
// the loop runs inline, so threading can never lose to serial on tiny
// layers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "quant/calibration.h"
#include "quant/requant.h"
#include "tfm/nonlinear_provider.h"
#include "tfm/tensor.h"
#include "tfm/workspace.h"
#include "util/thread_pool.h"

namespace gqa::tfm {

/// Shared quantization policy. Only tensors consumed by non-linear pwl
/// units carry power-of-two scales (the paper's constraint, §3.1/§4.2);
/// all other activations use real min-max scales and weight scales stay
/// real-valued, so the dyadic requantizers are exercised throughout.
struct QuantPolicy {
  int act_bits = 8;
};

// ---------------------------------------------------------------------------

class Linear {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  // {N,in}->{N,out}; threads over rows.
  [[nodiscard]] Tensor forward_fp(const Tensor& x,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& x);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  [[nodiscard]] QTensor forward_int(const QTensor& x,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

  [[nodiscard]] int in_features() const { return in_; }
  [[nodiscard]] int out_features() const { return out_; }
  [[nodiscard]] Tensor& weights() { return w_; }
  [[nodiscard]] Tensor& bias() { return b_; }
  [[nodiscard]] double weight_scale() const { return w_scale_; }
  /// Forces a power-of-two output scale (required when a pwl unit consumes
  /// this output).
  void set_po2_output(bool po2) { po2_out_ = po2; }

 private:
  int in_ = 0, out_ = 0;
  bool po2_out_ = false;
  Tensor w_;  ///< {out, in}
  Tensor b_;  ///< {out}
  RangeObserver out_obs_;
  std::vector<std::int8_t> wq_;
  std::vector<std::int32_t> bq_;
  double w_scale_ = 0.0;
  QuantParams in_qp_, out_qp_;
  Requantizer rq_;
};

// ---------------------------------------------------------------------------

class Conv2d {
 public:
  Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad, Rng& rng,
         bool depthwise = false);

  // {C,H,W}; threads over output channels.
  [[nodiscard]] Tensor forward_fp(const Tensor& x,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& x);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  [[nodiscard]] QTensor forward_int(const QTensor& x,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

  [[nodiscard]] int out_channels() const { return out_ch_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] Tensor& weights() { return w_; }
  [[nodiscard]] Tensor& bias() { return b_; }
  /// Forces a power-of-two output scale (required when a pwl unit consumes
  /// this output).
  void set_po2_output(bool po2) { po2_out_ = po2; }

 private:
  int in_ch_ = 0, out_ch_ = 0, kernel_ = 0, stride_ = 1, pad_ = 0;
  bool po2_out_ = false;
  bool depthwise_ = false;
  Tensor w_;  ///< {out, in_per_group, k, k}
  Tensor b_;  ///< {out}
  RangeObserver out_obs_;
  std::vector<std::int8_t> wq_;
  std::vector<std::int32_t> bq_;
  double w_scale_ = 0.0;
  QuantParams in_qp_, out_qp_;
  Requantizer rq_;
};

// ---------------------------------------------------------------------------

/// LayerNorm over the last dimension of a {N, D} token matrix. The integer
/// path computes exact integer moments and uses the RSQRT kernel with the
/// Table 2 multi-range scaling (§3.1); a power-of-4 pre-normalization keeps
/// arbitrary variance magnitudes inside the multi-range span.
class LayerNorm {
 public:
  LayerNorm(int dim, Rng& rng);

  [[nodiscard]] Tensor forward_fp(const Tensor& x,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& x);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  /// Threads over rows; the batched RSQRT call stays a single span so the
  /// result is bit-identical to serial.
  [[nodiscard]] QTensor forward_int(const QTensor& x,
                                    const NonlinearProvider& nl,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

  [[nodiscard]] Tensor& gamma() { return gamma_; }
  [[nodiscard]] Tensor& beta() { return beta_; }

 private:
  int dim_ = 0;
  Tensor gamma_, beta_;
  RangeObserver out_obs_;
  QuantParams in_qp_, out_qp_;
};

// ---------------------------------------------------------------------------

/// Row-wise Softmax. Integer path: integer max-subtraction -> EXP pwl on
/// INT8 codes -> exact integer accumulation -> DIV pwl with multi-range
/// scaling -> unsigned 8-bit probabilities with scale 2^-7.
class Softmax {
 public:
  /// Output quantization of the probabilities (fixed by design).
  [[nodiscard]] static QuantParams prob_params() {
    return QuantParams{std::ldexp(1.0, -7), 8, false};
  }

  [[nodiscard]] static Tensor forward_fp(const Tensor& rows,
                                         ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr);
  /// `rows` must carry a power-of-two scale. Threads over rows.
  [[nodiscard]] static QTensor forward_int(const QTensor& rows,
                                           const NonlinearProvider& nl,
                                           ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr);
};

// ---------------------------------------------------------------------------

/// Elementwise activation (GELU or HSWISH) through the provider.
class Activation {
 public:
  Activation(Op op) : op_(op) {}

  [[nodiscard]] Tensor forward_fp(const Tensor& x,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& x);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  /// Threads over leading-dimension rows.
  [[nodiscard]] QTensor forward_int(const QTensor& x,
                                    const NonlinearProvider& nl,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

 private:
  Op op_;
  RangeObserver out_obs_;
  QuantParams in_qp_, out_qp_;
};

// ---------------------------------------------------------------------------

/// Integer-safe residual add: both operands are requantized onto the output
/// scale with dyadic multipliers, then summed with saturation.
class ResidualAdd {
 public:
  [[nodiscard]] Tensor forward_fp(const Tensor& a, const Tensor& b,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& a, const Tensor& b);
  QuantParams freeze(const QuantParams& a_qp, const QuantParams& b_qp,
                     const QuantPolicy& policy);
  [[nodiscard]] QTensor forward_int(const QTensor& a, const QTensor& b,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

 private:
  RangeObserver out_obs_;
  QuantParams a_qp_, b_qp_, out_qp_;
  Requantizer rq_a_, rq_b_;
};

// ---------------------------------------------------------------------------

/// Segformer-style efficient multi-head self-attention with spatial
/// reduction of K/V by a strided convolution (reduction ratio R).
class AttentionSR {
 public:
  AttentionSR(int dim, int heads, int sr_ratio, Rng& rng);

  [[nodiscard]] Tensor forward_fp(const Tensor& tokens, int h, int w,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& tokens, int h, int w);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  /// Threads over heads (the Q/K/V/proj linears thread over rows).
  [[nodiscard]] QTensor forward_int(const QTensor& tokens, int h, int w,
                                    const NonlinearProvider& nl,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

 private:
  int dim_ = 0, heads_ = 0, sr_ = 1;
  Linear q_lin_, k_lin_, v_lin_, proj_;
  std::unique_ptr<Conv2d> sr_conv_;
  RangeObserver score_obs_, attn_obs_;
  QuantParams score_qp_, attn_qp_;
  Requantizer rq_score_, rq_attn_;
};

// ---------------------------------------------------------------------------

/// EfficientViT-style ReLU linear attention: out = (relu(Q)·(relu(K)ᵀV)) /
/// (relu(Q)·(relu(K)ᵀ1)). The normalizer uses the DIV kernel; a calibrated
/// power-of-two pre-scale keeps the denominator inside the Table 2 span.
class LinearAttention {
 public:
  LinearAttention(int dim, Rng& rng);

  [[nodiscard]] Tensor forward_fp(const Tensor& tokens,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& tokens);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  /// Threads over output rows (the shared KᵀV/Kᵀ1 reduction stays serial).
  [[nodiscard]] QTensor forward_int(const QTensor& tokens,
                                    const NonlinearProvider& nl,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

 private:
  int dim_ = 0;
  Linear q_lin_, k_lin_, v_lin_, proj_;
  RangeObserver den_obs_, out_obs_;
  QuantParams out_qp_;
  int den_prescale_exp_ = 0;  ///< denominator pre-scale 2^g into DIV range
};

// ---------------------------------------------------------------------------

/// Segformer Mix-FFN: Linear -> 3x3 depthwise conv -> GELU -> Linear.
class MixFfn {
 public:
  MixFfn(int dim, int hidden, Rng& rng);

  [[nodiscard]] Tensor forward_fp(const Tensor& tokens, int h, int w,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& tokens, int h, int w);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  [[nodiscard]] QTensor forward_int(const QTensor& tokens, int h, int w,
                                    const NonlinearProvider& nl,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

 private:
  Linear fc1_, fc2_;
  Conv2d dw_;
  Activation act_;
};

// ---------------------------------------------------------------------------

/// MobileNet-style inverted bottleneck with HSWISH activations
/// (EfficientViT building block). Residual when in==out and stride 1.
class MbConv {
 public:
  MbConv(int in_ch, int out_ch, int expand, int stride, Rng& rng);

  [[nodiscard]] Tensor forward_fp(const Tensor& x,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;
  Tensor calibrate(const Tensor& x);
  QuantParams freeze(const QuantParams& in_qp, const QuantPolicy& policy);
  [[nodiscard]] QTensor forward_int(const QTensor& x,
                                    const NonlinearProvider& nl,
                                    ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

 private:
  bool residual_ = false;
  Conv2d expand_, dw_, project_;
  Activation act1_, act2_;
  ResidualAdd add_;
};

}  // namespace gqa::tfm
