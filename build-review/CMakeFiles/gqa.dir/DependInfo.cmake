
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approximator.cpp" "CMakeFiles/gqa.dir/src/core/approximator.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/core/approximator.cpp.o.d"
  "/root/repo/src/eval/engine.cpp" "CMakeFiles/gqa.dir/src/eval/engine.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/eval/engine.cpp.o.d"
  "/root/repo/src/eval/miou.cpp" "CMakeFiles/gqa.dir/src/eval/miou.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/eval/miou.cpp.o.d"
  "/root/repo/src/eval/protocol.cpp" "CMakeFiles/gqa.dir/src/eval/protocol.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/eval/protocol.cpp.o.d"
  "/root/repo/src/eval/scene.cpp" "CMakeFiles/gqa.dir/src/eval/scene.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/eval/scene.cpp.o.d"
  "/root/repo/src/eval/segtask.cpp" "CMakeFiles/gqa.dir/src/eval/segtask.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/eval/segtask.cpp.o.d"
  "/root/repo/src/eval/server.cpp" "CMakeFiles/gqa.dir/src/eval/server.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/eval/server.cpp.o.d"
  "/root/repo/src/genetic/genetic.cpp" "CMakeFiles/gqa.dir/src/genetic/genetic.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/genetic/genetic.cpp.o.d"
  "/root/repo/src/gqa/gqa_lut.cpp" "CMakeFiles/gqa.dir/src/gqa/gqa_lut.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/gqa/gqa_lut.cpp.o.d"
  "/root/repo/src/gqa/multirange.cpp" "CMakeFiles/gqa.dir/src/gqa/multirange.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/gqa/multirange.cpp.o.d"
  "/root/repo/src/gqa/objective.cpp" "CMakeFiles/gqa.dir/src/gqa/objective.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/gqa/objective.cpp.o.d"
  "/root/repo/src/gqa/rounding_mutation.cpp" "CMakeFiles/gqa.dir/src/gqa/rounding_mutation.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/gqa/rounding_mutation.cpp.o.d"
  "/root/repo/src/hw/components.cpp" "CMakeFiles/gqa.dir/src/hw/components.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/hw/components.cpp.o.d"
  "/root/repo/src/hw/pwl_unit_design.cpp" "CMakeFiles/gqa.dir/src/hw/pwl_unit_design.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/hw/pwl_unit_design.cpp.o.d"
  "/root/repo/src/hw/verilog_emitter.cpp" "CMakeFiles/gqa.dir/src/hw/verilog_emitter.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/hw/verilog_emitter.cpp.o.d"
  "/root/repo/src/kernel/int_pwl_unit.cpp" "CMakeFiles/gqa.dir/src/kernel/int_pwl_unit.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/kernel/int_pwl_unit.cpp.o.d"
  "/root/repo/src/kernel/multirange_unit.cpp" "CMakeFiles/gqa.dir/src/kernel/multirange_unit.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/kernel/multirange_unit.cpp.o.d"
  "/root/repo/src/nnlut/nn_lut.cpp" "CMakeFiles/gqa.dir/src/nnlut/nn_lut.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/nnlut/nn_lut.cpp.o.d"
  "/root/repo/src/numerics/dyadic.cpp" "CMakeFiles/gqa.dir/src/numerics/dyadic.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/numerics/dyadic.cpp.o.d"
  "/root/repo/src/numerics/fxp.cpp" "CMakeFiles/gqa.dir/src/numerics/fxp.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/numerics/fxp.cpp.o.d"
  "/root/repo/src/numerics/nonlinear.cpp" "CMakeFiles/gqa.dir/src/numerics/nonlinear.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/numerics/nonlinear.cpp.o.d"
  "/root/repo/src/pwl/fit_grid.cpp" "CMakeFiles/gqa.dir/src/pwl/fit_grid.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/pwl/fit_grid.cpp.o.d"
  "/root/repo/src/pwl/pwl_table.cpp" "CMakeFiles/gqa.dir/src/pwl/pwl_table.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/pwl/pwl_table.cpp.o.d"
  "/root/repo/src/pwl/quantized_table.cpp" "CMakeFiles/gqa.dir/src/pwl/quantized_table.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/pwl/quantized_table.cpp.o.d"
  "/root/repo/src/pwl/serialize.cpp" "CMakeFiles/gqa.dir/src/pwl/serialize.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/pwl/serialize.cpp.o.d"
  "/root/repo/src/quant/calibration.cpp" "CMakeFiles/gqa.dir/src/quant/calibration.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/quant/calibration.cpp.o.d"
  "/root/repo/src/quant/quant_params.cpp" "CMakeFiles/gqa.dir/src/quant/quant_params.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/quant/quant_params.cpp.o.d"
  "/root/repo/src/quant/requant.cpp" "CMakeFiles/gqa.dir/src/quant/requant.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/quant/requant.cpp.o.d"
  "/root/repo/src/tfm/models/efficientvit.cpp" "CMakeFiles/gqa.dir/src/tfm/models/efficientvit.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/tfm/models/efficientvit.cpp.o.d"
  "/root/repo/src/tfm/models/segformer.cpp" "CMakeFiles/gqa.dir/src/tfm/models/segformer.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/tfm/models/segformer.cpp.o.d"
  "/root/repo/src/tfm/modules.cpp" "CMakeFiles/gqa.dir/src/tfm/modules.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/tfm/modules.cpp.o.d"
  "/root/repo/src/tfm/nonlinear_provider.cpp" "CMakeFiles/gqa.dir/src/tfm/nonlinear_provider.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/tfm/nonlinear_provider.cpp.o.d"
  "/root/repo/src/tfm/probe.cpp" "CMakeFiles/gqa.dir/src/tfm/probe.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/tfm/probe.cpp.o.d"
  "/root/repo/src/tfm/tensor.cpp" "CMakeFiles/gqa.dir/src/tfm/tensor.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/tfm/tensor.cpp.o.d"
  "/root/repo/src/tfm/workspace.cpp" "CMakeFiles/gqa.dir/src/tfm/workspace.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/tfm/workspace.cpp.o.d"
  "/root/repo/src/util/contracts.cpp" "CMakeFiles/gqa.dir/src/util/contracts.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/util/contracts.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/gqa.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/env.cpp" "CMakeFiles/gqa.dir/src/util/env.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/util/env.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/gqa.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/gqa.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "CMakeFiles/gqa.dir/src/util/table_printer.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/util/table_printer.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/gqa.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/gqa.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
