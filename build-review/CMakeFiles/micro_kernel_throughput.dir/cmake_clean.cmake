file(REMOVE_RECURSE
  "CMakeFiles/micro_kernel_throughput.dir/bench/micro_kernel_throughput.cpp.o"
  "CMakeFiles/micro_kernel_throughput.dir/bench/micro_kernel_throughput.cpp.o.d"
  "bench/micro_kernel_throughput"
  "bench/micro_kernel_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernel_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
