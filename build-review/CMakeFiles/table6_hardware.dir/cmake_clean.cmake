file(REMOVE_RECURSE
  "CMakeFiles/table6_hardware.dir/bench/table6_hardware.cpp.o"
  "CMakeFiles/table6_hardware.dir/bench/table6_hardware.cpp.o.d"
  "bench/table6_hardware"
  "bench/table6_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
