# Empty compiler generated dependencies file for gqa_test.
# This may be replaced when dependencies are built.
