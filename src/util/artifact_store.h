// Content-addressed, crash-safe on-disk cache for fitted LUT artifacts.
//
// The ROADMAP's serve-from-artifact model needs fitted PWL params to be a
// durable artifact: fit once (offline or on first warm-up), reuse across
// deployments. This store is the persistence layer behind
// NonlinearProvider::warm_up_deployment()'s cache-first path (GQA_CACHE_DIR)
// and the `gqa_lut_cli cache` subcommands.
//
// Keying: an ArtifactKey is (kind, identity, format version) where
// `identity` canonically encodes everything the payload depends on — for
// approximator artifacts that is op, method, the full fit config, the bus
// width, and the deployment scale grid (see Approximator::cache_key). The
// filename is derived from the FNV-1a hash of the canonical key string, so
// a config change can never alias an old artifact.
//
// On-disk format (one file per artifact, "<kind>-<hash16>.gqa"):
//
//   <payload bytes>\n
//   GQA-ARTIFACT v<version> fnv1a=<16 hex> bytes=<payload size> key=<canonical>\n
//
// The single-line footer carries the checksum over the exact payload bytes,
// the payload length (so truncation is detected even when the truncated
// prefix happens to be well-formed), and the canonical key (so a file moved
// under the wrong name is rejected instead of decoded).
//
// Atomicity contract: publish() goes through write_file_atomic (write to a
// unique temp in the same directory → flush → atomic rename), so a reader
// never observes a torn artifact — it sees the old content, the new
// content, or a miss. Concurrent writers of the same key are last-writer-
// wins and idempotent (both write byte-identical content for a given key).
// A crash or injected `cache_write` fault before the rename leaves NO
// visible artifact and no leaked temp.
//
// Corruption handling: load() verifies the footer before returning payload
// bytes. A checksum/version/length/key mismatch quarantines the file —
// renamed to `<name>.corrupt` (uniquified, NEVER deleted, preserved for
// inspection) — and reports a miss, so the caller refits and publishes a
// fresh artifact over the now-vacant name: the cache self-heals. The strict
// read_verified() used by `cache verify` throws typed kArtifactCorrupt
// instead.
//
// Fault injection: load()/read_verified() carry the `cache_read` point
// (load degrades to a miss, read_verified throws kArtifactCorrupt);
// publish() inherits `cache_write` from write_file_atomic.
//
// Thread-safety: ArtifactStore is immutable after construction; all methods
// are safe from any thread (atomicity of the underlying filesystem rename
// is what makes concurrent publish/load of one key safe). process() and
// CacheScope follow the FaultScope contract: scope changes must not race
// in-flight cache operations — i.e. swap stores only between provider
// lifetimes in a test.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gqa {

/// FNV-1a 64-bit over raw bytes — the artifact checksum and key hash.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

/// Content address of one artifact. `identity` must be a canonical,
/// space-free encoding of everything the payload depends on.
struct ArtifactKey {
  std::string kind;      ///< artifact family, e.g. "approximator"
  std::string identity;  ///< canonical config string (no spaces/newlines)
  int format_version = 1;

  /// "<kind>|<identity>|v=<format_version>" — hashed for the filename and
  /// embedded verbatim in the footer.
  [[nodiscard]] std::string canonical() const;
  /// "<kind>-<16 hex of fnv1a(canonical)>.gqa"
  [[nodiscard]] std::string filename() const;
};

/// One row of a `cache verify` scan.
struct ArtifactStatus {
  enum class State {
    kValid,        ///< footer checks out
    kCorrupt,      ///< checksum/version/length/key mismatch or truncation
    kQuarantined,  ///< a preserved *.corrupt file from an earlier recovery
  };
  std::string filename;  ///< name within the store root
  State state = State::kValid;
  std::string detail;  ///< human-readable status ("ok", failure reason, ...)
};

class ArtifactStore {
 public:
  /// A store rooted at `root` (created on first publish).
  explicit ArtifactStore(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] std::string path_for(const ArtifactKey& key) const;

  /// Crash-safely publishes `payload` under `key` (see the atomicity
  /// contract above). Throws on I/O failure or an injected `cache_write`
  /// fault — in both cases no visible artifact is left behind.
  void publish(const ArtifactKey& key, const std::string& payload) const;

  /// Graceful load: the payload bytes exactly as published, or nullopt on
  /// miss, injected `cache_read` fault, or corruption — corrupt files are
  /// quarantined (renamed *.corrupt, preserved on disk) before the miss is
  /// reported, so the name is vacant for the self-healing re-publish.
  /// Never throws for a bad artifact.
  [[nodiscard]] std::optional<std::string> load(const ArtifactKey& key) const;

  /// Strict load for `cache verify` and tests: returns the payload or
  /// throws typed ServingError{kArtifactCorrupt}. Never quarantines.
  /// `filename` is resolved within the store root.
  [[nodiscard]] std::string read_verified(const std::string& filename) const;

  /// Scans every artifact under the root (lexicographic order): *.gqa
  /// files are footer-verified, *.corrupt files are reported as
  /// quarantined. With `quarantine` set, corrupt artifacts are renamed
  /// aside exactly as load() would.
  [[nodiscard]] std::vector<ArtifactStatus> verify_all(bool quarantine) const;

  /// The process-wide store configured from GQA_CACHE_DIR on first use
  /// (nullptr when unset/empty: caching disabled, fits stay in-process).
  [[nodiscard]] static std::shared_ptr<const ArtifactStore> process();

 private:
  friend class CacheScope;
  /// Swaps the process-wide store (test hook backing CacheScope).
  static std::shared_ptr<const ArtifactStore> exchange_process(
      std::shared_ptr<const ArtifactStore> next);

  std::string root_;
};

/// RAII process-cache override for tests, in the FaultScope shape: points
/// ArtifactStore::process() at `dir` ("" disables caching) on construction
/// and restores the previous store on destruction.
class CacheScope {
 public:
  explicit CacheScope(const std::string& dir);
  ~CacheScope();

  CacheScope(const CacheScope&) = delete;
  CacheScope& operator=(const CacheScope&) = delete;

 private:
  std::shared_ptr<const ArtifactStore> previous_;
};

}  // namespace gqa
