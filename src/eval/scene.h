// Synthetic urban-scene workload generator — the Cityscapes substitute
// (see DESIGN.md §3). Scenes are layered compositions of a sky/ground
// gradient, road stripes, and elliptical object blobs; every layer carries
// a semantic class with a class-conditioned colour palette, so the scene
// comes with dense ground-truth labels. Segmentation heads are trained on
// these labels (the reproduction's stand-in for Cityscapes fine-tuning)
// and mIoU is evaluated against them.
#pragma once

#include <cstdint>
#include <vector>

#include "tfm/tensor.h"

namespace gqa {

struct SceneOptions {
  int size = 64;          ///< square image side
  int num_classes = 19;   ///< Cityscapes-like label count
  int object_classes = 6; ///< distinct object categories (classes 3..3+n-1)
  int blobs = 6;          ///< object count
  double noise = 0.03;    ///< sensor noise stddev
  double color_jitter = 0.08;  ///< per-instance deviation from class colour
};

/// A scene with dense per-pixel ground truth (classes 0 = sky, 1 = ground,
/// 2 = road, 3.. = object categories).
struct LabeledScene {
  tfm::Tensor image;        ///< {3, size, size}, values in [-1, 1]
  std::vector<int> labels;  ///< size*size class ids, row-major
  int size = 0;
};

/// Deterministic class base colour in [-1, 1]^3.
void class_color(int cls, double rgb[3]);

/// Deterministic scene for (options, seed).
[[nodiscard]] LabeledScene make_scene(const SceneOptions& options,
                                      std::uint64_t seed);

/// A fixed set of `count` scenes (seeds salted from base_seed).
[[nodiscard]] std::vector<LabeledScene> make_scene_set(
    const SceneOptions& options, int count, std::uint64_t base_seed = 0xC17);

/// Nearest-neighbour downsample of a label map to h x w.
[[nodiscard]] std::vector<int> downsample_labels(const std::vector<int>& labels,
                                                 int size, int h, int w);

}  // namespace gqa
