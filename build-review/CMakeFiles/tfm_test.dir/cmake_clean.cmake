file(REMOVE_RECURSE
  "CMakeFiles/tfm_test.dir/tests/tfm_test.cpp.o"
  "CMakeFiles/tfm_test.dir/tests/tfm_test.cpp.o.d"
  "tfm_test"
  "tfm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
