# Empty compiler generated dependencies file for table6_hardware.
# This may be replaced when dependencies are built.
