// Composition of the two LUT-pwl hardware units of Figure 1 from the
// component library, with synthesis-style area/power reporting (Table 6).
#pragma once

#include <string>
#include <vector>

#include "hw/components.h"

namespace gqa::hw {

/// Datapath precision of input and LUT parameters (Table 6 rows).
enum class Precision { kInt8, kInt16, kInt32, kFp32 };

[[nodiscard]] std::string precision_name(Precision p);
[[nodiscard]] int precision_bits(Precision p);
[[nodiscard]] bool precision_is_float(Precision p);
[[nodiscard]] const std::vector<Precision>& all_precisions();

/// One pwl unit configuration.
struct PwlUnitSpec {
  Precision precision = Precision::kInt8;
  int entries = 8;
  /// INT units only: barrel-shifter reach for the b << s intercept align
  /// (Figure 1(b)); FP32 units skip the quantization stage entirely.
  int max_shift = 8;
};

/// Synthesis-style report.
struct SynthReport {
  PwlUnitSpec spec;
  double gate_equivalents = 0.0;
  double area_um2 = 0.0;
  double power_mw = 0.0;
  GeBreakdown breakdown;  ///< per component group, GE
};

/// The default technology library calibrated so that the INT8 / 8-entry
/// unit matches the paper's anchor (961 um², 0.40 mW @ 500 MHz).
[[nodiscard]] const TechLib& calibrated_tech();

/// Composes the unit and converts GE to area/power under `tech`.
[[nodiscard]] SynthReport synthesize(const PwlUnitSpec& spec,
                                     const TechLib& tech = calibrated_tech());

/// Renders a Table-6-style report for a set of specs.
[[nodiscard]] std::string format_report(const std::vector<SynthReport>& rows);

}  // namespace gqa::hw
