#include "tfm/models/segformer.h"

#include <cmath>

#include "tfm/probe.h"
#include "util/contracts.h"

namespace gqa::tfm {

namespace {

/// Nearest-neighbour upsample of a {C,h,w} map to {C,H,W} (integer-exact:
/// codes are replicated, scales unchanged).
template <typename T>
T upsample_nearest(const T& x, int out_h, int out_w) {
  const int c = x.shape()[0];
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  T y = [&] {
    if constexpr (std::is_same_v<T, QTensor>) {
      return QTensor(Shape{c, out_h, out_w}, x.params());
    } else {
      return Tensor(Shape{c, out_h, out_w});
    }
  }();
  for (int ch = 0; ch < c; ++ch) {
    for (int oy = 0; oy < out_h; ++oy) {
      const int iy = oy * h / out_h;
      for (int ox = 0; ox < out_w; ++ox) {
        const int ix = ox * w / out_w;
        y.at(ch, oy, ox) = x.at(ch, iy, ix);
      }
    }
  }
  return y;
}

}  // namespace

SegformerB0Like::SegformerB0Like(const SegformerConfig& config)
    : config_(config) {
  GQA_EXPECTS(config.dims.size() == 4 && config.heads.size() == 4 &&
              config.sr_ratios.size() == 4 && config.depths.size() == 4);
  GQA_EXPECTS(config.image_size % 32 == 0 || config.image_size % 16 == 0);
  Rng rng(config.seed);

  int in_ch = config.in_channels;
  for (int s = 0; s < 4; ++s) {
    Stage stage;
    const int dim = config.dims[static_cast<std::size_t>(s)];
    // Overlapped patch embedding: 7x7 stride 4 for stage 0, 3x3 stride 2
    // afterwards (Segformer design).
    if (s == 0) {
      stage.patch_embed = std::make_unique<Conv2d>(in_ch, dim, 7, 4, 3, rng);
    } else {
      stage.patch_embed = std::make_unique<Conv2d>(in_ch, dim, 3, 2, 1, rng);
    }
    stage.embed_norm = std::make_unique<LayerNorm>(dim, rng);
    for (int b = 0; b < config.depths[static_cast<std::size_t>(s)]; ++b) {
      Block block;
      block.ln1 = std::make_unique<LayerNorm>(dim, rng);
      block.attn = std::make_unique<AttentionSR>(
          dim, config.heads[static_cast<std::size_t>(s)],
          config.sr_ratios[static_cast<std::size_t>(s)], rng);
      block.ln2 = std::make_unique<LayerNorm>(dim, rng);
      block.ffn = std::make_unique<MixFfn>(dim, dim * config.mlp_ratio, rng);
      stage.blocks.push_back(std::move(block));
    }
    stage.out_norm = std::make_unique<LayerNorm>(dim, rng);
    stages_.push_back(std::move(stage));
    in_ch = dim;
  }

  for (int s = 0; s < 4; ++s) {
    head_linears_.push_back(std::make_unique<Linear>(
        config.dims[static_cast<std::size_t>(s)], config.decoder_dim, rng));
  }
  head_fuse_ = std::make_unique<Linear>(4 * config.decoder_dim,
                                        config.decoder_dim, rng);
  head_classifier_ =
      std::make_unique<Linear>(config.decoder_dim, config.num_classes, rng);
  head_rq_.resize(4);
}

Tensor SegformerB0Like::penultimate_fp(const Tensor& image,
                                       ThreadPool* pool) const {
  GQA_EXPECTS(image.shape().rank() == 3 &&
              image.shape()[0] == config_.in_channels);
  Tensor x = image;
  std::vector<Tensor> features;
  for (const Stage& stage : stages_) {
    Tensor map = stage.patch_embed->forward_fp(x, pool);
    const int h = map.shape()[1];
    const int w = map.shape()[2];
    Tensor tokens = stage.embed_norm->forward_fp(to_tokens(map), pool);
    for (const Block& block : stage.blocks) {
      Tensor a = block.attn->forward_fp(block.ln1->forward_fp(tokens, pool),
                                        h, w, pool);
      tokens = block.add1.forward_fp(tokens, a, pool);
      Tensor f = block.ffn->forward_fp(block.ln2->forward_fp(tokens, pool),
                                       h, w, pool);
      tokens = block.add2.forward_fp(tokens, f, pool);
    }
    tokens = stage.out_norm->forward_fp(tokens, pool);
    x = from_tokens(tokens, h, w);
    features.push_back(x);
  }

  // Decode head at 1/4 resolution.
  const int oh = features[0].shape()[1];
  const int ow = features[0].shape()[2];
  Tensor fused(Shape{oh * ow, 4 * config_.decoder_dim});
  for (int s = 0; s < 4; ++s) {
    Tensor proj = head_linears_[static_cast<std::size_t>(s)]->forward_fp(
        to_tokens(features[static_cast<std::size_t>(s)]), pool);
    Tensor up = upsample_nearest(
        from_tokens(proj, features[static_cast<std::size_t>(s)].shape()[1],
                    features[static_cast<std::size_t>(s)].shape()[2]),
        oh, ow);
    const Tensor up_tokens = to_tokens(up);
    for (int i = 0; i < oh * ow; ++i) {
      for (int d = 0; d < config_.decoder_dim; ++d) {
        fused.at(i, s * config_.decoder_dim + d) = up_tokens.at(i, d);
      }
    }
  }
  Tensor y = head_fuse_->forward_fp(fused, pool);
  for (float& v : y.data()) v = std::max(v, 0.0F);  // head ReLU
  return y;
}

Tensor SegformerB0Like::forward_fp(const Tensor& image,
                                   ThreadPool* pool) const {
  const Tensor y = penultimate_fp(image, pool);
  const int side = config_.image_size / 4;
  return from_tokens(head_classifier_->forward_fp(y, pool), side, side);
}

void SegformerB0Like::train_classifier(
    const std::vector<Tensor>& images,
    const std::vector<std::vector<int>>& quarter_labels, int epochs,
    double learning_rate) {
  GQA_EXPECTS(images.size() == quarter_labels.size() && !images.empty());
  std::vector<Tensor> features;
  features.reserve(images.size());
  for (const Tensor& image : images) features.push_back(penultimate_fp(image));
  (void)train_softmax_probe(
      features, quarter_labels, config_.num_classes,
      std::span<float>(head_classifier_->weights().data()),
      std::span<float>(head_classifier_->bias().data()), epochs, learning_rate,
      config_.seed ^ 0x7EA1);
}

void SegformerB0Like::calibrate(const Tensor& image) {
  input_obs_.observe(std::span<const float>(image.data()));
  Tensor x = image;
  std::vector<Tensor> features;
  for (Stage& stage : stages_) {
    Tensor map = stage.patch_embed->calibrate(x);
    const int h = map.shape()[1];
    const int w = map.shape()[2];
    Tensor tokens = stage.embed_norm->calibrate(to_tokens(map));
    for (Block& block : stage.blocks) {
      Tensor a = block.attn->calibrate(block.ln1->calibrate(tokens), h, w);
      tokens = block.add1.calibrate(tokens, a);
      Tensor f = block.ffn->calibrate(block.ln2->calibrate(tokens), h, w);
      tokens = block.add2.calibrate(tokens, f);
    }
    tokens = stage.out_norm->calibrate(tokens);
    x = from_tokens(tokens, h, w);
    features.push_back(x);
  }

  const int oh = features[0].shape()[1];
  const int ow = features[0].shape()[2];
  Tensor fused(Shape{oh * ow, 4 * config_.decoder_dim});
  for (int s = 0; s < 4; ++s) {
    Tensor proj = head_linears_[static_cast<std::size_t>(s)]->calibrate(
        to_tokens(features[static_cast<std::size_t>(s)]));
    head_obs_.observe(std::span<const float>(proj.data()));
    Tensor up = upsample_nearest(
        from_tokens(proj, features[static_cast<std::size_t>(s)].shape()[1],
                    features[static_cast<std::size_t>(s)].shape()[2]),
        oh, ow);
    const Tensor up_tokens = to_tokens(up);
    for (int i = 0; i < oh * ow; ++i) {
      for (int d = 0; d < config_.decoder_dim; ++d) {
        fused.at(i, s * config_.decoder_dim + d) = up_tokens.at(i, d);
      }
    }
  }
  Tensor y = head_fuse_->calibrate(fused);
  for (float& v : y.data()) v = std::max(v, 0.0F);
  (void)head_classifier_->calibrate(y);
}

void SegformerB0Like::freeze() {
  GQA_EXPECTS_MSG(!input_obs_.empty(), "freeze() requires prior calibration");
  const QuantPolicy policy;
  input_qp_ = input_obs_.make_po2(policy.act_bits);
  QuantParams qp = input_qp_;
  std::vector<QuantParams> feature_qps;
  for (Stage& stage : stages_) {
    qp = stage.patch_embed->freeze(qp, policy);
    qp = stage.embed_norm->freeze(qp, policy);
    stage.token_qp = qp;
    for (Block& block : stage.blocks) {
      const QuantParams ln1_qp = block.ln1->freeze(qp, policy);
      const QuantParams attn_qp = block.attn->freeze(ln1_qp, policy);
      qp = block.add1.freeze(qp, attn_qp, policy);
      const QuantParams ln2_qp = block.ln2->freeze(qp, policy);
      const QuantParams ffn_qp = block.ffn->freeze(ln2_qp, policy);
      qp = block.add2.freeze(qp, ffn_qp, policy);
    }
    qp = stage.out_norm->freeze(qp, policy);
    feature_qps.push_back(qp);
  }

  const QuantPolicy policy_head;
  head_qp_ = head_obs_.make_po2(policy_head.act_bits);
  QuantParams fused_qp = head_qp_;
  for (int s = 0; s < 4; ++s) {
    const QuantParams proj_qp = head_linears_[static_cast<std::size_t>(s)]
                                    ->freeze(feature_qps[static_cast<std::size_t>(s)],
                                             policy_head);
    head_rq_[static_cast<std::size_t>(s)] =
        Requantizer(proj_qp.scale, head_qp_);
  }
  QuantParams y_qp = head_fuse_->freeze(fused_qp, policy_head);
  (void)head_classifier_->freeze(y_qp, policy_head);
  frozen_ = true;
}

QTensor SegformerB0Like::forward_int(const Tensor& image,
                                     const NonlinearProvider& nl,
                                     ThreadPool* pool) const {
  GQA_EXPECTS_MSG(frozen_, "forward_int() requires freeze()");
  QTensor x = QTensor::quantize(image, input_qp_);
  std::vector<QTensor> features;
  for (const Stage& stage : stages_) {
    QTensor map = stage.patch_embed->forward_int(x, pool);
    const int h = map.shape()[1];
    const int w = map.shape()[2];
    QTensor tokens = stage.embed_norm->forward_int(to_tokens(map), nl, pool);
    for (const Block& block : stage.blocks) {
      QTensor a = block.attn->forward_int(
          block.ln1->forward_int(tokens, nl, pool), h, w, nl, pool);
      tokens = block.add1.forward_int(tokens, a, pool);
      QTensor f = block.ffn->forward_int(
          block.ln2->forward_int(tokens, nl, pool), h, w, nl, pool);
      tokens = block.add2.forward_int(tokens, f, pool);
    }
    tokens = stage.out_norm->forward_int(tokens, nl, pool);
    x = from_tokens(tokens, h, w);
    features.push_back(x);
  }

  const int oh = features[0].shape()[1];
  const int ow = features[0].shape()[2];
  QTensor fused(Shape{oh * ow, 4 * config_.decoder_dim}, head_qp_);
  for (int s = 0; s < 4; ++s) {
    QTensor proj = head_linears_[static_cast<std::size_t>(s)]->forward_int(
        to_tokens(features[static_cast<std::size_t>(s)]), pool);
    // Requantize onto the common head scale, then upsample codes.
    QTensor aligned(proj.shape(), head_qp_);
    for (std::size_t i = 0; i < proj.data().size(); ++i) {
      aligned.data()[i] = static_cast<std::int32_t>(
          head_rq_[static_cast<std::size_t>(s)].apply(proj.data()[i]));
    }
    QTensor up = upsample_nearest(
        from_tokens(aligned, features[static_cast<std::size_t>(s)].shape()[1],
                    features[static_cast<std::size_t>(s)].shape()[2]),
        oh, ow);
    const QTensor up_tokens = to_tokens(up);
    for (int i = 0; i < oh * ow; ++i) {
      for (int d = 0; d < config_.decoder_dim; ++d) {
        fused.at(i, s * config_.decoder_dim + d) = up_tokens.at(i, d);
      }
    }
  }
  QTensor y = head_fuse_->forward_int(fused, pool);
  for (std::int32_t& v : y.data()) v = std::max(v, 0);  // integer ReLU
  return from_tokens(head_classifier_->forward_int(y, pool), oh, ow);
}

std::vector<int> SegformerB0Like::argmax_labels(const Tensor& logits) {
  GQA_EXPECTS(logits.shape().rank() == 3);
  const int c = logits.shape()[0];
  const int h = logits.shape()[1];
  const int w = logits.shape()[2];
  std::vector<int> labels(static_cast<std::size_t>(h) * w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int best = 0;
      for (int ch = 1; ch < c; ++ch) {
        if (logits.at(ch, y, x) > logits.at(best, y, x)) best = ch;
      }
      labels[static_cast<std::size_t>(y) * w + x] = best;
    }
  }
  return labels;
}

std::vector<int> SegformerB0Like::argmax_labels(const QTensor& logits) {
  GQA_EXPECTS(logits.shape().rank() == 3);
  const int c = logits.shape()[0];
  const int h = logits.shape()[1];
  const int w = logits.shape()[2];
  std::vector<int> labels(static_cast<std::size_t>(h) * w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int best = 0;
      for (int ch = 1; ch < c; ++ch) {
        if (logits.at(ch, y, x) > logits.at(best, y, x)) best = ch;
      }
      labels[static_cast<std::size_t>(y) * w + x] = best;
    }
  }
  return labels;
}

}  // namespace gqa::tfm
