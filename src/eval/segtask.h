// End-to-end segmentation evaluation harness for Tables 4 and 5.
//
// Pipeline per model: train the classifier head on labeled synthetic
// scenes (the Cityscapes fine-tuning substitute), calibrate activation
// ranges, freeze the integer model, then measure mIoU against scene ground
// truth for the FP32 teacher, the INT8-exact baseline ("None"), and every
// (method, replaced-op-set) combination.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/approximator.h"
#include "eval/engine.h"
#include "eval/miou.h"
#include "eval/scene.h"
#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"

namespace gqa {

struct SegTaskOptions {
  int train_scenes = 256;
  int calib_scenes = 8;
  int eval_scenes = 24;
  int probe_epochs = 30;
  double probe_lr = 0.05;
  SceneOptions scene;
  std::uint64_t train_seed = 0x7124;
  std::uint64_t eval_seed = 0xE7A1;
  /// Lanes for mIoU evaluation (bit-identical to serial at any count).
  /// 0 = the persistent process-wide pool (GQA_NUM_THREADS-sized); >= 1
  /// gives the task a private pool. Training/calibration stay serial.
  int num_threads = 1;
  /// Default serving shape: eval scenes stream through the batched
  /// InferenceEngine (one serial forward per image, workspace reuse,
  /// image-level parallelism). When false, the legacy per-forward path
  /// threads each forward internally instead (single-image latency shape).
  bool scene_parallel = true;
};

/// One Table 4/5 row: which ops are replaced, per-method mIoU.
struct ReplacementRow {
  std::string name;              ///< "EXP only", "Altogether", ...
  std::set<Op> replaced;
};

/// Prepared model + evaluation set for one of the two architectures.
template <typename ModelT>
class SegTask {
 public:
  /// Builds, head-trains, calibrates, and freezes the model.
  SegTask(ModelT model, int label_stride, const SegTaskOptions& options);

  /// mIoU of the FP32 teacher against scene ground truth.
  [[nodiscard]] double miou_fp() const;

  /// mIoU of the integer model with the given non-linearity backend.
  [[nodiscard]] double miou_int(const tfm::NonlinearProvider& nl) const;

  [[nodiscard]] const ModelT& model() const { return model_; }
  [[nodiscard]] const SegTaskOptions& options() const { return options_; }

 private:
  ModelT model_;
  SegTaskOptions options_;
  int label_stride_;
  std::vector<tfm::Tensor> eval_images_;  ///< one per eval scene (batch input)
  std::vector<std::vector<int>> eval_labels_;
  std::unique_ptr<InferenceEngine> engine_;  ///< scene-batched serving path
  ThreadPool* pool_ = nullptr;  ///< legacy per-forward path lanes
  std::unique_ptr<ThreadPool> owned_pool_;  ///< backs pool_ when private
};

using SegformerTask = SegTask<tfm::SegformerB0Like>;
using EfficientViTTask = SegTask<tfm::EfficientViTB0Like>;

/// Builds the Table 4 task (Segformer, labels at 1/4 resolution).
[[nodiscard]] SegformerTask make_segformer_task(const SegTaskOptions& options = {});

/// Builds the Table 5 task (EfficientViT, labels at 1/8 resolution).
[[nodiscard]] EfficientViTTask make_efficientvit_task(
    const SegTaskOptions& options = {});

/// The replacement rows of Table 4 (Segformer ops).
[[nodiscard]] std::vector<ReplacementRow> segformer_rows();
/// The replacement rows of Table 5 (EfficientViT ops).
[[nodiscard]] std::vector<ReplacementRow> efficientvit_rows();

}  // namespace gqa
