// Tests for the GQA-LUT core: Rounding Mutation (Algorithm 2), breakpoint
// repair, Table 1 presets, multi-range scaling (Table 2), the
// quantization-aware objective, and the end-to-end fit (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>

#include "gqa/gqa_lut.h"
#include "gqa/multirange.h"
#include "gqa/objective.h"
#include "gqa/rounding_mutation.h"
#include "pwl/fit_grid.h"
#include "util/contracts.h"

namespace gqa {
namespace {

// ----------------------------------------------------- rounding mutation --

TEST(RoundingMutation, OutputsSortedAndOnSomeGrid) {
  RmParams params{0.05, 0, 6};
  Rng rng(11);
  // With theta_r * (mb+1) = 0.35, ~1/3 of elements mutate per call; after
  // many calls every element has been snapped at least once.
  Genome g = {-3.7123, -1.4142, -0.8155, 0.3333, 1.2345, 2.7182, 3.1415};
  for (int iter = 0; iter < 200; ++iter) rounding_mutation(g, params, rng);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
  for (double p : g) {
    EXPECT_TRUE(on_grid(p, 6)) << p << " not on the finest grid 2^-6";
  }
}

TEST(RoundingMutation, ThetaZeroIsIdentity) {
  RmParams params{0.0, 0, 6};
  Rng rng(5);
  Genome g = {-1.234, 0.567, 2.891};
  const Genome before = g;
  for (int iter = 0; iter < 50; ++iter) rounding_mutation(g, params, rng);
  EXPECT_EQ(g, before);  // already sorted; theta_r = 0 never mutates
}

TEST(RoundingMutation, GridValuesAreFixedPoints) {
  // Integer values round to themselves on every grid 2^-i (i >= 0).
  RmParams params{0.05, 0, 6};
  Rng rng(7);
  Genome g = {-3.0, -1.0, 0.0, 2.0};
  for (int iter = 0; iter < 100; ++iter) rounding_mutation(g, params, rng);
  EXPECT_EQ(g, (Genome{-3.0, -1.0, 0.0, 2.0}));
}

TEST(RoundingMutation, MutateRangeWindowOffsets) {
  // With [ma, mb] = [2, 6] the selection window is [2*theta, 7*theta);
  // rand below 2*theta never mutates. Statistically verify the rate.
  RmParams params{0.05, 2, 6};
  Rng rng(13);
  int mutated = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    Genome g = {0.123456789};
    rounding_mutation(g, params, rng);
    if (g[0] != 0.123456789) ++mutated;
  }
  const double rate = static_cast<double>(mutated) / trials;
  EXPECT_NEAR(rate, 5 * 0.05, 0.02);  // five windows of width theta_r
}

TEST(RoundingMutation, InvalidParamsThrow) {
  Rng rng(1);
  Genome g = {0.5};
  EXPECT_THROW(rounding_mutation(g, RmParams{0.2, 0, 6}, rng),
               ContractViolation);  // (mb+1)*theta > 1
  EXPECT_THROW(rounding_mutation(g, RmParams{0.05, 4, 2}, rng),
               ContractViolation);  // ma > mb
}

TEST(GaussianMutation, PerturbsAndSorts) {
  const MutateFn mutate = make_gaussian_mutation(0.5, 1.0);
  Rng rng(3);
  Genome g = {3.0, 1.0, 2.0};
  mutate(g, rng);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
}

TEST(OnGrid, Detection) {
  EXPECT_TRUE(on_grid(-0.875, 3));
  EXPECT_FALSE(on_grid(-0.875, 2));
  EXPECT_TRUE(on_grid(5.0, 0));
  EXPECT_TRUE(on_grid(0.0, 0));
}

// ------------------------------------------------------------------ repair

TEST(RepairBreakpoints, SortsClipsSeparates) {
  Genome g = {5.0, -7.0, 0.1, 0.1, 0.1};
  repair_breakpoints(g, -4.0, 4.0, 0.01);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
  EXPECT_GE(g.front(), -4.0);
  EXPECT_LE(g.back(), 4.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_GE(g[i] - g[i - 1], 0.01 - 1e-12);
  }
}

TEST(RepairBreakpoints, HandlesAllEqualAtUpperBound) {
  Genome g = {4.0, 4.0, 4.0, 4.0};
  repair_breakpoints(g, -4.0, 4.0, 0.5);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
  EXPECT_LE(g.back(), 4.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_GE(g[i] - g[i - 1], 0.5 - 1e-12);
  }
}

// ----------------------------------------------------------------- presets

TEST(Presets, MatchTable1) {
  const GqaConfig gelu8 = GqaConfig::preset(Op::kGelu, 8,
                                            MutationKind::kRoundingMutation);
  EXPECT_DOUBLE_EQ(gelu8.range_lo, -4.0);
  EXPECT_DOUBLE_EQ(gelu8.rm.theta_r, 0.05);
  EXPECT_EQ(gelu8.rm.ma, 0);
  EXPECT_EQ(gelu8.rm.mb, 6);
  EXPECT_EQ(gelu8.ga.population_size, 50);
  EXPECT_EQ(gelu8.ga.generations, 500);
  EXPECT_DOUBLE_EQ(gelu8.ga.crossover_prob, 0.7);
  EXPECT_DOUBLE_EQ(gelu8.ga.mutation_prob, 0.2);
  EXPECT_EQ(gelu8.lambda, 5);
  EXPECT_EQ(gelu8.breakpoint_count(), 7);

  const GqaConfig hswish16 = GqaConfig::preset(Op::kHswish, 16,
                                               MutationKind::kRoundingMutation);
  EXPECT_EQ(hswish16.rm.ma, 2);
  const GqaConfig exp8 = GqaConfig::preset(Op::kExp, 8,
                                           MutationKind::kRoundingMutation);
  EXPECT_EQ(exp8.rm.ma, 2);
  const GqaConfig exp16 = GqaConfig::preset(Op::kExp, 16,
                                            MutationKind::kRoundingMutation);
  EXPECT_EQ(exp16.rm.ma, 0);

  const GqaConfig div8 = GqaConfig::preset(Op::kDiv, 8,
                                           MutationKind::kRoundingMutation);
  EXPECT_DOUBLE_EQ(div8.rm.theta_r, 0.0);  // RM disabled for DIV/RSQRT
  EXPECT_EQ(div8.deployment_scale_exps, std::vector<int>{5});
}

TEST(Presets, GridSizesMatchTable1DataSizes) {
  // (Rp - Rn) / 0.01: GELU/HSWISH/EXP 0.8K, DIV 0.35K, RSQRT ~0.37K.
  auto grid_points = [](Op op) {
    const GqaConfig c = GqaConfig::preset(op, 8, MutationKind::kGaussian);
    return (c.range_hi - c.range_lo) / c.grid_step;
  };
  EXPECT_NEAR(grid_points(Op::kGelu), 800, 1);
  EXPECT_NEAR(grid_points(Op::kExp), 800, 1);
  EXPECT_NEAR(grid_points(Op::kDiv), 350, 1);
  EXPECT_NEAR(grid_points(Op::kRsqrt), 375, 1);
}

TEST(Presets, ValidationCatchesBadConfigs) {
  GqaConfig cfg = GqaConfig::preset(Op::kGelu, 8, MutationKind::kGaussian);
  cfg.range_hi = cfg.range_lo;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = GqaConfig::preset(Op::kGelu, 8, MutationKind::kGaussian);
  cfg.entries = 1;
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg = GqaConfig::preset(Op::kGelu, 8, MutationKind::kGaussian);
  cfg.lambda = 99;
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

// -------------------------------------------------------------- multirange

TEST(MultiRange, Table2Presets) {
  const MultiRangeConfig div = MultiRangeConfig::div_preset();
  div.validate();
  EXPECT_DOUBLE_EQ(div.ir_lo, 0.5);
  EXPECT_DOUBLE_EQ(div.ir_hi, 4.0);
  ASSERT_EQ(div.subranges.size(), 3u);
  EXPECT_EQ(div.subranges[0].scale_exp, -3);
  EXPECT_EQ(div.subranges[1].scale_exp, -6);

  const MultiRangeConfig rsqrt = MultiRangeConfig::rsqrt_preset();
  rsqrt.validate();
  EXPECT_EQ(rsqrt.subranges[2].scale_exp, -12);
  EXPECT_THROW(MultiRangeConfig::preset_for(Op::kGelu), ContractViolation);
}

TEST(MultiRange, SubRangeScalesMapIntoIR) {
  for (Op op : {Op::kDiv, Op::kRsqrt}) {
    const MultiRangeConfig cfg = MultiRangeConfig::preset_for(op);
    for (const SubRange& sr : cfg.subranges) {
      const double lo_mapped = std::ldexp(sr.lo, sr.scale_exp);
      EXPECT_GE(lo_mapped, cfg.ir_lo - 1e-12);
      if (std::isfinite(sr.hi)) {
        EXPECT_LE(std::ldexp(sr.hi, sr.scale_exp), cfg.ir_hi + 1e-12);
      }
    }
  }
}

TEST(MultiRange, SelectExponent) {
  const MultiRangeConfig cfg = MultiRangeConfig::div_preset();
  EXPECT_EQ(cfg.select_exponent(1.0), 0);     // inside IR
  EXPECT_EQ(cfg.select_exponent(10.0), -3);   // SR0
  EXPECT_EQ(cfg.select_exponent(100.0), -6);  // SR1
  EXPECT_EQ(cfg.select_exponent(1e6), -6);    // SR2 (saturating)
  EXPECT_EQ(cfg.select_exponent(0.1), 0);     // below IR -> clamped later
}

TEST(MultiRange, EvalRescalesExactlyForExactPwl) {
  // With pwl == exact reciprocal, multi-range evaluation is exact because
  // DIV separates: 1/x = S' * (1/(S'x)).
  const MultiRangeConfig cfg = MultiRangeConfig::div_preset();
  const auto recip = [](double v) { return 1.0 / v; };
  for (double x : {0.7, 3.0, 5.0, 31.0, 100.0, 255.0}) {
    EXPECT_NEAR(cfg.eval(recip, x), 1.0 / x, 1e-12) << "x=" << x;
  }
  const MultiRangeConfig rs = MultiRangeConfig::rsqrt_preset();
  const auto rsqrt = [](double v) { return 1.0 / std::sqrt(v); };
  for (double x : {0.3, 2.0, 16.0, 100.0, 1000.0}) {
    EXPECT_NEAR(rs.eval(rsqrt, x), 1.0 / std::sqrt(x), 1e-12) << "x=" << x;
  }
}

TEST(MultiRange, OddRsqrtExponentRejected) {
  MultiRangeConfig cfg = MultiRangeConfig::rsqrt_preset();
  cfg.subranges[0].scale_exp = -3;  // odd: sqrt(2^-3) is not a shift
  EXPECT_THROW(cfg.output_exponent(-3), ContractViolation);
}

// --------------------------------------------------------------- objective

TEST(QuantAwareObjective, PerScaleMatchesAggregate) {
  const OpInfo& info = op_info(Op::kGelu);
  const FitGrid grid = FitGrid::make(info.f, -4.0, 4.0, 0.01);
  const QuantAwareObjective obj(grid, 5, {0, 3, 6});
  const Genome g = {-2.5, -1.0, -0.25, 0.3, 1.1, 2.0, 3.0};
  const std::vector<double> per = obj.per_scale_mse(g);
  ASSERT_EQ(per.size(), 3u);
  EXPECT_NEAR(obj(g), (per[0] + per[1] + per[2]) / 3.0, 1e-12);
  // Coarser deployment grids cannot be more accurate on average.
  EXPECT_GE(per[0], per[2] - 1e-9);
}

// ----------------------------------------------------------------- fitting

TEST(FitGqaLut, ProducesValidTablesAndGoodFit) {
  GqaConfig cfg = GqaConfig::preset(Op::kGelu, 8, MutationKind::kRoundingMutation);
  cfg.ga.generations = 150;  // quick but converged enough for the bound
  cfg.ga.seed = 0x1234;
  const GqaFitResult result = fit_gqa_lut(cfg);
  result.fp_table.validate();
  result.fxp_table.validate();
  EXPECT_EQ(result.fp_table.entries(), 8);
  EXPECT_LT(result.fp_mse, 5e-4);
  EXPECT_LT(result.fxp_mse, 2e-3);
  EXPECT_FALSE(result.ga.history.empty());
}

TEST(FitGqaLut, RmVariantArchivesPerScaleChampions) {
  GqaConfig cfg = GqaConfig::preset(Op::kGelu, 8, MutationKind::kRoundingMutation);
  cfg.ga.generations = 100;
  const GqaFitResult result = fit_gqa_lut(cfg);
  EXPECT_EQ(result.per_scale.size(), cfg.deployment_scale_exps.size());
  for (const ScaleCandidate& cand : result.per_scale) {
    cand.fxp_table.validate();
    EXPECT_TRUE(std::isfinite(cand.deployed_mse));
    EXPECT_NE(result.candidate_for(cand.scale_exp), nullptr);
  }
  EXPECT_EQ(result.candidate_for(99), nullptr);
  // table_for_scale falls back for unknown scales.
  EXPECT_EQ(&result.table_for_scale(99), &result.fxp_table);
}

TEST(FitGqaLut, GaussianVariantDeploysSingleTable) {
  GqaConfig cfg = GqaConfig::preset(Op::kGelu, 8, MutationKind::kGaussian);
  cfg.ga.generations = 100;
  const GqaFitResult result = fit_gqa_lut(cfg);
  EXPECT_TRUE(result.per_scale.empty());
  EXPECT_EQ(&result.table_for_scale(0), &result.fxp_table);
}

TEST(FitGqaLut, ChampionBeatsNominalAtItsScale) {
  GqaConfig cfg = GqaConfig::preset(Op::kGelu, 8, MutationKind::kRoundingMutation);
  cfg.ga.generations = 200;
  cfg.ga.seed = 0x77;
  const GqaFitResult result = fit_gqa_lut(cfg);
  const OpInfo& info = op_info(Op::kGelu);
  const FitGrid grid = FitGrid::make(info.f, -4.0, 4.0, 0.01);
  const QuantAwareObjective obj(grid, cfg.lambda, cfg.deployment_scale_exps);
  // At the coarsest deployment grid, the archived champion must be at
  // least as good as the fitness-best table.
  const double champion = obj.deployed_mse(result.table_for_scale(0), 0);
  const double nominal = obj.deployed_mse(result.fxp_table, 0);
  EXPECT_LE(champion, nominal + 1e-12);
}

TEST(FitGqaLut, DeterministicPerSeed) {
  GqaConfig cfg = GqaConfig::preset(Op::kExp, 8, MutationKind::kRoundingMutation);
  cfg.ga.generations = 80;
  cfg.ga.seed = 0xABC;
  const GqaFitResult a = fit_gqa_lut(cfg);
  const GqaFitResult b = fit_gqa_lut(cfg);
  EXPECT_EQ(a.ga.best, b.ga.best);
  EXPECT_EQ(a.fxp_table.breakpoints, b.fxp_table.breakpoints);
}

TEST(MutationKindName, Labels) {
  EXPECT_EQ(mutation_kind_name(MutationKind::kGaussian), "GQA-LUT w/o RM");
  EXPECT_EQ(mutation_kind_name(MutationKind::kRoundingMutation),
            "GQA-LUT w/ RM");
}

}  // namespace
}  // namespace gqa
