// Asynchronous submit/poll serving front-end with multi-model co-serving.
//
// The InferenceEngine (eval/engine.h) serves one frozen model one batch at
// a time — the caller owns the batching. gqa::Server owns it instead: any
// number of client threads submit(model_id, image) and get back a Ticket;
// a dispatcher thread drains the bounded admission queue
// (util/thread_pool.h BoundedQueue) in fair round-robin order across every
// registered model and fans each collected batch out across the pool lanes
// (gqa::global_pool() by default, so engines and the server co-serve on
// one process pool). Clients poll() for readiness or wait() to block.
//
// Guarantees (enforced by tests/server_test.cpp, also under TSan):
//   - Bit-identity: each request runs one fully-serial forward with a
//     per-lane Workspace (zero-filled acquires), so wait(ticket) returns
//     exactly what `model.forward_int(image, nl)` returns in a serial
//     per-image loop — regardless of submission order, lane count, or how
//     requests from different models interleave.
//   - Ticket-order delivery: tickets are issued in admission order and
//     results are keyed by ticket, so waiting tickets in issue order
//     yields results in issue order no matter the completion order.
//   - Backpressure: the admission queue is bounded (ServerOptions::
//     queue_capacity). submit() blocks until space frees; try_submit()
//     returns nullopt instead — the caller picks the policy.
//   - Shutdown/drain: shutdown() stops admission (blocked submitters fail
//     with ContractViolation), finishes every admitted request, then parks
//     the dispatcher. Every ticket issued before shutdown stays waitable
//     after it. The destructor shuts down.
//
// Thread-safety: every public method is safe to call from any thread;
// each ticket has exactly one waiter (a second wait on the same ticket —
// sequential or concurrent — fails with ContractViolation). The shared
// NonlinearProvider is referenced, not copied (its warmed unit tier is
// the point of sharing); it and every registered model must outlive the
// server and stay frozen while it runs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tfm/nonlinear_provider.h"
#include "tfm/tensor.h"
#include "tfm/workspace.h"
#include "util/thread_pool.h"

namespace gqa {

struct ServerOptions {
  /// Lane count: 0 serves on the process-wide pool (GQA_NUM_THREADS-sized,
  /// shared with any InferenceEngine); >= 1 gives the server a private
  /// pool of that size (1 = serial service, still with workspace reuse).
  int num_threads = 0;
  /// Bound on requests admitted but not yet collected by the dispatcher —
  /// the backpressure surface for submit()/try_submit().
  std::size_t queue_capacity = 64;
  /// Pre-warm the shared provider's full replaced-op set at registration,
  /// so service lanes never touch the unit-cache lock. Optimization only —
  /// results are identical either way.
  bool warm_provider = true;
};

enum class TicketStatus {
  kPending,   ///< admitted, result not ready yet
  kReady,     ///< result available; wait() returns without blocking
  kConsumed,  ///< result already collected by wait()
};

class Server {
 public:
  /// Tickets are dense and issued in admission order (0, 1, 2, ...).
  using Ticket = std::uint64_t;

  /// A registered backend: one serial deployment forward. The Workspace
  /// (never null) is the lane's private scratch; implementations must not
  /// capture it beyond the call.
  using ForwardFn =
      std::function<tfm::QTensor(const tfm::Tensor&, tfm::Workspace*)>;

  explicit Server(const tfm::NonlinearProvider& provider,
                  ServerOptions options = {});
  ~Server();  ///< shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a frozen model (SegformerB0Like / EfficientViTB0Like) and
  /// returns its model_id for submit(). The model serves through the
  /// shared provider on its integer deployment path.
  template <typename ModelT>
  int register_model(const ModelT& model, std::string name = {}) {
    return register_forward(
        std::move(name),
        [&model, this](const tfm::Tensor& image, tfm::Workspace* ws) {
          return model.forward_int(image, provider_, nullptr, ws);
        });
  }

  /// Registration hook for custom backends (anything that can produce
  /// integer logits from an image). The engine-style contract applies:
  /// the callable must be safe for concurrent invocation and fully
  /// deterministic per image.
  int register_forward(std::string name, ForwardFn forward);

  /// Admits a request for `model_id`, blocking while the admission queue
  /// is full. Throws ContractViolation if the server is (or becomes) shut
  /// down, or model_id was never registered.
  Ticket submit(int model_id, tfm::Tensor image);

  /// Non-blocking admit: nullopt when the queue is full (load shedding).
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image);

  /// Lifecycle of a ticket issued by submit()/try_submit().
  [[nodiscard]] TicketStatus poll(Ticket ticket) const;

  /// Blocks until the ticket's result is ready and returns it, consuming
  /// the ticket (a second wait on it is a contract violation). Safe to
  /// call before, during, or after shutdown().
  [[nodiscard]] tfm::QTensor wait(Ticket ticket);

  /// Blocks until every admitted request has completed. Admission stays
  /// open; use shutdown() to also stop the service.
  void drain();

  /// Stops admission, completes every admitted request, parks the
  /// dispatcher. Idempotent; implied by the destructor. Results of
  /// already-issued tickets remain collectable via wait().
  void shutdown();

  /// Lanes requests fan out across (>= 1).
  [[nodiscard]] int lanes() const { return pool_->size(); }
  [[nodiscard]] std::size_t model_count() const;

  struct Stats {
    std::uint64_t submitted = 0;  ///< admitted requests
    std::uint64_t completed = 0;  ///< results delivered to slots
    std::uint64_t rejected = 0;   ///< try_submit refusals (queue full)
    std::uint64_t batches = 0;    ///< dispatcher collections
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Request {
    Ticket ticket = 0;
    int model_id = 0;
    tfm::Tensor image;
  };
  struct Registered {
    std::string name;
    ForwardFn forward;
  };
  /// Ready when `result` is engaged or `error` is set; wait() rethrows a
  /// backend exception to the waiter instead of killing the dispatcher.
  /// `claimed` is set by the first wait() before it blocks, so a second
  /// waiter on the same ticket fails fast with ContractViolation instead
  /// of racing the first one's erase.
  struct Slot {
    std::optional<tfm::QTensor> result;
    std::exception_ptr error;
    bool claimed = false;
    [[nodiscard]] bool ready() const {
      return result.has_value() || error != nullptr;
    }
  };

  void dispatch_loop();
  [[nodiscard]] std::vector<Request> fair_interleave(
      std::vector<Request> admitted);
  void run_batch(std::vector<Request>& batch);
  std::optional<Ticket> admit(int model_id, tfm::Tensor image, bool blocking);

  const tfm::NonlinearProvider& provider_;
  ServerOptions options_;
  ThreadPool* pool_;                   ///< global_pool() or owned_
  std::unique_ptr<ThreadPool> owned_;  ///< non-null when num_threads >= 1
  tfm::WorkspacePool workspaces_;      ///< per-lane scratch, reused forever

  BoundedQueue<Request> queue_;  ///< admission queue (the backpressure bound)
  std::thread dispatcher_;
  std::mutex shutdown_mutex_;  ///< serializes concurrent shutdown() callers

  mutable std::mutex mutex_;  ///< guards everything below
  std::condition_variable result_cv_;
  std::deque<Registered> models_;  ///< deque: element refs survive growth
  /// Ticket -> result slot; absent = consumed (or never issued).
  std::unordered_map<Ticket, Slot> slots_;
  Ticket next_ticket_ = 0;
  int rr_cursor_ = 0;  ///< round-robin start model for the next collection
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace gqa
