#include "numerics/nonlinear.h"

#include <cmath>

#include "util/contracts.h"
#include "util/strings.h"

namespace gqa {

namespace {

double gelu(double x) { return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0))); }

double relu6(double x) { return std::min(std::max(x, 0.0), 6.0); }

double hswish(double x) { return x * relu6(x + 3.0) / 6.0; }

double reciprocal(double x) {
  GQA_EXPECTS_MSG(x != 0.0, "DIV reference undefined at x = 0");
  return 1.0 / x;
}

double rsqrt(double x) {
  GQA_EXPECTS_MSG(x > 0.0, "RSQRT reference undefined for x <= 0");
  return 1.0 / std::sqrt(x);
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double silu(double x) { return x * sigmoid(x); }

double softplus(double x) {
  // Overflow-safe formulation.
  return x > 30.0 ? x : std::log1p(std::exp(x));
}

const std::vector<OpInfo>& registry() {
  // Ranges for the paper's five ops follow Table 1; extension ops use
  // conventional activation ranges.
  static const std::vector<OpInfo> ops = {
      {Op::kGelu, "GELU", -4.0, 4.0, true, gelu},
      {Op::kHswish, "HSWISH", -4.0, 4.0, true, hswish},
      {Op::kExp, "EXP", -8.0, 0.0, true, [](double x) { return std::exp(x); }},
      {Op::kDiv, "DIV", 0.5, 4.0, false, reciprocal},
      {Op::kRsqrt, "RSQRT", 0.25, 4.0, false, rsqrt},
      {Op::kSigmoid, "SIGMOID", -8.0, 8.0, true, sigmoid},
      {Op::kSilu, "SILU", -8.0, 8.0, true, silu},
      {Op::kTanh, "TANH", -4.0, 4.0, true, [](double x) { return std::tanh(x); }},
      {Op::kSoftplus, "SOFTPLUS", -8.0, 8.0, true, softplus},
      {Op::kErf, "ERF", -4.0, 4.0, true, [](double x) { return std::erf(x); }},
  };
  return ops;
}

}  // namespace

double eval_op(Op op, double x) { return op_info(op).f(x); }

const OpInfo& op_info(Op op) {
  for (const OpInfo& info : registry()) {
    if (info.op == op) return info;
  }
  throw ContractViolation("op_info: unknown operator");
}

Op op_from_name(const std::string& name) {
  const std::string upper = [&] {
    std::string u = name;
    for (char& c : u) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return u;
  }();
  for (const OpInfo& info : registry()) {
    if (info.name == upper) return info.op;
  }
  throw ContractViolation("op_from_name: unknown operator '" + name + "'");
}

const std::vector<Op>& all_ops() {
  static const std::vector<Op> ops = [] {
    std::vector<Op> v;
    for (const OpInfo& info : registry()) v.push_back(info.op);
    return v;
  }();
  return ops;
}

const std::vector<Op>& paper_ops() {
  static const std::vector<Op> ops = {Op::kGelu, Op::kHswish, Op::kExp,
                                      Op::kDiv, Op::kRsqrt};
  return ops;
}

}  // namespace gqa
