#include "hw/components.h"

#include <cmath>

#include "util/contracts.h"

namespace gqa::hw {

// Unit-gate estimates (GE = NAND2 equivalents) from standard synthesis
// rules of thumb: FA ≈ 4.5 GE (mirror adder), DFF ≈ 5 GE, 2:1 mux ≈ 2 GE.
double ge_full_adder() { return 4.5; }
double ge_register_bit() { return 5.0; }
double ge_mux2_bit() { return 2.0; }

double ge_adder(int width) {
  GQA_EXPECTS(width >= 1);
  return ge_full_adder() * static_cast<double>(width);
}

double ge_multiplier(int wa, int wb) {
  GQA_EXPECTS(wa >= 1 && wb >= 1);
  // Booth radix-4 multiplier: ceil(wa/2)+1 partial products of wb+2 bits
  // (recode + mux ≈ 2.5 GE/bit) reduced by a carry-save tree, final CPA.
  const double rows = std::ceil(static_cast<double>(wa) / 2.0) + 1.0;
  const double pp_bits = static_cast<double>(wb) + 2.0;
  const double recode = rows * pp_bits * 2.5;
  const double tree = (rows - 1.0) * pp_bits * ge_full_adder();
  const double cpa = ge_adder(wa + wb);
  return recode + tree + cpa;
}

double ge_comparator(int width) {
  GQA_EXPECTS(width >= 1);
  // Subtract-based magnitude comparator ≈ 2.5 GE/bit.
  return 2.5 * static_cast<double>(width);
}

double ge_barrel_shifter(int width, int max_shift) {
  GQA_EXPECTS(width >= 1 && max_shift >= 0);
  if (max_shift == 0) return 0.0;
  const int stages = static_cast<int>(std::ceil(std::log2(max_shift + 1)));
  return static_cast<double>(stages) * width * ge_mux2_bit();
}

double ge_storage(int bits) {
  GQA_EXPECTS(bits >= 0);
  return ge_register_bit() * static_cast<double>(bits);
}

double ge_priority_encoder(int n) {
  GQA_EXPECTS(n >= 1);
  // Chain of gating cells plus log2(n)-bit one-hot-to-binary.
  return 3.0 * static_cast<double>(n) +
         2.0 * std::ceil(std::log2(static_cast<double>(n) + 1.0));
}

double ge_fp32_multiplier() {
  // 24x24 mantissa multiplier + exponent adder + normalize/round/exception
  // logic of an IEEE-compliant unit.
  return ge_multiplier(24, 24) + ge_adder(8) + 24 * ge_mux2_bit() + 320.0;
}

double ge_fp32_adder() {
  // Align shifter (24b, up to 24) + 24b adder + leading-zero anticipation +
  // normalize shifter + round/exception logic.
  return ge_barrel_shifter(24, 24) + ge_adder(25) +
         ge_barrel_shifter(24, 24) + 420.0;
}

double ge_fp32_comparator() {
  // Sign/exponent/mantissa compare ≈ 32-bit magnitude compare + fixups.
  return ge_comparator(32) + 12.0;
}

}  // namespace gqa::hw
