# Empty dependencies file for ablation_rm_range.
# This may be replaced when dependencies are built.
