file(REMOVE_RECURSE
  "CMakeFiles/micro_fit_cost.dir/bench/micro_fit_cost.cpp.o"
  "CMakeFiles/micro_fit_cost.dir/bench/micro_fit_cost.cpp.o.d"
  "bench/micro_fit_cost"
  "bench/micro_fit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
