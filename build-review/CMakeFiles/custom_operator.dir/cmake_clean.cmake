file(REMOVE_RECURSE
  "CMakeFiles/custom_operator.dir/examples/custom_operator.cpp.o"
  "CMakeFiles/custom_operator.dir/examples/custom_operator.cpp.o.d"
  "examples/custom_operator"
  "examples/custom_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
