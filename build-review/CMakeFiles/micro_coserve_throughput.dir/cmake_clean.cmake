file(REMOVE_RECURSE
  "CMakeFiles/micro_coserve_throughput.dir/bench/micro_coserve_throughput.cpp.o"
  "CMakeFiles/micro_coserve_throughput.dir/bench/micro_coserve_throughput.cpp.o.d"
  "bench/micro_coserve_throughput"
  "bench/micro_coserve_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_coserve_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
