// Async serving front-end guarantees (see src/eval/server.h): mixed
// two-model submission must be bit-identical to serial per-image loops at
// 1/2/4/8 lanes with cold and pre-warmed providers; tickets deliver their
// own request's result in any wait order (ticket-order delivery under
// shuffled completion); the bounded admission queue gives deterministic
// backpressure (try_submit rejects when full, submit blocks until space);
// shutdown with in-flight requests completes every admitted ticket; and
// the BoundedQueue / concurrent parallel_for primitives underneath are
// race-free (this suite also runs in the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "eval/scene.h"
#include "eval/server.h"
#include "kernel/dispatch.h"
#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqa {
namespace {

std::vector<tfm::Tensor> test_images(int count, int size,
                                     std::uint64_t seed = 0xA57C) {
  SceneOptions scene;
  scene.size = size;
  std::vector<tfm::Tensor> images;
  for (const LabeledScene& s : make_scene_set(scene, count, seed)) {
    images.push_back(s.image);
  }
  return images;
}

tfm::SegformerB0Like frozen_segformer(const tfm::Tensor& calib) {
  tfm::SegformerConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.dims = {8, 16, 16, 16};
  cfg.heads = {1, 2, 2, 2};
  cfg.sr_ratios = {4, 2, 1, 1};
  cfg.depths = {1, 1, 1, 1};
  cfg.decoder_dim = 16;
  tfm::SegformerB0Like model(cfg);
  model.calibrate(calib);
  model.freeze();
  return model;
}

tfm::EfficientViTB0Like frozen_efficientvit(const tfm::Tensor& calib) {
  tfm::EfficientViTConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.widths = {8, 12, 16, 24};
  cfg.expand = 2;
  cfg.head_dim = 24;
  tfm::EfficientViTB0Like model(cfg);
  model.calibrate(calib);
  model.freeze();
  return model;
}

tfm::NonlinearProvider full_provider_cold() {
  return tfm::NonlinearProvider::with_method(
      Method::kGqaRm,
      {Op::kExp, Op::kGelu, Op::kHswish, Op::kDiv, Op::kRsqrt});
}

/// One mixed request stream: (model index, image index) pairs, shuffled
/// deterministically so submission order interleaves the two models.
struct MixedStream {
  std::vector<std::pair<int, std::size_t>> order;
};

MixedStream shuffled_stream(std::size_t per_model, std::uint64_t seed) {
  MixedStream stream;
  for (std::size_t i = 0; i < per_model; ++i) {
    stream.order.emplace_back(0, i);
    stream.order.emplace_back(1, i);
  }
  Rng rng(seed);
  rng.shuffle(stream.order);
  return stream;
}

TEST(Server, MixedModelAsyncServingBitIdenticalAt1248Lanes) {
  const std::vector<tfm::Tensor> images = test_images(4, 32);
  const tfm::SegformerB0Like seg = frozen_segformer(images.front());
  const tfm::EfficientViTB0Like evit = frozen_efficientvit(images.front());

  // Serial references: the seed-style loop, fresh provider, no workspace.
  const tfm::NonlinearProvider serial_nl = full_provider_cold();
  std::vector<tfm::QTensor> seg_ref, evit_ref;
  for (const tfm::Tensor& img : images) {
    seg_ref.push_back(seg.forward_int(img, serial_nl));
    evit_ref.push_back(evit.forward_int(img, serial_nl));
  }

  for (int lanes : {1, 2, 4, 8}) {
    for (bool warm : {false, true}) {
      // A fresh provider per run keeps the cold case genuinely cold.
      const tfm::NonlinearProvider nl = full_provider_cold();
      ServerOptions options;
      options.num_threads = lanes;
      options.warm_provider = warm;
      Server server(nl, options);
      EXPECT_EQ(server.lanes(), lanes);
      const int seg_id = server.register_model(seg, "segformer");
      const int evit_id = server.register_model(evit, "efficientvit");
      EXPECT_EQ(server.model_count(), 2U);

      const MixedStream stream =
          shuffled_stream(images.size(), 0xBEEF + static_cast<unsigned>(lanes));
      std::vector<Server::Ticket> tickets;
      std::vector<std::pair<int, std::size_t>> meta;
      for (const auto& [which, img] : stream.order) {
        tickets.push_back(server.submit(which == 0 ? seg_id : evit_id,
                                        images[img]));
        meta.emplace_back(which, img);
      }
      // Tickets are issued in admission order.
      for (std::size_t i = 1; i < tickets.size(); ++i) {
        EXPECT_EQ(tickets[i], tickets[i - 1] + 1);
      }
      // Waiting in ticket order delivers each request's own serial result,
      // whatever order the lanes completed them in.
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        const tfm::QTensor got = server.wait(tickets[i]);
        const auto& [which, img] = meta[i];
        const tfm::QTensor& want = which == 0 ? seg_ref[img] : evit_ref[img];
        EXPECT_EQ(want.data(), got.data())
            << "lanes=" << lanes << " warm=" << warm << " ticket=" << i;
      }
      const Server::Stats stats = server.stats();
      EXPECT_EQ(stats.submitted, tickets.size());
      EXPECT_EQ(stats.completed, tickets.size());
    }
  }
}

TEST(Server, ServingBitIdenticalUnderEveryKernelBackendAndReportsIt) {
  // Re-run the mixed-model serving parity gate under each runnable kernel
  // backend: results must match the scalar oracle's serial loop byte for
  // byte, and Stats must report which backend actually served the requests
  // (so BENCH_kernel.json / ops dashboards never guess).
  const std::vector<tfm::Tensor> images = test_images(3, 32);
  const tfm::SegformerB0Like seg = frozen_segformer(images.front());
  const tfm::EfficientViTB0Like evit = frozen_efficientvit(images.front());

  std::vector<tfm::QTensor> seg_ref, evit_ref;
  {
    kernel::BackendScope scope("scalar");
    const tfm::NonlinearProvider serial_nl = full_provider_cold();
    for (const tfm::Tensor& img : images) {
      seg_ref.push_back(seg.forward_int(img, serial_nl));
      evit_ref.push_back(evit.forward_int(img, serial_nl));
    }
  }

  bool ran_simd = false;
  for (const kernel::KernelBackend* backend : kernel::registry()) {
    if (!kernel::backend_available(*backend)) continue;
    kernel::BackendScope scope(backend->name);
    const tfm::NonlinearProvider nl = full_provider_cold();
    ServerOptions options;
    options.num_threads = 2;
    Server server(nl, options);
    const int seg_id = server.register_model(seg, "segformer");
    const int evit_id = server.register_model(evit, "efficientvit");
    std::vector<Server::Ticket> seg_tickets, evit_tickets;
    for (const tfm::Tensor& img : images) {
      seg_tickets.push_back(server.submit(seg_id, img));
      evit_tickets.push_back(server.submit(evit_id, img));
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      EXPECT_EQ(seg_ref[i].data(), server.wait(seg_tickets[i]).data())
          << backend->name << " segformer image " << i;
      EXPECT_EQ(evit_ref[i].data(), server.wait(evit_tickets[i]).data())
          << backend->name << " efficientvit image " << i;
    }
    EXPECT_EQ(server.stats().kernel_backend, std::string(backend->name));
    if (std::string(backend->name) != "scalar") ran_simd = true;
  }
  if (!ran_simd) {
    GTEST_SKIP() << "only the scalar oracle is runnable on this host; "
                    "serving parity was scalar-vs-scalar";
  }
}

TEST(Server, TicketOrderDeliveryUnderShuffledCompletionAndWaits) {
  const std::vector<tfm::Tensor> images = test_images(6, 32);
  const tfm::SegformerB0Like seg = frozen_segformer(images.front());
  const tfm::NonlinearProvider nl = full_provider_cold();

  std::vector<tfm::QTensor> refs;
  for (const tfm::Tensor& img : images) {
    refs.push_back(seg.forward_int(img, nl));
  }

  ServerOptions options;
  options.num_threads = 4;  // completion order is scheduling-dependent
  Server server(nl, options);
  const int id = server.register_model(seg);

  std::vector<Server::Ticket> tickets;
  for (const tfm::Tensor& img : images) {
    tickets.push_back(server.submit(id, img));
  }
  server.drain();
  // After drain, every ticket is ready and still uncollected.
  for (const Server::Ticket t : tickets) {
    EXPECT_EQ(server.poll(t), TicketStatus::kReady);
  }
  // Collect in reverse order: ticket-keyed delivery is wait-order-agnostic.
  for (std::size_t i = tickets.size(); i-- > 0;) {
    const tfm::QTensor got = server.wait(tickets[i]);
    EXPECT_EQ(refs[i].data(), got.data()) << "ticket " << i;
    EXPECT_EQ(server.poll(tickets[i]), TicketStatus::kConsumed);
  }
  // One waiter per ticket: a second wait is a contract violation.
  EXPECT_THROW((void)server.wait(tickets.front()), ContractViolation);
}

TEST(Server, BackpressureBoundedQueueRejectsAndBlocks) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  std::atomic<int> started{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());

  ServerOptions options;
  options.num_threads = 1;       // one lane: the gate stalls all service
  options.queue_capacity = 2;    // tiny admission window
  options.warm_provider = false;
  Server server(nl, options);
  const int id = server.register_forward(
      "gated", [&](const tfm::Tensor&, tfm::Workspace*) {
        ++started;
        gate.wait();
        return tfm::QTensor{};
      });

  const tfm::Tensor image(tfm::Shape{1, 4, 4});
  const Server::Ticket first = server.submit(id, image);
  // Wait until the lane is inside the gated forward, so the queue is empty
  // and the service is deterministically stalled.
  while (started.load() == 0) std::this_thread::yield();

  const Server::Ticket q1 = server.submit(id, image);  // fills slot 1
  const Server::Ticket q2 = server.submit(id, image);  // fills slot 2
  EXPECT_EQ(server.poll(q1), TicketStatus::kPending);
  // Queue full: the rejecting admit sheds load without blocking.
  EXPECT_EQ(server.try_submit(id, image), std::nullopt);
  EXPECT_EQ(server.stats().rejected, 1U);

  // The blocking admit parks until the dispatcher frees space.
  std::atomic<bool> blocked_done{false};
  std::thread blocked([&] {
    (void)server.submit(id, image);
    blocked_done = true;
  });
  release.set_value();  // un-stall the lane; the queue drains
  blocked.join();
  EXPECT_TRUE(blocked_done.load());
  server.drain();
  EXPECT_EQ(server.poll(first), TicketStatus::kReady);
  EXPECT_EQ(server.poll(q2), TicketStatus::kReady);
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4U);
  EXPECT_EQ(stats.completed, 4U);
}

TEST(Server, ShutdownCompletesInflightRequestsAndStopsAdmission) {
  const std::vector<tfm::Tensor> images = test_images(5, 32);
  const tfm::SegformerB0Like seg = frozen_segformer(images.front());
  const tfm::NonlinearProvider nl = full_provider_cold();

  std::vector<tfm::QTensor> refs;
  for (const tfm::Tensor& img : images) {
    refs.push_back(seg.forward_int(img, nl));
  }

  ServerOptions options;
  options.num_threads = 2;
  Server server(nl, options);
  const int id = server.register_model(seg);
  std::vector<Server::Ticket> tickets;
  for (const tfm::Tensor& img : images) {
    tickets.push_back(server.submit(id, img));
  }
  server.shutdown();  // drains every admitted request before parking

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(server.poll(tickets[i]), TicketStatus::kReady);
    const tfm::QTensor got = server.wait(tickets[i]);
    EXPECT_EQ(refs[i].data(), got.data()) << "ticket " << i;
  }
  EXPECT_THROW((void)server.submit(id, images.front()), ContractViolation);
  EXPECT_THROW((void)server.register_model(seg), ContractViolation);
  server.shutdown();  // idempotent
}

TEST(Server, ConcurrentShutdownFromSeveralThreadsIsIdempotent) {
  // Regression: two (or more) threads racing shutdown() — e.g. an explicit
  // call racing another owner's teardown path — must both return with the
  // server fully drained, exactly once, without double-joining the
  // dispatcher or losing issued tickets. Runs under TSan in CI.
  const std::vector<tfm::Tensor> images = test_images(3, 32);
  const tfm::SegformerB0Like seg = frozen_segformer(images.front());
  const tfm::NonlinearProvider nl = full_provider_cold();
  std::vector<tfm::QTensor> refs;
  for (const tfm::Tensor& img : images) {
    refs.push_back(seg.forward_int(img, nl));
  }

  ServerOptions options;
  options.num_threads = 2;
  Server server(nl, options);
  const int id = server.register_model(seg);
  std::vector<Server::Ticket> tickets;
  for (const tfm::Tensor& img : images) {
    tickets.push_back(server.submit(id, img));
  }

  constexpr int kStoppers = 4;
  std::vector<std::thread> stoppers;
  for (int s = 0; s < kStoppers; ++s) {
    stoppers.emplace_back([&] { server.shutdown(); });
  }
  for (std::thread& t : stoppers) t.join();

  // Every in-flight request completed (default drain policy) and every
  // ticket stays collectable after the racing shutdowns.
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(server.poll(tickets[i]), TicketStatus::kReady);
    EXPECT_EQ(refs[i].data(), server.wait(tickets[i]).data()) << "ticket " << i;
  }
  EXPECT_THROW((void)server.submit(id, images.front()), ContractViolation);
  server.shutdown();  // still idempotent afterwards
}

TEST(Server, ShutdownWithOpenStreamsIsIdempotentAndDeliversNothingAfter) {
  // Regression for the streaming tentpole: racing shutdown() calls while
  // streams are still open (with frames pending under BOTH drain policies)
  // must resolve every pushed frame, reap every stream, and return only
  // after the last stream callback — no delivery may ever happen after any
  // shutdown() call has returned, and no dispatcher or stream state leaks.
  // Runs under TSan in CI.
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 2;
  options.warm_provider = false;
  Server server(nl, options);
  const int id = server.register_forward(
      "slow", [](const tfm::Tensor&, tfm::Workspace*) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return tfm::QTensor{};
      });

  std::atomic<bool> shutdown_returned{false};
  std::atomic<int> late_deliveries{0};
  std::atomic<int> delivered{0};
  const auto counting_callback = [&](Server::Ticket, tfm::QTensor,
                                     std::exception_ptr) {
    if (shutdown_returned.load()) ++late_deliveries;
    ++delivered;
  };

  StreamOptions finish;  // default drain: serve what was admitted
  StreamOptions cancel;
  cancel.drain_policy = DrainPolicy::kCancelPending;
  std::vector<Server::StreamSession> streams;
  streams.push_back(server.open_stream(id, finish, counting_callback));
  streams.push_back(server.open_stream(id, finish, counting_callback));
  streams.push_back(server.open_stream(id, cancel, counting_callback));
  int pushed = 0;
  const tfm::Tensor image(tfm::Shape{1, 4, 4});
  for (int round = 0; round < 4; ++round) {
    for (Server::StreamSession& s : streams) {
      pushed += s.push_frame(image).has_value() ? 1 : 0;
    }
  }
  EXPECT_EQ(pushed, 12);  // nothing was closing yet

  constexpr int kStoppers = 4;
  std::vector<std::thread> stoppers;
  for (int s = 0; s < kStoppers; ++s) {
    stoppers.emplace_back([&] {
      server.shutdown();
      // Any caller's return means the drain is complete — deliveries
      // observed after this store are contract violations.
      shutdown_returned.store(true);
    });
  }
  for (std::thread& t : stoppers) t.join();

  EXPECT_EQ(late_deliveries.load(), 0);
  EXPECT_EQ(delivered.load(), pushed);  // every frame resolved exactly once
  for (Server::StreamSession& s : streams) {
    EXPECT_EQ(s.push_frame(image), std::nullopt);  // admission is gone
    s.close();  // reaped streams make close a no-op, not a hang
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(pushed));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(pushed));
  EXPECT_EQ(stats.streams_open, 0U);
  EXPECT_EQ(stats.callback_errors, 0U);
  server.shutdown();  // still idempotent afterwards
}

TEST(Server, BackendExceptionIsDeliveredToTheWaiterNotTheDispatcher) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 2;
  options.warm_provider = false;
  Server server(nl, options);
  const int bad = server.register_forward(
      "throws", [](const tfm::Tensor&, tfm::Workspace*) -> tfm::QTensor {
        throw std::runtime_error("backend failure");
      });
  const int good = server.register_forward(
      "ok", [](const tfm::Tensor&, tfm::Workspace*) { return tfm::QTensor{}; });

  const tfm::Tensor image(tfm::Shape{1, 4, 4});
  const Server::Ticket bad_ticket = server.submit(bad, image);
  const Server::Ticket good_ticket = server.submit(good, image);
  EXPECT_THROW((void)server.wait(bad_ticket), std::runtime_error);
  (void)server.wait(good_ticket);  // the server keeps serving
  EXPECT_EQ(server.stats().completed, 2U);
}

TEST(Server, SubmitForUnregisteredModelIsAContractViolation) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  Server server(nl, options);
  const tfm::Tensor image(tfm::Shape{1, 4, 4});
  EXPECT_THROW((void)server.submit(0, image), ContractViolation);
  EXPECT_THROW((void)server.submit(-1, image), ContractViolation);
}

// ------------------------------------------------ BoundedQueue primitive --

TEST(BoundedQueue, FifoTryPushRejectsWhenFullAndCloseDrains) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  EXPECT_EQ(queue.size(), 2U);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_TRUE(queue.try_push(3));
  queue.close();
  EXPECT_FALSE(queue.push(4));      // closed
  EXPECT_FALSE(queue.try_push(4));  // closed
  // Items queued before close stay poppable; then the drained signal.
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_TRUE(queue.pop_all().empty());
}

TEST(BoundedQueue, ManyProducersManyConsumersDeliverEveryItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);  // small capacity: producers really block
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s = 0;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const std::vector<int> got = queue.pop_all();
        if (got.empty()) return;  // closed and drained
        for (const int v : got) ++seen[static_cast<std::size_t>(v)];
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.close();
  for (std::thread& t : consumers) t.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// ------------------------------- concurrent parallel_for serialization ---

TEST(ThreadPoolConcurrentCallers, JobsFromSeveralThreadsSerializeSafely) {
  // The co-serving contract: an async server's dispatcher and an engine
  // thread may both dispatch onto the process pool; jobs must serialize
  // with every index of every job run exactly once.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kCount = 64;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    std::vector<std::atomic<int>> fresh(kCount);
    for (auto& v : fresh) v = 0;
    h = std::move(fresh);
  }
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 8; ++round) {
        pool.parallel_for(kCount, [&, c](std::size_t i) { ++hits[c][i]; });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (const auto& caller_hits : hits) {
    for (const auto& h : caller_hits) EXPECT_EQ(h.load(), 8);
  }
}

}  // namespace
}  // namespace gqa
