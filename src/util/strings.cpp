#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace gqa {

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string sci(double value, int digits) {
  return format("%.*e", digits, value);
}

std::string fixed(double value, int digits) {
  return format("%.*f", digits, value);
}

std::string pow2_label(int exponent) { return format("2^%d", exponent); }

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string trim(std::string_view text) {
  std::size_t lo = 0;
  std::size_t hi = text.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(text[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(text[hi - 1]))) --hi;
  return std::string(text.substr(lo, hi - lo));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> missing_entries(
    const std::vector<std::string>& expected,
    const std::vector<std::string>& present) {
  std::vector<std::string> missing;
  for (const std::string& name : expected) {
    if (std::find(present.begin(), present.end(), name) == present.end()) {
      missing.push_back(name);
    }
  }
  return missing;
}

}  // namespace gqa
