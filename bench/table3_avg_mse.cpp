// Table 3: average quantization-aware MSE of NN-LUT, GQA-LUT w/o RM, and
// GQA-LUT w/ RM on all five operators at 8 and 16 entries. Also prints the
// Table 1 hyperparameter presets and the Table 2 multi-range setup used.
#include <cmath>

#include "bench_util.h"
#include "gqa/gqa_lut.h"
#include "gqa/multirange.h"

using namespace gqa;

namespace {

void print_table1() {
  TablePrinter t({"Hyper-parameter", "GELU", "HSWISH", "EXP", "DIV", "RSQRT"});
  t.set_title("Table 1: GQA-LUT configurations (presets in src/gqa)");
  auto cfg = [](Op op, int entries) {
    return GqaConfig::preset(op, entries, MutationKind::kRoundingMutation);
  };
  auto range_row = [&](Op op) {
    const GqaConfig c = cfg(op, 8);
    return format("(%g, %g)", c.range_lo, c.range_hi);
  };
  t.add_row({"[Rn, Rp]", range_row(Op::kGelu), range_row(Op::kHswish),
             range_row(Op::kExp), range_row(Op::kDiv), range_row(Op::kRsqrt)});
  auto theta_row = [&](Op op) { return format("%g", cfg(op, 8).rm.theta_r); };
  t.add_row({"theta_r", theta_row(Op::kGelu), theta_row(Op::kHswish),
             theta_row(Op::kExp), theta_row(Op::kDiv), theta_row(Op::kRsqrt)});
  auto mab = [&](Op op, int entries) {
    const GqaConfig c = cfg(op, entries);
    return format("[%d, %d]", c.rm.ma, c.rm.mb);
  };
  t.add_row({"[ma, mb] (8)", mab(Op::kGelu, 8), mab(Op::kHswish, 8),
             mab(Op::kExp, 8), "-", "-"});
  t.add_row({"[ma, mb] (16)", mab(Op::kGelu, 16), mab(Op::kHswish, 16),
             mab(Op::kExp, 16), "-", "-"});
  auto data_row = [&](Op op) {
    const GqaConfig c = cfg(op, 8);
    return format("%.2gK",
                  (c.range_hi - c.range_lo) / c.grid_step / 1000.0);
  };
  t.add_row({"Data size", data_row(Op::kGelu), data_row(Op::kHswish),
             data_row(Op::kExp), data_row(Op::kDiv), data_row(Op::kRsqrt)});
  t.set_footnote(
      "Common: Nb=7, Np=50, theta_c=0.7, theta_m=0.2, T=500, lambda=5.");
  bench::emit(t, "table1");
}

void print_table2() {
  TablePrinter t({"Op", "IR", "SR0 / S'0", "SR1 / S'1", "SR2 / S'2"});
  t.set_title("Table 2: multi-range input scaling (INT8 pwl)");
  for (Op op : {Op::kDiv, Op::kRsqrt}) {
    const MultiRangeConfig cfg = MultiRangeConfig::preset_for(op);
    std::vector<std::string> row = {op_info(op).name,
                                    format("(%g, %g)", cfg.ir_lo, cfg.ir_hi)};
    for (const SubRange& sr : cfg.subranges) {
      row.push_back(std::isinf(sr.hi)
                        ? format("[%g, +inf)/2^%d", sr.lo, sr.scale_exp)
                        : format("[%g, %g)/2^%d", sr.lo, sr.hi, sr.scale_exp));
    }
    t.add_row(row);
  }
  bench::emit(t, "table2");
}

}  // namespace

int main() {
  print_table1();
  std::printf("\n");
  print_table2();

  std::printf("\n== Table 3: average MSE (quantization-aware protocol) ==\n");
  TablePrinter table({"Method", "Entry", "GELU", "HSWISH", "EXP", "DIV",
                      "RSQRT"});
  table.set_title("Table 3: comparison of average MSE");
  const std::vector<Op> ops = paper_ops();
  for (Method m : all_methods()) {
    for (int entries : {8, 16}) {
      std::vector<std::string> row = {method_name(m), format("%d", entries)};
      for (Op op : ops) {
        row.push_back(sci(bench::avg_operator_mse(op, m, entries)));
      }
      table.add_row(row);
    }
    table.add_separator();
  }
  table.set_footnote(
      "Paper (8-entry): NN-LUT 1.3e-3/1.2e-3/6.4e-4/2.7e-3/1.1e-2; "
      "GQA w/o RM 1.5e-4/3.1e-4/1.3e-4/7.8e-4/1.2e-3; "
      "GQA w/RM 9.4e-5/2.9e-4/1.2e-4/8.3e-4/1.7e-3.");
  bench::emit(table, "table3");
  return 0;
}
