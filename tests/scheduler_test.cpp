// Conformance harness for the continuous-batching scheduler
// (src/eval/server.h). The randomized trials draw model mix, submission
// order, QoS weights, lane count, and provider warmth from seeded Rng
// streams and check the invariants that must hold for EVERY draw:
// bit-identity with serial per-image loops, exactly-once delivery to
// either the one wait() or the submit-time callback, and per-model start
// ratios that respect the QoS weights while both models hold backlog.
// Deterministic companions pin down the weighted-round-robin dispatch
// order at one lane, the max_inflight concurrency cap, and the
// kCancelPending drain policy. The suite runs in the TSan CI job (label:
// concurrency) at two GQA_TEST_THREADS widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "eval/scene.h"
#include "eval/server.h"
#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"
#include "util/contracts.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqa {
namespace {

std::vector<tfm::Tensor> test_images(int count, int size,
                                     std::uint64_t seed = 0xA57C) {
  SceneOptions scene;
  scene.size = size;
  std::vector<tfm::Tensor> images;
  for (const LabeledScene& s : make_scene_set(scene, count, seed)) {
    images.push_back(s.image);
  }
  return images;
}

tfm::SegformerB0Like frozen_segformer(const tfm::Tensor& calib) {
  tfm::SegformerConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.dims = {8, 16, 16, 16};
  cfg.heads = {1, 2, 2, 2};
  cfg.sr_ratios = {4, 2, 1, 1};
  cfg.depths = {1, 1, 1, 1};
  cfg.decoder_dim = 16;
  tfm::SegformerB0Like model(cfg);
  model.calibrate(calib);
  model.freeze();
  return model;
}

tfm::EfficientViTB0Like frozen_efficientvit(const tfm::Tensor& calib) {
  tfm::EfficientViTConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.widths = {8, 12, 16, 24};
  cfg.expand = 2;
  cfg.head_dim = 24;
  tfm::EfficientViTB0Like model(cfg);
  model.calibrate(calib);
  model.freeze();
  return model;
}

tfm::NonlinearProvider full_provider_cold() {
  return tfm::NonlinearProvider::with_method(
      Method::kGqaRm,
      {Op::kExp, Op::kGelu, Op::kHswish, Op::kDiv, Op::kRsqrt});
}

/// Cheap deterministic stand-in backend: the "model" is a salted checksum
/// of the image, so serial references are trivial to recompute and a trial
/// can afford hundreds of requests.
tfm::QTensor toy_forward(const tfm::Tensor& image, int salt) {
  tfm::QTensor out(tfm::Shape{1, 4}, QuantParams{1.0, 16, true});
  double sum = 0.0;
  for (const float v : image.data()) sum += static_cast<double>(v);
  const auto base = static_cast<std::int32_t>(
      static_cast<std::int64_t>(sum * 1024.0) & 0x7FFF);
  for (int i = 0; i < 4; ++i) {
    out.data()[static_cast<std::size_t>(i)] = base + salt * (i + 1);
  }
  return out;
}

/// One randomized request: which model, which image, and whether the
/// result is collected by wait() or delivered to a callback.
struct PlannedRequest {
  int model = 0;
  std::size_t image = 0;
  bool use_callback = false;
};

/// Mutex-guarded exactly-once ledger for callback deliveries.
struct CallbackLedger {
  std::mutex mutex;
  std::map<Server::Ticket, std::vector<std::int32_t>> results;
  std::map<Server::Ticket, int> deliveries;

  void record(Server::Ticket ticket, const tfm::QTensor& result) {
    std::lock_guard<std::mutex> lock(mutex);
    ++deliveries[ticket];
    results[ticket] = result.data();
  }
};

TEST(SchedulerConformance, RandomizedMixBitIdenticalWithExactlyOnceDelivery) {
  const std::vector<tfm::Tensor> images = test_images(3, 32);
  const tfm::SegformerB0Like seg = frozen_segformer(images.front());
  const tfm::EfficientViTB0Like evit = frozen_efficientvit(images.front());

  // Serial references, one per (model, image): the seed-style loop with a
  // fresh provider and no workspace.
  const tfm::NonlinearProvider serial_nl = full_provider_cold();
  std::vector<std::vector<std::int32_t>> refs[3];
  for (std::size_t i = 0; i < images.size(); ++i) {
    refs[0].push_back(seg.forward_int(images[i], serial_nl).data());
    refs[1].push_back(evit.forward_int(images[i], serial_nl).data());
    refs[2].push_back(toy_forward(images[i], /*salt=*/7).data());
  }

  const int submitters =
      std::max(1, static_cast<int>(env_int("GQA_TEST_THREADS", 4)));
  const int kLaneChoices[] = {1, 2, 4, 8};
  const std::uint64_t kSeeds[] = {0x5C4ED0, 0x5C4ED1, 0x5C4ED2, 0x5C4ED3};

  int trial = 0;
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    ServerOptions options;
    options.num_threads = kLaneChoices[trial % 4];
    options.warm_provider = rng.bernoulli(0.5);
    options.queue_capacity = 64;
    for (int m = 0; m < 3; ++m) {
      options.scheduler.qos_weights.push_back(
          static_cast<int>(rng.uniform_int(1, 4)));
    }
    // A fresh provider per trial keeps the cold case genuinely cold.
    const tfm::NonlinearProvider nl = full_provider_cold();
    Server server(nl, options);
    ASSERT_EQ(server.lanes(), options.num_threads);
    ASSERT_EQ(server.register_model(seg, "segformer"), 0);
    ASSERT_EQ(server.register_model(evit, "efficientvit"), 1);
    ASSERT_EQ(server.register_forward(
                  "toy",
                  [](const tfm::Tensor& image, tfm::Workspace*) {
                    return toy_forward(image, /*salt=*/7);
                  }),
              2);

    // Random mix and shuffled submission order; every request draws its
    // own image and delivery mode.
    std::vector<PlannedRequest> plan;
    std::vector<std::uint64_t> expected_per_model(3, 0);
    for (int m = 0; m < 3; ++m) {
      const std::int64_t count = rng.uniform_int(2, 4) * (m == 2 ? 3 : 1);
      for (std::int64_t c = 0; c < count; ++c) {
        plan.push_back({m, rng.index(images.size()), rng.bernoulli(0.5)});
        ++expected_per_model[static_cast<std::size_t>(m)];
      }
    }
    rng.shuffle(plan);

    // GQA_TEST_THREADS client threads submit disjoint slices of the plan
    // concurrently; each records its own ticket -> plan-entry mapping.
    CallbackLedger ledger;
    std::vector<std::vector<std::pair<Server::Ticket, PlannedRequest>>>
        issued(static_cast<std::size_t>(submitters));
    std::vector<std::thread> clients;
    for (int t = 0; t < submitters; ++t) {
      clients.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < plan.size();
             i += static_cast<std::size_t>(submitters)) {
          const PlannedRequest& req = plan[i];
          Server::Ticket ticket = 0;
          if (req.use_callback) {
            ticket = server.submit(
                req.model, images[req.image],
                [&ledger](Server::Ticket done, tfm::QTensor result,
                          std::exception_ptr error) {
                  ASSERT_EQ(error, nullptr);
                  ledger.record(done, result);
                });
          } else {
            ticket = server.submit(req.model, images[req.image]);
          }
          issued[static_cast<std::size_t>(t)].emplace_back(ticket, req);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    server.drain();

    // Every request resolved bit-identically to its serial reference,
    // through exactly one delivery path.
    std::size_t callback_count = 0;
    for (const auto& per_client : issued) {
      for (const auto& [ticket, req] : per_client) {
        const std::vector<std::int32_t>& want =
            refs[req.model][req.image];
        if (req.use_callback) {
          ++callback_count;
          EXPECT_EQ(server.poll(ticket), TicketStatus::kConsumed);
          std::lock_guard<std::mutex> lock(ledger.mutex);
          ASSERT_EQ(ledger.deliveries[ticket], 1)
              << "seed=" << seed << " ticket=" << ticket;
          EXPECT_EQ(ledger.results[ticket], want)
              << "seed=" << seed << " ticket=" << ticket;
        } else {
          EXPECT_EQ(server.poll(ticket), TicketStatus::kReady);
          EXPECT_EQ(server.wait(ticket).data(), want)
              << "seed=" << seed << " ticket=" << ticket;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(ledger.mutex);
      EXPECT_EQ(ledger.deliveries.size(), callback_count);
    }
    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.submitted, plan.size());
    EXPECT_EQ(stats.completed, plan.size());
    EXPECT_EQ(stats.callback_errors, 0U);
    ASSERT_EQ(stats.started_per_model.size(), 3U);
    for (int m = 0; m < 3; ++m) {
      EXPECT_EQ(stats.started_per_model[static_cast<std::size_t>(m)],
                expected_per_model[static_cast<std::size_t>(m)])
          << "seed=" << seed << " model=" << m;
    }
    ++trial;
  }
}

/// Builds a two-model backlog behind a gate request so the scheduler
/// dispatches it all at once, and returns the observed start order.
/// `starts` records model ids in dispatch order (the gate model, id 2, is
/// excluded by the caller's bookkeeping).
struct BacklogRun {
  std::vector<int> starts;
  Server::Stats stats;
};

BacklogRun run_gated_backlog(int lanes, const std::vector<int>& weights,
                             int per_model, int max_inflight = 0) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  std::mutex log_mutex;
  std::vector<int> starts;
  std::atomic<int> gate_started{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());

  ServerOptions options;
  options.num_threads = lanes;
  options.warm_provider = false;
  options.queue_capacity =
      static_cast<std::size_t>(2 * per_model + 8);  // hold the whole backlog
  options.scheduler.qos_weights = weights;
  options.scheduler.max_inflight = max_inflight;
  Server server(nl, options);
  const tfm::Tensor image(tfm::Shape{1, 4, 4});
  const auto recording_forward = [&](int model) {
    return [&, model](const tfm::Tensor& img, tfm::Workspace*) {
      {
        std::lock_guard<std::mutex> lock(log_mutex);
        starts.push_back(model);
      }
      return toy_forward(img, model);
    };
  };
  const int a = server.register_forward("a", recording_forward(0));
  const int b = server.register_forward("b", recording_forward(1));
  const int gated = server.register_forward(
      "gate", [&](const tfm::Tensor&, tfm::Workspace*) {
        ++gate_started;
        gate.wait();
        return tfm::QTensor{};
      });

  // The gate stalls the service: submit one gate request per allowed
  // concurrent slot, wait until they are all inside the forward, then pile
  // up the mixed backlog so release dispatches it in one span.
  const int gates = max_inflight > 0 ? std::min(max_inflight, lanes) : lanes;
  std::vector<Server::Ticket> tickets;
  for (int g = 0; g < gates; ++g) {
    tickets.push_back(server.submit(gated, image));
  }
  while (gate_started.load() < gates) {
    std::this_thread::yield();
  }
  for (int i = 0; i < per_model; ++i) {
    tickets.push_back(server.submit(a, image));
    tickets.push_back(server.submit(b, image));
  }
  release.set_value();
  server.drain();
  BacklogRun run;
  {
    std::lock_guard<std::mutex> lock(log_mutex);
    run.starts = starts;  // only a/b record; the gate forward never logs
  }
  run.stats = server.stats();
  for (const Server::Ticket t : tickets) (void)server.wait(t);
  return run;
}

/// WRR prefix property: while both models hold backlog, every prefix of
/// the start order satisfies |countA*wB - countB*wA| <= tolerance.
void expect_weighted_prefixes(const std::vector<int>& starts, int wa, int wb,
                              int per_model, std::int64_t tolerance) {
  std::int64_t count_a = 0;
  std::int64_t count_b = 0;
  for (const int m : starts) {
    (m == 0 ? count_a : count_b) += 1;
    if (count_a >= per_model || count_b >= per_model) break;  // one ran dry
    EXPECT_LE(std::abs(count_a * wb - count_b * wa), tolerance)
        << "after " << (count_a + count_b) << " starts (" << count_a << " vs "
        << count_b << ", weights " << wa << ":" << wb << ")";
  }
}

TEST(SchedulerQos, OneLaneWeightedRoundRobinDispatchOrderIsExact) {
  // One lane makes the dispatch order fully observable: weights {3, 1}
  // must yield bursts of three model-a starts per model-b start, and the
  // prefix deviation never exceeds one cycle (wa*wb... bounded by the
  // burst size wa*wb).
  const int wa = 3, wb = 1, per_model = 12;
  const BacklogRun run = run_gated_backlog(1, {wa, wb, 1}, per_model);
  ASSERT_EQ(run.starts.size(), static_cast<std::size_t>(2 * per_model));
  expect_weighted_prefixes(run.starts, wa, wb, per_model,
                           static_cast<std::int64_t>(wa) * wb + wa + wb);
  ASSERT_EQ(run.stats.started_per_model.size(), 3U);
  EXPECT_EQ(run.stats.started_per_model[0],
            static_cast<std::uint64_t>(per_model));
  EXPECT_EQ(run.stats.started_per_model[1],
            static_cast<std::uint64_t>(per_model));
}

TEST(SchedulerQos, MultiLaneSerializedStartRatiosRespectWeightsExactly) {
  // The scheduler's dispatch ORDER is deterministic WRR no matter how many
  // lanes pull from it; lanes only race the in-forward log. Serializing
  // service with max_inflight=1 pins log order == dispatch order (dispatch
  // i+1 cannot start until completion i), so the prefix property can be
  // asserted with the same one-cycle tolerance as the 1-lane test while
  // still exercising the multi-lane pull/park machinery. (An unserialized
  // multi-lane log is an unboundedly-skewed proxy for dispatch order — a
  // preempted lane may record its start arbitrarily late — so ratio
  // assertions on it are inherently flaky; the randomized conformance
  // trial covers the fully concurrent case via exact per-model totals.)
  for (const auto& [wa, wb] : std::vector<std::pair<int, int>>{{2, 1},
                                                               {4, 2},
                                                               {1, 3}}) {
    const int lanes = 4, per_model = 24;
    const BacklogRun run =
        run_gated_backlog(lanes, {wa, wb, 1}, per_model, /*max_inflight=*/1);
    ASSERT_EQ(run.starts.size(), static_cast<std::size_t>(2 * per_model));
    const std::int64_t tolerance =
        static_cast<std::int64_t>(wa) * wb + wa + wb;
    expect_weighted_prefixes(run.starts, wa, wb, per_model, tolerance);
    ASSERT_EQ(run.stats.started_per_model.size(), 3U);
    EXPECT_EQ(run.stats.started_per_model[0],
              static_cast<std::uint64_t>(per_model));
    EXPECT_EQ(run.stats.started_per_model[1],
              static_cast<std::uint64_t>(per_model));
  }
}

TEST(SchedulerQos, EqualWeightsReproduceFairRoundRobin) {
  const int per_model = 8;
  const BacklogRun run = run_gated_backlog(1, {1, 1, 1}, per_model);
  ASSERT_EQ(run.starts.size(), static_cast<std::size_t>(2 * per_model));
  // Strict alternation once both backlogs are live (one lane, equal
  // weights): no model ever gets two consecutive starts.
  for (std::size_t i = 1; i < run.starts.size(); ++i) {
    EXPECT_NE(run.starts[i], run.starts[i - 1]) << "position " << i;
  }
}

TEST(SchedulerConfigKnobs, MaxInflightCapsConcurrencyBelowLaneCount) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());

  ServerOptions options;
  options.num_threads = 4;
  options.warm_provider = false;
  options.queue_capacity = 32;
  options.scheduler.max_inflight = 2;
  Server server(nl, options);
  const int id = server.register_forward(
      "gated", [&](const tfm::Tensor&, tfm::Workspace*) {
        const int now = ++running;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        gate.wait();
        --running;
        return tfm::QTensor{};
      });
  const tfm::Tensor image(tfm::Shape{1, 4, 4});
  std::vector<Server::Ticket> tickets;
  for (int i = 0; i < 8; ++i) tickets.push_back(server.submit(id, image));
  // Let the scheduler dispatch as far as it will go, then release.
  while (peak.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  server.drain();
  for (const Server::Ticket t : tickets) (void)server.wait(t);
  EXPECT_EQ(peak.load(), 2);  // never above the cap, and the cap is reached
  EXPECT_EQ(server.stats().completed, 8U);
}

TEST(SchedulerConfigKnobs, CancelPendingFailsBacklogButFinishesStarted) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  std::atomic<int> started{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());

  ServerOptions options;
  options.num_threads = 1;
  options.warm_provider = false;
  options.queue_capacity = 16;
  options.scheduler.drain_policy = DrainPolicy::kCancelPending;
  Server server(nl, options);
  const int id = server.register_forward(
      "gated", [&](const tfm::Tensor& img, tfm::Workspace*) {
        ++started;
        gate.wait();
        return toy_forward(img, 3);
      });
  const tfm::Tensor image(tfm::Shape{1, 4, 4});
  const Server::Ticket running = server.submit(id, image);
  while (started.load() == 0) std::this_thread::yield();

  // Backlog behind the stalled lane: some waited on, some via callback.
  std::vector<Server::Ticket> pending;
  for (int i = 0; i < 3; ++i) pending.push_back(server.submit(id, image));
  std::atomic<int> cancelled_callbacks{0};
  const Server::Ticket cb_ticket = server.submit(
      id, image,
      [&](Server::Ticket, tfm::QTensor, std::exception_ptr error) {
        if (error != nullptr) ++cancelled_callbacks;
      });

  std::thread stopper([&] { server.shutdown(); });
  // Only release the gate once shutdown has provably begun (admission
  // throws), so the lane's next scheduler pull sees the stop + policy and
  // the backlog is deterministically cancelled, never served.
  for (;;) {
    try {
      const std::optional<Server::Ticket> extra =
          server.try_submit(id, image);
      if (extra.has_value()) pending.push_back(*extra);
    } catch (const ContractViolation&) {
      break;
    }
    std::this_thread::yield();
  }
  release.set_value();
  stopper.join();

  // The started request finished normally; the backlog was cancelled.
  EXPECT_EQ(server.wait(running).data(), toy_forward(image, 3).data());
  for (const Server::Ticket t : pending) {
    EXPECT_EQ(server.poll(t), TicketStatus::kReady);
    EXPECT_THROW((void)server.wait(t), std::runtime_error);
  }
  EXPECT_EQ(server.poll(cb_ticket), TicketStatus::kConsumed);
  EXPECT_EQ(cancelled_callbacks.load(), 1);
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.started_per_model[0], 1U);  // only the gated one started
}

TEST(SchedulerCallbacks, RunOnAServiceLaneAndForbidWait) {
  const tfm::NonlinearProvider nl = tfm::NonlinearProvider::exact();
  ServerOptions options;
  options.num_threads = 2;
  options.warm_provider = false;
  Server server(nl, options);
  const int id = server.register_forward(
      "toy", [](const tfm::Tensor& img, tfm::Workspace*) {
        return toy_forward(img, 11);
      });
  const tfm::Tensor image(tfm::Shape{1, 4, 4});

  std::mutex mutex;
  std::thread::id callback_thread;
  std::vector<std::int32_t> delivered;
  const Server::Ticket ticket = server.submit(
      id, image,
      [&](Server::Ticket, tfm::QTensor result, std::exception_ptr error) {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_EQ(error, nullptr);
        callback_thread = std::this_thread::get_id();
        delivered = result.data();
      });
  // Waiting on a callback ticket is a contract violation whether the
  // result has been delivered yet or not.
  EXPECT_THROW((void)server.wait(ticket), ContractViolation);
  server.drain();
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(delivered, toy_forward(image, 11).data());
    // The callback ran on a service lane, not on this client thread.
    EXPECT_NE(callback_thread, std::this_thread::get_id());
  }
  EXPECT_EQ(server.poll(ticket), TicketStatus::kConsumed);
  EXPECT_THROW((void)server.wait(ticket), ContractViolation);

  // An exception escaping a callback is swallowed and counted, not fatal.
  (void)server.submit(id, image,
                      [](Server::Ticket, tfm::QTensor, std::exception_ptr) {
                        throw std::runtime_error("misbehaving callback");
                      });
  server.drain();
  EXPECT_EQ(server.stats().callback_errors, 1U);
  // The server still serves after the bad callback.
  const Server::Ticket after = server.submit(id, image);
  EXPECT_EQ(server.wait(after).data(), toy_forward(image, 11).data());
}

}  // namespace
}  // namespace gqa
