// Segformer-B0-like semantic segmentation model (§4.2, Table 4).
//
// Same op inventory and architecture family as Segformer-B0 — overlapped
// patch embeddings, spatial-reduction attention (EXP + DIV via Softmax),
// Mix-FFN with GELU, LayerNorm (RSQRT) everywhere, and the all-MLP decode
// head — at reduced input resolution so the CPU reproduction stays fast.
// The FP32 path acts as the teacher; forward_int runs the integer-only
// pipeline with non-linearities served by a NonlinearProvider.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tfm/modules.h"

namespace gqa::tfm {

struct SegformerConfig {
  int image_size = 64;
  int in_channels = 3;
  int num_classes = 19;               ///< Cityscapes classes
  std::vector<int> dims = {32, 64, 160, 256};   ///< B0 widths
  std::vector<int> heads = {1, 2, 5, 8};
  std::vector<int> sr_ratios = {8, 4, 2, 1};
  std::vector<int> depths = {2, 2, 2, 2};
  int mlp_ratio = 4;
  int decoder_dim = 128;
  std::uint64_t seed = 0x5E6F;
};

class SegformerB0Like {
 public:
  explicit SegformerB0Like(const SegformerConfig& config = {});

  /// FP32 logits {num_classes, H/4, W/4}. A non-null pool threads every
  /// module forward (bit-identical to serial at any thread count); a
  /// non-null workspace reuses layer-output storage across calls
  /// (bit-identical, one workspace per thread).
  [[nodiscard]] Tensor forward_fp(const Tensor& image,
                                  ThreadPool* pool = nullptr,
                                  Workspace* ws = nullptr) const;

  /// FP32 penultimate features: relu(fused decode tokens), {H/4·W/4, dim}.
  [[nodiscard]] Tensor penultimate_fp(const Tensor& image,
                                      ThreadPool* pool = nullptr,
                                      Workspace* ws = nullptr) const;

  /// Trains the final classifier (softmax linear probe, frozen backbone)
  /// on labels at H/4 x W/4 resolution — the reproduction's stand-in for
  /// Cityscapes fine-tuning. Must run before calibrate()/freeze().
  void train_classifier(const std::vector<Tensor>& images,
                        const std::vector<std::vector<int>>& quarter_labels,
                        int epochs = 40, double learning_rate = 0.15);

  /// Runs the FP32 path recording activation ranges.
  void calibrate(const Tensor& image);

  /// Builds the integer model (weights, scales, requantizers).
  void freeze();

  /// Integer-only logits; the image is quantized at the input observer's
  /// power-of-two scale. A non-null pool fans rows/channels/heads out
  /// across its lanes; the provider must tolerate concurrent use (it does).
  [[nodiscard]] QTensor forward_int(const Tensor& image,
                                    const NonlinearProvider& nl,
                                    ThreadPool* pool = nullptr,
                                    Workspace* ws = nullptr) const;

  /// Scene-batched entry points: one *serial* forward per image, fanned out
  /// across the pool (image-level parallelism — the deployment shape for
  /// fixed nonlinear units). Each in-flight chunk borrows a Workspace from
  /// `workspaces` (or uses a chunk-local one), so steady-state dispatches
  /// reuse layer storage. Results are bit-identical to calling the
  /// per-image forward in a serial loop.
  [[nodiscard]] std::vector<Tensor> forward_fp_batch(
      std::span<const Tensor> images, ThreadPool* pool = nullptr,
      WorkspacePool* workspaces = nullptr) const;
  [[nodiscard]] std::vector<QTensor> forward_int_batch(
      std::span<const Tensor> images, const NonlinearProvider& nl,
      ThreadPool* pool = nullptr, WorkspacePool* workspaces = nullptr) const;

  /// Per-pixel argmax labels of a logits map {C, h, w}.
  [[nodiscard]] static std::vector<int> argmax_labels(const Tensor& logits);
  [[nodiscard]] static std::vector<int> argmax_labels(const QTensor& logits);

  [[nodiscard]] const SegformerConfig& config() const { return config_; }

 private:
  struct Block {
    std::unique_ptr<LayerNorm> ln1, ln2;
    std::unique_ptr<AttentionSR> attn;
    std::unique_ptr<MixFfn> ffn;
    ResidualAdd add1, add2;
  };
  struct Stage {
    std::unique_ptr<Conv2d> patch_embed;
    std::unique_ptr<LayerNorm> embed_norm;
    std::vector<Block> blocks;
    std::unique_ptr<LayerNorm> out_norm;
    QuantParams token_qp;  ///< frozen activation params entering the blocks
  };

  SegformerConfig config_;
  std::vector<Stage> stages_;
  // All-MLP decode head: per-stage linear to decoder_dim, nearest-neighbour
  // upsample to 1/4 resolution, concat, fuse, classify.
  std::vector<std::unique_ptr<Linear>> head_linears_;
  std::unique_ptr<Linear> head_fuse_;
  std::unique_ptr<Linear> head_classifier_;
  RangeObserver input_obs_;
  QuantParams input_qp_;
  // Common scale the upsampled per-stage features are requantized onto.
  RangeObserver head_obs_;
  QuantParams head_qp_;
  std::vector<Requantizer> head_rq_;
  bool frozen_ = false;
};

}  // namespace gqa::tfm
