# Empty dependencies file for int_softmax_demo.
# This may be replaced when dependencies are built.
