// Scene-batched inference engine guarantees: engine-batched results must be
// bit-identical to the sequential serial loop for both models at 1/2/4/8
// lanes, with cold and pre-warmed providers; Workspace reuse must never
// alias live tensors (consecutive forwards through one workspace give
// identical codes); the granularity-floored pooled_for must skip fan-out
// below the threshold; and SegTask's engine path must reproduce the legacy
// serial mIoU exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "eval/engine.h"
#include "eval/scene.h"
#include "eval/segtask.h"
#include "kernel/dispatch.h"
#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"
#include "tfm/workspace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqa {
namespace {

std::vector<tfm::Tensor> test_images(int count, int size) {
  SceneOptions scene;
  scene.size = size;
  std::vector<tfm::Tensor> images;
  for (const LabeledScene& s : make_scene_set(scene, count, 0xBA7C)) {
    images.push_back(s.image);
  }
  return images;
}

tfm::SegformerB0Like frozen_segformer(const tfm::Tensor& calib) {
  tfm::SegformerConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.dims = {8, 16, 16, 16};
  cfg.heads = {1, 2, 2, 2};
  cfg.sr_ratios = {4, 2, 1, 1};
  cfg.depths = {1, 1, 1, 1};
  cfg.decoder_dim = 16;
  tfm::SegformerB0Like model(cfg);
  model.calibrate(calib);
  model.freeze();
  return model;
}

tfm::EfficientViTB0Like frozen_efficientvit(const tfm::Tensor& calib) {
  tfm::EfficientViTConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.widths = {8, 12, 16, 24};
  cfg.expand = 2;
  cfg.head_dim = 24;
  tfm::EfficientViTB0Like model(cfg);
  model.calibrate(calib);
  model.freeze();
  return model;
}

tfm::NonlinearProvider full_provider_cold() {
  return tfm::NonlinearProvider::with_method(
      Method::kGqaRm,
      {Op::kExp, Op::kGelu, Op::kHswish, Op::kDiv, Op::kRsqrt});
}

template <typename ModelT>
void expect_engine_matches_serial(const ModelT& model,
                                  const std::vector<tfm::Tensor>& images) {
  // Serial reference: the seed-style loop, no pool, no workspace.
  const tfm::NonlinearProvider serial_nl = full_provider_cold();
  std::vector<tfm::QTensor> serial_int;
  std::vector<tfm::Tensor> serial_fp;
  for (const tfm::Tensor& img : images) {
    serial_int.push_back(model.forward_int(img, serial_nl));
    serial_fp.push_back(model.forward_fp(img));
  }

  for (int threads : {1, 2, 4, 8}) {
    for (bool warm : {false, true}) {
      EngineOptions options;
      options.num_threads = threads;
      options.warm_provider = warm;
      const InferenceEngine engine(options);
      EXPECT_EQ(engine.threads(), threads);
      // A fresh provider per run keeps the cold-cache case genuinely cold.
      const tfm::NonlinearProvider nl = full_provider_cold();
      const std::vector<tfm::QTensor> got_int =
          engine.forward_int(model, images, nl);
      const std::vector<tfm::Tensor> got_fp = engine.forward_fp(model, images);
      ASSERT_EQ(got_int.size(), serial_int.size());
      for (std::size_t i = 0; i < images.size(); ++i) {
        EXPECT_EQ(serial_int[i].data(), got_int[i].data())
            << "int image " << i << " threads=" << threads << " warm=" << warm;
        EXPECT_EQ(serial_fp[i].data(), got_fp[i].data())
            << "fp image " << i << " threads=" << threads << " warm=" << warm;
      }
      // Label batches must agree with per-image argmax of the serial runs.
      const std::vector<std::vector<int>> labels =
          engine.labels_int(model, images, nl);
      for (std::size_t i = 0; i < images.size(); ++i) {
        EXPECT_EQ(labels[i], ModelT::argmax_labels(serial_int[i]))
            << "labels image " << i << " threads=" << threads;
      }
    }
  }
}

TEST(InferenceEngine, SegformerBatchBitIdenticalAt1248Threads) {
  const std::vector<tfm::Tensor> images = test_images(6, 32);
  expect_engine_matches_serial(frozen_segformer(images.front()), images);
}

TEST(InferenceEngine, EfficientViTBatchBitIdenticalAt1248Threads) {
  const std::vector<tfm::Tensor> images = test_images(6, 32);
  expect_engine_matches_serial(frozen_efficientvit(images.front()), images);
}

TEST(InferenceEngine, ForwardsBitIdenticalUnderEveryKernelBackend) {
  // End-to-end gate for the SIMD dispatch layer: a full quantized forward
  // through both models must produce byte-identical codes under every
  // runnable backend and the scalar oracle — the differential suite checks
  // the kernels in isolation, this checks them composed through real
  // Linear/Conv/LayerNorm/Softmax call sites.
  const std::vector<tfm::Tensor> images = test_images(3, 32);
  const tfm::SegformerB0Like segformer = frozen_segformer(images.front());
  const tfm::EfficientViTB0Like evit = frozen_efficientvit(images.front());
  EngineOptions options;
  options.num_threads = 2;
  const InferenceEngine engine(options);

  auto run_all = [&] {
    const tfm::NonlinearProvider nl = full_provider_cold();
    std::vector<std::vector<std::int32_t>> out;
    for (const tfm::QTensor& t : engine.forward_int(segformer, images, nl)) {
      out.push_back(t.data());
    }
    for (const tfm::QTensor& t : engine.forward_int(evit, images, nl)) {
      out.push_back(t.data());
    }
    return out;
  };

  std::vector<std::vector<std::int32_t>> reference;
  {
    kernel::BackendScope scope("scalar");
    reference = run_all();
  }
  bool ran_simd = false;
  for (const kernel::KernelBackend* backend : kernel::registry()) {
    if (!kernel::backend_available(*backend)) continue;
    kernel::BackendScope scope(backend->name);
    EXPECT_EQ(reference, run_all()) << backend->name;
    if (std::string(backend->name) != "scalar") ran_simd = true;
  }
  if (!ran_simd) {
    GTEST_SKIP() << "only the scalar oracle is runnable on this host; "
                    "differential coverage was scalar-vs-scalar";
  }
}

TEST(InferenceEngine, ReusedEngineServesRepeatedDispatches) {
  // The same engine (and so the same workspace pool) must serve many
  // dispatches without drift — this is the steady-state serving loop.
  const std::vector<tfm::Tensor> images = test_images(3, 32);
  const tfm::SegformerB0Like model = frozen_segformer(images.front());
  const tfm::NonlinearProvider nl = full_provider_cold();
  EngineOptions options;
  options.num_threads = 2;
  const InferenceEngine engine(options);
  const std::vector<tfm::QTensor> first = engine.forward_int(model, images, nl);
  for (int round = 0; round < 3; ++round) {
    const std::vector<tfm::QTensor> again =
        engine.forward_int(model, images, nl);
    for (std::size_t i = 0; i < images.size(); ++i) {
      EXPECT_EQ(first[i].data(), again[i].data()) << "round " << round;
    }
  }
}

// ------------------------------------------------------- workspace reuse --

TEST(Workspace, TwoConsecutiveForwardsGiveIdenticalCodes) {
  // The aliasing check: the second forward reuses the first one's released
  // buffers, so any live-tensor aliasing or stale-content leak would change
  // its codes.
  const std::vector<tfm::Tensor> images = test_images(2, 32);
  const tfm::SegformerB0Like seg = frozen_segformer(images.front());
  const tfm::EfficientViTB0Like evit = frozen_efficientvit(images.front());
  const tfm::NonlinearProvider nl = full_provider_cold();

  tfm::Workspace ws;
  for (const tfm::Tensor& img : images) {
    const tfm::QTensor ref_int = seg.forward_int(img, nl);
    const tfm::Tensor ref_fp = seg.forward_fp(img);
    const tfm::QTensor a = seg.forward_int(img, nl, nullptr, &ws);
    const tfm::QTensor b = seg.forward_int(img, nl, nullptr, &ws);
    EXPECT_EQ(ref_int.data(), a.data());
    EXPECT_EQ(a.data(), b.data());
    const tfm::Tensor fa = seg.forward_fp(img, nullptr, &ws);
    const tfm::Tensor fb = seg.forward_fp(img, nullptr, &ws);
    EXPECT_EQ(ref_fp.data(), fa.data());
    EXPECT_EQ(fa.data(), fb.data());
  }
  // Same workspace across models: buckets are size-keyed, not model-keyed.
  const tfm::QTensor ev_ref = evit.forward_int(images[0], nl);
  const tfm::QTensor ev_a = evit.forward_int(images[0], nl, nullptr, &ws);
  const tfm::QTensor ev_b = evit.forward_int(images[0], nl, nullptr, &ws);
  EXPECT_EQ(ev_ref.data(), ev_a.data());
  EXPECT_EQ(ev_a.data(), ev_b.data());
  EXPECT_GT(ws.parked(), 0U);
}

TEST(Workspace, AcquireZeroFillsRecycledStorage) {
  // Sizes are above the internal small-buffer floor so the buffers really
  // flow through the pool (tiny ones bypass it by design).
  tfm::Workspace ws;
  tfm::Tensor t = ws.tensor(tfm::Shape{64, 64});
  for (float& v : t.data()) v = 7.5F;
  ws.release(std::move(t));
  const tfm::Tensor again = ws.tensor(tfm::Shape{64, 64});
  for (float v : again.data()) EXPECT_EQ(v, 0.0F);

  tfm::QTensor q = ws.qtensor(tfm::Shape{48, 48}, QuantParams{0.5, 8, true});
  for (std::int32_t& v : q.data()) v = -3;
  ws.release(std::move(q));
  const tfm::QTensor q2 =
      ws.qtensor(tfm::Shape{48, 48}, QuantParams{0.5, 8, true});
  for (std::int32_t v : q2.data()) EXPECT_EQ(v, 0);

  std::vector<std::int64_t> s = ws.i64(4096);
  s[0] = 42;
  ws.release(std::move(s));
  const std::vector<std::int64_t> s2 = ws.i64(4096);
  EXPECT_EQ(s2[0], 0);

  // Tiny buffers bypass the pool but must still come back zeroed.
  tfm::Tensor small = ws.tensor(tfm::Shape{4, 4});
  for (float& v : small.data()) v = 1.0F;
  ws.release(std::move(small));
  const tfm::Tensor small2 = ws.tensor(tfm::Shape{4, 4});
  for (float v : small2.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Workspace, AdoptsForeignTensorsAndMatchesSizeClasses) {
  tfm::Workspace ws;
  ws.release(tfm::Tensor(tfm::Shape{2, 2048}));  // never acquired here
  EXPECT_EQ(ws.parked(), 1U);
  // Same size class, different shape: the bucket matches on element count.
  const tfm::Tensor t = ws.tensor(tfm::Shape{4096});
  EXPECT_EQ(ws.parked(), 0U);
  EXPECT_EQ(t.numel(), 4096);
  // Steady-state serving must stop touching the allocator entirely.
  ws.release(tfm::Tensor(tfm::Shape{4096}));
  (void)ws.tensor(tfm::Shape{4096});
  (void)ws.tensor(tfm::Shape{4096});
  EXPECT_EQ(ws.stats().grows, 0U);
}

// --------------------------------------------- pooled_for granularity ----

TEST(PooledForGranularity, SkipsFanOutBelowThreshold) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  // 16 indices over 4 lanes = 4 per lane < 8: must run inline.
  std::set<std::thread::id> seen;
  std::mutex mu;
  pooled_for(&pool, 16, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  }, /*min_per_lane=*/8);
  EXPECT_EQ(seen.size(), 1U);
  EXPECT_EQ(*seen.begin(), caller);

  // At or above the floor the fan-out happens and still covers every index
  // exactly once (which lanes run them is scheduling-dependent).
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  pooled_for(&pool, hits.size(), [&](std::size_t i) { ++hits[i]; },
             /*min_per_lane=*/8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PooledForGranularity, ChunksCollapseToOneBelowThreshold) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  pooled_for_chunks(&pool, hits.size(), [&](std::size_t lo, std::size_t hi) {
    ++chunks;
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  }, /*min_per_lane=*/64);
  EXPECT_EQ(chunks.load(), 1);  // 100/4 = 25 < 64: one inline chunk
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PooledForGranularity, DefaultKeepsHistoricalFanOut) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(5);
  for (auto& h : hits) h = 0;
  pooled_for(&pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------------- SegTask engine parity --

TEST(SegTaskEngine, EngineAndLegacySerialMiouIdentical) {
  SegTaskOptions options;
  options.train_scenes = 6;
  options.calib_scenes = 2;
  options.eval_scenes = 4;
  options.probe_epochs = 2;
  options.scene.size = 32;
  options.scene.num_classes = 6;

  options.scene_parallel = true;  // engine path (default)
  options.num_threads = 2;
  const SegformerTask engine_task = make_segformer_task(options);

  options.scene_parallel = false;  // legacy serial path
  options.num_threads = 1;
  const SegformerTask serial_task = make_segformer_task(options);

  const auto nl = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kExp, Op::kGelu, Op::kDiv, Op::kRsqrt});
  EXPECT_EQ(engine_task.miou_fp(), serial_task.miou_fp());
  EXPECT_EQ(engine_task.miou_int(nl), serial_task.miou_int(nl));
}

// The EfficientViT task must use EfficientViT's own argmax (regression:
// it silently borrowed SegformerB0Like's static).
TEST(ArgmaxLabels, EfficientViTHasItsOwnStatic) {
  tfm::Tensor logits(tfm::Shape{3, 2, 2});
  logits.at(0, 0, 0) = 1.0F;  // pixel (0,0): class 0
  logits.at(2, 0, 1) = 2.0F;  // pixel (0,1): class 2
  logits.at(1, 1, 0) = 3.0F;  // pixel (1,0): class 1
  // pixel (1,1): all equal -> lowest class id wins (0)
  const std::vector<int> expected = {0, 2, 1, 0};
  EXPECT_EQ(tfm::EfficientViTB0Like::argmax_labels(logits), expected);
  EXPECT_EQ(tfm::SegformerB0Like::argmax_labels(logits), expected);

  tfm::QTensor q(tfm::Shape{3, 2, 2}, QuantParams{1.0, 8, true});
  q.at(0, 0, 0) = 5;
  q.at(2, 0, 1) = 6;
  q.at(1, 1, 0) = 7;
  EXPECT_EQ(tfm::EfficientViTB0Like::argmax_labels(q), expected);
  EXPECT_EQ(tfm::SegformerB0Like::argmax_labels(q), expected);
}

}  // namespace
}  // namespace gqa
