# Empty dependencies file for table3_avg_mse.
# This may be replaced when dependencies are built.
