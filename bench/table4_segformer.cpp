// Table 4: fine-tuning mIoU of the Segformer-B0-like model on the synthetic
// Cityscapes substitute, replacing each non-linear operator (and all of
// them) with 8-entry pwl kernels from NN-LUT / GQA-LUT w/o RM / GQA-LUT
// w/ RM. See DESIGN.md §3 for the substitution rationale.
//
// Env knobs: GQA_TRAIN_SCENES (default 256), GQA_EVAL_SCENES (24),
//            GQA_PROBE_EPOCHS (30), GQA_NUM_THREADS (lanes for mIoU
//            evaluation; 0 = hardware concurrency, bit-identical to
//            serial), GQA_SCENE_PARALLEL (default on: scenes stream
//            through the batched InferenceEngine; off = legacy per-forward
//            threading).
#include "bench_util.h"
#include "eval/segtask.h"

using namespace gqa;

int main() {
  SegTaskOptions options;
  options.train_scenes = static_cast<int>(env_int("GQA_TRAIN_SCENES", 256));
  options.eval_scenes = static_cast<int>(env_int("GQA_EVAL_SCENES", 24));
  options.probe_epochs = static_cast<int>(env_int("GQA_PROBE_EPOCHS", 30));
  options.num_threads = static_cast<int>(env_int("GQA_NUM_THREADS", 1));
  options.scene_parallel = env_flag("GQA_SCENE_PARALLEL", true);

  std::printf("== Table 4: Segformer-B0-like mIoU (synthetic Cityscapes) ==\n");
  Timer timer;
  const SegformerTask task = make_segformer_task(options);
  std::printf("model prepared in %.1fs (head trained on %d scenes)\n",
              timer.seconds(), options.train_scenes);

  const double fp_miou = task.miou_fp();
  const double base = task.miou_int(tfm::NonlinearProvider::exact());
  std::printf("FP32 teacher mIoU: %.2f%%   INT8 baseline (None): %.2f%%\n\n",
              100.0 * fp_miou, 100.0 * base);

  TablePrinter table({"Replacement", "NN-LUT", "GQA w/o RM", "GQA w/ RM"});
  table.set_title("Table 4: mIoU (%) after replacing ops with 8-entry pwl");
  table.add_row({"None", fixed(100.0 * base, 2), fixed(100.0 * base, 2),
                 fixed(100.0 * base, 2)});
  std::map<Method, double> altogether;
  for (const ReplacementRow& row : segformer_rows()) {
    std::vector<std::string> cells = {row.name};
    for (Method m : all_methods()) {
      const auto nl = tfm::NonlinearProvider::with_method(m, row.replaced);
      const double miou = task.miou_int(nl);
      if (row.name == "Altogether") altogether[m] = miou;
      cells.push_back(fixed(100.0 * miou, 2));
    }
    table.add_row(cells);
  }
  table.set_footnote(format(
      "Altogether delta vs None: NN-LUT %+.2f, GQA w/o RM %+.2f, GQA w/ RM "
      "%+.2f (paper: -1.14, -0.32, -0.07).",
      100.0 * (altogether[Method::kNnLut] - base),
      100.0 * (altogether[Method::kGqaNoRm] - base),
      100.0 * (altogether[Method::kGqaRm] - base)));
  bench::emit(table, "table4");
  std::printf("total %.1fs\n", timer.seconds());
  return 0;
}
