#!/usr/bin/env bash
# Repo-invariant linter, registered as the `invariant_lint` ctest (label:
# lint) and run in CI. Six rules, each one a cross-cutting invariant that
# no single compiler diagnostic can enforce:
#
#  R1  Every GQA_* environment variable src/ actually reads (env_int /
#      env_string / env_flag call sites) must appear in README.md — an env
#      knob that exists only in code is invisible to operators.
#  R2  Every enumerator of TicketStatus and DropPolicy (src/eval/server.h)
#      and ServingErrorCode (src/util/serving_error.h) must appear in
#      docs/ARCHITECTURE.md — the doc's lifecycle/error/drop-policy tables
#      must not go stale when an enumerator is added.
#  R3  Every test source under tests/ that touches a concurrency primitive
#      (std::thread, std::atomic, ThreadPool, global_pool, BoundedQueue,
#      gqa::Server) must be listed in GQA_CONCURRENCY_TESTS in
#      CMakeLists.txt, so `ctest -L concurrency` (the TSan CI job) covers
#      it.
#  R4  No naked std::thread construction and no detach() outside src/util/
#      — threads are owned through ScopedThread / ThreadPool
#      (util/thread_pool.h) so every thread has a join point.
#  R5  Every enumerator of fault::Point (src/util/fault_injection.h) must
#      appear in docs/ARCHITECTURE.md — the chaos-harness injection-point
#      map must not go stale when a fault point is added.
#  R6  Every kernel backend registered in src/kernel/dispatch*.cpp (the
#      `.name = "<backend>"` designated initializers) must appear in the
#      docs/ARCHITECTURE.md backend table — a backend operators can select
#      via GQA_KERNEL_BACKEND must not be undocumented.
#
# Exit: non-zero with one pointed message per violation. GQA_LINT_ROOT
# overrides the repo root (used by lint_selftest.sh for fixture trees).
set -u
cd "${GQA_LINT_ROOT:-$(dirname "$0")/../..}"
status=0
fail() {
  echo "invariant-lint: $*" >&2
  status=1
}

# --- R1: env knobs documented -------------------------------------------
env_vars=$(grep -rhoE 'env_(int|string|flag)\("GQA_[A-Z0-9_]+"' src/ 2>/dev/null \
  | grep -oE 'GQA_[A-Z0-9_]+' | sort -u)
for var in $env_vars; do
  if ! grep -q -- "$var" README.md; then
    fail "R1: env knob $var is read in src/ but has no README.md row" \
         "(document it in the environment-knob table)"
  fi
done

# --- R2/R5: doc enum tables fresh ---------------------------------------
# Pull the enumerator names out of the `enum class <Name>` block and demand
# each one appears somewhere in docs/ARCHITECTURE.md. The rule prefix is a
# parameter so serving-lifecycle enums (R2) and chaos fault points (R5)
# fail with their own rule id.
check_enum_documented() {
  local rule="$1" enum_name="$2" header="$3"
  if [ ! -f "$header" ]; then
    fail "$rule: expected $header to define $enum_name, but it is missing"
    return
  fi
  local enumerators
  enumerators=$(awk -v name="$enum_name" '
    $0 ~ "enum class " name {f=1}
    f && /};/ {f=0}
    f {print}' "$header" | grep -oE '\bk[A-Z][A-Za-z0-9]*' | sort -u)
  if [ -z "$enumerators" ]; then
    fail "$rule: could not extract enumerators of $enum_name from $header"
    return
  fi
  local e
  for e in $enumerators; do
    if ! grep -q -- "$e" docs/ARCHITECTURE.md; then
      fail "$rule: $enum_name::$e ($header) is missing from" \
           "docs/ARCHITECTURE.md — update the $enum_name table"
    fi
  done
}
check_enum_documented R2 TicketStatus src/eval/server.h
check_enum_documented R2 DropPolicy src/eval/server.h
check_enum_documented R2 ServingErrorCode src/util/serving_error.h

# --- R3: concurrency tests labeled --------------------------------------
labeled=$(awk '/set\(GQA_CONCURRENCY_TESTS/{f=1;next} f&&/\)/{f=0} f{print $1}' \
  CMakeLists.txt)
for test_src in tests/*.cpp; do
  [ -e "$test_src" ] || continue
  if grep -qE 'std::thread|std::atomic|ThreadPool|global_pool|BoundedQueue|gqa::Server' \
      "$test_src"; then
    name=$(basename "$test_src" .cpp)
    if ! printf '%s\n' "$labeled" | grep -qx -- "$name"; then
      fail "R3: $test_src uses concurrency primitives but $name is not in" \
           "GQA_CONCURRENCY_TESTS (CMakeLists.txt) — the TSan job would" \
           "skip it"
    fi
  fi
done

# --- R4: no naked threads outside util/ ---------------------------------
# std::this_thread::* does not contain the literal `std::thread`, so sleep
# and yield call sites stay clean.
while IFS= read -r hit; do
  fail "R4: naked std::thread outside src/util/ — own it through" \
       "ScopedThread or ThreadPool (util/thread_pool.h): $hit"
done < <(grep -rnE 'std::thread\b' src/ --include='*.cpp' --include='*.h' \
  | grep -v '^src/util/' || true)
while IFS= read -r hit; do
  fail "R4: detach() outside src/util/ — detached threads have no join" \
       "point and outlive shutdown: $hit"
done < <(grep -rnE '\.detach\(\)' src/ --include='*.cpp' --include='*.h' \
  | grep -v '^src/util/' || true)

# --- R5: fault-injection point map fresh --------------------------------
check_enum_documented R5 Point src/util/fault_injection.h

# --- R6: kernel backends documented --------------------------------------
# Registered backends use designated initializers (`.name = "avx2"`), which
# is the one greppable declaration every dispatch TU shares.
backend_names=$(grep -rhoE '\.name = "[a-z0-9_]+"' src/kernel/dispatch*.cpp \
  2>/dev/null | grep -oE '"[a-z0-9_]+"' | tr -d '"' | sort -u)
for backend in $backend_names; do
  if ! grep -q -- "\`$backend\`" docs/ARCHITECTURE.md; then
    fail "R6: kernel backend '$backend' (src/kernel/dispatch*.cpp) is" \
         "missing from docs/ARCHITECTURE.md — update the kernel-dispatch" \
         "backend table"
  fi
done

if [ "$status" -eq 0 ]; then
  echo "invariant-lint: OK"
fi
exit $status
