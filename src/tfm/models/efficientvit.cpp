#include "tfm/models/efficientvit.h"

#include "tfm/probe.h"
#include "util/contracts.h"

namespace gqa::tfm {

namespace {

template <typename T>
T upsample2x(const T& x, Workspace* ws = nullptr) {
  const int c = x.shape()[0];
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  T y = [&] {
    if constexpr (std::is_same_v<T, QTensor>) {
      return ws_qtensor(ws, Shape{c, 2 * h, 2 * w}, x.params());
    } else {
      return ws_tensor(ws, Shape{c, 2 * h, 2 * w});
    }
  }();
  for (int ch = 0; ch < c; ++ch) {
    for (int oy = 0; oy < 2 * h; ++oy) {
      for (int ox = 0; ox < 2 * w; ++ox) {
        y.at(ch, oy, ox) = x.at(ch, oy / 2, ox / 2);
      }
    }
  }
  return y;
}

template <typename Fn, typename TensorT>
TensorT attn_tokens(Fn&& attn, const TensorT& map, Workspace* ws = nullptr) {
  const int h = map.shape()[1];
  const int w = map.shape()[2];
  auto tokens = to_tokens(map, ws);
  auto out = attn(tokens);
  ws_release(ws, std::move(tokens));
  auto result = from_tokens(out, h, w, ws);
  ws_release(ws, std::move(out));
  return result;
}

}  // namespace

EfficientViTB0Like::EfficientViTB0Like(const EfficientViTConfig& config)
    : config_(config) {
  GQA_EXPECTS(config.widths.size() == 4);
  Rng rng(config.seed);
  const auto& w = config.widths;
  // Stem: 3x3 stride-2 conv + HSWISH -> H/2.
  stem_ = std::make_unique<Conv2d>(config.in_channels, w[0], 3, 2, 1, rng);
  stem_->set_po2_output(true);  // HSWISH pwl consumes the stem output
  // Stage 1: MBConv stride 2 -> H/4.
  stage1_ = std::make_unique<MbConv>(w[0], w[1], config.expand, 2, rng);
  // Stage 2: MBConv stride 2 -> H/8.
  stage2_ = std::make_unique<MbConv>(w[1], w[2], config.expand, 2, rng);
  // Stage 3: MBConv (stride 1) + EfficientViT module at H/8.
  stage3_ = std::make_unique<MbConv>(w[2], w[2], config.expand, 1, rng);
  evit3_.attn = std::make_unique<LinearAttention>(w[2], rng);
  evit3_.ffn = std::make_unique<MbConv>(w[2], w[2], config.expand, 1, rng);
  // Stage 4: MBConv stride 2 -> H/16 + EfficientViT module.
  stage4_ = std::make_unique<MbConv>(w[2], w[3], config.expand, 2, rng);
  evit4_.attn = std::make_unique<LinearAttention>(w[3], rng);
  evit4_.ffn = std::make_unique<MbConv>(w[3], w[3], config.expand, 1, rng);
  // Multi-scale head at H/8.
  head_conv_ = std::make_unique<Conv2d>(w[2] + w[3], config.head_dim, 1, 1, 0,
                                        rng);
  head_conv_->set_po2_output(true);  // HSWISH pwl consumes the head features
  classifier_ = std::make_unique<Conv2d>(config.head_dim, config.num_classes,
                                         1, 1, 0, rng);
}

namespace {

Tensor concat_maps(const Tensor& a, const Tensor& b) {
  GQA_EXPECTS(a.shape()[1] == b.shape()[1] && a.shape()[2] == b.shape()[2]);
  const int ca = a.shape()[0];
  const int cb = b.shape()[0];
  const int h = a.shape()[1];
  const int w = a.shape()[2];
  Tensor y(Shape{ca + cb, h, w});
  for (int c = 0; c < ca; ++c)
    for (int yy = 0; yy < h; ++yy)
      for (int xx = 0; xx < w; ++xx) y.at(c, yy, xx) = a.at(c, yy, xx);
  for (int c = 0; c < cb; ++c)
    for (int yy = 0; yy < h; ++yy)
      for (int xx = 0; xx < w; ++xx) y.at(ca + c, yy, xx) = b.at(c, yy, xx);
  return y;
}

}  // namespace

Tensor EfficientViTB0Like::penultimate_fp(const Tensor& image,
                                          ThreadPool* pool,
                                          Workspace* ws) const {
  Tensor stem = stem_->forward_fp(image, pool, ws);
  Tensor x = stem_act_.forward_fp(stem, pool, ws);
  ws_release(ws, std::move(stem));
  Tensor t = stage1_->forward_fp(x, pool, ws);
  ws_release(ws, std::move(x));
  x = stage2_->forward_fp(t, pool, ws);
  ws_release(ws, std::move(t));
  t = stage3_->forward_fp(x, pool, ws);
  ws_release(ws, std::move(x));
  x = std::move(t);
  {
    Tensor a = attn_tokens(
        [this, pool, ws](const Tensor& tk) {
          return evit3_.attn->forward_fp(tk, pool, ws);
        },
        x, ws);
    Tensor sum = evit3_.add.forward_fp(x, a, pool, ws);
    ws_release(ws, std::move(a));
    ws_release(ws, std::move(x));
    x = evit3_.ffn->forward_fp(sum, pool, ws);
    ws_release(ws, std::move(sum));
  }
  const Tensor f3 = x;
  t = stage4_->forward_fp(x, pool, ws);
  ws_release(ws, std::move(x));
  x = std::move(t);
  {
    Tensor a = attn_tokens(
        [this, pool, ws](const Tensor& tk) {
          return evit4_.attn->forward_fp(tk, pool, ws);
        },
        x, ws);
    Tensor sum = evit4_.add.forward_fp(x, a, pool, ws);
    ws_release(ws, std::move(a));
    ws_release(ws, std::move(x));
    x = evit4_.ffn->forward_fp(sum, pool, ws);
    ws_release(ws, std::move(sum));
  }
  Tensor up = upsample2x(x, ws);
  ws_release(ws, std::move(x));
  const Tensor fused = concat_maps(f3, up);
  ws_release(ws, std::move(up));
  Tensor conv = head_conv_->forward_fp(fused, pool, ws);
  Tensor feat = head_act_.forward_fp(conv, pool, ws);
  ws_release(ws, std::move(conv));
  Tensor out = to_tokens(feat, ws);
  ws_release(ws, std::move(feat));
  return out;
}

Tensor EfficientViTB0Like::forward_fp(const Tensor& image,
                                      ThreadPool* pool, Workspace* ws) const {
  Tensor tokens = penultimate_fp(image, pool, ws);
  const int side = config_.image_size / 8;
  Tensor map = from_tokens(tokens, side, side, ws);
  ws_release(ws, std::move(tokens));
  Tensor out = classifier_->forward_fp(map, pool);
  ws_release(ws, std::move(map));
  return out;
}

void EfficientViTB0Like::train_classifier(
    const std::vector<Tensor>& images,
    const std::vector<std::vector<int>>& eighth_labels, int epochs,
    double learning_rate) {
  GQA_EXPECTS(images.size() == eighth_labels.size() && !images.empty());
  std::vector<Tensor> features;
  features.reserve(images.size());
  for (const Tensor& image : images) features.push_back(penultimate_fp(image));
  // A 1x1 conv classifier is a per-pixel linear map; its weight layout
  // {classes, dim, 1, 1} matches the probe's row-major {classes, dim}.
  (void)train_softmax_probe(
      features, eighth_labels, config_.num_classes,
      std::span<float>(classifier_->weights().data()),
      std::span<float>(classifier_->bias().data()), epochs, learning_rate,
      config_.seed ^ 0x7EA1);
}

void EfficientViTB0Like::calibrate(const Tensor& image) {
  input_obs_.observe(std::span<const float>(image.data()));
  Tensor x = stem_act_.calibrate(stem_->calibrate(image));
  x = stage1_->calibrate(x);
  x = stage2_->calibrate(x);
  x = stage3_->calibrate(x);
  {
    const Tensor a = attn_tokens(
        [this](const Tensor& t) { return evit3_.attn->calibrate(t); }, x);
    x = evit3_.add.calibrate(x, a);
    x = evit3_.ffn->calibrate(x);
  }
  const Tensor f3 = x;
  fuse_obs_.observe(std::span<const float>(f3.data()));
  x = stage4_->calibrate(x);
  {
    const Tensor a = attn_tokens(
        [this](const Tensor& t) { return evit4_.attn->calibrate(t); }, x);
    x = evit4_.add.calibrate(x, a);
    x = evit4_.ffn->calibrate(x);
  }
  fuse_obs_.observe(std::span<const float>(x.data()));
  const Tensor fused = concat_maps(f3, upsample2x(x));
  (void)classifier_->calibrate(
      head_act_.calibrate(head_conv_->calibrate(fused)));
}

void EfficientViTB0Like::freeze() {
  GQA_EXPECTS_MSG(!input_obs_.empty(), "freeze() requires prior calibration");
  const QuantPolicy policy;
  input_qp_ = input_obs_.make_po2(policy.act_bits);
  QuantParams qp = stem_->freeze(input_qp_, policy);
  qp = stem_act_.freeze(qp, policy);
  qp = stage1_->freeze(qp, policy);
  qp = stage2_->freeze(qp, policy);
  qp = stage3_->freeze(qp, policy);
  {
    const QuantParams a_qp = evit3_.attn->freeze(qp, policy);
    qp = evit3_.add.freeze(qp, a_qp, policy);
    qp = evit3_.ffn->freeze(qp, policy);
  }
  const QuantParams f3_qp = qp;
  qp = stage4_->freeze(qp, policy);
  {
    const QuantParams a_qp = evit4_.attn->freeze(qp, policy);
    qp = evit4_.add.freeze(qp, a_qp, policy);
    qp = evit4_.ffn->freeze(qp, policy);
  }
  // Concat requantization onto a shared scale.
  fuse_qp_ = fuse_obs_.make_params(policy.act_bits);
  rq_f3_ = Requantizer(f3_qp.scale, fuse_qp_);
  rq_f4_ = Requantizer(qp.scale, fuse_qp_);
  qp = head_conv_->freeze(fuse_qp_, policy);
  qp = head_act_.freeze(qp, policy);
  (void)classifier_->freeze(qp, policy);
  frozen_ = true;
}

QTensor EfficientViTB0Like::forward_int(const Tensor& image,
                                        const NonlinearProvider& nl,
                                        ThreadPool* pool, Workspace* ws) const {
  GQA_EXPECTS_MSG(frozen_, "forward_int() requires freeze()");
  QTensor x = QTensor::quantize(image, input_qp_);
  QTensor stem = stem_->forward_int(x, pool, ws);
  ws_release(ws, std::move(x));
  x = stem_act_.forward_int(stem, nl, pool, ws);
  ws_release(ws, std::move(stem));
  QTensor t = stage1_->forward_int(x, nl, pool, ws);
  ws_release(ws, std::move(x));
  x = stage2_->forward_int(t, nl, pool, ws);
  ws_release(ws, std::move(t));
  t = stage3_->forward_int(x, nl, pool, ws);
  ws_release(ws, std::move(x));
  x = std::move(t);
  {
    QTensor a = attn_tokens(
        [this, &nl, pool, ws](const QTensor& tk) {
          return evit3_.attn->forward_int(tk, nl, pool, ws);
        },
        x, ws);
    QTensor sum = evit3_.add.forward_int(x, a, pool, ws);
    ws_release(ws, std::move(a));
    ws_release(ws, std::move(x));
    x = evit3_.ffn->forward_int(sum, nl, pool, ws);
    ws_release(ws, std::move(sum));
  }
  const QTensor f3 = x;
  t = stage4_->forward_int(x, nl, pool, ws);
  ws_release(ws, std::move(x));
  x = std::move(t);
  {
    QTensor a = attn_tokens(
        [this, &nl, pool, ws](const QTensor& tk) {
          return evit4_.attn->forward_int(tk, nl, pool, ws);
        },
        x, ws);
    QTensor sum = evit4_.add.forward_int(x, a, pool, ws);
    ws_release(ws, std::move(a));
    ws_release(ws, std::move(x));
    x = evit4_.ffn->forward_int(sum, nl, pool, ws);
    ws_release(ws, std::move(sum));
  }
  // Integer concat on the shared fuse scale.
  QTensor f4_up = upsample2x(x, ws);
  ws_release(ws, std::move(x));
  const int h = f3.shape()[1];
  const int w = f3.shape()[2];
  const int c3 = f3.shape()[0];
  const int c4 = f4_up.shape()[0];
  QTensor fused = ws_qtensor(ws, Shape{c3 + c4, h, w}, fuse_qp_);
  for (int c = 0; c < c3; ++c)
    for (int yy = 0; yy < h; ++yy)
      for (int xx = 0; xx < w; ++xx)
        fused.at(c, yy, xx) =
            static_cast<std::int32_t>(rq_f3_.apply(f3.at(c, yy, xx)));
  for (int c = 0; c < c4; ++c)
    for (int yy = 0; yy < h; ++yy)
      for (int xx = 0; xx < w; ++xx)
        fused.at(c3 + c, yy, xx) =
            static_cast<std::int32_t>(rq_f4_.apply(f4_up.at(c, yy, xx)));
  ws_release(ws, std::move(f4_up));
  QTensor conv = head_conv_->forward_int(fused, pool, ws);
  ws_release(ws, std::move(fused));
  QTensor feat = head_act_.forward_int(conv, nl, pool, ws);
  ws_release(ws, std::move(conv));
  QTensor out = classifier_->forward_int(feat, pool);
  ws_release(ws, std::move(feat));
  return out;
}

std::vector<Tensor> EfficientViTB0Like::forward_fp_batch(
    std::span<const Tensor> images, ThreadPool* pool,
    WorkspacePool* workspaces) const {
  return ws_batch<Tensor>(images.size(), pool, workspaces,
                          [&](std::size_t i, Workspace* ws) {
                            return forward_fp(images[i], nullptr, ws);
                          });
}

std::vector<QTensor> EfficientViTB0Like::forward_int_batch(
    std::span<const Tensor> images, const NonlinearProvider& nl,
    ThreadPool* pool, WorkspacePool* workspaces) const {
  return ws_batch<QTensor>(images.size(), pool, workspaces,
                           [&](std::size_t i, Workspace* ws) {
                             return forward_int(images[i], nl, nullptr, ws);
                           });
}

std::vector<int> EfficientViTB0Like::argmax_labels(const Tensor& logits) {
  return argmax_label_map(logits);
}

std::vector<int> EfficientViTB0Like::argmax_labels(const QTensor& logits) {
  return argmax_label_map(logits);
}

}  // namespace gqa::tfm
