# Empty compiler generated dependencies file for gqa_lut_cli.
# This may be replaced when dependencies are built.
