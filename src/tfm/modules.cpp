#include "tfm/modules.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernel/dispatch.h"
#include "numerics/nonlinear.h"
#include "numerics/rounding.h"
#include "util/contracts.h"

namespace gqa::tfm {

namespace {

/// Symmetric per-tensor weight quantization to INT8 codes.
double quantize_weights(const Tensor& w, std::vector<std::int8_t>& codes) {
  const double scale = std::max(w.amax(), 1e-8) / 127.0;
  codes.resize(w.data().size());
  for (std::size_t i = 0; i < w.data().size(); ++i) {
    codes[i] = static_cast<std::int8_t>(saturate(
        round_to_int(static_cast<double>(w.data()[i]) / scale), 8, true));
  }
  return scale;
}

std::vector<std::int32_t> quantize_bias(const Tensor& b, double acc_scale) {
  std::vector<std::int32_t> codes(b.data().size());
  for (std::size_t i = 0; i < b.data().size(); ++i) {
    codes[i] = static_cast<std::int32_t>(saturate(
        round_to_int(static_cast<double>(b.data()[i]) / acc_scale), 31, true));
  }
  return codes;
}

int conv_out_size(int in, int kernel, int stride, int pad) {
  // Guard the numerator, not the quotient: for stride > 1 C++ integer
  // division truncates toward zero, so a kernel window that never fits
  // (negative numerator) would still round up to an output size of 1.
  GQA_EXPECTS_MSG(in + 2 * pad - kernel >= 0,
                  "conv input (plus padding) is smaller than the kernel: "
                  "output spatial size would be non-positive");
  return (in + 2 * pad - kernel) / stride + 1;
}

// Granularity floors for the intra-forward fan-outs: below these, the
// per-task work cannot amortize pool dispatch and pooled_for runs inline
// (bit-identical either way). Rows cover token matrices (per-row cost is a
// dot-product sweep), channels cover conv output maps (heavy per channel),
// elems cover pointwise loops.
constexpr std::size_t kMinRowsPerLane = 8;
constexpr std::size_t kMinChannelsPerLane = 2;
constexpr std::size_t kMinElemsPerLane = 4096;

/// Workspace handle usable inside a fan-out body: the workspace may only be
/// touched by the calling thread, so it is forwarded only when the fan-out
/// is guaranteed to run inline (no pool / single lane).
Workspace* inline_ws(ThreadPool* pool, Workspace* ws) {
  return (pool == nullptr || pool->size() <= 1) ? ws : nullptr;
}

}  // namespace

// --------------------------------------------------------------- Linear ---

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  GQA_EXPECTS(in_features >= 1 && out_features >= 1);
  const double std = std::sqrt(2.0 / (in_features + out_features));
  w_ = Tensor::randn(Shape{out_, in_}, rng, std);
  b_ = Tensor::randn(Shape{out_}, rng, 0.02);
}

Tensor Linear::forward_fp(const Tensor& x, ThreadPool* pool,
                          Workspace* ws) const {
  GQA_EXPECTS(x.shape().rank() == 2 && x.shape()[1] == in_);
  const int n = x.shape()[0];
  Tensor y = ws_tensor(ws, Shape{n, out_});
  pooled_for(
      pool, static_cast<std::size_t>(n),
      [&](std::size_t row) {
        const int i = static_cast<int>(row);
        for (int o = 0; o < out_; ++o) {
          double acc = b_.at(o);
          for (int k = 0; k < in_; ++k) acc += x.at(i, k) * w_.at(o, k);
          y.at(i, o) = static_cast<float>(acc);
        }
      },
      kMinRowsPerLane);
  return y;
}

Tensor Linear::calibrate(const Tensor& x) {
  Tensor y = forward_fp(x);
  out_obs_.observe(std::span<const float>(y.data()));
  return y;
}

QuantParams Linear::freeze(const QuantParams& in_qp,
                           const QuantPolicy& policy) {
  GQA_EXPECTS_MSG(!out_obs_.empty(), "freeze() requires prior calibration");
  in_qp_ = in_qp;
  w_scale_ = quantize_weights(w_, wq_);
  const double acc_scale = in_qp.scale * w_scale_;
  bq_ = quantize_bias(b_, acc_scale);
  out_qp_ = po2_out_ ? out_obs_.make_po2(policy.act_bits)
                     : out_obs_.make_params(policy.act_bits);
  rq_ = Requantizer(acc_scale, out_qp_);
  return out_qp_;
}

QTensor Linear::forward_int(const QTensor& x, ThreadPool* pool,
                            Workspace* ws) const {
  GQA_EXPECTS(x.shape().rank() == 2 && x.shape()[1] == in_);
  GQA_EXPECTS_MSG(x.params() == in_qp_, "input params differ from freeze()");
  const int n = x.shape()[0];
  QTensor y = ws_qtensor(ws, Shape{n, out_}, out_qp_);
  // Dispatched inner product: integer accumulation reorders exactly (no
  // overflow within the INT8xINT8->int64 domain), so the SIMD dot equals
  // the scalar loop bit-for-bit and the bias-first order is preserved.
  const auto dot = kernel::active().ops.dot_i32_i8;
  pooled_for(
      pool, static_cast<std::size_t>(n),
      [&](std::size_t row) {
        const int i = static_cast<int>(row);
        const std::int32_t* xrow =
            x.data().data() + static_cast<std::size_t>(i) * in_;
        for (int o = 0; o < out_; ++o) {
          std::int64_t acc = bq_[static_cast<std::size_t>(o)];
          const std::size_t wrow = static_cast<std::size_t>(o) * in_;
          if (dot != nullptr) {
            acc += dot(xrow, wq_.data() + wrow, static_cast<std::size_t>(in_));
          } else {
            for (int k = 0; k < in_; ++k) {
              acc += static_cast<std::int64_t>(x.at(i, k)) * wq_[wrow + k];
            }
          }
          y.at(i, o) = static_cast<std::int32_t>(rq_.apply(acc));
        }
      },
      kMinRowsPerLane);
  return y;
}

// --------------------------------------------------------------- Conv2d ---

Conv2d::Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
               Rng& rng, bool depthwise)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      depthwise_(depthwise) {
  GQA_EXPECTS(in_ch >= 1 && out_ch >= 1 && kernel >= 1 && stride >= 1);
  if (depthwise_) GQA_EXPECTS_MSG(in_ch == out_ch, "depthwise needs in==out");
  const int fan_in = (depthwise_ ? 1 : in_ch) * kernel * kernel;
  const double std = std::sqrt(2.0 / fan_in);
  w_ = Tensor::randn(Shape{out_ch_, depthwise_ ? 1 : in_ch_, kernel_, kernel_},
                     rng, std);
  b_ = Tensor::randn(Shape{out_ch_}, rng, 0.02);
}

Tensor Conv2d::forward_fp(const Tensor& x, ThreadPool* pool,
                          Workspace* ws) const {
  GQA_EXPECTS(x.shape().rank() == 3 && x.shape()[0] == in_ch_);
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  const int oh = conv_out_size(h, kernel_, stride_, pad_);
  const int ow = conv_out_size(w, kernel_, stride_, pad_);
  Tensor y = ws_tensor(ws, Shape{out_ch_, oh, ow});
  pooled_for(pool, static_cast<std::size_t>(out_ch_), [&](std::size_t ch) {
    const int oc = static_cast<int>(ch);
    const int ic_lo = depthwise_ ? oc : 0;
    const int ic_hi = depthwise_ ? oc + 1 : in_ch_;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        double acc = b_.at(oc);
        for (int ic = ic_lo; ic < ic_hi; ++ic) {
          const int wc = depthwise_ ? 0 : ic;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ - pad_ + ky;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ - pad_ + kx;
              if (ix < 0 || ix >= w) continue;
              acc += x.at(ic, iy, ix) * w_.at(oc, wc, ky, kx);
            }
          }
        }
        y.at(oc, oy, ox) = static_cast<float>(acc);
      }
    }
  }, kMinChannelsPerLane);
  return y;
}

Tensor Conv2d::calibrate(const Tensor& x) {
  Tensor y = forward_fp(x);
  out_obs_.observe(std::span<const float>(y.data()));
  return y;
}

QuantParams Conv2d::freeze(const QuantParams& in_qp,
                           const QuantPolicy& policy) {
  GQA_EXPECTS_MSG(!out_obs_.empty(), "freeze() requires prior calibration");
  in_qp_ = in_qp;
  w_scale_ = quantize_weights(w_, wq_);
  const double acc_scale = in_qp.scale * w_scale_;
  bq_ = quantize_bias(b_, acc_scale);
  out_qp_ = po2_out_ ? out_obs_.make_po2(policy.act_bits)
                     : out_obs_.make_params(policy.act_bits);
  rq_ = Requantizer(acc_scale, out_qp_);
  return out_qp_;
}

QTensor Conv2d::forward_int(const QTensor& x, ThreadPool* pool,
                            Workspace* ws) const {
  GQA_EXPECTS(x.shape().rank() == 3 && x.shape()[0] == in_ch_);
  GQA_EXPECTS_MSG(x.params() == in_qp_, "input params differ from freeze()");
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  const int oh = conv_out_size(h, kernel_, stride_, pad_);
  const int ow = conv_out_size(w, kernel_, stride_, pad_);
  QTensor y = ws_qtensor(ws, Shape{out_ch_, oh, ow}, out_qp_);
  const std::size_t kk = static_cast<std::size_t>(kernel_) * kernel_;
  const std::size_t per_oc = (depthwise_ ? 1 : static_cast<std::size_t>(in_ch_)) * kk;
  // Pointwise (1x1, stride 1, no pad, dense) convolutions are plane-wise
  // axpy chains: per output channel, accumulate w[oc,ic]·x[ic,·] over the
  // contiguous input planes into an int64 plane seeded with the bias. The
  // per-pixel summation order (bias, then ic ascending) matches the scalar
  // loop exactly, so the requantized codes are bit-identical. All other
  // conv shapes keep the scalar loops below.
  const auto axpy = kernel::active().ops.axpy_i64_i32;
  if (axpy != nullptr && kernel_ == 1 && stride_ == 1 && pad_ == 0 &&
      !depthwise_) {
    const std::size_t plane = static_cast<std::size_t>(h) * w;
    pooled_for(pool, static_cast<std::size_t>(out_ch_), [&](std::size_t ch) {
      const int oc = static_cast<int>(ch);
      std::vector<std::int64_t> acc(
          plane, static_cast<std::int64_t>(bq_[static_cast<std::size_t>(oc)]));
      for (int ic = 0; ic < in_ch_; ++ic) {
        axpy(acc.data(),
             x.data().data() + static_cast<std::size_t>(ic) * plane,
             wq_[static_cast<std::size_t>(oc) * in_ch_ + ic], plane);
      }
      std::int32_t* yplane = y.data().data() + static_cast<std::size_t>(oc) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        yplane[p] = static_cast<std::int32_t>(rq_.apply(acc[p]));
      }
    }, kMinChannelsPerLane);
    return y;
  }
  pooled_for(pool, static_cast<std::size_t>(out_ch_), [&](std::size_t ch) {
    const int oc = static_cast<int>(ch);
    const int ic_lo = depthwise_ ? oc : 0;
    const int ic_hi = depthwise_ ? oc + 1 : in_ch_;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::int64_t acc = bq_[static_cast<std::size_t>(oc)];
        for (int ic = ic_lo; ic < ic_hi; ++ic) {
          const int wc = depthwise_ ? 0 : ic;
          const std::size_t base =
              static_cast<std::size_t>(oc) * per_oc + static_cast<std::size_t>(wc) * kk;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ - pad_ + ky;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ - pad_ + kx;
              if (ix < 0 || ix >= w) continue;
              acc += static_cast<std::int64_t>(x.at(ic, iy, ix)) *
                     wq_[base + static_cast<std::size_t>(ky) * kernel_ + kx];
            }
          }
        }
        y.at(oc, oy, ox) = static_cast<std::int32_t>(rq_.apply(acc));
      }
    }
  }, kMinChannelsPerLane);
  return y;
}

// ------------------------------------------------------------ LayerNorm ---

LayerNorm::LayerNorm(int dim, Rng& rng) : dim_(dim) {
  GQA_EXPECTS(dim >= 2);
  gamma_ = Tensor(Shape{dim_});
  beta_ = Tensor(Shape{dim_});
  for (int i = 0; i < dim_; ++i) {
    gamma_.at(i) = static_cast<float>(1.0 + rng.normal(0.0, 0.05));
    beta_.at(i) = static_cast<float>(rng.normal(0.0, 0.05));
  }
}

Tensor LayerNorm::forward_fp(const Tensor& x, ThreadPool* pool,
                             Workspace* ws) const {
  GQA_EXPECTS(x.shape().rank() == 2 && x.shape()[1] == dim_);
  const int n = x.shape()[0];
  Tensor y = ws_tensor(ws, x.shape());
  pooled_for(pool, static_cast<std::size_t>(n), [&](std::size_t row) {
    const int i = static_cast<int>(row);
    double mean = 0.0;
    for (int d = 0; d < dim_; ++d) mean += x.at(i, d);
    mean /= dim_;
    double var = 0.0;
    for (int d = 0; d < dim_; ++d) {
      const double c = x.at(i, d) - mean;
      var += c * c;
    }
    var /= dim_;
    const double inv = 1.0 / std::sqrt(var + 1e-5);
    for (int d = 0; d < dim_; ++d) {
      y.at(i, d) = static_cast<float>((x.at(i, d) - mean) * inv * gamma_.at(d) +
                                      beta_.at(d));
    }
  }, kMinRowsPerLane);
  return y;
}

Tensor LayerNorm::calibrate(const Tensor& x) {
  Tensor y = forward_fp(x);
  out_obs_.observe(std::span<const float>(y.data()));
  return y;
}

QuantParams LayerNorm::freeze(const QuantParams& in_qp,
                              const QuantPolicy& policy) {
  GQA_EXPECTS_MSG(!out_obs_.empty(), "freeze() requires prior calibration");
  in_qp_ = in_qp;
  out_qp_ = out_obs_.make_params(policy.act_bits);
  return out_qp_;
}

QTensor LayerNorm::forward_int(const QTensor& x, const NonlinearProvider& nl,
                               ThreadPool* pool, Workspace* ws) const {
  GQA_EXPECTS(x.shape().rank() == 2 && x.shape()[1] == dim_);
  GQA_EXPECTS_MSG(x.params() == in_qp_, "input params differ from freeze()");
  const int n = x.shape()[0];
  QTensor y = ws_qtensor(ws, x.shape(), out_qp_);
  constexpr int kVarFrac = 8;  ///< fractional bits of the variance bus
  // Pass 1: per-row integer moments and variance bus codes, so every row's
  // RSQRT streams through the multi-range unit in one batched call.
  // Staging vectors come from the workspace (allocated and released on the
  // calling thread, outside the fan-outs).
  std::vector<std::int64_t> sums = ws_i64(ws, static_cast<std::size_t>(n));
  std::vector<std::int64_t> w_codes = ws_i64(ws, static_cast<std::size_t>(n));
  std::vector<std::int64_t> prenorm = ws_i64(ws, static_cast<std::size_t>(n));
  // Dispatched row moments: the sum is a pure integer reduction (exact in
  // any order); the centered second moment squares c = D·q − Σq in 32-bit
  // lanes, so it is dispatched only when |c| provably fits int32 — i.e.
  // 2·D·2^(bits−1) stays under the int32 ceiling. Out-of-bound widths keep
  // the scalar loops.
  const auto row_sum = kernel::active().ops.sum_i32;
  auto row_ssq = kernel::active().ops.ssq_centered_i32;
  const std::int64_t amax = std::max(-int_min(in_qp_.bits, in_qp_.is_signed),
                                     int_max(in_qp_.bits, in_qp_.is_signed));
  if (2 * static_cast<std::int64_t>(dim_) * amax >
      std::numeric_limits<std::int32_t>::max()) {
    row_ssq = nullptr;
  }
  pooled_for(pool, static_cast<std::size_t>(n), [&](std::size_t row) {
    const int i = static_cast<int>(row);
    const std::int32_t* xrow =
        x.data().data() + static_cast<std::size_t>(i) * dim_;
    // Exact integer moments via the D-scaled centering trick:
    // c'_d = D·q_d − Σq  has value D·S·(x_d − μ), no mean rounding.
    std::int64_t sum = 0;
    if (row_sum != nullptr) {
      sum = row_sum(xrow, static_cast<std::size_t>(dim_));
    } else {
      for (int d = 0; d < dim_; ++d) sum += x.at(i, d);
    }
    sums[static_cast<std::size_t>(i)] = sum;
    // W = (Σ c'²)/D³ has value S²σ²·D⁰... normalized so that
    // n_d = c'_d / (D·σ_q) with σ_q in code units; the quant scale cancels.
    std::int64_t ssq = 0;  // Σ c'² / D, rounded — fits int64 for D ≤ 4096
    std::int64_t raw = 0;
    if (row_ssq != nullptr) {
      raw = row_ssq(xrow, dim_, sum, static_cast<std::size_t>(dim_));
    } else {
      for (int d = 0; d < dim_; ++d) {
        const std::int64_t c =
            static_cast<std::int64_t>(dim_) * x.at(i, d) - sum;
        raw += c * c;
      }
    }
    ssq = shift_round(raw, 0) / dim_;  // Σc'²/D, exact division remainder dropped
    // Variance bus: W_code = (Σc'²/D) · 2^kVarFrac / D²  (value = σ_q²·D⁰·2^f)
    const double var_codes =
        static_cast<double>(ssq) / (static_cast<double>(dim_) * dim_);
    std::int64_t w_code = std::max<std::int64_t>(
        1, round_to_int(std::ldexp(var_codes, kVarFrac)));
    // Power-of-4 pre-normalization into the RSQRT multi-range span
    // [0.25, 16384): rsqrt(W) = 2^-t · rsqrt(W·2^-2t).
    int t = 0;
    while (std::ldexp(static_cast<double>(w_code), -kVarFrac - 2 * t) >=
           16384.0) {
      ++t;
    }
    w_codes[static_cast<std::size_t>(i)] =
        std::max<std::int64_t>(1, shift_round(w_code, 2 * t));
    prenorm[static_cast<std::size_t>(i)] = t;
  }, kMinRowsPerLane);
  std::vector<double> rsqrts = ws_f64(ws, static_cast<std::size_t>(n));
  nl.rsqrt_fxp_batch(w_codes, kVarFrac, rsqrts);
  // Pass 2: n_d = c'_d/(D·σ_q); y = γ n + β quantized to the output scale.
  pooled_for(pool, static_cast<std::size_t>(n), [&](std::size_t row) {
    const int i = static_cast<int>(row);
    const std::int64_t sum = sums[static_cast<std::size_t>(i)];
    const double inv_sigma_q = std::ldexp(
        rsqrts[static_cast<std::size_t>(i)],
        -static_cast<int>(prenorm[static_cast<std::size_t>(i)]));
    for (int d = 0; d < dim_; ++d) {
      const std::int64_t c = static_cast<std::int64_t>(dim_) * x.at(i, d) - sum;
      const double norm = static_cast<double>(c) * inv_sigma_q / dim_;
      const double val = gamma_.at(d) * norm + beta_.at(d);
      y.at(i, d) = static_cast<std::int32_t>(out_qp_.quantize(val));
    }
  }, kMinRowsPerLane);
  ws_release(ws, std::move(sums));
  ws_release(ws, std::move(w_codes));
  ws_release(ws, std::move(prenorm));
  ws_release(ws, std::move(rsqrts));
  return y;
}

// -------------------------------------------------------------- Softmax ---

Tensor Softmax::forward_fp(const Tensor& rows, ThreadPool* pool,
                           Workspace* ws) {
  GQA_EXPECTS(rows.shape().rank() == 2);
  const int n = rows.shape()[0];
  const int m = rows.shape()[1];
  Tensor y = ws_tensor(ws, rows.shape());
  pooled_for(pool, static_cast<std::size_t>(n), [&](std::size_t row) {
    const int i = static_cast<int>(row);
    double peak = rows.at(i, 0);
    for (int j = 1; j < m; ++j) peak = std::max<double>(peak, rows.at(i, j));
    double sum = 0.0;
    for (int j = 0; j < m; ++j) {
      const double e = std::exp(rows.at(i, j) - peak);
      y.at(i, j) = static_cast<float>(e);
      sum += e;
    }
    for (int j = 0; j < m; ++j) y.at(i, j) = static_cast<float>(y.at(i, j) / sum);
  }, kMinRowsPerLane);
  return y;
}

QTensor Softmax::forward_int(const QTensor& rows, const NonlinearProvider& nl,
                             ThreadPool* pool, Workspace* ws) {
  GQA_EXPECTS(rows.shape().rank() == 2);
  GQA_EXPECTS_MSG(rows.params().scale_is_po2(),
                  "Softmax input scale must be a power of two (§3.1)");
  GQA_EXPECTS_MSG(rows.params().is_signed,
                  "Softmax input codes must be signed (max-subtracted "
                  "differences are non-positive)");
  const int sx = rows.params().po2_exponent();
  const int n = rows.shape()[0];
  const int m = rows.shape()[1];
  QTensor y = ws_qtensor(ws, rows.shape(), prob_params());
  // exp outputs are exact multiples of 2^(sx - λ); summing then encoding
  // with frac = λ - sx keeps the DIV input bit-exact.
  const int sum_frac = std::min(40, std::max(8, 12 - sx));
  // Row chunks keep the per-lane scratch buffers hoisted out of the row
  // loop (one allocation pair per chunk, as the serial path always had).
  // Chunks running on pool workers may not touch the workspace, so it is
  // used only when the fan-out is inline.
  Workspace* lane_ws = inline_ws(pool, ws);
  pooled_for_chunks(
      pool, static_cast<std::size_t>(n), [&](std::size_t lo, std::size_t hi) {
        std::vector<std::int64_t> diffs =
            ws_i64(lane_ws, static_cast<std::size_t>(m));
        std::vector<double> exps = ws_f64(lane_ws, static_cast<std::size_t>(m));
        // Dispatched row peak (max is order-free) and max-subtracted
        // widening; the exp sum below is a float reduction and must stay
        // scalar (FP addition is not associative).
        const auto row_max = kernel::active().ops.max_i32;
        const auto sub_widen = kernel::active().ops.sub_scalar_widen_i32;
        for (std::size_t row = lo; row < hi; ++row) {
          const int i = static_cast<int>(row);
          const std::int32_t* xrow =
              rows.data().data() + static_cast<std::size_t>(i) * m;
          std::int32_t peak = rows.at(i, 0);
          if (row_max != nullptr) {
            peak = row_max(xrow, static_cast<std::size_t>(m));
          } else {
            for (int j = 1; j < m; ++j) peak = std::max(peak, rows.at(i, j));
          }
          if (sub_widen != nullptr) {
            sub_widen(xrow, peak, diffs.data(), static_cast<std::size_t>(m));
          } else {
            for (int j = 0; j < m; ++j) {
              diffs[static_cast<std::size_t>(j)] =
                  static_cast<std::int64_t>(rows.at(i, j)) - peak;
            }
          }
          // One batched EXP pass per row: the pwl unit is resolved once and
          // the whole row streams through its dense segment table.
          nl.exp_codes(diffs, sx, exps);
          double sum = 0.0;
          for (int j = 0; j < m; ++j) sum += exps[static_cast<std::size_t>(j)];
          const std::int64_t sum_code = std::max<std::int64_t>(
              1, round_to_int(std::ldexp(sum, sum_frac)));
          const double recip = nl.recip_fxp(sum_code, sum_frac);
          for (int j = 0; j < m; ++j) {
            const double p = exps[static_cast<std::size_t>(j)] * recip;
            y.at(i, j) = static_cast<std::int32_t>(prob_params().quantize(p));
          }
        }
        ws_release(lane_ws, std::move(diffs));
        ws_release(lane_ws, std::move(exps));
      },
      kMinRowsPerLane);
  return y;
}

// ----------------------------------------------------------- Activation ---

Tensor Activation::forward_fp(const Tensor& x, ThreadPool* pool,
                              Workspace* ws) const {
  Tensor y = ws_tensor(ws, x.shape());
  // Elementwise op: any contiguous split is exact.
  pooled_for_chunks(pool, x.data().size(),
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        y.data()[i] = static_cast<float>(
                            eval_op(op_, static_cast<double>(x.data()[i])));
                      }
                    },
                    kMinElemsPerLane);
  return y;
}

Tensor Activation::calibrate(const Tensor& x) {
  Tensor y = forward_fp(x);
  out_obs_.observe(std::span<const float>(y.data()));
  return y;
}

QuantParams Activation::freeze(const QuantParams& in_qp,
                               const QuantPolicy& policy) {
  GQA_EXPECTS_MSG(!out_obs_.empty(), "freeze() requires prior calibration");
  GQA_EXPECTS_MSG(in_qp.scale_is_po2(),
                  "activation input scale must be a power of two (§3.1)");
  in_qp_ = in_qp;
  out_qp_ = out_obs_.make_params(policy.act_bits);
  return out_qp_;
}

QTensor Activation::forward_int(const QTensor& x, const NonlinearProvider& nl,
                                ThreadPool* pool, Workspace* ws) const {
  GQA_EXPECTS_MSG(x.params() == in_qp_, "input params differ from freeze()");
  const int sx = x.params().po2_exponent();
  QTensor y = ws_qtensor(ws, x.shape(), out_qp_);
  // Batched activation threaded over contiguous slabs: each slab streams
  // through the dense segment table in one span call (batched ==
  // per-element bit-identical, so any split is exact). The staging buffers
  // are allocated before the fan-out on the calling thread; workers only
  // write disjoint ranges of them.
  const std::size_t count = x.data().size();
  std::vector<std::int64_t> codes = ws_i64(ws, count);
  std::vector<double> vals = ws_f64(ws, count);
  pooled_for_chunks(pool, count, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) codes[i] = x.data()[i];
    const std::span<const std::int64_t> in(codes.data() + lo, hi - lo);
    const std::span<double> out(vals.data() + lo, hi - lo);
    if (op_ == Op::kGelu) {
      nl.gelu_codes(in, sx, out);
    } else {
      nl.hswish_codes(in, sx, out);
    }
    for (std::size_t i = lo; i < hi; ++i) {
      y.data()[i] = static_cast<std::int32_t>(out_qp_.quantize(vals[i]));
    }
  }, kMinElemsPerLane);
  ws_release(ws, std::move(codes));
  ws_release(ws, std::move(vals));
  return y;
}

// ---------------------------------------------------------- ResidualAdd ---

Tensor ResidualAdd::forward_fp(const Tensor& a, const Tensor& b,
                               ThreadPool* pool, Workspace* ws) const {
  GQA_EXPECTS(a.shape() == b.shape());
  Tensor y = ws_tensor(ws, a.shape());
  pooled_for_chunks(pool, a.data().size(),
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        y.data()[i] = a.data()[i] + b.data()[i];
                      }
                    },
                    kMinElemsPerLane);
  return y;
}

Tensor ResidualAdd::calibrate(const Tensor& a, const Tensor& b) {
  Tensor y = forward_fp(a, b);
  out_obs_.observe(std::span<const float>(y.data()));
  return y;
}

QuantParams ResidualAdd::freeze(const QuantParams& a_qp,
                                const QuantParams& b_qp,
                                const QuantPolicy& policy) {
  GQA_EXPECTS_MSG(!out_obs_.empty(), "freeze() requires prior calibration");
  a_qp_ = a_qp;
  b_qp_ = b_qp;
  out_qp_ = out_obs_.make_params(policy.act_bits);
  rq_a_ = Requantizer(a_qp.scale, out_qp_);
  rq_b_ = Requantizer(b_qp.scale, out_qp_);
  return out_qp_;
}

QTensor ResidualAdd::forward_int(const QTensor& a, const QTensor& b,
                                 ThreadPool* pool, Workspace* ws) const {
  GQA_EXPECTS(a.shape() == b.shape());
  GQA_EXPECTS_MSG(a.params() == a_qp_,
                  "first operand params differ from freeze()");
  GQA_EXPECTS_MSG(b.params() == b_qp_,
                  "second operand params differ from freeze()");
  QTensor y = ws_qtensor(ws, a.shape(), out_qp_);
  pooled_for_chunks(
      pool, a.data().size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int64_t v =
              rq_a_.apply(a.data()[i]) + rq_b_.apply(b.data()[i]);
          y.data()[i] = static_cast<std::int32_t>(
              saturate(v, out_qp_.bits, out_qp_.is_signed));
        }
      },
      kMinElemsPerLane);
  return y;
}

// ---------------------------------------------------------- AttentionSR ---

AttentionSR::AttentionSR(int dim, int heads, int sr_ratio, Rng& rng)
    : dim_(dim),
      heads_(heads),
      sr_(sr_ratio),
      q_lin_(dim, dim, rng),
      k_lin_(dim, dim, rng),
      v_lin_(dim, dim, rng),
      proj_(dim, dim, rng) {
  GQA_EXPECTS(dim % heads == 0);
  GQA_EXPECTS(sr_ratio >= 1);
  if (sr_ > 1) {
    sr_conv_ = std::make_unique<Conv2d>(dim, dim, sr_, sr_, 0, rng);
  }
}

namespace {

/// Head-sliced score computation: scores[i,j] = q_i · k_j / sqrt(dh).
Tensor head_scores(const Tensor& q, const Tensor& k, int head, int dh,
                   Workspace* ws = nullptr) {
  const int n = q.shape()[0];
  const int m = k.shape()[0];
  const double inv = 1.0 / std::sqrt(static_cast<double>(dh));
  Tensor s = ws_tensor(ws, Shape{n, m});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double acc = 0.0;
      for (int d = 0; d < dh; ++d) {
        acc += q.at(i, head * dh + d) * k.at(j, head * dh + d);
      }
      s.at(i, j) = static_cast<float>(acc * inv);
    }
  }
  return s;
}

}  // namespace

Tensor AttentionSR::forward_fp(const Tensor& tokens, int h, int w,
                               ThreadPool* pool, Workspace* ws) const {
  Tensor q = q_lin_.forward_fp(tokens, pool, ws);
  Tensor reduced;
  const Tensor* kv_src = &tokens;
  if (sr_conv_) {
    Tensor map = from_tokens(tokens, h, w, ws);
    Tensor conv = sr_conv_->forward_fp(map, pool, ws);
    ws_release(ws, std::move(map));
    reduced = to_tokens(conv, ws);
    ws_release(ws, std::move(conv));
    kv_src = &reduced;
  }
  Tensor k = k_lin_.forward_fp(*kv_src, pool, ws);
  Tensor v = v_lin_.forward_fp(*kv_src, pool, ws);
  if (sr_conv_) ws_release(ws, std::move(reduced));
  const int n = tokens.shape()[0];
  const int dh = dim_ / heads_;
  Tensor ctx = ws_tensor(ws, Shape{n, dim_});
  // Heads are independent and write disjoint ctx columns; the per-head work
  // runs serially inside each lane (parallel_for is not reentrant). The
  // workspace backs per-head scratch only when the fan-out is inline.
  Workspace* lane_ws = inline_ws(pool, ws);
  pooled_for(pool, static_cast<std::size_t>(heads_), [&](std::size_t hd) {
    const int head = static_cast<int>(hd);
    Tensor scores = head_scores(q, k, head, dh, lane_ws);
    Tensor probs = Softmax::forward_fp(scores, nullptr, lane_ws);
    ws_release(lane_ws, std::move(scores));
    const int m = probs.shape()[1];
    for (int i = 0; i < n; ++i) {
      for (int d = 0; d < dh; ++d) {
        double acc = 0.0;
        for (int j = 0; j < m; ++j) acc += probs.at(i, j) * v.at(j, head * dh + d);
        ctx.at(i, head * dh + d) = static_cast<float>(acc);
      }
    }
    ws_release(lane_ws, std::move(probs));
  });
  ws_release(ws, std::move(q));
  ws_release(ws, std::move(k));
  ws_release(ws, std::move(v));
  Tensor out = proj_.forward_fp(ctx, pool, ws);
  ws_release(ws, std::move(ctx));
  return out;
}

Tensor AttentionSR::calibrate(const Tensor& tokens, int h, int w) {
  const Tensor q = q_lin_.calibrate(tokens);
  Tensor kv_src = tokens;
  if (sr_conv_) {
    kv_src = to_tokens(sr_conv_->calibrate(from_tokens(tokens, h, w)));
  }
  const Tensor k = k_lin_.calibrate(kv_src);
  const Tensor v = v_lin_.calibrate(kv_src);
  const int n = tokens.shape()[0];
  const int dh = dim_ / heads_;
  Tensor ctx(Shape{n, dim_});
  for (int head = 0; head < heads_; ++head) {
    Tensor scores = head_scores(q, k, head, dh);
    score_obs_.observe(std::span<const float>(scores.data()));
    const Tensor probs = Softmax::forward_fp(scores);
    const int m = probs.shape()[1];
    for (int i = 0; i < n; ++i) {
      for (int d = 0; d < dh; ++d) {
        double acc = 0.0;
        for (int j = 0; j < m; ++j) acc += probs.at(i, j) * v.at(j, head * dh + d);
        ctx.at(i, head * dh + d) = static_cast<float>(acc);
      }
    }
  }
  attn_obs_.observe(std::span<const float>(ctx.data()));
  return proj_.calibrate(ctx);
}

QuantParams AttentionSR::freeze(const QuantParams& in_qp,
                                const QuantPolicy& policy) {
  const QuantParams q_qp = q_lin_.freeze(in_qp, policy);
  QuantParams kv_in = in_qp;
  if (sr_conv_) kv_in = sr_conv_->freeze(in_qp, policy);
  const QuantParams k_qp = k_lin_.freeze(kv_in, policy);
  const QuantParams v_qp = v_lin_.freeze(kv_in, policy);

  // Scores: accumulator scale Sq·Sk with the 1/sqrt(dh) factor folded into
  // the dyadic requantizer; the Softmax input scale must be po2 (§4.2).
  score_qp_ = score_obs_.make_po2(policy.act_bits);
  const int dh = dim_ / heads_;
  rq_score_ = Requantizer(q_qp.scale * k_qp.scale / std::sqrt(static_cast<double>(dh)),
                          score_qp_);

  attn_qp_ = attn_obs_.make_params(policy.act_bits);
  rq_attn_ = Requantizer(Softmax::prob_params().scale * v_qp.scale, attn_qp_);
  return proj_.freeze(attn_qp_, policy);
}

QTensor AttentionSR::forward_int(const QTensor& tokens, int h, int w,
                                 const NonlinearProvider& nl,
                                 ThreadPool* pool, Workspace* ws) const {
  QTensor q = q_lin_.forward_int(tokens, pool, ws);
  QTensor reduced;
  const QTensor* kv_src = &tokens;
  if (sr_conv_) {
    QTensor map = from_tokens(tokens, h, w, ws);
    QTensor conv = sr_conv_->forward_int(map, pool, ws);
    ws_release(ws, std::move(map));
    reduced = to_tokens(conv, ws);
    ws_release(ws, std::move(conv));
    kv_src = &reduced;
  }
  QTensor k = k_lin_.forward_int(*kv_src, pool, ws);
  QTensor v = v_lin_.forward_int(*kv_src, pool, ws);
  const int n = tokens.shape()[0];
  const int m = kv_src->shape()[0];
  const int dh = dim_ / heads_;
  if (sr_conv_) ws_release(ws, std::move(reduced));
  QTensor ctx = ws_qtensor(ws, Shape{n, dim_}, attn_qp_);
  // Heads fan out across the pool: each lane owns its scores/probs buffers
  // and writes a disjoint ctx column block, with the provider's EXP/DIV
  // units shared concurrently (the caches are thread-safe). The workspace
  // backs per-head scratch only when the fan-out is inline.
  Workspace* lane_ws = inline_ws(pool, ws);
  pooled_for(pool, static_cast<std::size_t>(heads_), [&](std::size_t hd) {
    const int head = static_cast<int>(hd);
    // Integer scores + requant to the po2 Softmax input scale.
    QTensor scores = ws_qtensor(lane_ws, Shape{n, m}, score_qp_);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        std::int64_t acc = 0;
        for (int d = 0; d < dh; ++d) {
          acc += static_cast<std::int64_t>(q.at(i, head * dh + d)) *
                 k.at(j, head * dh + d);
        }
        scores.at(i, j) = static_cast<std::int32_t>(rq_score_.apply(acc));
      }
    }
    QTensor probs = Softmax::forward_int(scores, nl, nullptr, lane_ws);
    ws_release(lane_ws, std::move(scores));
    for (int i = 0; i < n; ++i) {
      for (int d = 0; d < dh; ++d) {
        std::int64_t acc = 0;
        for (int j = 0; j < m; ++j) {
          acc += static_cast<std::int64_t>(probs.at(i, j)) *
                 v.at(j, head * dh + d);
        }
        ctx.at(i, head * dh + d) = static_cast<std::int32_t>(rq_attn_.apply(acc));
      }
    }
    ws_release(lane_ws, std::move(probs));
  });
  ws_release(ws, std::move(q));
  ws_release(ws, std::move(k));
  ws_release(ws, std::move(v));
  QTensor out = proj_.forward_int(ctx, pool, ws);
  ws_release(ws, std::move(ctx));
  return out;
}

// ------------------------------------------------------ LinearAttention ---

LinearAttention::LinearAttention(int dim, Rng& rng)
    : dim_(dim),
      q_lin_(dim, dim, rng),
      k_lin_(dim, dim, rng),
      v_lin_(dim, dim, rng),
      proj_(dim, dim, rng) {}

namespace {

double relu(double x) { return x > 0.0 ? x : 0.0; }

}  // namespace

Tensor LinearAttention::forward_fp(const Tensor& tokens, ThreadPool* pool,
                                   Workspace* ws) const {
  Tensor q = q_lin_.forward_fp(tokens, pool, ws);
  Tensor k = k_lin_.forward_fp(tokens, pool, ws);
  Tensor v = v_lin_.forward_fp(tokens, pool, ws);
  const int n = tokens.shape()[0];
  // kv[c][d] = Σ_n relu(k)·v ; z[c] = Σ_n relu(k). The token reduction is
  // order-sensitive, so it stays serial; rows below are independent.
  Tensor kv = ws_tensor(ws, Shape{dim_, dim_});
  Tensor z = ws_tensor(ws, Shape{dim_});
  for (int j = 0; j < n; ++j) {
    for (int c = 0; c < dim_; ++c) {
      const double kc = relu(k.at(j, c));
      if (kc == 0.0) continue;
      z.at(c) += static_cast<float>(kc);
      for (int d = 0; d < dim_; ++d) kv.at(c, d) += static_cast<float>(kc * v.at(j, d));
    }
  }
  Tensor out = ws_tensor(ws, Shape{n, dim_});
  pooled_for(pool, static_cast<std::size_t>(n), [&](std::size_t row) {
    const int i = static_cast<int>(row);
    double den = 1e-6;
    for (int c = 0; c < dim_; ++c) den += relu(q.at(i, c)) * z.at(c);
    const double inv = 1.0 / den;
    for (int d = 0; d < dim_; ++d) {
      double num = 0.0;
      for (int c = 0; c < dim_; ++c) num += relu(q.at(i, c)) * kv.at(c, d);
      out.at(i, d) = static_cast<float>(num * inv);
    }
  }, kMinRowsPerLane);
  ws_release(ws, std::move(q));
  ws_release(ws, std::move(k));
  ws_release(ws, std::move(v));
  ws_release(ws, std::move(kv));
  ws_release(ws, std::move(z));
  Tensor y = proj_.forward_fp(out, pool, ws);
  ws_release(ws, std::move(out));
  return y;
}

Tensor LinearAttention::calibrate(const Tensor& tokens) {
  const Tensor q = q_lin_.calibrate(tokens);
  const Tensor k = k_lin_.calibrate(tokens);
  const Tensor v = v_lin_.calibrate(tokens);
  const int n = tokens.shape()[0];
  Tensor kv(Shape{dim_, dim_});
  Tensor z(Shape{dim_});
  for (int j = 0; j < n; ++j) {
    for (int c = 0; c < dim_; ++c) {
      const double kc = relu(k.at(j, c));
      if (kc == 0.0) continue;
      z.at(c) += static_cast<float>(kc);
      for (int d = 0; d < dim_; ++d) kv.at(c, d) += static_cast<float>(kc * v.at(j, d));
    }
  }
  Tensor out(Shape{n, dim_});
  for (int i = 0; i < n; ++i) {
    double den = 1e-6;
    for (int c = 0; c < dim_; ++c) den += relu(q.at(i, c)) * z.at(c);
    den_obs_.observe(den);
    const double inv = 1.0 / den;
    for (int d = 0; d < dim_; ++d) {
      double num = 0.0;
      for (int c = 0; c < dim_; ++c) num += relu(q.at(i, c)) * kv.at(c, d);
      out.at(i, d) = static_cast<float>(num * inv);
    }
  }
  out_obs_.observe(std::span<const float>(out.data()));
  return proj_.calibrate(out);
}

QuantParams LinearAttention::freeze(const QuantParams& in_qp,
                                    const QuantPolicy& policy) {
  const QuantParams q_qp = q_lin_.freeze(in_qp, policy);
  (void)k_lin_.freeze(in_qp, policy);
  (void)v_lin_.freeze(in_qp, policy);
  (void)q_qp;
  // Pre-scale the denominator into the DIV multi-range span [0.5, 256):
  // recip(x) = 2^g · recip(x·2^g), exact for power-of-two g.
  const double den_peak = std::max(den_obs_.max(), 1e-6);
  den_prescale_exp_ = -std::max(0, nearest_po2_exponent(den_peak) - 6);
  out_qp_ = out_obs_.make_params(policy.act_bits);
  return proj_.freeze(out_qp_, policy);
}

QTensor LinearAttention::forward_int(const QTensor& tokens,
                                     const NonlinearProvider& nl,
                                     ThreadPool* pool, Workspace* ws) const {
  QTensor q = q_lin_.forward_int(tokens, pool, ws);
  QTensor k = k_lin_.forward_int(tokens, pool, ws);
  QTensor v = v_lin_.forward_int(tokens, pool, ws);
  const int n = tokens.shape()[0];
  const double sq = q.params().scale;
  const double sk = k.params().scale;
  const double sv = v.params().scale;

  // Integer relu is a clamp at zero (symmetric scales preserve zero).
  std::vector<std::int64_t> kv = ws_i64(ws, static_cast<std::size_t>(dim_) * dim_);
  std::vector<std::int64_t> z = ws_i64(ws, static_cast<std::size_t>(dim_));
  for (int j = 0; j < n; ++j) {
    for (int c = 0; c < dim_; ++c) {
      const std::int64_t kc = std::max<std::int64_t>(0, k.at(j, c));
      if (kc == 0) continue;
      z[static_cast<std::size_t>(c)] += kc;
      for (int d = 0; d < dim_; ++d) {
        kv[static_cast<std::size_t>(c) * dim_ + d] += kc * v.at(j, d);
      }
    }
  }

  constexpr int kDenFrac = 16;
  QTensor out = ws_qtensor(ws, Shape{n, dim_}, out_qp_);
  pooled_for(pool, static_cast<std::size_t>(n), [&](std::size_t row) {
    const int i = static_cast<int>(row);
    std::int64_t den_acc = 0;
    for (int c = 0; c < dim_; ++c) {
      den_acc += std::max<std::int64_t>(0, q.at(i, c)) *
                 z[static_cast<std::size_t>(c)];
    }
    // den value = den_acc·Sq·Sk; pre-scaled by 2^g into the DIV span.
    const double den_value = std::max(
        1e-6, static_cast<double>(den_acc) * sq * sk);
    const std::int64_t den_code = std::max<std::int64_t>(
        1, round_to_int(std::ldexp(den_value, den_prescale_exp_ + kDenFrac)));
    const double inv =
        std::ldexp(nl.recip_fxp(den_code, kDenFrac), den_prescale_exp_);
    for (int d = 0; d < dim_; ++d) {
      std::int64_t num_acc = 0;
      for (int c = 0; c < dim_; ++c) {
        num_acc += std::max<std::int64_t>(0, q.at(i, c)) *
                   kv[static_cast<std::size_t>(c) * dim_ + d];
      }
      const double value = static_cast<double>(num_acc) * sq * sk * sv * inv;
      out.at(i, d) = static_cast<std::int32_t>(out_qp_.quantize(value));
    }
  }, kMinRowsPerLane);
  ws_release(ws, std::move(q));
  ws_release(ws, std::move(k));
  ws_release(ws, std::move(v));
  ws_release(ws, std::move(kv));
  ws_release(ws, std::move(z));
  QTensor y = proj_.forward_int(out, pool, ws);
  ws_release(ws, std::move(out));
  return y;
}

// --------------------------------------------------------------- MixFfn ---

MixFfn::MixFfn(int dim, int hidden, Rng& rng)
    : fc1_(dim, hidden, rng),
      fc2_(hidden, dim, rng),
      dw_(hidden, hidden, 3, 1, 1, rng, /*depthwise=*/true),
      act_(Op::kGelu) {
  dw_.set_po2_output(true);  // GELU pwl consumes the dwconv output
}

Tensor MixFfn::forward_fp(const Tensor& tokens, int h, int w,
                          ThreadPool* pool, Workspace* ws) const {
  Tensor x = fc1_.forward_fp(tokens, pool, ws);
  Tensor map = from_tokens(x, h, w, ws);
  ws_release(ws, std::move(x));
  Tensor conv = dw_.forward_fp(map, pool, ws);
  ws_release(ws, std::move(map));
  Tensor tok = to_tokens(conv, ws);
  ws_release(ws, std::move(conv));
  Tensor act = act_.forward_fp(tok, pool, ws);
  ws_release(ws, std::move(tok));
  Tensor y = fc2_.forward_fp(act, pool, ws);
  ws_release(ws, std::move(act));
  return y;
}

Tensor MixFfn::calibrate(const Tensor& tokens, int h, int w) {
  Tensor x = fc1_.calibrate(tokens);
  x = to_tokens(dw_.calibrate(from_tokens(x, h, w)));
  x = act_.calibrate(x);
  return fc2_.calibrate(x);
}

QuantParams MixFfn::freeze(const QuantParams& in_qp,
                           const QuantPolicy& policy) {
  QuantParams qp = fc1_.freeze(in_qp, policy);
  qp = dw_.freeze(qp, policy);
  qp = act_.freeze(qp, policy);
  return fc2_.freeze(qp, policy);
}

QTensor MixFfn::forward_int(const QTensor& tokens, int h, int w,
                            const NonlinearProvider& nl,
                            ThreadPool* pool, Workspace* ws) const {
  QTensor x = fc1_.forward_int(tokens, pool, ws);
  QTensor map = from_tokens(x, h, w, ws);
  ws_release(ws, std::move(x));
  QTensor conv = dw_.forward_int(map, pool, ws);
  ws_release(ws, std::move(map));
  QTensor tok = to_tokens(conv, ws);
  ws_release(ws, std::move(conv));
  QTensor act = act_.forward_int(tok, nl, pool, ws);
  ws_release(ws, std::move(tok));
  QTensor y = fc2_.forward_int(act, pool, ws);
  ws_release(ws, std::move(act));
  return y;
}

// --------------------------------------------------------------- MbConv ---

MbConv::MbConv(int in_ch, int out_ch, int expand, int stride, Rng& rng)
    : residual_(in_ch == out_ch && stride == 1),
      expand_(in_ch, in_ch * expand, 1, 1, 0, rng),
      dw_(in_ch * expand, in_ch * expand, 3, stride, 1, rng, /*depthwise=*/true),
      project_(in_ch * expand, out_ch, 1, 1, 0, rng),
      act1_(Op::kHswish),
      act2_(Op::kHswish) {
  expand_.set_po2_output(true);  // HSWISH pwl consumes both conv outputs
  dw_.set_po2_output(true);
}

Tensor MbConv::forward_fp(const Tensor& x, ThreadPool* pool,
                          Workspace* ws) const {
  Tensor t = expand_.forward_fp(x, pool, ws);
  Tensor y = act1_.forward_fp(t, pool, ws);
  ws_release(ws, std::move(t));
  t = dw_.forward_fp(y, pool, ws);
  ws_release(ws, std::move(y));
  y = act2_.forward_fp(t, pool, ws);
  ws_release(ws, std::move(t));
  t = project_.forward_fp(y, pool, ws);
  ws_release(ws, std::move(y));
  if (!residual_) return t;
  Tensor out = add_.forward_fp(t, x, pool, ws);
  ws_release(ws, std::move(t));
  return out;
}

Tensor MbConv::calibrate(const Tensor& x) {
  Tensor y = act1_.calibrate(expand_.calibrate(x));
  y = act2_.calibrate(dw_.calibrate(y));
  y = project_.calibrate(y);
  return residual_ ? add_.calibrate(y, x) : y;
}

QuantParams MbConv::freeze(const QuantParams& in_qp,
                           const QuantPolicy& policy) {
  QuantParams qp = expand_.freeze(in_qp, policy);
  qp = act1_.freeze(qp, policy);
  qp = dw_.freeze(qp, policy);
  qp = act2_.freeze(qp, policy);
  qp = project_.freeze(qp, policy);
  return residual_ ? add_.freeze(qp, in_qp, policy) : qp;
}

QTensor MbConv::forward_int(const QTensor& x, const NonlinearProvider& nl,
                            ThreadPool* pool, Workspace* ws) const {
  QTensor t = expand_.forward_int(x, pool, ws);
  QTensor y = act1_.forward_int(t, nl, pool, ws);
  ws_release(ws, std::move(t));
  t = dw_.forward_int(y, pool, ws);
  ws_release(ws, std::move(y));
  y = act2_.forward_int(t, nl, pool, ws);
  ws_release(ws, std::move(t));
  t = project_.forward_int(y, pool, ws);
  ws_release(ws, std::move(y));
  if (!residual_) return t;
  QTensor out = add_.forward_int(t, x, pool, ws);
  ws_release(ws, std::move(t));
  return out;
}

}  // namespace gqa::tfm
