# Empty compiler generated dependencies file for coserve_request_stream.
# This may be replaced when dependencies are built.
