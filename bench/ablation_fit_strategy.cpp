// Ablation: per-segment least squares vs endpoint interpolation for
// deriving (k, b) from breakpoints — the fit-strategy design choice called
// out in DESIGN.md §5.
#include "bench_util.h"
#include "gqa/gqa_lut.h"

using namespace gqa;

int main() {
  std::printf("== Ablation: slope/intercept fit strategy ==\n");
  TablePrinter table({"Op", "Least squares", "Interpolation", "LS gain"});
  table.set_title("Operator MSE by fit strategy (GQA-LUT w/ RM, 8-entry)");
  for (Op op : paper_ops()) {
    std::map<FitStrategy, double> mse;
    for (FitStrategy strategy :
         {FitStrategy::kLeastSquares, FitStrategy::kInterpolate}) {
      FitOptions options;
      options.fit_strategy = strategy;
      const Approximator approx = Approximator::fit(op, Method::kGqaRm, options);
      mse[strategy] = operator_level_mse(approx, SweepOptions{});
    }
    table.add_row({op_info(op).name, sci(mse[FitStrategy::kLeastSquares]),
                   sci(mse[FitStrategy::kInterpolate]),
                   fixed(mse[FitStrategy::kInterpolate] /
                             mse[FitStrategy::kLeastSquares],
                         2) + "x"});
  }
  table.set_footnote("Interpolation guarantees continuity; least squares "
                     "minimizes the MSE objective directly.");
  bench::emit(table, "ablation_fit_strategy");
  return 0;
}
