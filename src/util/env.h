// Environment-variable knobs for bench binaries. Full paper-scale settings
// are the defaults; CI or quick runs can shrink them, e.g.
//   GQA_EVAL_SCENES=4 ./build/bench/table4_segformer
// The complete knob table lives in README.md ("Environment knobs").
#pragma once

#include <cstdint>
#include <string>

namespace gqa {

/// Returns the integer value of env var `name`, or `fallback` when unset or
/// unparsable.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// Returns the string value of env var `name`, or `fallback` when unset.
[[nodiscard]] std::string env_string(const char* name,
                                     const std::string& fallback);

/// True when env var `name` is set to a truthy value (1/true/yes/on).
[[nodiscard]] bool env_flag(const char* name, bool fallback = false);

}  // namespace gqa
