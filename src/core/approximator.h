// One-call public API: fit any supported non-linear operator with any of
// the three methods the paper compares, then deploy the result as FP
// tables, quantized tables, or bit-accurate hardware-unit models.
//
//   auto approx = gqa::Approximator::fit(gqa::Op::kGelu,
//                                        gqa::Method::kGqaRm);
//   double y   = approx.eval(0.3);               // FP pwl
//   auto unit  = approx.make_unit(-3);           // INT8 unit @ S = 2^-3
//   double yq  = unit.eval_real(0.3);            // bit-accurate path
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "gqa/gqa_lut.h"
#include "kernel/int_pwl_unit.h"
#include "kernel/multirange_unit.h"
#include "nnlut/nn_lut.h"
#include "util/artifact_store.h"
#include "util/json.h"

namespace gqa {

/// Approximation methods compared throughout the paper's evaluation.
enum class Method {
  kNnLut,    ///< NN-LUT baseline [11]
  kGqaNoRm,  ///< GQA-LUT with Gaussian mutation
  kGqaRm,    ///< GQA-LUT with Rounding Mutation (the paper's full method)
};

[[nodiscard]] std::string method_name(Method method);
[[nodiscard]] const std::vector<Method>& all_methods();

/// Knobs shared by all methods; method-specific details come from the
/// per-op presets (Table 1) and can be overridden after construction.
struct FitOptions {
  int entries = 8;
  int lambda = 5;
  std::uint64_t seed = 0;  ///< 0 = derive deterministically from (op, method)
  int ga_restarts = 3;     ///< GQA: independent GA runs, best kept
  std::optional<int> ga_generations;  ///< override Table-1 T
  std::optional<int> nn_epochs;       ///< override NN-LUT training epochs
  std::optional<double> range_lo, range_hi;
  FitStrategy fit_strategy = FitStrategy::kLeastSquares;
};

class Approximator {
 public:
  /// Fits `op` with `method`. Deterministic in (op, method, options).
  [[nodiscard]] static Approximator fit(Op op, Method method,
                                        const FitOptions& options = {});

  /// Cache-first fit: consults `store` (when non-null) for an artifact
  /// published under cache_key(...) and returns it decoded; on miss,
  /// quarantine, or injected `cache_read` fault it falls back to fit() and
  /// publishes the fresh result back, so a wiped or corrupted cache
  /// self-heals. Cache write failures (including injected `cache_write`
  /// faults) are swallowed — caching is an optimization, never a
  /// requirement. Bit-identical to fit() in every case: fit() is
  /// deterministic in the key and the artifact payload round-trips the
  /// full fitted state (tables serialize via the exact %.17g / integer
  /// fast-path repr, which round-trips doubles losslessly).
  [[nodiscard]] static Approximator fit_cached(
      Op op, Method method, const FitOptions& options,
      const ArtifactStore* store, int input_bits = 8,
      const std::vector<int>& scale_exps = {});

  /// Content address for (op, method, full fit config, bus width,
  /// deployment scale grid): any knob that changes fit() output changes
  /// the key, so a config change can never alias a stale artifact.
  [[nodiscard]] static ArtifactKey cache_key(
      Op op, Method method, const FitOptions& options, int input_bits,
      const std::vector<int>& scale_exps);

  /// Wraps an externally produced table (e.g. loaded from disk).
  [[nodiscard]] static Approximator from_table(Op op, Method method,
                                               PwlTable fxp_table, int lambda);

  [[nodiscard]] Op op() const { return op_; }
  [[nodiscard]] Method method() const { return method_; }
  [[nodiscard]] int lambda() const { return lambda_; }
  [[nodiscard]] const PwlTable& fp_table() const { return fp_table_; }
  [[nodiscard]] const PwlTable& fxp_table() const { return fxp_table_; }

  /// Deployment table for breakpoint grid 2^-s. GQA-LUT w/ RM returns the
  /// per-scale champion archived during evolution; other methods fall back
  /// to their single fxp table.
  [[nodiscard]] const PwlTable& table_for_scale(int scale_exp) const;
  [[nodiscard]] bool has_scale_tables() const { return !scale_tables_.empty(); }

  /// FP-domain evaluation of the λ-rounded table.
  [[nodiscard]] double eval(double x) const { return fxp_table_.eval(x); }

  /// Quantizes the table for a given input domain (Eq. 3).
  [[nodiscard]] QuantizedPwlTable quantized(const QuantParams& input,
                                            int param_bits = 8) const;

  /// INT unit for a power-of-two activation scale S = 2^scale_exp.
  [[nodiscard]] IntPwlUnit make_unit(int scale_exp, int input_bits = 8,
                                     int param_bits = 8) const;

  /// Multi-range unit for DIV/RSQRT with the Table 2 preset (or a custom
  /// config).
  [[nodiscard]] MultiRangeUnit make_multirange_unit(
      int input_bits = 8, int param_bits = 8,
      std::optional<MultiRangeConfig> config = std::nullopt) const;

  /// Full fitted state as a JSON document (op, method, lambda, FP + fxp
  /// tables, per-scale champion archive) — the artifact-store payload and
  /// the save()/load() file body. from_json(to_json()) is lossless.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Approximator from_json(const Json& j);

  void save(const std::string& path) const;
  [[nodiscard]] static Approximator load(const std::string& path);

 private:
  Approximator() = default;

  Op op_ = Op::kGelu;
  Method method_ = Method::kGqaRm;
  int lambda_ = 5;
  PwlTable fp_table_;
  PwlTable fxp_table_;
  std::map<int, PwlTable> scale_tables_;  ///< per deployment grid exponent s
};

}  // namespace gqa
