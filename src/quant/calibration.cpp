#include "quant/calibration.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace gqa {

void RangeObserver::observe(double value) {
  GQA_EXPECTS_MSG(std::isfinite(value), "observed value must be finite");
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void RangeObserver::observe(std::span<const float> values) {
  for (float v : values) observe(static_cast<double>(v));
}

void RangeObserver::observe(std::span<const double> values) {
  for (double v : values) observe(v);
}

double RangeObserver::min() const {
  GQA_EXPECTS_MSG(count_ > 0, "no values observed");
  return min_;
}

double RangeObserver::max() const {
  GQA_EXPECTS_MSG(count_ > 0, "no values observed");
  return max_;
}

double RangeObserver::amax() const {
  GQA_EXPECTS_MSG(count_ > 0, "no values observed");
  return std::max(std::abs(min_), std::abs(max_));
}

QuantParams RangeObserver::make_params(int bits, bool is_signed) const {
  const double a = std::max(amax(), 1e-8);
  return QuantParams{symmetric_scale(a, bits, is_signed), bits, is_signed};
}

QuantParams RangeObserver::make_po2(int bits, bool is_signed) const {
  const QuantParams base = make_params(bits, is_signed);
  // Snap up: choose the smallest power of two >= the min-max scale so the
  // observed range never clips.
  const double exact = base.scale;
  const double snapped = std::ldexp(1.0, static_cast<int>(std::ceil(std::log2(exact))));
  return QuantParams{snapped, bits, is_signed};
}

}  // namespace gqa
