# Empty compiler generated dependencies file for tfm_test.
# This may be replaced when dependencies are built.
