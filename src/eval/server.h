// Asynchronous serving front-end with multi-model co-serving on a
// continuous-batching scheduler, with fault-tolerant request handling.
//
// The InferenceEngine (eval/engine.h) serves one frozen model one batch at
// a time — the caller owns the batching. gqa::Server owns it instead: any
// number of client threads submit(model_id, image) and get back a Ticket
// (optionally with a result callback); requests flow through a bounded
// admission queue (util/thread_pool.h BoundedQueue) straight onto free
// pool lanes. There is no batch barrier: while a service span is live,
// every lane that finishes a request immediately pulls the next one from
// the scheduler's per-model backlog — refilled from the admission queue on
// every pull — and a lane with nothing to pull parks until an admission or
// completion wakes it, so requests admitted mid-span start on the first
// free lane even while other lanes sit mid-forward
// (dispatch-while-collecting). The span — and the process pool's dispatch
// slot — closes when the backlog is dry and nothing is in flight; a
// dispatcher thread parks on the queue while the server is idle and opens
// the next span on arrival.
//
// Admission order is weighted round-robin: SchedulerConfig::qos_weights
// gives each model a per-cycle credit of dispatch slots (weight 2 means
// two starts per cycle while backlogged), work-conserving — a model with
// no backlog donates its slots instead of stalling the cycle. Equal
// weights reproduce the fair round-robin of the batch-at-a-time server.
//
// Failure semantics (docs/ARCHITECTURE.md "Failure semantics" has the full
// map; every failure is classified per util/serving_error.h):
//   - Deadlines: SubmitOptions::deadline bounds a request's life from
//     admission. A stale backlog entry is expired exactly once when a lane
//     would otherwise start it (and between retry attempts) — an expired
//     request NEVER runs, poll() reads kDeadlineExpired until the error is
//     consumed, and Stats::deadline_expired counts it.
//   - Retries: a kBackendTransient failure (the only retryable class;
//     injected faults are transient by construction) is re-attempted on
//     the same lane up to SubmitOptions::max_attempts times, sleeping
//     backoff * 2^(attempt-1) between attempts, clipped to the deadline.
//     Stats::retries counts re-attempts. Results stay bit-identical: a
//     retry reruns the same deterministic forward.
//   - Circuit breaker (per model, SchedulerConfig::breaker_threshold > 0):
//     breaker_threshold consecutive final backend failures open the
//     breaker; while open, that model's backlog is shed fail-fast with
//     kModelUnavailable (never started), so one poisoned model degrades
//     alone instead of starving co-served models. After breaker_cooldown
//     the breaker goes half-open and admits exactly one probe request:
//     success closes it, failure re-opens it (another cooldown).
//     Stats::breaker_trips counts open transitions; deadline expiries and
//     cancellations never count toward the failure streak.
//   - Fault injection: the admission, scheduler-lane, and backend-forward
//     paths carry compiled-in chaos points (util/fault_injection.h),
//     zero-cost unless GQA_FAULT_SPEC arms them; faults the server's own
//     points fire are counted in Stats::faults_injected. An injected
//     admission fault makes submit()/try_submit() throw ServingError
//     (kAdmissionRejected) — no ticket is issued.
//
// Guarantees (enforced by tests/server_test.cpp, the randomized
// conformance harness tests/scheduler_test.cpp, and the chaos suite
// tests/chaos_test.cpp, all under TSan):
//   - Bit-identity: each request runs one fully-serial forward with a
//     per-lane Workspace (zero-filled acquires, held via LaneLease), so a
//     request's result is exactly what `model.forward_int(image, nl)`
//     returns in a serial per-image loop — regardless of submission order,
//     QoS weights, lane count, how models interleave, or how many
//     transient faults were retried through.
//   - Ticket-order issuance: tickets are dense and issued in admission
//     order; results are keyed by ticket, so waiting tickets in issue
//     order yields results in issue order no matter the completion order.
//   - Exactly-once delivery: a result OR a classified ServingError is
//     delivered exactly once, either to the one wait() call on its ticket
//     or to its submit-time callback — including expired, shed, and
//     cancelled requests.
//   - Backpressure: the admission queue is bounded (ServerOptions::
//     queue_capacity). submit() blocks until space frees; try_submit()
//     returns nullopt instead — the caller picks the policy.
//   - Shutdown/drain: shutdown() stops admission (blocked submitters fail
//     with ContractViolation) and resolves every admitted request — by
//     serving it (DrainPolicy::kFinishAdmitted, the default) or by failing
//     not-yet-started ones to their waiters/callbacks
//     (DrainPolicy::kCancelPending) — then parks the dispatcher. Every
//     ticket issued before shutdown stays collectable after it. shutdown()
//     is idempotent and safe to call concurrently from several threads;
//     the destructor calls it.
//
// Callback threading contract: a submit-time callback runs exactly once on
// the service lane that completed (or expired/shed/cancelled) the request,
// after the result left the ticket table — poll() reads kConsumed from
// then on and wait() on a callback ticket is a contract violation.
// Callbacks must be quick (they occupy a service lane), must not throw (an
// escaping exception is swallowed and counted in Stats::callback_errors —
// there is nowhere left to deliver it), and must not call wait(), drain(),
// or shutdown() on this server (self-deadlock); re-submitting from a
// callback is allowed via try_submit() only — a blocking submit() on a
// full queue would stall the lane that has to drain it.
//
// Thread-safety: every public method is safe to call from any thread;
// each ticket has exactly one waiter (a second wait on the same ticket —
// sequential or concurrent — fails with ContractViolation). The shared
// NonlinearProvider is referenced, not copied (its warmed unit tier is
// the point of sharing); it and every registered model must outlive the
// server and stay frozen while it runs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tfm/nonlinear_provider.h"
#include "tfm/tensor.h"
#include "tfm/workspace.h"
#include "util/serving_error.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace gqa {

/// What shutdown() does with requests admitted but not yet started.
enum class DrainPolicy {
  /// Serve every admitted request before parking (the default): issued
  /// tickets always resolve to their forward's result.
  kFinishAdmitted,
  /// Fail admitted-but-not-started requests fast: their waiters get a
  /// ServingError (code kCancelled) rethrown from wait() (callbacks get it
  /// as the error argument); requests already on a lane still finish.
  kCancelPending,
};

/// Continuous-batching scheduler knobs.
struct SchedulerConfig {
  /// Per-model_id admission weights for the weighted round-robin: a model
  /// with weight w gets up to w dispatch slots per scheduling cycle while
  /// it has backlog (models beyond the vector's length weigh 1; every
  /// listed weight must be >= 1). Empty reads the GQA_QOS_WEIGHTS env var
  /// (comma-separated, e.g. "3,1"); all-equal weights reproduce fair
  /// round-robin.
  std::vector<int> qos_weights;
  /// Cap on requests being serviced concurrently; 0 means the lane count.
  /// Lower values deliberately leave lanes idle for co-resident engines
  /// sharing the process pool.
  int max_inflight = 0;
  /// Shutdown behaviour for the not-yet-started backlog.
  DrainPolicy drain_policy = DrainPolicy::kFinishAdmitted;
  /// Consecutive final backend failures that open a model's circuit
  /// breaker; 0 disables the breaker. -1 (the default) reads the
  /// GQA_BREAKER_THRESHOLD env var (default 0 = disabled).
  int breaker_threshold = -1;
  /// How long an open breaker fails fast before admitting one half-open
  /// probe. Negative (the default) reads GQA_BREAKER_COOLDOWN_MS
  /// (default 100).
  std::chrono::milliseconds breaker_cooldown{-1};
};

struct ServerOptions {
  /// Lane count: 0 serves on the process-wide pool (GQA_NUM_THREADS-sized,
  /// shared with any InferenceEngine); >= 1 gives the server a private
  /// pool of that size (1 = serial service, still with workspace reuse).
  int num_threads = 0;
  /// Bound on requests admitted but not yet collected by a service lane —
  /// the backpressure surface for submit()/try_submit().
  std::size_t queue_capacity = 64;
  /// Pre-warm the shared provider's full replaced-op set at registration,
  /// so service lanes never touch the unit-cache lock. Optimization only —
  /// results are identical either way, and a warm-up failure (e.g. the
  /// `warmup` chaos point) degrades to cold lazy builds.
  bool warm_provider = true;
  /// Continuous-batching scheduler knobs (QoS weights, inflight cap,
  /// drain policy, circuit breaker).
  SchedulerConfig scheduler;
};

/// Per-request robustness controls, passed at submit time. The defaults
/// (no deadline, one attempt, no backoff) reproduce the pre-fault-layer
/// behaviour exactly.
struct SubmitOptions {
  /// Wall-clock budget measured from admission; zero means no deadline.
  /// A request whose deadline passes before a lane starts it (or between
  /// retry attempts) resolves to ServingError kDeadlineExpired without
  /// (re)running — expiry is exactly-once. A forward already running is
  /// never interrupted.
  std::chrono::milliseconds deadline{0};
  /// Total attempts for kBackendTransient failures (>= 1). Non-transient
  /// failures never retry.
  int max_attempts = 1;
  /// Base sleep between attempts, doubled each retry
  /// (backoff * 2^(attempt-1)) and clipped to the remaining deadline. The
  /// sleep occupies the service lane, so keep it small.
  std::chrono::milliseconds backoff{0};
};

enum class TicketStatus {
  kPending,   ///< admitted, result not ready yet
  kReady,     ///< result (or a non-deadline error) available; wait()
              ///< returns or rethrows without blocking
  kDeadlineExpired,  ///< expired before service; wait() rethrows the
                     ///< kDeadlineExpired ServingError
  kConsumed,  ///< result collected by wait() or delivered to the callback
};

class Server {
 public:
  /// Tickets are dense and issued in admission order (0, 1, 2, ...).
  using Ticket = std::uint64_t;

  /// A registered backend: one serial deployment forward. The Workspace
  /// (never null) is the lane's private scratch; implementations must not
  /// capture it beyond the call. Throwing ServingError with code
  /// kBackendTransient marks the failure retryable; any other exception
  /// fails the request on the first occurrence.
  using ForwardFn =
      std::function<tfm::QTensor(const tfm::Tensor&, tfm::Workspace*)>;

  /// Result delivery alternative to poll()/wait(): invoked exactly once on
  /// the completing service lane with (ticket, result, error); exactly one
  /// of result/error is meaningful (error == nullptr means success). See
  /// the callback threading contract in the file header.
  using Callback =
      std::function<void(Ticket, tfm::QTensor, std::exception_ptr)>;

  explicit Server(const tfm::NonlinearProvider& provider,
                  ServerOptions options = {});
  ~Server();  ///< shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a frozen model (SegformerB0Like / EfficientViTB0Like) and
  /// returns its model_id for submit(). The model serves through the
  /// shared provider on its integer deployment path.
  template <typename ModelT>
  int register_model(const ModelT& model, std::string name = {}) {
    return register_forward(
        std::move(name),
        [&model, this](const tfm::Tensor& image, tfm::Workspace* ws) {
          return model.forward_int(image, provider_, nullptr, ws);
        });
  }

  /// Registration hook for custom backends (anything that can produce
  /// integer logits from an image). The engine-style contract applies:
  /// the callable must be safe for concurrent invocation and fully
  /// deterministic per image.
  int register_forward(std::string name, ForwardFn forward)
      GQA_EXCLUDES(mutex_);

  /// Admits a request for `model_id`, blocking while the admission queue
  /// is full. Throws ContractViolation if the server is (or becomes) shut
  /// down, or model_id was never registered; throws ServingError
  /// (kAdmissionRejected) on an injected admission fault. With a callback
  /// the result is delivered to it instead of a wait() (see the callback
  /// contract). The SubmitOptions overloads attach a deadline/retry
  /// policy; the plain overloads use the defaults (no deadline, one
  /// attempt).
  Ticket submit(int model_id, tfm::Tensor image);
  Ticket submit(int model_id, tfm::Tensor image, Callback callback);
  Ticket submit(int model_id, tfm::Tensor image, SubmitOptions options);
  Ticket submit(int model_id, tfm::Tensor image, SubmitOptions options,
                Callback callback);

  /// Non-blocking admit: nullopt when the queue is full (load shedding).
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image);
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image,
                                   Callback callback);
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image,
                                   SubmitOptions options);
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image,
                                   SubmitOptions options, Callback callback);

  /// Lifecycle of a ticket issued by submit()/try_submit(). A callback
  /// ticket never reads kReady or kDeadlineExpired: it goes kPending ->
  /// kConsumed when the callback has been invoked.
  [[nodiscard]] TicketStatus poll(Ticket ticket) const GQA_EXCLUDES(mutex_);

  /// Blocks until the ticket's result is ready and returns it — or
  /// rethrows the request's classified failure (ServingError for
  /// expiry/shedding/cancellation/transient-exhaustion, the backend's own
  /// exception otherwise) — consuming the ticket (a second wait on it is a
  /// contract violation, as is a wait on a callback ticket). Safe to call
  /// before, during, or after shutdown().
  [[nodiscard]] tfm::QTensor wait(Ticket ticket) GQA_EXCLUDES(mutex_);

  /// Blocks until every admitted request has resolved (served, failed,
  /// expired, shed, or cancelled). Admission stays open; use shutdown() to
  /// also stop the service.
  void drain() GQA_EXCLUDES(mutex_);

  /// Stops admission, resolves every admitted request per
  /// SchedulerConfig::drain_policy, parks the dispatcher. Idempotent and
  /// safe to call concurrently from several threads; implied by the
  /// destructor. Results of already-issued tickets remain collectable via
  /// wait() (cancelled ones rethrow their cancellation error).
  void shutdown() GQA_EXCLUDES(shutdown_mutex_, mutex_);

  /// Lanes requests fan out across (>= 1).
  [[nodiscard]] int lanes() const { return pool_->size(); }
  [[nodiscard]] std::size_t model_count() const GQA_EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t submitted = 0;  ///< admitted requests
    std::uint64_t completed = 0;  ///< requests resolved (incl. failed/shed)
    std::uint64_t rejected = 0;   ///< try_submit refusals (queue full)
    std::uint64_t spans = 0;      ///< continuous service spans opened
    std::uint64_t callback_errors = 0;  ///< exceptions escaping callbacks
    /// Requests resolved kDeadlineExpired — expired in the backlog before
    /// service or between retry attempts.
    std::uint64_t deadline_expired = 0;
    std::uint64_t retries = 0;  ///< transient-failure re-attempts
    std::uint64_t breaker_trips = 0;  ///< circuit-breaker open transitions
    /// Faults the server's own injection points (admission, scheduler,
    /// backend) fired — 0 whenever GQA_FAULT_SPEC is unset.
    std::uint64_t faults_injected = 0;
    /// Requests handed to a lane, per model_id — the observable the QoS
    /// conformance harness checks ratios on (expired, shed, and cancelled
    /// requests never start, so they are not counted here).
    std::vector<std::uint64_t> started_per_model;
  };
  [[nodiscard]] Stats stats() const GQA_EXCLUDES(mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Ticket ticket = 0;
    int model_id = 0;
    tfm::Tensor image;
    /// Clock::time_point::max() when the request has no deadline.
    Clock::time_point expires_at = Clock::time_point::max();
    int max_attempts = 1;
    std::chrono::milliseconds backoff{0};
    /// Set when this dispatch is a half-open breaker probe: its outcome
    /// decides whether the breaker closes or re-opens.
    bool probe = false;
  };
  struct Registered {
    std::string name;
    ForwardFn forward;
  };
  /// Ready when `result` is engaged or `error` is set; wait() rethrows a
  /// backend exception to the waiter instead of killing the lane. `code`
  /// classifies the error (meaningful only when error != nullptr) so
  /// poll() can report kDeadlineExpired without rethrowing. For a callback
  /// request the slot only tracks pending-ness: completion moves the
  /// result into the callback and erases the slot. `claimed` is set by
  /// the first wait() before it blocks, so a second waiter on the same
  /// ticket fails fast with ContractViolation instead of racing the first
  /// one's erase.
  struct Slot {
    std::optional<tfm::QTensor> result;
    std::exception_ptr error;
    ServingErrorCode code = ServingErrorCode::kBackendFailed;
    Callback callback;
    bool claimed = false;
    [[nodiscard]] bool ready() const {
      return result.has_value() || error != nullptr;
    }
  };
  /// A backlog entry resolved without service (cancelled, expired, or shed
  /// by an open breaker) whose delivery (callback invocation) must happen
  /// outside the scheduler lock; waiter slots are resolved in place and
  /// only need the post-unlock notify.
  struct Resolution {
    Ticket ticket = 0;
    Callback callback;  ///< null when a wait()er owns the slot
    std::exception_ptr error;
  };
  /// Per-model circuit-breaker state machine: kClosed counts consecutive
  /// final backend failures; kOpen sheds fail-fast until the cooldown
  /// elapses; kHalfOpen lets exactly one probe through and closes or
  /// re-opens on its outcome.
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutive_failures = 0;
    Clock::time_point opened_at{};
    bool probe_inflight = false;
  };

  void dispatch_loop() GQA_EXCLUDES(mutex_);
  void run_service() GQA_EXCLUDES(mutex_);
  void service_lane() GQA_EXCLUDES(mutex_);
  /// One request's full service on the calling lane: the attempt loop with
  /// injected-fault points, transient retry with backoff, and mid-retry
  /// deadline expiry. Returns the filled slot (result or classified
  /// error). Takes mutex_ only briefly for stats bumps — never across the
  /// forward.
  [[nodiscard]] Slot serve_request(const Request& request,
                                   const ForwardFn& forward,
                                   tfm::Workspace* workspace)
      GQA_EXCLUDES(mutex_);
  /// Scheduler core (mutex_ held): refills the per-model backlog from the
  /// admission queue, applies the drain policy, expires stale entries,
  /// sheds open-breaker backlogs, enforces max_inflight, and picks the
  /// next request by weighted round-robin.
  [[nodiscard]] std::optional<Request> next_request_locked(
      std::vector<Resolution>& resolved) GQA_REQUIRES(mutex_);
  void cancel_backlog_locked(std::vector<Resolution>& resolved)
      GQA_REQUIRES(mutex_);
  /// Resolves one backlog entry without service (mutex_ held): waiter
  /// slots get the error in place (counted completed), callback slots are
  /// queued for post-unlock delivery.
  void resolve_unstarted_locked(const Request& request, ServingErrorCode code,
                                std::exception_ptr error,
                                std::vector<Resolution>& resolved)
      GQA_REQUIRES(mutex_);
  /// Applies breaker policy to model m's backlog (mutex_ held): sheds
  /// while open (pre-cooldown), transitions open -> half-open after the
  /// cooldown. Returns true when the model may dispatch right now.
  [[nodiscard]] bool breaker_admits_locked(std::size_t m,
                                           Clock::time_point now,
                                           std::vector<Resolution>& resolved)
      GQA_REQUIRES(mutex_);
  /// Breaker bookkeeping for a served request's outcome (mutex_ held).
  void record_outcome_locked(const Request& request, const Slot& filled)
      GQA_REQUIRES(mutex_);
  void complete(const Request& request, Slot&& filled) GQA_EXCLUDES(mutex_);
  void deliver_callback(Callback callback, Ticket ticket, tfm::QTensor result,
                        std::exception_ptr error) GQA_EXCLUDES(mutex_);
  std::optional<Ticket> admit(int model_id, tfm::Tensor image, bool blocking,
                              SubmitOptions submit_options, Callback callback)
      GQA_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t weight_of(std::size_t model_id) const;
  [[nodiscard]] int breaker_threshold() const {
    return options_.scheduler.breaker_threshold;
  }
  void count_injected_fault() GQA_EXCLUDES(mutex_);

  const tfm::NonlinearProvider& provider_;
  ServerOptions options_;  ///< immutable after the constructor
  ThreadPool* pool_;                   ///< global_pool() or owned_
  std::unique_ptr<ThreadPool> owned_;  ///< non-null when num_threads >= 1
  tfm::WorkspacePool workspaces_;      ///< per-lane scratch, reused forever

  BoundedQueue<Request> queue_;  ///< admission queue (the backpressure bound)
  /// Started in the constructor, joined by the first shutdown() caller
  /// while holding shutdown_mutex_ (ScopedThread joins on destruction as
  /// a last resort, so a throwing constructor cannot leak it).
  ScopedThread dispatcher_;
  Mutex shutdown_mutex_;  ///< serializes concurrent shutdown() callers

  mutable Mutex mutex_;  ///< guards everything below
  std::condition_variable result_cv_;
  /// Wakes lanes parked mid-span (empty backlog while peers hold inflight
  /// requests): notified by admissions, completions, and shutdown.
  std::condition_variable sched_cv_;
  /// deque: element refs survive growth
  std::deque<Registered> models_ GQA_GUARDED_BY(mutex_);
  /// Ticket -> result slot; absent = consumed (or never issued).
  std::unordered_map<Ticket, Slot> slots_ GQA_GUARDED_BY(mutex_);
  Ticket next_ticket_ GQA_GUARDED_BY(mutex_) = 0;
  /// Scheduler state: per-model FIFO backlog (collected from the admission
  /// queue, not yet started), the WRR credits of the current cycle, and
  /// the cursor of the model holding the dispatch position.
  std::vector<std::deque<Request>> backlog_ GQA_GUARDED_BY(mutex_);
  std::size_t backlog_total_ GQA_GUARDED_BY(mutex_) = 0;
  std::vector<std::uint64_t> credits_ GQA_GUARDED_BY(mutex_);
  /// per-model circuit breakers (the open/half-open flags live here, under
  /// the scheduler lock — deliberately not atomics)
  std::vector<Breaker> breakers_ GQA_GUARDED_BY(mutex_);
  int wrr_cursor_ GQA_GUARDED_BY(mutex_) = 0;
  /// started, not yet resolved
  std::size_t inflight_ GQA_GUARDED_BY(mutex_) = 0;
  bool stopping_ GQA_GUARDED_BY(mutex_) = false;
  Stats stats_ GQA_GUARDED_BY(mutex_);
};

}  // namespace gqa
