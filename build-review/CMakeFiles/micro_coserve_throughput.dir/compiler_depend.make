# Empty compiler generated dependencies file for micro_coserve_throughput.
# This may be replaced when dependencies are built.
