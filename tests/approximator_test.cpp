// Tests for the public API facade: fitting with every method, per-scale
// deployment tables, and persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/approximator.h"
#include "eval/protocol.h"
#include "util/contracts.h"

namespace gqa {
namespace {

TEST(Approximator, MethodNames) {
  EXPECT_EQ(method_name(Method::kNnLut), "NN-LUT");
  EXPECT_EQ(method_name(Method::kGqaNoRm), "GQA-LUT w/o RM");
  EXPECT_EQ(method_name(Method::kGqaRm), "GQA-LUT w/ RM");
  EXPECT_EQ(all_methods().size(), 3u);
}

class FitEveryMethod : public ::testing::TestWithParam<Method> {};

TEST_P(FitEveryMethod, ProducesUsableTables) {
  FitOptions options;
  options.ga_restarts = 1;
  options.nn_epochs = 20;
  const Approximator approx = Approximator::fit(Op::kGelu, GetParam(), options);
  approx.fxp_table().validate();
  EXPECT_EQ(approx.fxp_table().entries(), 8);
  EXPECT_EQ(approx.op(), Op::kGelu);
  EXPECT_EQ(approx.method(), GetParam());
  // The table approximates GELU decently in FP.
  EXPECT_NEAR(approx.eval(0.0), 0.0, 0.1);
  EXPECT_NEAR(approx.eval(2.0), eval_op(Op::kGelu, 2.0), 0.12);
}

INSTANTIATE_TEST_SUITE_P(Methods, FitEveryMethod,
                         ::testing::Values(Method::kNnLut, Method::kGqaNoRm,
                                           Method::kGqaRm));

TEST(Approximator, DeterministicAcrossCalls) {
  const Approximator a = Approximator::fit(Op::kExp, Method::kGqaRm, {});
  const Approximator b = Approximator::fit(Op::kExp, Method::kGqaRm, {});
  EXPECT_EQ(a.fxp_table().breakpoints, b.fxp_table().breakpoints);
  EXPECT_EQ(a.fxp_table().slopes, b.fxp_table().slopes);
}

TEST(Approximator, RmVariantCarriesScaleTables) {
  const Approximator rm = Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  EXPECT_TRUE(rm.has_scale_tables());
  // Champion tables exist for the deployment sweep s = 0..6.
  for (int s = 0; s <= 6; ++s) {
    EXPECT_NO_THROW(rm.table_for_scale(s).validate());
  }
  const Approximator gauss = Approximator::fit(Op::kGelu, Method::kGqaNoRm, {});
  EXPECT_FALSE(gauss.has_scale_tables());
  EXPECT_EQ(&gauss.table_for_scale(3), &gauss.fxp_table());
}

TEST(Approximator, QuantizedUsesMatchingChampion) {
  const Approximator rm = Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  const QuantParams input{0.125, 8, true};  // S = 2^-3 -> champion s = 3
  const QuantizedPwlTable qt = rm.quantized(input);
  const PwlTable& champion = rm.table_for_scale(3);
  ASSERT_EQ(qt.k_code.size(), champion.slopes.size());
  for (std::size_t i = 0; i < champion.slopes.size(); ++i) {
    EXPECT_EQ(qt.k_code[i],
              fxp_encode(champion.slopes[i], qt.param_fmt));
  }
}

TEST(Approximator, MakeUnitAndMultirange) {
  const Approximator gelu = Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  const IntPwlUnit unit = gelu.make_unit(-4);
  EXPECT_EQ(unit.table().input.bits, 8);
  EXPECT_NEAR(unit.eval_real(1.0), eval_op(Op::kGelu, 1.0), 0.08);

  const Approximator div = Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  const MultiRangeUnit mr = div.make_multirange_unit();
  EXPECT_NEAR(mr.eval_real(2.0), 0.5, 0.05);
  // GELU has no multi-range preset.
  EXPECT_THROW((void)gelu.make_multirange_unit(), ContractViolation);
}

TEST(Approximator, SaveLoadRoundTrip) {
  const Approximator original = Approximator::fit(Op::kExp, Method::kGqaRm, {});
  const std::string path = "/tmp/gqa_approx_test.json";
  original.save(path);
  const Approximator loaded = Approximator::load(path);
  EXPECT_EQ(loaded.op(), Op::kExp);
  EXPECT_EQ(loaded.method(), Method::kGqaRm);
  EXPECT_EQ(loaded.lambda(), original.lambda());
  EXPECT_EQ(loaded.fxp_table().breakpoints, original.fxp_table().breakpoints);
  EXPECT_EQ(loaded.has_scale_tables(), original.has_scale_tables());
  for (int s = 0; s <= 6; ++s) {
    EXPECT_EQ(loaded.table_for_scale(s).breakpoints,
              original.table_for_scale(s).breakpoints);
  }
  std::remove(path.c_str());
}

TEST(Approximator, FromTableWrapsExternalData) {
  PwlTable t;
  t.breakpoints = {0.0};
  t.slopes = {0.0, 1.0};
  t.intercepts = {0.0, 0.0};  // relu
  const Approximator approx =
      Approximator::from_table(Op::kGelu, Method::kGqaRm, t, 5);
  EXPECT_DOUBLE_EQ(approx.eval(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(approx.eval(2.0), 2.0);
}

TEST(Approximator, CustomRangeOverride) {
  FitOptions options;
  options.range_lo = -2.0;
  options.range_hi = 2.0;
  options.ga_restarts = 1;
  const Approximator approx = Approximator::fit(Op::kGelu, Method::kGqaRm, options);
  for (double p : approx.fxp_table().breakpoints) {
    EXPECT_GE(p, -2.0);
    EXPECT_LE(p, 2.0);
  }
}

TEST(Approximator, InvalidOptionsThrow) {
  FitOptions options;
  options.entries = 1;
  EXPECT_THROW(Approximator::fit(Op::kGelu, Method::kGqaRm, options),
               ContractViolation);
  options = FitOptions{};
  options.ga_restarts = 0;
  EXPECT_THROW(Approximator::fit(Op::kGelu, Method::kGqaRm, options),
               ContractViolation);
}

}  // namespace
}  // namespace gqa
