// Requantization between integer domains following the dyadic pipeline
// (Jacob et al.): out_q = clip(round(in_q * M)), M = S_in / S_out realized
// as an integer multiplier plus shift. Used by every quantized Transformer
// module between matmul accumulators and INT8 activations.
#pragma once

#include <cstdint>

#include "numerics/dyadic.h"
#include "quant/quant_params.h"

namespace gqa {

/// Converts INT32-accumulator codes from one scale to another.
class Requantizer {
 public:
  Requantizer() = default;

  /// in_scale: scale of incoming codes; out: target parameters.
  Requantizer(double in_scale, const QuantParams& out);

  /// Requantizes a single accumulator value.
  [[nodiscard]] std::int64_t apply(std::int64_t acc) const {
    return saturate(multiplier_.apply(acc), out_.bits, out_.is_signed);
  }

  [[nodiscard]] const Dyadic& multiplier() const { return multiplier_; }
  [[nodiscard]] const QuantParams& output_params() const { return out_; }

  /// Exact real ratio being approximated (for error analysis in tests).
  [[nodiscard]] double exact_ratio() const { return exact_ratio_; }

 private:
  Dyadic multiplier_{0, 0};
  QuantParams out_;
  double exact_ratio_ = 0.0;
};

}  // namespace gqa
