# Empty dependencies file for fig2a_gelu_mse.
# This may be replaced when dependencies are built.
