# Empty dependencies file for kernel_test.
# This may be replaced when dependencies are built.
