file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/tests/engine_test.cpp.o"
  "CMakeFiles/engine_test.dir/tests/engine_test.cpp.o.d"
  "engine_test"
  "engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
