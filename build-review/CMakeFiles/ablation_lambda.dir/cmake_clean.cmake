file(REMOVE_RECURSE
  "CMakeFiles/ablation_lambda.dir/bench/ablation_lambda.cpp.o"
  "CMakeFiles/ablation_lambda.dir/bench/ablation_lambda.cpp.o.d"
  "bench/ablation_lambda"
  "bench/ablation_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
