#include "eval/server.h"

#include <utility>

#include "util/contracts.h"
#include "util/strings.h"

namespace gqa {

Server::Server(const tfm::NonlinearProvider& provider, ServerOptions options)
    : provider_(provider),
      options_(options),
      queue_(options.queue_capacity) {
  GQA_EXPECTS(options.num_threads >= 0);
  GQA_EXPECTS_MSG(options.queue_capacity >= 1,
                  "admission queue needs capacity >= 1");
  if (options.num_threads >= 1) {
    owned_ = std::make_unique<ThreadPool>(options.num_threads);
    pool_ = owned_.get();
  } else {
    pool_ = &global_pool();
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Server::~Server() { shutdown(); }

int Server::register_forward(std::string name, ForwardFn forward) {
  GQA_EXPECTS_MSG(forward != nullptr, "register_forward needs a callable");
  int id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GQA_EXPECTS_MSG(!stopping_, "register on a shut-down server");
    id = static_cast<int>(models_.size());
    if (name.empty()) name = format("model-%d", id);
    models_.push_back({std::move(name), std::move(forward)});
  }
  // One shared warm-up covers the union of every co-served model's op-set:
  // the provider warms everything it replaces, and repeats on a warm
  // provider are copy-free no-ops.
  if (options_.warm_provider) provider_.warm_up_deployment();
  return id;
}

std::optional<Server::Ticket> Server::admit(int model_id, tfm::Tensor image,
                                            bool blocking) {
  Ticket ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GQA_EXPECTS_MSG(!stopping_, "submit on a shut-down server");
    GQA_EXPECTS_MSG(
        model_id >= 0 && model_id < static_cast<int>(models_.size()),
        "submit for an unregistered model_id");
    ticket = next_ticket_++;
    slots_.emplace(ticket, Slot{});
    ++stats_.submitted;
  }
  Request request{ticket, model_id, std::move(image)};
  const bool pushed = blocking ? queue_.push(std::move(request))
                               : queue_.try_push(std::move(request));
  if (pushed) return ticket;

  // The request never reached the queue: retract the ticket. push() only
  // fails when the queue closed (shutdown raced the submit); try_push()
  // also fails on a full queue — the load-shedding path.
  const bool closed = queue_.closed();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.erase(ticket);
    --stats_.submitted;
    if (!blocking && !closed) ++stats_.rejected;
  }
  result_cv_.notify_all();  // a drain() may be waiting on this last ticket
  GQA_EXPECTS_MSG(!closed, "server shut down while submitting");
  return std::nullopt;
}

Server::Ticket Server::submit(int model_id, tfm::Tensor image) {
  const std::optional<Ticket> ticket =
      admit(model_id, std::move(image), /*blocking=*/true);
  GQA_ASSERT(ticket.has_value());  // blocking admit throws instead of refusing
  return *ticket;
}

std::optional<Server::Ticket> Server::try_submit(int model_id,
                                                 tfm::Tensor image) {
  return admit(model_id, std::move(image), /*blocking=*/false);
}

TicketStatus Server::poll(Ticket ticket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  GQA_EXPECTS_MSG(ticket < next_ticket_, "poll on a never-issued ticket");
  const auto it = slots_.find(ticket);
  if (it == slots_.end()) return TicketStatus::kConsumed;
  return it->second.ready() ? TicketStatus::kReady : TicketStatus::kPending;
}

tfm::QTensor Server::wait(Ticket ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = slots_.find(ticket);
  GQA_EXPECTS_MSG(it != slots_.end(),
                  "wait on a consumed or never-issued ticket");
  // Element references survive rehashing (other submits may insert while we
  // wait), so the slot reference stays valid until this wait erases it.
  // Claiming makes a concurrent second wait on the same ticket fail fast
  // instead of racing this one's erase.
  Slot& slot = it->second;
  GQA_EXPECTS_MSG(!slot.claimed, "second wait on a ticket already waited on");
  slot.claimed = true;
  result_cv_.wait(lock, [&] { return slot.ready(); });
  if (slot.error != nullptr) {
    const std::exception_ptr error = slot.error;
    slots_.erase(ticket);
    std::rethrow_exception(error);
  }
  tfm::QTensor result = std::move(*slot.result);
  slots_.erase(ticket);
  return result;
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  result_cv_.wait(lock,
                  [&] { return stats_.completed == stats_.submitted; });
}

void Server::shutdown() {
  std::lock_guard<std::mutex> serialize(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_.close();  // wakes blocked submitters (they fail) and the dispatcher
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::size_t Server::model_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::dispatch_loop() {
  for (;;) {
    // Blocks until work arrives; an empty collection is the closed-and-
    // drained signal, so shutdown() always sees every admitted request
    // completed before join() returns.
    std::vector<Request> admitted = queue_.pop_all();
    if (admitted.empty()) return;
    std::vector<Request> batch = fair_interleave(std::move(admitted));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.batches;
    }
    run_batch(batch);
  }
}

std::vector<Server::Request> Server::fair_interleave(
    std::vector<Request> admitted) {
  const std::size_t total = admitted.size();
  std::size_t model_count = 0;
  int start = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    model_count = models_.size();
    start = rr_cursor_;
    rr_cursor_ = model_count == 0
                     ? 0
                     : (rr_cursor_ + 1) % static_cast<int>(model_count);
  }
  GQA_ASSERT(model_count > 0);  // requests only exist for registered models
  if (model_count == 1) return admitted;

  // FIFO per model, then one request per model in cyclic order: a model
  // that floods the queue cannot starve the others' dispatch position.
  // The cursor rotates across collections so no model is always first.
  std::vector<std::deque<Request>> per_model(model_count);
  for (Request& r : admitted) {
    per_model[static_cast<std::size_t>(r.model_id)].push_back(std::move(r));
  }
  std::vector<Request> interleaved;
  interleaved.reserve(total);
  while (interleaved.size() < total) {
    for (std::size_t k = 0; k < model_count; ++k) {
      std::deque<Request>& q =
          per_model[(static_cast<std::size_t>(start) + k) % model_count];
      if (q.empty()) continue;
      interleaved.push_back(std::move(q.front()));
      q.pop_front();
    }
  }
  return interleaved;
}

void Server::run_batch(std::vector<Request>& batch) {
  // Snapshot the per-request forwards once per batch: models_ is an
  // append-only deque (element references are stable), so one lock here
  // replaces a lock per request in the lanes below.
  std::vector<const ForwardFn*> forwards(batch.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      forwards[i] =
          &models_[static_cast<std::size_t>(batch[i].model_id)].forward;
    }
  }
  pooled_for_chunks(pool_, batch.size(), [&](std::size_t lo, std::size_t hi) {
    // One Workspace per in-flight chunk, persisted across batches through
    // the pool — steady-state lanes re-malloc nothing.
    tfm::Workspace ws = workspaces_.acquire();
    for (std::size_t i = lo; i < hi; ++i) {
      Request& request = batch[i];
      const ForwardFn* forward = forwards[i];
      Slot filled;
      try {
        // The serial deployment forward: no intra-forward pool, zero-filled
        // workspace acquires — bit-identical to a serial per-image loop.
        filled.result = (*forward)(request.image, &ws);
      } catch (...) {
        filled.error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(request.ticket);
        GQA_ASSERT(it != slots_.end());  // only wait() erases, after ready
        // Fill in place: a waiter may already have claimed the slot.
        it->second.result = std::move(filled.result);
        it->second.error = filled.error;
        ++stats_.completed;
      }
      result_cv_.notify_all();
    }
    workspaces_.release(std::move(ws));
  });
}

}  // namespace gqa
