// Command-line front end to the fitting pipeline.
//
//   gqa_lut_cli fit     <op> [--method rm|norm|nnlut] [--entries N]
//                       [--lambda L] [--out file.json]
//   gqa_lut_cli eval    <file.json> [--scale-exp E]
//   gqa_lut_cli verilog <file.json> --scale-exp E [--out unit.v]
//   gqa_lut_cli ops
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/approximator.h"
#include "eval/protocol.h"
#include "hw/verilog_emitter.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace gqa;

int usage() {
  std::printf(
      "usage:\n"
      "  gqa_lut_cli fit <op> [--method rm|norm|nnlut] [--entries N]\n"
      "                       [--lambda L] [--out file.json]\n"
      "  gqa_lut_cli eval <file.json> [--scale-exp E]\n"
      "  gqa_lut_cli verilog <file.json> --scale-exp E [--out unit.v]\n"
      "  gqa_lut_cli ops\n");
  return 2;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

Method method_from(const std::string& name) {
  if (name == "rm") return Method::kGqaRm;
  if (name == "norm") return Method::kGqaNoRm;
  if (name == "nnlut") return Method::kNnLut;
  throw ContractViolation("unknown method '" + name + "'");
}

int cmd_fit(int argc, char** argv) {
  if (argc < 3) return usage();
  const Op op = op_from_name(argv[2]);
  const auto flags = parse_flags(argc, argv, 3);
  FitOptions options;
  Method method = Method::kGqaRm;
  if (flags.count("method")) method = method_from(flags.at("method"));
  if (flags.count("entries")) options.entries = std::stoi(flags.at("entries"));
  if (flags.count("lambda")) options.lambda = std::stoi(flags.at("lambda"));
  const Approximator approx = Approximator::fit(op, method, options);
  std::printf("%s\n", approx.fxp_table().to_string().c_str());
  std::printf("operator-level MSE: %.3e\n",
              operator_level_mse(approx, SweepOptions{}));
  const std::string out =
      flags.count("out") ? flags.at("out")
                         : to_lower(op_info(op).name) + "_lut.json";
  approx.save(out);
  std::printf("saved to %s\n", out.c_str());
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 3) return usage();
  const Approximator approx = Approximator::load(argv[2]);
  const auto flags = parse_flags(argc, argv, 3);
  std::printf("op=%s method=%s entries=%d lambda=%d\n",
              op_info(approx.op()).name.c_str(),
              method_name(approx.method()).c_str(),
              approx.fxp_table().entries(), approx.lambda());
  if (op_info(approx.op()).scale_dependent) {
    const ScaleSweepResult sweep = sweep_scale_mse(approx);
    for (const ScalePoint& p : sweep.points) {
      std::printf("  S=2^%-3d MSE %.3e\n", p.exponent, p.mse);
    }
    std::printf("  avg %.3e\n", sweep.avg_mse());
  } else {
    std::printf("  IR fixed-point MSE %.3e\n",
                operator_level_mse(approx, SweepOptions{}));
  }
  if (flags.count("scale-exp")) {
    const int e = std::stoi(flags.at("scale-exp"));
    std::printf("  at S=2^%d: %.3e\n", e,
                scale_mse(approx.table_for_scale(-e), approx.op(), e,
                          SweepOptions{}).mse);
  }
  return 0;
}

int cmd_verilog(int argc, char** argv) {
  if (argc < 3) return usage();
  const Approximator approx = Approximator::load(argv[2]);
  const auto flags = parse_flags(argc, argv, 3);
  if (!flags.count("scale-exp")) return usage();
  const int e = std::stoi(flags.at("scale-exp"));
  const QuantizedPwlTable table =
      approx.quantized(QuantParams{std::ldexp(1.0, e), 8, true});
  const std::string out = flags.count("out") ? flags.at("out") : "gqa_unit.v";
  hw::VerilogOptions options;
  write_file(out, hw::emit_pwl_unit(table, options));
  write_file(out + ".tb.v", hw::emit_testbench(table, options));
  std::printf("wrote %s and %s.tb.v\n", out.c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "fit") return cmd_fit(argc, argv);
    if (cmd == "eval") return cmd_eval(argc, argv);
    if (cmd == "verilog") return cmd_verilog(argc, argv);
    if (cmd == "ops") {
      for (Op op : all_ops()) {
        const OpInfo& info = op_info(op);
        std::printf("%-10s range (%g, %g)%s\n", info.name.c_str(),
                    info.range_lo, info.range_hi,
                    info.scale_dependent ? "" : "  [fixed-point input]");
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
