// Reusable scratch storage for the transformer forward passes.
//
// Every layer of forward_fp/forward_int produces a fresh Tensor/QTensor;
// in a serving loop (SegTask::miou_*, the protocol sweep, the inference
// engine) those intermediates are identical in shape image after image, so
// re-mallocing them dominates the allocator profile. A Workspace keeps the
// retired storage and hands it back on the next acquire: after the first
// image through a given model the steady state performs no heap allocation
// for layer outputs at all.
//
// Ownership rules (see README "Workspace ownership rules" and
// docs/ARCHITECTURE.md):
//   - One Workspace per thread, never shared: acquire/release are NOT
//     thread-safe. Inside a pooled forward, only the calling thread may
//     touch the workspace (module fan-out lambdas never do).
//   - A workspace-backed Tensor/QTensor is an ordinary value; releasing it
//     back is an optimization, not a requirement. Tensors that never came
//     from the workspace may be released into it (the pool adopts them).
//   - Acquired tensors are zero-filled, so results are bit-identical to
//     fresh `Tensor(shape)` allocation.
//   - Small buffers (below an internal element-count floor) bypass the
//     pool in both directions: the allocator's thread cache already
//     serves them in tens of nanoseconds, so only the large activation
//     buffers — where allocation really costs — are pooled.
//
// WorkspacePool is the thread-safe checkout counter used by the batch entry
// points: each image-chunk task borrows one Workspace for its lifetime, so
// concurrent tasks never share scratch while the buffers still persist
// across dispatches.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "tfm/tensor.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace gqa::tfm {

class Workspace {
 public:
  Workspace() = default;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Zero-filled tensor backed by pooled storage (fresh when the pool is
  /// empty). Bit-identical to constructing `Tensor(shape)`.
  [[nodiscard]] Tensor tensor(Shape shape);
  [[nodiscard]] QTensor qtensor(Shape shape, const QuantParams& qp);

  /// Zero-filled scratch vectors for kernel staging buffers.
  [[nodiscard]] std::vector<std::int64_t> i64(std::size_t n);
  [[nodiscard]] std::vector<double> f64(std::size_t n);

  /// Returns storage to the pool for the next acquire. Accepts any tensor,
  /// including ones not originally acquired here (their storage is adopted).
  void release(Tensor&& t);
  void release(QTensor&& t);
  void release(std::vector<std::int64_t>&& v);
  void release(std::vector<double>&& v);

  /// Buffers currently parked in the pool (test/diagnostic hook).
  [[nodiscard]] std::size_t parked() const;

  /// Allocator-traffic counters for the serving diagnostics: `acquires`
  /// total, `fresh` acquires served with no parked buffer (hit the
  /// allocator), `grows` acquires whose popped buffer was too small
  /// (realloc). Steady-state serving should show fresh == grows == 0 per
  /// dispatch.
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t fresh = 0;
    std::uint64_t grows = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Free lists are bucketed by power-of-two size class (indexed by
  // bit-width, so lookup is an array access). Model layers repeat the same
  // shapes image after image, so each class quickly converges to buffers
  // whose capacity covers its largest request and steady-state acquires
  // never realloc. Classing (instead of exact sizes) lets similar-sized
  // layers share buffers, keeping the parked footprint near one buffer
  // per class — a single unkeyed LIFO stack would hand mismatched buffers
  // back and realloc almost every time, while exact-size keys would pin
  // one resident buffer per distinct shape.
  static constexpr std::size_t kSizeClasses = 48;
  // Per-class depth cap: adopted buffers (tensors released here that were
  // never acquired here, e.g. quantized inputs) can make releases outrun
  // acquires in a class; beyond the cap they are freed instead of parked,
  // bounding a long-running server's footprint.
  static constexpr std::size_t kMaxPerClass = 8;
  template <typename T>
  using SizeBuckets = std::array<std::vector<std::vector<T>>, kSizeClasses>;
  SizeBuckets<float> fp_;
  SizeBuckets<std::int32_t> i32_;
  SizeBuckets<std::int64_t> i64_;
  SizeBuckets<double> f64_;
  Stats stats_;
};

/// Thread-safe stack of Workspaces: batch tasks check one out per image
/// chunk so scratch persists across pool dispatches without ever being
/// shared between concurrently running tasks.
class WorkspacePool {
 public:
  [[nodiscard]] Workspace acquire() GQA_EXCLUDES(mutex_);
  void release(Workspace&& ws) GQA_EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  std::vector<Workspace> pool_ GQA_GUARDED_BY(mutex_);
};

/// RAII checkout of one Workspace from a WorkspacePool for the lease's
/// lifetime — the single lane-scratch shape every batch/serving fan-out
/// holds (ws_batch per chunk, the serving layer per service-lane loop; the
/// eval layer names it gqa::LaneLease). Returns the workspace to the pool
/// on any exit path, so a throwing task body cannot leak it. Not copyable
/// or movable: a lease lives on the lane that acquired it.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(WorkspacePool& pool)
      : pool_(&pool), workspace_(pool.acquire()) {}
  ~WorkspaceLease() { pool_->release(std::move(workspace_)); }

  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  WorkspaceLease(WorkspaceLease&&) = delete;
  WorkspaceLease& operator=(WorkspaceLease&&) = delete;

  /// The lane's private scratch; valid for the lease's lifetime, never
  /// null. Callees must not capture it beyond the current task.
  [[nodiscard]] Workspace* workspace() { return &workspace_; }

 private:
  WorkspacePool* pool_;
  Workspace workspace_;
};

/// Null-tolerant helpers so forwards can stay workspace-optional: with a
/// null workspace they fall back to plain allocation, byte-for-byte
/// equivalent to the pre-workspace code.
[[nodiscard]] inline Tensor ws_tensor(Workspace* ws, Shape shape) {
  return ws != nullptr ? ws->tensor(std::move(shape)) : Tensor(std::move(shape));
}
[[nodiscard]] inline QTensor ws_qtensor(Workspace* ws, Shape shape,
                                        const QuantParams& qp) {
  return ws != nullptr ? ws->qtensor(std::move(shape), qp)
                       : QTensor(std::move(shape), qp);
}
[[nodiscard]] inline std::vector<std::int64_t> ws_i64(Workspace* ws,
                                                      std::size_t n) {
  return ws != nullptr ? ws->i64(n) : std::vector<std::int64_t>(n, 0);
}
[[nodiscard]] inline std::vector<double> ws_f64(Workspace* ws, std::size_t n) {
  return ws != nullptr ? ws->f64(n) : std::vector<double>(n, 0.0);
}
inline void ws_release(Workspace* ws, Tensor&& t) {
  if (ws != nullptr) ws->release(std::move(t));
}
inline void ws_release(Workspace* ws, QTensor&& t) {
  if (ws != nullptr) ws->release(std::move(t));
}
inline void ws_release(Workspace* ws, std::vector<std::int64_t>&& v) {
  if (ws != nullptr) ws->release(std::move(v));
}
inline void ws_release(Workspace* ws, std::vector<double>&& v) {
  if (ws != nullptr) ws->release(std::move(v));
}

/// Image-level fan-out used by the batched model entry points: runs
/// fn(i, ws) for every i in [0, count) in contiguous chunks across the
/// pool, each chunk owning one Workspace (borrowed from `workspaces` when
/// non-null so scratch persists across dispatches). fn must be independent
/// per index and write only out[i]; results are then bit-identical to a
/// serial loop at any lane count.
template <typename Out, typename Fn>
std::vector<Out> ws_batch(std::size_t count, ThreadPool* pool,
                          WorkspacePool* workspaces, const Fn& fn) {
  std::vector<Out> out(count);
  pooled_for_chunks(pool, count, [&](std::size_t lo, std::size_t hi) {
    if (workspaces != nullptr) {
      WorkspaceLease lease(*workspaces);  // returned even if fn throws
      for (std::size_t i = lo; i < hi; ++i) out[i] = fn(i, lease.workspace());
    } else {
      Workspace local;
      for (std::size_t i = lo; i < hi; ++i) out[i] = fn(i, &local);
    }
  });
  return out;
}

}  // namespace gqa::tfm
