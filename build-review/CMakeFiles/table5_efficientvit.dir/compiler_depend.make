# Empty compiler generated dependencies file for table5_efficientvit.
# This may be replaced when dependencies are built.
