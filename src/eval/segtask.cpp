#include "eval/segtask.h"

#include "util/contracts.h"

namespace gqa {

namespace {

template <typename ModelT>
std::vector<int> labels_at(const LabeledScene& scene, int stride) {
  return downsample_labels(scene.labels, scene.size, scene.size / stride,
                           scene.size / stride);
}

}  // namespace

template <typename ModelT>
SegTask<ModelT>::SegTask(ModelT model, int label_stride,
                         const SegTaskOptions& options)
    : model_(std::move(model)), options_(options), label_stride_(label_stride) {
  GQA_EXPECTS(options.train_scenes >= 1 && options.eval_scenes >= 1);
  GQA_EXPECTS(options.calib_scenes >= 1 &&
              options.calib_scenes <= options.train_scenes);
  GQA_EXPECTS(options.num_threads >= 1);
  if (options.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }

  const std::vector<LabeledScene> train =
      make_scene_set(options.scene, options.train_scenes, options.train_seed);
  std::vector<tfm::Tensor> images;
  std::vector<std::vector<int>> labels;
  images.reserve(train.size());
  for (const LabeledScene& s : train) {
    images.push_back(s.image);
    labels.push_back(labels_at<ModelT>(s, label_stride_));
  }
  model_.train_classifier(images, labels, options.probe_epochs,
                          options.probe_lr);
  for (int i = 0; i < options.calib_scenes; ++i) {
    model_.calibrate(train[static_cast<std::size_t>(i)].image);
  }
  model_.freeze();

  eval_scenes_ = make_scene_set(options.scene, options.eval_scenes,
                                options.eval_seed);
  for (const LabeledScene& s : eval_scenes_) {
    eval_labels_.push_back(labels_at<ModelT>(s, label_stride_));
  }
}

template <typename ModelT>
double SegTask<ModelT>::miou_fp() const {
  ConfusionMatrix cm(options_.scene.num_classes);
  for (std::size_t i = 0; i < eval_scenes_.size(); ++i) {
    cm.add(eval_labels_[i],
           tfm::SegformerB0Like::argmax_labels(
               model_.forward_fp(eval_scenes_[i].image, pool_.get())));
  }
  return cm.mean_iou();
}

template <typename ModelT>
double SegTask<ModelT>::miou_int(const tfm::NonlinearProvider& nl) const {
  // Pre-build the pwl units before the threaded forwards so the hot paths
  // hit the lock-free warmed tier (misses stay correct, just slower).
  nl.warm_up({Op::kExp, Op::kGelu, Op::kHswish, Op::kDiv, Op::kRsqrt},
             tfm::NonlinearProvider::deployment_scale_exps());
  ConfusionMatrix cm(options_.scene.num_classes);
  for (std::size_t i = 0; i < eval_scenes_.size(); ++i) {
    cm.add(eval_labels_[i],
           tfm::SegformerB0Like::argmax_labels(
               model_.forward_int(eval_scenes_[i].image, nl, pool_.get())));
  }
  return cm.mean_iou();
}

template class SegTask<tfm::SegformerB0Like>;
template class SegTask<tfm::EfficientViTB0Like>;

SegformerTask make_segformer_task(const SegTaskOptions& options) {
  tfm::SegformerConfig config;
  config.image_size = options.scene.size;
  config.num_classes = options.scene.num_classes;
  return SegformerTask(tfm::SegformerB0Like(config), 4, options);
}

EfficientViTTask make_efficientvit_task(const SegTaskOptions& options) {
  tfm::EfficientViTConfig config;
  config.image_size = options.scene.size;
  config.num_classes = options.scene.num_classes;
  return EfficientViTTask(tfm::EfficientViTB0Like(config), 8, options);
}

std::vector<ReplacementRow> segformer_rows() {
  return {
      {"EXP only", {Op::kExp}},
      {"GELU only", {Op::kGelu}},
      {"DIV only", {Op::kDiv}},
      {"RSQRT only", {Op::kRsqrt}},
      {"Altogether", {Op::kExp, Op::kGelu, Op::kDiv, Op::kRsqrt}},
  };
}

std::vector<ReplacementRow> efficientvit_rows() {
  return {
      {"HSWISH only", {Op::kHswish}},
      {"DIV only", {Op::kDiv}},
      {"Altogether", {Op::kHswish, Op::kDiv}},
  };
}

}  // namespace gqa
