# Empty compiler generated dependencies file for genetic_test.
# This may be replaced when dependencies are built.
