// Fixed-point value representation (Q-format). A FxpFormat describes a
// signed/unsigned integer of `width` bits whose codes are interpreted with
// `frac` fractional bits: real = code * 2^-frac.
#pragma once

#include <cstdint>
#include <string>

#include "numerics/rounding.h"
#include "numerics/saturate.h"

namespace gqa {

/// Describes a fixed-point number format, e.g. FxpFormat{8, 5, true} is
/// a signed Q2.5 with range [-4, 3.96875].
struct FxpFormat {
  int width = 8;           ///< total bits including sign
  int frac = 5;            ///< fractional (decimal) bits, the paper's λ
  bool is_signed = true;

  [[nodiscard]] int integer_bits() const {
    return width - frac - (is_signed ? 1 : 0);
  }
  [[nodiscard]] double resolution() const { return std::ldexp(1.0, -frac); }
  [[nodiscard]] double min_value() const {
    return static_cast<double>(int_min(width, is_signed)) * resolution();
  }
  [[nodiscard]] double max_value() const {
    return static_cast<double>(int_max(width, is_signed)) * resolution();
  }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FxpFormat&, const FxpFormat&) = default;
};

/// Encodes `value` into the code domain of `fmt` with saturation.
[[nodiscard]] std::int64_t fxp_encode(double value, const FxpFormat& fmt,
                                      RoundMode mode = RoundMode::kNearestAway);

/// Decodes a code back to its real value. The code must fit `fmt`.
[[nodiscard]] double fxp_decode(std::int64_t code, const FxpFormat& fmt);

/// Round-trips a real through `fmt` (quantization to the representable grid).
[[nodiscard]] double fxp_round(double value, const FxpFormat& fmt,
                               RoundMode mode = RoundMode::kNearestAway);

}  // namespace gqa
