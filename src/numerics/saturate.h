// Width-limited integer helpers modelling hardware datapaths where every
// bus has an explicit bit width and overflow saturates (never wraps).
#pragma once

#include <cstdint>
#include <limits>

#include "util/contracts.h"

namespace gqa {

/// Smallest representable code of a `bits`-wide integer.
[[nodiscard]] constexpr std::int64_t int_min(int bits, bool is_signed) {
  return is_signed ? -(std::int64_t{1} << (bits - 1)) : 0;
}

/// Largest representable code of a `bits`-wide integer.
[[nodiscard]] constexpr std::int64_t int_max(int bits, bool is_signed) {
  return is_signed ? (std::int64_t{1} << (bits - 1)) - 1
                   : (std::int64_t{1} << bits) - 1;
}

/// Inclusive clamp bounds of a `bits`-wide bus. Precomputing the pair lets
/// batched kernels (and the SIMD table views in kernel/dispatch.h) hoist the
/// width arithmetic out of element loops while still clamping through the
/// same single source of truth as scalar `saturate`.
struct BusBounds {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

[[nodiscard]] constexpr BusBounds bus_bounds(int bits, bool is_signed) {
  return BusBounds{int_min(bits, is_signed), int_max(bits, is_signed)};
}

/// Clamps `value` into `[bounds.lo, bounds.hi]` — the one saturation clamp
/// every bus-width path (dense-table eval, the >16-bit binary-search
/// fallback, the multi-range alignment shifts, the SIMD lanes) funnels
/// through.
[[nodiscard]] constexpr std::int64_t clamp_to_bus(std::int64_t value,
                                                  BusBounds bounds) {
  if (value < bounds.lo) return bounds.lo;
  if (value > bounds.hi) return bounds.hi;
  return value;
}

/// Clamps `value` into the representable range of a `bits`-wide integer.
[[nodiscard]] inline std::int64_t saturate(std::int64_t value, int bits,
                                           bool is_signed = true) {
  GQA_EXPECTS(bits >= 1 && bits <= 62);
  return clamp_to_bus(value, bus_bounds(bits, is_signed));
}

/// True when `value` fits a `bits`-wide integer without clipping.
[[nodiscard]] inline bool fits(std::int64_t value, int bits,
                               bool is_signed = true) {
  return value >= int_min(bits, is_signed) && value <= int_max(bits, is_signed);
}

/// Saturating add of two values already confined to `bits` width.
[[nodiscard]] inline std::int64_t sat_add(std::int64_t a, std::int64_t b,
                                          int bits, bool is_signed = true) {
  return saturate(a + b, bits, is_signed);
}

/// Saturating left shift (models a barrel shifter with a bounded output bus).
[[nodiscard]] inline std::int64_t sat_shl(std::int64_t value, int shift,
                                          int bits, bool is_signed = true) {
  GQA_EXPECTS(shift >= 0 && shift < 62);
  // Detect overflow before shifting to avoid UB on int64.
  const std::int64_t hi = int_max(bits, is_signed);
  const std::int64_t lo = int_min(bits, is_signed);
  if (value > (hi >> shift)) return hi;
  if (is_signed && value < (lo >> shift)) return lo;
  return saturate(value << shift, bits, is_signed);
}

}  // namespace gqa
