file(REMOVE_RECURSE
  "CMakeFiles/hw_test.dir/tests/hw_test.cpp.o"
  "CMakeFiles/hw_test.dir/tests/hw_test.cpp.o.d"
  "hw_test"
  "hw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
