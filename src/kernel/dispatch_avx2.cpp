// AVX2 backend. This translation unit is compiled with -mavx2 on x86-64
// (see CMakeLists.txt); the runtime CPUID probe keeps hosts without the
// AVX2 bit on the scalar oracle, so nothing here executes unless the CPU
// advertises the extension.
//
// Every kernel is bit-identical to its scalar oracle by construction:
//  - integer sums reorder freely (no overflow inside the bus widths the
//    call sites guarantee), so lane-parallel accumulation is exact;
//  - 32x32->64 signed multiplies (_mm256_mul_epi32) are exact whenever
//    both operands fit int32, which the PwlTableView eligibility
//    invariants and the call-site gates guarantee;
//  - AVX2 has no 64-bit min/max, so saturation clamps are compare+blend
//    against the same BusBounds the scalar clamp_to_bus uses;
//  - int64->double uses the 2^52+2^51 magic-constant trick, exact for
//    |v| < 2^51 (the view guarantees acc fits 50 bits), and the acc_scale
//    multiply is a single-rounded elementwise op — the same operation the
//    scalar path performs.
// Each kernel ends with a scalar tail loop for the n % lane_width rump.
#include "kernel/dispatch.h"

#if defined(__x86_64__) || defined(_M_X64)

#if defined(__AVX2__)

#include <immintrin.h>

#include "util/contracts.h"

namespace gqa::kernel {

namespace {

bool probe_avx2() { return __builtin_cpu_supports("avx2") != 0; }

/// Scalar replica of one dense-table pwl step (tail elements and the
/// violation re-check). Identical arithmetic to IntPwlUnit::eval_code with
/// the dense segment table: k·q then saturating add of the aligned
/// intercept.
std::int64_t pwl_acc_one(const PwlTableView& t, std::int64_t code) {
  const std::size_t seg = static_cast<std::size_t>(
      t.seg_of_code[static_cast<std::size_t>(code - t.code_lo)]);
  return clamp_to_bus(t.k_code[seg] * code + t.b_aligned[seg], t.acc);
}

/// Throws the oracle's exact precondition when any of the `n` codes is
/// outside the input bus (the vector path detects "some lane bad" and
/// delegates here so the exception carries the same message).
void require_in_bus(const PwlTableView& t, const std::int64_t* q,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    GQA_EXPECTS_MSG(q[i] >= t.in.lo && q[i] <= t.in.hi,
                    "input code exceeds the input bus width");
  }
}

/// Clamp int64 lanes to [lo, hi] (compare+blend; no 64-bit min/max in AVX2).
inline __m256i clamp_epi64(__m256i v, __m256i lo, __m256i hi) {
  v = _mm256_blendv_epi8(v, hi, _mm256_cmpgt_epi64(v, hi));
  v = _mm256_blendv_epi8(v, lo, _mm256_cmpgt_epi64(lo, v));
  return v;
}

/// int64 lanes -> double lanes, exact for |v| < 2^51: integer-adding v to
/// the bit pattern of the double 2^52+2^51 produces the double value
/// 2^52+2^51+v exactly (v lands in the mantissa with ULP 1).
inline __m256d i64_to_f64(__m256i v) {
  const __m256d magic = _mm256_set1_pd(6755399441055744.0);  // 2^52 + 2^51
  const __m256i biased = _mm256_add_epi64(v, _mm256_castpd_si256(magic));
  return _mm256_sub_pd(_mm256_castsi256_pd(biased), magic);
}

/// Core dense-table step for 4 codes: segment gather (1-byte entries via a
/// 4-byte gather + mask; the table is padded with 3 trailing bytes), slope
/// and aligned-intercept gathers, exact 32x32->64 multiply, saturating add.
inline __m256i pwl_gather_acc(const PwlTableView& t, __m256i qv,
                              __m256i code_lo, __m256i acc_lo,
                              __m256i acc_hi) {
  const __m256i idx64 = _mm256_sub_epi64(qv, code_lo);
  // The index fits 17 bits (<= 16-bit bus), so the low dword of each lane
  // is the whole index; compress the 4 low dwords into a __m128i.
  const __m128i idx32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
      idx64, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
  __m256i kv, bv;
  if (t.k_of_code != nullptr) {
    kv = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.k_of_code), idx32, 8);
    bv = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.b_of_code), idx32, 8);
  } else {
    const __m128i seg = _mm_and_si128(
        _mm_i32gather_epi32(reinterpret_cast<const int*>(t.seg_of_code),
                            idx32, 1),
        _mm_set1_epi32(0xFF));
    kv = _mm256_i32gather_epi64(reinterpret_cast<const long long*>(t.k_code),
                                seg, 8);
    bv = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.b_aligned), seg, 8);
  }
  const __m256i acc = _mm256_add_epi64(_mm256_mul_epi32(kv, qv), bv);
  return clamp_epi64(acc, acc_lo, acc_hi);
}

/// Two independent 4-lane accumulator vectors (an 8-code step).
struct Acc8 {
  __m256i lo;
  __m256i hi;
};

/// 8-code dense-table step: one 8-lane segment gather feeds two
/// independent 4-lane slope/intercept gather chains, so the gather
/// latencies overlap instead of serializing (the 4-code step leaves the
/// gather unit idle between iterations).
inline Acc8 pwl_gather_acc8(const PwlTableView& t, __m256i q0, __m256i q1,
                            __m256i code_lo, __m256i acc_lo, __m256i acc_hi) {
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m128i lo0 = _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_sub_epi64(q0, code_lo), perm));
  const __m128i lo1 = _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_sub_epi64(q1, code_lo), perm));
  __m256i k0, b0, k1, b1;
  if (t.k_of_code != nullptr) {
    // Small bus: per-code parameter tables — four fully independent
    // gathers, the code index addresses slope and intercept directly.
    k0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.k_of_code), lo0, 8);
    b0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.b_of_code), lo0, 8);
    k1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.k_of_code), lo1, 8);
    b1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.b_of_code), lo1, 8);
  } else {
    const __m256i idx32 = _mm256_set_m128i(lo1, lo0);
    const __m256i seg8 = _mm256_and_si256(
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(t.seg_of_code),
                               idx32, 1),
        _mm256_set1_epi32(0xFF));
    const __m128i seg0 = _mm256_castsi256_si128(seg8);
    const __m128i seg1 = _mm256_extracti128_si256(seg8, 1);
    k0 = _mm256_i32gather_epi64(reinterpret_cast<const long long*>(t.k_code),
                                seg0, 8);
    b0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.b_aligned), seg0, 8);
    k1 = _mm256_i32gather_epi64(reinterpret_cast<const long long*>(t.k_code),
                                seg1, 8);
    b1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(t.b_aligned), seg1, 8);
  }
  Acc8 r;
  r.lo = clamp_epi64(_mm256_add_epi64(_mm256_mul_epi32(k0, q0), b0), acc_lo,
                     acc_hi);
  r.hi = clamp_epi64(_mm256_add_epi64(_mm256_mul_epi32(k1, q1), b1), acc_lo,
                     acc_hi);
  return r;
}

void avx2_pwl_eval_codes(const PwlTableView& t, const std::int64_t* q,
                         std::int64_t* out, std::size_t n) {
  const __m256i code_lo = _mm256_set1_epi64x(t.code_lo);
  const __m256i in_lo = _mm256_set1_epi64x(t.in.lo);
  const __m256i in_hi = _mm256_set1_epi64x(t.in.hi);
  const __m256i acc_lo = _mm256_set1_epi64x(t.acc.lo);
  const __m256i acc_hi = _mm256_set1_epi64x(t.acc.hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    const __m256i q1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i + 4));
    const __m256i bad = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpgt_epi64(q0, in_hi),
                        _mm256_cmpgt_epi64(in_lo, q0)),
        _mm256_or_si256(_mm256_cmpgt_epi64(q1, in_hi),
                        _mm256_cmpgt_epi64(in_lo, q1)));
    if (!_mm256_testz_si256(bad, bad)) require_in_bus(t, q + i, 8);
    const Acc8 acc = pwl_gather_acc8(t, q0, q1, code_lo, acc_lo, acc_hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc.lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), acc.hi);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i qv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi64(qv, in_hi),
                                        _mm256_cmpgt_epi64(in_lo, qv));
    if (!_mm256_testz_si256(bad, bad)) require_in_bus(t, q + i, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        pwl_gather_acc(t, qv, code_lo, acc_lo, acc_hi));
  }
  for (; i < n; ++i) {
    require_in_bus(t, q + i, 1);
    out[i] = pwl_acc_one(t, q[i]);
  }
}

void avx2_pwl_eval_reals(const PwlTableView& t, const std::int64_t* q,
                         double* out, std::size_t n) {
  const __m256i code_lo = _mm256_set1_epi64x(t.code_lo);
  const __m256i in_lo = _mm256_set1_epi64x(t.in.lo);
  const __m256i in_hi = _mm256_set1_epi64x(t.in.hi);
  const __m256i acc_lo = _mm256_set1_epi64x(t.acc.lo);
  const __m256i acc_hi = _mm256_set1_epi64x(t.acc.hi);
  const __m256d scale = _mm256_set1_pd(t.acc_scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    const __m256i q1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i + 4));
    const __m256i bad = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpgt_epi64(q0, in_hi),
                        _mm256_cmpgt_epi64(in_lo, q0)),
        _mm256_or_si256(_mm256_cmpgt_epi64(q1, in_hi),
                        _mm256_cmpgt_epi64(in_lo, q1)));
    if (!_mm256_testz_si256(bad, bad)) require_in_bus(t, q + i, 8);
    const Acc8 acc = pwl_gather_acc8(t, q0, q1, code_lo, acc_lo, acc_hi);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(i64_to_f64(acc.lo), scale));
    _mm256_storeu_pd(out + i + 4, _mm256_mul_pd(i64_to_f64(acc.hi), scale));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i qv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi64(qv, in_hi),
                                        _mm256_cmpgt_epi64(in_lo, qv));
    if (!_mm256_testz_si256(bad, bad)) require_in_bus(t, q + i, 4);
    const __m256i acc = pwl_gather_acc(t, qv, code_lo, acc_lo, acc_hi);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(i64_to_f64(acc), scale));
  }
  for (; i < n; ++i) {
    require_in_bus(t, q + i, 1);
    out[i] = static_cast<double>(pwl_acc_one(t, q[i])) * t.acc_scale;
  }
}

void avx2_pwl_eval_reals_sat(const PwlTableView& t, const std::int64_t* q,
                             double* out, std::size_t n) {
  const __m256i code_lo = _mm256_set1_epi64x(t.code_lo);
  const __m256i in_lo = _mm256_set1_epi64x(t.in.lo);
  const __m256i in_hi = _mm256_set1_epi64x(t.in.hi);
  const __m256i acc_lo = _mm256_set1_epi64x(t.acc.lo);
  const __m256i acc_hi = _mm256_set1_epi64x(t.acc.hi);
  const __m256d scale = _mm256_set1_pd(t.acc_scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q0 = clamp_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i)), in_lo,
        in_hi);
    const __m256i q1 = clamp_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i + 4)),
        in_lo, in_hi);
    const Acc8 acc = pwl_gather_acc8(t, q0, q1, code_lo, acc_lo, acc_hi);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(i64_to_f64(acc.lo), scale));
    _mm256_storeu_pd(out + i + 4, _mm256_mul_pd(i64_to_f64(acc.hi), scale));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i qv = clamp_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i)), in_lo,
        in_hi);
    const __m256i acc = pwl_gather_acc(t, qv, code_lo, acc_lo, acc_hi);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(i64_to_f64(acc), scale));
  }
  for (; i < n; ++i) {
    const std::int64_t code = clamp_to_bus(q[i], t.in);
    out[i] = static_cast<double>(pwl_acc_one(t, code)) * t.acc_scale;
  }
}

std::int64_t avx2_dot_i32_i8(const std::int32_t* a, const std::int8_t* w,
                             std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i wv = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + i)));
    // Exact 32x32->64 products: even dwords directly, odd dwords shuffled
    // into even position first.
    const __m256i even = _mm256_mul_epi32(av, wv);
    const __m256i odd =
        _mm256_mul_epi32(_mm256_shuffle_epi32(av, _MM_SHUFFLE(3, 3, 1, 1)),
                         _mm256_shuffle_epi32(wv, _MM_SHUFFLE(3, 3, 1, 1)));
    acc = _mm256_add_epi64(acc, _mm256_add_epi64(even, odd));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += static_cast<std::int64_t>(a[i]) * w[i];
  return sum;
}

void avx2_axpy_i64_i32(std::int64_t* acc, const std::int32_t* x,
                       std::int32_t w, std::size_t n) {
  const __m256i wv = _mm256_set1_epi64x(w);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i xv = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
    const __m256i sum = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i)),
        _mm256_mul_epi32(xv, wv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), sum);
  }
  for (; i < n; ++i) acc[i] += static_cast<std::int64_t>(w) * x[i];
}

std::int64_t avx2_sum_i32(const std::int32_t* x, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepi32_epi64(
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i))));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += x[i];
  return sum;
}

std::int64_t avx2_ssq_centered_i32(const std::int32_t* x, std::int64_t dim,
                                   std::int64_t sum, std::size_t n) {
  const __m256i dimv = _mm256_set1_epi64x(dim);
  const __m256i sumv = _mm256_set1_epi64x(sum);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i xv = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
    // c = dim·x − sum fits int32 (call-site gate), so c·c via the 32-bit
    // multiply is exact.
    const __m256i c = _mm256_sub_epi64(_mm256_mul_epi32(dimv, xv), sumv);
    acc = _mm256_add_epi64(acc, _mm256_mul_epi32(c, c));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t ssq = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    const std::int64_t c = dim * x[i] - sum;
    ssq += c * c;
  }
  return ssq;
}

std::int32_t avx2_max_i32(const std::int32_t* x, std::size_t n) {
  std::int32_t best = x[0];
  std::size_t i = 0;
  if (n >= 8) {
    __m256i mv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x));
    for (i = 8; i + 8 <= n; i += 8) {
      mv = _mm256_max_epi32(
          mv, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)));
    }
    __m128i m = _mm_max_epi32(_mm256_castsi256_si128(mv),
                              _mm256_extracti128_si256(mv, 1));
    m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
    m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
    best = _mm_cvtsi128_si32(m);
  }
  for (; i < n; ++i) best = best > x[i] ? best : x[i];
  return best;
}

void avx2_sub_scalar_widen_i32(const std::int32_t* x, std::int32_t sub,
                               std::int64_t* out, std::size_t n) {
  const __m256i sv = _mm256_set1_epi64x(sub);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i xv = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sub_epi64(xv, sv));
  }
  for (; i < n; ++i) out[i] = static_cast<std::int64_t>(x[i]) - sub;
}

}  // namespace

const KernelBackend kAvx2Backend{
    .name = "avx2",
    .probe = probe_avx2,
    .ops =
        KernelOps{
            .pwl_eval_codes = avx2_pwl_eval_codes,
            .pwl_eval_reals = avx2_pwl_eval_reals,
            .pwl_eval_reals_sat = avx2_pwl_eval_reals_sat,
            .dot_i32_i8 = avx2_dot_i32_i8,
            .axpy_i64_i32 = avx2_axpy_i64_i32,
            .sum_i32 = avx2_sum_i32,
            .ssq_centered_i32 = avx2_ssq_centered_i32,
            .max_i32 = avx2_max_i32,
            .sub_scalar_widen_i32 = avx2_sub_scalar_widen_i32,
        },
};

}  // namespace gqa::kernel

#else  // x86-64 built without -mavx2: register an unavailable placeholder

namespace gqa::kernel {

const KernelBackend kAvx2Backend{
    .name = "avx2",
    .probe = [] { return false; },
    .ops = KernelOps{},
};

}  // namespace gqa::kernel

#endif  // __AVX2__

#endif  // __x86_64__ || _M_X64
