file(REMOVE_RECURSE
  "CMakeFiles/ablation_multirange.dir/bench/ablation_multirange.cpp.o"
  "CMakeFiles/ablation_multirange.dir/bench/ablation_multirange.cpp.o.d"
  "bench/ablation_multirange"
  "bench/ablation_multirange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multirange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
