// Tests for the generic genetic optimizer: operator behaviour, determinism,
// elitist monotonicity, and convergence on a known optimum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "genetic/genetic.h"
#include "util/contracts.h"

namespace gqa {
namespace {

TEST(Crossover, SwapsASegmentAndPreservesUnion) {
  Genome a = {1, 2, 3, 4, 5};
  Genome b = {10, 20, 30, 40, 50};
  Rng rng(3);
  GeneticOptimizer::segment_swap_crossover(a, b, rng);
  // Every element still belongs to {original a} or {original b}, positionwise.
  int swapped = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool kept = a[i] == static_cast<double>(i + 1);
    const bool took = a[i] == static_cast<double>((i + 1) * 10);
    EXPECT_TRUE(kept || took);
    if (took) {
      EXPECT_DOUBLE_EQ(b[i], static_cast<double>(i + 1));
      ++swapped;
    }
  }
  EXPECT_GE(swapped, 1);  // a segment of length >= 1 always swaps
}

TEST(Crossover, MismatchedLengthsThrow) {
  Genome a = {1, 2};
  Genome b = {1, 2, 3};
  Rng rng(1);
  EXPECT_THROW(GeneticOptimizer::segment_swap_crossover(a, b, rng),
               ContractViolation);
}

TEST(GaConfig, Validation) {
  GaConfig bad;
  bad.population_size = 1;
  EXPECT_THROW(GeneticOptimizer{bad}, ContractViolation);
  bad = GaConfig{};
  bad.crossover_prob = 1.5;
  EXPECT_THROW(GeneticOptimizer{bad}, ContractViolation);
  bad = GaConfig{};
  bad.tournament_size = 100;
  EXPECT_THROW(GeneticOptimizer{bad}, ContractViolation);
  bad = GaConfig{};
  bad.elite_count = bad.population_size;
  EXPECT_THROW(GeneticOptimizer{bad}, ContractViolation);
}

GaConfig quick_config(std::uint64_t seed = 7) {
  GaConfig cfg;
  cfg.population_size = 20;
  cfg.generations = 60;
  cfg.seed = seed;
  return cfg;
}

/// Sphere function: optimum at (0.3, -0.7, 1.1).
double sphere(const Genome& g) {
  const double t0 = g[0] - 0.3;
  const double t1 = g[1] + 0.7;
  const double t2 = g[2] - 1.1;
  return t0 * t0 + t1 * t1 + t2 * t2;
}

GaResult run_sphere(const GaConfig& cfg) {
  const InitFn init = [](Rng& rng) {
    Genome g(3);
    for (double& v : g) v = rng.uniform(-5.0, 5.0);
    return g;
  };
  const MutateFn mutate = [](Genome& g, Rng& rng) {
    for (double& v : g) {
      if (rng.bernoulli(0.5)) v += rng.normal(0.0, 0.3);
    }
  };
  return GeneticOptimizer(cfg).run(init, sphere, mutate);
}

TEST(GeneticOptimizer, ConvergesOnSphere) {
  const GaResult result = run_sphere(quick_config());
  EXPECT_LT(result.best_fitness, 0.05);
  EXPECT_NEAR(result.best[0], 0.3, 0.3);
  EXPECT_NEAR(result.best[1], -0.7, 0.3);
  EXPECT_NEAR(result.best[2], 1.1, 0.3);
}

TEST(GeneticOptimizer, DeterministicPerSeed) {
  const GaResult a = run_sphere(quick_config(123));
  const GaResult b = run_sphere(quick_config(123));
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.history, b.history);
  const GaResult c = run_sphere(quick_config(124));
  EXPECT_NE(a.best, c.best);
}

TEST(GeneticOptimizer, BestFitnessMonotoneWithElitism) {
  const GaResult result = run_sphere(quick_config());
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
  EXPECT_EQ(result.history.size(), 60u);
  EXPECT_EQ(result.evaluations, 20 * 60);
}

TEST(GeneticOptimizer, HookObservesEveryGeneration) {
  int calls = 0;
  std::size_t pop_seen = 0;
  const PopulationHook hook = [&](int gen, const std::vector<Genome>& pop,
                                  const std::vector<double>& scores) {
    EXPECT_EQ(gen, calls);
    EXPECT_EQ(pop.size(), scores.size());
    pop_seen = pop.size();
    ++calls;
  };
  const GaConfig cfg = quick_config();
  const InitFn init = [](Rng& rng) {
    Genome g(3);
    for (double& v : g) v = rng.uniform(-1.0, 1.0);
    return g;
  };
  const MutateFn mutate = [](Genome& g, Rng& rng) {
    g[0] += rng.normal(0.0, 0.1);
  };
  (void)GeneticOptimizer(cfg).run(init, sphere, mutate, {}, hook);
  EXPECT_EQ(calls, cfg.generations);
  EXPECT_EQ(pop_seen, static_cast<std::size_t>(cfg.population_size));
}

TEST(GeneticOptimizer, RepairEnforcedAfterOperators) {
  // Repair clamps genomes into [0, 1]; the result must respect it.
  GaConfig cfg = quick_config();
  const InitFn init = [](Rng& rng) {
    Genome g(2);
    for (double& v : g) v = rng.uniform(-10.0, 10.0);
    return g;
  };
  const MutateFn mutate = [](Genome& g, Rng& rng) {
    g[0] += rng.normal(0.0, 5.0);
  };
  const RepairFn repair = [](Genome& g) {
    for (double& v : g) v = std::clamp(v, 0.0, 1.0);
  };
  const FitnessFn fitness = [](const Genome& g) {
    return (g[0] - 2.0) * (g[0] - 2.0) + g[1] * g[1];  // pulls toward 2
  };
  const GaResult result = GeneticOptimizer(cfg).run(init, fitness, mutate, repair);
  EXPECT_LE(result.best[0], 1.0);
  EXPECT_GE(result.best[0], 0.0);
  EXPECT_NEAR(result.best[0], 1.0, 0.05);  // clamped optimum
}

TEST(GeneticOptimizer, MissingCallbacksThrow) {
  const GeneticOptimizer ga(quick_config());
  const InitFn init = [](Rng&) { return Genome{0.0}; };
  const MutateFn mutate = [](Genome&, Rng&) {};
  EXPECT_THROW((void)ga.run(nullptr, sphere, mutate), ContractViolation);
  EXPECT_THROW((void)ga.run(init, nullptr, mutate), ContractViolation);
  EXPECT_THROW((void)ga.run(init, sphere, nullptr), ContractViolation);
}

}  // namespace
}  // namespace gqa
