# Empty dependencies file for readme_snippets.
# This may be replaced when dependencies are built.
