// Structural hardware cost model of the LUT-pwl units (§4.3).
//
// The paper synthesizes Verilog with Synopsys DC on TSMC 28 nm; this
// reproduction substitutes a gate-equivalent (GE) component model: each
// datapath element contributes GE counts taken from standard unit-gate
// estimates (array multiplier ≈ w_a·w_b full adders, ripple comparator,
// barrel shifter, register bits), converted to area via a 28-nm
// NAND2-equivalent footprint and calibrated against one anchor point
// (INT8 / 8-entry = 961 um², 0.40 mW @ 500 MHz). Relative costs across
// precisions/entry counts — the claims of Table 6 — follow from structure,
// not from the anchor.
#pragma once

#include <map>
#include <string>

namespace gqa::hw {

/// Technology constants for the cost conversion.
struct TechLib {
  std::string name = "28nm-class";
  double um2_per_ge = 0.49;     ///< NAND2-equivalent footprint
  double uw_per_ge_mhz = 1.45e-3;  ///< dynamic power density per GE per MHz
  double clock_mhz = 500.0;        ///< §4.3 operating frequency
  /// Global calibration factor applied after composition (fit once against
  /// the INT8/8-entry anchor; identical for every configuration).
  double area_calibration = 1.0;
  double power_calibration = 1.0;
};

/// Gate-equivalent costs of datapath primitives.
/// All widths are in bits; results in GE.
[[nodiscard]] double ge_full_adder();
[[nodiscard]] double ge_register_bit();
[[nodiscard]] double ge_mux2_bit();

/// w-bit ripple-carry adder.
[[nodiscard]] double ge_adder(int width);
/// wa x wb array multiplier (unit-gate model: wa*wb AND + (wa-1)*wb FA).
[[nodiscard]] double ge_multiplier(int wa, int wb);
/// w-bit magnitude comparator.
[[nodiscard]] double ge_comparator(int width);
/// Barrel shifter: `width`-bit value, log2(max_shift) stages of muxes.
[[nodiscard]] double ge_barrel_shifter(int width, int max_shift);
/// Storage: `bits` register bits (LUT entries are flop-based at this size).
[[nodiscard]] double ge_storage(int bits);
/// Priority encoder over n request lines.
[[nodiscard]] double ge_priority_encoder(int n);

/// FP32 datapath elements (for the Figure 1(a) high-precision unit):
/// mantissa multiplier + exponent adder + normalizer, and an FP adder with
/// alignment/normalization shifters.
[[nodiscard]] double ge_fp32_multiplier();
[[nodiscard]] double ge_fp32_adder();
[[nodiscard]] double ge_fp32_comparator();

/// Itemized gate budget of a unit: component name -> GE.
using GeBreakdown = std::map<std::string, double>;

}  // namespace gqa::hw
