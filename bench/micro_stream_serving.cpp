// Streaming-session serving under open-loop load: a fixed-rate frame
// source (the real-time video shape — the camera never waits for the
// server) pushed through Server::open_stream at three offered rates
// around the measured single-stream capacity:
//
//   0.5x  under capacity — every frame should be served, on time;
//   1.0x  at capacity — sustained fps tracks the offered rate, the ring
//         absorbs scheduling jitter;
//   2.0x  over capacity — the drop policy (kDropOldest here) sheds the
//         excess; sustained fps holds near capacity instead of collapsing
//         into unbounded lag.
//
// Capacity is measured, not assumed: the median serial forward_int time
// of the scene frames. A stream delivers in frame order with one frame in
// flight, so single-stream capacity is 1/frame_time regardless of lanes.
//
// Reported per rate: offered vs sustained fps, push/serve/drop counts,
// and deadline-miss % (frames that started after their deadline — under
// kDropOldest they are served late, never killed). Every served frame is
// compared against the serial forward of the same image; a divergence is
// a correctness bug and the bench exits non-zero (CI runs this in smoke
// mode as the streaming bit-identity gate).
//
// Env knobs: GQA_SERVE_SCENES (default 8) distinct scene frames,
//            GQA_BENCH_REPS (default 5) rounds per rate (median fps kept),
//            GQA_STREAM_RING_CAPACITY (default 8) pending-frame ring.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "eval/scene.h"
#include "eval/server.h"
#include "tfm/models/segformer.h"

using namespace gqa;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  const int scenes = static_cast<int>(env_int("GQA_SERVE_SCENES", 8));
  const int reps = static_cast<int>(env_int("GQA_BENCH_REPS", 5));

  SceneOptions scene;
  scene.size = 64;
  std::vector<tfm::Tensor> images;
  for (const LabeledScene& s : make_scene_set(scene, scenes, 0x5E21)) {
    images.push_back(s.image);
  }

  tfm::SegformerB0Like seg;
  seg.calibrate(images.front());
  seg.freeze();
  const auto nl = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kExp, Op::kGelu, Op::kDiv, Op::kRsqrt});

  // Serial references double as the capacity measurement: the per-frame
  // bit-identity gate compares against these, and the median forward time
  // sets the 1x offered rate. The provider fits its LUT units lazily on
  // first use, so an untimed warm pass goes first — timing the fits would
  // inflate the capacity estimate and make every offered rate an underload.
  for (const tfm::Tensor& img : images) (void)seg.forward_int(img, nl);
  std::vector<std::vector<std::int32_t>> refs;
  std::vector<double> frame_times;
  for (const tfm::Tensor& img : images) {
    Timer timer;
    refs.push_back(seg.forward_int(img, nl).data());
    frame_times.push_back(timer.milliseconds());
  }
  const double frame_ms = median(frame_times);
  const double capacity_fps = 1e3 / frame_ms;

  Server server(nl, {});
  const int model = server.register_model(seg, "segformer");

  StreamOptions so;
  so.drop_policy = DropPolicy::kDropOldest;
  // Two frame-times of slack: generous under capacity, inevitably missed
  // once the over-capacity backlog builds — which is what the Miss%
  // column is for.
  so.deadline =
      std::chrono::milliseconds(static_cast<std::int64_t>(2.0 * frame_ms) + 1);

  const std::size_t frames = std::min<std::size_t>(
      std::max<std::size_t>(2 * images.size(), 8), 32);

  TablePrinter table({"Offered", "Offered fps", "Sustained fps", "Pushed",
                      "Served", "Dropped", "Miss %", "Bit-identical"});
  table.set_title(
      "Open-loop streaming sessions: fixed-rate frames vs one stream");
  bool all_identical = true;
  for (const double rate : {0.5, 1.0, 2.0}) {
    const double offered_fps = rate * capacity_fps;
    const auto interval = std::chrono::microseconds(
        static_cast<std::int64_t>(1e6 / offered_fps));
    const Server::Stats before = server.stats();
    std::vector<double> fps;
    std::size_t pushed = 0, served = 0;
    bool identical = true;
    for (int rep = 0; rep < reps; ++rep) {
      const bench::StreamOpenLoopResult run =
          bench::run_stream_open_loop(server, model, images, frames,
                                      interval, so);
      fps.push_back(static_cast<double>(run.served.size()) /
                    (run.wall_ms * 1e-3));
      pushed += run.pushed.size();
      served += run.served.size();
      for (const auto& [ticket, idx] : run.pushed) {
        const auto it = run.served.find(ticket);
        if (it != run.served.end()) {
          identical = identical && it->second.data() == refs[idx];
        }
      }
    }
    const Server::Stats after = server.stats();
    const std::uint64_t dropped =
        (after.frames_dropped - before.frames_dropped) +
        (after.frames_coalesced - before.frames_coalesced);
    const std::uint64_t misses =
        after.deadline_misses - before.deadline_misses;
    table.add_row({format("%.1fx capacity", rate), fixed(offered_fps, 1),
                   fixed(median(fps), 1), format("%zu", pushed),
                   format("%zu", served),
                   format("%llu", static_cast<unsigned long long>(dropped)),
                   fixed(100.0 * static_cast<double>(misses) /
                             static_cast<double>(pushed),
                         1),
                   identical ? "yes" : "NO"});
    all_identical = all_identical && identical;
  }
  table.set_footnote(format(
      "capacity %.1f fps (median serial forward %.1f ms); policy "
      "drop_oldest, deadline 2 frame-times, %zu frames/round x %d rounds",
      capacity_fps, frame_ms, frames, reps));
  bench::emit(table, "stream_serving");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a served stream frame diverged from its serial "
                 "forward\n");
    return 1;
  }
  return 0;
}
