# Empty dependencies file for approximator_test.
# This may be replaced when dependencies are built.
