# Empty dependencies file for table4_segformer.
# This may be replaced when dependencies are built.
