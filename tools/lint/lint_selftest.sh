#!/usr/bin/env bash
# Fixture self-test for the repo-invariant linter, registered as the
# `invariant_lint_selftest` ctest (label: lint).
#
# A linter that never fires is indistinguishable from no linter, so each
# fixture copies the live tree, seeds exactly one violation class, and
# asserts check_invariants.sh exits non-zero WITH the pointed message for
# that rule:
#
#   stale-doc-table     drop a TicketStatus enumerator row  -> R2 fires
#   unlabeled-conc-test new test uses ThreadPool, unlabeled -> R3 fires
#   undocumented-env    new env_int("GQA_...") read in src/ -> R1 fires
#   naked-thread        std::thread + detach outside util/  -> R4 fires
#   stale-fault-map     drop a fault::Point enumerator row  -> R5 fires
#   stale-backend-table drop a kernel backend's doc rows    -> R6 fires
#
# plus the control: an unmodified copy must pass (the linter must not
# cry wolf on the real tree).
set -u
cd "$(dirname "$0")/../.."
repo_root=$(pwd)
linter="$repo_root/tools/lint/check_invariants.sh"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

make_fixture() {
  local name="$1"
  local dir="$tmp/$name"
  mkdir -p "$dir"
  cp README.md CMakeLists.txt "$dir/"
  mkdir -p "$dir/docs"
  cp docs/ARCHITECTURE.md "$dir/docs/"
  cp -r src tests "$dir/"
  echo "$dir"
}

fails=0
expect_fail() {
  local name="$1" pattern="$2" dir="$3"
  local out
  out=$(GQA_LINT_ROOT="$dir" bash "$linter" 2>&1)
  local code=$?
  if [ "$code" -eq 0 ]; then
    echo "lint-selftest: FAIL [$name] linter passed a tree seeded with a" \
         "violation" >&2
    fails=1
  elif ! printf '%s\n' "$out" | grep -qE -- "$pattern"; then
    echo "lint-selftest: FAIL [$name] linter failed but without the" \
         "pointed message (wanted /$pattern/, got: $out)" >&2
    fails=1
  fi
}

# --- control: unmodified copy passes ------------------------------------
dir=$(make_fixture control)
if ! GQA_LINT_ROOT="$dir" bash "$linter" >/dev/null 2>&1; then
  echo "lint-selftest: FAIL [control] linter rejects an unmodified copy of" \
       "the live tree" >&2
  fails=1
fi

# --- stale doc table: drop every line mentioning kConsumed --------------
dir=$(make_fixture stale-doc-table)
sed -i '/kConsumed/d' "$dir/docs/ARCHITECTURE.md"
expect_fail stale-doc-table 'R2: TicketStatus::kConsumed' "$dir"

# --- unlabeled concurrency test -----------------------------------------
dir=$(make_fixture unlabeled-conc-test)
cat > "$dir/tests/sneaky_pool_test.cpp" <<'EOF'
#include "util/thread_pool.h"
int main() { gqa::ThreadPool pool(2); return 0; }
EOF
expect_fail unlabeled-conc-test 'R3: tests/sneaky_pool_test.cpp' "$dir"

# --- undocumented env read ----------------------------------------------
dir=$(make_fixture undocumented-env)
cat > "$dir/src/selftest_knob.cpp" <<'EOF'
#include "util/env.h"
int selftest_knob() { return gqa::env_int("GQA_SELFTEST_KNOB", 0); }
EOF
expect_fail undocumented-env 'R1: env knob GQA_SELFTEST_KNOB' "$dir"

# --- naked thread outside util/ -----------------------------------------
dir=$(make_fixture naked-thread)
cat > "$dir/src/eval/naked_thread.cpp" <<'EOF'
#include <thread>
void leak_a_thread() {
  std::thread worker([] {});
  worker.detach();
}
EOF
expect_fail naked-thread 'R4: naked std::thread' "$dir"

# --- stale fault-point map: drop every line mentioning kCacheWrite -------
dir=$(make_fixture stale-fault-map)
sed -i '/kCacheWrite/d' "$dir/docs/ARCHITECTURE.md"
expect_fail stale-fault-map 'R5: Point::kCacheWrite' "$dir"

# --- stale backend table: drop every line mentioning `avx2` --------------
dir=$(make_fixture stale-backend-table)
sed -i '/`avx2`/d' "$dir/docs/ARCHITECTURE.md"
expect_fail stale-backend-table "R6: kernel backend 'avx2'" "$dir"

if [ "$fails" -eq 0 ]; then
  echo "lint-selftest: OK (6 violation classes fire, control passes)"
fi
exit $fails
