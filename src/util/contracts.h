// Contract checking in the spirit of the C++ Core Guidelines (I.5/I.7,
// "Prefer Expects()/Ensures()"). Violations throw gqa::ContractViolation so
// tests can assert on failure paths; they are never compiled out because the
// library is used for bit-accurate hardware modelling where silent
// out-of-range values would corrupt results.
#pragma once

#include <stdexcept>
#include <string>

namespace gqa {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* condition,
                                const char* file, int line,
                                const std::string& message);
}  // namespace detail

}  // namespace gqa

/// Precondition check: throws gqa::ContractViolation when `cond` is false.
#define GQA_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gqa::detail::contract_fail("Precondition", #cond, __FILE__,        \
                                   __LINE__, {});                          \
  } while (false)

/// Precondition check with an explanatory message.
#define GQA_EXPECTS_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gqa::detail::contract_fail("Precondition", #cond, __FILE__,        \
                                   __LINE__, (msg));                       \
  } while (false)

/// Postcondition check: throws gqa::ContractViolation when `cond` is false.
#define GQA_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gqa::detail::contract_fail("Postcondition", #cond, __FILE__,       \
                                   __LINE__, {});                          \
  } while (false)

/// Invariant check inside algorithm bodies.
#define GQA_ASSERT(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gqa::detail::contract_fail("Invariant", #cond, __FILE__, __LINE__, \
                                   {});                                    \
  } while (false)
