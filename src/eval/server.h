// Asynchronous serving front-end with multi-model co-serving on a
// continuous-batching scheduler, with fault-tolerant request handling.
//
// The InferenceEngine (eval/engine.h) serves one frozen model one batch at
// a time — the caller owns the batching. gqa::Server owns it instead: any
// number of client threads submit(model_id, image) and get back a Ticket
// (optionally with a result callback); requests flow through a bounded
// admission queue (util/thread_pool.h BoundedQueue) straight onto free
// pool lanes. There is no batch barrier: while a service span is live,
// every lane that finishes a request immediately pulls the next one from
// the scheduler's per-model backlog — refilled from the admission queue on
// every pull — and a lane with nothing to pull parks until an admission or
// completion wakes it, so requests admitted mid-span start on the first
// free lane even while other lanes sit mid-forward
// (dispatch-while-collecting). The span — and the process pool's dispatch
// slot — closes when the backlog is dry and nothing is in flight; a
// dispatcher thread parks on the queue while the server is idle and opens
// the next span on arrival.
//
// Admission order is weighted round-robin: SchedulerConfig::qos_weights
// gives each model a per-cycle credit of dispatch slots (weight 2 means
// two starts per cycle while backlogged), work-conserving — a model with
// no backlog donates its slots instead of stalling the cycle. Equal
// weights reproduce the fair round-robin of the batch-at-a-time server.
//
// Failure semantics (docs/ARCHITECTURE.md "Failure semantics" has the full
// map; every failure is classified per util/serving_error.h):
//   - Deadlines: SubmitOptions::deadline bounds a request's life from
//     admission. A stale backlog entry is expired exactly once when a lane
//     would otherwise start it (and between retry attempts) — an expired
//     request NEVER runs, poll() reads kDeadlineExpired until the error is
//     consumed, and Stats::deadline_expired counts it.
//   - Retries: a kBackendTransient failure (the only retryable class;
//     injected faults are transient by construction) is re-attempted on
//     the same lane up to SubmitOptions::max_attempts times, sleeping
//     backoff * 2^(attempt-1) between attempts, clipped to the deadline.
//     Stats::retries counts re-attempts. Results stay bit-identical: a
//     retry reruns the same deterministic forward.
//   - Circuit breaker (per model, SchedulerConfig::breaker_threshold > 0):
//     breaker_threshold consecutive final backend failures open the
//     breaker; while open, that model's backlog is shed fail-fast with
//     kModelUnavailable (never started), so one poisoned model degrades
//     alone instead of starving co-served models. After breaker_cooldown
//     the breaker goes half-open and admits exactly one probe request:
//     success closes it, failure re-opens it (another cooldown).
//     Stats::breaker_trips counts open transitions; deadline expiries and
//     cancellations never count toward the failure streak.
//   - Fault injection: the admission, scheduler-lane, and backend-forward
//     paths carry compiled-in chaos points (util/fault_injection.h),
//     zero-cost unless GQA_FAULT_SPEC arms them; faults the server's own
//     points fire are counted in Stats::faults_injected. An injected
//     admission fault makes submit()/try_submit() throw ServingError
//     (kAdmissionRejected) — no ticket is issued.
//
// Guarantees (enforced by tests/server_test.cpp, the randomized
// conformance harness tests/scheduler_test.cpp, and the chaos suite
// tests/chaos_test.cpp, all under TSan):
//   - Bit-identity: each request runs one fully-serial forward with a
//     per-lane Workspace (zero-filled acquires, held via LaneLease), so a
//     request's result is exactly what `model.forward_int(image, nl)`
//     returns in a serial per-image loop — regardless of submission order,
//     QoS weights, lane count, how models interleave, or how many
//     transient faults were retried through.
//   - Ticket-order issuance: tickets are dense and issued in admission
//     order; results are keyed by ticket, so waiting tickets in issue
//     order yields results in issue order no matter the completion order.
//   - Exactly-once delivery: a result OR a classified ServingError is
//     delivered exactly once, either to the one wait() call on its ticket
//     or to its submit-time callback — including expired, shed, and
//     cancelled requests.
//   - Backpressure: the admission queue is bounded (ServerOptions::
//     queue_capacity). submit() blocks until space frees; try_submit()
//     returns nullopt instead — the caller picks the policy.
//   - Shutdown/drain: shutdown() stops admission (blocked submitters fail
//     with ContractViolation) and resolves every admitted request — by
//     serving it (DrainPolicy::kFinishAdmitted, the default) or by failing
//     not-yet-started ones to their waiters/callbacks
//     (DrainPolicy::kCancelPending) — then parks the dispatcher. Every
//     ticket issued before shutdown stays collectable after it. shutdown()
//     is idempotent and safe to call concurrently from several threads;
//     the destructor calls it.
//
// Streaming sessions (docs/ARCHITECTURE.md "Streaming sessions" has the
// full data flow): open_stream(model_id, StreamOptions, callback) returns
// a StreamSession handle; push_frame() enqueues into a fixed-capacity
// per-stream RingBuffer (util/ring_buffer.h) instead of the global
// admission queue, so a camera thread never blocks on serving backpressure
// — it sheds its own stale frames instead. The scheduler's WRR pick treats
// each live stream as one more backlog source of its model (rotating
// fairly between the admission backlog and the model's streams), at most
// one frame of a stream is in flight at a time, and results are delivered
// IN FRAME ORDER through the stream's callback regardless of internal
// completion order. Every frame resolves exactly once: served (bit-identical
// to a serial forward of that frame), or dropped per
// StreamOptions::drop_policy (kDropOldest ring overwrite, kDropLate
// pre-start expiry via the deadline machinery above, kCoalesce
// newest-wins) with a classified ServingError. close() on the session
// drains or cancels pending frames per StreamOptions::drain_policy and
// blocks until the stream's last delivery has happened; shutdown() with
// open streams does the same for all of them — no delivery ever happens
// after shutdown() returns.
//
// Callback threading contract: a submit-time callback runs exactly once on
// the service lane that completed (or expired/shed/cancelled) the request,
// after the result left the ticket table — poll() reads kConsumed from
// then on and wait() on a callback ticket is a contract violation.
// Callbacks must be quick (they occupy a service lane), must not throw (an
// escaping exception is swallowed and counted in Stats::callback_errors —
// there is nowhere left to deliver it), and must not call wait(), drain(),
// or shutdown() on this server (self-deadlock); re-submitting from a
// callback is allowed via try_submit() only — a blocking submit() on a
// full queue would stall the lane that has to drain it.
//
// Thread-safety: every public method is safe to call from any thread;
// each ticket has exactly one waiter (a second wait on the same ticket —
// sequential or concurrent — fails with ContractViolation). The shared
// NonlinearProvider is referenced, not copied (its warmed unit tier is
// the point of sharing); it and every registered model must outlive the
// server and stay frozen while it runs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tfm/nonlinear_provider.h"
#include "tfm/tensor.h"
#include "tfm/workspace.h"
#include "util/ring_buffer.h"
#include "util/serving_error.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace gqa {

/// What shutdown() does with requests admitted but not yet started.
enum class DrainPolicy {
  /// Serve every admitted request before parking (the default): issued
  /// tickets always resolve to their forward's result.
  kFinishAdmitted,
  /// Fail admitted-but-not-started requests fast: their waiters get a
  /// ServingError (code kCancelled) rethrown from wait() (callbacks get it
  /// as the error argument); requests already on a lane still finish.
  kCancelPending,
};

/// Continuous-batching scheduler knobs.
struct SchedulerConfig {
  /// Per-model_id admission weights for the weighted round-robin: a model
  /// with weight w gets up to w dispatch slots per scheduling cycle while
  /// it has backlog (models beyond the vector's length weigh 1; every
  /// listed weight must be >= 1). Empty reads the GQA_QOS_WEIGHTS env var
  /// (comma-separated, e.g. "3,1"); all-equal weights reproduce fair
  /// round-robin.
  std::vector<int> qos_weights;
  /// Cap on requests being serviced concurrently; 0 means the lane count.
  /// Lower values deliberately leave lanes idle for co-resident engines
  /// sharing the process pool.
  int max_inflight = 0;
  /// Shutdown behaviour for the not-yet-started backlog.
  DrainPolicy drain_policy = DrainPolicy::kFinishAdmitted;
  /// Consecutive final backend failures that open a model's circuit
  /// breaker; 0 disables the breaker. -1 (the default) reads the
  /// GQA_BREAKER_THRESHOLD env var (default 0 = disabled).
  int breaker_threshold = -1;
  /// How long an open breaker fails fast before admitting one half-open
  /// probe. Negative (the default) reads GQA_BREAKER_COOLDOWN_MS
  /// (default 100).
  std::chrono::milliseconds breaker_cooldown{-1};
};

struct ServerOptions {
  /// Lane count: 0 serves on the process-wide pool (GQA_NUM_THREADS-sized,
  /// shared with any InferenceEngine); >= 1 gives the server a private
  /// pool of that size (1 = serial service, still with workspace reuse).
  int num_threads = 0;
  /// Bound on requests admitted but not yet collected by a service lane —
  /// the backpressure surface for submit()/try_submit().
  std::size_t queue_capacity = 64;
  /// Pre-warm the shared provider's full replaced-op set at registration,
  /// so service lanes never touch the unit-cache lock. Optimization only —
  /// results are identical either way, and a warm-up failure (e.g. the
  /// `warmup` chaos point) degrades to cold lazy builds.
  bool warm_provider = true;
  /// Continuous-batching scheduler knobs (QoS weights, inflight cap,
  /// drain policy, circuit breaker).
  SchedulerConfig scheduler;
};

/// Per-request robustness controls, passed at submit time. The defaults
/// (no deadline, one attempt, no backoff) reproduce the pre-fault-layer
/// behaviour exactly.
struct SubmitOptions {
  /// Wall-clock budget measured from admission; zero means no deadline.
  /// A request whose deadline passes before a lane starts it (or between
  /// retry attempts) resolves to ServingError kDeadlineExpired without
  /// (re)running — expiry is exactly-once. A forward already running is
  /// never interrupted.
  std::chrono::milliseconds deadline{0};
  /// Total attempts for kBackendTransient failures (>= 1). Non-transient
  /// failures never retry.
  int max_attempts = 1;
  /// Base sleep between attempts, doubled each retry
  /// (backoff * 2^(attempt-1)) and clipped to the remaining deadline. The
  /// sleep occupies the service lane, so keep it small.
  std::chrono::milliseconds backoff{0};
};

/// How a stream sheds load when frames arrive faster than they are served.
/// Applied exactly once per frame: a dropped frame resolves with the
/// listed ServingError and never starts; a started frame is never killed.
enum class DropPolicy {
  /// The ring displaces its oldest pending frame on push (kFrameSuperseded,
  /// counted in Stats::frames_dropped). The default: bounded lag, every
  /// frame that starts is served.
  kDropOldest,
  /// Pending frames whose deadline passes are expired before they start
  /// (kDeadlineExpired, counted in Stats::deadline_expired AND
  /// Stats::deadline_misses), reusing the request deadline machinery.
  /// Capacity overflow still displaces the oldest (kFrameSuperseded).
  kDropLate,
  /// Only the newest pending frame is served: when a lane picks from the
  /// stream (and on every scheduler sweep), older pending frames resolve
  /// kFrameSuperseded (counted in Stats::frames_coalesced). The
  /// live-preview policy — minimum staleness, maximum frame shedding.
  kCoalesce,
};

/// Per-stream knobs, fixed at open_stream() for the stream's lifetime.
struct StreamOptions {
  /// Expected frame cadence. When `deadline` is zero, each frame's
  /// deadline is one frame_interval from its push — "a frame is stale once
  /// its successor is due". Zero with a zero deadline means frames never
  /// expire.
  std::chrono::milliseconds frame_interval{0};
  /// Explicit per-frame deadline measured from push_frame(); overrides the
  /// frame_interval-derived one when nonzero.
  std::chrono::milliseconds deadline{0};
  /// What happens to pending frames when the stream falls behind.
  DropPolicy drop_policy = DropPolicy::kDropOldest;
  /// Pending-frame ring capacity (>= 1). 0 reads the
  /// GQA_STREAM_RING_CAPACITY env var (default 8).
  std::size_t ring_capacity = 0;
  /// Retry policy for kBackendTransient frame failures, same semantics as
  /// SubmitOptions::max_attempts/backoff.
  int max_attempts = 1;
  std::chrono::milliseconds backoff{0};
  /// What close()/shutdown() does with this stream's pending frames:
  /// kFinishAdmitted serves them, kCancelPending resolves them kCancelled.
  /// Frames already on a lane always finish.
  DrainPolicy drain_policy = DrainPolicy::kFinishAdmitted;
};

enum class TicketStatus {
  kPending,   ///< admitted, result not ready yet
  kReady,     ///< result (or a non-deadline error) available; wait()
              ///< returns or rethrows without blocking
  kDeadlineExpired,  ///< expired before service; wait() rethrows the
                     ///< kDeadlineExpired ServingError
  kConsumed,  ///< result collected by wait() or delivered to the callback
};

class Server {
 public:
  /// Tickets are dense and issued in admission order (0, 1, 2, ...).
  using Ticket = std::uint64_t;

  /// A registered backend: one serial deployment forward. The Workspace
  /// (never null) is the lane's private scratch; implementations must not
  /// capture it beyond the call. Throwing ServingError with code
  /// kBackendTransient marks the failure retryable; any other exception
  /// fails the request on the first occurrence.
  using ForwardFn =
      std::function<tfm::QTensor(const tfm::Tensor&, tfm::Workspace*)>;

  /// Result delivery alternative to poll()/wait(): invoked exactly once on
  /// the completing service lane with (ticket, result, error); exactly one
  /// of result/error is meaningful (error == nullptr means success). See
  /// the callback threading contract in the file header.
  using Callback =
      std::function<void(Ticket, tfm::QTensor, std::exception_ptr)>;

  explicit Server(const tfm::NonlinearProvider& provider,
                  ServerOptions options = {});
  ~Server();  ///< shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a frozen model (SegformerB0Like / EfficientViTB0Like) and
  /// returns its model_id for submit(). The model serves through the
  /// shared provider on its integer deployment path.
  template <typename ModelT>
  int register_model(const ModelT& model, std::string name = {}) {
    return register_forward(
        std::move(name),
        [&model, this](const tfm::Tensor& image, tfm::Workspace* ws) {
          return model.forward_int(image, provider_, nullptr, ws);
        });
  }

  /// Registration hook for custom backends (anything that can produce
  /// integer logits from an image). The engine-style contract applies:
  /// the callable must be safe for concurrent invocation and fully
  /// deterministic per image.
  int register_forward(std::string name, ForwardFn forward)
      GQA_EXCLUDES(mutex_);

  /// Admits a request for `model_id`, blocking while the admission queue
  /// is full. Throws ContractViolation if the server is (or becomes) shut
  /// down, or model_id was never registered; throws ServingError
  /// (kAdmissionRejected) on an injected admission fault. With a callback
  /// the result is delivered to it instead of a wait() (see the callback
  /// contract). The SubmitOptions overloads attach a deadline/retry
  /// policy; the plain overloads use the defaults (no deadline, one
  /// attempt).
  Ticket submit(int model_id, tfm::Tensor image);
  Ticket submit(int model_id, tfm::Tensor image, Callback callback);
  Ticket submit(int model_id, tfm::Tensor image, SubmitOptions options);
  Ticket submit(int model_id, tfm::Tensor image, SubmitOptions options,
                Callback callback);

  /// Non-blocking admit: nullopt when the queue is full (load shedding).
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image);
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image,
                                   Callback callback);
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image,
                                   SubmitOptions options);
  std::optional<Ticket> try_submit(int model_id, tfm::Tensor image,
                                   SubmitOptions options, Callback callback);

  /// Stream identifiers are dense and issued in open order (1, 2, ...).
  using StreamId = std::uint64_t;

  /// Lightweight handle for a stream opened with open_stream(): a
  /// (server, id) pair, copyable, with every operation delegating to the
  /// server. The handle has no destructor side effects — close() is
  /// explicit — and must not be used after the server is destroyed.
  class StreamSession {
   public:
    StreamSession() = default;

    /// Enqueues one frame into the stream's ring and returns its ticket,
    /// or nullopt when the stream (or server) is closing — never blocks
    /// and never fails for capacity reasons (a full ring displaces its
    /// oldest pending frame per the drop policy). Throws ContractViolation
    /// only for an empty frame. Safe from any thread, including
    /// concurrently with close().
    std::optional<Ticket> push_frame(tfm::Tensor frame) {
      return server_->push_frame(id_, std::move(frame));
    }

    /// Stops admission on this stream, resolves pending frames per
    /// StreamOptions::drain_policy, and BLOCKS until the stream's last
    /// callback has returned. Idempotent; must not be called from the
    /// stream's own callback (self-deadlock, like wait()/drain()).
    void close() { server_->close_stream(id_); }

    [[nodiscard]] StreamId id() const { return id_; }

   private:
    friend class Server;
    StreamSession(Server* server, StreamId id) : server_(server), id_(id) {}

    Server* server_ = nullptr;
    StreamId id_ = 0;
  };

  /// Opens a streaming session on `model_id`. The callback is required
  /// (stream results have no waiter path) and is invoked exactly once per
  /// pushed frame IN FRAME ORDER on a service lane: served frames get the
  /// bit-identical forward result, dropped frames get the classified
  /// ServingError of their drop policy. The submit-callback threading
  /// contract applies unchanged; close_stream()/StreamSession::close() is
  /// banned from the callback like wait()/drain()/shutdown(). Throws
  /// ContractViolation on an unregistered model_id, invalid options, or a
  /// shut-down server.
  [[nodiscard]] StreamSession open_stream(int model_id, StreamOptions options,
                                          Callback callback)
      GQA_EXCLUDES(mutex_);

  /// See StreamSession::push_frame. A frame ticket behaves like a callback
  /// ticket for poll(): kPending until the frame resolves, kConsumed from
  /// then on (delivery is imminent and in order). An injected
  /// stream_admission fault resolves the frame kAdmissionRejected through
  /// the same in-order path — the ticket is still issued.
  std::optional<Ticket> push_frame(StreamId stream, tfm::Tensor frame)
      GQA_EXCLUDES(mutex_);

  /// See StreamSession::close. Unknown/already-closed ids return
  /// immediately (close is idempotent, and shutdown() reaps all streams).
  void close_stream(StreamId stream) GQA_EXCLUDES(mutex_);

  /// Lifecycle of a ticket issued by submit()/try_submit(). A callback
  /// ticket never reads kReady or kDeadlineExpired: it goes kPending ->
  /// kConsumed when the callback has been invoked.
  [[nodiscard]] TicketStatus poll(Ticket ticket) const GQA_EXCLUDES(mutex_);

  /// Blocks until the ticket's result is ready and returns it — or
  /// rethrows the request's classified failure (ServingError for
  /// expiry/shedding/cancellation/transient-exhaustion, the backend's own
  /// exception otherwise) — consuming the ticket (a second wait on it is a
  /// contract violation, as is a wait on a callback ticket). Safe to call
  /// before, during, or after shutdown().
  [[nodiscard]] tfm::QTensor wait(Ticket ticket) GQA_EXCLUDES(mutex_);

  /// Blocks until every admitted request has resolved (served, failed,
  /// expired, shed, or cancelled). Admission stays open; use shutdown() to
  /// also stop the service.
  void drain() GQA_EXCLUDES(mutex_);

  /// Stops admission, resolves every admitted request per
  /// SchedulerConfig::drain_policy, parks the dispatcher. Idempotent and
  /// safe to call concurrently from several threads; implied by the
  /// destructor. Results of already-issued tickets remain collectable via
  /// wait() (cancelled ones rethrow their cancellation error).
  void shutdown() GQA_EXCLUDES(shutdown_mutex_, mutex_);

  /// Lanes requests fan out across (>= 1).
  [[nodiscard]] int lanes() const { return pool_->size(); }
  [[nodiscard]] std::size_t model_count() const GQA_EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t submitted = 0;  ///< admitted requests
    std::uint64_t completed = 0;  ///< requests resolved (incl. failed/shed)
    std::uint64_t rejected = 0;   ///< try_submit refusals (queue full)
    std::uint64_t spans = 0;      ///< continuous service spans opened
    std::uint64_t callback_errors = 0;  ///< exceptions escaping callbacks
    /// Requests resolved kDeadlineExpired — expired in the backlog before
    /// service or between retry attempts.
    std::uint64_t deadline_expired = 0;
    std::uint64_t retries = 0;  ///< transient-failure re-attempts
    std::uint64_t breaker_trips = 0;  ///< circuit-breaker open transitions
    /// Faults the server's own injection points (admission, scheduler,
    /// backend) fired — 0 whenever GQA_FAULT_SPEC is unset.
    std::uint64_t faults_injected = 0;
    /// Stream frames dropped before service: ring displacement under
    /// kDropOldest/kDropLate plus injected stream_admission rejections.
    /// Coalesce supersessions are counted separately below.
    std::uint64_t frames_dropped = 0;
    /// Stream frames superseded by a newer frame under kCoalesce.
    std::uint64_t frames_coalesced = 0;
    /// Stream frames that missed their deadline: expired pre-start under
    /// kDropLate (also counted in deadline_expired) or started after their
    /// deadline under the other policies (served late, never killed).
    std::uint64_t deadline_misses = 0;
    /// Streams currently open (a gauge, not a counter): incremented by
    /// open_stream, decremented when a closed stream's last delivery is
    /// done.
    std::uint64_t streams_open = 0;
    /// Requests handed to a lane, per model_id — the observable the QoS
    /// conformance harness checks ratios on (expired, shed, and cancelled
    /// requests never start, so they are not counted here).
    std::vector<std::uint64_t> started_per_model;
    /// Name of the active kernel dispatch backend (kernel/dispatch.h) the
    /// forwards ran on — `scalar`, `avx2`, ... — so serving records and
    /// bench headers can say what ISA produced the (bit-identical) codes.
    std::string kernel_backend;
  };
  [[nodiscard]] Stats stats() const GQA_EXCLUDES(mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Ticket ticket = 0;
    int model_id = 0;
    tfm::Tensor image;
    /// Clock::time_point::max() when the request has no deadline.
    Clock::time_point expires_at = Clock::time_point::max();
    int max_attempts = 1;
    std::chrono::milliseconds backoff{0};
    /// Set when this dispatch is a half-open breaker probe: its outcome
    /// decides whether the breaker closes or re-opens.
    bool probe = false;
    /// Nonzero for stream frames (stream ids start at 1): the request
    /// lives in its stream's ring, not the admission backlog, and resolves
    /// through the stream's in-order delivery path.
    StreamId stream_id = 0;
    /// Position in the stream's push order — the delivery sequencer key.
    std::uint64_t frame_index = 0;
    /// A payload-less dispatcher wake-up (push_frame with no open span):
    /// opens a service span but never enters a backlog.
    bool kick = false;
  };
  struct Registered {
    std::string name;
    ForwardFn forward;
  };
  /// Ready when `result` is engaged or `error` is set; wait() rethrows a
  /// backend exception to the waiter instead of killing the lane. `code`
  /// classifies the error (meaningful only when error != nullptr) so
  /// poll() can report kDeadlineExpired without rethrowing. For a callback
  /// request the slot only tracks pending-ness: completion moves the
  /// result into the callback and erases the slot. `claimed` is set by
  /// the first wait() before it blocks, so a second waiter on the same
  /// ticket fails fast with ContractViolation instead of racing the first
  /// one's erase.
  struct Slot {
    std::optional<tfm::QTensor> result;
    std::exception_ptr error;
    ServingErrorCode code = ServingErrorCode::kBackendFailed;
    Callback callback;
    bool claimed = false;
    [[nodiscard]] bool ready() const {
      return result.has_value() || error != nullptr;
    }
  };
  /// A backlog entry resolved without service (cancelled, expired, or shed
  /// by an open breaker) whose delivery (callback invocation) must happen
  /// outside the scheduler lock; waiter slots are resolved in place and
  /// only need the post-unlock notify.
  struct Resolution {
    Ticket ticket = 0;
    Callback callback;  ///< null when a wait()er owns the slot
    std::exception_ptr error;
  };
  /// One resolved frame parked until its in-order delivery slot comes up:
  /// the sequencer (pump_stream_deliveries) releases parked records in
  /// frame_index order, so a frame completed out of order (or dropped
  /// while an earlier one is still on a lane) waits here.
  struct FrameDelivery {
    Ticket ticket = 0;
    Callback callback;
    std::optional<tfm::QTensor> result;
    std::exception_ptr error;
  };
  /// Per-stream state (guarded by mutex_; the ring has its own internal
  /// lock, always acquired under mutex_ on the server side). Invariant:
  /// every frame index in [0, next_frame) is in exactly one place — the
  /// ring (pending), on a lane (busy covers at most one), parked, or
  /// already delivered (index < next_delivery).
  struct Stream {
    StreamId id = 0;
    int model_id = 0;
    StreamOptions options;
    Callback callback;
    std::unique_ptr<RingBuffer<Request>> ring;
    std::uint64_t next_frame = 0;     ///< next push's frame_index
    std::uint64_t next_delivery = 0;  ///< first undelivered frame_index
    /// Resolved-but-undelivered frames, keyed by frame_index (ordered map:
    /// the sequencer walks it from the front).
    std::map<std::uint64_t, FrameDelivery> parked;
    bool delivering = false;  ///< a lane holds the delivery baton
    bool busy = false;        ///< a frame of this stream is on a lane
    bool closing = false;     ///< close_stream() called; admission refused
  };
  /// Per-model circuit-breaker state machine: kClosed counts consecutive
  /// final backend failures; kOpen sheds fail-fast until the cooldown
  /// elapses; kHalfOpen lets exactly one probe through and closes or
  /// re-opens on its outcome.
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutive_failures = 0;
    Clock::time_point opened_at{};
    bool probe_inflight = false;
  };

  void dispatch_loop() GQA_EXCLUDES(mutex_);
  void run_service() GQA_EXCLUDES(mutex_);
  void service_lane() GQA_EXCLUDES(mutex_);
  /// One request's full service on the calling lane: the attempt loop with
  /// injected-fault points, transient retry with backoff, and mid-retry
  /// deadline expiry. Returns the filled slot (result or classified
  /// error). Takes mutex_ only briefly for stats bumps — never across the
  /// forward.
  [[nodiscard]] Slot serve_request(const Request& request,
                                   const ForwardFn& forward,
                                   tfm::Workspace* workspace)
      GQA_EXCLUDES(mutex_);
  /// Scheduler core (mutex_ held): refills the per-model backlog from the
  /// admission queue, applies the drain policy, expires stale entries,
  /// applies stream drop policies, sheds open-breaker backlogs (and stream
  /// rings), enforces max_inflight, and picks the next request by weighted
  /// round-robin over models, rotating within a model across its admission
  /// backlog and live streams. Streams with head-ready parked deliveries
  /// are appended to `pump` for the calling lane to drain post-unlock.
  [[nodiscard]] std::optional<Request> next_request_locked(
      std::vector<Resolution>& resolved, std::vector<StreamId>& pump)
      GQA_REQUIRES(mutex_);
  void cancel_backlog_locked(std::vector<Resolution>& resolved)
      GQA_REQUIRES(mutex_);
  /// Resolves one backlog entry without service (mutex_ held): waiter
  /// slots get the error in place (counted completed), callback slots are
  /// queued for post-unlock delivery.
  void resolve_unstarted_locked(const Request& request, ServingErrorCode code,
                                std::exception_ptr error,
                                std::vector<Resolution>& resolved)
      GQA_REQUIRES(mutex_);
  /// Applies breaker policy to model m's backlog and stream rings (mutex_
  /// held): sheds while open (pre-cooldown), transitions open -> half-open
  /// after the cooldown. Returns true when the model may dispatch right
  /// now.
  [[nodiscard]] bool breaker_admits_locked(std::size_t m,
                                           Clock::time_point now,
                                           std::vector<Resolution>& resolved,
                                           std::vector<StreamId>& pump)
      GQA_REQUIRES(mutex_);
  /// Breaker bookkeeping for a served request's outcome (mutex_ held).
  void record_outcome_locked(const Request& request, const Slot& filled)
      GQA_REQUIRES(mutex_);
  void complete(const Request& request, Slot&& filled) GQA_EXCLUDES(mutex_);
  /// Stream-frame completion: parks the outcome at its frame_index, frees
  /// the stream for its next pick, and pumps in-order deliveries.
  void complete_stream_frame(const Request& request, Slot&& filled)
      GQA_EXCLUDES(mutex_);
  /// Applies the stream's drop policy to its pending ring (mutex_ held):
  /// cancels everything when the stream is draining under kCancelPending,
  /// expires late frames under kDropLate, supersedes stale ones under
  /// kCoalesce. Exactly-once: a popped frame is resolved immediately.
  void sweep_stream_locked(Stream& stream, Clock::time_point now,
                           std::vector<StreamId>& pump) GQA_REQUIRES(mutex_);
  /// Resolves one never-started stream frame (mutex_ held): moves its
  /// callback out of the ticket table and parks the error at its
  /// frame_index for in-order delivery.
  void resolve_frame_locked(Stream& stream, Request frame,
                            std::exception_ptr error,
                            std::vector<StreamId>& pump) GQA_REQUIRES(mutex_);
  /// True when model m can dispatch something right now: nonempty
  /// admission backlog, or an idle stream with pending frames.
  [[nodiscard]] bool model_work_locked(std::size_t m) GQA_REQUIRES(mutex_);
  /// Picks model m's next request, rotating across its sources (admission
  /// backlog first, then each live stream) from the per-model cursor.
  [[nodiscard]] std::optional<Request> take_from_model_locked(
      std::size_t m, Clock::time_point now, std::vector<StreamId>& pump)
      GQA_REQUIRES(mutex_);
  /// Pops the stream's next serveable frame after applying its drop
  /// policy at pick time (expired fronts under kDropLate, stale frames
  /// under kCoalesce resolve here, exactly once).
  [[nodiscard]] std::optional<Request> take_stream_frame_locked(
      Stream& stream, Clock::time_point now, std::vector<StreamId>& pump)
      GQA_REQUIRES(mutex_);
  /// Queues the stream for a post-unlock delivery pump when its next
  /// in-order record is parked and no lane holds the delivery baton.
  void maybe_queue_pump_locked(Stream& stream, std::vector<StreamId>& pump)
      GQA_REQUIRES(mutex_);
  /// Delivers the stream's consecutive head-ready parked records in frame
  /// order. One lane at a time holds the stream's delivery baton
  /// (Stream::delivering); callbacks run outside the lock; reaps the
  /// stream when closing and fully delivered.
  void pump_stream_deliveries(StreamId id) GQA_EXCLUDES(mutex_);
  /// Erases a fully-drained closing stream and wakes close_stream()
  /// waiters. No-op unless every pushed frame has been delivered.
  void maybe_reap_stream_locked(StreamId id) GQA_REQUIRES(mutex_);
  /// True when any stream has pending frames or undelivered parked
  /// records — the dispatcher's keep-the-span-open condition.
  [[nodiscard]] bool stream_work_pending_locked() GQA_REQUIRES(mutex_);
  /// Wakes the dispatcher with a kick request when no span is active, so
  /// stream work pushed into an idle server starts immediately.
  void ensure_span_locked() GQA_REQUIRES(mutex_);
  void deliver_callback(Callback callback, Ticket ticket, tfm::QTensor result,
                        std::exception_ptr error) GQA_EXCLUDES(mutex_);
  std::optional<Ticket> admit(int model_id, tfm::Tensor image, bool blocking,
                              SubmitOptions submit_options, Callback callback)
      GQA_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t weight_of(std::size_t model_id) const;
  [[nodiscard]] int breaker_threshold() const {
    return options_.scheduler.breaker_threshold;
  }
  void count_injected_fault() GQA_EXCLUDES(mutex_);

  const tfm::NonlinearProvider& provider_;
  ServerOptions options_;  ///< immutable after the constructor
  ThreadPool* pool_;                   ///< global_pool() or owned_
  std::unique_ptr<ThreadPool> owned_;  ///< non-null when num_threads >= 1
  tfm::WorkspacePool workspaces_;      ///< per-lane scratch, reused forever

  BoundedQueue<Request> queue_;  ///< admission queue (the backpressure bound)
  /// Started in the constructor, joined by the first shutdown() caller
  /// while holding shutdown_mutex_ (ScopedThread joins on destruction as
  /// a last resort, so a throwing constructor cannot leak it).
  ScopedThread dispatcher_;
  Mutex shutdown_mutex_;  ///< serializes concurrent shutdown() callers

  mutable Mutex mutex_;  ///< guards everything below
  std::condition_variable result_cv_;
  /// Wakes lanes parked mid-span (empty backlog while peers hold inflight
  /// requests): notified by admissions, completions, and shutdown.
  std::condition_variable sched_cv_;
  /// deque: element refs survive growth
  std::deque<Registered> models_ GQA_GUARDED_BY(mutex_);
  /// Ticket -> result slot; absent = consumed (or never issued).
  std::unordered_map<Ticket, Slot> slots_ GQA_GUARDED_BY(mutex_);
  Ticket next_ticket_ GQA_GUARDED_BY(mutex_) = 0;
  /// Scheduler state: per-model FIFO backlog (collected from the admission
  /// queue, not yet started), the WRR credits of the current cycle, and
  /// the cursor of the model holding the dispatch position.
  std::vector<std::deque<Request>> backlog_ GQA_GUARDED_BY(mutex_);
  std::size_t backlog_total_ GQA_GUARDED_BY(mutex_) = 0;
  std::vector<std::uint64_t> credits_ GQA_GUARDED_BY(mutex_);
  /// per-model circuit breakers (the open/half-open flags live here, under
  /// the scheduler lock — deliberately not atomics)
  std::vector<Breaker> breakers_ GQA_GUARDED_BY(mutex_);
  int wrr_cursor_ GQA_GUARDED_BY(mutex_) = 0;
  /// Live streams by id, and each model's stream ids (the extra WRR
  /// sources). Streams are erased only by maybe_reap_stream_locked.
  std::unordered_map<StreamId, Stream> streams_ GQA_GUARDED_BY(mutex_);
  std::vector<std::vector<StreamId>> model_streams_ GQA_GUARDED_BY(mutex_);
  /// Per-model rotation cursor over [backlog, stream, stream, ...], so no
  /// single source monopolizes the model's WRR credits.
  std::vector<std::size_t> source_cursor_ GQA_GUARDED_BY(mutex_);
  StreamId next_stream_id_ GQA_GUARDED_BY(mutex_) = 1;
  /// Frames pending across all stream rings (rings are size-tracked here
  /// under mutex_ so the scheduler's dry check is one comparison).
  std::size_t stream_backlog_total_ GQA_GUARDED_BY(mutex_) = 0;
  /// True while a service span is running; push_frame into a spanless
  /// server kicks the dispatcher instead of relying on a future admission.
  bool span_active_ GQA_GUARDED_BY(mutex_) = false;
  /// started, not yet resolved
  std::size_t inflight_ GQA_GUARDED_BY(mutex_) = 0;
  bool stopping_ GQA_GUARDED_BY(mutex_) = false;
  Stats stats_ GQA_GUARDED_BY(mutex_);
};

}  // namespace gqa
