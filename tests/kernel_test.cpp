// Tests for the bit-accurate integer kernels: the IntPwlUnit is checked
// against an independently written reference model over the full input
// space, and the MultiRangeUnit against real-arithmetic multi-range
// evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/approximator.h"
#include "kernel/int_pwl_unit.h"
#include "kernel/multirange_unit.h"
#include "util/contracts.h"

namespace gqa {
namespace {

PwlTable gelu_like_table() {
  PwlTable t;
  t.breakpoints = {-2.75, -1.5, -0.75, -0.25, 0.25, 1.0, 2.0};
  t.slopes = {0.0, -0.0625, 0.03125, 0.34375, 0.65625, 0.96875, 1.03125, 1.0};
  t.intercepts = {0.0, -0.15625, 0.0, 0.21875, 0.0, -0.09375, -0.15625, 0.0};
  return t;
}

/// Independent reference: evaluates the quantized-table semantics in plain
/// double arithmetic (Eq. 1 + Eq. 3), without the kernel's datapath code.
double reference_eval(const QuantizedPwlTable& qt, std::int64_t q) {
  int seg = 0;
  while (seg < static_cast<int>(qt.p_code.size()) &&
         q >= qt.p_code[static_cast<std::size_t>(seg)]) {
    ++seg;
  }
  const double k = qt.slope_value(seg);
  const double b = qt.intercept_value(seg);
  const double x = qt.input.dequantize(q);
  return k * x + b;
}

class IntUnitBitExact : public ::testing::TestWithParam<int> {};

TEST_P(IntUnitBitExact, MatchesReferenceOverAllCodes) {
  const int scale_exp = GetParam();
  const QuantParams input{std::ldexp(1.0, scale_exp), 8, true};
  const QuantizedPwlTable qt = quantize_table(gelu_like_table(), input, 5, 8);
  const IntPwlUnit unit(qt);
  for (std::int64_t q = -128; q <= 127; ++q) {
    EXPECT_NEAR(unit.eval_real_from_code(q), reference_eval(qt, q), 1e-12)
        << "q=" << q << " S=2^" << scale_exp;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, IntUnitBitExact,
                         ::testing::Values(0, -1, -2, -3, -4, -5, -6));

TEST(IntPwlUnit, AccumulatorCodesHaveLambdaFracBits) {
  const QuantParams input{0.25, 8, true};  // s = 2
  const QuantizedPwlTable qt = quantize_table(gelu_like_table(), input, 5, 8);
  const IntPwlUnit unit(qt);
  // acc = k_code*q + (b_code << 2); check one value by hand.
  // q = 4 -> x = 1.0, which lies in segment [1.0, 2.0): k = 1.03125,
  // b = -0.15625 (x == p belongs to the upper segment per Eq. 1).
  const std::int64_t q = 4;
  const std::int64_t k_code = 33;  // 1.03125 * 32
  const std::int64_t b_code = -5;  // -0.15625 * 32
  EXPECT_EQ(unit.eval_code(q), k_code * q + (b_code << 2));
  EXPECT_DOUBLE_EQ(unit.eval_real_from_code(q), 0.875);  // pwl(1.0)
  EXPECT_DOUBLE_EQ(unit.acc_scale(), 0.25 / 32.0);
}

TEST(IntPwlUnit, InputBusEnforced) {
  const QuantParams input{0.25, 8, true};
  const IntPwlUnit unit(quantize_table(gelu_like_table(), input, 5, 8));
  EXPECT_THROW(unit.eval_code(128), ContractViolation);
  EXPECT_THROW(unit.eval_code(-129), ContractViolation);
  EXPECT_NO_THROW(unit.eval_code(127));
}

TEST(IntPwlUnit, EvalRealQuantizesInput) {
  const QuantParams input{0.25, 8, true};
  const IntPwlUnit unit(quantize_table(gelu_like_table(), input, 5, 8));
  // 0.6 quantizes to code 2 (0.5); both paths must agree.
  EXPECT_DOUBLE_EQ(unit.eval_real(0.6), unit.eval_real_from_code(2));
  // Out-of-range inputs saturate at the code bounds, not UB.
  EXPECT_DOUBLE_EQ(unit.eval_real(1e9), unit.eval_real_from_code(127));
}

TEST(IntPwlUnit, ShifterRangeChecked) {
  const QuantParams input{std::ldexp(1.0, -20), 8, true};
  IntPwlUnitConfig cfg;
  cfg.max_shift = 8;
  EXPECT_THROW(
      IntPwlUnit(quantize_table(gelu_like_table(), input, 5, 8), cfg),
      ContractViolation);
}

TEST(IntPwlUnit, WideBusBinarySearchFallbackMatchesReference) {
  // Above a 16-bit input bus the unit cannot afford the dense
  // code->segment table and resolves segments through the table's
  // binary-search comparator model instead (the ROADMAP's open dense-table
  // item). The fallback must realize exactly the same Eq. 1 semantics.
  const QuantParams input{std::ldexp(1.0, -12), 18, true};  // 18-bit bus
  const QuantizedPwlTable qt = quantize_table(gelu_like_table(), input, 5, 8);
  const IntPwlUnit unit(qt);
  // Sweep the full breakpoint span plus the bus extremes: every segment is
  // crossed, including codes far outside any dense table's reach.
  for (std::int64_t q = -16384; q <= 16384; q += 7) {
    EXPECT_NEAR(unit.eval_real_from_code(q), reference_eval(qt, q), 1e-9)
        << "q=" << q;
  }
  for (const std::int64_t q : {std::int64_t{-131072}, std::int64_t{131071}}) {
    EXPECT_NEAR(unit.eval_real_from_code(q), reference_eval(qt, q), 1e-9)
        << "q=" << q;
  }
  EXPECT_THROW(unit.eval_code(131072), ContractViolation);   // beyond 18 bits
  EXPECT_THROW(unit.eval_code(-131073), ContractViolation);
}

TEST(IntPwlUnit, WideBusFallbackEquivalentToDenseTableAtAndBelow16Bits) {
  // The same fitted table deployed at the same power-of-two scale on a
  // 16-bit bus (dense code->segment table) and an 18-bit bus (binary-
  // search fallback) must agree code-for-code over the shared domain —
  // the dense table is a precomputation, never a semantic change. The
  // interior breakpoints land well inside both code domains, so the two
  // quantized tables hold identical parameters.
  const double scale = 0.25;
  const QuantizedPwlTable dense_qt =
      quantize_table(gelu_like_table(), QuantParams{scale, 16, true}, 5, 8);
  const QuantizedPwlTable wide_qt =
      quantize_table(gelu_like_table(), QuantParams{scale, 18, true}, 5, 8);
  ASSERT_EQ(dense_qt.k_code, wide_qt.k_code);
  ASSERT_EQ(dense_qt.b_code, wide_qt.b_code);
  ASSERT_EQ(dense_qt.p_code, wide_qt.p_code);
  const IntPwlUnit dense(dense_qt);  // <= 16 bits: dense segment table
  const IntPwlUnit wide(wide_qt);    // > 16 bits: binary-search fallback

  std::vector<std::int64_t> codes;
  for (std::int64_t q = -32768; q <= 32767; q += 13) codes.push_back(q);
  codes.push_back(-32768);
  codes.push_back(32767);
  std::vector<std::int64_t> dense_out(codes.size());
  std::vector<std::int64_t> wide_out(codes.size());
  dense.eval_codes(codes, dense_out);  // batched: dense lookup inside
  wide.eval_codes(codes, wide_out);    // batched: fallback inside
  EXPECT_EQ(dense_out, wide_out);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    // Scalar paths agree with each other and with the batched spans.
    ASSERT_EQ(dense.eval_code(codes[i]), wide.eval_code(codes[i]))
        << "q=" << codes[i];
    ASSERT_EQ(dense_out[i], dense.eval_code(codes[i])) << "q=" << codes[i];
  }
}

TEST(IntPwlUnit, SaturatedEvalClampsIdenticallyOnDenseAndFallbackPaths) {
  // Both saturated entry points — the dense-table path (<=16-bit bus) and
  // the binary-search fallback (>16-bit bus) — now clamp through the one
  // shared helper (numerics/saturate.h clamp_to_bus). Pin the contract at
  // the exact saturation edges: a saturated eval of an over-range code must
  // equal a plain eval of the clamped code, on both paths, at the edge, one
  // past it, and far beyond it.
  const double scale = 0.25;
  const IntPwlUnit dense(
      quantize_table(gelu_like_table(), QuantParams{scale, 16, true}, 5, 8));
  const IntPwlUnit wide(
      quantize_table(gelu_like_table(), QuantParams{scale, 18, true}, 5, 8));
  struct Case {
    const IntPwlUnit* unit;
    int bits;
  };
  for (const Case c : {Case{&dense, 16}, Case{&wide, 18}}) {
    const BusBounds bus = bus_bounds(c.bits, true);
    const std::vector<std::int64_t> probes = {
        bus.lo,     bus.hi,     bus.lo - 1,
        bus.hi + 1, bus.lo + 1, bus.hi - 1,
        std::int64_t{1} << 40,  -(std::int64_t{1} << 40)};
    std::vector<double> sat(probes.size());
    c.unit->eval_reals_from_codes_saturated(probes, sat);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const std::int64_t clamped = clamp_to_bus(probes[i], bus);
      EXPECT_EQ(sat[i], c.unit->eval_real_from_code(clamped))
          << "bits=" << c.bits << " q=" << probes[i];
    }
  }
  // The two units share fitted parameters (same table, same scale), so at
  // the 16-bit edges — where dense saturates and wide is still in range —
  // the saturated outputs must coincide bit-for-bit.
  const std::vector<std::int64_t> edges = {int_min(16, true),
                                           int_max(16, true)};
  std::vector<double> dense_sat(edges.size());
  std::vector<double> wide_sat(edges.size());
  dense.eval_reals_from_codes_saturated(edges, dense_sat);
  wide.eval_reals_from_codes_saturated(edges, wide_sat);
  EXPECT_EQ(dense_sat, wide_sat);
}

TEST(IntPwlUnit, ApproximatesTheFunction) {
  const Approximator approx = Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  const IntPwlUnit unit = approx.make_unit(-4);
  double max_err = 0.0;
  for (double x = -2.0; x <= 1.98; x += 0.0625) {
    max_err = std::max(max_err,
                       std::abs(unit.eval_real(x) - eval_op(Op::kGelu, x)));
  }
  EXPECT_LT(max_err, 0.06);
}

// ------------------------------------------------------- multirange unit --

MultiRangeUnit make_div_unit() {
  const Approximator approx = Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  return approx.make_multirange_unit();
}

TEST(MultiRangeUnit, RequiresLambdaFracInput) {
  const Approximator approx = Approximator::fit(Op::kDiv, Method::kGqaNoRm, {});
  const QuantizedPwlTable wrong =
      approx.quantized(QuantParams{0.25, 8, true});  // not 2^-lambda
  EXPECT_THROW(MultiRangeUnit(wrong, MultiRangeConfig::div_preset()),
               ContractViolation);
}

TEST(MultiRangeUnit, ReciprocalAccuracyAcrossDecades) {
  const MultiRangeUnit unit = make_div_unit();
  for (double x : {0.6, 1.0, 2.5, 3.9, 5.0, 17.0, 60.0, 200.0}) {
    const double approx = unit.eval_real(x);
    const double exact = 1.0 / x;
    EXPECT_NEAR(approx / exact, 1.0, 0.08) << "x=" << x;
  }
}

TEST(MultiRangeUnit, RsqrtAccuracyAcrossDecades) {
  const Approximator approx = Approximator::fit(Op::kRsqrt, Method::kGqaNoRm, {});
  const MultiRangeUnit unit = approx.make_multirange_unit();
  for (double x : {0.3, 1.0, 3.5, 10.0, 60.0, 500.0, 4000.0}) {
    EXPECT_NEAR(unit.eval_real(x) * std::sqrt(x), 1.0, 0.08) << "x=" << x;
  }
}

TEST(MultiRangeUnit, FxpPathMatchesRealPath) {
  const MultiRangeUnit unit = make_div_unit();
  for (double x : {0.75, 2.0, 8.0, 40.0}) {
    const std::int64_t code = llround(std::ldexp(x, 16));
    EXPECT_DOUBLE_EQ(unit.eval_fxp(code, 16), unit.eval_real(x));
  }
}

TEST(MultiRangeUnit, ScaleSeparabilityExploited) {
  // Values in SR0 [4, 32) route through S' = 2^-3; verify the rescale:
  // recip(8) must equal 2^-3 * pwl(1.0).
  const MultiRangeUnit unit = make_div_unit();
  const double direct = unit.eval_real(8.0);
  const double via_ir = unit.eval_real(1.0);
  EXPECT_NEAR(direct, via_ir / 8.0, 0.01);
}

}  // namespace
}  // namespace gqa
