file(REMOVE_RECURSE
  "CMakeFiles/segformer_semseg.dir/examples/segformer_semseg.cpp.o"
  "CMakeFiles/segformer_semseg.dir/examples/segformer_semseg.cpp.o.d"
  "examples/segformer_semseg"
  "examples/segformer_semseg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segformer_semseg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
