// Tests for the NN-LUT baseline: exact pwl extraction from ReLU networks
// (validated pointwise against the network forward), training convergence,
// and the end-to-end fit.
#include <gtest/gtest.h>

#include <cmath>

#include "nnlut/nn_lut.h"
#include "pwl/fit_grid.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace gqa {
namespace {

TEST(NnLutNetwork, ForwardMatchesDefinition) {
  NnLutNetwork net;
  net.w = {1.0, -2.0};
  net.c = {0.5, 1.0};
  net.v = {2.0, 3.0};
  net.d = -0.25;
  // x = 1: relu(1.5)=1.5, relu(-1)=0 -> 2*1.5 - 0.25 = 2.75.
  EXPECT_DOUBLE_EQ(net.forward(1.0), 2.75);
  // x = -1: relu(-0.5)=0, relu(3)=3 -> 3*3 - 0.25 = 8.75.
  EXPECT_DOUBLE_EQ(net.forward(-1.0), 8.75);
}

class ExtractionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractionProperty, PwlEqualsNetworkEverywhere) {
  // Random networks with mixed-sign weights: the extracted table must agree
  // with the network at every point inside the range.
  Rng rng(GetParam());
  NnLutNetwork net;
  const int h = 7;
  for (int j = 0; j < h; ++j) {
    double w = rng.uniform(0.3, 2.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    net.w.push_back(w);
    net.c.push_back(rng.uniform(-3.0, 3.0));
    net.v.push_back(rng.normal(0.0, 1.0));
  }
  net.d = rng.normal(0.0, 0.5);

  const PwlTable table = extract_pwl(net, -4.0, 4.0, 8);
  table.validate();
  EXPECT_EQ(table.entries(), 8);
  for (double x = -4.0; x <= 4.0; x += 0.0137) {
    EXPECT_NEAR(table.eval(x), net.forward(x), 1e-9) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractionProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(Extraction, HandlesDeadUnitsAndOutOfRangeKnots) {
  NnLutNetwork net;
  net.w = {1e-12, 1.0, 1.0};   // first unit is dead (constant)
  net.c = {2.0, 10.0, -0.5};   // second knot at -10 (outside range)
  net.v = {1.0, 0.5, 2.0};
  net.d = 0.0;
  const PwlTable table = extract_pwl(net, -4.0, 4.0, 4);
  table.validate();
  EXPECT_EQ(table.entries(), 4);
  for (double x = -4.0; x <= 4.0; x += 0.05) {
    EXPECT_NEAR(table.eval(x), net.forward(x), 1e-9);
  }
}

TEST(Extraction, PadsToRequestedEntries) {
  NnLutNetwork net;  // single unit -> 2 natural segments
  net.w = {1.0};
  net.c = {0.0};
  net.v = {1.0};
  net.d = 0.0;
  const PwlTable table = extract_pwl(net, -2.0, 2.0, 8);
  EXPECT_EQ(table.entries(), 8);
  for (double x = -2.0; x <= 2.0; x += 0.01) {
    EXPECT_NEAR(table.eval(x), x > 0 ? x : 0.0, 1e-9);
  }
}

TEST(NnLutConfig, PresetAndValidation) {
  const NnLutConfig cfg = NnLutConfig::preset(Op::kExp, 16);
  EXPECT_DOUBLE_EQ(cfg.range_lo, -8.0);
  EXPECT_EQ(cfg.entries, 16);
  EXPECT_EQ(cfg.samples, 100000);  // the paper's reported data budget
  NnLutConfig bad = cfg;
  bad.entries = 1;
  EXPECT_THROW(bad.validate(), ContractViolation);
  bad = cfg;
  bad.learning_rate = 0.0;
  EXPECT_THROW(bad.validate(), ContractViolation);
}

TEST(FitNnLut, LearnsGelu) {
  NnLutConfig cfg = NnLutConfig::preset(Op::kGelu, 8);
  cfg.samples = 20000;  // trimmed for test speed
  cfg.epochs = 30;
  const NnLutFitResult result = fit_nn_lut(cfg);
  result.fp_table.validate();
  EXPECT_EQ(result.fp_table.entries(), 8);
  // A trained 7-knot network should fit GELU well below trivial baselines.
  EXPECT_LT(result.fp_mse, 1e-3);
  EXPECT_LT(result.final_train_loss, 1e-2);
  // FXP conversion degrades but stays in the expected band.
  EXPECT_GE(result.fxp_mse, result.fp_mse - 1e-12);
  EXPECT_LT(result.fxp_mse, 5e-3);
}

TEST(FitNnLut, DeterministicPerSeed) {
  NnLutConfig cfg = NnLutConfig::preset(Op::kDiv, 8);
  cfg.samples = 5000;
  cfg.epochs = 10;
  const NnLutFitResult a = fit_nn_lut(cfg);
  const NnLutFitResult b = fit_nn_lut(cfg);
  EXPECT_EQ(a.fp_table.breakpoints, b.fp_table.breakpoints);
  EXPECT_EQ(a.fp_table.slopes, b.fp_table.slopes);
}

}  // namespace
}  // namespace gqa
