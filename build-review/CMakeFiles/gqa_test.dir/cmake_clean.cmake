file(REMOVE_RECURSE
  "CMakeFiles/gqa_test.dir/tests/gqa_test.cpp.o"
  "CMakeFiles/gqa_test.dir/tests/gqa_test.cpp.o.d"
  "gqa_test"
  "gqa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
