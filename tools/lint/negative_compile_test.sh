#!/usr/bin/env bash
# Negative-compile proof for the Clang thread-safety gate, registered as
# the `thread_safety_negative_compile` ctest (label: lint).
#
# Two syntax-only compiles of tests/lint/thread_safety_violation.cpp:
#
#   1. clean                      -> must PASS under -Werror=thread-safety
#   2. -DGQA_LINT_SEED_VIOLATION  -> must FAIL (unguarded read of a
#                                    GQA_GUARDED_BY field)
#
# A gate that accepts the seeded violation is dead (macros not expanding,
# analysis off, wrong flags) — this test makes that state loud. The
# analysis is Clang-only, so on hosts without clang++ the test exits 77,
# which ctest maps to SKIPPED via SKIP_RETURN_CODE.
set -u
cd "$(dirname "$0")/../.."

clangxx=""
for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                 clang++-16 clang++-15 clang++-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    clangxx="$candidate"
    break
  fi
done
if [ -z "$clangxx" ]; then
  echo "negative-compile: no clang++ on PATH; thread-safety analysis is" \
       "Clang-only — SKIP" >&2
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -I src -Wthread-safety -Werror=thread-safety)
fixture=tests/lint/thread_safety_violation.cpp

if ! "$clangxx" "${flags[@]}" "$fixture"; then
  echo "negative-compile: FAIL — the clean fixture must compile under" \
       "-Werror=thread-safety (annotations broke a valid locking pattern)" >&2
  exit 1
fi

if "$clangxx" "${flags[@]}" -DGQA_LINT_SEED_VIOLATION "$fixture" 2>/dev/null; then
  echo "negative-compile: FAIL — the seeded unguarded access compiled;" \
       "the thread-safety gate is not actually rejecting violations" >&2
  exit 1
fi

echo "negative-compile: OK ($clangxx rejects the seeded violation)"
exit 0
