#include "util/serving_error.h"

#include "util/contracts.h"

namespace gqa {

const char* serving_error_name(ServingErrorCode code) {
  switch (code) {
    case ServingErrorCode::kDeadlineExpired:
      return "deadline_expired";
    case ServingErrorCode::kModelUnavailable:
      return "model_unavailable";
    case ServingErrorCode::kBackendTransient:
      return "backend_transient";
    case ServingErrorCode::kBackendFailed:
      return "backend_failed";
    case ServingErrorCode::kCancelled:
      return "cancelled";
    case ServingErrorCode::kAdmissionRejected:
      return "admission_rejected";
    case ServingErrorCode::kArtifactCorrupt:
      return "artifact_corrupt";
    case ServingErrorCode::kFrameSuperseded:
      return "frame_superseded";
  }
  return "unknown";
}

ServingError::ServingError(ServingErrorCode code, const std::string& message)
    : std::runtime_error("[" + std::string(serving_error_name(code)) + "] " +
                         message),
      code_(code) {}

ServingErrorCode serving_error_code(const std::exception_ptr& error) {
  GQA_EXPECTS_MSG(error != nullptr,
                  "serving_error_code needs a captured exception");
  try {
    std::rethrow_exception(error);
  } catch (const ServingError& e) {
    return e.code();
  } catch (...) {
    return ServingErrorCode::kBackendFailed;
  }
}

}  // namespace gqa
