// Generic real-coded genetic optimizer implementing the evolutionary loop of
// Algorithm 1: stochastic segment-swap crossover, pluggable mutation, 3-way
// tournament selection, and single-elite preservation so the best fitness is
// monotone non-increasing across generations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace gqa {

/// Hyperparameters of the evolutionary loop. Defaults match Table 1's
/// common settings (Np = 50, T = 500, θc = 0.7, θm = 0.2).
struct GaConfig {
  int population_size = 50;     ///< Np
  int generations = 500;        ///< T
  double crossover_prob = 0.7;  ///< θc
  double mutation_prob = 0.2;   ///< θm
  int tournament_size = 3;
  int elite_count = 1;          ///< individuals copied verbatim each round
  std::uint64_t seed = 0xC0FFEE;
};

using Genome = std::vector<double>;
/// Fitness: lower is better (the paper uses MSE).
using FitnessFn = std::function<double(const Genome&)>;
/// In-place mutation of one genome.
using MutateFn = std::function<void(Genome&, Rng&)>;
/// In-place constraint repair (sorting, clipping, separation).
using RepairFn = std::function<void(Genome&)>;
/// Creates one random genome.
using InitFn = std::function<Genome(Rng&)>;
/// Observation hook called once per generation after fitness evaluation,
/// before selection: (generation, population, scores). Used by GQA-LUT to
/// archive deployment-ready candidates across the whole evolution.
using PopulationHook =
    std::function<void(int, const std::vector<Genome>&, const std::vector<double>&)>;

struct GaResult {
  Genome best;
  double best_fitness = 0.0;
  std::vector<double> history;  ///< best-so-far fitness after each generation
  std::int64_t evaluations = 0;
};

class GeneticOptimizer {
 public:
  explicit GeneticOptimizer(GaConfig config);

  /// Runs the evolutionary loop. All functions must be valid; `repair` may
  /// be empty when genomes are unconstrained.
  [[nodiscard]] GaResult run(const InitFn& init, const FitnessFn& fitness,
                             const MutateFn& mutate,
                             const RepairFn& repair = {},
                             const PopulationHook& hook = {}) const;

  /// Swaps a random contiguous segment between two genomes of equal length
  /// (Algorithm 1 line 12). Exposed for direct testing.
  static void segment_swap_crossover(Genome& a, Genome& b, Rng& rng);

  [[nodiscard]] const GaConfig& config() const { return config_; }

 private:
  GaConfig config_;
};

}  // namespace gqa
