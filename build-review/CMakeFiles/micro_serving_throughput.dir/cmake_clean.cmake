file(REMOVE_RECURSE
  "CMakeFiles/micro_serving_throughput.dir/bench/micro_serving_throughput.cpp.o"
  "CMakeFiles/micro_serving_throughput.dir/bench/micro_serving_throughput.cpp.o.d"
  "bench/micro_serving_throughput"
  "bench/micro_serving_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_serving_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
