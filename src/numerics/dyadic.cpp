#include "numerics/dyadic.h"

#include <cmath>

#include "util/contracts.h"
#include "util/strings.h"

namespace gqa {

Dyadic Dyadic::from_real(double real, int bits) {
  GQA_EXPECTS(bits >= 1 && bits <= 30);
  GQA_EXPECTS_MSG(std::isfinite(real), "dyadic multiplier must be finite");
  if (real == 0.0) return Dyadic{0, 0};

  // Normalize |real| into [2^(bits-1), 2^bits) so the multiplier uses all
  // available precision, then round.
  int exp = 0;
  const double mant = std::frexp(std::abs(real), &exp);  // mant in [0.5, 1)
  int shift = bits - exp;
  std::int64_t mult = round_to_int(std::ldexp(mant, bits));  // in [2^(b-1), 2^b]
  if (mult == (std::int64_t{1} << bits)) {  // rounding bumped to the next octave
    mult >>= 1;
    --shift;
  }
  if (real < 0) mult = -mult;
  // Negative shift (|real| >= 2^bits) cannot be represented by a
  // right-shifting requantizer; fold into the multiplier when it fits.
  while (shift < 0) {
    mult *= 2;
    ++shift;
    GQA_EXPECTS_MSG(std::abs(mult) < (std::int64_t{1} << 31),
                    "dyadic multiplier overflow: real value too large");
  }
  return Dyadic{static_cast<std::int32_t>(mult), shift};
}

std::string Dyadic::to_string() const {
  return format("%d * 2^-%d", mult, shift);
}

bool is_power_of_two(double value) {
  if (value <= 0.0 || !std::isfinite(value)) return false;
  int exp = 0;
  return std::frexp(value, &exp) == 0.5;
}

int nearest_po2_exponent(double value) {
  GQA_EXPECTS_MSG(value > 0.0 && std::isfinite(value),
                  "po2 exponent needs a positive finite value");
  return static_cast<int>(round_to_int(std::log2(value)));
}

}  // namespace gqa
