#include "quant/quant_params.h"

#include <cmath>

#include "numerics/dyadic.h"
#include "util/contracts.h"
#include "util/strings.h"

namespace gqa {

std::vector<std::int64_t> QuantParams::quantize(std::span<const double> xs) const {
  std::vector<std::int64_t> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(quantize(x));
  return out;
}

std::vector<double> QuantParams::dequantize(std::span<const std::int64_t> qs) const {
  std::vector<double> out;
  out.reserve(qs.size());
  for (std::int64_t q : qs) out.push_back(dequantize(q));
  return out;
}

bool QuantParams::scale_is_po2() const { return is_power_of_two(scale); }

int QuantParams::po2_exponent() const {
  GQA_EXPECTS_MSG(scale_is_po2(), "scale is not a power of two");
  return static_cast<int>(std::llround(std::log2(scale)));
}

std::string QuantParams::to_string() const {
  return format("%sINT%d S=%.6g", is_signed ? "" : "U", bits, scale);
}

QuantParams make_po2_params(double alpha, int bits, bool is_signed) {
  GQA_EXPECTS_MSG(alpha > 0.0 && std::isfinite(alpha),
                  "po2 quantization needs a positive finite alpha");
  GQA_EXPECTS(bits >= 2 && bits <= 32);
  QuantParams qp;
  qp.scale = std::ldexp(1.0, nearest_po2_exponent(alpha));
  qp.bits = bits;
  qp.is_signed = is_signed;
  return qp;
}

double symmetric_scale(double amax, int bits, bool is_signed) {
  GQA_EXPECTS_MSG(amax > 0.0 && std::isfinite(amax),
                  "symmetric scale needs positive amax");
  GQA_EXPECTS(bits >= 2 && bits <= 32);
  return amax / static_cast<double>(int_max(bits, is_signed));
}

}  // namespace gqa
