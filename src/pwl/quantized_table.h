// Quantization of a fitted pwl table per Eq. 3 of the paper:
//   k̃_i = k_i (stored as λ-frac fixed point, width = param_bits)
//   b_i stored likewise; b̃_i = b_i / S is produced at runtime by a shifter
//   p̃_i = clip(round(p_i / S), Qn, Qp)  — the INT-domain breakpoints
// The quantized table is what the Figure 1(b) hardware unit holds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "numerics/fxp.h"
#include "pwl/pwl_table.h"
#include "quant/quant_params.h"

namespace gqa {

/// Integer-domain pwl parameters for a given input quantization.
struct QuantizedPwlTable {
  FxpFormat param_fmt;              ///< storage format of k/b codes (frac = λ)
  QuantParams input;                ///< input code domain; scale must be po2
  std::vector<std::int64_t> k_code; ///< slope codes, λ frac bits
  std::vector<std::int64_t> b_code; ///< intercept codes, λ frac bits (pre-shift)
  std::vector<std::int64_t> p_code; ///< quantized breakpoints, input codes

  [[nodiscard]] int entries() const { return static_cast<int>(k_code.size()); }
  [[nodiscard]] int lambda() const { return param_fmt.frac; }

  /// Left-shift amount applied to intercepts at runtime: s = -log2(S).
  /// Positive when S < 1 (the common case).
  [[nodiscard]] int intercept_shift() const { return -input.po2_exponent(); }

  /// Segment index for an input code (comparator semantics of Eq. 1).
  [[nodiscard]] int segment_index(std::int64_t q) const;

  /// The slope/intercept reals implied by the stored codes (for analysis).
  [[nodiscard]] double slope_value(int i) const;
  [[nodiscard]] double intercept_value(int i) const;

  void validate() const;
  [[nodiscard]] std::string to_string() const;
};

/// Quantizes a (already FXP-rounded or raw FP) table for the given input
/// quantization. `param_bits` is the LUT storage width (8 or 16 in the
/// paper's Table 6). Requires a power-of-two input scale.
[[nodiscard]] QuantizedPwlTable quantize_table(const PwlTable& table,
                                               const QuantParams& input,
                                               int lambda, int param_bits);

/// The FP-domain table the quantized parameters *actually* realize:
/// slopes/intercepts decoded from codes, breakpoints dequantized. Evaluating
/// this on dequantized inputs reproduces the integer kernel in real
/// arithmetic (used for cross-checks in tests).
[[nodiscard]] PwlTable dequantize_table(const QuantizedPwlTable& qt);

}  // namespace gqa
