// Seeded, env-gated fault injection for the serving stack.
//
// Production fault handling is only trustworthy if it is exercised, so the
// chaos harness (tests/chaos_test.cpp) and the degraded-throughput bench
// inject failures at fixed, named points compiled into the hot paths:
//
//   admission    gqa::Server::submit/try_submit, before a ticket is issued
//   scheduler    a service lane, after the pick and before the forward
//   backend      the backend forward call itself
//   warmup       NonlinearProvider::warm_up (serving degrades to cold start)
//   load         pwl::load_pwl / load_quantized (artifact load rejected)
//   cache_read   ArtifactStore::load / read_verified (cache degrades to a
//                miss; warm-up falls back to an in-process fit)
//   cache_write  write_file_atomic, between the temp write and the rename
//                (the torn-write simulation: the temp is unlinked, so no
//                visible artifact appears and the publish fails transient)
//   stream_admission  gqa::Server::push_frame, after the ticket is issued
//                (the frame is admitted but immediately resolved
//                kAdmissionRejected through the in-order stream delivery
//                path, so chaos drops still hit the ledger exactly once)
//
// Each armed point fires with a configured probability from its own seeded
// stream, so a chaos run is reproducible per (spec, request count) while
// still covering arbitrary interleavings. The injector is OFF unless the
// GQA_FAULT_SPEC environment variable (or a programmatic configure()) arms
// it; the disabled fast path is a single relaxed atomic load, so the hooks
// are free in production builds — BENCH_serve.json columns are unchanged
// with the spec unset.
//
// Spec grammar (comma-separated triples):
//   GQA_FAULT_SPEC=point:prob:seed[,point:prob:seed...]
//   e.g. GQA_FAULT_SPEC=backend:0.2:7,admission:0.05:11
// `prob` in (0, 1]; `seed` a non-negative integer. Unknown point names or
// malformed triples fail loudly with ContractViolation — a typo must never
// silently disable a chaos gate.
//
// Thread-safety: should_inject()/injected() are safe from any thread.
// configure() (and FaultScope) must only run while no injection point is
// being evaluated — i.e. between server lifetimes in a test; the env-driven
// configuration happens once, before any thread can observe it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace gqa::fault {

enum class Point {
  kAdmission = 0,
  kScheduler,
  kBackend,
  kWarmup,
  kLoad,
  kCacheRead,
  kCacheWrite,
  kStreamAdmission,
};
inline constexpr int kPointCount = 8;

/// Stable spec/stat name of a point ("admission", "scheduler", ...).
[[nodiscard]] const char* point_name(Point point);

class FaultInjector {
 public:
  /// The process-wide injector, configured once from GQA_FAULT_SPEC on
  /// first use.
  static FaultInjector& instance();

  /// True when any point is armed — the zero-cost gate the call sites
  /// check first.
  ///
  /// memory_order_acquire is load-bearing, not defensive: it pairs with
  /// configure()'s release store to publish the PLAIN (non-atomic)
  /// PointState fields — armed/prob/seed — that should_inject() reads
  /// next. Weakening this load (or configure()'s store) to relaxed would
  /// let a reader observe enabled() == true while still seeing a stale,
  /// half-written point table.
  [[nodiscard]] bool enabled() const {
    return any_armed_.load(std::memory_order_acquire);
  }

  /// Draws the point's next seeded decision; true = inject a fault here.
  /// Counts both draws and fires. Returns false instantly when the point
  /// is not armed.
  [[nodiscard]] bool should_inject(Point point);

  /// Faults fired at `point` since the last configure().
  [[nodiscard]] std::uint64_t injected(Point point) const;
  /// Faults fired across all points since the last configure().
  [[nodiscard]] std::uint64_t total_injected() const;

  /// Re-arms the injector from a spec string (empty = fully disabled) and
  /// resets all counters. Test hook — see the header contract: never call
  /// while injection points are being evaluated.
  void configure(const std::string& spec);

  /// The spec currently armed ("" when disabled) — what FaultScope saves.
  [[nodiscard]] const std::string& spec() const { return spec_; }

 private:
  FaultInjector();

  struct PointState {
    // armed/prob/seed are deliberately plain fields: they are written only
    // by configure() (which by contract runs with no concurrent draws) and
    // published to readers via the any_armed_ release/acquire handshake.
    bool armed = false;
    double prob = 0.0;
    std::uint64_t seed = 0;
    // draws/fired are relaxed counters (see should_inject): each point's
    // decision stream depends only on its own fetch_add total order, which
    // relaxed RMWs already guarantee per object.
    std::atomic<std::uint64_t> draws{0};
    std::atomic<std::uint64_t> fired{0};
  };

  /// The arm flag doubles as the publication fence for points_ — see
  /// enabled(). Audited: must stay acquire/release.
  std::atomic<bool> any_armed_{false};
  PointState points_[kPointCount];
  std::string spec_;
};

/// The call-site helper: false with one atomic load when injection is off.
[[nodiscard]] inline bool triggered(Point point) {
  FaultInjector& injector = FaultInjector::instance();
  return injector.enabled() && injector.should_inject(point);
}

/// Throws the ServingError that an injected fault at `point` models
/// (kBackendTransient for scheduler/backend/warmup/cache_write faults —
/// retryable by design, so chaos runs with retries still converge —
/// except admission/stream_admission which throw kAdmissionRejected, and
/// load/cache_read which throw kArtifactCorrupt).
[[noreturn]] void throw_injected(Point point);

/// RAII spec override for tests: arms `spec` on construction, restores the
/// previously armed spec (usually the env-derived one) on destruction.
class FaultScope {
 public:
  explicit FaultScope(const std::string& spec);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::string previous_;
};

}  // namespace gqa::fault
