#include "gqa/objective.h"

#include <algorithm>
#include <cmath>

#include "numerics/rounding.h"
#include "numerics/saturate.h"
#include "util/contracts.h"

namespace gqa {

QuantAwareObjective::QuantAwareObjective(const FitGrid& grid, int lambda,
                                         std::vector<int> scale_exps,
                                         int input_bits)
    : grid_(&grid),
      lambda_(lambda),
      input_bits_(input_bits),
      scale_exps_(std::move(scale_exps)) {
  GQA_EXPECTS_MSG(!scale_exps_.empty(), "need at least one deployment scale");
  GQA_EXPECTS(lambda_ >= 0 && lambda_ <= 16);
  GQA_EXPECTS(input_bits_ >= 4 && input_bits_ <= 32);

  for (int s : scale_exps_) {
    ScaleGrid sg;
    sg.exponent = s;
    sg.scale = std::ldexp(1.0, -s);
    const std::int64_t q_min = int_min(input_bits_, true);
    const std::int64_t q_max = int_max(input_bits_, true);
    const auto q_lo = std::max(
        q_min, static_cast<std::int64_t>(std::ceil(grid.lo() / sg.scale)));
    const auto q_hi = std::min(
        q_max, static_cast<std::int64_t>(std::floor(grid.hi() / sg.scale)));
    GQA_EXPECTS_MSG(q_lo <= q_hi,
                    "no integer codes inside the range at this scale");
    sg.q_lo = q_lo;
    for (std::int64_t q = q_lo; q <= q_hi; ++q) {
      const double x = sg.scale * static_cast<double>(q);
      sg.xs.push_back(x);
      sg.fs.push_back(grid.target()(x));
    }

    const std::size_t n = sg.xs.size();
    sg.sum_x.assign(n + 1, 0.0);
    sg.sum_xx.assign(n + 1, 0.0);
    sg.sum_f.assign(n + 1, 0.0);
    sg.sum_xf.assign(n + 1, 0.0);
    sg.sum_ff.assign(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = sg.xs[i];
      const double f = sg.fs[i];
      sg.sum_x[i + 1] = sg.sum_x[i] + x;
      sg.sum_xx[i + 1] = sg.sum_xx[i] + x * x;
      sg.sum_f[i + 1] = sg.sum_f[i] + f;
      sg.sum_xf[i + 1] = sg.sum_xf[i] + x * f;
      sg.sum_ff[i + 1] = sg.sum_ff[i] + f * f;
    }
    scale_grids_.push_back(std::move(sg));
  }
}

double QuantAwareObjective::mse_on(const ScaleGrid& sg,
                                   const std::vector<std::int64_t>& bound_codes,
                                   const std::vector<double>& ks,
                                   const std::vector<double>& bs) const {
  const std::size_t n = sg.xs.size();
  double sse = 0.0;
  std::size_t lo_idx = 0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::size_t hi_idx = n;
    if (i < bound_codes.size()) {
      // x >= boundary  <=>  q >= code, exactly (x = S·q with S a power of
      // two), so the lattice index of the boundary is pure integer math.
      const std::int64_t off = bound_codes[i] - sg.q_lo;
      hi_idx = off <= 0 ? 0
                        : std::min(n, static_cast<std::size_t>(off));
      hi_idx = std::max(hi_idx, lo_idx);
    }
    const double m = static_cast<double>(hi_idx - lo_idx);
    if (m != 0.0) {
      const double sx = sg.sum_x[hi_idx] - sg.sum_x[lo_idx];
      const double sxx = sg.sum_xx[hi_idx] - sg.sum_xx[lo_idx];
      const double sf = sg.sum_f[hi_idx] - sg.sum_f[lo_idx];
      const double sxf = sg.sum_xf[hi_idx] - sg.sum_xf[lo_idx];
      const double sff = sg.sum_ff[hi_idx] - sg.sum_ff[lo_idx];
      const double k = ks[i];
      const double b = bs[i];
      // Expansion of sum((f - kx - b)^2); exact, no pass over the codes.
      sse += std::max(0.0, sff - 2.0 * k * sxf - 2.0 * b * sf + k * k * sxx +
                               2.0 * k * b * sx + m * b * b);
    }
    lo_idx = hi_idx;
  }
  return sse / static_cast<double>(n);
}

double QuantAwareObjective::mse_on_naive(
    const ScaleGrid& sg, const std::vector<std::int64_t>& bound_codes,
    const std::vector<double>& ks, const std::vector<double>& bs) const {
  double sse = 0.0;
  std::size_t seg = 0;
  for (std::size_t i = 0; i < sg.xs.size(); ++i) {
    const std::int64_t q = sg.q_lo + static_cast<std::int64_t>(i);
    while (seg < bound_codes.size() && q >= bound_codes[seg]) ++seg;
    const double err = ks[seg] * sg.xs[i] + bs[seg] - sg.fs[i];
    sse += err * err;
  }
  return sse / static_cast<double>(sg.xs.size());
}

void QuantAwareObjective::derive_lines(const Genome& breakpoints,
                                       std::vector<double>& ks,
                                       std::vector<double>& bs) const {
  const std::size_t nseg = breakpoints.size() + 1;
  // Deployed (k, b): least squares on unquantized segments, λ-rounded.
  ks.resize(nseg);
  bs.resize(nseg);
  std::size_t lo_idx = 0;
  for (std::size_t i = 0; i < nseg; ++i) {
    const std::size_t hi_idx = i < breakpoints.size()
                                   ? grid_->lower_index(breakpoints[i])
                                   : grid_->size();
    GQA_EXPECTS_MSG(hi_idx >= lo_idx, "breakpoints must be sorted");
    const SegmentFit fit = grid_->fit_segment(lo_idx, hi_idx);
    ks[i] = round_to_grid(fit.k, lambda_);
    bs[i] = round_to_grid(fit.b, lambda_);
    lo_idx = hi_idx;
  }
}

std::vector<double> QuantAwareObjective::per_scale_mse(
    const Genome& breakpoints) const {
  // Hot path of the GA (called per genome per generation, from worker
  // threads): thread_local scratch kills the per-call allocations.
  thread_local std::vector<double> ks, bs;
  thread_local std::vector<std::int64_t> codes;
  derive_lines(breakpoints, ks, bs);

  std::vector<double> out;
  out.reserve(scale_grids_.size());
  codes.resize(breakpoints.size());
  for (const ScaleGrid& sg : scale_grids_) {
    // Eq. 3: p̃ = clip(round(p / S), Qn, Qp), compared in the code domain.
    // p / S == p · 2^s exactly (power-of-two scaling never rounds), and the
    // multiply is far cheaper than the divide.
    const double inv_scale = 1.0 / sg.scale;
    for (std::size_t i = 0; i < breakpoints.size(); ++i) {
      codes[i] = saturate(round_to_int(breakpoints[i] * inv_scale),
                          input_bits_, true);
    }
    out.push_back(mse_on(sg, codes, ks, bs));
  }
  return out;
}

std::vector<double> QuantAwareObjective::per_scale_mse_naive(
    const Genome& breakpoints) const {
  std::vector<double> ks, bs;
  derive_lines(breakpoints, ks, bs);

  std::vector<double> out;
  out.reserve(scale_grids_.size());
  std::vector<std::int64_t> codes(breakpoints.size());
  for (const ScaleGrid& sg : scale_grids_) {
    for (std::size_t i = 0; i < breakpoints.size(); ++i) {
      codes[i] = saturate(round_to_int(breakpoints[i] / sg.scale),
                          input_bits_, true);
    }
    out.push_back(mse_on_naive(sg, codes, ks, bs));
  }
  return out;
}

double QuantAwareObjective::operator()(const Genome& breakpoints) const {
  const std::vector<double> mses = per_scale_mse(breakpoints);
  double total = 0.0;
  for (double m : mses) total += m;
  return total / static_cast<double>(mses.size());
}

double QuantAwareObjective::deployed_mse(const PwlTable& fxp_table,
                                         int scale_exp) const {
  const auto it = std::find_if(
      scale_grids_.begin(), scale_grids_.end(),
      [scale_exp](const ScaleGrid& sg) { return sg.exponent == scale_exp; });
  GQA_EXPECTS_MSG(it != scale_grids_.end(), "scale not in the objective set");

  std::vector<std::int64_t> codes(fxp_table.breakpoints.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = saturate(round_to_int(fxp_table.breakpoints[i] / it->scale),
                        input_bits_, true);
  }
  return mse_on(*it, codes, fxp_table.slopes, fxp_table.intercepts);
}

}  // namespace gqa
