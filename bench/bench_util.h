// Shared helpers for the reproduction benches: seed-averaged fitting,
// environment knobs, and result dumping. Each bench binary regenerates one
// table or figure of the paper (see DESIGN.md §4 for the index).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/approximator.h"
#include "eval/protocol.h"
#include "eval/server.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace gqa::bench {

/// The continuous-batching client the serving benches time: streams every
/// (model_id, image) request through a submit-time callback and drains
/// once — admission overlaps service with no per-ticket wait barrier.
/// Each callback writes its own pre-assigned slot (disjoint, never
/// reallocated; drain()'s completion handshake publishes the writes), so
/// the result path is lock-free on the client. Callbacks must not throw
/// (the server would swallow it); the first backend error is recorded and
/// rethrown after the drain instead.
inline std::vector<tfm::QTensor> serve_stream_continuous(
    Server& server,
    const std::vector<std::pair<int, const tfm::Tensor*>>& requests) {
  std::vector<tfm::QTensor> results(requests.size());
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t slot = 0; slot < requests.size(); ++slot) {
    (void)server.submit(requests[slot].first, *requests[slot].second,
                        [&results, &error_mutex, &first_error, slot](
                            Server::Ticket, tfm::QTensor result,
                            std::exception_ptr error) {
                          if (error != nullptr) {
                            std::lock_guard<std::mutex> lock(error_mutex);
                            if (first_error == nullptr) first_error = error;
                            return;
                          }
                          results[slot] = std::move(result);
                        });
  }
  server.drain();  // every callback has run when drain returns
  {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }
  return results;
}

/// Outcome of one fault-tolerant streaming pass (serve_stream_faulty):
/// per-slot results for the requests that succeeded (nullopt = resolved
/// with an error), plus the admission-refusal and failure counts the
/// degraded-throughput bench reports.
struct FaultyStreamResult {
  std::vector<std::optional<tfm::QTensor>> results;
  std::size_t admitted = 0;
  std::size_t admission_rejected = 0;
  std::size_t failed = 0;  ///< admitted but resolved with an error
};

/// serve_stream_continuous for chaos runs: the same streaming-callback
/// client, but each request carries a retry/deadline policy, an injected
/// admission refusal is counted instead of rethrown, and per-request
/// failures are tallied rather than failing the whole stream — the caller
/// decides what degraded service is worth (and checksums the successes).
inline FaultyStreamResult serve_stream_faulty(
    Server& server,
    const std::vector<std::pair<int, const tfm::Tensor*>>& requests,
    const SubmitOptions& submit_options) {
  FaultyStreamResult out;
  out.results.resize(requests.size());
  std::atomic<std::size_t> failed{0};
  for (std::size_t slot = 0; slot < requests.size(); ++slot) {
    try {
      (void)server.submit(requests[slot].first, *requests[slot].second,
                          submit_options,
                          [&out, &failed, slot](Server::Ticket,
                                                tfm::QTensor result,
                                                std::exception_ptr error) {
                            if (error != nullptr) {
                              failed.fetch_add(1,
                                               std::memory_order_relaxed);
                              return;
                            }
                            out.results[slot] = std::move(result);
                          });
      ++out.admitted;
    } catch (const ServingError&) {
      ++out.admission_rejected;  // refused before a ticket existed
    }
  }
  server.drain();  // every callback has run when drain returns
  out.failed = failed.load();
  return out;
}

/// Outcome of one open-loop streaming pass (run_stream_open_loop): the
/// push ledger (ticket -> source image index, in push order), every frame
/// the stream actually served keyed by ticket (for the bit-identity gate
/// against serial forwards), the count of frames resolved with a
/// ServingError instead (dropped/superseded/expired), and the wall time of
/// the pass including the close() drain.
struct StreamOpenLoopResult {
  std::vector<std::pair<Server::Ticket, std::size_t>> pushed;
  std::map<Server::Ticket, tfm::QTensor> served;
  std::size_t dropped = 0;
  double wall_ms = 0.0;
};

/// The open-loop frame source of the stream-serving benches: pushes
/// `frames` frames (cycling through `images`) into one streaming session
/// at a fixed offered cadence REGARDLESS of service progress — the
/// real-time video shape, where a slow server does not slow the camera —
/// and lets the stream's drop policy shed whatever the server cannot
/// absorb. close() drains per the stream's drain_policy, so when this
/// returns every pushed frame has resolved exactly once.
inline StreamOpenLoopResult run_stream_open_loop(
    Server& server, int model_id, const std::vector<tfm::Tensor>& images,
    std::size_t frames, std::chrono::microseconds interval,
    const StreamOptions& options) {
  StreamOpenLoopResult out;
  std::mutex mutex;
  Server::StreamSession stream = server.open_stream(
      model_id, options,
      [&out, &mutex](Server::Ticket ticket, tfm::QTensor result,
                     std::exception_ptr error) {
        std::lock_guard<std::mutex> lock(mutex);
        if (error == nullptr) {
          out.served.emplace(ticket, std::move(result));
        } else {
          ++out.dropped;
        }
      });
  Timer timer;
  auto next_push = std::chrono::steady_clock::now();
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t idx = f % images.size();
    if (const std::optional<Server::Ticket> ticket =
            stream.push_frame(images[idx])) {
      out.pushed.emplace_back(*ticket, idx);
    }
    next_push += interval;
    std::this_thread::sleep_until(next_push);
  }
  stream.close();
  out.wall_ms = timer.milliseconds();
  return out;
}

/// The mixed two-model request list of the co-serving benches: one
/// SegFormer and one EfficientViT request per image, interleaved.
inline std::vector<std::pair<int, const tfm::Tensor*>> mixed_request_list(
    int seg_id, int evit_id, const std::vector<tfm::Tensor>& images) {
  std::vector<std::pair<int, const tfm::Tensor*>> requests;
  requests.reserve(2 * images.size());
  for (const tfm::Tensor& img : images) {
    requests.emplace_back(seg_id, &img);
    requests.emplace_back(evit_id, &img);
  }
  return requests;
}

/// Number of independent fit seeds to average (GA/NN-LUT runs are
/// stochastic; the paper reports single runs, we stabilize with the mean).
inline int fit_seeds() {
  return static_cast<int>(env_int("GQA_FIT_SEEDS", 3));
}

/// Fits `seeds` approximators with distinct seeds.
inline std::vector<Approximator> fit_many(Op op, Method method, int entries,
                                          int seeds) {
  std::vector<Approximator> out;
  out.reserve(static_cast<std::size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    FitOptions options;
    options.entries = entries;
    options.seed = 0xB0B0 + static_cast<std::uint64_t>(s) * 7919 +
                   static_cast<std::uint64_t>(op) * 131 +
                   static_cast<std::uint64_t>(method) * 17;
    out.push_back(Approximator::fit(op, method, options));
  }
  return out;
}

/// Seed-averaged operator-level MSE (§4.1 protocol).
inline double avg_operator_mse(Op op, Method method, int entries,
                               const SweepOptions& opts = {}) {
  const std::vector<Approximator> fits =
      fit_many(op, method, entries, fit_seeds());
  double sum = 0.0;
  for (const Approximator& a : fits) sum += operator_level_mse(a, opts);
  return sum / static_cast<double>(fits.size());
}

/// Seed-averaged per-scale MSE series, ordered S = 2^0 .. 2^exp_lo.
inline std::vector<double> avg_scale_series(Op op, Method method, int entries,
                                            const SweepOptions& opts = {}) {
  const std::vector<Approximator> fits =
      fit_many(op, method, entries, fit_seeds());
  std::vector<double> sums;
  for (const Approximator& a : fits) {
    const ScaleSweepResult sweep = sweep_scale_mse(a, opts);
    if (sums.empty()) sums.assign(sweep.points.size(), 0.0);
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      sums[i] += sweep.points[i].mse / static_cast<double>(fits.size());
    }
  }
  return sums;
}

/// Writes a table both to stdout and, as markdown, into bench_results/.
inline void emit(const TablePrinter& table, const std::string& name) {
  table.print(std::cout);
  try {
    (void)std::system("mkdir -p bench_results");
    write_file("bench_results/" + name + ".md", table.to_markdown());
  } catch (const std::exception&) {
    // Result files are a convenience; never fail the bench over them.
  }
}

}  // namespace gqa::bench
