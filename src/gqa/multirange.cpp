#include "gqa/multirange.h"

#include <cmath>
#include <limits>

#include "util/contracts.h"
#include "util/strings.h"

namespace gqa {

MultiRangeConfig MultiRangeConfig::div_preset() {
  MultiRangeConfig cfg;
  cfg.op = Op::kDiv;
  cfg.ir_lo = 0.5;
  cfg.ir_hi = 4.0;
  cfg.subranges = {
      {4.0, 32.0, -3},
      {32.0, 256.0, -6},
      {256.0, std::numeric_limits<double>::infinity(), -6},
  };
  return cfg;
}

MultiRangeConfig MultiRangeConfig::rsqrt_preset() {
  MultiRangeConfig cfg;
  cfg.op = Op::kRsqrt;
  cfg.ir_lo = 0.25;
  cfg.ir_hi = 4.0;
  cfg.subranges = {
      {4.0, 64.0, -4},
      {64.0, 1024.0, -8},
      {1024.0, std::numeric_limits<double>::infinity(), -12},
  };
  return cfg;
}

MultiRangeConfig MultiRangeConfig::preset_for(Op op) {
  switch (op) {
    case Op::kDiv: return div_preset();
    case Op::kRsqrt: return rsqrt_preset();
    default:
      throw ContractViolation(
          "multi-range scaling is defined for DIV and RSQRT only");
  }
}

int MultiRangeConfig::select_exponent(double x) const {
  for (const SubRange& sr : subranges) {
    if (x >= sr.lo && x < sr.hi) return sr.scale_exp;
  }
  return 0;  // inside IR (or below it; clamped by the first pwl segment)
}

int MultiRangeConfig::output_exponent(int input_exp) const {
  if (op == Op::kDiv) return input_exp;
  // RSQRT: 1/sqrt(x * 2^e / 2^e) = 2^{e/2} / sqrt(x * 2^e).
  GQA_EXPECTS_MSG(input_exp % 2 == 0,
                  "RSQRT multi-range exponents must be even");
  return input_exp / 2;
}

double MultiRangeConfig::eval(const std::function<double(double)>& pwl,
                              double x) const {
  const int e = select_exponent(x);
  const double scaled = std::ldexp(x, e);           // x * S'
  const double approx = pwl(scaled);                // pwl inside IR
  return std::ldexp(approx, output_exponent(e));    // rescale back
}

void MultiRangeConfig::validate() const {
  GQA_EXPECTS(ir_lo < ir_hi);
  double prev_hi = ir_hi;
  for (const SubRange& sr : subranges) {
    GQA_EXPECTS_MSG(sr.lo == prev_hi, "sub-ranges must tile contiguously");
    GQA_EXPECTS(sr.lo < sr.hi);
    GQA_EXPECTS_MSG(sr.scale_exp <= 0, "sub-range scales must compress");
    prev_hi = sr.hi;
  }
}

std::string MultiRangeConfig::to_string() const {
  std::string out = format("%s IR=(%.3g, %.3g)", op_info(op).name.c_str(),
                           ir_lo, ir_hi);
  for (std::size_t i = 0; i < subranges.size(); ++i) {
    const SubRange& sr = subranges[i];
    if (std::isinf(sr.hi)) {
      out += format("  SR%zu=[%.3g, +inf)/2^%d", i, sr.lo, sr.scale_exp);
    } else {
      out += format("  SR%zu=[%.3g, %.3g)/2^%d", i, sr.lo, sr.hi, sr.scale_exp);
    }
  }
  return out;
}

}  // namespace gqa
