#include "genetic/genetic.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/contracts.h"

namespace gqa {

GeneticOptimizer::GeneticOptimizer(GaConfig config) : config_(config) {
  GQA_EXPECTS(config_.population_size >= 2);
  GQA_EXPECTS(config_.generations >= 1);
  GQA_EXPECTS(config_.crossover_prob >= 0.0 && config_.crossover_prob <= 1.0);
  GQA_EXPECTS(config_.mutation_prob >= 0.0 && config_.mutation_prob <= 1.0);
  GQA_EXPECTS(config_.tournament_size >= 1 &&
              config_.tournament_size <= config_.population_size);
  GQA_EXPECTS(config_.elite_count >= 0 &&
              config_.elite_count < config_.population_size);
}

void GeneticOptimizer::segment_swap_crossover(Genome& a, Genome& b, Rng& rng) {
  GQA_EXPECTS(a.size() == b.size());
  if (a.empty()) return;
  const std::size_t n = a.size();
  std::size_t lo = rng.index(n);
  std::size_t hi = rng.index(n);
  if (lo > hi) std::swap(lo, hi);
  for (std::size_t i = lo; i <= hi; ++i) std::swap(a[i], b[i]);
}

GaResult GeneticOptimizer::run(const InitFn& init, const FitnessFn& fitness,
                               const MutateFn& mutate, const RepairFn& repair,
                               const PopulationHook& hook) const {
  GQA_EXPECTS_MSG(init != nullptr, "GA needs an initializer");
  GQA_EXPECTS_MSG(fitness != nullptr, "GA needs a fitness function");
  GQA_EXPECTS_MSG(mutate != nullptr, "GA needs a mutation operator");

  Rng rng(config_.seed);
  const auto pop_size = static_cast<std::size_t>(config_.population_size);

  std::vector<Genome> population;
  population.reserve(pop_size);
  for (std::size_t i = 0; i < pop_size; ++i) {
    Genome g = init(rng);
    if (repair) repair(g);
    population.push_back(std::move(g));
  }

  GaResult result;
  result.best_fitness = std::numeric_limits<double>::infinity();
  result.history.reserve(static_cast<std::size_t>(config_.generations));

  std::vector<double> scores(pop_size);

  for (int gen = 0; gen < config_.generations; ++gen) {
    // Genetic operators (Alg. 1 lines 9-16): each individual may cross with
    // a random partner and may mutate.
    for (std::size_t i = 0; i < pop_size; ++i) {
      if (rng.canonical() < config_.crossover_prob) {
        std::size_t j = rng.index(pop_size - 1);
        if (j >= i) ++j;  // uniform over population \ {i}
        segment_swap_crossover(population[i], population[j], rng);
        if (repair) {
          repair(population[i]);
          repair(population[j]);
        }
      }
      if (rng.canonical() < config_.mutation_prob) {
        mutate(population[i], rng);
        if (repair) repair(population[i]);
      }
    }

    // Evaluation.
    for (std::size_t i = 0; i < pop_size; ++i) {
      scores[i] = fitness(population[i]);
      ++result.evaluations;
      if (scores[i] < result.best_fitness) {
        result.best_fitness = scores[i];
        result.best = population[i];
      }
    }
    result.history.push_back(result.best_fitness);
    if (hook) hook(gen, population, scores);

    // Tournament selection (Alg. 1 line 18) into the next generation, with
    // the global elite re-injected so progress is never lost.
    std::vector<Genome> next;
    next.reserve(pop_size);
    for (int e = 0; e < config_.elite_count; ++e) next.push_back(result.best);
    while (next.size() < pop_size) {
      std::size_t winner = rng.index(pop_size);
      for (int t = 1; t < config_.tournament_size; ++t) {
        const std::size_t challenger = rng.index(pop_size);
        if (scores[challenger] < scores[winner]) winner = challenger;
      }
      next.push_back(population[winner]);
    }
    population = std::move(next);
  }

  GQA_ENSURES(!result.best.empty() || config_.generations == 0);
  return result;
}

}  // namespace gqa
