// Tests for the two segmentation models: shape plumbing, determinism,
// head training, and FP-vs-INT8 agreement with exact non-linearities.
#include <gtest/gtest.h>

#include "eval/miou.h"
#include "eval/scene.h"
#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"
#include "util/contracts.h"

namespace gqa::tfm {
namespace {

SegformerConfig small_segformer() {
  SegformerConfig cfg;
  cfg.image_size = 32;
  cfg.dims = {16, 24, 32, 48};
  cfg.heads = {1, 2, 4, 8};
  cfg.depths = {1, 1, 1, 1};
  cfg.decoder_dim = 32;
  return cfg;
}

TEST(Segformer, LogitShapes) {
  const SegformerB0Like model(small_segformer());
  const LabeledScene scene = make_scene(SceneOptions{.size = 32}, 1);
  const Tensor logits = model.forward_fp(scene.image);
  EXPECT_EQ(logits.shape(), (Shape{19, 8, 8}));
  const Tensor feats = model.penultimate_fp(scene.image);
  EXPECT_EQ(feats.shape(), (Shape{64, 32}));
}

TEST(Segformer, DeterministicConstructionAndForward) {
  const SegformerB0Like a(small_segformer());
  const SegformerB0Like b(small_segformer());
  const LabeledScene scene = make_scene(SceneOptions{.size = 32}, 2);
  EXPECT_EQ(a.forward_fp(scene.image).data(), b.forward_fp(scene.image).data());
}

TEST(Segformer, ArgmaxLabels) {
  Tensor logits(Shape{3, 2, 2});
  logits.at(1, 0, 0) = 5.0f;
  logits.at(2, 1, 1) = 3.0f;
  const auto labels = SegformerB0Like::argmax_labels(logits);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[3], 2);
  EXPECT_EQ(labels[1], 0);
}

TEST(Segformer, FreezeRequiresCalibration) {
  SegformerB0Like model(small_segformer());
  EXPECT_THROW(model.freeze(), ContractViolation);
  const LabeledScene scene = make_scene(SceneOptions{.size = 32}, 3);
  EXPECT_THROW(
      (void)model.forward_int(scene.image, NonlinearProvider::exact()),
      ContractViolation);
}

TEST(Segformer, IntAgreesWithFpAfterCalibration) {
  SegformerB0Like model(small_segformer());
  SceneOptions so{.size = 32};
  const auto scenes = make_scene_set(so, 6, 77);
  // Head training sharpens decision margins; without it agreement is noise.
  std::vector<Tensor> images;
  std::vector<std::vector<int>> labels;
  for (const auto& s : scenes) {
    images.push_back(s.image);
    labels.push_back(downsample_labels(s.labels, s.size, 8, 8));
  }
  model.train_classifier(images, labels, 20, 0.05);
  for (int i = 0; i < 4; ++i) model.calibrate(scenes[static_cast<std::size_t>(i)].image);
  model.freeze();

  const NonlinearProvider exact = NonlinearProvider::exact();
  ConfusionMatrix cm(19);
  for (const auto& s : scenes) {
    const auto fp = SegformerB0Like::argmax_labels(model.forward_fp(s.image));
    const auto iq =
        SegformerB0Like::argmax_labels(model.forward_int(s.image, exact));
    cm.add(fp, iq);
  }
  // INT8-exact predictions agree with the FP32 teacher on most pixels.
  EXPECT_GT(cm.pixel_accuracy(), 0.75);
}

TEST(Segformer, IntForwardDeterministic) {
  SegformerB0Like model(small_segformer());
  const LabeledScene scene = make_scene(SceneOptions{.size = 32}, 5);
  model.calibrate(scene.image);
  model.freeze();
  const NonlinearProvider nl =
      NonlinearProvider::with_method(Method::kGqaRm, {Op::kExp, Op::kGelu});
  const QTensor a = model.forward_int(scene.image, nl);
  const QTensor b = model.forward_int(scene.image, nl);
  EXPECT_EQ(a.data(), b.data());
}

// ------------------------------------------------------------ efficientvit

EfficientViTConfig small_evit() {
  EfficientViTConfig cfg;
  cfg.image_size = 32;
  cfg.widths = {8, 12, 16, 24};
  cfg.head_dim = 24;
  return cfg;
}

TEST(EfficientViT, LogitShapes) {
  const EfficientViTB0Like model(small_evit());
  const LabeledScene scene = make_scene(SceneOptions{.size = 32}, 1);
  const Tensor logits = model.forward_fp(scene.image);
  EXPECT_EQ(logits.shape(), (Shape{19, 4, 4}));
  EXPECT_EQ(model.penultimate_fp(scene.image).shape(), (Shape{16, 24}));
}

TEST(EfficientViT, IntAgreesWithFp) {
  EfficientViTB0Like model(small_evit());
  SceneOptions so{.size = 32};
  const auto scenes = make_scene_set(so, 6, 99);
  std::vector<Tensor> images;
  std::vector<std::vector<int>> labels;
  for (const auto& s : scenes) {
    images.push_back(s.image);
    labels.push_back(downsample_labels(s.labels, s.size, 4, 4));
  }
  model.train_classifier(images, labels, 20, 0.05);
  for (int i = 0; i < 4; ++i) model.calibrate(scenes[static_cast<std::size_t>(i)].image);
  model.freeze();
  const NonlinearProvider exact = NonlinearProvider::exact();
  ConfusionMatrix cm(19);
  for (const auto& s : scenes) {
    cm.add(SegformerB0Like::argmax_labels(model.forward_fp(s.image)),
           SegformerB0Like::argmax_labels(model.forward_int(s.image, exact)));
  }
  EXPECT_GT(cm.pixel_accuracy(), 0.6);
}

TEST(EfficientViT, HswishReplacementRunsEndToEnd) {
  EfficientViTB0Like model(small_evit());
  const LabeledScene scene = make_scene(SceneOptions{.size = 32}, 13);
  model.calibrate(scene.image);
  model.freeze();
  const NonlinearProvider nl = NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kHswish, Op::kDiv});
  const QTensor logits = model.forward_int(scene.image, nl);
  EXPECT_EQ(logits.shape(), (Shape{19, 4, 4}));
}

// ---------------------------------------------------------------- provider

TEST(Provider, ReplacementSetRespected) {
  const NonlinearProvider nl =
      NonlinearProvider::with_method(Method::kGqaRm, {Op::kExp});
  EXPECT_TRUE(nl.replaces(Op::kExp));
  EXPECT_FALSE(nl.replaces(Op::kGelu));
  // Non-replaced ops are computed exactly.
  EXPECT_DOUBLE_EQ(nl.gelu_code(16, -4), eval_op(Op::kGelu, 1.0));
  // Replaced ops go through the pwl kernel (close but not exact).
  const double approx_exp = nl.exp_code(-32, -4);  // exp(-2)
  EXPECT_NEAR(approx_exp, std::exp(-2.0), 0.03);
}

TEST(Provider, ExactBackendMatchesReferences) {
  const NonlinearProvider nl = NonlinearProvider::exact();
  EXPECT_DOUBLE_EQ(nl.exp_code(-16, -3), std::exp(-2.0));
  EXPECT_DOUBLE_EQ(nl.recip_fxp(1 << 15, 16), 2.0);
  EXPECT_DOUBLE_EQ(nl.rsqrt_fxp(4 << 16, 16), 0.5);
  EXPECT_THROW(nl.recip_fxp(0, 16), ContractViolation);
  EXPECT_THROW(nl.rsqrt_fxp(-1, 16), ContractViolation);
}

TEST(Provider, KernelInputSaturatesAtBus) {
  const NonlinearProvider nl =
      NonlinearProvider::with_method(Method::kGqaRm, {Op::kExp});
  // Softmax max-subtraction can produce codes below -128; the provider
  // clamps to the INT8 bus like the hardware would.
  EXPECT_NO_THROW(nl.exp_code(-255, -3));
  EXPECT_NEAR(nl.exp_code(-255, -3), nl.exp_code(-128, -3), 1e-12);
}

}  // namespace
}  // namespace gqa::tfm
