// NN-LUT baseline (Yu et al., DAC'22 [11]) re-implemented from scratch as
// the paper does for its comparison (§4.1): a single-hidden-layer ReLU
// network y = d + Σ_j v_j · relu(w_j x + c_j) is trained with Adam on 100K
// uniform samples; because such a network is exactly piecewise linear with
// knots at t_j = -c_j / w_j, the trained weights convert *exactly* into an
// N-entry pwl table, which is then pushed through the same fixed-point
// conversion path as GQA-LUT.
#pragma once

#include <cstdint>
#include <vector>

#include "numerics/nonlinear.h"
#include "pwl/pwl_table.h"

namespace gqa {

struct NnLutConfig {
  Op op = Op::kGelu;
  double range_lo = -4.0;
  double range_hi = 4.0;
  int entries = 8;       ///< hidden units = entries - 1
  int lambda = 5;        ///< FXP conversion, matching GQA-LUT (§4.1)
  int samples = 100000;  ///< training set size reported by [11]
  int epochs = 60;
  int batch_size = 512;
  double learning_rate = 2e-2;
  std::uint64_t seed = 0xBEEF;
  double grid_step = 0.01;  ///< evaluation grid (same as GQA-LUT)

  [[nodiscard]] static NnLutConfig preset(Op op, int entries);
  void validate() const;
};

/// The trained network, exposed for inspection and testing.
struct NnLutNetwork {
  std::vector<double> w;  ///< input weights, size H
  std::vector<double> c;  ///< input biases, size H
  std::vector<double> v;  ///< output weights, size H
  double d = 0.0;         ///< output bias

  [[nodiscard]] double forward(double x) const;
};

struct NnLutFitResult {
  NnLutConfig config;
  NnLutNetwork network;
  PwlTable fp_table;   ///< exact pwl realization of the network, N entries
  PwlTable fxp_table;  ///< slopes/intercepts rounded to λ decimal bits
  double fp_mse = 0.0;
  double fxp_mse = 0.0;
  double final_train_loss = 0.0;
};

/// Trains the network and extracts the table.
[[nodiscard]] NnLutFitResult fit_nn_lut(const NnLutConfig& config);

/// Exact pwl extraction from network weights, restricted to [lo, hi] and
/// normalized to exactly `entries` segments (knots outside the range are
/// merged; missing knots are padded by splitting the widest segments).
/// Exposed for unit testing.
[[nodiscard]] PwlTable extract_pwl(const NnLutNetwork& net, double lo,
                                   double hi, int entries);

}  // namespace gqa
