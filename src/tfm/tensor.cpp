#include "tfm/tensor.h"

#include <algorithm>
#include <cmath>

#include "tfm/workspace.h"
#include "util/strings.h"

namespace gqa::tfm {

std::string Shape::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i != 0) out += ", ";
    out += format("%d", dims[i]);
  }
  return out + "}";
}

Tensor Tensor::randn(Shape shape, Rng& rng, double stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

double Tensor::amax() const {
  double peak = 0.0;
  for (float v : data_) peak = std::max(peak, std::abs(static_cast<double>(v)));
  return peak;
}

QTensor QTensor::quantize(const Tensor& values, const QuantParams& qp) {
  QTensor q(values.shape(), qp);
  for (std::size_t i = 0; i < values.data().size(); ++i) {
    q.data_[i] = static_cast<std::int32_t>(
        qp.quantize(static_cast<double>(values.data()[i])));
  }
  return q;
}

Tensor QTensor::dequantize() const {
  Tensor t(shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    t.data()[i] = static_cast<float>(qp_.dequantize(data_[i]));
  }
  return t;
}

namespace {

template <typename T>
T tokens_impl(const T& chw, Workspace* ws) {
  GQA_EXPECTS(chw.shape().rank() == 3);
  const int c = chw.shape()[0];
  const int h = chw.shape()[1];
  const int w = chw.shape()[2];
  T out = [&] {
    if constexpr (std::is_same_v<T, QTensor>) {
      return ws_qtensor(ws, Shape{h * w, c}, chw.params());
    } else {
      return ws_tensor(ws, Shape{h * w, c});
    }
  }();
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        out.at(y * w + x, ch) = chw.at(ch, y, x);
      }
    }
  }
  return out;
}

template <typename T>
T from_tokens_impl(const T& tokens, int h, int w, Workspace* ws) {
  GQA_EXPECTS(tokens.shape().rank() == 2);
  GQA_EXPECTS(tokens.shape()[0] == h * w);
  const int c = tokens.shape()[1];
  T out = [&] {
    if constexpr (std::is_same_v<T, QTensor>) {
      return ws_qtensor(ws, Shape{c, h, w}, tokens.params());
    } else {
      return ws_tensor(ws, Shape{c, h, w});
    }
  }();
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        out.at(ch, y, x) = tokens.at(y * w + x, ch);
      }
    }
  }
  return out;
}

template <typename T>
std::vector<int> argmax_impl(const T& logits) {
  GQA_EXPECTS(logits.shape().rank() == 3);
  const int c = logits.shape()[0];
  const int h = logits.shape()[1];
  const int w = logits.shape()[2];
  std::vector<int> labels(static_cast<std::size_t>(h) * w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int best = 0;
      for (int ch = 1; ch < c; ++ch) {
        if (logits.at(ch, y, x) > logits.at(best, y, x)) best = ch;
      }
      labels[static_cast<std::size_t>(y) * w + x] = best;
    }
  }
  return labels;
}

}  // namespace

std::vector<int> argmax_label_map(const Tensor& logits) {
  return argmax_impl(logits);
}

std::vector<int> argmax_label_map(const QTensor& logits) {
  return argmax_impl(logits);
}

Tensor to_tokens(const Tensor& chw, Workspace* ws) {
  return tokens_impl(chw, ws);
}
Tensor from_tokens(const Tensor& tokens, int h, int w, Workspace* ws) {
  return from_tokens_impl(tokens, h, w, ws);
}
QTensor to_tokens(const QTensor& chw, Workspace* ws) {
  return tokens_impl(chw, ws);
}
QTensor from_tokens(const QTensor& tokens, int h, int w, Workspace* ws) {
  return from_tokens_impl(tokens, h, w, ws);
}

}  // namespace gqa::tfm
