// Generic real-coded genetic optimizer implementing the evolutionary loop of
// Algorithm 1: stochastic segment-swap crossover, pluggable mutation, 3-way
// tournament selection, and single-elite preservation so the best fitness is
// monotone non-increasing across generations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gqa {

/// Hyperparameters of the evolutionary loop. Defaults match Table 1's
/// common settings (Np = 50, T = 500, θc = 0.7, θm = 0.2).
struct GaConfig {
  int population_size = 50;     ///< Np
  int generations = 500;        ///< T
  double crossover_prob = 0.7;  ///< θc
  double mutation_prob = 0.2;   ///< θm
  int tournament_size = 3;
  int elite_count = 1;          ///< individuals copied verbatim each round
  std::uint64_t seed = 0xC0FFEE;
  /// Fitness-evaluation lanes. The variation/selection RNG stays serial, so
  /// results are bit-identical at any thread count (fitness must be pure).
  int num_threads = 1;
  /// Cache scores by genome bytes so elite re-injections and tournament
  /// duplicates are never re-scored. Requires a pure fitness function, so
  /// the generic default is off; GqaConfig (whose objectives are pure)
  /// turns it on.
  bool memoize_fitness = false;
};

using Genome = std::vector<double>;

/// Byte-exact memo/dedupe key for a genome, shared by the fitness cache
/// and GQA-LUT's champion-archive dedupe so the two can never diverge.
/// Distinct bit patterns hash apart; -0.0 vs 0.0 merely costs a redundant
/// evaluation, never a wrong score.
[[nodiscard]] std::string genome_key(const Genome& genome);
/// Fitness: lower is better (the paper uses MSE).
using FitnessFn = std::function<double(const Genome&)>;
/// In-place mutation of one genome.
using MutateFn = std::function<void(Genome&, Rng&)>;
/// In-place constraint repair (sorting, clipping, separation).
using RepairFn = std::function<void(Genome&)>;
/// Creates one random genome.
using InitFn = std::function<Genome(Rng&)>;
/// Observation hook called once per generation after fitness evaluation,
/// before selection: (generation, population, scores). Used by GQA-LUT to
/// archive deployment-ready candidates across the whole evolution.
using PopulationHook =
    std::function<void(int, const std::vector<Genome>&, const std::vector<double>&)>;

struct GaResult {
  Genome best;
  double best_fitness = 0.0;
  std::vector<double> history;  ///< best-so-far fitness after each generation
  std::int64_t evaluations = 0; ///< genomes scored (cache hits included)
  std::int64_t cache_hits = 0;  ///< scores served from the memo cache
};

class GeneticOptimizer {
 public:
  explicit GeneticOptimizer(GaConfig config);

  /// Runs the evolutionary loop. All functions must be valid; `repair` may
  /// be empty when genomes are unconstrained.
  [[nodiscard]] GaResult run(const InitFn& init, const FitnessFn& fitness,
                             const MutateFn& mutate,
                             const RepairFn& repair = {},
                             const PopulationHook& hook = {}) const;

  /// Swaps a random contiguous segment between two genomes of equal length
  /// (Algorithm 1 line 12). Exposed for direct testing.
  static void segment_swap_crossover(Genome& a, Genome& b, Rng& rng);

  [[nodiscard]] const GaConfig& config() const { return config_; }

 private:
  GaConfig config_;
};

}  // namespace gqa
