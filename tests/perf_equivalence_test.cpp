// Equivalence guarantees of the performance engine: multi-threaded and
// memoized GA runs must be bit-identical to the serial path, the prefix-sum
// objective must agree with the naive per-code scan, and the batched kernel
// APIs must reproduce per-element evaluation exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "gqa/gqa_lut.h"
#include "gqa/objective.h"
#include "kernel/int_pwl_unit.h"
#include "kernel/multirange_unit.h"
#include "pwl/fit_grid.h"
#include "tfm/nonlinear_provider.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqa {
namespace {

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(round + 1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), round + 1);
  }
}

// ------------------------------------------------ GA threading + memoize --

GqaConfig quick_fit_config(int num_threads, bool memoize) {
  GqaConfig cfg = GqaConfig::preset(Op::kGelu, 8,
                                    MutationKind::kRoundingMutation);
  cfg.ga.population_size = 20;
  cfg.ga.generations = 25;
  cfg.ga.seed = 0xABCD;
  cfg.ga.num_threads = num_threads;
  cfg.ga.memoize_fitness = memoize;
  cfg.fitness = GqaConfig::Fitness::kDeployedMean;  // exercises the objective
  return cfg;
}

void expect_identical_fits(const GqaFitResult& a, const GqaFitResult& b) {
  EXPECT_EQ(a.ga.best, b.ga.best);
  EXPECT_EQ(a.ga.best_fitness, b.ga.best_fitness);
  EXPECT_EQ(a.ga.history, b.ga.history);
  EXPECT_EQ(a.ga.evaluations, b.ga.evaluations);
  EXPECT_EQ(a.fxp_table.breakpoints, b.fxp_table.breakpoints);
  EXPECT_EQ(a.fxp_table.slopes, b.fxp_table.slopes);
  EXPECT_EQ(a.fxp_table.intercepts, b.fxp_table.intercepts);
  ASSERT_EQ(a.per_scale.size(), b.per_scale.size());
  for (std::size_t i = 0; i < a.per_scale.size(); ++i) {
    EXPECT_EQ(a.per_scale[i].breakpoints, b.per_scale[i].breakpoints);
    EXPECT_EQ(a.per_scale[i].deployed_mse, b.per_scale[i].deployed_mse);
  }
}

TEST(GaParallel, FourThreadsBitIdenticalToSerial) {
  const GqaFitResult serial = fit_gqa_lut(quick_fit_config(1, false));
  const GqaFitResult threaded = fit_gqa_lut(quick_fit_config(4, false));
  expect_identical_fits(serial, threaded);
}

TEST(GaParallel, MemoizationBitIdenticalAndHitsCache) {
  const GqaFitResult plain = fit_gqa_lut(quick_fit_config(1, false));
  const GqaFitResult memoized = fit_gqa_lut(quick_fit_config(1, true));
  expect_identical_fits(plain, memoized);
  // Elite re-injection alone guarantees recurring genomes.
  EXPECT_GT(memoized.ga.cache_hits, 0);
  EXPECT_EQ(plain.ga.cache_hits, 0);
  EXPECT_EQ(memoized.ga.evaluations, plain.ga.evaluations);
}

TEST(GaParallel, ThreadsPlusMemoizationBitIdentical) {
  const GqaFitResult serial = fit_gqa_lut(quick_fit_config(1, false));
  const GqaFitResult fast = fit_gqa_lut(quick_fit_config(4, true));
  expect_identical_fits(serial, fast);
}

TEST(GaConfigValidation, RejectsZeroThreads) {
  GaConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(GeneticOptimizer{cfg}, ContractViolation);
}

// -------------------------------------------- prefix-sum objective check --

TEST(ObjectivePrefixSum, MatchesNaiveScanAcrossRandomGenomes) {
  const OpInfo& info = op_info(Op::kGelu);
  const FitGrid grid = FitGrid::make(info.f, info.range_lo, info.range_hi);
  const QuantAwareObjective objective(grid, 5, {0, 1, 2, 3, 4, 5, 6});

  Rng rng(0xFEED);
  for (int trial = 0; trial < 64; ++trial) {
    Genome g(7);
    for (double& p : g) p = rng.uniform(info.range_lo, info.range_hi);
    repair_breakpoints(g, info.range_lo, info.range_hi, 0.01);

    const std::vector<double> fast = objective.per_scale_mse(g);
    const std::vector<double> naive = objective.per_scale_mse_naive(g);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      // The closed-form SSE is algebraically exact; only double rounding
      // differs from the sequential scan.
      EXPECT_NEAR(fast[i], naive[i], 1e-9 * std::max(1.0, naive[i]))
          << "trial=" << trial << " scale index " << i;
    }
  }
}

TEST(ObjectivePrefixSum, HandlesCollapsedAndBoundaryBreakpoints) {
  const OpInfo& info = op_info(Op::kExp);
  const FitGrid grid = FitGrid::make(info.f, info.range_lo, info.range_hi);
  const QuantAwareObjective objective(grid, 5, {0, 2, 4, 6});

  // Breakpoints that quantize onto the same code at coarse scales, plus
  // breakpoints pinned to the range edges.
  const std::vector<Genome> genomes = {
      {-7.99, -7.9, -7.8, -0.2, -0.1, -0.05, -0.01},
      {-6.0, -5.0, -4.0, -3.0, -2.0, -1.0, -0.5},
      {-7.5, -7.49, -7.48, -7.47, -7.46, -7.45, -7.44},
  };
  for (const Genome& g : genomes) {
    const std::vector<double> fast = objective.per_scale_mse(g);
    const std::vector<double> naive = objective.per_scale_mse_naive(g);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-9 * std::max(1.0, naive[i]));
    }
  }
}

TEST(ObjectivePrefixSum, OperatorAveragesPerScale) {
  const OpInfo& info = op_info(Op::kGelu);
  const FitGrid grid = FitGrid::make(info.f, info.range_lo, info.range_hi);
  const QuantAwareObjective objective(grid, 5, {0, 3, 6});
  const Genome g = {-3.0, -2.0, -1.0, -0.5, 0.5, 1.0, 2.0};
  const std::vector<double> per = objective.per_scale_mse(g);
  double mean = 0.0;
  for (double m : per) mean += m;
  mean /= static_cast<double>(per.size());
  EXPECT_DOUBLE_EQ(objective(g), mean);
}

// ------------------------------------------------- batched kernel checks --

PwlTable gelu_like_table() {
  PwlTable t;
  t.breakpoints = {-2.75, -1.5, -0.75, -0.25, 0.25, 1.0, 2.0};
  t.slopes = {0.0, -0.0625, 0.03125, 0.34375, 0.65625, 0.96875, 1.03125, 1.0};
  t.intercepts = {0.0, -0.15625, 0.0, 0.21875, 0.0, -0.09375, -0.15625, 0.0};
  return t;
}

TEST(BatchedKernel, EvalCodesBitIdenticalOverFullInputRange) {
  for (int scale_exp : {0, -2, -4, -6}) {
    const QuantParams input{std::ldexp(1.0, scale_exp), 8, true};
    const QuantizedPwlTable qt =
        quantize_table(gelu_like_table(), input, 5, 8);
    const IntPwlUnit unit(qt);

    std::vector<std::int64_t> codes;
    for (std::int64_t q = -128; q <= 127; ++q) codes.push_back(q);
    std::vector<std::int64_t> batch(codes.size());
    std::vector<double> batch_real(codes.size());
    unit.eval_codes(codes, batch);
    unit.eval_reals_from_codes(codes, batch_real);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], unit.eval_code(codes[i]))
          << "q=" << codes[i] << " S=2^" << scale_exp;
      EXPECT_EQ(batch_real[i], unit.eval_real_from_code(codes[i]));
    }
  }
}

TEST(BatchedKernel, SixteenBitBusUsesDenseTableBitIdentically) {
  const QuantParams input{std::ldexp(1.0, -8), 16, true};
  IntPwlUnitConfig cfg;
  cfg.acc_bits = 32;
  const QuantizedPwlTable qt = quantize_table(gelu_like_table(), input, 5, 8);
  const IntPwlUnit unit(qt, cfg);
  std::vector<std::int64_t> codes;
  for (std::int64_t q = -32768; q <= 32767; q += 7) codes.push_back(q);
  std::vector<std::int64_t> batch(codes.size());
  unit.eval_codes(codes, batch);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(batch[i], unit.eval_code(codes[i])) << "q=" << codes[i];
  }
}

TEST(BatchedKernel, EvalCodesEnforcesBusWidthAndSizes) {
  const QuantParams input{0.25, 8, true};
  const IntPwlUnit unit(quantize_table(gelu_like_table(), input, 5, 8));
  std::vector<std::int64_t> codes = {0, 128};
  std::vector<std::int64_t> out(2);
  EXPECT_THROW(unit.eval_codes(codes, out), ContractViolation);
  std::vector<std::int64_t> short_out(1);
  codes = {0, 1};
  EXPECT_THROW(unit.eval_codes(codes, short_out), ContractViolation);
}

TEST(BatchedKernel, MultiRangeBatchBitIdentical) {
  for (Op op : {Op::kDiv, Op::kRsqrt}) {
    const Approximator approx = Approximator::fit(op, Method::kGqaNoRm, {});
    const MultiRangeUnit unit = approx.make_multirange_unit();
    std::vector<std::int64_t> codes;
    for (std::int64_t c = 1 << 12; c <= (1 << 24); c += 100003) {
      codes.push_back(c);
    }
    std::vector<double> batch(codes.size());
    unit.eval_fxp_batch(codes, 16, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], unit.eval_fxp(codes[i], 16))
          << op_info(op).name << " code=" << codes[i];
    }
  }
}

// ---------------------------------------------- provider batched parity --

TEST(ProviderBatch, ActivationBatchesBitIdenticalToScalar) {
  const auto provider = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kGelu, Op::kExp});

  std::vector<std::int64_t> codes;
  for (std::int64_t q = -160; q <= 160; ++q) codes.push_back(q);  // saturates
  std::vector<double> batch(codes.size());
  for (int sx : {0, -3, -6}) {
    provider.gelu_codes(codes, sx, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], provider.gelu_code(codes[i], sx));
    }
    provider.exp_codes(codes, sx, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], provider.exp_code(codes[i], sx));
    }
    // HSWISH is not replaced -> exact backend path must agree too.
    provider.hswish_codes(codes, sx, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], provider.hswish_code(codes[i], sx));
    }
  }
}

TEST(ProviderBatch, WideRangeBatchesBitIdenticalToScalar) {
  const auto provider = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kDiv, Op::kRsqrt});
  std::vector<std::int64_t> codes;
  for (std::int64_t c = 1; c <= (1 << 22); c = c * 3 + 1) codes.push_back(c);
  std::vector<double> batch(codes.size());
  provider.recip_fxp_batch(codes, 16, batch);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(batch[i], provider.recip_fxp(codes[i], 16));
  }
  provider.rsqrt_fxp_batch(codes, 16, batch);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(batch[i], provider.rsqrt_fxp(codes[i], 16));
  }

  std::vector<std::int64_t> bad = {0};
  std::vector<double> out(1);
  EXPECT_THROW(provider.recip_fxp_batch(bad, 16, out), ContractViolation);
  EXPECT_THROW(provider.rsqrt_fxp_batch(bad, 16, out), ContractViolation);
}

}  // namespace
}  // namespace gqa
