#include "gqa/objective.h"

#include <algorithm>
#include <cmath>

#include "numerics/rounding.h"
#include "numerics/saturate.h"
#include "util/contracts.h"

namespace gqa {

QuantAwareObjective::QuantAwareObjective(const FitGrid& grid, int lambda,
                                         std::vector<int> scale_exps,
                                         int input_bits)
    : grid_(&grid),
      lambda_(lambda),
      input_bits_(input_bits),
      scale_exps_(std::move(scale_exps)) {
  GQA_EXPECTS_MSG(!scale_exps_.empty(), "need at least one deployment scale");
  GQA_EXPECTS(lambda_ >= 0 && lambda_ <= 16);
  GQA_EXPECTS(input_bits_ >= 4 && input_bits_ <= 32);

  for (int s : scale_exps_) {
    ScaleGrid sg;
    sg.exponent = s;
    sg.scale = std::ldexp(1.0, -s);
    const std::int64_t q_min = int_min(input_bits_, true);
    const std::int64_t q_max = int_max(input_bits_, true);
    const auto q_lo = std::max(
        q_min, static_cast<std::int64_t>(std::ceil(grid.lo() / sg.scale)));
    const auto q_hi = std::min(
        q_max, static_cast<std::int64_t>(std::floor(grid.hi() / sg.scale)));
    GQA_EXPECTS_MSG(q_lo <= q_hi,
                    "no integer codes inside the range at this scale");
    for (std::int64_t q = q_lo; q <= q_hi; ++q) {
      const double x = sg.scale * static_cast<double>(q);
      sg.xs.push_back(x);
      sg.fs.push_back(grid.target()(x));
    }
    scale_grids_.push_back(std::move(sg));
  }
}

double QuantAwareObjective::mse_on(const ScaleGrid& sg,
                                   const std::vector<double>& bounds,
                                   const std::vector<double>& ks,
                                   const std::vector<double>& bs) const {
  double sse = 0.0;
  std::size_t seg = 0;
  for (std::size_t i = 0; i < sg.xs.size(); ++i) {
    const double x = sg.xs[i];
    while (seg < bounds.size() && x >= bounds[seg]) ++seg;
    const double err = ks[seg] * x + bs[seg] - sg.fs[i];
    sse += err * err;
  }
  return sse / static_cast<double>(sg.xs.size());
}

std::vector<double> QuantAwareObjective::per_scale_mse(
    const Genome& breakpoints) const {
  const std::size_t nseg = breakpoints.size() + 1;
  // Deployed (k, b): least squares on unquantized segments, λ-rounded.
  std::vector<double> ks(nseg);
  std::vector<double> bs(nseg);
  std::size_t lo_idx = 0;
  for (std::size_t i = 0; i < nseg; ++i) {
    const std::size_t hi_idx = i < breakpoints.size()
                                   ? grid_->lower_index(breakpoints[i])
                                   : grid_->size();
    GQA_EXPECTS_MSG(hi_idx >= lo_idx, "breakpoints must be sorted");
    const SegmentFit fit = grid_->fit_segment(lo_idx, hi_idx);
    ks[i] = round_to_grid(fit.k, lambda_);
    bs[i] = round_to_grid(fit.b, lambda_);
    lo_idx = hi_idx;
  }

  std::vector<double> out;
  out.reserve(scale_grids_.size());
  std::vector<double> bounds(breakpoints.size());
  for (const ScaleGrid& sg : scale_grids_) {
    // Eq. 3: p̃ = clip(round(p / S), Qn, Qp), compared in the code domain;
    // equivalently the boundary sits at p̃ · S in x space.
    for (std::size_t i = 0; i < breakpoints.size(); ++i) {
      const std::int64_t code = saturate(
          round_to_int(breakpoints[i] / sg.scale), input_bits_, true);
      bounds[i] = sg.scale * static_cast<double>(code);
    }
    out.push_back(mse_on(sg, bounds, ks, bs));
  }
  return out;
}

double QuantAwareObjective::operator()(const Genome& breakpoints) const {
  const std::vector<double> mses = per_scale_mse(breakpoints);
  double total = 0.0;
  for (double m : mses) total += m;
  return total / static_cast<double>(mses.size());
}

double QuantAwareObjective::deployed_mse(const PwlTable& fxp_table,
                                         int scale_exp) const {
  const auto it = std::find_if(
      scale_grids_.begin(), scale_grids_.end(),
      [scale_exp](const ScaleGrid& sg) { return sg.exponent == scale_exp; });
  GQA_EXPECTS_MSG(it != scale_grids_.end(), "scale not in the objective set");

  std::vector<double> bounds(fxp_table.breakpoints.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::int64_t code = saturate(
        round_to_int(fxp_table.breakpoints[i] / it->scale), input_bits_, true);
    bounds[i] = it->scale * static_cast<double>(code);
  }
  return mse_on(*it, bounds, fxp_table.slopes, fxp_table.intercepts);
}

}  // namespace gqa
