file(REMOVE_RECURSE
  "CMakeFiles/table3_avg_mse.dir/bench/table3_avg_mse.cpp.o"
  "CMakeFiles/table3_avg_mse.dir/bench/table3_avg_mse.cpp.o.d"
  "bench/table3_avg_mse"
  "bench/table3_avg_mse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_avg_mse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
