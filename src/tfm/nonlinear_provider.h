// Pluggable non-linearity backend for the quantized Transformer modules.
//
// The "None" baseline of Tables 4/5 computes every non-linear op exactly on
// dequantized values; each replacement row swaps one (or all) op(s) for the
// bit-accurate pwl kernels produced by a fitting method. The provider owns
// the fitted approximators and a cache of per-scale hardware units.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>

#include "core/approximator.h"

namespace gqa::tfm {

class NonlinearProvider {
 public:
  /// Exact reference backend (the fine-tuning baseline "None").
  [[nodiscard]] static NonlinearProvider exact();

  /// pwl backend: `replaced` ops go through `method`-fitted kernels, all
  /// other ops stay exact — reproducing the per-row replacements of
  /// Tables 4/5. `entries` matches the paper's 8-entry deployment.
  [[nodiscard]] static NonlinearProvider with_method(Method method,
                                                    std::set<Op> replaced,
                                                    int entries = 8);

  [[nodiscard]] bool replaces(Op op) const { return replaced_.count(op) > 0; }

  /// exp(S·q) for an integer code with S = 2^scale_exp (Softmax numerator).
  [[nodiscard]] double exp_code(std::int64_t q, int scale_exp) const;

  /// GELU(S·q) / HSWISH(S·q) for integer activation codes.
  [[nodiscard]] double gelu_code(std::int64_t q, int scale_exp) const;
  [[nodiscard]] double hswish_code(std::int64_t q, int scale_exp) const;

  /// 1/x for a fixed-point value code·2^-frac (Softmax denominator,
  /// linear-attention normalizer). Uses the Table 2 multi-range unit.
  [[nodiscard]] double recip_fxp(std::int64_t code, int frac) const;

  /// 1/sqrt(x) for a fixed-point value code·2^-frac (LayerNorm).
  [[nodiscard]] double rsqrt_fxp(std::int64_t code, int frac) const;

  /// Batched activation paths, bit-identical to the per-element calls:
  /// the unit-cache lookup happens once per span instead of once per code,
  /// and the element loop runs through IntPwlUnit's dense segment table.
  void exp_codes(std::span<const std::int64_t> q, int scale_exp,
                 std::span<double> out) const;
  void gelu_codes(std::span<const std::int64_t> q, int scale_exp,
                  std::span<double> out) const;
  void hswish_codes(std::span<const std::int64_t> q, int scale_exp,
                    std::span<double> out) const;

  /// Batched wide-range paths (shared `frac`), bit-identical to the
  /// per-element recip_fxp / rsqrt_fxp.
  void recip_fxp_batch(std::span<const std::int64_t> codes, int frac,
                       std::span<double> out) const;
  void rsqrt_fxp_batch(std::span<const std::int64_t> codes, int frac,
                       std::span<double> out) const;

 private:
  NonlinearProvider() = default;

  [[nodiscard]] const IntPwlUnit& unit_for(Op op, int scale_exp) const;
  [[nodiscard]] const MultiRangeUnit& multirange_for(Op op) const;
  [[nodiscard]] double act_code(Op op, std::int64_t q, int scale_exp) const;
  void act_codes(Op op, std::span<const std::int64_t> q, int scale_exp,
                 std::span<double> out) const;
  void wide_fxp_batch(Op op, std::span<const std::int64_t> codes, int frac,
                      std::span<double> out) const;

  std::optional<Method> method_;  ///< nullopt = exact backend
  std::set<Op> replaced_;
  int entries_ = 8;
  std::map<Op, Approximator> approx_;
  // Unit caches are deployment artifacts, not logical state.
  mutable std::map<std::pair<int, int>, IntPwlUnit> unit_cache_;
  mutable std::map<int, MultiRangeUnit> multirange_cache_;
};

}  // namespace gqa::tfm
