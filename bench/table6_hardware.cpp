// Table 6: area and power of the LUT-pwl hardware units under the
// calibrated 28-nm component model, for INT8/INT16/INT32/FP32 at 8 and 16
// entries, plus the savings and entry-scaling ratios the paper reports.
// Also emits the Verilog RTL of the INT8 unit (the artifact the paper
// synthesizes with Design Compiler).
#include "bench_util.h"
#include "hw/pwl_unit_design.h"
#include "hw/verilog_emitter.h"

using namespace gqa;
using namespace gqa::hw;

int main() {
  std::printf("== Table 6: hardware costs (28-nm class, 500 MHz) ==\n");
  std::vector<SynthReport> rows;
  for (Precision p : all_precisions()) {
    for (int entries : {8, 16}) {
      rows.push_back(synthesize(PwlUnitSpec{p, entries, 8}));
    }
  }

  TablePrinter table({"Precision", "Entry", "Area (um2)", "Power (mW)",
                      "Paper area", "Paper power"});
  table.set_title("Table 6: LUT-pwl unit costs");
  const std::map<std::pair<std::string, int>, std::pair<double, double>>
      paper = {{{"INT8", 8}, {961, 0.40}},   {{"INT8", 16}, {1640, 0.78}},
               {{"INT16", 8}, {2080, 0.85}}, {{"INT16", 16}, {3521, 1.47}},
               {{"INT32", 8}, {5243, 1.93}}, {{"INT32", 16}, {8040, 3.14}},
               {{"FP32", 8}, {5135, 2.02}},  {{"FP32", 16}, {7913, 3.47}}};
  for (const SynthReport& r : rows) {
    const auto key = std::make_pair(precision_name(r.spec.precision),
                                    r.spec.entries);
    table.add_row({precision_name(r.spec.precision),
                   format("%d", r.spec.entries), format("%.0f", r.area_um2),
                   fixed(r.power_mw, 2), format("%.0f", paper.at(key).first),
                   fixed(paper.at(key).second, 2)});
  }
  bench::emit(table, "table6");

  auto find = [&rows](Precision p, int e) -> const SynthReport& {
    for (const SynthReport& r : rows) {
      if (r.spec.precision == p && r.spec.entries == e) return r;
    }
    throw ContractViolation("missing synth row");
  };
  const SynthReport& int8_8 = find(Precision::kInt8, 8);
  const SynthReport& int8_16 = find(Precision::kInt8, 16);
  const SynthReport& int32_8 = find(Precision::kInt32, 8);
  const SynthReport& fp32_8 = find(Precision::kFp32, 8);
  std::printf("\nHeadline claims:\n");
  std::printf("  INT8 vs FP32  : area -%.1f%% (paper 81.3%%), power -%.1f%% (paper 80.2%%)\n",
              100.0 * (1.0 - int8_8.area_um2 / fp32_8.area_um2),
              100.0 * (1.0 - int8_8.power_mw / fp32_8.power_mw));
  std::printf("  INT8 vs INT32 : area -%.1f%% (paper 81.7%%), power -%.1f%% (paper 79.3%%)\n",
              100.0 * (1.0 - int8_8.area_um2 / int32_8.area_um2),
              100.0 * (1.0 - int8_8.power_mw / int32_8.power_mw));
  std::printf("  16-entry vs 8 : area %.2fx (paper 1.71x), power %.2fx (paper 1.95x)\n",
              int8_16.area_um2 / int8_8.area_um2,
              int8_16.power_mw / int8_8.power_mw);

  // Emit RTL for the INT8 8-entry GELU unit.
  FitOptions fopts;
  const Approximator approx = Approximator::fit(Op::kGelu, Method::kGqaRm, fopts);
  const QuantizedPwlTable qt =
      approx.quantized(QuantParams{std::ldexp(1.0, -4), 8, true});
  (void)std::system("mkdir -p bench_results");
  write_file("bench_results/gqa_pwl_unit.v", emit_pwl_unit(qt));
  write_file("bench_results/gqa_pwl_unit_tb.v", emit_testbench(qt));
  std::printf("\nVerilog written to bench_results/gqa_pwl_unit{,_tb}.v\n");
  return 0;
}
