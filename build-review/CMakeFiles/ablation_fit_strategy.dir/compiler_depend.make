# Empty compiler generated dependencies file for ablation_fit_strategy.
# This may be replaced when dependencies are built.
