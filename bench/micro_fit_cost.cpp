// Microbenchmark (google-benchmark): wall-clock cost of fitting one
// operator with each method. Highlights the paper's data-budget claim:
// GQA-LUT needs only the 0.35-0.8K-point fitness grid while NN-LUT trains
// on 100K samples. The *_Seed* / *_Fast* pair and the objective micros
// quantify the PR-1 fitness engine: prefix-sum deployed MSE, fitness
// memoization, and multi-threaded evaluation versus the seed serial scan.
#include <benchmark/benchmark.h>

#include "gqa/gqa_lut.h"
#include "gqa/objective.h"
#include "nnlut/nn_lut.h"
#include "util/rng.h"

namespace {

using namespace gqa;

void BM_Fit_GqaRm_Gelu(benchmark::State& state) {
  for (auto _ : state) {
    GqaConfig config = GqaConfig::preset(Op::kGelu, 8,
                                         MutationKind::kRoundingMutation);
    config.ga.seed = 0xF00;
    benchmark::DoNotOptimize(fit_gqa_lut(config).fxp_mse);
  }
}
BENCHMARK(BM_Fit_GqaRm_Gelu)->Unit(benchmark::kMillisecond);

// Seed-vs-engine pairs: the seed path scores the deployed-mean objective
// with the per-code scan, serially and without memoization; the engine
// path uses prefix sums + fitness memo + 4 evaluation threads. INT8 uses
// the Table 1 activation grids; INT16 the W16A16 deployment grids, whose
// ~200x larger code lattice is where O(codes) -> O(segments) dominates.
GqaConfig engine_config(bool fast, int input_bits) {
  GqaConfig config = GqaConfig::preset(Op::kGelu, 8,
                                       MutationKind::kRoundingMutation);
  config.ga.seed = 0xF00;
  config.fitness = GqaConfig::Fitness::kDeployedMean;
  config.input_bits = input_bits;
  if (input_bits >= 16) {
    config.deployment_scale_exps = {8, 9, 10, 11, 12, 13, 14};
    config.ga.generations = 50;
  }
  config.use_naive_objective = !fast;
  config.ga.memoize_fitness = fast;
  config.ga.num_threads = fast ? 4 : 1;
  return config;
}

void BM_Fit_GqaRm_Gelu_SeedSerial(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_gqa_lut(engine_config(false, 8)).fxp_mse);
  }
}
BENCHMARK(BM_Fit_GqaRm_Gelu_SeedSerial)->Unit(benchmark::kMillisecond);

void BM_Fit_GqaRm_Gelu_MemoThreads4(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_gqa_lut(engine_config(true, 8)).fxp_mse);
  }
}
BENCHMARK(BM_Fit_GqaRm_Gelu_MemoThreads4)->Unit(benchmark::kMillisecond);

void BM_Fit_GqaRm_Gelu_Int16_SeedSerial(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_gqa_lut(engine_config(false, 16)).fxp_mse);
  }
}
BENCHMARK(BM_Fit_GqaRm_Gelu_Int16_SeedSerial)->Unit(benchmark::kMillisecond);

void BM_Fit_GqaRm_Gelu_Int16_MemoThreads4(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_gqa_lut(engine_config(true, 16)).fxp_mse);
  }
}
BENCHMARK(BM_Fit_GqaRm_Gelu_Int16_MemoThreads4)->Unit(benchmark::kMillisecond);

// Objective micro: naive per-code scan vs prefix-sum closed form over the
// same deterministic genome stream.
struct ObjectiveFixture {
  FitGrid grid;
  QuantAwareObjective objective;
  std::vector<Genome> genomes;

  explicit ObjectiveFixture(int input_bits)
      : grid(FitGrid::make(op_info(Op::kGelu).f, -4.0, 4.0)),
        objective(grid, 5,
                  input_bits >= 16
                      ? std::vector<int>{8, 9, 10, 11, 12, 13, 14}
                      : std::vector<int>{0, 1, 2, 3, 4, 5, 6},
                  input_bits) {
    Rng rng(0x5EED);
    for (int i = 0; i < 64; ++i) {
      Genome g(7);
      for (double& p : g) p = rng.uniform(-4.0, 4.0);
      repair_breakpoints(g, -4.0, 4.0, 0.01);
      genomes.push_back(std::move(g));
    }
  }
};

const ObjectiveFixture& objective_fixture(int input_bits) {
  static const ObjectiveFixture fixture8(8);
  static const ObjectiveFixture fixture16(16);
  return input_bits >= 16 ? fixture16 : fixture8;
}

template <bool kNaive, int kBits>
void BM_Objective_PerScaleMse(benchmark::State& state) {
  const ObjectiveFixture& f = objective_fixture(kBits);
  std::size_t i = 0;
  for (auto _ : state) {
    const Genome& g = f.genomes[i % f.genomes.size()];
    if constexpr (kNaive) {
      benchmark::DoNotOptimize(f.objective.per_scale_mse_naive(g));
    } else {
      benchmark::DoNotOptimize(f.objective.per_scale_mse(g));
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Objective_PerScaleMse<true, 8>)->Name("BM_Objective_Naive_Int8");
BENCHMARK(BM_Objective_PerScaleMse<false, 8>)
    ->Name("BM_Objective_PrefixSum_Int8");
BENCHMARK(BM_Objective_PerScaleMse<true, 16>)
    ->Name("BM_Objective_Naive_Int16");
BENCHMARK(BM_Objective_PerScaleMse<false, 16>)
    ->Name("BM_Objective_PrefixSum_Int16");

void BM_Fit_GqaGaussian_Gelu(benchmark::State& state) {
  for (auto _ : state) {
    GqaConfig config = GqaConfig::preset(Op::kGelu, 8, MutationKind::kGaussian);
    config.ga.seed = 0xF00;
    benchmark::DoNotOptimize(fit_gqa_lut(config).fxp_mse);
  }
}
BENCHMARK(BM_Fit_GqaGaussian_Gelu)->Unit(benchmark::kMillisecond);

void BM_Fit_NnLut_Gelu(benchmark::State& state) {
  for (auto _ : state) {
    NnLutConfig config = NnLutConfig::preset(Op::kGelu, 8);
    config.seed = 0xF00;
    benchmark::DoNotOptimize(fit_nn_lut(config).fxp_mse);
  }
}
BENCHMARK(BM_Fit_NnLut_Gelu)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
