#include "util/fault_injection.h"

#include <cstdlib>

#include "util/contracts.h"
#include "util/env.h"
#include "util/serving_error.h"
#include "util/strings.h"

namespace gqa::fault {

namespace {

/// SplitMix64 finalizer: decorrelates (seed, draw index) into a uniform
/// 64-bit hash, so each point's decision stream is deterministic in its
/// seed and draw count, independent of which thread draws.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double unit_interval(std::uint64_t h) {
  // Top 53 bits -> [0, 1), the standard double-from-bits construction.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int point_index(Point point) { return static_cast<int>(point); }

Point point_from_name(const std::string& name) {
  for (int i = 0; i < kPointCount; ++i) {
    const Point p = static_cast<Point>(i);
    if (name == point_name(p)) return p;
  }
  GQA_EXPECTS_MSG(false, "GQA_FAULT_SPEC names unknown injection point '" +
                             name + "'");
  return Point::kAdmission;  // unreachable
}

}  // namespace

const char* point_name(Point point) {
  switch (point) {
    case Point::kAdmission:
      return "admission";
    case Point::kScheduler:
      return "scheduler";
    case Point::kBackend:
      return "backend";
    case Point::kWarmup:
      return "warmup";
    case Point::kLoad:
      return "load";
    case Point::kCacheRead:
      return "cache_read";
    case Point::kCacheWrite:
      return "cache_write";
    case Point::kStreamAdmission:
      return "stream_admission";
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  configure(env_string("GQA_FAULT_SPEC", ""));
}

void FaultInjector::configure(const std::string& spec) {
  // Disarm first (the release below republishes), then reset every point.
  // The header contract says configure() never races with draws, so the
  // orderings here exist for the NEXT reader: the final release store of
  // any_armed_ is what makes the freshly written plain armed/prob/seed
  // fields visible to threads that acquire-load enabled(). Audited: the
  // paired stores must stay release (relaxed would publish the flag
  // without the point table behind it).
  any_armed_.store(false, std::memory_order_release);
  for (PointState& state : points_) {
    state.armed = false;
    state.prob = 0.0;
    state.seed = 0;
    state.draws.store(0, std::memory_order_relaxed);
    state.fired.store(0, std::memory_order_relaxed);
  }
  spec_ = spec;
  if (trim(spec).empty()) return;

  bool any = false;
  for (const std::string& entry : split(spec, ',')) {
    const std::vector<std::string> fields = split(trim(entry), ':');
    GQA_EXPECTS_MSG(fields.size() == 3,
                    "GQA_FAULT_SPEC entries must be point:prob:seed, got '" +
                        entry + "'");
    PointState& state = points_[point_index(point_from_name(trim(fields[0])))];
    char* end = nullptr;
    const std::string prob_str = trim(fields[1]);
    state.prob = std::strtod(prob_str.c_str(), &end);
    GQA_EXPECTS_MSG(end != prob_str.c_str() && *end == '\0' &&
                        state.prob > 0.0 && state.prob <= 1.0,
                    "GQA_FAULT_SPEC probability must be in (0, 1], got '" +
                        prob_str + "'");
    const std::string seed_str = trim(fields[2]);
    end = nullptr;
    state.seed = std::strtoull(seed_str.c_str(), &end, 10);
    // strtoull wraps "-1" silently; reject the sign explicitly.
    GQA_EXPECTS_MSG(!seed_str.empty() && seed_str[0] != '-' &&
                        end != seed_str.c_str() && *end == '\0',
                    "GQA_FAULT_SPEC seed must be a non-negative integer, "
                    "got '" +
                        seed_str + "'");
    state.armed = true;
    any = true;
  }
  any_armed_.store(any, std::memory_order_release);
}

bool FaultInjector::should_inject(Point point) {
  // Callers reach here through enabled()'s acquire load (see triggered()),
  // which is what makes the plain armed/prob/seed reads below safe.
  PointState& state = points_[point_index(point)];
  if (!state.armed) return false;
  // memory_order_relaxed is sufficient for both counters: atomic RMWs on a
  // single object have a total modification order even when relaxed, so
  // every draw still gets a unique index n and the per-point decision
  // stream stays deterministic in (seed, n) no matter which thread draws.
  // The counters publish no other data — nothing downstream is ordered
  // against them.
  const std::uint64_t n = state.draws.fetch_add(1, std::memory_order_relaxed);
  const double u =
      unit_interval(mix(state.seed * 0x9E3779B97F4A7C15ULL + n + 1));
  if (u >= state.prob) return false;
  state.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultInjector::injected(Point point) const {
  return points_[point_index(point)].fired.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t sum = 0;
  for (const PointState& state : points_) {
    sum += state.fired.load(std::memory_order_relaxed);
  }
  return sum;
}

void throw_injected(Point point) {
  const std::string message =
      std::string("injected fault at point '") + point_name(point) + "'";
  switch (point) {
    case Point::kAdmission:
    case Point::kStreamAdmission:
      throw ServingError(ServingErrorCode::kAdmissionRejected, message);
    case Point::kLoad:
    case Point::kCacheRead:
      throw ServingError(ServingErrorCode::kArtifactCorrupt, message);
    case Point::kScheduler:
    case Point::kBackend:
    case Point::kWarmup:
    case Point::kCacheWrite:
      break;
  }
  throw ServingError(ServingErrorCode::kBackendTransient, message);
}

FaultScope::FaultScope(const std::string& spec)
    : previous_(FaultInjector::instance().spec()) {
  FaultInjector::instance().configure(spec);
}

FaultScope::~FaultScope() { FaultInjector::instance().configure(previous_); }

}  // namespace gqa::fault
