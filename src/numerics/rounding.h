// Rounding primitives used across quantization and fixed-point conversion.
// The paper's ⌊·⌉ operator is round-to-nearest; ties away from zero matches
// the behaviour of std::lround and of the RTL rounding stage we emit.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "util/contracts.h"

namespace gqa {

/// Exact power of two 2^e for normal-range exponents; same value as
/// std::ldexp(1.0, e) without the libm call (this sits on the GA's
/// per-genome hot path via round_to_grid).
[[nodiscard]] inline double exact_po2(int exponent) {
  GQA_EXPECTS(exponent >= -1022 && exponent <= 1023);
  return std::bit_cast<double>(
      static_cast<std::uint64_t>(1023 + exponent) << 52);
}

enum class RoundMode {
  kNearestAway,  ///< round half away from zero (default, ⌊·⌉ in the paper)
  kNearestEven,  ///< round half to even (IEEE-754 style)
  kFloor,        ///< truncate toward negative infinity
  kCeil,         ///< toward positive infinity
  kTowardZero,   ///< truncate toward zero
};

namespace detail {

/// llround without the libm call: truncate (one cvttsd2si), then bump on a
/// half-or-more fraction. value - trunc(value) is exact in IEEE-754, so
/// this matches std::llround (round half away from zero) bit for bit.
[[nodiscard]] inline std::int64_t llround_away(double value) {
  if (std::abs(value) >= 9007199254740992.0) {  // 2^53: already integral
    return static_cast<std::int64_t>(value);
  }
  const auto i = static_cast<std::int64_t>(value);
  const double frac = value - static_cast<double>(i);
  return i + (frac >= 0.5 ? 1 : 0) - (frac <= -0.5 ? 1 : 0);
}

}  // namespace detail

/// Rounds `value` to an integer according to `mode`.
[[nodiscard]] inline std::int64_t round_to_int(double value,
                                               RoundMode mode = RoundMode::kNearestAway) {
  GQA_EXPECTS_MSG(std::isfinite(value), "cannot round non-finite value");
  switch (mode) {
    case RoundMode::kNearestAway:
      return detail::llround_away(value);
    case RoundMode::kNearestEven: {
      const double nearest = std::nearbyint(value);  // honors FE_TONEAREST
      return static_cast<std::int64_t>(nearest);
    }
    case RoundMode::kFloor:
      return static_cast<std::int64_t>(std::floor(value));
    case RoundMode::kCeil:
      return static_cast<std::int64_t>(std::ceil(value));
    case RoundMode::kTowardZero:
      return static_cast<std::int64_t>(std::trunc(value));
  }
  return 0;  // unreachable
}

/// Rounds `value` onto the grid of stride 2^-frac_bits (the paper's
/// ⌊v·2^λ⌉ / 2^λ fixed-point conversion).
[[nodiscard]] inline double round_to_grid(double value, int frac_bits,
                                          RoundMode mode = RoundMode::kNearestAway) {
  const double scale = exact_po2(frac_bits);  // 2^frac_bits
  return static_cast<double>(round_to_int(value * scale, mode)) / scale;
}

/// Right-shift with round-to-nearest-away on the shifted-out bits; the
/// behaviour of a hardware rounding shifter. `shift` must be >= 0.
[[nodiscard]] inline std::int64_t shift_round(std::int64_t value, int shift) {
  GQA_EXPECTS(shift >= 0 && shift < 63);
  if (shift == 0) return value;
  const std::int64_t offset = std::int64_t{1} << (shift - 1);
  if (value >= 0) return (value + offset) >> shift;
  // Arithmetic shift of negatives rounds toward -inf; bias to round half
  // away from zero.
  return -((-value + offset) >> shift);
}

}  // namespace gqa
