# Empty dependencies file for hw_explorer.
# This may be replaced when dependencies are built.
