file(REMOVE_RECURSE
  "CMakeFiles/int_softmax_demo.dir/examples/int_softmax_demo.cpp.o"
  "CMakeFiles/int_softmax_demo.dir/examples/int_softmax_demo.cpp.o.d"
  "examples/int_softmax_demo"
  "examples/int_softmax_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int_softmax_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
