#include "pwl/fit_grid.h"

#include <algorithm>
#include <cmath>

#include "numerics/rounding.h"
#include "util/contracts.h"

namespace gqa {

FitGrid FitGrid::make(const std::function<double(double)>& f, double lo,
                      double hi, double step) {
  GQA_EXPECTS_MSG(f != nullptr, "fit grid needs a target function");
  GQA_EXPECTS_MSG(std::isfinite(lo) && std::isfinite(hi) && lo < hi,
                  "fit range must be finite and non-empty");
  GQA_EXPECTS_MSG(step > 0.0, "grid step must be positive");

  FitGrid g;
  g.lo_ = lo;
  g.hi_ = hi;
  g.step_ = step;
  g.f_ = f;
  const auto count = static_cast<std::size_t>(std::floor((hi - lo) / step)) + 1;
  GQA_EXPECTS_MSG(count >= 4, "fit grid too coarse for the range");
  g.xs_.reserve(count);
  g.ys_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double x = lo + static_cast<double>(i) * step;
    const double y = f(x);
    GQA_EXPECTS_MSG(std::isfinite(y), "target function returned non-finite value");
    g.xs_.push_back(x);
    g.ys_.push_back(y);
  }

  const std::size_t n = g.xs_.size();
  g.sum_x_.assign(n + 1, 0.0);
  g.sum_xx_.assign(n + 1, 0.0);
  g.sum_y_.assign(n + 1, 0.0);
  g.sum_xy_.assign(n + 1, 0.0);
  g.sum_yy_.assign(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = g.xs_[i];
    const double y = g.ys_[i];
    g.sum_x_[i + 1] = g.sum_x_[i] + x;
    g.sum_xx_[i + 1] = g.sum_xx_[i] + x * x;
    g.sum_y_[i + 1] = g.sum_y_[i] + y;
    g.sum_xy_[i + 1] = g.sum_xy_[i] + x * y;
    g.sum_yy_[i + 1] = g.sum_yy_[i] + y * y;
  }
  return g;
}

std::size_t FitGrid::lower_index(double value) const {
  // The grid is uniform, so seed the answer arithmetically and fix up with
  // at most a couple of comparisons — exactly lower_bound's result (the
  // fix-up loops make the seed's rounding error irrelevant), without the
  // per-call binary search on the GA's per-genome hot path.
  const std::size_t n = xs_.size();
  double guess = (value - lo_) / step_ - 2.0;
  if (guess < 0.0) guess = 0.0;
  std::size_t idx = static_cast<double>(n) <= guess
                        ? n
                        : static_cast<std::size_t>(guess);
  while (idx < n && xs_[idx] < value) ++idx;
  while (idx > 0 && xs_[idx - 1] >= value) --idx;
  return idx;
}

SegmentFit FitGrid::fit_segment(std::size_t lo_idx, std::size_t hi_idx) const {
  GQA_EXPECTS(lo_idx <= hi_idx && hi_idx <= size());
  SegmentFit fit;
  fit.n = hi_idx - lo_idx;
  if (fit.n == 0) return fit;

  const double n = static_cast<double>(fit.n);
  const double sx = sum_x_[hi_idx] - sum_x_[lo_idx];
  const double sxx = sum_xx_[hi_idx] - sum_xx_[lo_idx];
  const double sy = sum_y_[hi_idx] - sum_y_[lo_idx];
  const double sxy = sum_xy_[hi_idx] - sum_xy_[lo_idx];
  const double syy = sum_yy_[hi_idx] - sum_yy_[lo_idx];

  const double denom = n * sxx - sx * sx;
  if (fit.n == 1 || std::abs(denom) < 1e-12 * std::max(1.0, n * sxx)) {
    // Single point or numerically vertical: constant fit.
    fit.k = 0.0;
    fit.b = sy / n;
    fit.sse = std::max(0.0, syy - fit.b * sy);
    return fit;
  }
  fit.k = (n * sxy - sx * sy) / denom;
  fit.b = (sy - fit.k * sx) / n;
  // SSE identity under the optimal (k, b): residual orthogonality collapses
  // the quadratic form to Syy - k*Sxy - b*Sy.
  fit.sse = std::max(0.0, syy - fit.k * sxy - fit.b * sy);
  return fit;
}

double FitGrid::segment_sse(std::size_t lo_idx, std::size_t hi_idx, double k,
                            double b) const {
  GQA_EXPECTS(lo_idx <= hi_idx && hi_idx <= size());
  const double n = static_cast<double>(hi_idx - lo_idx);
  if (n == 0.0) return 0.0;
  const double sx = sum_x_[hi_idx] - sum_x_[lo_idx];
  const double sxx = sum_xx_[hi_idx] - sum_xx_[lo_idx];
  const double sy = sum_y_[hi_idx] - sum_y_[lo_idx];
  const double sxy = sum_xy_[hi_idx] - sum_xy_[lo_idx];
  const double syy = sum_yy_[hi_idx] - sum_yy_[lo_idx];
  // Expansion of sum((y - kx - b)^2); exact, no pass over the data.
  const double sse = syy - 2.0 * k * sxy - 2.0 * b * sy + k * k * sxx +
                     2.0 * k * b * sx + n * b * b;
  return std::max(0.0, sse);
}

double FitGrid::fitness(std::span<const double> breakpoints) const {
  double sse = 0.0;
  std::size_t lo_idx = 0;
  for (double p : breakpoints) {
    const std::size_t hi_idx = lower_index(p);
    // Guard against unsorted input instead of silently mis-fitting.
    GQA_EXPECTS_MSG(hi_idx >= lo_idx, "breakpoints must be sorted");
    sse += fit_segment(lo_idx, hi_idx).sse;
    lo_idx = hi_idx;
  }
  sse += fit_segment(lo_idx, size()).sse;
  return sse / static_cast<double>(size());
}

double FitGrid::fitness_quant_aware(std::span<const double> breakpoints,
                                    int lambda,
                                    std::span<const int> scale_exps) const {
  GQA_EXPECTS_MSG(!scale_exps.empty(), "need at least one deployment scale");
  const std::size_t nseg = breakpoints.size() + 1;

  // Deployed (k, b): least squares on the *unquantized* segments, λ-rounded
  // (Alg. 1 line 22) — these stay fixed across deployment scales.
  struct Line {
    double k, b;
  };
  std::vector<Line> lines(nseg);
  {
    std::size_t lo_idx = 0;
    for (std::size_t i = 0; i < nseg; ++i) {
      const std::size_t hi_idx =
          i < breakpoints.size() ? lower_index(breakpoints[i]) : size();
      GQA_EXPECTS_MSG(hi_idx >= lo_idx, "breakpoints must be sorted");
      const SegmentFit fit = fit_segment(lo_idx, hi_idx);
      lines[i] = {round_to_grid(fit.k, lambda), round_to_grid(fit.b, lambda)};
      lo_idx = hi_idx;
    }
  }

  double total = 0.0;
  for (int s : scale_exps) {
    // Eq. 3 at S = 2^-s: p̃ = round(p·2^s)/2^s. Rounding is monotone, so
    // quantized breakpoints stay sorted (ties yield empty segments).
    double sse = 0.0;
    std::size_t lo_idx = 0;
    for (std::size_t i = 0; i < nseg; ++i) {
      std::size_t hi_idx = size();
      if (i < breakpoints.size()) {
        const double pq = round_to_grid(breakpoints[i], s);
        hi_idx = std::max(lower_index(pq), lo_idx);
      }
      sse += segment_sse(lo_idx, hi_idx, lines[i].k, lines[i].b);
      lo_idx = hi_idx;
    }
    total += sse / static_cast<double>(size());
  }
  return total / static_cast<double>(scale_exps.size());
}

double FitGrid::fitness_fxp(std::span<const double> breakpoints,
                            int lambda) const {
  double sse = 0.0;
  std::size_t lo_idx = 0;
  auto rounded_sse = [this, lambda](std::size_t lo, std::size_t hi) {
    const SegmentFit fit = fit_segment(lo, hi);
    if (fit.n == 0) return 0.0;
    const double k = round_to_grid(fit.k, lambda);
    const double b = round_to_grid(fit.b, lambda);
    return segment_sse(lo, hi, k, b);
  };
  for (double p : breakpoints) {
    const std::size_t hi_idx = lower_index(p);
    GQA_EXPECTS_MSG(hi_idx >= lo_idx, "breakpoints must be sorted");
    sse += rounded_sse(lo_idx, hi_idx);
    lo_idx = hi_idx;
  }
  sse += rounded_sse(lo_idx, size());
  return sse / static_cast<double>(size());
}

PwlTable FitGrid::fit_table(std::span<const double> breakpoints,
                            FitStrategy strategy) const {
  PwlTable table;
  table.breakpoints.assign(breakpoints.begin(), breakpoints.end());
  GQA_EXPECTS_MSG(std::is_sorted(table.breakpoints.begin(), table.breakpoints.end()),
                  "breakpoints must be sorted");

  const std::size_t entries = breakpoints.size() + 1;
  table.slopes.resize(entries);
  table.intercepts.resize(entries);

  if (strategy == FitStrategy::kLeastSquares) {
    std::size_t lo_idx = 0;
    for (std::size_t i = 0; i < entries; ++i) {
      const std::size_t hi_idx =
          i < breakpoints.size() ? lower_index(breakpoints[i]) : size();
      SegmentFit fit = fit_segment(lo_idx, hi_idx);
      if (fit.n == 0) {
        // Empty segment (two breakpoints between adjacent grid points):
        // fall back to interpolation so the table stays well defined.
        const double a = i == 0 ? lo_ : breakpoints[i - 1];
        const double b = i < breakpoints.size() ? breakpoints[i] : hi_;
        const double fa = f_(a);
        const double fb = f_(b);
        fit.k = b > a ? (fb - fa) / (b - a) : 0.0;
        fit.b = fa - fit.k * a;
      }
      table.slopes[i] = fit.k;
      table.intercepts[i] = fit.b;
      lo_idx = hi_idx;
    }
  } else {
    for (std::size_t i = 0; i < entries; ++i) {
      const double a = i == 0 ? lo_ : breakpoints[i - 1];
      const double b = i < breakpoints.size() ? breakpoints[i] : hi_;
      const double fa = f_(a);
      const double fb = f_(b);
      const double k = b > a ? (fb - fa) / (b - a) : 0.0;
      table.slopes[i] = k;
      table.intercepts[i] = fa - k * a;
    }
  }
  return table;
}

double FitGrid::mse_of(const PwlTable& table) const {
  table.validate();
  double sse = 0.0;
  std::size_t lo_idx = 0;
  for (std::size_t i = 0; i < table.slopes.size(); ++i) {
    const std::size_t hi_idx = i < table.breakpoints.size()
                                   ? lower_index(table.breakpoints[i])
                                   : size();
    sse += segment_sse(lo_idx, hi_idx, table.slopes[i], table.intercepts[i]);
    lo_idx = hi_idx;
  }
  return sse / static_cast<double>(size());
}

}  // namespace gqa
