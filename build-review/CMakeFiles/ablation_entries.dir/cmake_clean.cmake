file(REMOVE_RECURSE
  "CMakeFiles/ablation_entries.dir/bench/ablation_entries.cpp.o"
  "CMakeFiles/ablation_entries.dir/bench/ablation_entries.cpp.o.d"
  "bench/ablation_entries"
  "bench/ablation_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
