file(REMOVE_RECURSE
  "CMakeFiles/fig3_mse_sweep.dir/bench/fig3_mse_sweep.cpp.o"
  "CMakeFiles/fig3_mse_sweep.dir/bench/fig3_mse_sweep.cpp.o.d"
  "bench/fig3_mse_sweep"
  "bench/fig3_mse_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mse_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
