// Scene-batched inference engine — the default serving path.
//
// GQA-LUT (and QUARK) fix the nonlinear units at deploy time, so serving
// throughput comes from streaming many images through the frozen model,
// not from splitting one small forward across threads. The engine owns
// that shape: it parallelizes ACROSS images (one fully-serial forward per
// task, so no intra-forward dispatch overhead), reuses a persistent
// process-wide ThreadPool (util/thread_pool.h global_pool(), sized by
// GQA_NUM_THREADS) and a pool of per-task Workspaces (layer storage
// survives across dispatches), and pre-warms the provider so hot paths
// read the lock-free unit tier.
//
// Results are bit-identical to a serial per-image loop at any lane count:
// each image's forward is the unthreaded reference computation; only the
// assignment of images to lanes varies.
//
// The per-forward ThreadPool* path on the models remains available for
// single-image latency; the engine is for throughput, and the async
// submit/callback front-end over the same shape is gqa::Server
// (eval/server.h) — engines and servers co-serve on the process pool
// (jobs serialize; a server's continuous service span releases the pool
// whenever its backlog momentarily empties), hold per-lane scratch through
// the same LaneLease abstraction below, and share one provider's warmed
// tier (warm_up_deployment covers the union of co-served op-sets).
//
// Thread-safety: one engine may be dispatched from one thread at a time
// (its workspace pool is internally synchronized, so the batch fan-out
// itself is safe); distinct engines may dispatch concurrently, even onto
// the shared process pool. The model and provider must stay frozen for
// the duration of a dispatch. The engine intentionally holds no lock
// capabilities of its own (no fields to annotate for the thread-safety
// analysis, util/thread_annotations.h) — every synchronized resource it
// touches lives behind the annotated WorkspacePool / ThreadPool /
// NonlinearProvider APIs.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"
#include "tfm/workspace.h"
#include "util/thread_pool.h"

namespace gqa {

/// The serving layer's name for tfm::WorkspaceLease: the RAII lease of one
/// service lane's scratch, checked out of a WorkspacePool for the lease's
/// lifetime. Both serving shapes hold exactly one lease per running lane —
/// the batch engine for the span of an image chunk (inside ws_batch), the
/// server's continuous scheduler for the span of a service loop — so layer
/// scratch persists across dispatches (through the pool) while never being
/// shared between concurrently running tasks, and is returned on every
/// exit path even when a forward throws.
using LaneLease = tfm::WorkspaceLease;

struct EngineOptions {
  /// Lane count: 0 uses the lazily-created process-wide pool
  /// (GQA_NUM_THREADS-sized); >= 1 gives the engine a private pool of that
  /// size (1 = serial dispatch, still with workspace reuse).
  int num_threads = 0;
  /// Pre-warm the provider's pwl units for all deployment scales before
  /// the first int dispatch, so concurrent forwards never touch the cache
  /// lock. Warming is an optimization only — results are identical.
  bool warm_provider = true;
};

/// Batch server for a frozen model. Thread-compatible: one engine may be
/// used from one thread at a time; distinct engines (or an engine and a
/// gqa::Server) may serve concurrently on the shared process pool.
class InferenceEngine {
 public:
  explicit InferenceEngine(EngineOptions options = {});

  /// Lanes the engine dispatches across (>= 1).
  [[nodiscard]] int threads() const { return pool_->size(); }

  /// Per-image FP32 logits.
  template <typename ModelT>
  [[nodiscard]] std::vector<tfm::Tensor> forward_fp(
      const ModelT& model, std::span<const tfm::Tensor> images) const;

  /// Per-image integer logits (provider pre-warmed when configured).
  template <typename ModelT>
  [[nodiscard]] std::vector<tfm::QTensor> forward_int(
      const ModelT& model, std::span<const tfm::Tensor> images,
      const tfm::NonlinearProvider& nl) const;

  /// Per-image argmax label maps (ModelT::argmax_labels on each logits
  /// tensor, computed inside the image task).
  template <typename ModelT>
  [[nodiscard]] std::vector<std::vector<int>> labels_fp(
      const ModelT& model, std::span<const tfm::Tensor> images) const;

  template <typename ModelT>
  [[nodiscard]] std::vector<std::vector<int>> labels_int(
      const ModelT& model, std::span<const tfm::Tensor> images,
      const tfm::NonlinearProvider& nl) const;

 private:
  void maybe_warm(const tfm::NonlinearProvider& nl) const;

  EngineOptions options_;
  ThreadPool* pool_;                    ///< global_pool() or owned_
  std::unique_ptr<ThreadPool> owned_;   ///< non-null when num_threads >= 1
  mutable tfm::WorkspacePool workspaces_;
};

}  // namespace gqa
