# Empty dependencies file for numerics_test.
# This may be replaced when dependencies are built.
