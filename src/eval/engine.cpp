#include "eval/engine.h"

#include "util/contracts.h"
#include "util/serving_error.h"

namespace gqa {

InferenceEngine::InferenceEngine(EngineOptions options) : options_(options) {
  GQA_EXPECTS(options.num_threads >= 0);
  if (options.num_threads >= 1) {
    owned_ = std::make_unique<ThreadPool>(options.num_threads);
    pool_ = owned_.get();
  } else {
    pool_ = &global_pool();
  }
}

void InferenceEngine::maybe_warm(const tfm::NonlinearProvider& nl) const {
  if (!options_.warm_provider) return;
  // One shared warm-up covers every op the provider replaces (the union
  // across all co-served model op-sets); repeats on a warm provider are
  // copy-free no-ops.
  try {
    nl.warm_up_deployment();
  } catch (const ServingError&) {
    // Warm-up is an optimization, never a requirement: a classified
    // warm-up failure (e.g. the `warmup` chaos point) degrades this
    // dispatch to cold lazy unit builds — results are identical.
  }
}

template <typename ModelT>
std::vector<tfm::Tensor> InferenceEngine::forward_fp(
    const ModelT& model, std::span<const tfm::Tensor> images) const {
  return ws_batch<tfm::Tensor>(images.size(), pool_, &workspaces_,
                               [&](std::size_t i, tfm::Workspace* ws) {
                                 return model.forward_fp(images[i], nullptr,
                                                         ws);
                               });
}

template <typename ModelT>
std::vector<tfm::QTensor> InferenceEngine::forward_int(
    const ModelT& model, std::span<const tfm::Tensor> images,
    const tfm::NonlinearProvider& nl) const {
  maybe_warm(nl);
  return ws_batch<tfm::QTensor>(images.size(), pool_, &workspaces_,
                                [&](std::size_t i, tfm::Workspace* ws) {
                                  return model.forward_int(images[i], nl,
                                                           nullptr, ws);
                                });
}

template <typename ModelT>
std::vector<std::vector<int>> InferenceEngine::labels_fp(
    const ModelT& model, std::span<const tfm::Tensor> images) const {
  return ws_batch<std::vector<int>>(
      images.size(), pool_, &workspaces_,
      [&](std::size_t i, tfm::Workspace* ws) {
        tfm::Tensor logits = model.forward_fp(images[i], nullptr, ws);
        std::vector<int> labels = ModelT::argmax_labels(logits);
        ws->release(std::move(logits));
        return labels;
      });
}

template <typename ModelT>
std::vector<std::vector<int>> InferenceEngine::labels_int(
    const ModelT& model, std::span<const tfm::Tensor> images,
    const tfm::NonlinearProvider& nl) const {
  maybe_warm(nl);
  return ws_batch<std::vector<int>>(
      images.size(), pool_, &workspaces_,
      [&](std::size_t i, tfm::Workspace* ws) {
        tfm::QTensor logits = model.forward_int(images[i], nl, nullptr, ws);
        std::vector<int> labels = ModelT::argmax_labels(logits);
        ws->release(std::move(logits));
        return labels;
      });
}

// The engine serves exactly the two reproduction models; explicit
// instantiation keeps the templates out of every including TU.
template std::vector<tfm::Tensor> InferenceEngine::forward_fp(
    const tfm::SegformerB0Like&, std::span<const tfm::Tensor>) const;
template std::vector<tfm::Tensor> InferenceEngine::forward_fp(
    const tfm::EfficientViTB0Like&, std::span<const tfm::Tensor>) const;
template std::vector<tfm::QTensor> InferenceEngine::forward_int(
    const tfm::SegformerB0Like&, std::span<const tfm::Tensor>,
    const tfm::NonlinearProvider&) const;
template std::vector<tfm::QTensor> InferenceEngine::forward_int(
    const tfm::EfficientViTB0Like&, std::span<const tfm::Tensor>,
    const tfm::NonlinearProvider&) const;
template std::vector<std::vector<int>> InferenceEngine::labels_fp(
    const tfm::SegformerB0Like&, std::span<const tfm::Tensor>) const;
template std::vector<std::vector<int>> InferenceEngine::labels_fp(
    const tfm::EfficientViTB0Like&, std::span<const tfm::Tensor>) const;
template std::vector<std::vector<int>> InferenceEngine::labels_int(
    const tfm::SegformerB0Like&, std::span<const tfm::Tensor>,
    const tfm::NonlinearProvider&) const;
template std::vector<std::vector<int>> InferenceEngine::labels_int(
    const tfm::EfficientViTB0Like&, std::span<const tfm::Tensor>,
    const tfm::NonlinearProvider&) const;

}  // namespace gqa
