file(REMOVE_RECURSE
  "CMakeFiles/hw_explorer.dir/examples/hw_explorer.cpp.o"
  "CMakeFiles/hw_explorer.dir/examples/hw_explorer.cpp.o.d"
  "examples/hw_explorer"
  "examples/hw_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
