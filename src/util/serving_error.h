// Structured error taxonomy for the serving stack.
//
// The serving layers (gqa::Server, the artifact load paths, the fault
// injector) classify every failure into one ServingErrorCode so that
// clients, retry machinery, and the circuit breaker can branch on WHAT
// failed instead of string-matching what(). The contract that motivates
// the taxonomy: a degraded replica must never silently serve wrong codes —
// failures are detected, classified, and shed deterministically.
//
// Classification rules used by gqa::Server:
//   - kBackendTransient is the ONLY retryable class (bounded
//     retry-with-backoff via SubmitOptions::max_attempts); everything else
//     fails the request on the first occurrence.
//   - kBackendTransient and kBackendFailed count toward a model's
//     consecutive-failure streak (the circuit breaker's trip condition);
//     kDeadlineExpired, kModelUnavailable, kCancelled, and
//     kFrameSuperseded never do — they are scheduler decisions, not
//     evidence about the model's health.
//   - serving_error_code() maps any exception_ptr into the taxonomy:
//     ServingError keeps its code, everything else is kBackendFailed.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace gqa {

enum class ServingErrorCode {
  /// The request's SubmitOptions::deadline passed before service finished;
  /// the request was expired exactly once and never (re)started.
  kDeadlineExpired,
  /// The model's circuit breaker is open: the request was shed fail-fast
  /// without touching a service lane.
  kModelUnavailable,
  /// A retryable backend failure (includes injected faults): the request
  /// may be re-attempted up to SubmitOptions::max_attempts times.
  kBackendTransient,
  /// A non-retryable backend failure (any exception that is not a
  /// ServingError is classified here).
  kBackendFailed,
  /// The request was cancelled by shutdown under DrainPolicy::kCancelPending
  /// before it started.
  kCancelled,
  /// The admission path refused the request (injected admission fault).
  kAdmissionRejected,
  /// A LUT artifact failed to load: truncated/malformed JSON, wrong kind,
  /// unsupported version, or a table that fails validation. Never returns
  /// a bogus table.
  kArtifactCorrupt,
  /// A stream frame was displaced by a newer frame before it started
  /// (ring overwrite under DropPolicy::kDropOldest/kDropLate, or a
  /// coalesce sweep under DropPolicy::kCoalesce). A scheduler decision
  /// like kCancelled: never counts toward a breaker streak.
  kFrameSuperseded,
};

/// Stable lowercase name of a code ("deadline_expired", ...), for messages
/// and stats keys.
[[nodiscard]] const char* serving_error_name(ServingErrorCode code);

/// The taxonomy's exception type: a runtime_error carrying its code.
class ServingError : public std::runtime_error {
 public:
  ServingError(ServingErrorCode code, const std::string& message);

  [[nodiscard]] ServingErrorCode code() const { return code_; }

 private:
  ServingErrorCode code_;
};

/// Classifies an arbitrary captured exception into the taxonomy:
/// ServingError keeps its own code, anything else is kBackendFailed.
/// `error` must not be null.
[[nodiscard]] ServingErrorCode serving_error_code(
    const std::exception_ptr& error);

}  // namespace gqa
