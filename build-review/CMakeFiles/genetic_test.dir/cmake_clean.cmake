file(REMOVE_RECURSE
  "CMakeFiles/genetic_test.dir/tests/genetic_test.cpp.o"
  "CMakeFiles/genetic_test.dir/tests/genetic_test.cpp.o.d"
  "genetic_test"
  "genetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
