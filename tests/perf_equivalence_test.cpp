// Equivalence guarantees of the performance engine: multi-threaded and
// memoized GA runs must be bit-identical to the serial path, the prefix-sum
// objective must agree with the naive per-code scan, the batched kernel
// APIs must reproduce per-element evaluation exactly, the NonlinearProvider
// must survive concurrent hammering on cold caches, and every threaded tfm
// forward pass must be bit-identical to its serial twin.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "eval/protocol.h"
#include "gqa/gqa_lut.h"
#include "gqa/objective.h"
#include "kernel/dispatch.h"
#include "kernel/int_pwl_unit.h"
#include "kernel/multirange_unit.h"
#include "pwl/fit_grid.h"
#include "tfm/models/efficientvit.h"
#include "tfm/models/segformer.h"
#include "tfm/modules.h"
#include "tfm/nonlinear_provider.h"
#include "util/contracts.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqa {
namespace {

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(round + 1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), round + 1);
  }
}

TEST(ThreadPool, PooledForChunksPartitionsExactly) {
  // Chunk bounds must tile [0, count) exactly — no empty or out-of-range
  // chunk for awkward counts (regression: ceil-division used to emit a
  // trailing chunk with lo > count, underflowing span lengths downstream).
  ThreadPool pool2(2), pool4(4);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &pool2, &pool4}) {
    for (std::size_t count : {0UL, 1UL, 2UL, 7UL, 33UL, 145UL, 1000UL}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h = 0;
      std::atomic<int> bad_bounds{0};
      pooled_for_chunks(pool, count, [&](std::size_t lo, std::size_t hi) {
        if (lo >= hi || hi > count) {
          ++bad_bounds;
          return;
        }
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      });
      EXPECT_EQ(bad_bounds.load(), 0) << "count=" << count;
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "count=" << count << " i=" << i;
      }
    }
  }
}

// ------------------------------------------------ GA threading + memoize --

GqaConfig quick_fit_config(int num_threads, bool memoize) {
  GqaConfig cfg = GqaConfig::preset(Op::kGelu, 8,
                                    MutationKind::kRoundingMutation);
  cfg.ga.population_size = 20;
  cfg.ga.generations = 25;
  cfg.ga.seed = 0xABCD;
  cfg.ga.num_threads = num_threads;
  cfg.ga.memoize_fitness = memoize;
  cfg.fitness = GqaConfig::Fitness::kDeployedMean;  // exercises the objective
  return cfg;
}

void expect_identical_fits(const GqaFitResult& a, const GqaFitResult& b) {
  EXPECT_EQ(a.ga.best, b.ga.best);
  EXPECT_EQ(a.ga.best_fitness, b.ga.best_fitness);
  EXPECT_EQ(a.ga.history, b.ga.history);
  EXPECT_EQ(a.ga.evaluations, b.ga.evaluations);
  EXPECT_EQ(a.fxp_table.breakpoints, b.fxp_table.breakpoints);
  EXPECT_EQ(a.fxp_table.slopes, b.fxp_table.slopes);
  EXPECT_EQ(a.fxp_table.intercepts, b.fxp_table.intercepts);
  ASSERT_EQ(a.per_scale.size(), b.per_scale.size());
  for (std::size_t i = 0; i < a.per_scale.size(); ++i) {
    EXPECT_EQ(a.per_scale[i].breakpoints, b.per_scale[i].breakpoints);
    EXPECT_EQ(a.per_scale[i].deployed_mse, b.per_scale[i].deployed_mse);
  }
}

TEST(GaParallel, FourThreadsBitIdenticalToSerial) {
  const GqaFitResult serial = fit_gqa_lut(quick_fit_config(1, false));
  const GqaFitResult threaded = fit_gqa_lut(quick_fit_config(4, false));
  expect_identical_fits(serial, threaded);
}

TEST(GaParallel, MemoizationBitIdenticalAndHitsCache) {
  const GqaFitResult plain = fit_gqa_lut(quick_fit_config(1, false));
  const GqaFitResult memoized = fit_gqa_lut(quick_fit_config(1, true));
  expect_identical_fits(plain, memoized);
  // Elite re-injection alone guarantees recurring genomes.
  EXPECT_GT(memoized.ga.cache_hits, 0);
  EXPECT_EQ(plain.ga.cache_hits, 0);
  EXPECT_EQ(memoized.ga.evaluations, plain.ga.evaluations);
}

TEST(GaParallel, ThreadsPlusMemoizationBitIdentical) {
  const GqaFitResult serial = fit_gqa_lut(quick_fit_config(1, false));
  const GqaFitResult fast = fit_gqa_lut(quick_fit_config(4, true));
  expect_identical_fits(serial, fast);
}

TEST(GaConfigValidation, RejectsZeroThreads) {
  GaConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(GeneticOptimizer{cfg}, ContractViolation);
}

// -------------------------------------------- prefix-sum objective check --

TEST(ObjectivePrefixSum, MatchesNaiveScanAcrossRandomGenomes) {
  const OpInfo& info = op_info(Op::kGelu);
  const FitGrid grid = FitGrid::make(info.f, info.range_lo, info.range_hi);
  const QuantAwareObjective objective(grid, 5, {0, 1, 2, 3, 4, 5, 6});

  Rng rng(0xFEED);
  for (int trial = 0; trial < 64; ++trial) {
    Genome g(7);
    for (double& p : g) p = rng.uniform(info.range_lo, info.range_hi);
    repair_breakpoints(g, info.range_lo, info.range_hi, 0.01);

    const std::vector<double> fast = objective.per_scale_mse(g);
    const std::vector<double> naive = objective.per_scale_mse_naive(g);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      // The closed-form SSE is algebraically exact; only double rounding
      // differs from the sequential scan.
      EXPECT_NEAR(fast[i], naive[i], 1e-9 * std::max(1.0, naive[i]))
          << "trial=" << trial << " scale index " << i;
    }
  }
}

TEST(ObjectivePrefixSum, HandlesCollapsedAndBoundaryBreakpoints) {
  const OpInfo& info = op_info(Op::kExp);
  const FitGrid grid = FitGrid::make(info.f, info.range_lo, info.range_hi);
  const QuantAwareObjective objective(grid, 5, {0, 2, 4, 6});

  // Breakpoints that quantize onto the same code at coarse scales, plus
  // breakpoints pinned to the range edges.
  const std::vector<Genome> genomes = {
      {-7.99, -7.9, -7.8, -0.2, -0.1, -0.05, -0.01},
      {-6.0, -5.0, -4.0, -3.0, -2.0, -1.0, -0.5},
      {-7.5, -7.49, -7.48, -7.47, -7.46, -7.45, -7.44},
  };
  for (const Genome& g : genomes) {
    const std::vector<double> fast = objective.per_scale_mse(g);
    const std::vector<double> naive = objective.per_scale_mse_naive(g);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-9 * std::max(1.0, naive[i]));
    }
  }
}

TEST(ObjectivePrefixSum, OperatorAveragesPerScale) {
  const OpInfo& info = op_info(Op::kGelu);
  const FitGrid grid = FitGrid::make(info.f, info.range_lo, info.range_hi);
  const QuantAwareObjective objective(grid, 5, {0, 3, 6});
  const Genome g = {-3.0, -2.0, -1.0, -0.5, 0.5, 1.0, 2.0};
  const std::vector<double> per = objective.per_scale_mse(g);
  double mean = 0.0;
  for (double m : per) mean += m;
  mean /= static_cast<double>(per.size());
  EXPECT_DOUBLE_EQ(objective(g), mean);
}

// ------------------------------------------------- batched kernel checks --

PwlTable gelu_like_table() {
  PwlTable t;
  t.breakpoints = {-2.75, -1.5, -0.75, -0.25, 0.25, 1.0, 2.0};
  t.slopes = {0.0, -0.0625, 0.03125, 0.34375, 0.65625, 0.96875, 1.03125, 1.0};
  t.intercepts = {0.0, -0.15625, 0.0, 0.21875, 0.0, -0.09375, -0.15625, 0.0};
  return t;
}

TEST(BatchedKernel, EvalCodesBitIdenticalOverFullInputRange) {
  for (int scale_exp : {0, -2, -4, -6}) {
    const QuantParams input{std::ldexp(1.0, scale_exp), 8, true};
    const QuantizedPwlTable qt =
        quantize_table(gelu_like_table(), input, 5, 8);
    const IntPwlUnit unit(qt);

    std::vector<std::int64_t> codes;
    for (std::int64_t q = -128; q <= 127; ++q) codes.push_back(q);
    std::vector<std::int64_t> batch(codes.size());
    std::vector<double> batch_real(codes.size());
    unit.eval_codes(codes, batch);
    unit.eval_reals_from_codes(codes, batch_real);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], unit.eval_code(codes[i]))
          << "q=" << codes[i] << " S=2^" << scale_exp;
      EXPECT_EQ(batch_real[i], unit.eval_real_from_code(codes[i]));
    }
  }
}

TEST(BatchedKernel, SixteenBitBusUsesDenseTableBitIdentically) {
  const QuantParams input{std::ldexp(1.0, -8), 16, true};
  IntPwlUnitConfig cfg;
  cfg.acc_bits = 32;
  const QuantizedPwlTable qt = quantize_table(gelu_like_table(), input, 5, 8);
  const IntPwlUnit unit(qt, cfg);
  std::vector<std::int64_t> codes;
  for (std::int64_t q = -32768; q <= 32767; q += 7) codes.push_back(q);
  std::vector<std::int64_t> batch(codes.size());
  unit.eval_codes(codes, batch);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(batch[i], unit.eval_code(codes[i])) << "q=" << codes[i];
  }
}

TEST(BatchedKernel, EvalCodesEnforcesBusWidthAndSizes) {
  const QuantParams input{0.25, 8, true};
  const IntPwlUnit unit(quantize_table(gelu_like_table(), input, 5, 8));
  std::vector<std::int64_t> codes = {0, 128};
  std::vector<std::int64_t> out(2);
  EXPECT_THROW(unit.eval_codes(codes, out), ContractViolation);
  std::vector<std::int64_t> short_out(1);
  codes = {0, 1};
  EXPECT_THROW(unit.eval_codes(codes, short_out), ContractViolation);
}

TEST(BatchedKernel, MultiRangeBatchBitIdentical) {
  for (Op op : {Op::kDiv, Op::kRsqrt}) {
    const Approximator approx = Approximator::fit(op, Method::kGqaNoRm, {});
    const MultiRangeUnit unit = approx.make_multirange_unit();
    std::vector<std::int64_t> codes;
    for (std::int64_t c = 1 << 12; c <= (1 << 24); c += 100003) {
      codes.push_back(c);
    }
    std::vector<double> batch(codes.size());
    unit.eval_fxp_batch(codes, 16, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], unit.eval_fxp(codes[i], 16))
          << op_info(op).name << " code=" << codes[i];
    }
  }
}

// ---------------------------------------------- provider batched parity --

TEST(ProviderBatch, ActivationBatchesBitIdenticalToScalar) {
  const auto provider = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kGelu, Op::kExp});

  std::vector<std::int64_t> codes;
  for (std::int64_t q = -160; q <= 160; ++q) codes.push_back(q);  // saturates
  std::vector<double> batch(codes.size());
  for (int sx : {0, -3, -6}) {
    provider.gelu_codes(codes, sx, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], provider.gelu_code(codes[i], sx));
    }
    provider.exp_codes(codes, sx, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], provider.exp_code(codes[i], sx));
    }
    // HSWISH is not replaced -> exact backend path must agree too.
    provider.hswish_codes(codes, sx, batch);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(batch[i], provider.hswish_code(codes[i], sx));
    }
  }
}

TEST(ProviderBatch, WideRangeBatchesBitIdenticalToScalar) {
  const auto provider = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kDiv, Op::kRsqrt});
  std::vector<std::int64_t> codes;
  for (std::int64_t c = 1; c <= (1 << 22); c = c * 3 + 1) codes.push_back(c);
  std::vector<double> batch(codes.size());
  provider.recip_fxp_batch(codes, 16, batch);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(batch[i], provider.recip_fxp(codes[i], 16));
  }
  provider.rsqrt_fxp_batch(codes, 16, batch);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(batch[i], provider.rsqrt_fxp(codes[i], 16));
  }

  std::vector<std::int64_t> bad = {0};
  std::vector<double> out(1);
  EXPECT_THROW(provider.recip_fxp_batch(bad, 16, out), ContractViolation);
  EXPECT_THROW(provider.rsqrt_fxp_batch(bad, 16, out), ContractViolation);
}

// ------------------------------------------- provider concurrency safety --

int test_threads() {
  return static_cast<int>(env_int("GQA_TEST_THREADS", 4));
}

/// Fitted once; copies start with cold unit caches (caches are per-copy
/// deployment artifacts, only the fitted tables are shared state).
const tfm::NonlinearProvider& gelu_rsqrt_master() {
  static const auto master = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kGelu, Op::kRsqrt});
  return master;
}

// Regression test for the lazy unit-cache data race: before the caches were
// guarded, the first concurrent gelu_codes/rsqrt_fxp_batch calls on a fresh
// provider raced to insert into the mutable std::maps. Run under
// TSan/ASan CI to keep the fix enforced; mismatch counting doubles as a
// functional check (gtest assertions stay on the main thread).
TEST(ProviderConcurrency, ColdCacheHammerBitIdenticalToSerial) {
  const int lanes = std::max(2, test_threads());
  std::vector<std::int64_t> act_codes;
  for (std::int64_t q = -140; q <= 140; ++q) act_codes.push_back(q);
  std::vector<std::int64_t> wide_codes;
  for (std::int64_t c = 1; c <= (1 << 20); c = c * 5 + 3) wide_codes.push_back(c);
  const std::vector<int> exps = {0, -2, -4, -6};

  // Serial reference from an independent cold copy.
  const tfm::NonlinearProvider ref = gelu_rsqrt_master();
  std::map<int, std::vector<double>> ref_act;
  for (int e : exps) {
    ref_act[e].resize(act_codes.size());
    ref.gelu_codes(act_codes, e, ref_act[e]);
  }
  std::vector<double> ref_wide(wide_codes.size());
  ref.rsqrt_fxp_batch(wide_codes, 16, ref_wide);

  for (int round = 0; round < 3; ++round) {
    const tfm::NonlinearProvider provider = gelu_rsqrt_master();  // cold
    std::atomic<long> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(lanes));
    for (int t = 0; t < lanes; ++t) {
      workers.emplace_back([&] {
        std::vector<double> act(act_codes.size());
        std::vector<double> wide(wide_codes.size());
        for (int rep = 0; rep < 4; ++rep) {
          for (int e : exps) {
            provider.gelu_codes(act_codes, e, act);
            for (std::size_t i = 0; i < act.size(); ++i) {
              if (act[i] != ref_act[e][i]) ++mismatches;
            }
          }
          provider.rsqrt_fxp_batch(wide_codes, 16, wide);
          for (std::size_t i = 0; i < wide.size(); ++i) {
            if (wide[i] != ref_wide[i]) ++mismatches;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0) << "round " << round;
  }
}

TEST(ProviderConcurrency, WarmUpRacesEvaluationSafely) {
  // warm_up publishes snapshots atomically, so it may run while other
  // threads evaluate — hammer exactly that interleaving.
  std::vector<std::int64_t> act_codes;
  for (std::int64_t q = -128; q <= 127; ++q) act_codes.push_back(q);
  const std::vector<int> exps = {0, -1, -2, -3, -4, -5, -6};
  const tfm::NonlinearProvider ref = gelu_rsqrt_master();
  std::map<int, std::vector<double>> ref_act;
  for (int e : exps) {
    ref_act[e].resize(act_codes.size());
    ref.gelu_codes(act_codes, e, ref_act[e]);
  }

  const tfm::NonlinearProvider provider = gelu_rsqrt_master();  // cold
  std::atomic<long> mismatches{0};
  std::atomic<bool> stop{false};
  std::thread warmer([&] {
    while (!stop.load()) {
      for (int e : exps) provider.warm_up({Op::kGelu, Op::kRsqrt}, {e});
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < std::max(2, test_threads() - 1); ++t) {
    readers.emplace_back([&] {
      std::vector<double> act(act_codes.size());
      for (int rep = 0; rep < 8; ++rep) {
        for (int e : exps) {
          provider.gelu_codes(act_codes, e, act);
          for (std::size_t i = 0; i < act.size(); ++i) {
            if (act[i] != ref_act[e][i]) ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  warmer.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ProviderConcurrency, WarmedUpProviderServesLockFreeTier) {
  const tfm::NonlinearProvider provider = gelu_rsqrt_master();
  const std::vector<int> exps = {0, -3, -6};
  provider.warm_up({Op::kGelu, Op::kRsqrt}, exps);
  // warm_up on replaced ops must change nothing observable...
  std::vector<std::int64_t> codes = {-128, -5, 0, 7, 127};
  std::vector<double> warmed(codes.size()), cold(codes.size());
  const tfm::NonlinearProvider fresh = gelu_rsqrt_master();
  for (int e : exps) {
    provider.gelu_codes(codes, e, warmed);
    fresh.gelu_codes(codes, e, cold);
    EXPECT_EQ(warmed, cold) << "exp " << e;
  }
  // ...including ops it does not replace (warm_up skips them) and scales
  // outside the warmed set (served by the guarded overflow tier).
  provider.warm_up({Op::kExp, Op::kDiv}, exps);
  provider.gelu_codes(codes, -8, warmed);
  fresh.gelu_codes(codes, -8, cold);
  EXPECT_EQ(warmed, cold);
}

// --------------------------------------- threaded forward == serial ------

Rng eq_rng() { return Rng(0x7EAD); }

/// One full-replacement provider shared by the equivalence tests (fitting
/// all five ops once keeps the suite fast).
const tfm::NonlinearProvider& full_provider() {
  static const auto p = tfm::NonlinearProvider::with_method(
      Method::kGqaRm,
      {Op::kExp, Op::kGelu, Op::kHswish, Op::kDiv, Op::kRsqrt});
  return p;
}

template <typename Fn>
void expect_pool_invariant(const Fn& forward, const char* what) {
  const auto serial = forward(nullptr);
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    const auto threaded = forward(&pool);
    ASSERT_EQ(serial.shape(), threaded.shape()) << what;
    EXPECT_EQ(serial.data(), threaded.data())
        << what << " diverges at " << threads << " threads";
  }
}

TEST(ThreadedForward, LinearBitIdentical) {
  Rng rng = eq_rng();
  tfm::Linear lin(24, 16, rng);
  tfm::Tensor x = tfm::Tensor::randn(tfm::Shape{13, 24}, rng, 1.0);
  (void)lin.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  (void)lin.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(x, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return lin.forward_fp(x, pool); }, "Linear fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) { return lin.forward_int(qx, pool); },
      "Linear int");
}

TEST(ThreadedForward, Conv2dBitIdentical) {
  Rng rng = eq_rng();
  tfm::Conv2d conv(4, 6, 3, 1, 1, rng);
  tfm::Tensor x = tfm::Tensor::randn(tfm::Shape{4, 9, 9}, rng, 1.0);
  (void)conv.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  (void)conv.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(x, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return conv.forward_fp(x, pool); }, "Conv2d fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) { return conv.forward_int(qx, pool); },
      "Conv2d int");
}

TEST(ThreadedForward, LayerNormBitIdentical) {
  Rng rng = eq_rng();
  tfm::LayerNorm ln(32, rng);
  tfm::Tensor x = tfm::Tensor::randn(tfm::Shape{11, 32}, rng, 1.5);
  (void)ln.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  (void)ln.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(x, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return ln.forward_fp(x, pool); },
      "LayerNorm fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) {
        return ln.forward_int(qx, full_provider(), pool);
      },
      "LayerNorm int");
}

TEST(ThreadedForward, SoftmaxBitIdentical) {
  Rng rng = eq_rng();
  tfm::Tensor x = tfm::Tensor::randn(tfm::Shape{9, 12}, rng, 2.0);
  const QuantParams qp = make_po2_params(x.amax() / 127.0, 8);
  const tfm::QTensor qx = tfm::QTensor::quantize(x, qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return tfm::Softmax::forward_fp(x, pool); },
      "Softmax fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) {
        return tfm::Softmax::forward_int(qx, full_provider(), pool);
      },
      "Softmax int");
}

// ------------------------------------------------- kernel backend parity --

/// Runs `forward()` under the scalar oracle and then under every runnable
/// registered backend, asserting byte-identical results — the ThreadedForward
/// equivalence cases re-run across GQA_KERNEL_BACKEND values.
template <typename Fn>
void expect_backend_invariant(const Fn& forward, const char* what) {
  const auto reference = [&] {
    kernel::BackendScope scope("scalar");
    return forward();
  }();
  for (const kernel::KernelBackend* backend : kernel::registry()) {
    if (!kernel::backend_available(*backend)) continue;
    kernel::BackendScope scope(backend->name);
    const auto got = forward();
    ASSERT_EQ(reference.shape(), got.shape()) << what;
    EXPECT_EQ(reference.data(), got.data())
        << what << " diverges under kernel backend " << backend->name;
  }
}

TEST(KernelBackendParity, LinearForwardBitIdenticalUnderEveryBackend) {
  Rng rng = eq_rng();
  tfm::Linear lin(21, 16, rng);  // in=21: every GEMM row ends in a tail
  tfm::Tensor x = tfm::Tensor::randn(tfm::Shape{13, 21}, rng, 1.0);
  (void)lin.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  (void)lin.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(x, in_qp);
  expect_backend_invariant([&] { return lin.forward_int(qx, nullptr); },
                           "Linear int");
}

TEST(KernelBackendParity, ConvForwardsBitIdenticalUnderEveryBackend) {
  Rng rng = eq_rng();
  // Pointwise conv rides the channel-axpy fast path; the 3x3 conv stays on
  // the general loop — both must be backend-invariant.
  tfm::Conv2d pointwise(5, 7, 1, 1, 0, rng);
  tfm::Conv2d general(4, 6, 3, 1, 1, rng);
  tfm::Tensor xp = tfm::Tensor::randn(tfm::Shape{5, 9, 9}, rng, 1.0);
  tfm::Tensor xg = tfm::Tensor::randn(tfm::Shape{4, 9, 9}, rng, 1.0);
  (void)pointwise.calibrate(xp);
  (void)general.calibrate(xg);
  const QuantParams qp_p{xp.amax() / 127.0, 8, true};
  const QuantParams qp_g{xg.amax() / 127.0, 8, true};
  (void)pointwise.freeze(qp_p, tfm::QuantPolicy{});
  (void)general.freeze(qp_g, tfm::QuantPolicy{});
  const tfm::QTensor qxp = tfm::QTensor::quantize(xp, qp_p);
  const tfm::QTensor qxg = tfm::QTensor::quantize(xg, qp_g);
  expect_backend_invariant(
      [&] { return pointwise.forward_int(qxp, nullptr); }, "Conv2d 1x1 int");
  expect_backend_invariant(
      [&] { return general.forward_int(qxg, nullptr); }, "Conv2d 3x3 int");
}

TEST(KernelBackendParity, LayerNormAndSoftmaxBitIdenticalUnderEveryBackend) {
  Rng rng = eq_rng();
  tfm::LayerNorm ln(33, rng);  // dim=33: row sums end in a vector tail
  tfm::Tensor xl = tfm::Tensor::randn(tfm::Shape{11, 33}, rng, 1.5);
  (void)ln.calibrate(xl);
  const QuantParams ln_qp{xl.amax() / 127.0, 8, true};
  (void)ln.freeze(ln_qp, tfm::QuantPolicy{});
  const tfm::QTensor qxl = tfm::QTensor::quantize(xl, ln_qp);
  expect_backend_invariant(
      [&] { return ln.forward_int(qxl, full_provider(), nullptr); },
      "LayerNorm int");

  tfm::Tensor xs = tfm::Tensor::randn(tfm::Shape{9, 13}, rng, 2.0);
  const QuantParams sm_qp = make_po2_params(xs.amax() / 127.0, 8);
  const tfm::QTensor qxs = tfm::QTensor::quantize(xs, sm_qp);
  expect_backend_invariant(
      [&] { return tfm::Softmax::forward_int(qxs, full_provider(), nullptr); },
      "Softmax int");
}

TEST(ThreadedForward, ActivationBitIdentical) {
  Rng rng = eq_rng();
  tfm::Activation act(Op::kGelu);
  tfm::Tensor x = tfm::Tensor::randn(tfm::Shape{10, 16}, rng, 1.5);
  (void)act.calibrate(x);
  const QuantParams in_qp = make_po2_params(x.amax() / 127.0, 8);
  (void)act.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(x, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return act.forward_fp(x, pool); },
      "Activation fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) {
        return act.forward_int(qx, full_provider(), pool);
      },
      "Activation int");
}

TEST(ThreadedForward, ResidualAddBitIdentical) {
  Rng rng = eq_rng();
  tfm::ResidualAdd add;
  tfm::Tensor a = tfm::Tensor::randn(tfm::Shape{7, 8}, rng, 1.0);
  tfm::Tensor b = tfm::Tensor::randn(tfm::Shape{7, 8}, rng, 1.0);
  (void)add.calibrate(a, b);
  const QuantParams a_qp{a.amax() / 127.0, 8, true};
  const QuantParams b_qp{b.amax() / 127.0, 8, true};
  (void)add.freeze(a_qp, b_qp, tfm::QuantPolicy{});
  const tfm::QTensor qa = tfm::QTensor::quantize(a, a_qp);
  const tfm::QTensor qb = tfm::QTensor::quantize(b, b_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return add.forward_fp(a, b, pool); },
      "ResidualAdd fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) { return add.forward_int(qa, qb, pool); },
      "ResidualAdd int");
}

TEST(ThreadedForward, AttentionSRBitIdentical) {
  Rng rng = eq_rng();
  tfm::AttentionSR attn(16, 2, 2, rng);
  tfm::Tensor tokens = tfm::Tensor::randn(tfm::Shape{16, 16}, rng, 0.7);
  (void)attn.calibrate(tokens, 4, 4);
  const QuantParams in_qp{tokens.amax() / 127.0, 8, true};
  (void)attn.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(tokens, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return attn.forward_fp(tokens, 4, 4, pool); },
      "AttentionSR fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) {
        return attn.forward_int(qx, 4, 4, full_provider(), pool);
      },
      "AttentionSR int");
}

TEST(ThreadedForward, LinearAttentionBitIdentical) {
  Rng rng = eq_rng();
  tfm::LinearAttention attn(16, rng);
  tfm::Tensor tokens = tfm::Tensor::randn(tfm::Shape{24, 16}, rng, 0.7);
  (void)attn.calibrate(tokens);
  const QuantParams in_qp{tokens.amax() / 127.0, 8, true};
  (void)attn.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(tokens, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return attn.forward_fp(tokens, pool); },
      "LinearAttention fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) {
        return attn.forward_int(qx, full_provider(), pool);
      },
      "LinearAttention int");
}

TEST(ThreadedForward, MixFfnBitIdentical) {
  Rng rng = eq_rng();
  tfm::MixFfn ffn(8, 32, rng);
  tfm::Tensor tokens = tfm::Tensor::randn(tfm::Shape{16, 8}, rng, 0.7);
  (void)ffn.calibrate(tokens, 4, 4);
  const QuantParams in_qp{tokens.amax() / 127.0, 8, true};
  (void)ffn.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(tokens, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return ffn.forward_fp(tokens, 4, 4, pool); },
      "MixFfn fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) {
        return ffn.forward_int(qx, 4, 4, full_provider(), pool);
      },
      "MixFfn int");
}

TEST(ThreadedForward, MbConvBitIdentical) {
  Rng rng = eq_rng();
  tfm::MbConv block(8, 8, 2, 1, rng);
  tfm::Tensor x = tfm::Tensor::randn(tfm::Shape{8, 6, 6}, rng, 0.7);
  (void)block.calibrate(x);
  const QuantParams in_qp = make_po2_params(x.amax() / 127.0, 8);
  (void)block.freeze(in_qp, tfm::QuantPolicy{});
  const tfm::QTensor qx = tfm::QTensor::quantize(x, in_qp);
  expect_pool_invariant(
      [&](ThreadPool* pool) { return block.forward_fp(x, pool); },
      "MbConv fp");
  expect_pool_invariant(
      [&](ThreadPool* pool) {
        return block.forward_int(qx, full_provider(), pool);
      },
      "MbConv int");
}

TEST(ThreadedForward, SegformerModelBitIdenticalAt124Threads) {
  tfm::SegformerConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.dims = {8, 16, 16, 16};
  cfg.heads = {1, 2, 2, 2};
  cfg.sr_ratios = {4, 2, 1, 1};
  cfg.depths = {1, 1, 1, 1};
  cfg.decoder_dim = 16;
  tfm::SegformerB0Like model(cfg);
  Rng rng = eq_rng();
  const tfm::Tensor image = tfm::Tensor::randn(tfm::Shape{3, 32, 32}, rng, 0.8);
  model.calibrate(image);
  model.freeze();
  const tfm::NonlinearProvider& nl = full_provider();
  const tfm::QTensor serial_int = model.forward_int(image, nl);
  const tfm::Tensor serial_fp = model.forward_fp(image);
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const tfm::QTensor ti = model.forward_int(image, nl, &pool);
    EXPECT_EQ(serial_int.data(), ti.data()) << threads << " threads (int)";
    const tfm::Tensor tf = model.forward_fp(image, &pool);
    EXPECT_EQ(serial_fp.data(), tf.data()) << threads << " threads (fp)";
  }
}

TEST(ThreadedForward, EfficientViTModelBitIdenticalAt124Threads) {
  tfm::EfficientViTConfig cfg;
  cfg.image_size = 32;
  cfg.num_classes = 5;
  cfg.widths = {8, 12, 16, 24};
  cfg.expand = 2;
  cfg.head_dim = 24;
  tfm::EfficientViTB0Like model(cfg);
  Rng rng = eq_rng();
  const tfm::Tensor image = tfm::Tensor::randn(tfm::Shape{3, 32, 32}, rng, 0.8);
  model.calibrate(image);
  model.freeze();
  const tfm::NonlinearProvider& nl = full_provider();
  const tfm::QTensor serial_int = model.forward_int(image, nl);
  const tfm::Tensor serial_fp = model.forward_fp(image);
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const tfm::QTensor ti = model.forward_int(image, nl, &pool);
    EXPECT_EQ(serial_int.data(), ti.data()) << threads << " threads (int)";
    const tfm::Tensor tf = model.forward_fp(image, &pool);
    EXPECT_EQ(serial_fp.data(), tf.data()) << threads << " threads (fp)";
  }
}

TEST(ThreadedSweep, ScaleSweepBitIdenticalToSerial) {
  const Approximator approx = Approximator::fit(Op::kGelu, Method::kGqaRm, {});
  SweepOptions serial_opts;
  const ScaleSweepResult serial = sweep_scale_mse(approx, serial_opts);
  SweepOptions threaded_opts;
  threaded_opts.num_threads = 4;
  ThreadPool external(4);
  SweepOptions pooled_opts;
  pooled_opts.pool = &external;  // caller-owned pool, no per-sweep spawn
  for (const SweepOptions& opts : {threaded_opts, pooled_opts}) {
    const ScaleSweepResult threaded = sweep_scale_mse(approx, opts);
    ASSERT_EQ(serial.points.size(), threaded.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(serial.points[i].exponent, threaded.points[i].exponent);
      EXPECT_EQ(serial.points[i].mse, threaded.points[i].mse);
      EXPECT_EQ(serial.points[i].samples, threaded.points[i].samples);
    }
  }
}

}  // namespace
}  // namespace gqa
