// Minimal JSON value model, writer, and parser — just enough to serialize
// fitted LUT tables and experiment metadata without external dependencies.
// Supports objects, arrays, strings, numbers, booleans, and null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gqa {

/// A JSON document node. Construction helpers keep call sites terse:
///   Json j = Json::object(); j["name"] = Json("gelu"); j["lambda"] = Json(5.0);
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double n) : type_(Type::kNumber), number_(n) {}
  explicit Json(int n) : type_(Type::kNumber), number_(n) {}
  explicit Json(std::int64_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  explicit Json(const char* s) : type_(Type::kString), string_(s) {}
  explicit Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json array_of(const std::vector<double>& values);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  // Object access. operator[] inserts for non-const (object only).
  Json& operator[](const std::string& key);
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  // Array access.
  void push_back(Json value);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t index) const;

  // Typed getters; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::vector<double> as_double_array() const;

  /// Serializes; `indent` < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a JSON document; throws std::runtime_error on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  // std::map keeps key order deterministic for golden-file tests.
  std::map<std::string, Json> object_;
};

/// Reads an entire file into a string; throws std::runtime_error on failure.
[[nodiscard]] std::string read_file(const std::string& path);

/// Writes a string to a file; throws std::runtime_error on failure.
/// NOT crash-safe: a crash mid-write leaves a truncated file at `path`.
/// Artifact writers must use write_file_atomic instead.
void write_file(const std::string& path, const std::string& content);

/// Crash-safe publish: writes to a unique temp file in the same directory,
/// flushes it to disk, then atomically renames it over `path`. Readers
/// never observe a torn file — they see either the old content or the new
/// content, and concurrent writers of the same path are last-writer-wins.
/// Throws std::runtime_error on I/O failure (the temp file is removed, so
/// a failed publish leaves no visible artifact). Carries the `cache_write`
/// fault-injection point (util/fault_injection.h) between the temp write
/// and the rename: under an armed chaos spec this throws a transient
/// ServingError with the temp file already unlinked — the torn-write
/// simulation the chaos suite asserts on.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace gqa
