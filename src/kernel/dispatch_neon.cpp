// NEON backend registration stub, compiled only on ARM targets that define
// __ARM_NEON. The op table is intentionally empty for now — every call site
// falls through to the scalar oracle — so the backend exists as a named,
// probeable dispatch target (and a place to land real NEON kernels) without
// claiming vector coverage it does not have. The differential suite treats
// an all-null backend as trivially conformant.
#include "kernel/dispatch.h"

#if defined(__ARM_NEON)

namespace gqa::kernel {

const KernelBackend kNeonBackend{
    .name = "neon",
    // __ARM_NEON is a compile-time guarantee on AArch64 (NEON is mandatory
    // in ARMv8-A), so the probe is unconditional.
    .probe = [] { return true; },
    .ops = KernelOps{},
};

}  // namespace gqa::kernel

#endif  // __ARM_NEON
