#include "kernel/int_pwl_unit.h"

#include <cmath>

#include "numerics/rounding.h"
#include "numerics/saturate.h"
#include "util/contracts.h"

namespace gqa {

IntPwlUnit::IntPwlUnit(QuantizedPwlTable table, IntPwlUnitConfig config)
    : table_(std::move(table)), config_(config) {
  table_.validate();
  GQA_EXPECTS(config_.acc_bits >= table_.input.bits + table_.param_fmt.width);
  GQA_EXPECTS(config_.max_shift >= 0 && config_.max_shift < 32);
  shift_s_ = table_.intercept_shift();
  GQA_EXPECTS_MSG(std::abs(shift_s_) <= config_.max_shift,
                  "input scale exceeds the shifter range");
  acc_scale_ = table_.input.scale * std::ldexp(1.0, -table_.lambda());
}

std::int64_t IntPwlUnit::eval_code(std::int64_t q) const {
  GQA_EXPECTS_MSG(fits(q, table_.input.bits, table_.input.is_signed),
                  "input code exceeds the input bus width");
  const auto i = static_cast<std::size_t>(table_.segment_index(q));
  const std::int64_t prod = table_.k_code[i] * q;  // width in+param bits
  // Runtime intercept alignment b̃ = b / S: left shift for S < 1, rounding
  // right shift for S > 1.
  const std::int64_t b = table_.b_code[i];
  const std::int64_t b_aligned =
      shift_s_ >= 0 ? sat_shl(b, shift_s_, config_.acc_bits)
                    : shift_round(b, -shift_s_);
  return sat_add(prod, b_aligned, config_.acc_bits);
}

double IntPwlUnit::eval_real_from_code(std::int64_t q) const {
  return static_cast<double>(eval_code(q)) * acc_scale_;
}

double IntPwlUnit::eval_real(double x) const {
  return eval_real_from_code(table_.input.quantize(x));
}

}  // namespace gqa
