// Integer-only Softmax: the attention-core scenario that motivates the
// paper. Scores arrive as INT8 codes with a power-of-two scale; EXP runs
// through the 8-entry pwl kernel and the denominator reciprocal through
// the multi-range DIV kernel — no floating-point arithmetic on the datapath.
#include <cmath>
#include <cstdio>

#include "tfm/modules.h"
#include "util/rng.h"

int main() {
  using namespace gqa;
  using namespace gqa::tfm;

  // A row of attention scores (e.g. one query against 12 keys).
  Rng rng(7);
  const int n = 12;
  Tensor scores(Shape{1, n});
  for (int j = 0; j < n; ++j) {
    scores.at(0, j) = static_cast<float>(rng.uniform(-6.0, 6.0));
  }

  // Quantize with a power-of-two scale (the paper's constraint for
  // non-linear-op inputs, Section 3.1).
  const QuantParams score_qp = make_po2_params(6.0 / 127.0, 8);
  const QTensor q_scores = QTensor::quantize(scores, score_qp);

  const Tensor reference = Softmax::forward_fp(scores);

  std::printf("%-18s %-10s %-10s %-10s\n", "backend", "probs[0]", "probs[5]",
              "max |err|");
  auto report = [&](const char* name, const NonlinearProvider& nl) {
    const QTensor probs = Softmax::forward_int(q_scores, nl);
    double max_err = 0.0;
    for (int j = 0; j < n; ++j) {
      const double p = Softmax::prob_params().dequantize(probs.at(0, j));
      max_err = std::max(max_err, std::abs(p - reference.at(0, j)));
    }
    std::printf("%-18s %-10.5f %-10.5f %-10.5f\n", name,
                Softmax::prob_params().dequantize(probs.at(0, 0)),
                Softmax::prob_params().dequantize(probs.at(0, 5)), max_err);
  };

  const auto exact = NonlinearProvider::exact();
  report("exact (None)", exact);
  for (Method m : all_methods()) {
    const auto nl = NonlinearProvider::with_method(m, {Op::kExp, Op::kDiv});
    report(method_name(m).c_str(), nl);
  }

  std::printf("\nFP32 reference row:");
  for (int j = 0; j < n; ++j) std::printf(" %.4f", reference.at(0, j));
  std::printf("\n");
  return 0;
}
