// Wall-clock timing for fit-cost reporting.
#pragma once

#include <chrono>

namespace gqa {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gqa
