// RingBuffer (src/util/ring_buffer.h) unit + hammer coverage, mirroring
// the BoundedQueue tests in server_test.cpp: FIFO order with
// overwrite-oldest displacement instead of backpressure, the capacity-1
// edge, the predicate/keep-newest pop variants the server's drop policies
// are built on, close semantics, and an MPMC hammer (runs under TSan in
// CI) proving the displacement accounting contract — every accepted item
// comes back exactly once, through a pop or a PushResult::displaced.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/contracts.h"
#include "util/ring_buffer.h"

namespace gqa {
namespace {

TEST(RingBuffer, FifoWithinCapacityAndSizeAccounting) {
  RingBuffer<int> ring(3);
  EXPECT_EQ(ring.capacity(), 3U);
  EXPECT_EQ(ring.size(), 0U);
  EXPECT_EQ(ring.try_pop(), std::nullopt);  // empty
  for (int v : {1, 2, 3}) {
    const RingBuffer<int>::PushResult r = ring.push(v);
    EXPECT_TRUE(r.accepted);
    EXPECT_FALSE(r.displaced.has_value());
  }
  EXPECT_EQ(ring.size(), 3U);
  EXPECT_EQ(ring.overwritten(), 0U);
  EXPECT_EQ(ring.try_pop(), std::optional<int>(1));
  EXPECT_EQ(ring.try_pop(), std::optional<int>(2));
  ring.push(4);  // wraps around the storage
  EXPECT_EQ(ring.try_pop(), std::optional<int>(3));
  EXPECT_EQ(ring.try_pop(), std::optional<int>(4));
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

TEST(RingBuffer, FullPushDisplacesOldestAndCountsIt) {
  RingBuffer<int> ring(2);
  ring.push(1);
  ring.push(2);
  RingBuffer<int>::PushResult r = ring.push(3);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.displaced, std::optional<int>(1));  // oldest goes first
  EXPECT_EQ(ring.size(), 2U);
  EXPECT_EQ(ring.overwritten(), 1U);
  r = ring.push(4);
  EXPECT_EQ(r.displaced, std::optional<int>(2));
  EXPECT_EQ(ring.overwritten(), 2U);
  // What remains is the two newest, still FIFO among themselves.
  EXPECT_EQ(ring.try_pop(), std::optional<int>(3));
  EXPECT_EQ(ring.try_pop(), std::optional<int>(4));
}

TEST(RingBuffer, CapacityOneAlwaysHoldsTheNewest) {
  // The degenerate ring is the pure latest-frame mailbox: every push of a
  // nonempty ring displaces the previous item.
  RingBuffer<int> ring(1);
  EXPECT_FALSE(ring.push(1).displaced.has_value());
  for (int v = 2; v <= 5; ++v) {
    const RingBuffer<int>::PushResult r = ring.push(v);
    EXPECT_EQ(r.displaced, std::optional<int>(v - 1));
  }
  EXPECT_EQ(ring.size(), 1U);
  EXPECT_EQ(ring.overwritten(), 4U);
  EXPECT_EQ(ring.try_pop(), std::optional<int>(5));
  EXPECT_EQ(ring.capacity(), 1U);
}

TEST(RingBuffer, ZeroCapacityIsAContractViolation) {
  EXPECT_THROW(RingBuffer<int>(0), ContractViolation);
}

TEST(RingBuffer, TryPopIfOnlyTakesAMatchingFront) {
  RingBuffer<int> ring(4);
  for (int v : {10, 11, 12}) ring.push(v);
  const auto is_even = [](int v) { return v % 2 == 0; };
  // Front is 10 (even): popped. New front 11 (odd): refused, and the
  // refusal does not disturb the ring.
  EXPECT_EQ(ring.try_pop_if(is_even), std::optional<int>(10));
  EXPECT_EQ(ring.try_pop_if(is_even), std::nullopt);
  EXPECT_EQ(ring.size(), 2U);
  EXPECT_EQ(ring.try_pop(), std::optional<int>(11));
  EXPECT_EQ(ring.try_pop_if(is_even), std::optional<int>(12));
  EXPECT_EQ(ring.try_pop_if(is_even), std::nullopt);  // empty
}

TEST(RingBuffer, PopAllButKeepsTheNewest) {
  RingBuffer<int> ring(4);
  for (int v : {1, 2, 3, 4}) ring.push(v);
  const std::vector<int> stale = ring.pop_all_but(1);  // the coalesce sweep
  EXPECT_EQ(stale, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ring.size(), 1U);
  EXPECT_TRUE(ring.pop_all_but(1).empty());  // already at the target
  EXPECT_EQ(ring.try_pop(), std::optional<int>(4));
  for (int v : {5, 6}) ring.push(v);
  EXPECT_EQ(ring.try_pop_all(), (std::vector<int>{5, 6}));
  EXPECT_EQ(ring.size(), 0U);
}

TEST(RingBuffer, CloseRefusesPushesButDrainsPendingItems) {
  RingBuffer<int> ring(3);
  ring.push(1);
  ring.push(2);
  ring.close();
  ring.close();  // idempotent
  EXPECT_TRUE(ring.closed());
  const RingBuffer<int>::PushResult r = ring.push(3);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.displaced.has_value());  // a refused push displaces nothing
  EXPECT_EQ(ring.size(), 2U);
  EXPECT_EQ(ring.try_pop(), std::optional<int>(1));
  EXPECT_EQ(ring.try_pop(), std::optional<int>(2));
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

// ----------------------------------------------------- MPMC hammer (TSan) --

TEST(RingBuffer, ConcurrentPushPopDeliversEveryItemExactlyOnce) {
  // The displacement accounting contract under real contention: producers
  // push unique ids into a tiny ring (so displacement really happens) while
  // consumers spin try_pop. Every id must surface exactly once — via a pop
  // OR via the displaced slot of the push that evicted it — and the
  // overwritten() counter must equal the displacement total.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  constexpr int kTotal = kProducers * kPerProducer;
  RingBuffer<int> ring(4);  // tiny: pushes really displace
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s = 0;
  std::atomic<bool> producing{true};
  std::atomic<std::uint64_t> displaced_count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        if (std::optional<int> v = ring.try_pop()) {
          ++seen[static_cast<std::size_t>(*v)];
          continue;
        }
        if (!producing.load()) {
          // Producers done and the ring read empty: drain once more to
          // close the race between the check and a final displacementless
          // push, then leave.
          for (const int v : ring.try_pop_all()) {
            ++seen[static_cast<std::size_t>(v)];
          }
          return;
        }
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const RingBuffer<int>::PushResult r =
            ring.push(p * kPerProducer + i);
        ASSERT_TRUE(r.accepted);
        if (r.displaced.has_value()) {
          ++seen[static_cast<std::size_t>(*r.displaced)];
          ++displaced_count;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  producing = false;
  for (std::thread& t : consumers) t.join();

  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "id " << i;
  }
  EXPECT_EQ(ring.overwritten(), displaced_count.load());
  EXPECT_EQ(ring.size(), 0U);
}

}  // namespace
}  // namespace gqa
