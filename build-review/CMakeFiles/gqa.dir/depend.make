# Empty dependencies file for gqa.
# This may be replaced when dependencies are built.
