#include "util/csv.h"

#include <stdexcept>

#include "util/strings.h"

namespace gqa {

CsvWriter::CsvWriter(const std::string& path) : out_(path), path_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format("%.10g", v));
  write_row(text);
}

}  // namespace gqa
