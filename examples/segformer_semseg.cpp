// End-to-end semantic segmentation with the integer-only Segformer-B0-like
// model: train the head on synthetic scenes, quantize, and compare the
// exact-non-linearity baseline against GQA-LUT w/ RM kernels.
//
// Runs a reduced workload by default; set GQA_TRAIN_SCENES for more.
#include <cstdio>

#include "eval/segtask.h"
#include "util/env.h"
#include "util/timer.h"

int main() {
  using namespace gqa;

  SegTaskOptions options;
  options.train_scenes = static_cast<int>(env_int("GQA_TRAIN_SCENES", 96));
  options.eval_scenes = 8;

  Timer timer;
  std::printf("Preparing Segformer-B0-like on synthetic scenes "
              "(%d training scenes)...\n", options.train_scenes);
  const SegformerTask task = make_segformer_task(options);
  std::printf("ready in %.1fs\n\n", timer.seconds());

  std::printf("FP32 teacher mIoU      : %.2f%%\n", 100.0 * task.miou_fp());
  const double base = task.miou_int(tfm::NonlinearProvider::exact());
  std::printf("INT8 + exact non-linear: %.2f%%\n", 100.0 * base);

  const auto nl = tfm::NonlinearProvider::with_method(
      Method::kGqaRm, {Op::kExp, Op::kGelu, Op::kDiv, Op::kRsqrt});
  const double gqa = task.miou_int(nl);
  std::printf("INT8 + GQA-LUT w/ RM   : %.2f%%  (delta %+0.2f)\n",
              100.0 * gqa, 100.0 * (gqa - base));

  // Label-map visualization of one scene (first 16x16 tile).
  const LabeledScene scene = make_scene(options.scene, /*seed=*/99);
  const auto pred = tfm::SegformerB0Like::argmax_labels(
      task.model().forward_int(scene.image, nl));
  std::printf("\npredicted 16x16 label map (scene 99):\n");
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      std::printf("%2d", pred[static_cast<std::size_t>(y) * 16 + x]);
    }
    std::printf("\n");
  }
  return 0;
}
