// Uniform symmetric quantization (Eq. 2 of the paper):
//   q = clip(round(x / S), Qn, Qp),   x̃ = S * q
// with power-of-two scale support for the quantization-aware pwl pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "numerics/rounding.h"
#include "numerics/saturate.h"

namespace gqa {

/// Per-tensor quantization parameters.
struct QuantParams {
  double scale = 1.0;     ///< S: dequantized = scale * code
  int bits = 8;           ///< code width
  bool is_signed = true;  ///< signed [Qn, Qp] = [-2^(k-1), 2^(k-1)-1]

  [[nodiscard]] std::int64_t qmin() const { return int_min(bits, is_signed); }
  [[nodiscard]] std::int64_t qmax() const { return int_max(bits, is_signed); }

  /// Quantizes one value (Eq. 2).
  [[nodiscard]] std::int64_t quantize(double x) const {
    return saturate(round_to_int(x / scale), bits, is_signed);
  }

  /// Dequantizes one code.
  [[nodiscard]] double dequantize(std::int64_t q) const {
    return scale * static_cast<double>(q);
  }

  /// Quantize → dequantize round trip (the "fake-quant" value).
  [[nodiscard]] double fake_quantize(double x) const {
    return dequantize(quantize(x));
  }

  [[nodiscard]] std::vector<std::int64_t> quantize(std::span<const double> xs) const;
  [[nodiscard]] std::vector<double> dequantize(std::span<const std::int64_t> qs) const;

  /// True when scale is an exact power of two.
  [[nodiscard]] bool scale_is_po2() const;

  /// log2(scale); only valid for power-of-two scales.
  [[nodiscard]] int po2_exponent() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const QuantParams&, const QuantParams&) = default;
};

/// Builds power-of-two quantization parameters from a learnable-alpha style
/// real scale: S = 2^round(log2 alpha) (§3.1).
[[nodiscard]] QuantParams make_po2_params(double alpha, int bits,
                                          bool is_signed = true);

/// Symmetric scale covering [-amax, amax] with the given width (min-max
/// method); amax must be positive.
[[nodiscard]] double symmetric_scale(double amax, int bits,
                                     bool is_signed = true);

}  // namespace gqa
