// Figure 2(a): normalized MSE of NN-LUT vs GQA-LUT w/o RM vs GQA-LUT w/ RM
// for 8-entry GELU approximation across INT8 scaling factors S = 2^0..2^-6,
// plus the large-scale error breakdown that motivates Rounding Mutation.
#include <cmath>

#include "bench_util.h"

using namespace gqa;

int main() {
  std::printf("== Figure 2(a): GELU 8-entry normalized MSE across scales ==\n");
  const std::vector<Method> methods = all_methods();
  std::map<Method, std::vector<double>> series;
  for (Method m : methods) {
    series[m] = bench::avg_scale_series(Op::kGelu, m, 8);
  }

  // The figure plots log10(2e4 * MSE) normalized to [0, 1] by the maximum.
  double peak = 0.0;
  for (const auto& [m, mses] : series) {
    for (double v : mses) peak = std::max(peak, std::log10(2e4 * v));
  }

  TablePrinter table({"S", "NN-LUT", "GQA w/o RM", "GQA w/ RM",
                      "NN/RM ratio"});
  table.set_title("Fig. 2(a): normalized log10(2e4*MSE), GELU 8-entry");
  for (int i = 0; i <= 6; ++i) {
    const double nn = series[Method::kNnLut][static_cast<std::size_t>(i)];
    const double g0 = series[Method::kGqaNoRm][static_cast<std::size_t>(i)];
    const double g1 = series[Method::kGqaRm][static_cast<std::size_t>(i)];
    table.add_row({pow2_label(-i), fixed(std::log10(2e4 * nn) / peak, 3),
                   fixed(std::log10(2e4 * g0) / peak, 3),
                   fixed(std::log10(2e4 * g1) / peak, 3),
                   fixed(nn / g1, 2) + "x"});
  }
  bench::emit(table, "fig2a");

  // Error-mass breakdown for GQA w/o RM (paper: large scales dominate with
  // 92.5% of the total MSE).
  auto share = [](const std::vector<double>& mses) {
    double large = 0.0, total = 0.0;
    for (std::size_t i = 0; i < mses.size(); ++i) {
      total += mses[i];
      if (i < 3) large += mses[i];
    }
    return 100.0 * large / total;
  };
  std::printf("\nMSE breakdown (share of S in {2^0, 2^-1, 2^-2}):\n");
  std::printf("  GQA-LUT w/o RM : %5.1f%%  (paper: 92.5%% dominant)\n",
              share(series[Method::kGqaNoRm]));
  std::printf("  GQA-LUT w/ RM  : %5.1f%%  (RM flattens the profile)\n",
              share(series[Method::kGqaRm]));
  std::printf("\nRaw MSE series (S = 2^0 .. 2^-6):\n");
  for (Method m : methods) {
    std::printf("  %-16s:", method_name(m).c_str());
    for (double v : series[m]) std::printf(" %.2e", v);
    std::printf("\n");
  }
  return 0;
}
