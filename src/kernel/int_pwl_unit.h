// Bit-accurate software model of the Figure 1(b) hardware unit:
//
//   q (INT8/16) ──┬─> comparator chain over p̃_i ──> entry index i
//                 └─> multiplier k_i · q ──┐
//        LUT b_i ──> shifter b_i << s ─────┴─> adder ──> acc (λ frac bits)
//
// All internal buses have explicit widths and saturate. The dequantized
// output is S · acc · 2^-λ, which equals k_i·x̃ + b_i for x̃ = S·q — i.e.
// pwl(S·q) = S·pwl_q(q), the separability property of §3.1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernel/dispatch.h"
#include "pwl/quantized_table.h"

namespace gqa {

/// Bus widths of the datapath. Defaults cover INT8/INT16 inputs with the
/// paper's shift range (multi-range scaling uses shifts up to 12).
struct IntPwlUnitConfig {
  int acc_bits = 32;   ///< accumulator width (saturating adder output)
  int max_shift = 16;  ///< barrel shifter capability for b << s
};

class IntPwlUnit {
 public:
  /// The table's input scale must be a power of two (validated).
  explicit IntPwlUnit(QuantizedPwlTable table,
                      IntPwlUnitConfig config = IntPwlUnitConfig{});

  /// Integer path: input code -> accumulator code with λ frac bits.
  /// The input code must fit the table's input width (hardware bus).
  [[nodiscard]] std::int64_t eval_code(std::int64_t q) const;

  /// Dequantized output value S · acc · 2^-λ.
  [[nodiscard]] double eval_real_from_code(std::int64_t q) const;

  /// Quantizes a real input and evaluates (round-trips through the bus).
  [[nodiscard]] double eval_real(double x) const;

  /// Batched integer path, bit-identical to per-element eval_code. The
  /// segment is resolved through the precomputed dense code->segment table
  /// (built once per unit; no per-element search, no float compares) and
  /// the intercept alignment b << s is hoisted out of the element loop.
  void eval_codes(std::span<const std::int64_t> q,
                  std::span<std::int64_t> out) const;

  /// Batched dequantized path: out[i] = S · eval_code(q[i]) · 2^-λ.
  void eval_reals_from_codes(std::span<const std::int64_t> q,
                             std::span<double> out) const;

  /// Like eval_reals_from_codes, but codes beyond the input bus saturate to
  /// its bounds (hardware behaviour for over-range activations) instead of
  /// failing the precondition. Equals saturate-then-eval, without the copy.
  void eval_reals_from_codes_saturated(std::span<const std::int64_t> q,
                                       std::span<double> out) const;

  [[nodiscard]] const QuantizedPwlTable& table() const { return table_; }
  [[nodiscard]] const IntPwlUnitConfig& config() const { return config_; }

  /// Scale of the accumulator codes: S · 2^-λ.
  [[nodiscard]] double acc_scale() const { return acc_scale_; }

 private:
  [[nodiscard]] std::size_t segment_of(std::int64_t q) const {
    if (dense_entries_ > 0) {
      return static_cast<std::size_t>(
          seg_of_code_[static_cast<std::size_t>(q - code_lo_)]);
    }
    return static_cast<std::size_t>(table_.segment_index(q));  // wide buses
  }

  /// View over the dense deployment artifacts for a dispatched SIMD kernel.
  /// Built per call (the vectors may relocate when the unit is copied), and
  /// only meaningful when simd_eligible_ is true.
  [[nodiscard]] kernel::PwlTableView simd_view() const {
    kernel::PwlTableView view;
    view.seg_of_code = seg_of_code_.data();
    view.k_code = table_.k_code.data();
    view.b_aligned = b_aligned_.data();
    if (!k_of_code_.empty()) {
      view.k_of_code = k_of_code_.data();
      view.b_of_code = b_of_code_.data();
    }
    view.code_lo = code_lo_;
    view.in = in_bounds_;
    view.acc = acc_bounds_;
    view.acc_scale = acc_scale_;
    return view;
  }

  QuantizedPwlTable table_;
  IntPwlUnitConfig config_;
  int shift_s_;       ///< b << s where S = 2^-s; negative s shifts right
  double acc_scale_;
  // Deployment artifacts precomputed at construction: the intercepts are
  // shift-aligned once (the barrel shift depends only on the segment), and
  // the comparator chain is flattened into a dense code->segment table over
  // the full input bus (<= 2^16 entries for the paper's INT8/INT16 buses).
  // The table carries 3 trailing padding bytes so 4-byte SIMD gathers of
  // 1-byte entries never read past the allocation; dense_entries_ is the
  // unpadded logical size.
  std::vector<std::int64_t> b_aligned_;
  std::vector<std::uint8_t> seg_of_code_;
  // Per-code parameter tables for small buses (see PwlTableView::k_of_code):
  // empty when the bus is too wide for the 16-bytes-per-code footprint.
  std::vector<std::int64_t> k_of_code_;
  std::vector<std::int64_t> b_of_code_;
  std::size_t dense_entries_ = 0;
  std::int64_t code_lo_ = 0;
  BusBounds in_bounds_{};   ///< input-bus bounds (single-source clamp)
  BusBounds acc_bounds_{};  ///< accumulator saturation bounds
  // True when the dense table exists and the widths satisfy the SIMD
  // exactness invariants documented on kernel::PwlTableView; wide buses,
  // >int32 slope codes and >50-bit accumulators always take the scalar
  // oracle (including the >16-bit binary-search fallback).
  bool simd_eligible_ = false;
};

}  // namespace gqa
