// Multi-Range Input Scaling (§3.1, Table 2). Wide-range operators (DIV,
// RSQRT) receive fixed-point intermediate values rather than quantized
// activations, so their input range extends far beyond the breakpoint
// interval IR = [Rn, Rp]. The range outside IR is split into sub-ranges
// SR_i, each mapped back into IR by a manually chosen power-of-two factor
// S'_i; the pwl output is then rescaled by S'_i (DIV) or sqrt(S'_i)
// (RSQRT).
#pragma once

#include <string>
#include <vector>

#include "numerics/nonlinear.h"

namespace gqa {

/// One sub-range [lo, hi) with its power-of-two scale S' = 2^scale_exp.
struct SubRange {
  double lo = 0.0;
  double hi = 0.0;
  int scale_exp = 0;  ///< negative: S' < 1 compresses into IR
};

/// Full multi-range configuration for one operator.
struct MultiRangeConfig {
  Op op = Op::kDiv;
  double ir_lo = 0.0;  ///< Rn of the fitted pwl
  double ir_hi = 0.0;  ///< Rp of the fitted pwl
  std::vector<SubRange> subranges;

  /// Table 2 presets.
  [[nodiscard]] static MultiRangeConfig div_preset();
  [[nodiscard]] static MultiRangeConfig rsqrt_preset();
  [[nodiscard]] static MultiRangeConfig preset_for(Op op);

  /// Scale exponent for input `x`: 0 inside IR, the matching sub-range
  /// exponent beyond it. Values below IR also return 0 (clamped by the
  /// pwl's first segment).
  [[nodiscard]] int select_exponent(double x) const;

  /// Output rescale exponent for the op given the input exponent:
  /// DIV -> e, RSQRT -> e/2 (Table 2 exponents are even by construction).
  [[nodiscard]] int output_exponent(int input_exp) const;

  /// Reference multi-range evaluation in real arithmetic: rescales x into
  /// IR, applies `pwl`, rescales the result. Used for operator-level MSE.
  [[nodiscard]] double eval(const std::function<double(double)>& pwl,
                            double x) const;

  void validate() const;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace gqa
