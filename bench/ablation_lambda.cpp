// Ablation: decimal bitwidth lambda (fixed-point resolution of slopes and
// intercepts) vs quantization-aware MSE. The paper fixes lambda = 5; this
// sweep shows the sensitivity of that choice.
#include "bench_util.h"
#include "gqa/gqa_lut.h"

using namespace gqa;

int main() {
  std::printf("== Ablation: lambda (k/b decimal bits) vs MSE ==\n");
  TablePrinter table({"lambda", "GELU MSE", "HSWISH MSE", "EXP MSE"});
  table.set_title("Lambda ablation (GQA-LUT w/ RM, 8-entry, INT8)");
  for (int lambda : {3, 4, 5, 6, 7, 8}) {
    std::vector<std::string> row = {format("%d", lambda)};
    for (Op op : {Op::kGelu, Op::kHswish, Op::kExp}) {
      FitOptions options;
      options.lambda = lambda;
      const Approximator approx = Approximator::fit(op, Method::kGqaRm, options);
      SweepOptions sweep;
      sweep.lambda = lambda;
      row.push_back(sci(operator_level_mse(approx, sweep)));
    }
    table.add_row(row);
  }
  table.set_footnote("lambda > 5 shrinks the representable k/b range at "
                     "8-bit storage; lambda < 5 coarsens the grid.");
  bench::emit(table, "ablation_lambda");
  return 0;
}
