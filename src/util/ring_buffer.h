// Fixed-capacity MPMC ring buffer with overwrite-oldest admission.
//
// This is the per-stream frame mailbox behind gqa::Server's StreamSession
// API (docs/ARCHITECTURE.md "Streaming sessions"). It differs from
// BoundedQueue in exactly one way that matters for real-time serving:
// push() never blocks and never fails for capacity reasons. When the ring
// is full the OLDEST pending item is displaced and handed back to the
// caller, who must resolve it (the server reports it kFrameSuperseded) —
// so a producer that outruns the consumer sheds its own stale work instead
// of stalling the camera thread or growing without bound.
//
// Every operation is try_* (no condition variables): the server performs
// all ring operations while already holding its scheduler mutex and parks
// on its own cv, so a second blocking primitive here would only add a
// lock-ordering hazard. Standalone users (see tests/ring_buffer_test.cpp)
// spin with std::this_thread::yield.
//
// Displacement accounting contract: for any interleaving of concurrent
// push/pop calls, every accepted item is returned EXACTLY once — either by
// a pop-side call or inside a PushResult::displaced — and overwritten()
// counts the displacements. The MPMC hammer test asserts this union.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/contracts.h"
#include "util/thread_annotations.h"

namespace gqa {

template <typename T>
class RingBuffer {
 public:
  /// What push() did with the item (and with the item it evicted).
  struct PushResult {
    /// False iff the ring was closed; the pushed item was then discarded.
    bool accepted = false;
    /// The oldest pending item, when the push displaced it (ring full).
    std::optional<T> displaced;
  };

  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    GQA_EXPECTS_MSG(capacity >= 1, "RingBuffer capacity must be >= 1");
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  /// Inserts at the back; when full, displaces the front (oldest) item
  /// into the result instead of blocking or rejecting. Never fails except
  /// after close().
  PushResult push(T item) GQA_EXCLUDES(mutex_) {
    PushResult result;
    MutexLock lock(mutex_);
    if (closed_) return result;
    result.accepted = true;
    if (count_ == capacity_) {
      result.displaced = std::move(*slots_[head_]);
      slots_[head_] = std::move(item);
      head_ = next(head_);
      ++overwritten_;
    } else {
      slots_[(head_ + count_) % capacity_] = std::move(item);
      ++count_;
    }
    return result;
  }

  /// Pops the oldest item, or nullopt when empty.
  std::optional<T> try_pop() GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (count_ == 0) return std::nullopt;
    return pop_front_locked();
  }

  /// Pops the oldest item iff `pred(oldest)` holds. Used by the server's
  /// kDropLate sweep: expire front frames while their deadline has passed,
  /// stopping at the first live one without disturbing it.
  template <typename Pred>
  std::optional<T> try_pop_if(Pred pred) GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (count_ == 0) return std::nullopt;
    if (!pred(*slots_[head_])) return std::nullopt;
    return pop_front_locked();
  }

  /// Pops oldest items until at most `keep` newest remain, returning the
  /// popped items in FIFO order. kCoalesce uses keep == 1 ("everything but
  /// the newest is stale"); keep == 0 drains the ring.
  std::vector<T> pop_all_but(std::size_t keep) GQA_EXCLUDES(mutex_) {
    std::vector<T> popped;
    MutexLock lock(mutex_);
    while (count_ > keep) popped.push_back(pop_front_locked());
    return popped;
  }

  /// Drains the ring in FIFO order.
  std::vector<T> try_pop_all() GQA_EXCLUDES(mutex_) { return pop_all_but(0); }

  /// Refuses further pushes. Idempotent; pending items remain poppable.
  void close() GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
  }

  [[nodiscard]] bool closed() const GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return count_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Number of items displaced by full-ring pushes over the ring's life.
  [[nodiscard]] std::uint64_t overwritten() const GQA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return overwritten_;
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t pos) const {
    return (pos + 1) % capacity_;
  }

  T pop_front_locked() GQA_REQUIRES(mutex_) {
    T item = std::move(*slots_[head_]);
    slots_[head_].reset();
    head_ = next(head_);
    --count_;
    return item;
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<std::optional<T>> slots_ GQA_GUARDED_BY(mutex_);
  std::size_t head_ GQA_GUARDED_BY(mutex_) = 0;
  std::size_t count_ GQA_GUARDED_BY(mutex_) = 0;
  std::uint64_t overwritten_ GQA_GUARDED_BY(mutex_) = 0;
  bool closed_ GQA_GUARDED_BY(mutex_) = false;
};

}  // namespace gqa
