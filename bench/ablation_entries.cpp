// Ablation: LUT entry count N in {4, 8, 16, 32} vs quantization-aware MSE
// and hardware cost — the accuracy/area trade-off that motivates the
// paper's small-entry INT8 design point.
#include <cmath>

#include "bench_util.h"
#include "hw/pwl_unit_design.h"

using namespace gqa;

int main() {
  std::printf("== Ablation: entry count vs accuracy and hardware cost ==\n");
  TablePrinter table({"Entries", "GELU MSE", "EXP MSE", "DIV MSE",
                      "INT8 area (um2)", "INT8 power (mW)"});
  table.set_title("Entry-count ablation (GQA-LUT w/ RM, INT8, lambda=5)");
  for (int entries : {4, 8, 16, 32}) {
    const hw::SynthReport synth = hw::synthesize(
        hw::PwlUnitSpec{hw::Precision::kInt8, entries, 8});
    table.add_row(
        {format("%d", entries),
         sci(bench::avg_operator_mse(Op::kGelu, Method::kGqaRm, entries)),
         sci(bench::avg_operator_mse(Op::kExp, Method::kGqaRm, entries)),
         sci(bench::avg_operator_mse(Op::kDiv, Method::kGqaRm, entries)),
         format("%.0f", synth.area_um2), fixed(synth.power_mw, 2)});
  }
  bench::emit(table, "ablation_entries");
  return 0;
}
