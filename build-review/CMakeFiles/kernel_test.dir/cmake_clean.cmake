file(REMOVE_RECURSE
  "CMakeFiles/kernel_test.dir/tests/kernel_test.cpp.o"
  "CMakeFiles/kernel_test.dir/tests/kernel_test.cpp.o.d"
  "kernel_test"
  "kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
