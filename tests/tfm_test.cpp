// Tests for the Transformer substrate: tensors, quantized modules (integer
// paths validated against the FP reference within quantization error), and
// the integer Softmax / LayerNorm built on the pwl kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "tfm/modules.h"
#include "tfm/probe.h"
#include "util/contracts.h"

namespace gqa::tfm {
namespace {

Rng test_rng() { return Rng(0xABCDEF); }

// ------------------------------------------------------------------ tensor

TEST(Tensor, ShapesAndAccessors) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(Shape({4, 5, 6}).to_string(), "{4, 5, 6}");
}

TEST(Tensor, RandnDeterministic) {
  Rng a(1), b(1);
  const Tensor x = Tensor::randn(Shape{10}, a, 1.0);
  const Tensor y = Tensor::randn(Shape{10}, b, 1.0);
  EXPECT_EQ(x.data(), y.data());
  EXPECT_GT(x.amax(), 0.0);
}

TEST(QTensorBasics, QuantizeDequantizeRoundTrip) {
  Tensor t(Shape{2, 2});
  t.at(0, 0) = 0.5f;
  t.at(0, 1) = -0.26f;
  t.at(1, 0) = 3.9f;
  t.at(1, 1) = -4.1f;
  const QuantParams qp{1.0 / 32.0, 8, true};
  const QTensor q = QTensor::quantize(t, qp);
  EXPECT_EQ(q.at(0, 0), 16);
  EXPECT_EQ(q.at(1, 0), 125);
  EXPECT_EQ(q.at(1, 1), -128);  // clipped
  const Tensor back = q.dequantize();
  EXPECT_NEAR(back.at(0, 1), -0.26, qp.scale / 2 + 1e-9);
}

TEST(Tokens, RoundTripPreservesLayout) {
  Tensor map(Shape{2, 3, 4});
  for (std::size_t i = 0; i < map.data().size(); ++i) {
    map.data()[i] = static_cast<float>(i);
  }
  const Tensor tokens = to_tokens(map);
  EXPECT_EQ(tokens.shape(), (Shape{12, 2}));
  EXPECT_FLOAT_EQ(tokens.at(0, 0), map.at(0, 0, 0));
  EXPECT_FLOAT_EQ(tokens.at(5, 1), map.at(1, 1, 1));
  const Tensor back = from_tokens(tokens, 3, 4);
  EXPECT_EQ(back.data(), map.data());
}

// ------------------------------------------------------------------ linear

TEST(LinearModule, IntMatchesFpWithinQuantError) {
  Rng rng = test_rng();
  Linear lin(16, 8, rng);
  Tensor x = Tensor::randn(Shape{5, 16}, rng, 1.0);
  const Tensor ref = lin.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  const QuantParams out_qp = lin.freeze(in_qp, QuantPolicy{});
  const QTensor qx = QTensor::quantize(x, in_qp);
  const QTensor qy = lin.forward_int(qx);
  EXPECT_EQ(qy.params(), out_qp);
  double max_err = 0.0;
  for (int i = 0; i < 5; ++i) {
    for (int o = 0; o < 8; ++o) {
      max_err = std::max(max_err, std::abs(out_qp.dequantize(qy.at(i, o)) -
                                           static_cast<double>(ref.at(i, o))));
    }
  }
  // Error budget: input quant + weight quant + output quant.
  EXPECT_LT(max_err, 8.0 * (in_qp.scale + out_qp.scale));
}

TEST(LinearModule, LifecycleContracts) {
  Rng rng = test_rng();
  Linear lin(4, 4, rng);
  EXPECT_THROW(lin.freeze(QuantParams{0.1, 8, true}, QuantPolicy{}),
               ContractViolation);  // no calibration yet
  Tensor wrong(Shape{2, 5});
  EXPECT_THROW((void)lin.forward_fp(wrong), ContractViolation);
}

// -------------------------------------------------------------------- conv

TEST(ConvModule, HandComputedOutput) {
  Rng rng = test_rng();
  Conv2d conv(1, 1, 3, 1, 1, rng);
  // Identity kernel: centre tap 1, everything else 0, no bias.
  for (float& v : conv.weights().data()) v = 0.0f;
  conv.weights().at(0, 0, 1, 1) = 1.0f;
  conv.bias().at(0) = 0.0f;
  Tensor x(Shape{1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x.data()[i] = static_cast<float>(i);
  const Tensor y = conv.forward_fp(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_EQ(y.data(), x.data());
}

TEST(ConvModule, StrideAndPaddingGeometry) {
  Rng rng = test_rng();
  Conv2d conv(3, 8, 7, 4, 3, rng);
  const Tensor y = conv.forward_fp(Tensor(Shape{3, 64, 64}));
  EXPECT_EQ(y.shape(), (Shape{8, 16, 16}));
  Conv2d dw(4, 4, 3, 2, 1, rng, /*depthwise=*/true);
  const Tensor yd = dw.forward_fp(Tensor(Shape{4, 8, 8}));
  EXPECT_EQ(yd.shape(), (Shape{4, 4, 4}));
}

TEST(ConvModule, IntMatchesFpWithinQuantError) {
  Rng rng = test_rng();
  Conv2d conv(4, 6, 3, 1, 1, rng);
  Tensor x = Tensor::randn(Shape{4, 6, 6}, rng, 1.0);
  const Tensor ref = conv.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  const QuantParams out_qp = conv.freeze(in_qp, QuantPolicy{});
  const QTensor qy = conv.forward_int(QTensor::quantize(x, in_qp));
  double max_err = 0.0;
  for (std::size_t i = 0; i < qy.data().size(); ++i) {
    max_err = std::max(max_err,
                       std::abs(out_qp.dequantize(qy.data()[i]) -
                                static_cast<double>(ref.data()[i])));
  }
  EXPECT_LT(max_err, 10.0 * (in_qp.scale + out_qp.scale));
}

TEST(ConvModule, DepthwiseRequiresMatchingChannels) {
  Rng rng = test_rng();
  EXPECT_THROW(Conv2d(4, 8, 3, 1, 1, rng, /*depthwise=*/true),
               ContractViolation);
}

TEST(ConvModule, RejectsInputSmallerThanKernel) {
  Rng rng = test_rng();
  // 5x5 kernel, no padding: a 3x3 input would produce a non-positive
  // output size — must fail loudly instead of building a bogus shape.
  Conv2d conv(2, 4, 5, 1, 0, rng);
  EXPECT_THROW((void)conv.forward_fp(Tensor(Shape{2, 3, 3})),
               ContractViolation);
  // Degenerate on one axis only is just as invalid.
  EXPECT_THROW((void)conv.forward_fp(Tensor(Shape{2, 8, 4})),
               ContractViolation);
  // With stride > 1 the truncating division would round a never-fitting
  // window up to output size 1; the numerator guard must still fire.
  Rng rng2 = test_rng();
  Conv2d strided(1, 1, 5, 2, 0, rng2);
  EXPECT_THROW((void)strided.forward_fp(Tensor(Shape{1, 4, 4})),
               ContractViolation);
  // The integer path enforces the same geometry. Calibrate/freeze on a
  // valid size first so forward_int reaches the shape check.
  Tensor ok = Tensor::randn(Shape{2, 6, 6}, rng, 1.0);
  (void)conv.calibrate(ok);
  const QuantParams in_qp{ok.amax() / 127.0, 8, true};
  (void)conv.freeze(in_qp, QuantPolicy{});
  QTensor small(Shape{2, 3, 3}, in_qp);
  EXPECT_THROW((void)conv.forward_int(small), ContractViolation);
}

// --------------------------------------------------------------- layernorm

TEST(LayerNormModule, FpNormalizesRows) {
  Rng rng = test_rng();
  LayerNorm ln(32, rng);
  // Neutral affine for the check.
  for (float& g : ln.gamma().data()) g = 1.0f;
  for (float& b : ln.beta().data()) b = 0.0f;
  Tensor x = Tensor::randn(Shape{4, 32}, rng, 3.0);
  const Tensor y = ln.forward_fp(x);
  for (int i = 0; i < 4; ++i) {
    double mean = 0.0, var = 0.0;
    for (int d = 0; d < 32; ++d) mean += y.at(i, d) / 32.0;
    for (int d = 0; d < 32; ++d) {
      var += (y.at(i, d) - mean) * (y.at(i, d) - mean) / 32.0;
    }
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormModule, IntTracksFpWithExactRsqrt) {
  Rng rng = test_rng();
  LayerNorm ln(64, rng);
  Tensor x = Tensor::randn(Shape{6, 64}, rng, 1.5);
  const Tensor ref = ln.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  const QuantParams out_qp = ln.freeze(in_qp, QuantPolicy{});
  const NonlinearProvider exact = NonlinearProvider::exact();
  const QTensor qy = ln.forward_int(QTensor::quantize(x, in_qp), exact);
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < qy.data().size(); ++i) {
    const double err = out_qp.dequantize(qy.data()[i]) -
                       static_cast<double>(ref.data()[i]);
    sum_sq += err * err;
  }
  const double rmse = std::sqrt(sum_sq / static_cast<double>(qy.data().size()));
  EXPECT_LT(rmse, 0.15);  // quantization noise only
}

TEST(LayerNormModule, RejectsInputParamsDifferingFromFreeze) {
  Rng rng = test_rng();
  LayerNorm ln(16, rng);
  Tensor x = Tensor::randn(Shape{4, 16}, rng, 1.0);
  (void)ln.calibrate(x);
  const QuantParams in_qp{x.amax() / 127.0, 8, true};
  (void)ln.freeze(in_qp, QuantPolicy{});
  const QuantParams other{in_qp.scale * 2.0, 8, true};
  QTensor wrong(Shape{4, 16}, other);
  EXPECT_THROW((void)ln.forward_int(wrong, NonlinearProvider::exact()),
               ContractViolation);
}

// ----------------------------------------------------------------- softmax

TEST(SoftmaxModule, FpRowsSumToOne) {
  Rng rng = test_rng();
  Tensor x = Tensor::randn(Shape{3, 10}, rng, 2.0);
  const Tensor y = Softmax::forward_fp(x);
  for (int i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 10; ++j) {
      EXPECT_GE(y.at(i, j), 0.0f);
      sum += y.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(SoftmaxModule, IntRowsApproximatelyNormalized) {
  Rng rng = test_rng();
  Tensor x = Tensor::randn(Shape{4, 12}, rng, 2.0);
  const QuantParams qp = make_po2_params(x.amax() / 127.0, 8);
  const QTensor qx = QTensor::quantize(x, qp);
  for (const NonlinearProvider& nl :
       {NonlinearProvider::exact(),
        NonlinearProvider::with_method(Method::kGqaRm, {Op::kExp, Op::kDiv})}) {
    const QTensor probs = Softmax::forward_int(qx, nl);
    for (int i = 0; i < 4; ++i) {
      double sum = 0.0;
      for (int j = 0; j < 12; ++j) {
        sum += Softmax::prob_params().dequantize(probs.at(i, j));
      }
      EXPECT_NEAR(sum, 1.0, 0.12);
    }
  }
}

TEST(SoftmaxModule, IntMatchesFpClosely) {
  Rng rng = test_rng();
  Tensor x = Tensor::randn(Shape{2, 8}, rng, 1.5);
  const QuantParams qp = make_po2_params(x.amax() / 127.0, 8);
  const Tensor ref = Softmax::forward_fp(x);
  const QTensor probs =
      Softmax::forward_int(QTensor::quantize(x, qp), NonlinearProvider::exact());
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(Softmax::prob_params().dequantize(probs.at(i, j)),
                  ref.at(i, j), 0.05);
    }
  }
}

TEST(SoftmaxModule, RequiresPo2Scale) {
  QTensor bad(Shape{1, 4}, QuantParams{0.3, 8, true});
  EXPECT_THROW(
      (void)Softmax::forward_int(bad, NonlinearProvider::exact()),
      ContractViolation);
}

TEST(SoftmaxModule, RequiresSignedInput) {
  // Unsigned codes cannot represent the max-subtracted differences.
  QTensor bad(Shape{1, 4}, QuantParams{0.25, 8, false});
  EXPECT_THROW(
      (void)Softmax::forward_int(bad, NonlinearProvider::exact()),
      ContractViolation);
}

// -------------------------------------------------------------- activation

TEST(ActivationModule, GeluIntPath) {
  Rng rng = test_rng();
  Activation act(Op::kGelu);
  Tensor x = Tensor::randn(Shape{4, 16}, rng, 1.5);
  const Tensor ref = act.calibrate(x);
  const QuantParams in_qp = make_po2_params(x.amax() / 127.0, 8);
  const QuantParams out_qp = act.freeze(in_qp, QuantPolicy{});
  const NonlinearProvider nl =
      NonlinearProvider::with_method(Method::kGqaRm, {Op::kGelu});
  const QTensor qy = act.forward_int(QTensor::quantize(x, in_qp), nl);
  double max_err = 0.0;
  for (std::size_t i = 0; i < qy.data().size(); ++i) {
    max_err = std::max(max_err,
                       std::abs(out_qp.dequantize(qy.data()[i]) -
                                static_cast<double>(ref.data()[i])));
  }
  EXPECT_LT(max_err, 0.1);
}

TEST(ActivationModule, RejectsNonPo2Input) {
  Rng rng = test_rng();
  Activation act(Op::kHswish);
  (void)act.calibrate(Tensor::randn(Shape{2, 4}, rng, 1.0));
  EXPECT_THROW(act.freeze(QuantParams{0.3, 8, true}, QuantPolicy{}),
               ContractViolation);
}

// ------------------------------------------------------------ residual add

TEST(ResidualAddModule, IntAddMatchesFp) {
  Rng rng = test_rng();
  ResidualAdd add;
  Tensor a = Tensor::randn(Shape{3, 8}, rng, 1.0);
  Tensor b = Tensor::randn(Shape{3, 8}, rng, 1.0);
  const Tensor ref = add.calibrate(a, b);
  const QuantParams a_qp{a.amax() / 127.0, 8, true};
  const QuantParams b_qp{b.amax() / 127.0, 8, true};
  const QuantParams out_qp = add.freeze(a_qp, b_qp, QuantPolicy{});
  const QTensor qy = add.forward_int(QTensor::quantize(a, a_qp),
                                     QTensor::quantize(b, b_qp));
  for (std::size_t i = 0; i < qy.data().size(); ++i) {
    EXPECT_NEAR(out_qp.dequantize(qy.data()[i]),
                static_cast<double>(ref.data()[i]),
                3.0 * (a_qp.scale + b_qp.scale + out_qp.scale));
  }
}

TEST(ResidualAddModule, RejectsOperandParamsDifferingFromFreeze) {
  Rng rng = test_rng();
  ResidualAdd add;
  Tensor a = Tensor::randn(Shape{3, 8}, rng, 1.0);
  Tensor b = Tensor::randn(Shape{3, 8}, rng, 1.0);
  (void)add.calibrate(a, b);
  const QuantParams a_qp{a.amax() / 127.0, 8, true};
  const QuantParams b_qp{b.amax() / 127.0, 8, true};
  (void)add.freeze(a_qp, b_qp, QuantPolicy{});
  const QTensor qa = QTensor::quantize(a, a_qp);
  const QTensor qb = QTensor::quantize(b, b_qp);
  QTensor wrong_a(Shape{3, 8}, QuantParams{a_qp.scale * 4.0, 8, true});
  QTensor wrong_b(Shape{3, 8}, QuantParams{b_qp.scale * 4.0, 8, true});
  EXPECT_THROW((void)add.forward_int(wrong_a, qb), ContractViolation);
  EXPECT_THROW((void)add.forward_int(qa, wrong_b), ContractViolation);
}

// --------------------------------------------------------------- attention

TEST(AttentionSRModule, IntTracksFp) {
  Rng rng = test_rng();
  AttentionSR attn(16, 2, 2, rng);
  Tensor tokens = Tensor::randn(Shape{16, 16}, rng, 0.7);
  const Tensor ref = attn.calibrate(tokens, 4, 4);
  const QuantParams in_qp{tokens.amax() / 127.0, 8, true};
  const QuantParams out_qp = attn.freeze(in_qp, QuantPolicy{});
  const QTensor qy = attn.forward_int(QTensor::quantize(tokens, in_qp), 4, 4,
                                      NonlinearProvider::exact());
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < qy.data().size(); ++i) {
    const double err = out_qp.dequantize(qy.data()[i]) -
                       static_cast<double>(ref.data()[i]);
    sum_sq += err * err;
  }
  const double ref_rms = [&] {
    double s = 0.0;
    for (float v : ref.data()) s += static_cast<double>(v) * v;
    return std::sqrt(s / static_cast<double>(ref.data().size()));
  }();
  const double rmse = std::sqrt(sum_sq / static_cast<double>(qy.data().size()));
  EXPECT_LT(rmse, 0.35 * ref_rms + 0.05);
}

TEST(LinearAttentionModule, IntTracksFp) {
  Rng rng = test_rng();
  LinearAttention attn(16, rng);
  Tensor tokens = Tensor::randn(Shape{24, 16}, rng, 0.7);
  const Tensor ref = attn.calibrate(tokens);
  const QuantParams in_qp{tokens.amax() / 127.0, 8, true};
  const QuantParams out_qp = attn.freeze(in_qp, QuantPolicy{});
  const QTensor qy = attn.forward_int(QTensor::quantize(tokens, in_qp),
                                      NonlinearProvider::exact());
  double sum_sq = 0.0;
  double ref_sq = 0.0;
  for (std::size_t i = 0; i < qy.data().size(); ++i) {
    const double err = out_qp.dequantize(qy.data()[i]) -
                       static_cast<double>(ref.data()[i]);
    sum_sq += err * err;
    ref_sq += static_cast<double>(ref.data()[i]) * ref.data()[i];
  }
  EXPECT_LT(std::sqrt(sum_sq), 0.4 * std::sqrt(ref_sq) + 0.05);
}

// --------------------------------------------------------- composite blocks

TEST(MixFfnModule, EndToEndIntPath) {
  Rng rng = test_rng();
  MixFfn ffn(8, 32, rng);
  Tensor tokens = Tensor::randn(Shape{16, 8}, rng, 0.7);
  (void)ffn.calibrate(tokens, 4, 4);
  const QuantParams in_qp{tokens.amax() / 127.0, 8, true};
  const QuantParams out_qp = ffn.freeze(in_qp, QuantPolicy{});
  const QTensor qy = ffn.forward_int(QTensor::quantize(tokens, in_qp), 4, 4,
                                     NonlinearProvider::exact());
  EXPECT_EQ(qy.shape(), (Shape{16, 8}));
  EXPECT_EQ(qy.params(), out_qp);
}

TEST(MbConvModule, ResidualWiring) {
  Rng rng = test_rng();
  MbConv block(8, 8, 2, 1, rng);  // residual (in == out, stride 1)
  Tensor x = Tensor::randn(Shape{8, 6, 6}, rng, 0.7);
  (void)block.calibrate(x);
  const QuantParams in_qp = make_po2_params(x.amax() / 127.0, 8);
  (void)block.freeze(in_qp, QuantPolicy{});
  const QTensor qy =
      block.forward_int(QTensor::quantize(x, in_qp), NonlinearProvider::exact());
  EXPECT_EQ(qy.shape(), (Shape{8, 6, 6}));

  MbConv down(8, 16, 2, 2, rng);  // no residual (stride 2)
  const Tensor y = down.forward_fp(x);
  EXPECT_EQ(y.shape(), (Shape{16, 3, 3}));
}

// ------------------------------------------------------------------- probe

TEST(Probe, LearnsSeparableData) {
  // Two Gaussian blobs in 4-D, linearly separable.
  Rng rng = test_rng();
  std::vector<Tensor> features;
  std::vector<std::vector<int>> labels;
  Tensor f(Shape{100, 4});
  std::vector<int> l(100);
  for (int i = 0; i < 100; ++i) {
    const int cls = i % 2;
    for (int d = 0; d < 4; ++d) {
      f.at(i, d) = static_cast<float>(rng.normal(cls == 0 ? -1.0 : 1.0, 0.3));
    }
    l[static_cast<std::size_t>(i)] = cls;
  }
  features.push_back(f);
  labels.push_back(l);
  std::vector<float> w(2 * 4, 0.0f), b(2, 0.0f);
  const double loss =
      train_softmax_probe(features, labels, 2, w, b, 30, 0.1, 7);
  EXPECT_LT(loss, 0.1);
  // All samples classified correctly.
  for (int i = 0; i < 100; ++i) {
    double z0 = b[0], z1 = b[1];
    for (int d = 0; d < 4; ++d) {
      z0 += w[static_cast<std::size_t>(d)] * f.at(i, d);
      z1 += w[4 + static_cast<std::size_t>(d)] * f.at(i, d);
    }
    EXPECT_EQ(z1 > z0 ? 1 : 0, l[static_cast<std::size_t>(i)]);
  }
}

TEST(Probe, ValidatesInput) {
  std::vector<float> w(8, 0.0f), b(2, 0.0f);
  EXPECT_THROW(train_softmax_probe({}, {}, 2, w, b, 1, 0.1, 1),
               ContractViolation);
}

}  // namespace
}  // namespace gqa::tfm
