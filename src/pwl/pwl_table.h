// Piece-wise linear tables (Eq. 1 of the paper):
//   pwl(x) = k_i * x + b_i  on segment i,
// where segment boundaries are the sorted breakpoints {p_0 .. p_{N-2}}:
//   segment 0:      x <  p_0
//   segment i:      p_{i-1} <= x < p_i
//   segment N-1:    x >= p_{N-2}
#pragma once

#include <span>
#include <string>
#include <vector>

namespace gqa {

/// FP-domain pwl table with N entries and N-1 breakpoints.
struct PwlTable {
  std::vector<double> breakpoints;  ///< sorted ascending, size N-1
  std::vector<double> slopes;       ///< size N
  std::vector<double> intercepts;   ///< size N

  [[nodiscard]] int entries() const { return static_cast<int>(slopes.size()); }

  /// Index of the segment containing `x` (Eq. 1 comparator semantics).
  [[nodiscard]] int segment_index(double x) const;

  /// Evaluates the approximation at `x`.
  [[nodiscard]] double eval(double x) const;

  /// Evaluates a batch.
  [[nodiscard]] std::vector<double> eval(std::span<const double> xs) const;

  /// Throws ContractViolation unless sizes are consistent, breakpoints are
  /// sorted strictly ascending, and all values are finite.
  void validate() const;

  /// Returns a copy whose slopes and intercepts are rounded onto the
  /// 2^-lambda fixed-point grid (Alg. 1 line 22). Breakpoints unchanged.
  [[nodiscard]] PwlTable rounded_to_fxp(int lambda) const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace gqa
