// Fixed-width console table used by every bench binary to print the
// paper-style tables (Table 3..6) and figure series in a readable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gqa {

/// Column-aligned text table with an optional title and footnote.
///
/// Usage:
///   TablePrinter t({"Method", "Entry", "GELU"});
///   t.add_row({"NN-LUT", "8", "1.3e-03"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void set_title(std::string title);
  void set_footnote(std::string footnote);
  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  /// Renders as GitHub-flavoured markdown (used for EXPERIMENTS.md capture).
  [[nodiscard]] std::string to_markdown() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> separator_before_;
  std::string title_;
  std::string footnote_;
};

}  // namespace gqa
